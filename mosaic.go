// Package mosaic generates photomosaics by rearranging the subimages of an
// input image so the rearranged image reproduces a target image — a Go
// implementation of "Photomosaic Generation by Rearranging Subimages, with
// GPU Acceleration" (Yang, Ito, Nakano; IPDPS Workshops 2017).
//
// Both images are divided into S square tiles; the library then finds a
// permutation of the input tiles minimising the summed per-tile error
// against the target. Two rearrangement engines are provided, exactly as in
// the paper:
//
//   - Optimization: exact minimum-weight perfect bipartite matching over the
//     S×S tile-error matrix — the best possible mosaic, at O(S³) cost;
//   - Approximation: a pairwise-swap local search that is orders of
//     magnitude faster and visually indistinguishable, with a parallel
//     variant whose concurrent swaps are scheduled by an edge coloring of
//     the complete graph K_S and executed on a virtual accelerator
//     re-creating the paper's CUDA kernels on CPU cores.
//
// # Quickstart
//
//	input, _ := mosaic.Scene("lena", 512)
//	target, _ := mosaic.Scene("sailboat", 512)
//	res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 32})
//	if err != nil { ... }
//	_ = mosaic.SavePNG("mosaic.png", res.Mosaic)
//
// See the examples directory for the video-sequence and color workflows and
// EXPERIMENTS.md for the reproduction of the paper's tables and figures.
package mosaic

import (
	"context"
	"image/png"
	"io"
	"os"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/edgecolor"
	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/pnm"
	"repro/internal/retry"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/video"
)

// Gray is an 8-bit grayscale image: pixel (x, y) at Pix[y*W+x].
type Gray = imgutil.Gray

// RGB is a 24-bit color image with interleaved row-major storage.
type RGB = imgutil.RGB

// NewGray returns a zeroed w×h grayscale image.
func NewGray(w, h int) *Gray { return imgutil.NewGray(w, h) }

// NewRGB returns a zeroed w×h color image.
func NewRGB(w, h int) *RGB { return imgutil.NewRGB(w, h) }

// Options configures Generate; see the field docs on core.Options.
// The zero value plus one of TilesPerSide/TileSize reproduces the paper's
// configuration: L1 error, histogram matching enabled, serial approximation.
type Options = core.Options

// Result is the output of Generate.
type Result = core.Result

// ResultRGB is the output of GenerateRGB.
type ResultRGB = core.ResultRGB

// Timing breaks pipeline wall time into the paper's table stages.
type Timing = core.Timing

// Algorithm selects the Step-3 rearrangement engine.
type Algorithm = core.Algorithm

// The selectable rearrangement algorithms.
const (
	// Optimization is the exact bipartite-matching method (paper §III).
	Optimization = core.Optimization
	// Approximation is the serial local search (paper §IV-A).
	Approximation = core.Approximation
	// ApproximationDirty is the serial local search with dirty-pair tracking
	// (and optional candidate lists via Options.Search.Candidates): same
	// swap-local fixed points, far fewer pair tests.
	ApproximationDirty = core.ApproximationDirty
	// ParallelApproximation is the edge-coloring-scheduled parallel local
	// search (paper §IV-B); requires Options.Device.
	ParallelApproximation = core.ParallelApproximation
	// GreedyBaseline and IdentityBaseline are the evaluation baselines.
	GreedyBaseline   = core.GreedyBaseline
	IdentityBaseline = core.IdentityBaseline
	// Annealing is the simulated-annealing extension: Metropolis-accepted
	// random swaps with geometric cooling, then an Algorithm-1 polish.
	Annealing = core.Annealing
)

// Solver names an exact matching algorithm for Optimization.
type Solver = assign.Algorithm

// The exact solvers (any may back Optimization; JV is the default) and the
// greedy baseline.
const (
	SolverJV        = assign.AlgoJV
	SolverHungarian = assign.AlgoHungarian
	SolverAuction   = assign.AlgoAuction
	// SolverBlossom is the general-graph weighted blossom algorithm — the
	// solver family the paper uses (Blossom V); exact but slower than the
	// dedicated LAP solvers and capped at small S. See internal/blossom.
	SolverBlossom = assign.AlgoBlossom
	SolverGreedy  = assign.AlgoGreedy
	// SolverAuctionDevice is the device-batched candidate auction: the
	// ε-scaling auction with row scans executed as kernels and a certified
	// early stop at a 1% optimality gap (exactness traded for wall time;
	// see README "Choosing a solver").
	SolverAuctionDevice = assign.AlgoAuctionDevice
	// SolverSinkhorn is the entropic solver: sparse-support log-domain
	// Sinkhorn iterations rounded to a permutation and polished by bounded
	// dirty 2-opt sweeps. Approximate, with a (loose) dual certificate.
	SolverSinkhorn = assign.AlgoSinkhorn
)

// Metric selects the per-pixel error of the paper's Eq. (1).
type Metric = metric.Metric

// The per-pixel error functions.
const (
	// L1 is the paper's sum of absolute differences.
	L1 = metric.L1
	// L2 is the sum of squared differences.
	L2 = metric.L2
)

// Builder names a Step-2 cost-matrix construction strategy for
// Options.Builder. All builders produce bit-identical matrices; they differ
// only in loop order and parallelism. See the README's "Choosing a builder".
type Builder = metric.Builder

// The selectable builders.
const (
	// BuilderAuto (the zero value) picks BuilderDevice when Options.Device
	// is set and BuilderBlocked otherwise.
	BuilderAuto = metric.BuilderAuto
	// BuilderSerial is the paper's single-core reference loop.
	BuilderSerial = metric.BuilderSerial
	// BuilderScalar is BuilderSerial with the byte-at-a-time scalar kernel —
	// the pre-vectorization baseline kept for ablation.
	BuilderScalar = metric.BuilderScalar
	// BuilderBlocked is the cache-blocked single-core loop nest.
	BuilderBlocked = metric.BuilderBlocked
	// BuilderDevice is the paper's §V kernel decomposition on the virtual
	// accelerator; requires Options.Device.
	BuilderDevice = metric.BuilderDevice
	// BuilderRows is plain row-parallelism on the device worker pool.
	BuilderRows = metric.BuilderRows
)

// ParseBuilder resolves a builder name; "" and "auto" mean BuilderAuto.
func ParseBuilder(name string) (Builder, error) { return metric.ParseBuilder(name) }

// Device is a virtual accelerator standing in for the paper's GPU: a worker
// pool executing CUDA-shaped kernels (see internal/cuda).
type Device = cuda.Device

// NewDevice returns a Device with the given worker count; workers ≤ 0 uses
// all available cores.
func NewDevice(workers int) *Device { return cuda.New(workers) }

// FaultInjector decides, per kernel launch, whether a fault fires on a
// Device — the chaos-drill hook behind Device.WithFaults. See FaultPlan for
// the declarative implementation.
type FaultInjector = cuda.FaultInjector

// FaultPlan is the seeded, deterministic FaultInjector: it matches launches
// by ordinal (every Nth, an explicit list), by probability, and/or by kernel
// name, and injects a typed error, extra latency or a hang. Plans are
// stateful — give each device its own.
type FaultPlan = cuda.FaultPlan

// LaunchInfo describes one fault-checked kernel launch to a FaultInjector.
type LaunchInfo = cuda.LaunchInfo

// Fault is a FaultInjector's verdict for one launch.
type Fault = cuda.Fault

// The typed device faults. ErrDeviceLost is sticky: every later launch on
// the device fails until ClearLost.
var (
	ErrLaunchFailed = cuda.ErrLaunchFailed
	ErrDeviceLost   = cuda.ErrDeviceLost
	ErrDeviceHung   = cuda.ErrDeviceHung
)

// ParseFaultSpec parses the comma-separated fault-drill syntax shared by the
// CLIs' -chaos flags, e.g. "every=2,err=launch" or "nth=5,err=lost,max=1".
func ParseFaultSpec(spec string) (*FaultPlan, error) { return cuda.ParseFaultSpec(spec) }

// RetryPolicy is a bounded exponential-backoff-with-jitter schedule; the
// zero value means 3 attempts from a 2ms base. Set one on Resilience.Retry.
type RetryPolicy = retry.Policy

// Resilience opts a pipeline run into fault handling: each device kernel
// launch runs under Retry, and exhausted retries (or a lost device) degrade
// to the bit-identical host path unless DisableFallback is set. Set on
// Options.Resilience; nil keeps the original fail-fast behaviour.
type Resilience = core.Resilience

// Coloring is a proper edge coloring of K_S scheduling the parallel local
// search. Precompute one per S with NewColoring and share it across calls,
// as the paper does across video frames.
type Coloring = edgecolor.Coloring

// NewColoring returns the circle-method edge coloring of K_s.
func NewColoring(s int) *Coloring { return edgecolor.Complete(s) }

// Generate produces a grayscale photomosaic of target from the tiles of
// input. Both images must be square, equal-sized, and divisible into the
// requested tile grid.
func Generate(input, target *Gray, opts Options) (*Result, error) {
	return core.Generate(input, target, opts)
}

// GenerateContext is Generate with cancellation and deadline support: ctx is
// checked between pipeline stages and, during the local searches, between
// sweep rounds and color classes. A cancelled call returns the ctx error
// (test with errors.Is) and a nil Result — never a partial one.
func GenerateContext(ctx context.Context, input, target *Gray, opts Options) (*Result, error) {
	return core.GenerateContext(ctx, input, target, opts)
}

// GenerateRGB produces a color photomosaic — the paper's color extension,
// using the per-channel form of the error function.
func GenerateRGB(input, target *RGB, opts Options) (*ResultRGB, error) {
	return core.GenerateRGB(input, target, opts)
}

// GenerateRGBContext is GenerateRGB with the cancellation semantics of
// GenerateContext.
func GenerateRGBContext(ctx context.Context, input, target *RGB, opts Options) (*ResultRGB, error) {
	return core.GenerateRGBContext(ctx, input, target, opts)
}

// TraceCollector receives span and counter events from a traced pipeline
// run; set one on Options.Trace or SequencerConfig.Trace. See NewTraceTree
// and NewTraceLog for the built-in collectors.
type TraceCollector = trace.Collector

// Stats is the aggregated observability snapshot of one run — per-stage span
// totals plus the sweep/swap/kernel counters — exposed on Result.Stats and
// FrameResult.Stats.
type Stats = trace.Stats

// SpanStat aggregates the spans sharing one name within a Stats snapshot.
type SpanStat = trace.SpanStat

// TraceTree is the recording collector: it captures the span tree and
// counter totals, serialises them to JSON (WriteJSON) and aggregates them
// into a Stats snapshot (Snapshot).
type TraceTree = trace.Tree

// NewTraceTree returns an empty recording collector.
func NewTraceTree() *TraceTree { return trace.NewTree() }

// NewTraceLog returns a collector streaming one line per span/counter event
// to w — the quick way to watch a pipeline run live.
func NewTraceLog(w io.Writer) TraceCollector { return trace.NewLog(w) }

// The span names emitted by the pipeline: one per stage of the paper's
// decomposition, under a pipeline (Generate) or frame (Sequencer.Next) root.
const (
	SpanPipeline   = trace.SpanPipeline
	SpanFrame      = trace.SpanFrame
	SpanPreprocess = trace.SpanPreprocess
	SpanTiling     = trace.SpanTiling
	SpanCostMatrix = trace.SpanCostMatrix
	SpanRearrange  = trace.SpanRearrange
	SpanAssemble   = trace.SpanAssemble
)

// The counter names emitted by the search engines and the virtual device.
const (
	CounterSweepRounds    = trace.CounterSweepRounds
	CounterSwapAttempts   = trace.CounterSwapAttempts
	CounterImprovingSwaps = trace.CounterImprovingSwaps
	CounterAnnealSteps    = trace.CounterAnnealSteps
	CounterKernelLaunches = trace.CounterKernelLaunches
	CounterKernelBlocks   = trace.CounterKernelBlocks
)

// HistogramMatch returns a copy of img whose intensity distribution matches
// ref — the paper's §II preprocessing, exposed for callers that prepare
// inputs themselves (Generate applies it automatically unless disabled).
func HistogramMatch(img, ref *Gray) (*Gray, error) { return hist.Match(img, ref) }

// HistogramEqualize returns a copy of img with an equalized histogram.
func HistogramEqualize(img *Gray) (*Gray, error) { return hist.Equalize(img) }

// Scene renders one of the built-in deterministic synthetic test scenes
// (stand-ins for the paper's USC-SIPI photographs) at size n×n. Valid names:
// lena, sailboat, airplane, peppers, barbara, baboon, tiffany, plasma,
// gradient, checker.
func Scene(name string, n int) (*Gray, error) {
	s, err := synth.ParseScene(name)
	if err != nil {
		return nil, err
	}
	return synth.Generate(s, n)
}

// SceneRGB renders the color variant of a built-in scene.
func SceneRGB(name string, n int) (*RGB, error) {
	s, err := synth.ParseScene(name)
	if err != nil {
		return nil, err
	}
	return synth.GenerateRGB(s, n)
}

// SceneNames lists the built-in scene names in stable order.
func SceneNames() []string {
	out := make([]string, 0, len(synth.Scenes()))
	for _, s := range synth.Scenes() {
		out = append(out, string(s))
	}
	return out
}

// LoadPGM reads an 8-bit PGM (P2/P5) file.
func LoadPGM(path string) (*Gray, error) { return pnm.LoadGray(path) }

// SavePGM writes img as binary PGM (P5).
func SavePGM(path string, img *Gray) error { return pnm.SaveGray(path, img) }

// LoadPPM reads an 8-bit PPM (P3/P6) file.
func LoadPPM(path string) (*RGB, error) { return pnm.LoadRGB(path) }

// SavePPM writes img as binary PPM (P6).
func SavePPM(path string, img *RGB) error { return pnm.SaveRGB(path, img) }

// SavePNG writes a grayscale image as PNG.
func SavePNG(path string, img *Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img.ToImage()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SavePNGRGB writes a color image as PNG.
func SavePNGRGB(path string, img *RGB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img.ToImage()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Assignment maps each target position to the input tile placed there
// (Result.Assignment); it is a permutation of 0..S−1.
type Assignment = perm.Perm

// SequencerConfig configures a video Sequencer; see the field docs on
// video.Config.
type SequencerConfig = video.Config

// Sequencer produces photomosaics for a stream of target frames from one
// fixed input image, amortising tiling, the K_S edge coloring and the
// previous frame's assignment (warm starts) across frames — the paper's
// real-time video use case.
type Sequencer = video.Sequencer

// FrameResult is the per-frame output of a Sequencer.
type FrameResult = video.FrameResult

// NewSequencer returns a Sequencer mosaicking targets from input's tiles.
func NewSequencer(input *Gray, cfg SequencerConfig) (*Sequencer, error) {
	return video.NewSequencer(input, cfg)
}

// Pan synthesises a horizontal camera pan: `frames` windows of size×size
// sliding across a wider scene. A convenient demo/test target stream.
func Pan(scene *Gray, size, frames int) ([]*Gray, error) {
	return video.Pan(scene, size, frames)
}
