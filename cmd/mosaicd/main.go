// Command mosaicd serves photomosaic generation over HTTP: a bounded job
// queue drained by a worker pool, devices shared safely across requests via
// the service device pool, and a content-hash cache of prepared Step-2 work
// so repeated requests against the same target skip the error matrix.
//
// Endpoints:
//
//	POST /v1/mosaic    submit a job (sync; mode=async for 202 + polling)
//	GET  /v1/jobs/{id} poll an async job
//	HEAD /v1/prepared/{hash}  cache peek: 200 if the prepared-work cache holds hash
//	                   (the cross-node probe behind mosaic-router's redirects)
//	GET  /metrics      Prometheus exposition (plus /metrics.json)
//	GET  /healthz      liveness — 200 while the process runs
//	GET  /readyz       readiness — 503 during drain, so LBs stop routing
//	GET  /debug/pprof     only on loopback binds or with -pprof
//	GET  /debug/requests  flight recorder: slowest/errored span trees (same gate)
//
// Every request carries a request ID (X-Request-ID in, echoed out), is
// access-logged as one JSON line (-access-log), and attributes its wall time
// to phases (queue wait, device wait, cache lookup, pipeline stages, retry
// backoff, encode) — the slowest and every errored/degraded request retain
// their full span trees for GET /debug/requests/{id}.
//
// SIGINT/SIGTERM starts a graceful drain: readiness flips, new submissions
// get 503, queued and in-flight jobs finish (bounded by -drain-timeout),
// then the process exits.
//
// Faulty devices are survived, not fatal: kernel launches retry under
// -retry-attempts/-retry-base, exhausted retries degrade to the
// bit-identical host path (unless -no-cpu-fallback), and the pool
// quarantines devices that are lost or fail -failure-threshold jobs in a
// row, restoring them via a canary probe every -probe-interval. -chaos
// installs a fault-injection plan on every device for drills (see the
// README's "Fault tolerance").
//
// Example:
//
//	mosaicd -addr 127.0.0.1:9200 &
//	curl -s -X POST -H 'Content-Type: application/json' \
//	  -d '{"input":"lena","target":"sailboat","size":256,"tiles":16}' \
//	  http://127.0.0.1:9200/v1/mosaic | jq .cache,.total_error
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/assign"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mosaicd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr          = flag.String("addr", "127.0.0.1:9200", "listen address")
		workers       = flag.Int("workers", 4, "concurrent jobs")
		queueDepth    = flag.Int("queue", 16, "bounded job queue depth (full queue → 429)")
		devices       = flag.Int("devices", 1, "virtual devices in the pool")
		deviceWorkers = flag.Int("device-workers", 0, "kernel workers per device (0 = all cores)")
		cacheMB       = flag.Int("cache-mb", 256, "prepared-work cache budget in MiB (0 disables)")
		timeout       = flag.Duration("timeout", 60*time.Second, "default per-job deadline")
		maxTimeout    = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		maxSize       = flag.Int("max-size", 1024, "largest accepted working image side")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain")
		pprofFlag     = flag.Bool("pprof", false, "expose /debug/pprof even on non-loopback binds (loopback binds always get it)")
		chaosSpec     = flag.String("chaos", "", "fault-injection drill: install this cuda.ParseFaultSpec plan on every pool device (e.g. 'every=2,err=launch' or 'nth=5,err=lost,max=1')")
		noFallback    = flag.Bool("no-cpu-fallback", false, "fail jobs instead of degrading to the host when device retries are exhausted (readyz 503 once all devices are quarantined)")
		noBatch       = flag.Bool("no-batch", false, "disable Finish micro-batching (by default queued same-content jobs settle in one wave per device lease; outputs are bit-identical either way)")
		solver        = flag.String("solver", "", "default Step-3 matcher for optimization jobs: jv (default) | hungarian | auction | blossom | auction-device | sinkhorn; requests may override per-job")
		retryAttempts = flag.Int("retry-attempts", 3, "kernel-launch attempts before degrading (1 disables retries)")
		retryBase     = flag.Duration("retry-base", 2*time.Millisecond, "base backoff between launch retries (doubles per attempt, jittered)")
		probeEvery    = flag.Duration("probe-interval", 250*time.Millisecond, "cadence of the canary probe that restores quarantined devices")
		failThreshold = flag.Int("failure-threshold", 3, "consecutive failed jobs that quarantine a device (a lost device is quarantined immediately)")
		accessLog     = flag.String("access-log", "stderr", "access-log destination: stderr, stdout, a file path, or 'off'")
		flightSlow    = flag.Int("flight-slow", 32, "slowest requests whose span trees the flight recorder retains")
		flightErrors  = flag.Int("flight-errors", 64, "errored/degraded requests the flight recorder retains")
		anytime       = flag.Bool("anytime", false, "default deadline policy: degrade a missed deadline into a 200 with the best partial mosaic so far (partial:true) instead of a 504; requests may override per-job with \"anytime\"")
		noAdmission   = flag.Bool("no-admission", false, "disable predictive admission control (by default, strict jobs whose estimated completion exceeds their deadline are rejected at submit with 429)")
		showVersion   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		buildinfo.Print(os.Stdout, "mosaicd")
		return nil
	}

	var deviceFaults func(i int) cuda.FaultInjector
	if *chaosSpec != "" {
		base, err := cuda.ParseFaultSpec(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		// Plans are stateful (ordinal counters, fault budgets), so each
		// device gets its own clone of the once-validated plan, seeded apart.
		deviceFaults = func(i int) cuda.FaultInjector {
			p := base.Clone()
			p.Seed = base.Seed + uint64(i)
			return p
		}
		fmt.Fprintf(os.Stderr, "mosaicd: CHAOS DRILL ACTIVE — injecting %q on all %d devices\n", *chaosSpec, *devices)
	}

	var logW io.Writer
	var logClose func() error
	switch *accessLog {
	case "off", "":
	case "stderr":
		logW = os.Stderr
	case "stdout":
		logW = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-access-log: %w", err)
		}
		logW = f
		logClose = f.Close
	}

	defaultSolver := assign.Algorithm("")
	if *solver != "" {
		sol, err := core.ParseSolver(*solver)
		if err != nil {
			return fmt.Errorf("-solver: %w", err)
		}
		defaultSolver = sol
	}

	reg := telemetry.NewRegistry()
	buildinfo.Register(reg, "mosaicd")
	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	svc := service.New(service.Config{
		Registry:       reg,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		Devices:        *devices,
		DeviceWorkers:  *deviceWorkers,
		CacheBytes:     cacheBytes,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxImageSide:   *maxSize,
		Retry: retry.Policy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
		},
		NoCPUFallback:    *noFallback,
		NoBatching:       *noBatch,
		DefaultSolver:    defaultSolver,
		FailureThreshold: *failThreshold,
		ProbeInterval:    *probeEvery,
		DeviceFaults:     deviceFaults,
		AccessLog:        logW,
		RecorderSlow:     *flightSlow,
		RecorderErrors:   *flightErrors,
		Anytime:          *anytime,
		NoAdmission:      *noAdmission,
	})

	muxOpts := []telemetry.MuxOption{telemetry.WithReadiness(svc.Ready)}
	debug := *pprofFlag || telemetry.IsLoopback(*addr)
	if debug {
		muxOpts = append(muxOpts, telemetry.WithPProf())
	}
	mux := telemetry.NewMux(reg, muxOpts...)
	svc.RegisterRoutes(mux)
	if debug {
		// /debug/requests exposes request internals (IDs, content hashes,
		// timings), so it rides the same loopback/-pprof gate as pprof.
		svc.RegisterDebugRoutes(mux)
	}

	server, err := telemetry.StartServer(*addr, reg, mux)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mosaicd: serving on http://%s (POST /v1/mosaic; /metrics, /healthz, /readyz)\n", server.Addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "mosaicd: draining (readyz now 503; in-flight jobs completing)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Drain(drainCtx)
	svc.Close()
	if logClose != nil {
		_ = logClose()
	}
	if err := server.Close(); err != nil {
		return err
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(os.Stderr, "mosaicd: drained cleanly")
	return nil
}
