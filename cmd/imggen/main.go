// Command imggen renders the built-in synthetic scene library to disk — the
// deterministic stand-ins for the USC-SIPI photographs the paper evaluates
// on. Useful for inspecting the scenes and for feeding other tools.
//
//	imggen -out testimages -size 512            # all scenes as PNG
//	imggen -out testimages -format pgm -color   # PGM/PPM variants
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	mosaic "repro"
	"repro/internal/buildinfo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imggen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "testimages", "output directory")
		size    = flag.Int("size", 512, "image side length")
		format  = flag.String("format", "png", "output format: png | pgm")
		color   = flag.Bool("color", false, "also render the color variants")
		only    = flag.String("scene", "", "render a single scene (default: all)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "imggen")
		return nil
	}
	if *format != "png" && *format != "pgm" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	names := mosaic.SceneNames()
	if *only != "" {
		names = []string{*only}
	}
	for _, name := range names {
		img, err := mosaic.Scene(name, *size)
		if err != nil {
			return err
		}
		var path string
		if *format == "png" {
			path = filepath.Join(*out, name+".png")
			err = mosaic.SavePNG(path, img)
		} else {
			path = filepath.Join(*out, name+".pgm")
			err = mosaic.SavePGM(path, img)
		}
		if err != nil {
			return err
		}
		fmt.Println(path)
		if *color {
			rgb, err := mosaic.SceneRGB(name, *size)
			if err != nil {
				return err
			}
			if *format == "png" {
				path = filepath.Join(*out, name+"-color.png")
				err = mosaic.SavePNGRGB(path, rgb)
			} else {
				path = filepath.Join(*out, name+"-color.ppm")
				err = mosaic.SavePPM(path, rgb)
			}
			if err != nil {
				return err
			}
			fmt.Println(path)
		}
	}
	return nil
}
