package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	mosaic "repro"
)

func resetFlags(args ...string) {
	flag.CommandLine = flag.NewFlagSet("imggen", flag.ContinueOnError)
	os.Args = append([]string{"imggen"}, args...)
}

func TestGeneratesAllScenesAsPNG(t *testing.T) {
	dir := t.TempDir()
	resetFlags("-out", dir, "-size", "32")
	if err := run(); err != nil {
		t.Fatal(err)
	}
	for _, name := range mosaic.SceneNames() {
		if _, err := os.Stat(filepath.Join(dir, name+".png")); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGeneratesSingleSceneAsPGMWithColor(t *testing.T) {
	dir := t.TempDir()
	resetFlags("-out", dir, "-size", "16", "-format", "pgm", "-color", "-scene", "lena")
	if err := run(); err != nil {
		t.Fatal(err)
	}
	img, err := mosaic.LoadPGM(filepath.Join(dir, "lena.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 16 {
		t.Errorf("size %d", img.W)
	}
	if _, err := mosaic.LoadPPM(filepath.Join(dir, "lena-color.ppm")); err != nil {
		t.Errorf("color variant: %v", err)
	}
}

func TestRejectsBadArguments(t *testing.T) {
	resetFlags("-format", "bmp")
	if err := run(); err == nil {
		t.Error("accepted unknown format")
	}
	resetFlags("-out", t.TempDir(), "-scene", "not-a-scene")
	if err := run(); err == nil {
		t.Error("accepted unknown scene")
	}
}
