// Command mosaicbench regenerates the paper's evaluation: Tables I–IV and
// the image panels of Figures 2, 7 and 8.
//
// Modes:
//
//	mosaicbench -quick              # 512/1024 images, one pair (minutes)
//	mosaicbench -full               # the paper's full grid (can take long)
//	mosaicbench -table 2            # a single table
//	mosaicbench -figures -out dir   # write the figure PNGs
//
// On hosts with few cores the wall-clock GPU columns cannot show parallel
// speedups; pass -virtual-sms 15 to switch the GPU columns to the device's
// virtual clock (a discrete-event simulation of a K40-class accelerator;
// see internal/cuda), optionally tuning -launch-overhead and
// -virtual-cores-per-sm.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchjson"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mosaicbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick          = flag.Bool("quick", false, "laptop-scale subset (512/1024 images, one pair)")
		full           = flag.Bool("full", false, "the paper's full grid (512/1024/2048 × 16/32/64 × 4 pairs)")
		table          = flag.Int("table", 0, "run a single table (1–4); 0 runs all")
		figures        = flag.Bool("figures", false, "render the Figure 2/7/8 panels")
		out            = flag.String("out", "", "directory for figure PNGs (empty: metadata only)")
		sizes          = flag.String("sizes", "", "comma-separated image sizes overriding the mode (e.g. 512,1024)")
		tileCounts     = flag.String("tiles", "", "comma-separated tiles-per-side overriding the mode (e.g. 16,32,64)")
		pairs          = flag.Int("pairs", 0, "number of scene pairs to average over (1–4); 0 keeps the mode default")
		workers        = flag.Int("workers", 0, "device workers (0 = all cores)")
		maxOptS        = flag.Int("max-opt-s", 0, "skip exact matching above this tile count S (0 = never)")
		solver         = flag.String("solver", "", "matcher for the optimization column: jv (default) | hungarian | auction | blossom | auction-device | sinkhorn")
		virtualSMs     = flag.Int("virtual-sms", 0, "simulate a device with this many SMs for the GPU columns (0 = wall clock)")
		launchOverhead = flag.Duration("launch-overhead", 3*time.Microsecond, "per-kernel-launch charge in virtual mode")
		coresPerSM     = flag.Int("virtual-cores-per-sm", 32, "modelled intra-block thread parallelism in virtual mode")
		csvPath        = flag.String("csv", "", "also write the sweep cells as CSV to this file (tables mode only)")
		traceRun       = flag.Bool("trace", false, "run one traced end-to-end generation and include its span tree in the observability JSON")
		metricsRun     = flag.Bool("metrics", false, "run one traced end-to-end generation and include its counters and registry snapshot in the observability JSON")
		serveAddr      = flag.String("serve", "", "serve /metrics, /healthz, /metrics.json and /debug/pprof on this address during the run (e.g. 127.0.0.1:9190)")
		benchJSON      = flag.String("bench-json", "", "execute the pinned benchmark workload and write the JSON report to this file (schema v4: splits assign_ns out of rearrange_ns and adds the per-solver assign comparison block)")
		benchSize      = flag.Int("bench-size", 0, "override the pinned workload's image size for -bench-json (0 = pinned 512; used by make bench-smoke)")
		benchTiles     = flag.Int("bench-tiles", 0, "override the pinned workload's tiles per side for -bench-json (0 = pinned 32)")
		version        = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "mosaicbench")
		return nil
	}

	cfg := experiments.QuickConfig()
	switch {
	case *full:
		cfg = experiments.NewConfig()
	case *quick:
		// default
	}
	cfg.Out = os.Stdout
	cfg.Workers = *workers
	cfg.MaxOptimizationS = *maxOptS
	if *solver != "" {
		algo, err := core.ParseSolver(*solver)
		if err != nil {
			return fmt.Errorf("-solver: %w", err)
		}
		cfg.Solver = algo
	}
	cfg.VirtualSMs = *virtualSMs
	cfg.VirtualLaunchOverhead = *launchOverhead
	cfg.VirtualCoresPerSM = *coresPerSM
	if *sizes != "" {
		v, err := parseInts(*sizes)
		if err != nil {
			return fmt.Errorf("-sizes: %w", err)
		}
		cfg.Sizes = v
	}
	if *tileCounts != "" {
		v, err := parseInts(*tileCounts)
		if err != nil {
			return fmt.Errorf("-tiles: %w", err)
		}
		cfg.TileCounts = v
	}
	if *pairs > 0 {
		all := experiments.PaperPairs()
		if *pairs > len(all) {
			return fmt.Errorf("-pairs: at most %d", len(all))
		}
		cfg.Pairs = all[:*pairs]
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	// One registry observes whatever mode runs below: the local searches feed
	// it through cfg.Trace, the shared device feeds the occupancy gauges.
	var reg *telemetry.Registry
	if *serveAddr != "" || *metricsRun {
		reg = telemetry.NewRegistry()
		buildinfo.Register(reg, "mosaicbench")
		cfg.Trace = telemetry.NewTraceCollector(reg)
		dev, err := cfg.Device()
		if err != nil {
			return err
		}
		telemetry.RegisterDevice(reg, dev, nil)
	}
	if *serveAddr != "" {
		server, err := telemetry.StartServer(*serveAddr, reg, nil)
		if err != nil {
			return err
		}
		defer server.Close()
		fmt.Fprintf(os.Stderr, "mosaicbench: telemetry on http://%s (/metrics, /healthz, /metrics.json, /debug/pprof/)\n", server.Addr)
	}

	if *benchJSON != "" {
		rep, err := benchjson.ExecuteSized(context.Background(), *benchSize, *benchTiles)
		if err != nil {
			return err
		}
		if err := rep.WriteFile(*benchJSON); err != nil {
			return err
		}
		fmt.Printf("benchmark report written to %s (%d runs)\n", *benchJSON, len(rep.Runs))
		return nil
	}

	if *traceRun || *metricsRun {
		res, tree, err := cfg.TraceRun(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("traced run — %s at %d×%d, %d tiles/side: error=%d, %d sweeps\n",
			cfg.Pairs[0], cfg.Sizes[0], cfg.Sizes[0], cfg.TileCounts[0],
			res.TotalError, res.SearchStats.Passes)
		// One JSON document for both flags, matching cmd/mosaic: spans when
		// -trace, registry snapshot when -metrics, counters always.
		d := telemetry.Dump{Counters: tree.Counters()}
		if *traceRun {
			d.Spans = tree.Roots()
		}
		if reg != nil {
			snap := reg.Snapshot()
			d.Registry = &snap
		}
		return telemetry.WriteDump(os.Stdout, d)
	}

	banner(cfg)
	if *figures {
		if _, err := cfg.Figure1(*out); err != nil {
			return err
		}
		fmt.Println()
		if _, err := cfg.Figure2(*out); err != nil {
			return err
		}
		fmt.Println()
		if _, err := cfg.Figure7(*out); err != nil {
			return err
		}
		fmt.Println()
		if _, err := cfg.Figure8(*out); err != nil {
			return err
		}
		return nil
	}

	var cells []*experiments.Cell
	var err error
	switch *table {
	case 0:
		cells, err = cfg.RunAllTables()
	case 1:
		cells, err = cfg.Table1()
	case 2, 3, 4:
		cells, err = cfg.Sweep()
		if err == nil {
			switch *table {
			case 2:
				cfg.Table2(cells)
			case 3:
				cfg.Table3(cells)
			case 4:
				cfg.Table4(cells)
			}
		}
	default:
		return fmt.Errorf("-table must be 0–4")
	}
	if err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := experiments.WriteCellsCSV(cells, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nsweep cells written to %s\n", *csvPath)
	}
	return nil
}

func banner(cfg experiments.Config) {
	mode := "wall-clock"
	if cfg.VirtualSMs > 0 {
		mode = fmt.Sprintf("virtual device: %d SMs, %v/launch", cfg.VirtualSMs, cfg.VirtualLaunchOverhead)
	}
	var ps []string
	for _, p := range cfg.Pairs {
		ps = append(ps, p.String())
	}
	fmt.Printf("photomosaic evaluation — sizes %v, tiles/side %v, GPU columns: %s\n", cfg.Sizes, cfg.TileCounts, mode)
	fmt.Printf("pairs: %s\n\n", strings.Join(ps, "; "))
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
