package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func resetFlags(args ...string) {
	flag.CommandLine = flag.NewFlagSet("mosaicbench", flag.ContinueOnError)
	os.Args = append([]string{"mosaicbench"}, args...)
}

// captureStdout routes the harness tables away from the test log.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}

func TestSingleTableTinyGrid(t *testing.T) {
	resetFlags("-sizes", "32", "-tiles", "4", "-pairs", "1", "-table", "1")
	out, err := captureStdout(t, run)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "Table I") {
		t.Errorf("missing table header in %q", out)
	}
}

func TestVirtualModeTinyGrid(t *testing.T) {
	resetFlags("-sizes", "32", "-tiles", "4", "-pairs", "1", "-table", "3", "-virtual-sms", "4")
	out, err := captureStdout(t, run)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "virtual device") || !contains(out, "Table III") {
		t.Errorf("virtual mode output wrong: %q", out)
	}
}

func TestFiguresTinyGrid(t *testing.T) {
	dir := t.TempDir()
	resetFlags("-sizes", "32", "-tiles", "4", "-pairs", "2", "-figures", "-out", dir)
	if _, err := captureStdout(t, run); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2-input.png")); err != nil {
		t.Errorf("figure panel missing: %v", err)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad-table":       {"-table", "9"},
		"bad-sizes":       {"-sizes", "abc"},
		"bad-tiles":       {"-tiles", "-3"},
		"too-many-pairs":  {"-pairs", "9"},
		"indivisible":     {"-sizes", "100", "-tiles", "7", "-table", "1"},
		"bad-virtual-sms": {"-sizes", "32", "-tiles", "4", "-table", "2", "-virtual-sms", "2", "-launch-overhead", "-1us"},
	}
	for name, args := range cases {
		resetFlags(args...)
		if _, err := captureStdout(t, run); err == nil {
			t.Errorf("%s: accepted %v", name, args)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestCSVOutput(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "cells.csv")
	resetFlags("-sizes", "32", "-tiles", "4", "-pairs", "1", "-table", "2", "-csv", csvPath)
	if _, err := captureStdout(t, run); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "image_size") || !strings.Contains(string(data), "32,4,16") {
		t.Errorf("csv content unexpected: %s", data)
	}
}
