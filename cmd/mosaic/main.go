// Command mosaic generates a photomosaic by rearranging the tiles of an
// input image to reproduce a target image.
//
// Inputs may be files (PGM, PPM or PNG, by extension) or built-in synthetic
// scene names (lena, sailboat, airplane, peppers, barbara, baboon, tiffany,
// plasma, gradient, checker). Non-square or mismatched images are resampled
// to the requested size.
//
// Examples:
//
//	mosaic -input lena -target sailboat -o out.png
//	mosaic -input photo.pgm -target logo.png -tiles 64 -algorithm optimization -o out.png
//	mosaic -input lena -target sailboat -color -o out.png
package main

import (
	"context"
	"flag"
	"fmt"
	"image/png"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	mosaic "repro"
	"repro/internal/buildinfo"
	"repro/internal/imgutil"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mosaic:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inputArg   = flag.String("input", "lena", "input image: file path or scene name")
		targetArg  = flag.String("target", "sailboat", "target image: file path or scene name")
		out        = flag.String("o", "mosaic.png", "output path (.png, .pgm or .ppm)")
		size       = flag.Int("size", 512, "working image size (images are resampled to size×size)")
		tiles      = flag.Int("tiles", 32, "tiles per side (the paper's 16, 32 or 64)")
		algorithm  = flag.String("algorithm", "approximation", "rearrangement algorithm: optimization | approximation | approximation-dirty | approximation-parallel | greedy | identity | annealing")
		builder    = flag.String("builder", "auto", "Step-2 matrix builder: auto | serial | scalar | blocked | device | rows-parallel (all bit-identical, streaming the columnar tile store)")
		cands      = flag.Int("candidates", 0, "top-K candidate-list warm sweeps for approximation-dirty (0 = off)")
		storeCands = flag.Bool("store-candidates", false, "derive approximation-dirty's warm-sweep candidates from the tile store's thumbnail features instead of matrix columns")
		rotations  = flag.Bool("rotations", false, "allow the eight dihedral tile orientations (grayscale only)")
		proxy      = flag.Int("proxy", 0, "build the error matrix from proxy×proxy downsampled tiles (0 = exact)")
		solver     = flag.String("solver", "jv", "matcher for -algorithm optimization: jv | hungarian | auction | blossom (exact) | auction-device | sinkhorn (certified approximate, faster)")
		metricStr  = flag.String("metric", "l1", "per-pixel error: l1 | l2")
		noHist     = flag.Bool("no-histogram-match", false, "skip matching the input's intensity distribution to the target")
		color      = flag.Bool("color", false, "color pipeline (scene names render color variants; files must be PPM/PNG)")
		workers    = flag.Int("workers", 0, "device workers for parallel stages (0 = all cores)")
		gpu        = flag.Bool("gpu", false, "run Step 2 on the virtual device even for serial algorithms")
		timeout    = flag.Duration("timeout", 0, "abort generation after this long (0 = no deadline)")
		traceOut   = flag.Bool("trace", false, "include the pipeline span tree in the observability JSON on stderr")
		metrics    = flag.Bool("metrics", false, "include the counter totals and registry snapshot in the observability JSON on stderr")
		serveAddr  = flag.String("serve", "", "serve /metrics, /healthz, /metrics.json and /debug/pprof on this address during the run (e.g. 127.0.0.1:9190)")
		convPath   = flag.String("convergence", "", "write the local-search cost-vs-sweep convergence curve as JSON to this file")
		chaosSpec  = flag.String("chaos", "", "fault-injection drill: install this fault spec on the device (e.g. 'every=2,err=launch'); launches retry and degrade to the bit-identical host path")
		quiet      = flag.Bool("q", false, "suppress the summary line")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "mosaic")
		return nil
	}

	met := mosaic.L1
	switch strings.ToLower(*metricStr) {
	case "l1":
	case "l2":
		met = mosaic.L2
	default:
		return fmt.Errorf("unknown metric %q", *metricStr)
	}
	b, err := mosaic.ParseBuilder(*builder)
	if err != nil {
		return err
	}
	opts := mosaic.Options{
		TilesPerSide:      *tiles,
		Algorithm:         mosaic.Algorithm(*algorithm),
		Solver:            mosaic.Solver(*solver),
		Builder:           b,
		Metric:            met,
		NoHistogramMatch:  *noHist,
		AllowOrientations: *rotations,
		ProxyResolution:   *proxy,
	}
	opts.Search.Candidates = *cands
	opts.StoreCandidates = *storeCands
	if opts.Algorithm == mosaic.ParallelApproximation || b.NeedsDevice() || *gpu {
		opts.Device = mosaic.NewDevice(*workers)
	}
	if *chaosSpec != "" {
		if opts.Device == nil {
			return fmt.Errorf("-chaos needs a device stage (use -algorithm approximation-parallel, -builder device or -gpu)")
		}
		plan, err := mosaic.ParseFaultSpec(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		opts.Device.WithFaults(plan)
		opts.Resilience = &mosaic.Resilience{}
		fmt.Fprintf(os.Stderr, "mosaic: CHAOS DRILL ACTIVE — injecting %q\n", *chaosSpec)
	}

	// One registry backs every observability surface: the -metrics snapshot,
	// the -serve endpoint, and the convergence recorder's live cost gauge.
	observing := *traceOut || *metrics || *serveAddr != "" || *convPath != ""
	var (
		tree *mosaic.TraceTree
		reg  *telemetry.Registry
		rec  *telemetry.ConvergenceRecorder
	)
	if observing {
		tree = mosaic.NewTraceTree()
		reg = telemetry.NewRegistry()
		buildinfo.Register(reg, "mosaic")
		opts.Trace = trace.Multi(tree, telemetry.NewTraceCollector(reg))
		if opts.Device != nil {
			telemetry.RegisterDevice(reg, opts.Device, nil)
		}
		rec = telemetry.NewConvergenceRecorder(reg)
		opts.Search.Progress = rec.Sweep
		opts.Anneal.Progress = rec.Anneal
	}
	if *serveAddr != "" {
		// pprof exposes heap contents and stack traces; keep it off unless
		// the bind is loopback-only.
		var muxOpts []telemetry.MuxOption
		pprofNote := ""
		if telemetry.IsLoopback(*serveAddr) {
			muxOpts = append(muxOpts, telemetry.WithPProf())
			pprofNote = ", /debug/pprof/"
		}
		mux := telemetry.NewMux(reg, muxOpts...)
		mux.HandleFunc("/convergence.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = rec.WriteJSON(w)
		})
		server, err := telemetry.StartServer(*serveAddr, reg, mux)
		if err != nil {
			return err
		}
		defer server.Close()
		fmt.Fprintf(os.Stderr, "mosaic: telemetry on http://%s (/metrics, /healthz, /metrics.json, /convergence.json%s)\n", server.Addr, pprofNote)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// dump emits the single observability JSON document: spans when -trace,
	// counters + registry snapshot when -metrics, convergence samples when
	// recorded. Every duration field in it is nanoseconds (_ns suffix);
	// registry histograms are seconds, as their names state.
	dump := func() error {
		if *convPath != "" {
			if err := writeConvergence(*convPath, rec); err != nil {
				return err
			}
		}
		if !*traceOut && !*metrics {
			return nil
		}
		d := telemetry.Dump{}
		if *traceOut {
			d.Spans = tree.Roots()
		}
		d.Counters = tree.Counters()
		if *metrics {
			snap := reg.Snapshot()
			d.Registry = &snap
		}
		if samples := rec.Snapshot(); len(samples) > 0 {
			d.Convergence = samples
		}
		return telemetry.WriteDump(os.Stderr, d)
	}

	if *color {
		return runColor(ctx, *inputArg, *targetArg, *out, *size, opts, *quiet, dump)
	}
	input, err := loadGray(*inputArg, *size)
	if err != nil {
		return fmt.Errorf("input: %w", err)
	}
	target, err := loadGray(*targetArg, *size)
	if err != nil {
		return fmt.Errorf("target: %w", err)
	}
	res, err := mosaic.GenerateContext(ctx, input, target, opts)
	if err != nil {
		return err
	}
	if err := dump(); err != nil {
		return err
	}
	if err := saveGray(*out, res.Mosaic); err != nil {
		return err
	}
	if !*quiet {
		// Both stage times in one unit (ms), so the line never mixes µs/ms/s.
		fmt.Printf("%s → %s: S=%d×%d error=%d k=%d step2=%.1fms step3=%.1fms → %s\n",
			*inputArg, *targetArg, *tiles, *tiles, res.TotalError, res.SearchStats.Passes,
			float64(res.Timing.CostMatrix.Microseconds())/1e3,
			float64(res.Timing.Rearrange.Microseconds())/1e3, *out)
	}
	return nil
}

// writeConvergence writes the recorder's samples as JSON to path.
func writeConvergence(path string, rec *telemetry.ConvergenceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runColor(ctx context.Context, inputArg, targetArg, out string, size int, opts mosaic.Options, quiet bool, dump func() error) error {
	input, err := loadRGB(inputArg, size)
	if err != nil {
		return fmt.Errorf("input: %w", err)
	}
	target, err := loadRGB(targetArg, size)
	if err != nil {
		return fmt.Errorf("target: %w", err)
	}
	res, err := mosaic.GenerateRGBContext(ctx, input, target, opts)
	if err != nil {
		return err
	}
	if err := dump(); err != nil {
		return err
	}
	if err := saveRGB(out, res.Mosaic); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("%s → %s (color): error=%d → %s\n", inputArg, targetArg, res.TotalError, out)
	}
	return nil
}

// loadGray resolves a scene name or decodes a file, resampling to n×n.
func loadGray(arg string, n int) (*mosaic.Gray, error) {
	if img, err := mosaic.Scene(arg, n); err == nil {
		return img, nil
	} else if _, statErr := os.Stat(arg); statErr != nil {
		return nil, fmt.Errorf("%q is neither a scene nor a readable file (%v)", arg, err)
	}
	img, err := loadFileGray(arg)
	if err != nil {
		return nil, err
	}
	if img.W != n || img.H != n {
		img = img.ResizeBilinear(n, n)
	}
	return img, nil
}

func loadFileGray(path string) (*mosaic.Gray, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".pgm":
		return mosaic.LoadPGM(path)
	case ".ppm":
		rgb, err := mosaic.LoadPPM(path)
		if err != nil {
			return nil, err
		}
		return rgb.Gray(), nil
	case ".png":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		img, err := png.Decode(f)
		if err != nil {
			return nil, err
		}
		return imgutil.GrayFromImage(img), nil
	}
	return nil, fmt.Errorf("unsupported extension on %q (want .pgm, .ppm or .png)", path)
}

func loadRGB(arg string, n int) (*mosaic.RGB, error) {
	if img, err := mosaic.SceneRGB(arg, n); err == nil {
		return img, nil
	}
	var img *mosaic.RGB
	switch strings.ToLower(filepath.Ext(arg)) {
	case ".ppm":
		var err error
		img, err = mosaic.LoadPPM(arg)
		if err != nil {
			return nil, err
		}
	case ".png":
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		dec, err := png.Decode(f)
		if err != nil {
			return nil, err
		}
		img = imgutil.RGBFromImage(dec)
	default:
		return nil, fmt.Errorf("unsupported color input %q", arg)
	}
	if img.W != n || img.H != n {
		// Nearest-neighbour via the gray path per channel would lose color;
		// use a simple nearest resample inline.
		img = resizeRGBNearest(img, n, n)
	}
	return img, nil
}

func resizeRGBNearest(m *mosaic.RGB, w, h int) *mosaic.RGB {
	out := mosaic.NewRGB(w, h)
	for y := 0; y < h; y++ {
		sy := y * m.H / h
		for x := 0; x < w; x++ {
			sx := x * m.W / w
			r, g, b := m.At(sx, sy)
			out.Set(x, y, r, g, b)
		}
	}
	return out
}

func saveGray(path string, img *mosaic.Gray) error {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".pgm":
		return mosaic.SavePGM(path, img)
	case ".png", "":
		return mosaic.SavePNG(path, img)
	}
	return fmt.Errorf("unsupported output extension on %q", path)
}

func saveRGB(path string, img *mosaic.RGB) error {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ppm":
		return mosaic.SavePPM(path, img)
	case ".png", "":
		return mosaic.SavePNGRGB(path, img)
	}
	return fmt.Errorf("unsupported output extension on %q", path)
}
