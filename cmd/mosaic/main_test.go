package main

import (
	"encoding/json"
	"flag"
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"

	mosaic "repro"
)

// resetFlags lets each test drive run() with fresh flag state.
func resetFlags(args ...string) {
	flag.CommandLine = flag.NewFlagSet("mosaic", flag.ContinueOnError)
	os.Args = append([]string{"mosaic"}, args...)
}

func TestRunSceneToScene(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.png")
	resetFlags("-input", "lena", "-target", "sailboat", "-size", "64", "-tiles", "8", "-o", out, "-q")
	if err := run(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("output missing: %v", err)
	}
}

func TestRunWithFileInputAndResampling(t *testing.T) {
	dir := t.TempDir()
	// A PGM input of non-matching size must be resampled.
	src, err := mosaic.Scene("peppers", 100)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "in.pgm")
	if err := mosaic.SavePGM(in, src); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "m.pgm")
	resetFlags("-input", in, "-target", "sailboat", "-size", "64", "-tiles", "8", "-o", out, "-q")
	if err := run(); err != nil {
		t.Fatal(err)
	}
	got, err := mosaic.LoadPGM(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 64 {
		t.Errorf("output size %d", got.W)
	}
}

func TestRunAlgorithmsAndExtensions(t *testing.T) {
	for _, args := range [][]string{
		{"-algorithm", "optimization", "-solver", "hungarian"},
		{"-algorithm", "approximation-parallel"},
		{"-algorithm", "annealing"},
		{"-rotations"},
		{"-proxy", "2"},
		{"-metric", "l2"},
		{"-no-histogram-match"},
	} {
		out := filepath.Join(t.TempDir(), "m.png")
		full := append([]string{"-input", "lena", "-target", "sailboat", "-size", "32", "-tiles", "4", "-o", out, "-q"}, args...)
		resetFlags(full...)
		if err := run(); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestRunColorPipeline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.png")
	resetFlags("-color", "-input", "peppers", "-target", "barbara", "-size", "32", "-tiles", "4", "-o", out, "-q")
	if err := run(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArguments(t *testing.T) {
	for name, args := range map[string][]string{
		"bad-metric":    {"-metric", "l3"},
		"bad-algorithm": {"-algorithm", "magic"},
		"bad-input":     {"-input", "/nonexistent/file.pgm"},
		"bad-extension": {"-input", "lena", "-target", "sailboat", "-o", "out.bmp"},
		"bad-tiles":     {"-tiles", "7", "-size", "64"},
	} {
		resetFlags(append(args, "-q")...)
		if err := run(); err == nil {
			t.Errorf("%s: run() accepted %v", name, args)
		}
	}
}

func TestLoadGrayFromPNGAndPPM(t *testing.T) {
	dir := t.TempDir()
	src, _ := mosaic.Scene("lena", 32)
	pngPath := filepath.Join(dir, "x.png")
	if err := mosaic.SavePNG(pngPath, src); err != nil {
		t.Fatal(err)
	}
	img, err := loadGray(pngPath, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(src) {
		t.Error("PNG round trip changed pixels")
	}
	rgb, _ := mosaic.SceneRGB("lena", 32)
	ppmPath := filepath.Join(dir, "x.ppm")
	if err := mosaic.SavePPM(ppmPath, rgb); err != nil {
		t.Fatal(err)
	}
	gray, err := loadGray(ppmPath, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !gray.Equal(rgb.Gray()) {
		t.Error("PPM→gray conversion wrong")
	}
}

func TestResizeRGBNearest(t *testing.T) {
	m := mosaic.NewRGB(2, 2)
	m.Set(0, 0, 10, 20, 30)
	m.Set(1, 1, 40, 50, 60)
	r := resizeRGBNearest(m, 4, 4)
	if r.W != 4 || r.H != 4 {
		t.Fatalf("geometry %dx%d", r.W, r.H)
	}
	if cr, _, _ := r.At(0, 0); cr != 10 {
		t.Error("corner wrong")
	}
	if cr, _, _ := r.At(3, 3); cr != 40 {
		t.Error("far corner wrong")
	}
}

func TestRunColorWithFileInputs(t *testing.T) {
	dir := t.TempDir()
	in, err := mosaic.SceneRGB("peppers", 48)
	if err != nil {
		t.Fatal(err)
	}
	inPath := filepath.Join(dir, "in.ppm")
	if err := mosaic.SavePPM(inPath, in); err != nil {
		t.Fatal(err)
	}
	tgt, err := mosaic.SceneRGB("barbara", 48)
	if err != nil {
		t.Fatal(err)
	}
	tgtPath := filepath.Join(dir, "tgt.png")
	if err := mosaic.SavePNGRGB(tgtPath, tgt); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "m.ppm")
	// Mismatched file size (48) exercises the color resampling path.
	resetFlags("-color", "-input", inPath, "-target", tgtPath, "-size", "32", "-tiles", "4", "-o", out, "-q")
	if err := run(); err != nil {
		t.Fatal(err)
	}
	got, err := mosaic.LoadPPM(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 32 {
		t.Errorf("color output size %d", got.W)
	}
}

func TestRunColorRejectsBadInputs(t *testing.T) {
	resetFlags("-color", "-input", "/nope.gif", "-target", "barbara", "-size", "32", "-tiles", "4", "-q")
	if err := run(); err == nil {
		t.Error("accepted unsupported color input")
	}
	resetFlags("-color", "-input", "peppers", "-target", "barbara", "-size", "32", "-tiles", "4", "-o", "x.bmp", "-q")
	if err := run(); err == nil {
		t.Error("accepted unsupported color output extension")
	}
}

func TestSaveGrayPGMPath(t *testing.T) {
	img, _ := mosaic.Scene("lena", 16)
	p := filepath.Join(t.TempDir(), "y.pgm")
	if err := saveGray(p, img); err != nil {
		t.Fatal(err)
	}
	back, err := mosaic.LoadPGM(p)
	if err != nil || !back.Equal(img) {
		t.Error("saveGray PGM round trip failed")
	}
}

func TestRunWritesConvergenceFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "m.png")
	conv := filepath.Join(dir, "curve.json")
	resetFlags("-input", "lena", "-target", "sailboat", "-size", "64", "-tiles", "8",
		"-convergence", conv, "-o", out, "-q")
	if err := run(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(conv)
	if err != nil {
		t.Fatal(err)
	}
	var samples []map[string]any
	if err := json.Unmarshal(b, &samples); err != nil {
		t.Fatalf("convergence file is not a JSON array: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("convergence file has no samples")
	}
	prev := math.Inf(1)
	for i, s := range samples {
		cost, ok := s["cost"].(float64)
		if !ok {
			t.Fatalf("sample %d has no numeric cost: %v", i, s)
		}
		if cost > prev {
			t.Fatalf("cost rose at sample %d: %v -> %v", i, prev, cost)
		}
		prev = cost
	}
}

func TestRunServesTelemetryDuringRun(t *testing.T) {
	// Find a free port first: run() owns the server lifecycle, so the test
	// probes the endpoint from the observability dump instead of racing the
	// run — the simplest deterministic check is that -serve on a valid
	// address succeeds end to end and the run still writes its output.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	out := filepath.Join(t.TempDir(), "m.png")
	resetFlags("-input", "lena", "-target", "sailboat", "-size", "64", "-tiles", "8",
		"-serve", addr, "-o", out, "-q")
	if err := run(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("mosaic not written with -serve active: %v", err)
	}
}
