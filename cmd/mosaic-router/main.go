// Command mosaic-router fronts N mosaicd backends as one service. Each
// submission is consistent-hashed by its content hash (the same value the
// backends key their prepared-work caches by), so repeated content always
// lands on the node whose cache is already warm; a bounded-load check spills
// hot keys to ring successors instead of queueing arbitrarily deep; and a
// cross-node cache peek (HEAD /v1/prepared/{hash}) redirects a request to
// any backend that already holds its Prepared, so Step 2 runs at most once
// cluster-wide per content hash.
//
// Endpoints:
//
//	POST /v1/mosaic     route a submission (same wire format as mosaicd)
//	GET  /v1/jobs/{id}  proxy an async poll to the backend that owns the job
//	GET  /metrics       router metrics (per-backend requests, peek hits, failovers)
//	GET  /healthz       liveness
//	GET  /readyz        readiness — 503 when no backend is healthy
//
// A backend that fails at the transport level is removed from the ring (its
// keys rebalance to ring successors — ~1/N of the space, nothing else moves)
// and re-admitted when its /healthz answers again, which moves exactly its
// old keys back: cache affinity survives the bounce.
//
// Example:
//
//	mosaicd -addr 127.0.0.1:9201 & mosaicd -addr 127.0.0.1:9202 &
//	mosaic-router -addr 127.0.0.1:9200 \
//	  -peers http://127.0.0.1:9201,http://127.0.0.1:9202
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mosaic-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:9200", "listen address")
		peers       = flag.String("peers", "", "comma-separated mosaicd base URLs (required), e.g. http://127.0.0.1:9201,http://127.0.0.1:9202")
		replicas    = flag.Int("replicas", 128, "virtual nodes per backend on the hash ring")
		loadBound   = flag.Float64("load-bound", 1.25, "bounded-load factor c: spill a key when its home exceeds ceil(c·(inflight+1)/n); ≤ 1 disables")
		noPeek      = flag.Bool("no-peek", false, "disable the cross-node cache peek (requests always go to their ring home)")
		noShed      = flag.Bool("no-shed", false, "disable deadline-based load shedding (set when backends run -anytime: they degrade missed deadlines themselves)")
		maxSize     = flag.Int("max-size", 1024, "largest accepted working image side (must match the backends)")
		probeEvery  = flag.Duration("probe-interval", 500*time.Millisecond, "cadence of the health probe that re-admits recovered backends")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		buildinfo.Print(os.Stdout, "mosaic-router")
		return nil
	}
	var backends []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			backends = append(backends, p)
		}
	}
	if len(backends) == 0 {
		return fmt.Errorf("-peers is required (comma-separated mosaicd base URLs)")
	}

	reg := telemetry.NewRegistry()
	buildinfo.Register(reg, "mosaic-router")
	rt, err := cluster.New(cluster.Config{
		Backends:      backends,
		Replicas:      *replicas,
		LoadBound:     *loadBound,
		NoPeek:        *noPeek,
		NoShed:        *noShed,
		MaxImageSide:  *maxSize,
		ProbeInterval: *probeEvery,
		Registry:      reg,
	})
	if err != nil {
		return err
	}

	mux := telemetry.NewMux(reg, telemetry.WithReadiness(rt.Ready))
	rt.RegisterRoutes(mux)
	server, err := telemetry.StartServer(*addr, reg, mux)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mosaic-router: serving on http://%s, routing to %d backends: %s\n",
		server.Addr, len(backends), strings.Join(backends, ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	rt.Close()
	return server.Close()
}
