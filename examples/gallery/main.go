// Gallery: regenerate the image panels of the paper's Figures 1, 2, 3, 7
// and 8 into ./gallery/.
//
//	go run ./examples/gallery
//
// Figure 2/3: input, target, histogram-matched input and mosaic for
// Lena→Sailboat. Figure 7: optimization vs serial vs parallel approximation
// at S = 16², 32², 64². Figure 8: the three other scene pairs at S = 32².
// The console output reports each panel's total error and local-search pass
// count — the data behind Table I and the paper's k ≤ 9/8/16 remark.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.Config{
		Sizes:      []int{512},
		TileCounts: []int{16, 32, 64},
		Pairs:      experiments.PaperPairs(),
		Out:        os.Stdout,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	const dir = "gallery"
	if _, err := cfg.Figure1(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if _, err := cfg.Figure2(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if _, err := cfg.Figure7(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if _, err := cfg.Figure8(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npanels written to %s/\n", dir)
}
