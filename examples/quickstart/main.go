// Quickstart: generate one photomosaic with the default configuration —
// the paper's pipeline end to end in a dozen lines.
//
//	go run ./examples/quickstart
//
// It rearranges the tiles of the synthetic "lena" scene so they reproduce
// the "sailboat" scene (the paper's Figure 2), then writes the input,
// target and mosaic next to each other as PNGs.
package main

import (
	"fmt"
	"log"

	mosaic "repro"
)

func main() {
	input, err := mosaic.Scene("lena", 512)
	if err != nil {
		log.Fatal(err)
	}
	target, err := mosaic.Scene("sailboat", 512)
	if err != nil {
		log.Fatal(err)
	}

	// TilesPerSide: 32 divides both images into S = 32×32 = 1024 tiles of
	// 16×16 pixels. Everything else is the paper's default configuration:
	// histogram matching on, L1 error, serial local-search approximation.
	res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 32})
	if err != nil {
		log.Fatal(err)
	}

	for name, img := range map[string]*mosaic.Gray{
		"quickstart-input.png":  input,
		"quickstart-target.png": target,
		"quickstart-mosaic.png": res.Mosaic,
	} {
		if err := mosaic.SavePNG(name, img); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("total error (Eq. 2): %d\n", res.TotalError)
	fmt.Printf("local-search passes (k): %d, swaps: %d\n", res.SearchStats.Passes, res.SearchStats.Swaps)
	fmt.Printf("step 2 (error matrix): %v, step 3 (rearrange): %v\n",
		res.Timing.CostMatrix.Round(1e6), res.Timing.Rearrange.Round(1e6))
	fmt.Println("wrote quickstart-{input,target,mosaic}.png")
}
