// Color: the paper's color extension (§II: the method handles color images
// "only by changing the error function in Eq. (1)").
//
//	go run ./examples/color
//
// The per-channel form of the error — Σ(|Δr|+|Δg|+|Δb|) per tile pair — is
// the only change relative to the grayscale pipeline; histogram matching
// becomes per-channel matching. This example also contrasts the exact
// matching and the approximation on the same color pair, reproducing the
// paper's quality observation in color.
package main

import (
	"fmt"
	"log"

	mosaic "repro"
)

func main() {
	input, err := mosaic.SceneRGB("peppers", 512)
	if err != nil {
		log.Fatal(err)
	}
	target, err := mosaic.SceneRGB("barbara", 512)
	if err != nil {
		log.Fatal(err)
	}

	// Approximation (the default engine).
	approx, err := mosaic.GenerateRGB(input, target, mosaic.Options{TilesPerSide: 32})
	if err != nil {
		log.Fatal(err)
	}
	// Exact matching on the identical tile grid.
	opt, err := mosaic.GenerateRGB(input, target, mosaic.Options{
		TilesPerSide: 32,
		Algorithm:    mosaic.Optimization,
	})
	if err != nil {
		log.Fatal(err)
	}

	for name, img := range map[string]*mosaic.RGB{
		"color-input.png":         input,
		"color-target.png":        target,
		"color-mosaic-approx.png": approx.Mosaic,
		"color-mosaic-opt.png":    opt.Mosaic,
	} {
		if err := mosaic.SavePNGRGB(name, img); err != nil {
			log.Fatal(err)
		}
	}

	gap := 100 * float64(approx.TotalError-opt.TotalError) / float64(opt.TotalError)
	fmt.Printf("optimization error:  %d\n", opt.TotalError)
	fmt.Printf("approximation error: %d (+%.2f%%, k=%d passes)\n",
		approx.TotalError, gap, approx.SearchStats.Passes)
	fmt.Println("wrote color-{input,target,mosaic-approx,mosaic-opt}.png")
}
