// Video: mosaic a sequence of target frames from one input image — the
// real-time video photomosaic use case that motivates the paper's
// approximation algorithm (§III cites interactive and video photomosaic
// systems as the reason generation time matters).
//
//	go run ./examples/video
//
// A Sequencer amortises everything reusable across a stream, both tricks
// from the paper: the edge coloring of K_S depends only on S and is built
// once (§IV-B), and each frame's local search warm-starts from the previous
// frame's assignment — consecutive frames differ little, so k drops well
// below the from-scratch pass counts. The example synthesises a camera pan
// across a target scene and reports per-frame error, pass count and time.
package main

import (
	"fmt"
	"log"
	"time"

	mosaic "repro"
)

const (
	size   = 256
	tiles  = 16 // S = 256 tiles per frame
	frames = 8
)

func main() {
	input, err := mosaic.Scene("lena", size)
	if err != nil {
		log.Fatal(err)
	}
	// A wide scene to pan across (2× the frame width).
	wide, err := mosaic.Scene("sailboat", size*2)
	if err != nil {
		log.Fatal(err)
	}
	targets, err := mosaic.Pan(wide, size, frames)
	if err != nil {
		log.Fatal(err)
	}

	seq, err := mosaic.NewSequencer(input, mosaic.SequencerConfig{
		TilesPerSide: tiles,
		Device:       mosaic.NewDevice(0), // parallel search + device Step 2
	})
	if err != nil {
		log.Fatal(err)
	}

	var total time.Duration
	for f, target := range targets {
		start := time.Now()
		fr, err := seq.Next(target)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		total += elapsed

		name := fmt.Sprintf("video-frame-%02d.png", f)
		if err := mosaic.SavePNG(name, fr.Mosaic); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: error=%-9d k=%d %v → %s\n",
			f, fr.TotalError, fr.Passes, elapsed.Round(time.Millisecond), name)
	}
	fmt.Printf("%d frames in %v (%.1f fps)\n", frames, total.Round(time.Millisecond),
		float64(frames)/total.Seconds())
}
