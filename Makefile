# Developer entry points for the photomosaic reproduction.
#
#   make check       vet + build + race-enabled tests + fuzz seed corpus
#   make test        plain test suite (what CI tier 1 runs)
#   make race        full suite under the race detector
#   make fuzz-smoke  run every Fuzz* seed corpus as ordinary tests
#   make fuzz        short live fuzzing session per target (FUZZTIME=10s)
#   make bench       package micro-benchmarks
#   make bench-json  regenerate the committed BENCH_pipeline.json report
#   make bench-smoke fast CI-sized run of the bench-json pipeline
#   make telemetry-smoke  end-to-end probe of the -serve debug endpoint
#   make service-smoke    end-to-end probe of the mosaicd HTTP service
#   make chaos-smoke      fault-injection battery (-race) + a mosaicd chaos drill
#   make tilestore-smoke  columnar-store gates: oracle battery + fuzz seeds + goldens
#   make solver-smoke     pinned S=4096 solver comparison: certified gap + speedup gates
#   make cluster-smoke    4-backend router scale-out: ≥3x throughput, bit-identical, kill-one failover
#   make overload-smoke   graceful-degradation battery: anytime partials, admission 429s, zero 504s under burst

GO      ?= go
FUZZTIME ?= 10s
TELEMETRY_ADDR ?= 127.0.0.1:9190
SERVICE_ADDR ?= 127.0.0.1:9200

.PHONY: check vet build test race fuzz-smoke fuzz bench bench-json bench-smoke telemetry-smoke service-smoke chaos-smoke tilestore-smoke solver-smoke cluster-smoke overload-smoke clean

check: vet build race fuzz-smoke chaos-smoke tilestore-smoke solver-smoke cluster-smoke overload-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every fuzz target's seed corpus, executed as deterministic tests.
fuzz-smoke:
	$(GO) test -run Fuzz ./...

# Live coverage-guided fuzzing, one target at a time (go test allows a
# single -fuzz pattern per package invocation).
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/pnm
	$(GO) test -fuzz FuzzHistogramMatch -fuzztime $(FUZZTIME) ./internal/hist
	$(GO) test -fuzz FuzzGenerateOptions -fuzztime $(FUZZTIME) ./internal/core

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Regenerate the committed machine-readable benchmark report (pinned
# workload; see internal/benchjson for the schema).
bench-json:
	$(GO) run ./cmd/mosaicbench -bench-json BENCH_pipeline.json

# Same pipeline at a reduced size (128×128, 16 tiles/side) so CI can exercise
# the full serial/dirty/parallel comparison — including the dirty-replay
# tripwire — in seconds. The report goes to a scratch file, never committed.
bench-smoke:
	@tmp=$$(mktemp); trap 'rm -f $$tmp' EXIT; \
	$(GO) run ./cmd/mosaicbench -bench-json $$tmp -bench-size 128 -bench-tiles 16 && \
	echo "bench-smoke: ok"

# End-to-end probe of the observability surface, in two legs. First the CLI
# debug server: run a generation with -serve, wait for /healthz, require a 200
# and mosaic_* series from /metrics plus a 200 from /metrics.json. Then the
# request-scoped tracing in mosaicd: boot it with an access log, send a slow
# (normal) request and a failing (1ms-deadline) one, and require the
# X-Request-ID echo, one access-log line per request with the right outcome
# and phase attribution, both requests retrievable by ID from
# /debug/requests/{id}, and build info + phase histograms on /metrics.
telemetry-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/mosaic ./cmd/mosaic; \
	$$tmp/mosaic -input lena -target sailboat -size 1024 -tiles 64 \
		-algorithm approximation-parallel -serve $(TELEMETRY_ADDR) \
		-q -o $$tmp/mosaic.png & pid=$$!; \
	up=0; \
	for i in $$(seq 1 100); do \
		if curl -fsS -o /dev/null http://$(TELEMETRY_ADDR)/healthz 2>/dev/null; then up=1; break; fi; \
		kill -0 $$pid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	if [ $$up -ne 1 ]; then echo "telemetry-smoke: /healthz never answered 200"; kill $$pid 2>/dev/null; exit 1; fi; \
	if ! curl -fsS http://$(TELEMETRY_ADDR)/metrics | grep -q '^mosaic_'; then \
		echo "telemetry-smoke: /metrics missing mosaic_* series"; kill $$pid 2>/dev/null; exit 1; fi; \
	if ! curl -fsS -o /dev/null http://$(TELEMETRY_ADDR)/metrics.json; then \
		echo "telemetry-smoke: /metrics.json failed"; kill $$pid 2>/dev/null; exit 1; fi; \
	wait $$pid; \
	$(GO) build -o $$tmp/mosaicd ./cmd/mosaicd; \
	$$tmp/mosaicd -addr $(SERVICE_ADDR) -access-log $$tmp/access.log & dpid=$$!; \
	up=0; \
	for i in $$(seq 1 100); do \
		if curl -fsS -o /dev/null http://$(SERVICE_ADDR)/readyz 2>/dev/null; then up=1; break; fi; \
		kill -0 $$dpid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	if [ $$up -ne 1 ]; then echo "telemetry-smoke: mosaicd /readyz never answered 200"; kill $$dpid 2>/dev/null; exit 1; fi; \
	req='{"input":"lena","target":"sailboat","size":256,"tiles":16}'; \
	curl -fsS -D $$tmp/slow.hdr -o $$tmp/slow.json -X POST \
		-H 'Content-Type: application/json' -H 'X-Request-ID: smoke-slow-1' \
		-d "$$req" http://$(SERVICE_ADDR)/v1/mosaic || { \
		echo "telemetry-smoke: slow request failed"; kill $$dpid 2>/dev/null; exit 1; }; \
	grep -qi '^x-request-id: smoke-slow-1' $$tmp/slow.hdr || { \
		echo "telemetry-smoke: X-Request-ID not echoed"; kill $$dpid 2>/dev/null; exit 1; }; \
	grep -q '"request_id": "smoke-slow-1"' $$tmp/slow.json || { \
		echo "telemetry-smoke: request_id missing from the job response"; kill $$dpid 2>/dev/null; exit 1; }; \
	fail=$$(curl -s -o /dev/null -w '%{http_code}' -X POST \
		-H 'Content-Type: application/json' -H 'X-Request-ID: smoke-fail-1' \
		-d '{"input":"peppers","target":"plasma","size":512,"tiles":32,"timeout_ms":1}' \
		http://$(SERVICE_ADDR)/v1/mosaic); \
	if [ "$$fail" != "504" ]; then \
		echo "telemetry-smoke: 1ms-deadline request answered $$fail, want 504"; kill $$dpid 2>/dev/null; exit 1; fi; \
	grep 'smoke-slow-1' $$tmp/access.log | grep -q '"outcome":"done"' || { \
		echo "telemetry-smoke: no done access-log line for smoke-slow-1"; kill $$dpid 2>/dev/null; exit 1; }; \
	grep 'smoke-slow-1' $$tmp/access.log | grep -q '"phases_ns"' || { \
		echo "telemetry-smoke: access-log line lacks phase attribution"; kill $$dpid 2>/dev/null; exit 1; }; \
	grep 'smoke-fail-1' $$tmp/access.log | grep -q '"outcome":"timeout"' || { \
		echo "telemetry-smoke: no timeout access-log line for smoke-fail-1"; kill $$dpid 2>/dev/null; exit 1; }; \
	curl -fsS http://$(SERVICE_ADDR)/debug/requests/smoke-slow-1 | grep -q '"queue_wait"' || { \
		echo "telemetry-smoke: /debug/requests/smoke-slow-1 lacks queue_wait"; kill $$dpid 2>/dev/null; exit 1; }; \
	curl -fsS http://$(SERVICE_ADDR)/debug/requests/smoke-fail-1 | grep -q '"outcome": "timeout"' || { \
		echo "telemetry-smoke: /debug/requests/smoke-fail-1 missing or wrong outcome"; kill $$dpid 2>/dev/null; exit 1; }; \
	curl -fsS http://$(SERVICE_ADDR)/debug/requests | grep -q '"request_id": "smoke-fail-1"' || { \
		echo "telemetry-smoke: errored request missing from /debug/requests"; kill $$dpid 2>/dev/null; exit 1; }; \
	curl -fsS http://$(SERVICE_ADDR)/metrics > $$tmp/metrics.txt; \
	grep -q '^mosaic_build_info{' $$tmp/metrics.txt || { \
		echo "telemetry-smoke: mosaic_build_info missing"; kill $$dpid 2>/dev/null; exit 1; }; \
	grep -q '^mosaic_request_phase_ns_bucket' $$tmp/metrics.txt || { \
		echo "telemetry-smoke: mosaic_request_phase_ns missing"; kill $$dpid 2>/dev/null; exit 1; }; \
	grep -q '^mosaic_service_queue_wait_ns_bucket' $$tmp/metrics.txt || { \
		echo "telemetry-smoke: mosaic_service_queue_wait_ns missing"; kill $$dpid 2>/dev/null; exit 1; }; \
	kill -TERM $$dpid; \
	wait $$dpid || { echo "telemetry-smoke: mosaicd did not drain cleanly"; exit 1; }; \
	echo "telemetry-smoke: ok"

# End-to-end probe of the mosaicd service: start it, wait for /readyz,
# submit the same job twice (the second must be a cache hit that skipped
# Step 2), check the cache-hit counter on /metrics, then SIGTERM and
# require a clean graceful drain (exit 0).
service-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/mosaicd ./cmd/mosaicd; \
	$$tmp/mosaicd -addr $(SERVICE_ADDR) & pid=$$!; \
	up=0; \
	for i in $$(seq 1 100); do \
		if curl -fsS -o /dev/null http://$(SERVICE_ADDR)/readyz 2>/dev/null; then up=1; break; fi; \
		kill -0 $$pid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	if [ $$up -ne 1 ]; then echo "service-smoke: /readyz never answered 200"; kill $$pid 2>/dev/null; exit 1; fi; \
	req='{"input":"lena","target":"sailboat","size":256,"tiles":16}'; \
	curl -fsS -X POST -H 'Content-Type: application/json' -d "$$req" \
		http://$(SERVICE_ADDR)/v1/mosaic > $$tmp/first.json; \
	grep -q '"cache": "miss"' $$tmp/first.json || { \
		echo "service-smoke: first request was not a cache miss"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -fsS -X POST -H 'Content-Type: application/json' -d "$$req" \
		http://$(SERVICE_ADDR)/v1/mosaic > $$tmp/second.json; \
	grep -q '"cache": "hit"' $$tmp/second.json || { \
		echo "service-smoke: second request did not hit the cache"; kill $$pid 2>/dev/null; exit 1; }; \
	if grep -q '"error-matrix"' $$tmp/second.json; then \
		echo "service-smoke: cache hit still ran the cost matrix"; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -fsS http://$(SERVICE_ADDR)/metrics | grep '^mosaic_service_cache_hits_total' | grep -qv ' 0$$' || { \
		echo "service-smoke: mosaic_service_cache_hits_total not incremented"; kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "service-smoke: mosaicd did not drain cleanly"; exit 1; }; \
	echo "service-smoke: ok"

# The chaos battery: every fault-injection, retry/degrade and quarantine
# test under the race detector, then a live mosaicd drill — every second
# kernel launch failing — that must still produce 200s and report the faults
# it absorbed on /metrics.
chaos-smoke:
	@set -e; \
	$(GO) test -race -run 'TestChaos|TestFault|TestResilient|TestDo|TestDelays|TestZeroValue' \
		./internal/cuda/ ./internal/retry/ ./internal/localsearch/ ./internal/core/ ./internal/service/; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/mosaicd ./cmd/mosaicd; \
	$$tmp/mosaicd -addr $(SERVICE_ADDR) -chaos 'every=2,err=launch' -retry-base 100us & pid=$$!; \
	up=0; \
	for i in $$(seq 1 100); do \
		if curl -fsS -o /dev/null http://$(SERVICE_ADDR)/readyz 2>/dev/null; then up=1; break; fi; \
		kill -0 $$pid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	if [ $$up -ne 1 ]; then echo "chaos-smoke: /readyz never answered 200"; kill $$pid 2>/dev/null; exit 1; fi; \
	req='{"input":"lena","target":"sailboat","size":256,"tiles":16,"algorithm":"approximation-parallel"}'; \
	curl -fsS -X POST -H 'Content-Type: application/json' -d "$$req" \
		http://$(SERVICE_ADDR)/v1/mosaic > $$tmp/storm.json || { \
		echo "chaos-smoke: job failed under the launch storm"; kill $$pid 2>/dev/null; exit 1; }; \
	grep -q '"status": "done"' $$tmp/storm.json || { \
		echo "chaos-smoke: job not done under the launch storm"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -fsS http://$(SERVICE_ADDR)/metrics | grep '^mosaic_cuda_launch_faults_total' | grep -qv ' 0$$' || { \
		echo "chaos-smoke: mosaic_cuda_launch_faults_total not incremented"; kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "chaos-smoke: mosaicd did not drain cleanly"; exit 1; }; \
	echo "chaos-smoke: ok"

# The columnar tile store's correctness gates under the race detector: the
# differential oracle battery (every builder × metric × orientation, store vs
# legacy crop path), the store's unit oracles and committed fuzz seed corpus,
# and the golden end-to-end gallery hashes.
tilestore-smoke:
	$(GO) test -race -run 'TestTileStore|TestFromGrid|TestScatter|TestGather|TestGlobalHistogram|TestLayout|TestMean|TestBuildStore|TestStoreContext|TestSplitRange|TestGoldenGalleryScenes|Fuzz' \
		./internal/tilestore/ ./internal/metric/ ./internal/cuda/ ./internal/core/
	@echo "tilestore-smoke: ok"

# The assignment-solver quality gate on the pinned comparison instance
# (lena → sailboat at 512 px, 64×64 tiles, S = 4096): both certified
# approximate solvers (auction-device, sinkhorn) must beat the exact JV
# baseline's wall time while staying inside the certified 1% cost gap.
solver-smoke:
	MOSAIC_SOLVER_SMOKE=1 $(GO) test -run TestSolverSmoke -v ./internal/benchjson/
	@echo "solver-smoke: ok"

# The cluster scale-out gate: four in-process mosaicd backends behind the
# consistent-hash router must deliver ≥3x the aggregate throughput of one
# identical node on a pinned device-latency-bound workload, bit-identical to
# the single node's output; a cross-node cache peek must redirect to the node
# already holding the Prepared; killing a backend mid-load must be absorbed
# by failover with the ring rebalanced to the three survivors.
cluster-smoke:
	MOSAIC_CLUSTER_SMOKE=1 $(GO) test -run TestClusterSmoke -v ./internal/cluster/
	@echo "cluster-smoke: ok"

# The graceful-degradation battery in two legs. First the in-package overload
# tests under the race detector (anytime partial contract, predictive
# admission, deadline propagation and router shedding). Then a live drill:
# boot a small anytime mosaicd (2 workers, queue 4), warm the latency
# estimator with 8 normal requests, then require (a) a 1ms-deadline anytime
# request answers 200 with partial:true and the X-Mosaic-Partial header,
# (b) a strict 1ms-deadline request is rejected 429 with a Retry-After
# computed from live load, (c) a 20-way tight-deadline burst produces zero
# 504s — only 200s and explicit 429s — and (d) /metrics reports the partial
# and admission counters.
overload-smoke:
	@set -e; \
	$(GO) test -race -run 'TestAnytime|TestOverload|TestAdmission|TestRetryAfter|TestEstimator|TestNoAdmission|TestSerialAnytime|TestDirtyAnytime|TestParallelAnytime|TestAnnealAnytime|TestSplitBudget|TestRouterDerives|TestRouterSheds|TestRouterNoShed|TestRouterStops|TestDeadline' \
		./internal/localsearch/ ./internal/core/ ./internal/service/ ./internal/cluster/; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/mosaicd ./cmd/mosaicd; \
	$$tmp/mosaicd -addr $(SERVICE_ADDR) -anytime -workers 2 -queue 4 & pid=$$!; \
	up=0; \
	for i in $$(seq 1 100); do \
		if curl -fsS -o /dev/null http://$(SERVICE_ADDR)/readyz 2>/dev/null; then up=1; break; fi; \
		kill -0 $$pid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	if [ $$up -ne 1 ]; then echo "overload-smoke: /readyz never answered 200"; kill $$pid 2>/dev/null; exit 1; fi; \
	for scene in lena sailboat airplane peppers barbara baboon tiffany plasma; do \
		curl -fsS -o /dev/null -X POST -H 'Content-Type: application/json' \
			-d "{\"input\":\"$$scene\",\"target\":\"gradient\",\"size\":256,\"tiles\":16}" \
			http://$(SERVICE_ADDR)/v1/mosaic || { \
			echo "overload-smoke: training request ($$scene) failed"; kill $$pid 2>/dev/null; exit 1; }; \
	done; \
	curl -fsS -D $$tmp/partial.hdr -o $$tmp/partial.json -X POST \
		-H 'Content-Type: application/json' \
		-d '{"input":"lena","target":"sailboat","size":512,"tiles":32,"timeout_ms":1}' \
		http://$(SERVICE_ADDR)/v1/mosaic || { \
		echo "overload-smoke: anytime 1ms request failed outright"; kill $$pid 2>/dev/null; exit 1; }; \
	grep -qi '^x-mosaic-partial: true' $$tmp/partial.hdr || { \
		echo "overload-smoke: X-Mosaic-Partial header missing"; kill $$pid 2>/dev/null; exit 1; }; \
	grep -q '"partial": true' $$tmp/partial.json || { \
		echo "overload-smoke: partial:true missing from the body"; kill $$pid 2>/dev/null; exit 1; }; \
	strict=$$(curl -s -D $$tmp/strict.hdr -o /dev/null -w '%{http_code}' -X POST \
		-H 'Content-Type: application/json' \
		-d '{"input":"lena","target":"sailboat","size":256,"tiles":16,"timeout_ms":1,"anytime":false}' \
		http://$(SERVICE_ADDR)/v1/mosaic); \
	if [ "$$strict" != "429" ]; then \
		echo "overload-smoke: strict 1ms request answered $$strict, want 429"; kill $$pid 2>/dev/null; exit 1; fi; \
	grep -qi '^retry-after: ' $$tmp/strict.hdr || { \
		echo "overload-smoke: 429 without Retry-After"; kill $$pid 2>/dev/null; exit 1; }; \
	: > $$tmp/burst.codes; \
	cpids=""; \
	for i in $$(seq 1 20); do \
		curl -s -o /dev/null -w '%{http_code}\n' -X POST \
			-H 'Content-Type: application/json' \
			-d "{\"input\":\"peppers\",\"target\":\"plasma\",\"size\":256,\"tiles\":16,\"timeout_ms\":$$((i % 5 + 1))}" \
			http://$(SERVICE_ADDR)/v1/mosaic >> $$tmp/burst.codes & \
		cpids="$$cpids $$!"; \
	done; \
	for cp in $$cpids; do wait $$cp || true; done; \
	if grep -q '^504$$' $$tmp/burst.codes; then \
		echo "overload-smoke: 504 in the anytime burst:"; cat $$tmp/burst.codes; kill $$pid 2>/dev/null; exit 1; fi; \
	if ! grep -q '^200$$' $$tmp/burst.codes; then \
		echo "overload-smoke: no 200 in the burst:"; cat $$tmp/burst.codes; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -fsS http://$(SERVICE_ADDR)/metrics > $$tmp/metrics.txt; \
	grep '^mosaic_partial_responses_total' $$tmp/metrics.txt | grep -qv ' 0$$' || { \
		echo "overload-smoke: mosaic_partial_responses_total not incremented"; kill $$pid 2>/dev/null; exit 1; }; \
	grep '^mosaic_admission_rejections_total' $$tmp/metrics.txt | grep -qv ' 0$$' || { \
		echo "overload-smoke: mosaic_admission_rejections_total not incremented"; kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "overload-smoke: mosaicd did not drain cleanly"; exit 1; }; \
	echo "overload-smoke: ok"

clean:
	$(GO) clean ./...
