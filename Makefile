# Developer entry points for the photomosaic reproduction.
#
#   make check       vet + build + race-enabled tests + fuzz seed corpus
#   make test        plain test suite (what CI tier 1 runs)
#   make race        full suite under the race detector
#   make fuzz-smoke  run every Fuzz* seed corpus as ordinary tests
#   make fuzz        short live fuzzing session per target (FUZZTIME=10s)
#   make bench       package micro-benchmarks

GO      ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz-smoke fuzz bench clean

check: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every fuzz target's seed corpus, executed as deterministic tests.
fuzz-smoke:
	$(GO) test -run Fuzz ./...

# Live coverage-guided fuzzing, one target at a time (go test allows a
# single -fuzz pattern per package invocation).
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/pnm
	$(GO) test -fuzz FuzzHistogramMatch -fuzztime $(FUZZTIME) ./internal/hist
	$(GO) test -fuzz FuzzGenerateOptions -fuzztime $(FUZZTIME) ./internal/core

bench:
	$(GO) test -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
