package synth

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hist"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, s := range Scenes() {
		a := MustGenerate(s, 64)
		b := MustGenerate(s, 64)
		if !a.Equal(b) {
			t.Errorf("%s: generation is not deterministic", s)
		}
	}
}

func TestGenerateGeometry(t *testing.T) {
	img := MustGenerate(Lena, 96)
	if img.W != 96 || img.H != 96 {
		t.Errorf("geometry %dx%d", img.W, img.H)
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	if _, err := Generate(Lena, 0); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := Generate(Scene("nope"), 32); err == nil {
		t.Error("accepted unknown scene")
	}
}

func TestParseScene(t *testing.T) {
	s, err := ParseScene("baboon")
	if err != nil || s != Baboon {
		t.Errorf("ParseScene(baboon) = %q, %v", s, err)
	}
	if _, err := ParseScene("mona-lisa"); err == nil {
		t.Error("ParseScene accepted an unknown name")
	}
}

func TestScenesAreDistinct(t *testing.T) {
	const n = 64
	imgs := make(map[Scene][]uint8)
	for _, s := range Scenes() {
		imgs[s] = MustGenerate(s, n).Pix
	}
	list := Scenes()
	for i := 0; i < len(list); i++ {
		for j := i + 1; j < len(list); j++ {
			a, b := imgs[list[i]], imgs[list[j]]
			var diff int64
			for k := range a {
				d := int64(a[k]) - int64(b[k])
				if d < 0 {
					d = -d
				}
				diff += d
			}
			// Average per-pixel difference must be substantial.
			if diff/int64(n*n) < 5 {
				t.Errorf("%s and %s are nearly identical (mean |Δ| = %d)", list[i], list[j], diff/int64(n*n))
			}
		}
	}
}

func TestScenesHaveNonDegenerateHistograms(t *testing.T) {
	// Every photographic stand-in must occupy a reasonable spread of
	// intensity levels — the property histogram matching relies on.
	// Tiffany is excluded: its deliberately compressed high-key histogram is
	// covered by TestTiffanyIsHighKey below.
	for _, s := range []Scene{Lena, Sailboat, Airplane, Peppers, Barbara, Baboon, Plasma} {
		img := MustGenerate(s, 128)
		h := hist.Of(img)
		occupied := 0
		for _, c := range h {
			if c > 0 {
				occupied++
			}
		}
		if occupied < 32 {
			t.Errorf("%s: only %d intensity levels occupied", s, occupied)
		}
		lo, _ := h.Min()
		hi, _ := h.Max()
		if int(hi)-int(lo) < 100 {
			t.Errorf("%s: dynamic range only [%d, %d]", s, lo, hi)
		}
	}
}

func TestTiffanyIsHighKey(t *testing.T) {
	// The paper uses Tiffany precisely because its intensity mass is
	// compressed into the bright range — the case where §II's histogram
	// adjustment matters most. The stand-in must keep that character:
	// bright mean, narrow spread.
	img := MustGenerate(Tiffany, 128)
	h := hist.Of(img)
	mean, err := h.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if mean < 150 {
		t.Errorf("tiffany mean %v, want high-key (≥ 150)", mean)
	}
	lo, _ := h.Min()
	hi, _ := h.Max()
	if int(hi)-int(lo) > 160 {
		t.Errorf("tiffany range [%d, %d] too wide for a high-key scene", lo, hi)
	}
}

func TestCheckerIsTwoLevel(t *testing.T) {
	img := MustGenerate(Checker, 64)
	h := hist.Of(img)
	occupied := 0
	for _, c := range h {
		if c > 0 {
			occupied++
		}
	}
	if occupied != 2 {
		t.Errorf("checker occupies %d levels, want 2", occupied)
	}
}

func TestGradientIsMonotoneAlongDiagonal(t *testing.T) {
	img := MustGenerate(Gradient, 64)
	prev := -1
	for i := 0; i < 64; i++ {
		v := int(img.At(i, i))
		if v < prev {
			t.Fatalf("diagonal not monotone at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
	if img.At(0, 0) > 10 || img.At(63, 63) < 245 {
		t.Errorf("gradient endpoints %d..%d", img.At(0, 0), img.At(63, 63))
	}
}

func TestHighKeyScenesAreBright(t *testing.T) {
	// Tiffany and Airplane are the paper's bright images; their synthetic
	// stand-ins must be brighter than Sailboat's water-heavy scene.
	tiffany := MustGenerate(Tiffany, 128).MeanIntensity()
	sailboat := MustGenerate(Sailboat, 128).MeanIntensity()
	airplane := MustGenerate(Airplane, 128).MeanIntensity()
	if tiffany <= sailboat {
		t.Errorf("tiffany mean %v not brighter than sailboat %v", tiffany, sailboat)
	}
	if airplane <= sailboat {
		t.Errorf("airplane mean %v not brighter than sailboat %v", airplane, sailboat)
	}
}

func TestBaboonIsBusiestScene(t *testing.T) {
	// Total variation (sum of |horizontal gradient|) of the fur texture must
	// exceed the portrait scenes — the property that makes Baboon the hard
	// target in the paper's Figure 8.
	tv := func(s Scene) int64 {
		img := MustGenerate(s, 128)
		var sum int64
		for y := 0; y < img.H; y++ {
			for x := 1; x < img.W; x++ {
				d := int64(img.At(x, y)) - int64(img.At(x-1, y))
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	baboon := tv(Baboon)
	for _, s := range []Scene{Lena, Tiffany, Peppers, Sailboat} {
		if other := tv(s); baboon <= other {
			t.Errorf("baboon TV %d not above %s TV %d", baboon, s, other)
		}
	}
}

func TestGenerateRGBConsistentWithGray(t *testing.T) {
	rgb, err := GenerateRGB(Lena, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rgb.W != 64 || rgb.H != 64 {
		t.Fatalf("geometry %dx%d", rgb.W, rgb.H)
	}
	// The color version's luminance must correlate with the gray scene:
	// bright gray pixels should be bright in color too. Check the mean
	// ordering of the darkest and brightest deciles.
	gray := MustGenerate(Lena, 64)
	lum := rgb.Gray()
	var sumBright, sumDark, nBright, nDark int64
	for i, p := range gray.Pix {
		switch {
		case p > 200:
			sumBright += int64(lum.Pix[i])
			nBright++
		case p < 55:
			sumDark += int64(lum.Pix[i])
			nDark++
		}
	}
	if nBright > 0 && nDark > 0 && sumBright/nBright <= sumDark/nDark {
		t.Error("color luminance does not track the gray scene")
	}
}

func TestValueNoiseRange(t *testing.T) {
	f := func(seed uint64, xi, yi int16) bool {
		x := float64(xi) / 32
		y := float64(yi) / 32
		v := valueNoise(seed, x, y)
		return v >= 0 && v < 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFbmRange(t *testing.T) {
	f := func(seed uint64, xi, yi int16) bool {
		v := fbm(seed, float64(xi)/64, float64(yi)/64, 5, 4, 0.6)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueNoiseContinuity(t *testing.T) {
	// Adjacent samples at fine resolution must not jump: smoothed lattice
	// noise is Lipschitz at the lattice scale.
	const step = 1.0 / 256
	prev := valueNoise(1, 0, 0.3)
	for i := 1; i < 512; i++ {
		cur := valueNoise(1, float64(i)*step, 0.3)
		if math.Abs(cur-prev) > 0.05 {
			t.Fatalf("noise jumps by %v at step %d", math.Abs(cur-prev), i)
		}
		prev = cur
	}
}

func TestClampHelpers(t *testing.T) {
	if clamp8(-0.5) != 0 || clamp8(2) != 255 || clamp8(0.5) != 128 {
		t.Error("clamp8 wrong")
	}
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.25) != 0.25 {
		t.Error("clamp01 wrong")
	}
	if sstep(0, 1, -1) != 0 || sstep(0, 1, 2) != 1 {
		t.Error("sstep endpoints wrong")
	}
	if sstep(1, 1, 0.5) != 0 || sstep(1, 1, 1.5) != 1 {
		t.Error("sstep degenerate edge wrong")
	}
}

func BenchmarkGenerateLena512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Lena, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateBaboon256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Baboon, 256); err != nil {
			b.Fatal(err)
		}
	}
}
