package synth

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/imgutil"
)

// Scene names a synthetic stand-in for one of the paper's test photographs.
type Scene string

// The scene library. Each name corresponds to the USC-SIPI photograph used
// in the paper's figures; see the package comment for the substitution
// rationale.
const (
	Lena     Scene = "lena"     // portrait: face-like oval, hat band, soft background
	Sailboat Scene = "sailboat" // sky/water split, triangular sail, hull
	Airplane Scene = "airplane" // bright fuselage over mid-gray ground
	Peppers  Scene = "peppers"  // overlapping smooth blobs, strong shading
	Barbara  Scene = "barbara"  // high-frequency oriented stripe texture
	Baboon   Scene = "baboon"   // dense fur-like high-frequency noise
	Tiffany  Scene = "tiffany"  // high-key portrait, compressed highlights
	Plasma   Scene = "plasma"   // pure fBm cloud (extra, for property tests)
	Gradient Scene = "gradient" // diagonal ramp (extra, analytic histogram)
	Checker  Scene = "checker"  // 8×8 checkerboard (extra, worst-case tiles)
)

// Scenes lists every available scene in stable order.
func Scenes() []Scene {
	return []Scene{Lena, Sailboat, Airplane, Peppers, Barbara, Baboon, Tiffany, Plasma, Gradient, Checker}
}

// ParseScene resolves a scene name, returning an error listing the valid
// names on failure.
func ParseScene(name string) (Scene, error) {
	for _, s := range Scenes() {
		if string(s) == name {
			return s, nil
		}
	}
	valid := make([]string, 0, len(Scenes()))
	for _, s := range Scenes() {
		valid = append(valid, string(s))
	}
	sort.Strings(valid)
	return "", fmt.Errorf("synth: unknown scene %q (valid: %v)", name, valid)
}

// Generate renders an n×n grayscale image of the scene. The same (scene, n)
// pair always produces identical pixels.
func Generate(scene Scene, n int) (*imgutil.Gray, error) {
	if n <= 0 {
		return nil, fmt.Errorf("synth: Generate(%q, %d): size must be positive", scene, n)
	}
	f, err := intensityFunc(scene)
	if err != nil {
		return nil, err
	}
	img := imgutil.NewGray(n, n)
	for y := 0; y < n; y++ {
		fy := (float64(y) + 0.5) / float64(n)
		for x := 0; x < n; x++ {
			fx := (float64(x) + 0.5) / float64(n)
			img.Pix[y*n+x] = clamp8(f(fx, fy))
		}
	}
	return img, nil
}

// MustGenerate is Generate for known-good arguments; it panics on error and
// exists for tests and examples.
func MustGenerate(scene Scene, n int) *imgutil.Gray {
	img, err := Generate(scene, n)
	if err != nil {
		panic(err)
	}
	return img
}

// intensityFunc returns the unit-square intensity field of a scene.
func intensityFunc(scene Scene) (func(x, y float64) float64, error) {
	switch scene {
	case Lena:
		return lenaField, nil
	case Sailboat:
		return sailboatField, nil
	case Airplane:
		return airplaneField, nil
	case Peppers:
		return peppersField, nil
	case Barbara:
		return barbaraField, nil
	case Baboon:
		return baboonField, nil
	case Tiffany:
		return tiffanyField, nil
	case Plasma:
		return plasmaField, nil
	case Gradient:
		return gradientField, nil
	case Checker:
		return checkerField, nil
	}
	return nil, fmt.Errorf("synth: unknown scene %q", scene)
}

// Per-scene noise seeds; distinct so scenes are decorrelated.
const (
	seedLena     = 0xA001
	seedSailboat = 0xB002
	seedAirplane = 0xC003
	seedPeppers  = 0xD004
	seedBarbara  = 0xE005
	seedBaboon   = 0xF006
	seedTiffany  = 0xA107
	seedPlasma   = 0xB208
)

// lenaField: a soft portrait — oval "face" highlight, darker "hat" diagonal
// band, mid-tone textured background with a vignette.
func lenaField(x, y float64) float64 {
	bg := 0.35 + 0.25*fbm(seedLena, x, y, 4, 3, 0.55)
	face := disk(x, y, 0.52, 0.55, 0.22, 0.10)
	faceTone := 0.62 + 0.10*fbm(seedLena+1, x, y, 3, 8, 0.5)
	// Hat: a diagonal band above the face.
	band := sstep(0.05, 0.12, y-0.45*x) * (1 - sstep(0.28, 0.36, y-0.45*x))
	bandTone := 0.22 + 0.08*fbm(seedLena+2, x, y, 3, 12, 0.5)
	v := bg
	v = v*(1-band) + bandTone*band
	v = v*(1-face) + faceTone*face
	// Shoulder: bright lower-left wedge.
	sh := sstep(0.75, 0.9, y) * (1 - sstep(0.5, 0.8, x))
	v = v*(1-sh) + (0.7+0.05*fbm(seedLena+3, x, y, 2, 6, 0.5))*sh
	vign := 1 - 0.35*math.Pow(math.Hypot(x-0.5, y-0.5)*1.4, 2)
	return clamp01(v * vign)
}

// sailboatField: bright sky over dark rippled water, a triangular sail and
// a dark hull at the waterline.
func sailboatField(x, y float64) float64 {
	horizon := 0.55
	sky := 0.72 + 0.12*fbm(seedSailboat, x, y*2, 4, 3, 0.5)
	water := 0.28 + 0.14*fbm(seedSailboat+1, x*2, y*8, 4, 6, 0.6)
	v := sky
	if y > horizon {
		v = water
	} else {
		// Soften the horizon over a couple of pixels of the unit square.
		t := sstep(horizon-0.01, horizon+0.01, y)
		v = sky*(1-t) + water*t
	}
	// Sail: triangle with apex at (0.5, 0.12), base on the waterline.
	if y < horizon && y > 0.12 {
		halfWidth := 0.18 * (y - 0.12) / (horizon - 0.12)
		if math.Abs(x-0.5) < halfWidth {
			v = 0.88 - 0.06*fbm(seedSailboat+2, x, y, 2, 10, 0.5)
		}
	}
	// Hull: dark sliver sitting on the waterline.
	hull := sstep(horizon, horizon+0.015, y) * (1 - sstep(horizon+0.045, horizon+0.06, y)) *
		sstep(0.3, 0.34, x) * (1 - sstep(0.66, 0.7, x))
	v = v*(1-hull) + 0.12*hull
	return clamp01(v)
}

// airplaneField: a very bright fuselage and wings over a mid-gray textured
// ground — the high-key histogram that makes histogram matching matter.
func airplaneField(x, y float64) float64 {
	ground := 0.58 + 0.18*fbm(seedAirplane, x, y, 5, 4, 0.55)
	// Fuselage: elongated soft ellipse along the main diagonal.
	dx, dy := x-0.5, y-0.5
	u := (dx*0.866 + dy*0.5) / 0.38  // major axis
	w := (-dx*0.5 + dy*0.866) / 0.07 // minor axis
	body := 1 - sstep(0.8, 1.1, math.Hypot(u, w))
	// Wings: perpendicular ellipse.
	u2 := (dx*0.866 + dy*0.5) / 0.08
	w2 := (-dx*0.5 + dy*0.866) / 0.30
	wing := 1 - sstep(0.8, 1.1, math.Hypot(u2, w2))
	plane := math.Max(body, wing)
	// Ground shadow under the aircraft gives the scene its dark tail, as the
	// photograph's mountain shadows do.
	su := (dx + 0.08) / 0.40
	sw := (dy + 0.10) / 0.10
	shadow := (1 - sstep(0.8, 1.2, math.Hypot(su, sw))) * (1 - plane)
	v := ground*(1-shadow) + 0.15*shadow
	v = v*(1-plane) + (0.92-0.04*fbm(seedAirplane+1, x, y, 2, 8, 0.5))*plane
	// Tail fin with a dark insignia stripe.
	fin := disk(x, y, 0.26, 0.35, 0.05, 0.02)
	v = v*(1-fin) + 0.85*fin
	stripe := disk(x, y, 0.26, 0.35, 0.018, 0.008)
	v = v*(1-stripe) + 0.2*stripe
	return clamp01(v)
}

// peppersField: overlapping smooth blobs with strong per-blob shading.
func peppersField(x, y float64) float64 {
	type blob struct{ cx, cy, r, tone float64 }
	blobs := []blob{
		{0.30, 0.35, 0.24, 0.55},
		{0.68, 0.30, 0.20, 0.30},
		{0.45, 0.68, 0.26, 0.70},
		{0.78, 0.70, 0.18, 0.45},
		{0.15, 0.75, 0.16, 0.25},
	}
	v := 0.18 + 0.08*fbm(seedPeppers, x, y, 3, 5, 0.5)
	for i, b := range blobs {
		m := disk(x, y, b.cx, b.cy, b.r, 0.05)
		// Lambertian-ish shading: brighter toward the upper-left of each blob.
		shade := b.tone + 0.25*((b.cx-x)+(b.cy-y))/b.r
		shade += 0.05 * fbm(seedPeppers+uint64(i)+1, x, y, 3, 9, 0.5)
		v = v*(1-m) + clamp01(shade)*m
	}
	return clamp01(v)
}

// barbaraField: the oriented high-frequency stripes Barbara is famous for,
// over a smooth base, with stripe direction varying by region.
func barbaraField(x, y float64) float64 {
	base := 0.45 + 0.20*fbm(seedBarbara, x, y, 3, 3, 0.5)
	// Region A (lower-left): 45° stripes. Region B (right): vertical stripes.
	sA := 0.5 + 0.5*math.Sin(2*math.Pi*28*(x+y))
	sB := 0.5 + 0.5*math.Sin(2*math.Pi*36*x)
	mA := sstep(0.55, 0.65, y) * (1 - sstep(0.45, 0.55, x))
	mB := sstep(0.6, 0.7, x)
	v := base
	v = v*(1-mA) + (0.35+0.4*sA)*mA
	v = v*(1-mB) + (0.3+0.45*sB)*mB
	// A smooth "face" disk keeps a low-frequency subject present.
	f := disk(x, y, 0.38, 0.3, 0.15, 0.06)
	v = v*(1-f) + (0.6+0.08*fbm(seedBarbara+1, x, y, 2, 7, 0.5))*f
	return clamp01(v)
}

// baboonField: dense fur-like texture — high-gain fBm with a central bright
// "nose" stripe, the busiest spectrum in the set.
func baboonField(x, y float64) float64 {
	fur := fbm(seedBaboon, x, y, 6, 16, 0.75)
	v := 0.25 + 0.6*fur
	nose := (1 - sstep(0.06, 0.12, math.Abs(x-0.5))) * sstep(0.35, 0.45, y)
	v = v*(1-0.7*nose) + 0.75*0.7*nose
	eyeL := disk(x, y, 0.36, 0.3, 0.05, 0.02)
	eyeR := disk(x, y, 0.64, 0.3, 0.05, 0.02)
	v = v * (1 - 0.8*math.Max(eyeL, eyeR))
	return clamp01(v)
}

// tiffanyField: high-key portrait — most mass in the upper intensity range,
// mirroring Tiffany's compressed bright histogram.
func tiffanyField(x, y float64) float64 {
	v := 0.70 + 0.15*fbm(seedTiffany, x, y, 4, 4, 0.55)
	face := disk(x, y, 0.5, 0.5, 0.25, 0.1)
	v = v*(1-face) + (0.82+0.06*fbm(seedTiffany+1, x, y, 3, 7, 0.5))*face
	hair := sstep(0.0, 0.2, y) * (1 - sstep(0.25, 0.4, y))
	v = v*(1-0.5*hair) + 0.35*0.5*hair
	return clamp01(v)
}

// plasmaField: pure mid-gain fBm cloud.
func plasmaField(x, y float64) float64 {
	return clamp01(fbm(seedPlasma, x, y, 6, 4, 0.6))
}

// gradientField: diagonal ramp with an analytic, uniform-ish histogram.
func gradientField(x, y float64) float64 {
	return clamp01((x + y) / 2)
}

// checkerField: 8×8 checkerboard — the degenerate two-level histogram that
// stresses histogram matching and gives tiles only two error levels.
func checkerField(x, y float64) float64 {
	ix := int(x * 8)
	iy := int(y * 8)
	if (ix+iy)%2 == 0 {
		return 0.85
	}
	return 0.15
}

// GenerateRGB renders an n×n color version of the scene: the grayscale field
// drives luminance while a per-scene hue field modulates the channels. Used
// by the color-mosaic extension.
func GenerateRGB(scene Scene, n int) (*imgutil.RGB, error) {
	gray, err := Generate(scene, n)
	if err != nil {
		return nil, err
	}
	f, _ := intensityFunc(scene) // error already checked by Generate
	_ = f
	out := imgutil.NewRGB(n, n)
	seed := sceneSeed(scene)
	for y := 0; y < n; y++ {
		fy := (float64(y) + 0.5) / float64(n)
		for x := 0; x < n; x++ {
			fx := (float64(x) + 0.5) / float64(n)
			l := float64(gray.Pix[y*n+x]) / 255
			// Low-frequency hue fields, decorrelated per channel.
			cr := 0.8 + 0.4*(fbm(seed+11, fx, fy, 3, 2, 0.5)-0.5)
			cg := 0.8 + 0.4*(fbm(seed+23, fx, fy, 3, 2, 0.5)-0.5)
			cb := 0.8 + 0.4*(fbm(seed+37, fx, fy, 3, 2, 0.5)-0.5)
			out.Set(x, y, clamp8(l*cr), clamp8(l*cg), clamp8(l*cb))
		}
	}
	return out, nil
}

func sceneSeed(scene Scene) uint64 {
	var s uint64 = 0x5EED
	for _, c := range string(scene) {
		s = splitmix64(s ^ uint64(c))
	}
	return s
}
