// Package synth generates deterministic synthetic test images.
//
// The paper evaluates on USC-SIPI photographs (Lena, Sailboat, Airplane,
// Peppers, Barbara, Baboon, Tiffany) which cannot ship with this repository.
// Each scene here is a procedural stand-in with comparable gross statistics:
// a dominant subject, a textured background, a non-uniform histogram and
// spatial frequency content in the same ballpark, so histogram matching,
// tile-matching quality and local-search pass counts behave like the
// paper's. Generation is fully deterministic (a splitmix64-seeded value
// noise, no math/rand), so experiment outputs are reproducible bit-for-bit
// across platforms and Go releases.
package synth

import "math"

// splitmix64 is the scrambler underlying the lattice noise. It is the
// reference splitmix64 finalizer, chosen because it is stateless: hashing
// (seed, x, y) directly means tiles of a scene can be generated in any
// order — or in parallel — with identical results.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash2 maps an integer lattice point to a float in [0, 1).
func hash2(seed uint64, x, y int64) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(x)*0x9e3779b97f4a7c15^uint64(y)+0xd1b54a32d192ed03))
	return float64(h>>11) / float64(1<<53)
}

// smooth is the C¹ smoothstep fade used for value-noise interpolation.
func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise evaluates smoothed lattice noise at (x, y) in [0, 1).
func valueNoise(seed uint64, x, y float64) float64 {
	x0 := math.Floor(x)
	y0 := math.Floor(y)
	tx := smooth(x - x0)
	ty := smooth(y - y0)
	ix, iy := int64(x0), int64(y0)
	v00 := hash2(seed, ix, iy)
	v10 := hash2(seed, ix+1, iy)
	v01 := hash2(seed, ix, iy+1)
	v11 := hash2(seed, ix+1, iy+1)
	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

// fbm sums octaves of value noise (fractional Brownian motion), the texture
// primitive for every scene. freq is the base lattice frequency relative to
// the unit square; gain is the per-octave amplitude decay.
func fbm(seed uint64, x, y float64, octaves int, freq, gain float64) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	for o := 0; o < octaves; o++ {
		sum += amp * valueNoise(seed+uint64(o)*0x9e37, x*freq, y*freq)
		norm += amp
		amp *= gain
		freq *= 2
	}
	return sum / norm
}

// clamp8 converts a [0, 1] intensity to an 8-bit sample.
func clamp8(v float64) uint8 {
	switch {
	case v <= 0:
		return 0
	case v >= 1:
		return 255
	default:
		return uint8(v*255 + 0.5)
	}
}

// clamp01 limits v to [0, 1].
func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// sstep is a smooth Hermite step between edges a and b.
func sstep(a, b, v float64) float64 {
	if a == b {
		if v < a {
			return 0
		}
		return 1
	}
	t := clamp01((v - a) / (b - a))
	return t * t * (3 - 2*t)
}

// disk returns a soft-edged disk mask value at (x, y) for a disk centred at
// (cx, cy) with radius r; edge controls the softness band width.
func disk(x, y, cx, cy, r, edge float64) float64 {
	d := math.Hypot(x-cx, y-cy)
	return 1 - sstep(r-edge, r+edge, d)
}
