package assign

import (
	"context"
	"testing"
)

// FuzzAuctionDeviceVsHungarian differentially fuzzes the device auction
// against Hungarian on small instances: exact mode must reproduce the
// optimal cost, default mode must stay within its certified gap, and both
// must always return valid permutations.
func FuzzAuctionDeviceVsHungarian(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(1), []byte{0})
	f.Add(uint8(4), []byte{255, 0, 255, 0, 7, 7, 7, 7, 1, 2, 3, 4, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, nb uint8, data []byte) {
		n := int(nb%6) + 1
		if len(data) < n*n {
			t.Skip()
		}
		w := make([]Cost, n*n)
		for i := range w {
			// Spread the byte range and include negatives: the solvers must
			// not assume non-negative costs.
			w[i] = Cost(int32(data[i]) - 128)
		}
		ph, err := Hungarian(n, w)
		if err != nil {
			t.Fatalf("hungarian: %v", err)
		}
		opt, err := TotalCost(n, w, ph)
		if err != nil {
			t.Fatalf("hungarian cost: %v", err)
		}

		pe, _, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{TargetGap: -1})
		if err != nil {
			t.Fatalf("auction-device exact: %v", err)
		}
		ec, err := TotalCost(n, w, pe)
		if err != nil {
			t.Fatalf("auction-device exact assignment invalid: %v", err)
		}
		if ec != opt {
			t.Fatalf("exact mode cost %d, hungarian optimum %d (n=%d w=%v)", ec, opt, n, w)
		}

		pd, info, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{})
		if err != nil {
			t.Fatalf("auction-device default: %v", err)
		}
		dc, err := TotalCost(n, w, pd)
		if err != nil {
			t.Fatalf("auction-device default assignment invalid: %v", err)
		}
		if info.LowerBound > float64(opt)+1e-6 {
			t.Fatalf("certificate lb %.3f above optimum %d (n=%d w=%v)", info.LowerBound, opt, n, w)
		}
		if slack := DefaultAuctionGap*maxf(1, abs64(float64(opt))) + 1; float64(dc-opt) > slack {
			t.Fatalf("default mode cost %d beyond certified slack of optimum %d (n=%d w=%v)", dc, opt, n, w)
		}

		ps, sinfo, err := SinkhornContext(context.Background(), n, w, SinkhornOptions{})
		if err != nil {
			t.Fatalf("sinkhorn: %v", err)
		}
		if _, err := TotalCost(n, w, ps); err != nil {
			t.Fatalf("sinkhorn assignment invalid: %v", err)
		}
		if sinfo.LowerBound > float64(opt)+1e-6 {
			t.Fatalf("sinkhorn lb %.3f above optimum %d (n=%d w=%v)", sinfo.LowerBound, opt, n, w)
		}
	})
}
