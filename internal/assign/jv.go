package assign

import (
	"context"
	"math"

	"repro/internal/perm"
)

// JV solves the LAP exactly with the Jonker–Volgenant algorithm (1987), the
// standard fast dense solver: a column-reduction pass, a reduction-transfer
// pass and two augmenting-row-reduction sweeps assign most rows in O(n²),
// and only the remaining free rows pay for a Dijkstra-style shortest
// augmenting path. Worst case O(n³) like Hungarian, but typically several
// times faster on the dense tile-error matrices of this workload — the same
// reason the paper picked Blossom V over a textbook implementation.
func JV(n int, w []Cost) (perm.Perm, error) {
	return jv(nil, n, w)
}

// JVContext is JV with cancellation: the context is polled at the
// algorithm's O(n)-work boundaries (per reduced column, per augmenting-row
// pass, per Dijkstra scan step), strided so the polls stay off the profile.
func JVContext(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
	return jv(ctx, n, w)
}

func jv(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
	if err := checkInput(n, w); err != nil {
		return nil, err
	}
	cp := checkpoints{ctx: ctx, stride: 64, what: "jv"}
	if n == 1 {
		// The reduction passes assume a second column exists; the 1×1
		// problem has exactly one solution anyway.
		return perm.Perm{0}, nil
	}
	const inf = math.MaxInt64

	rowsol := make([]int, n) // column assigned to each row (-1 = free)
	colsol := make([]int, n) // row assigned to each column (-1 = free)
	v := make([]int64, n)    // column prices (dual variables)
	free := make([]int, n)   // rows awaiting assignment
	for i := range rowsol {
		rowsol[i] = -1
	}
	for j := range colsol {
		colsol[j] = -1
	}

	// --- Column reduction (scanned high→low so low-index rows win ties,
	// matching the reference implementation).
	matches := make([]int, n)
	for j := n - 1; j >= 0; j-- {
		if err := cp.visit(); err != nil {
			return nil, err
		}
		min := int64(w[j]) // cost[0][j]
		imin := 0
		for i := 1; i < n; i++ {
			c := int64(w[i*n+j])
			if c < min {
				min = c
				imin = i
			}
		}
		v[j] = min
		matches[imin]++
		if matches[imin] == 1 {
			rowsol[imin] = j
			colsol[j] = imin
		}
	}

	// --- Reduction transfer for rows that won exactly one column; collect
	// unassigned rows.
	numfree := 0
	for i := 0; i < n; i++ {
		switch matches[i] {
		case 0:
			free[numfree] = i
			numfree++
		case 1:
			j1 := rowsol[i]
			min := int64(inf)
			row := w[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				if j != j1 {
					if c := int64(row[j]) - v[j]; c < min {
						min = c
					}
				}
			}
			v[j1] -= min
		}
	}

	// --- Augmenting row reduction, two sweeps: try to assign each free row
	// to its cheapest reduced-cost column, bumping the previous owner when
	// the two cheapest columns are strictly separated.
	for loop := 0; loop < 2; loop++ {
		k := 0
		prvnumfree := numfree
		numfree = 0
		for k < prvnumfree {
			if err := cp.visit(); err != nil {
				return nil, err
			}
			i := free[k]
			k++
			row := w[i*n : (i+1)*n]
			umin := int64(row[0]) - v[0]
			j1 := 0
			usubmin := int64(inf)
			j2 := -1
			for j := 1; j < n; j++ {
				h := int64(row[j]) - v[j]
				if h < usubmin {
					if h >= umin {
						usubmin = h
						j2 = j
					} else {
						usubmin = umin
						j2 = j1
						umin = h
						j1 = j
					}
				}
			}
			i0 := colsol[j1]
			if umin < usubmin {
				// j1 is strictly cheapest: lower its price so the bumped row
				// still finds an alternative.
				v[j1] -= usubmin - umin
			} else if i0 >= 0 {
				// Tie: take the second-best column instead to avoid cycling.
				j1 = j2
				i0 = colsol[j1]
			}
			rowsol[i] = j1
			colsol[j1] = i
			if i0 >= 0 {
				if umin < usubmin {
					// Re-examine the bumped row immediately.
					k--
					free[k] = i0
				} else {
					free[numfree] = i0
					numfree++
				}
			}
		}
	}

	// --- Augmentation: shortest augmenting path (Dijkstra over reduced
	// costs) for each remaining free row.
	d := make([]int64, n)
	pred := make([]int, n)
	collist := make([]int, n)
	for f := 0; f < numfree; f++ {
		freerow := free[f]
		row := w[freerow*n : (freerow+1)*n]
		for j := 0; j < n; j++ {
			d[j] = int64(row[j]) - v[j]
			pred[j] = freerow
			collist[j] = j
		}
		// collist[0..low-1]: columns with final distance (scanned);
		// collist[low..up-1]: columns at the current minimum (to scan);
		// collist[up..n-1]: unreached columns.
		low, up := 0, 0
		min := int64(0)
		endofpath := -1
		last := 0
		for endofpath < 0 {
			if err := cp.visit(); err != nil {
				return nil, err
			}
			if up == low {
				last = low - 1
				min = d[collist[up]]
				up++
				for k := up; k < n; k++ {
					j := collist[k]
					h := d[j]
					if h <= min {
						if h < min {
							up = low
							min = h
						}
						collist[k] = collist[up]
						collist[up] = j
						up++
					}
				}
				for k := low; k < up; k++ {
					if j := collist[k]; colsol[j] < 0 {
						endofpath = j
						break
					}
				}
			}
			if endofpath >= 0 {
				break
			}
			j1 := collist[low]
			low++
			i := colsol[j1]
			irow := w[i*n : (i+1)*n]
			h := int64(irow[j1]) - v[j1] - min
			for k := up; k < n; k++ {
				j := collist[k]
				v2 := int64(irow[j]) - v[j] - h
				if v2 < d[j] {
					pred[j] = i
					if v2 == min {
						if colsol[j] < 0 {
							endofpath = j
							break
						}
						collist[k] = collist[up]
						collist[up] = j
						up++
					}
					d[j] = v2
				}
			}
		}
		// Price update for scanned columns.
		for k := 0; k <= last; k++ {
			j1 := collist[k]
			v[j1] += d[j1] - min
		}
		// Flip the augmenting path.
		for {
			i := pred[endofpath]
			colsol[endofpath] = i
			endofpath, rowsol[i] = rowsol[i], endofpath
			if i == freerow {
				break
			}
		}
	}

	p := make(perm.Perm, n)
	copy(p, colsol)
	return p, nil
}
