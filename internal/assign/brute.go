package assign

import (
	"fmt"
	"math"

	"repro/internal/perm"
)

// BruteMaxN caps BruteForce: 10! ≈ 3.6M permutations is the largest search
// that stays comfortably inside a test-suite time budget.
const BruteMaxN = 10

// BruteForce enumerates all n! assignments and returns a minimum-cost one —
// the paper's "straightforward method to find the best rearrangement is to
// evaluate Error(R, T) for all possible S! rearranged images" (§II). It
// exists purely as the ground-truth oracle for the real solvers and refuses
// n > BruteMaxN. Among equal-cost optima it returns the lexicographically
// smallest, so results are deterministic.
func BruteForce(n int, w []Cost) (perm.Perm, error) {
	if err := checkInput(n, w); err != nil {
		return nil, err
	}
	if n > BruteMaxN {
		return nil, fmt.Errorf("assign: brute force limited to n ≤ %d, got %d: %w", BruteMaxN, n, ErrBadInput)
	}
	// Shift costs to non-negative so the partial-cost pruning below is
	// admissible: with negative entries a partial sum above the incumbent
	// could still extend to a better total. The shift adds the same amount
	// to every permutation, so the argmin is unchanged.
	var minW Cost
	for _, c := range w {
		if c < minW {
			minW = c
		}
	}
	shifted := w
	if minW < 0 {
		shifted = make([]Cost, len(w))
		for i, c := range w {
			shifted[i] = c - minW
		}
	}

	best := make(perm.Perm, n)
	cur := perm.Identity(n)
	used := make([]bool, n)
	bestCost := int64(math.MaxInt64)

	// Depth-first over columns; prune on partial cost. Lexicographic row
	// choice plus strict improvement makes the returned optimum the
	// lexicographically smallest.
	var rec func(v int, acc int64)
	rec = func(v int, acc int64) {
		if acc >= bestCost {
			return
		}
		if v == n {
			bestCost = acc
			copy(best, cur)
			return
		}
		for u := 0; u < n; u++ {
			if used[u] {
				continue
			}
			used[u] = true
			cur[v] = u
			rec(v+1, acc+int64(shifted[u*n+v]))
			used[u] = false
		}
	}
	rec(0, 0)
	return best, nil
}
