package assign

// Info reports what a certified approximate solve achieved. The certificate
// is a dual feasible lower bound on the optimal assignment cost, so
//
//	LowerBound ≤ OPT ≤ Cost
//
// holds unconditionally — Gap bounds the true optimality gap without
// knowing OPT. The auction's bound (ε-complementary slackness prices) is
// tight near its gap target; Sinkhorn's bound (entropic potentials) is
// valid but loose, which is why the solver-smoke gate certifies Sinkhorn
// against JV's exact cost instead of its own certificate.
type Info struct {
	// Cost is the returned permutation's total assignment cost.
	Cost int64
	// LowerBound is the certified dual lower bound on the optimum, in the
	// (unscaled) units of the cost matrix.
	LowerBound float64
	// Gap is the certified relative gap,
	// (Cost − LowerBound) / max(1, |LowerBound|).
	Gap float64
	// Rounds counts ε levels (auction) or log-domain iterations (Sinkhorn).
	Rounds int
	// Sweeps counts dirty 2-opt polish sweeps (Sinkhorn only).
	Sweeps int
	// Scans counts full cost-matrix row scans — the auction's unit of
	// device work (one scan ≡ one row of one batched kernel launch).
	Scans int
	// Degraded reports that a device was supplied but at least one batch
	// fell back to the host after launch retries were exhausted or the
	// device was lost. Host batches are bit-identical to device batches
	// (the scan is pure), so the result is unaffected.
	Degraded bool
}
