package assign

import (
	"context"
	"math"
	"sort"

	"repro/internal/perm"
)

// This file solves the LAP through entropic regularisation: the assignment
// polytope is relaxed to doubly-stochastic transport plans, the regularised
// problem is solved by Sinkhorn iterations in the log domain (numerically
// safe for small ε), and the plan is rounded back to a permutation, which a
// bounded dirty 2-opt polish then tightens.
//
// Two things keep the iterations cheap on dense tile matrices:
//
//   - Sparse support. For small ε the optimal plan concentrates on each
//     row's and column's cheapest entries, so the iterations run only on
//     the union of per-row and per-column top-K supports (two O(n²) scans
//     to build, O(n·K) per half-iteration after that).
//   - Truncated logsumexp. Within a row, entries more than 30ε below the
//     best contribute < e⁻³⁰ to the sum and are skipped before the exp.
//
// The certificate reuses the column potentials g as dual prices:
// LB = Σ_i min_j (c_ij − g_j) + Σ_j g_j is a valid lower bound for any g,
// but an entropic g is not an optimal LAP dual, so the bound is loose —
// typically tens of percent while the true gap is well under 1%. Info.Gap
// reports the honest (loose) certificate; the test suite and the
// solver-smoke gate certify the true gap against JV's exact cost.
type SinkhornOptions struct {
	// Support is the per-row and per-column support width K; 0 selects 32.
	Support int
	// Levels are the ε-annealing divisors: each level runs Iters iterations
	// at ε = maxCost/level. nil selects {128, 1024, 8192}.
	Levels []float64
	// Iters is the iteration count per level; 0 selects 4.
	Iters int
	// MaxSweeps bounds the dirty 2-opt polish; 0 selects 64, negative
	// disables polishing.
	MaxSweeps int
}

func (o *SinkhornOptions) defaults() {
	if o.Support <= 0 {
		o.Support = 32
	}
	if len(o.Levels) == 0 {
		o.Levels = []float64{128, 1024, 8192}
	}
	if o.Iters <= 0 {
		o.Iters = 4
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 64
	}
}

// sinkhornSupport is the CSR sparse support: row-major entries plus a
// column-major mirror for the g half-pass.
type sinkhornSupport struct {
	rowPtr []int32
	cols   []int32
	cvals  []float32
	colPtr []int32
	tRows  []int32
	tVals  []float32
	maxC   float32
}

// buildSupport collects each row's and each column's K cheapest entries in
// two row-major passes and merges them into CSR form.
func buildSupport(n, ks int, w []Cost) *sinkhornSupport {
	if ks > n {
		ks = n
	}
	perRow := make([][]int32, n)
	{
		vals := make([]int32, ks)
		idx := make([]int32, ks)
		for i := 0; i < n; i++ {
			row := w[i*n : (i+1)*n]
			cnt := 0
			var worst int32 = math.MaxInt32
			for j := 0; j < n; j++ {
				v := row[j]
				if cnt < ks {
					vals[cnt] = v
					idx[cnt] = int32(j)
					cnt++
					if cnt == ks {
						worst = maxOf(vals)
					}
					continue
				}
				if v < worst {
					wi := 0
					for k := 1; k < ks; k++ {
						if vals[k] > vals[wi] {
							wi = k
						}
					}
					vals[wi] = v
					idx[wi] = int32(j)
					worst = maxOf(vals)
				}
			}
			perRow[i] = append([]int32(nil), idx[:cnt]...)
		}
	}
	// Column top-K: a single row-major pass keeping per-column candidates,
	// so the matrix is never walked with stride n.
	colVals := make([][]int32, n)
	colIdx := make([][]int32, n)
	colWorst := make([]int32, n)
	for j := 0; j < n; j++ {
		colVals[j] = make([]int32, 0, ks)
		colIdx[j] = make([]int32, 0, ks)
		colWorst[j] = math.MaxInt32
	}
	for i := 0; i < n; i++ {
		row := w[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			v := row[j]
			if len(colVals[j]) < ks {
				colVals[j] = append(colVals[j], v)
				colIdx[j] = append(colIdx[j], int32(i))
				if len(colVals[j]) == ks {
					colWorst[j] = maxOf(colVals[j])
				}
				continue
			}
			if v < colWorst[j] {
				cv := colVals[j]
				wi := 0
				for k := 1; k < ks; k++ {
					if cv[k] > cv[wi] {
						wi = k
					}
				}
				cv[wi] = v
				colIdx[j][wi] = int32(i)
				colWorst[j] = maxOf(cv)
			}
		}
	}
	for j := 0; j < n; j++ {
		for _, i := range colIdx[j] {
			perRow[i] = append(perRow[i], int32(j))
		}
	}
	s := &sinkhornSupport{rowPtr: make([]int32, 1, n+1)}
	for i := 0; i < n; i++ {
		r := perRow[i]
		sort.Slice(r, func(a, b int) bool { return r[a] < r[b] })
		prev := int32(-1)
		for _, j := range r {
			if j == prev {
				continue
			}
			prev = j
			s.cols = append(s.cols, j)
			v := float32(w[i*n+int(j)])
			s.cvals = append(s.cvals, v)
			if v > s.maxC {
				s.maxC = v
			}
		}
		s.rowPtr = append(s.rowPtr, int32(len(s.cols)))
	}
	// Column-major mirror.
	colCnt := make([]int32, n+1)
	for _, j := range s.cols {
		colCnt[j+1]++
	}
	for j := 0; j < n; j++ {
		colCnt[j+1] += colCnt[j]
	}
	s.colPtr = colCnt
	s.tRows = make([]int32, len(s.cols))
	s.tVals = make([]float32, len(s.cols))
	fill := append([]int32(nil), colCnt[:n]...)
	for i := 0; i < n; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			j := s.cols[k]
			s.tRows[fill[j]] = int32(i)
			s.tVals[fill[j]] = s.cvals[k]
			fill[j]++
		}
	}
	return s
}

func maxOf(v []int32) int32 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// SinkhornContext solves the LAP approximately with sparse-support
// log-domain Sinkhorn iterations, rounds the plan to a permutation, and
// polishes it with bounded dirty 2-opt sweeps. It returns the permutation
// and the certificate (see Info; note the Sinkhorn bound is loose). The
// context is polled per half-iteration, per support-build row stride and
// per polish sweep.
func SinkhornContext(ctx context.Context, n int, w []Cost, opts SinkhornOptions) (perm.Perm, *Info, error) {
	if err := checkInput(n, w); err != nil {
		return nil, nil, err
	}
	opts.defaults()
	if err := pollCtx(ctx); err != nil {
		return nil, nil, err
	}
	s := buildSupport(n, opts.Support, w)
	info := &Info{}

	f := make([]float64, n)
	g := make([]float64, n)
	// All-equal costs make every plan optimal and ε = 0; skip straight to
	// rounding with zero potentials.
	if s.maxC > 0 {
		for _, div := range opts.Levels {
			eps := float64(s.maxC) / div
			for it := 0; it < opts.Iters; it++ {
				if err := pollCtx(ctx); err != nil {
					return nil, nil, err
				}
				info.Rounds++
				halfPass(n, eps, f, g, s.rowPtr, s.cols, s.cvals)
				halfPass(n, eps, g, f, s.colPtr, s.tRows, s.tVals)
			}
		}
	}

	// Round: assign columns in order of how peaked their best support score
	// is (descending, ties to the lower column for determinism), each to
	// its best free supported row; columns whose support is exhausted fall
	// back to a full-row greedy pass.
	p := make(perm.Perm, n)
	for j := range p {
		p[j] = -1
	}
	usedRow := make([]bool, n)
	type colBest struct {
		j     int32
		score float64
	}
	order := make([]colBest, 0, n)
	for j := int32(0); j < int32(n); j++ {
		best := math.Inf(-1)
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			v := f[s.tRows[k]] + g[j] - float64(s.tVals[k])
			if v > best {
				best = v
			}
		}
		order = append(order, colBest{j, best})
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].score != order[b].score {
			return order[a].score > order[b].score
		}
		return order[a].j < order[b].j
	})
	var leftover []int32
	for _, c := range order {
		j := c.j
		best := math.Inf(-1)
		bi := int32(-1)
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			i := s.tRows[k]
			if usedRow[i] {
				continue
			}
			v := f[i] + g[j] - float64(s.tVals[k])
			if v > best {
				best = v
				bi = i
			}
		}
		if bi < 0 {
			leftover = append(leftover, j)
			continue
		}
		p[j] = int(bi)
		usedRow[bi] = true
	}
	for _, j := range leftover {
		bi := -1
		bv := int64(math.MaxInt64)
		for i := 0; i < n; i++ {
			if usedRow[i] {
				continue
			}
			if v := int64(w[i*n+int(j)]); v < bv {
				bv = v
				bi = i
			}
		}
		p[j] = bi
		usedRow[bi] = true
	}

	// Polish: dirty 2-opt sweeps. Only pairs with a touched endpoint are
	// retested, so converged regions cost nothing after the first sweep.
	if opts.MaxSweeps > 0 {
		dirty := make([]bool, n)
		for i := range dirty {
			dirty[i] = true
		}
		for info.Sweeps < opts.MaxSweeps {
			if err := pollCtx(ctx); err != nil {
				return nil, nil, err
			}
			info.Sweeps++
			improved := false
			nextDirty := make([]bool, n)
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if !dirty[a] && !dirty[b] {
						continue
					}
					ua, ub := p[a], p[b]
					cur := int64(w[ua*n+a]) + int64(w[ub*n+b])
					alt := int64(w[ua*n+b]) + int64(w[ub*n+a])
					if alt < cur {
						p[a], p[b] = ub, ua
						nextDirty[a], nextDirty[b] = true, true
						improved = true
					}
				}
			}
			dirty = nextDirty
			if !improved {
				break
			}
		}
	}

	// Certificate: g as dual prices over the full matrix.
	var lb float64
	for i := 0; i < n; i++ {
		row := w[i*n : (i+1)*n]
		best := math.Inf(1)
		for j := 0; j < n; j++ {
			if v := float64(row[j]) - g[j]; v < best {
				best = v
			}
		}
		lb += best
	}
	for j := 0; j < n; j++ {
		lb += g[j]
	}
	cost, err := TotalCost(n, w, p)
	if err != nil {
		return nil, nil, err
	}
	info.Cost = cost
	info.LowerBound = lb
	info.Gap = (float64(cost) - lb) / math.Max(1, math.Abs(lb))
	return p, info, nil
}

// halfPass updates out_i = −(best + ε·log Σ_k exp((v_k − best)/ε)) with
// v_k = in[col_k] − c_k over row i of the CSR structure — one log-domain
// Sinkhorn half-iteration with truncation at best − 30ε.
func halfPass(n int, eps float64, out, in []float64, ptr, idx []int32, vals []float32) {
	for i := 0; i < n; i++ {
		best := math.Inf(-1)
		for k := ptr[i]; k < ptr[i+1]; k++ {
			v := in[idx[k]] - float64(vals[k])
			if v > best {
				best = v
			}
		}
		var sum float64
		thr := best - 30*eps
		for k := ptr[i]; k < ptr[i+1]; k++ {
			v := in[idx[k]] - float64(vals[k])
			if v > thr {
				sum += math.Exp((v - best) / eps)
			}
		}
		out[i] = -(best + eps*math.Log(sum))
	}
}
