package assign

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cuda"
	"repro/internal/perm"
	"repro/internal/retry"
	"repro/internal/trace"
)

// This file ports the ε-scaling auction to the virtual device. The serial
// auction (auction.go) scans a person's whole cost row on every bid; that
// row scan is the only O(n) step in the bid loop and the only step that is
// embarrassingly parallel across persons. The port therefore splits the
// algorithm at exactly that line:
//
//   - Row scans run in batches as device kernels: each scan fills a
//     candidate cache — the person's top-K (object, value) pairs against
//     the prices at scan time, plus the K-th value as a validity cut.
//   - Bidding stays Gauss–Seidel on the host, but reads the caches instead
//     of the matrix. Prices only rise within a solve, so cached values are
//     upper bounds on current values; refreshing the K cached entries
//     against live prices and bidding is valid whenever the refreshed
//     runner-up still clears the cut (any object outside the cache is at
//     most at its snapshot value ≤ cut). When the cut test fails, the
//     person joins the next scan batch instead of bidding.
//
// Underbidding from the cache preserves ε-complementary slackness: the new
// owner's value after paying (best − second + ε) is second − ε ≥
// trueSecond − ε, which is the same ε-CS guarantee the full scan gives.
//
// Early stop: ε-CS implies cost ≤ LB + n·ε for the dual bound
// LB = Σ_i min_j (scale·c_ij + price_j) − Σ_j price_j, so the solver only
// pays the O(n²) bound computation once n·ε is small enough for the target
// gap to be achievable, then stops at the first ε level whose certified
// relative gap meets the target. A non-positive target runs the full
// ε-schedule down to ε = 1, which is exact for the (n+1)-scaled integer
// costs — the same guarantee as the serial auction.

// DefaultAuctionGap is the certified relative optimality gap the device
// auction stops at when DeviceAuctionOptions.TargetGap is zero: 1%, the
// bound the solver-smoke gate asserts.
const DefaultAuctionGap = 0.01

// KernelAuctionScan names the batched candidate-scan kernel in fault plans
// and launch metrics.
const KernelAuctionScan = "auction-scan"

const (
	// auctionK is the candidate-cache width. Eight survives long GS runs
	// between rescans on the tile matrices; wider caches cost more refresh
	// work per bid than they save in scans.
	auctionK = 8
	// auctionScanBatch is how many invalidated rows accumulate before a
	// rescan kernel is launched mid-level.
	auctionScanBatch = 64
	// auctionRowsPerBlock sizes scan launches: one block handles up to this
	// many rows, striding its threads across them.
	auctionRowsPerBlock = 8
)

// DeviceAuctionOptions configures AuctionDeviceContext. The zero value runs
// the host mirror (no device, no tracing) at the default 1% gap target.
type DeviceAuctionOptions struct {
	// Device runs the batched row scans as kernels; nil scans on the host.
	// Host and device scans are bit-identical, so the returned permutation
	// does not depend on where the scans ran.
	Device *cuda.Device
	// TargetGap is the certified relative gap to stop at: 0 selects
	// DefaultAuctionGap; a negative value disables the early stop and runs
	// the full ε-schedule (exact for integer costs, like Auction).
	TargetGap float64
	// Trace receives retry/degradation spans and counters.
	Trace trace.Collector
	// Retry is the per-launch retry schedule (zero value = retry defaults).
	Retry retry.Policy
	// DisableFallback fails the solve instead of degrading scans to the
	// host when the device faults; it also makes a nil Device an error.
	DisableFallback bool
}

// candSet is one person's cached scan result: the top-K (object, value)
// pairs sorted by descending value, and the K-th value as the validity cut.
type candSet struct {
	obj [auctionK]int32
	val [auctionK]int64
	cut int64
}

// scanCandidates fills cs with row's top-K net values −scale·c − price.
// It is the kernel body: pure (reads row and prices, writes only cs), so
// re-running it after a fault or on the host cannot corrupt the solve.
func scanCandidates(n int, row []Cost, prices []int64, scale int64, cs *candSet) {
	var vals [auctionK]int64
	var objs [auctionK]int32
	for k := 0; k < auctionK; k++ {
		vals[k] = minInt64
		objs[k] = -1
	}
	for j := 0; j < n; j++ {
		v := -int64(row[j])*scale - prices[j]
		if v > vals[auctionK-1] {
			k := auctionK - 1
			for k > 0 && v > vals[k-1] {
				vals[k] = vals[k-1]
				objs[k] = objs[k-1]
				k--
			}
			vals[k] = v
			objs[k] = int32(j)
		}
	}
	cs.val = vals
	cs.obj = objs
	cs.cut = vals[auctionK-1]
}

// auctionEngine holds the solve state shared by the bid loop and the scan
// batches, plus the resilience bookkeeping for device launches.
type auctionEngine struct {
	n      int
	w      []Cost
	scale  int64
	prices []int64
	cands  []candSet
	// pending accumulates persons awaiting a (re)scan; flush scans them in
	// one launch and returns them to the bid queue.
	pending []int32

	dev        *cuda.Device
	pol        retry.Policy
	tr         trace.Collector
	noFallback bool
	deviceDead bool
	degraded   bool
	scans      int
}

// scanHost runs one batch on the host — the degraded path and the mirror
// path. Identical arithmetic to the kernel, just not parallel.
func (e *auctionEngine) scanHost(batch []int32) {
	for _, i := range batch {
		scanCandidates(e.n, e.w[int(i)*e.n:(int(i)+1)*e.n], e.prices, e.scale, &e.cands[i])
	}
}

// scanBatch scans the pending persons, on the device when one is live. The
// kernel splits the batch across blocks with SplitRange; rows are distinct,
// prices are read-only during the launch, and each row's candSet is written
// by exactly one thread, so the launch is race-free and idempotent.
func (e *auctionEngine) scanBatch(ctx context.Context, batch []int32) error {
	e.scans += len(batch)
	if e.dev == nil || e.deviceDead {
		e.scanHost(batch)
		return nil
	}
	ranges := cuda.SplitRange(len(batch), (len(batch)+auctionRowsPerBlock-1)/auctionRowsPerBlock)
	kernel := func(b *cuda.Block) {
		r := ranges[b.Idx]
		b.StrideLoop(r.Hi-r.Lo, func(k int) {
			i := int(batch[r.Lo+k])
			scanCandidates(e.n, e.w[i*e.n:(i+1)*e.n], e.prices, e.scale, &e.cands[i])
		})
	}
	lerr := e.pol.Do(ctx, func(attempt int) error {
		if attempt > 1 {
			trace.Count(e.tr, trace.CounterLaunchRetries, 1)
		}
		err := e.dev.LaunchErr(ctx, KernelAuctionScan, len(ranges), auctionRowsPerBlock, kernel)
		if err != nil {
			trace.Count(e.tr, trace.CounterLaunchFaults, 1)
			if errors.Is(err, cuda.ErrDeviceLost) {
				// Retrying on a lost device is pointless; degrade now.
				return retry.Stop(err)
			}
		}
		return err
	})
	if lerr == nil {
		return nil
	}
	if errors.Is(lerr, context.Canceled) || errors.Is(lerr, context.DeadlineExceeded) {
		return lerr
	}
	if e.noFallback {
		return fmt.Errorf("assign: auction scan launch failed with host fallback disabled: %w", lerr)
	}
	if errors.Is(lerr, cuda.ErrDeviceLost) {
		e.deviceDead = true
	}
	// Degrade: rerun this batch on the host and carry on. The scan is pure
	// and prices are untouched by a failed launch, so the solve continues
	// from the exact state the device path would have produced.
	sp := trace.Start(e.tr, trace.SpanDegraded)
	e.scanHost(batch)
	sp.End()
	e.degraded = true
	return nil
}

// dualBound computes LB = Σ_i min_j (scale·c_ij + price_j) − Σ_j price_j,
// a dual feasible bound on scale·OPT for any price vector.
func (e *auctionEngine) dualBound() int64 {
	const maxInt64 = 1<<63 - 1
	var sumMin, sumP int64
	for i := 0; i < e.n; i++ {
		row := e.w[i*e.n : (i+1)*e.n]
		best := int64(maxInt64)
		for j := 0; j < e.n; j++ {
			v := int64(row[j])*e.scale + e.prices[j]
			if v < best {
				best = v
			}
		}
		sumMin += best
	}
	for _, p := range e.prices {
		sumP += p
	}
	return sumMin - sumP
}

// AuctionDeviceContext solves the LAP with the device-batched candidate
// auction and returns the permutation plus the certificate (see Info). The
// context is polled at every scan flush and every auctionBidStride bids.
func AuctionDeviceContext(ctx context.Context, n int, w []Cost, opts DeviceAuctionOptions) (perm.Perm, *Info, error) {
	if err := checkInput(n, w); err != nil {
		return nil, nil, err
	}
	if opts.Device == nil && opts.DisableFallback {
		return nil, nil, fmt.Errorf("assign: device auction requires a device when host fallback is disabled: %w", ErrBadInput)
	}
	targetGap := opts.TargetGap
	if targetGap == 0 {
		targetGap = DefaultAuctionGap
	} else if targetGap < 0 {
		targetGap = 0 // exact: no early stop, run ε down to 1
	}
	pol := opts.Retry
	if pol.OnBackoff == nil {
		// Backoff sleeps run on this goroutine, so the span nests in the
		// caller's tree.
		pol.OnBackoff = func(sleep func() error) error {
			defer trace.Start(opts.Trace, trace.SpanRetryBackoff).End()
			return sleep()
		}
	}

	scale := int64(n + 1)
	var maxAbs int64
	for _, c := range w {
		a := int64(c)
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	e := &auctionEngine{
		n:          n,
		w:          w,
		scale:      scale,
		prices:     make([]int64, n),
		cands:      make([]candSet, n),
		pending:    make([]int32, 0, n),
		dev:        opts.Device,
		pol:        pol,
		tr:         opts.Trace,
		noFallback: opts.DisableFallback,
	}
	owner := make([]int, n)  // owner[j] = person owning object j, -1 free
	object := make([]int, n) // object[i] = object owned by person i, -1 free
	queue := make([]int, 0, n)
	cp := checkpoints{ctx: ctx, stride: auctionBidStride, what: "device auction"}
	info := &Info{}

	eps := maxAbs * scale / 2
	if eps < 1 {
		eps = 1
	}
	for {
		info.Rounds++
		// Reset the assignment for this ε level (prices persist — that is
		// what makes scaling effective) and open with a full scan: every
		// person's cache refreshed in one launch.
		for j := range owner {
			owner[j] = -1
		}
		queue = queue[:0]
		for i := range object {
			object[i] = -1
		}
		e.pending = e.pending[:0]
		for i := 0; i < n; i++ {
			e.pending = append(e.pending, int32(i))
		}
		// flushPending scans the accumulated batch and returns its persons
		// to the bid queue. The kernel captures batch, which stays intact
		// until the (synchronous) launch returns; appending to queue copies
		// the values, so resetting pending afterwards cannot alias it.
		flushPending := func() error {
			batch := e.pending
			if len(batch) == 0 {
				return nil
			}
			if err := e.scanBatch(ctx, batch); err != nil {
				return err
			}
			for _, i := range batch {
				queue = append(queue, int(i))
			}
			e.pending = e.pending[:0]
			return nil
		}
		if err := flushPending(); err != nil {
			return nil, nil, err
		}
		for {
			if len(queue) == 0 {
				if len(e.pending) == 0 {
					break // level complete: everyone assigned
				}
				if err := flushPending(); err != nil {
					return nil, nil, err
				}
				continue
			}
			if err := cp.visit(); err != nil {
				return nil, nil, err
			}
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			cs := &e.cands[i]
			// Refresh the cached candidates against live prices; track the
			// top two refreshed values.
			best, second := int64(minInt64), int64(minInt64)
			bestJ := int32(-1)
			for k := 0; k < auctionK; k++ {
				j := cs.obj[k]
				if j < 0 {
					continue
				}
				v := -int64(w[i*n+int(j)])*scale - e.prices[j]
				if v > best {
					second = best
					best = v
					bestJ = j
				} else if v > second {
					second = v
				}
			}
			// Validity cut: objects outside the cache sit at or below their
			// snapshot values, all ≤ cut. If the refreshed runner-up clears
			// the cut, the true best and second-best are both in the cache;
			// otherwise queue the person for a rescan.
			if bestJ < 0 || second < cs.cut {
				e.pending = append(e.pending, int32(i))
				if len(e.pending) >= auctionScanBatch {
					if err := flushPending(); err != nil {
						return nil, nil, err
					}
				}
				continue
			}
			if n == 1 || second == int64(minInt64) {
				second = best
			}
			bid := best - second + eps
			e.prices[bestJ] += bid
			if prev := owner[bestJ]; prev >= 0 {
				object[prev] = -1
				queue = append(queue, prev)
			}
			owner[bestJ] = i
			object[i] = int(bestJ)
		}

		p := make(perm.Perm, n)
		copy(p, owner)
		cost, err := TotalCost(n, w, p)
		if err != nil {
			return nil, nil, fmt.Errorf("assign: device auction produced an invalid assignment: %w", err)
		}
		// ε-CS gives cost·scale ≤ LB + n·ε, so the O(n²) bound is computed
		// lazily: only when n·ε is small enough that the certificate could
		// plausibly meet the target (or the schedule is exhausted).
		certified := false
		var lb int64
		var gap float64
		if eps == 1 || (targetGap > 0 && float64(n)*float64(eps) <= 2*targetGap*abs64(float64(cost)*float64(scale))+float64(scale)) {
			lb = e.dualBound()
			gap = float64(cost*scale-lb) / max64(1, abs64(float64(lb)))
			certified = true
		}
		if eps == 1 || (certified && targetGap > 0 && gap <= targetGap) {
			info.Cost = cost
			info.LowerBound = float64(lb) / float64(scale)
			info.Gap = gap
			info.Scans = e.scans
			info.Degraded = e.degraded
			if e.degraded {
				trace.Count(e.tr, trace.CounterDegradedRuns, 1)
			}
			return p, info, nil
		}
		eps /= 4
		if eps < 1 {
			eps = 1
		}
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
