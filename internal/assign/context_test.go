package assign

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestContextSolversMatchPlain: with a live context every context-aware
// solver must return exactly what its plain counterpart returns — the
// checkpoints are observation only.
func TestContextSolversMatchPlain(t *testing.T) {
	n := 24
	w := randMatrix(t, n, 900, 13)
	plain, ctxd := Solvers(), ContextSolvers()
	for algo, cf := range ctxd {
		if algo == AlgoBrute {
			continue // factorial: covered at tiny n below
		}
		want, err := plain[algo](n, w)
		if err != nil {
			t.Fatalf("%s plain: %v", algo, err)
		}
		got, err := cf(context.Background(), n, w)
		if err != nil {
			t.Fatalf("%s ctx: %v", algo, err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: context variant diverges at %d", algo, i)
			}
		}
	}
	wTiny := randMatrix(t, 5, 50, 1)
	want, err := BruteForce(5, wTiny)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctxd[AlgoBrute](context.Background(), 5, wTiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("brute: context variant diverges at %d", i)
		}
	}
}

// TestContextSolversCancelled: a pre-cancelled context stops every solver
// with the context error before (or promptly after) it starts.
func TestContextSolversCancelled(t *testing.T) {
	n := 64
	w := randMatrix(t, n, 5000, 21)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for algo, cf := range ContextSolvers() {
		if algo == AlgoBrute {
			continue
		}
		p, err := cf(ctx, n, w)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", algo, err)
		}
		if p != nil {
			t.Fatalf("%s: returned a permutation alongside the ctx error", algo)
		}
	}
}

// TestIterativeSolversObserveDeadline: an already-expired deadline cuts the
// iterative solvers off mid-solve on an instance large enough that each
// would otherwise run visibly long; "promptly" here just means they return
// the deadline error rather than completing.
func TestIterativeSolversObserveDeadline(t *testing.T) {
	n := 256
	w := randMatrix(t, n, 100000, 77)
	for _, algo := range []Algorithm{AlgoJV, AlgoHungarian, AlgoAuction, AlgoAuctionDevice, AlgoSinkhorn} {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		_, err := ContextSolvers()[algo](ctx, n, w)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want context.DeadlineExceeded", algo, err)
		}
	}
}
