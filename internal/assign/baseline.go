package assign

import (
	"sort"

	"repro/internal/perm"
)

// Greedy builds an assignment by scanning all n² pairs in ascending cost
// order and taking each pair whose row and column are both still free.
// It is not optimal — it is the quality baseline the ablation benches use to
// show how much the matching/local-search machinery buys over the obvious
// heuristic. Ties are broken by (row, column) so the result is deterministic.
func Greedy(n int, w []Cost) (perm.Perm, error) {
	if err := checkInput(n, w); err != nil {
		return nil, err
	}
	idx := make([]int32, n*n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if w[ia] != w[ib] {
			return w[ia] < w[ib]
		}
		return ia < ib
	})
	p := make(perm.Perm, n)
	for v := range p {
		p[v] = -1
	}
	rowUsed := make([]bool, n)
	remaining := n
	for _, e := range idx {
		u := int(e) / n
		v := int(e) % n
		if rowUsed[u] || p[v] >= 0 {
			continue
		}
		rowUsed[u] = true
		p[v] = u
		remaining--
		if remaining == 0 {
			break
		}
	}
	return p, nil
}

// RandomAssignment returns a seeded uniformly random assignment — the
// "no algorithm at all" floor for quality comparisons and the standard
// starting point for local-search restarts.
func RandomAssignment(n int, seed uint64) perm.Perm {
	return perm.Random(n, seed)
}
