// Package assign solves the linear assignment problem (LAP): given a dense
// n×n cost matrix, find a permutation matching every row to a distinct
// column with minimum total cost.
//
// This is the paper's optimization algorithm (§III): rearranging tiles is
// reduced to minimum-weight perfect matching on the complete bipartite graph
// whose weights are the Step-2 tile errors. The authors solve the matching
// with Blossom V; because the graph is bipartite, the dedicated LAP solvers
// here reach the same optimum (see DESIGN.md for the substitution note).
// Three exact solvers with different performance profiles are provided —
// Hungarian (successive shortest paths), Jonker–Volgenant (the standard fast
// dense LAP algorithm) and an ε-scaling auction — plus greedy and random
// baselines and a brute-force oracle for cross-checking. Two certified
// approximate solvers trade a bounded optimality gap for wall time: the
// device-batched candidate auction (auctiondevice.go) and the entropic
// Sinkhorn solver with 2-opt polish (sinkhorn.go); both report a dual lower
// bound alongside the permutation (see Info).
//
// Cost-matrix convention: w[u*n+v] is the cost of assigning row u (input
// tile u) to column v (target position v). Every solver returns p with
// p[v] = u — for each target position, the input tile placed there — which
// is the orientation tile.Grid.Assemble consumes.
package assign

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/perm"
)

// Cost is one assignment cost. It aliases metric.Cost so Step-2 matrices
// flow into the solvers without conversion.
type Cost = int32

// ErrBadInput reports a malformed cost matrix.
var ErrBadInput = errors.New("assign: bad input")

// ErrInfeasible reports that a solver could not complete a perfect matching
// (cannot happen for finite dense inputs; kept for defensive returns).
var ErrInfeasible = errors.New("assign: infeasible")

// Func is the common solver signature.
type Func func(n int, w []Cost) (perm.Perm, error)

// Algorithm names a registered solver.
type Algorithm string

// Registered solver names.
const (
	AlgoHungarian Algorithm = "hungarian"
	AlgoJV        Algorithm = "jv"
	AlgoAuction   Algorithm = "auction"
	AlgoBlossom   Algorithm = "blossom"
	AlgoGreedy    Algorithm = "greedy"
	AlgoBrute     Algorithm = "brute"
	// AlgoAuctionDevice is the candidate-cached ε-scaling auction with
	// device-batched row scans and a certified early stop (auctiondevice.go).
	// The registry Func runs its host mirror at the default gap target; use
	// AuctionDeviceContext directly to supply a device, a gap target, or
	// resilience options.
	AlgoAuctionDevice Algorithm = "auction-device"
	// AlgoSinkhorn is the entropic-regularisation solver: sparse-support
	// log-domain Sinkhorn iterations, rounding to a permutation, and a
	// bounded dirty 2-opt polish (sinkhorn.go).
	AlgoSinkhorn Algorithm = "sinkhorn"
)

// Solvers returns the registry of named solvers. Exact solvers first.
func Solvers() map[Algorithm]Func {
	return map[Algorithm]Func{
		AlgoHungarian: Hungarian,
		AlgoJV:        JV,
		AlgoAuction:   Auction,
		AlgoBlossom:   Blossom,
		AlgoGreedy:    Greedy,
		AlgoBrute:     BruteForce,
		AlgoAuctionDevice: func(n int, w []Cost) (perm.Perm, error) {
			p, _, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{})
			return p, err
		},
		AlgoSinkhorn: func(n int, w []Cost) (perm.Perm, error) {
			p, _, err := SinkhornContext(context.Background(), n, w, SinkhornOptions{})
			return p, err
		},
	}
}

// Exact reports whether the named solver is guaranteed optimal.
func (a Algorithm) Exact() bool {
	switch a {
	case AlgoHungarian, AlgoJV, AlgoAuction, AlgoBlossom, AlgoBrute:
		return true
	}
	return false
}

// checkInput validates the (n, w) pair shared by all solvers.
func checkInput(n int, w []Cost) error {
	if n <= 0 {
		return fmt.Errorf("assign: n = %d: %w", n, ErrBadInput)
	}
	if len(w) != n*n {
		return fmt.Errorf("assign: %d costs for n = %d (want %d): %w", len(w), n, n*n, ErrBadInput)
	}
	return nil
}

// TotalCost evaluates an assignment against the cost matrix:
// Σ_v w[p[v]*n + v]. It validates p and is the cross-check used by tests.
func TotalCost(n int, w []Cost, p perm.Perm) (int64, error) {
	if err := checkInput(n, w); err != nil {
		return 0, err
	}
	if len(p) != n {
		return 0, fmt.Errorf("assign: %d-element assignment for n = %d: %w", len(p), n, ErrBadInput)
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	var sum int64
	for v, u := range p {
		sum += int64(w[u*n+v])
	}
	return sum, nil
}
