package assign

import (
	"context"

	"repro/internal/perm"
)

// Auction solves the LAP exactly with Bertsekas's forward auction algorithm
// under ε-scaling. Costs are first scaled by (n+1) so that once ε < 1 the
// ε-complementary-slackness assignment is provably optimal for the integer
// problem. Included both as an independent exactness cross-check on the
// path-based solvers and because auction parallelises naturally — the
// per-person bidding phase is embarrassingly parallel — making it the
// solver the device port in auctiondevice.go starts from. This serial form
// is kept bit-identical as that port's oracle.
func Auction(n int, w []Cost) (perm.Perm, error) {
	return auctionSerial(nil, n, w)
}

// AuctionContext is Auction with cancellation: the context is polled every
// auctionBidStride bids and at every ε level.
func AuctionContext(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
	return auctionSerial(ctx, n, w)
}

// auctionBidStride is how many bids the auction solvers place between
// context polls — frequent enough that a deadline cuts a multi-second solve
// within milliseconds, rare enough to stay out of the bid loop's profile.
const auctionBidStride = 1024

func auctionSerial(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
	if err := checkInput(n, w); err != nil {
		return nil, err
	}
	cp := checkpoints{ctx: ctx, stride: auctionBidStride, what: "auction"}
	// Benefits: maximise b[i][j] = -scaled cost.
	scale := int64(n + 1)
	var maxAbs int64
	for _, c := range w {
		a := int64(c)
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	prices := make([]int64, n)
	owner := make([]int, n)  // owner[j] = person owning object j, -1 free
	object := make([]int, n) // object[i] = object owned by person i, -1 free
	queue := make([]int, 0, n)

	eps := maxAbs * scale / 2
	if eps < 1 {
		eps = 1
	}
	for {
		if err := pollCtx(ctx); err != nil {
			return nil, err
		}
		// Reset the assignment for this ε round (prices persist, which is
		// what makes scaling effective).
		for j := range owner {
			owner[j] = -1
		}
		queue = queue[:0]
		for i := range object {
			object[i] = -1
			queue = append(queue, i)
		}
		for len(queue) > 0 {
			if err := cp.visit(); err != nil {
				return nil, err
			}
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			row := w[i*n : (i+1)*n]
			// Find best and second-best net value.
			best, second := int64(minInt64), int64(minInt64)
			bestJ := -1
			for j := 0; j < n; j++ {
				v := -int64(row[j])*scale - prices[j]
				if v > best {
					second = best
					best = v
					bestJ = j
				} else if v > second {
					second = v
				}
			}
			if n == 1 {
				second = best
			}
			bid := best - second + eps
			prices[bestJ] += bid
			if prev := owner[bestJ]; prev >= 0 {
				object[prev] = -1
				queue = append(queue, prev)
			}
			owner[bestJ] = i
			object[i] = bestJ
		}
		if eps == 1 {
			break
		}
		eps /= 4
		if eps < 1 {
			eps = 1
		}
	}

	p := make(perm.Perm, n)
	copy(p, owner)
	return p, nil
}

const minInt64 = -1 << 63
