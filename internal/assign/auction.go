package assign

import (
	"repro/internal/perm"
)

// Auction solves the LAP exactly with Bertsekas's forward auction algorithm
// under ε-scaling. Costs are first scaled by (n+1) so that once ε < 1 the
// ε-complementary-slackness assignment is provably optimal for the integer
// problem. Included both as an independent exactness cross-check on the
// path-based solvers and because auction parallelises naturally — the
// per-person bidding phase is embarrassingly parallel — making it the
// solver a GPU port of the optimization algorithm would start from (the
// paper leaves the matching on the CPU; see §V).
func Auction(n int, w []Cost) (perm.Perm, error) {
	if err := checkInput(n, w); err != nil {
		return nil, err
	}
	// Benefits: maximise b[i][j] = -scaled cost.
	scale := int64(n + 1)
	var maxAbs int64
	for _, c := range w {
		a := int64(c)
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	prices := make([]int64, n)
	owner := make([]int, n)  // owner[j] = person owning object j, -1 free
	object := make([]int, n) // object[i] = object owned by person i, -1 free
	queue := make([]int, 0, n)

	eps := maxAbs * scale / 2
	if eps < 1 {
		eps = 1
	}
	for {
		// Reset the assignment for this ε round (prices persist, which is
		// what makes scaling effective).
		for j := range owner {
			owner[j] = -1
		}
		queue = queue[:0]
		for i := range object {
			object[i] = -1
			queue = append(queue, i)
		}
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			row := w[i*n : (i+1)*n]
			// Find best and second-best net value.
			best, second := int64(minInt64), int64(minInt64)
			bestJ := -1
			for j := 0; j < n; j++ {
				v := -int64(row[j])*scale - prices[j]
				if v > best {
					second = best
					best = v
					bestJ = j
				} else if v > second {
					second = v
				}
			}
			if n == 1 {
				second = best
			}
			bid := best - second + eps
			prices[bestJ] += bid
			if prev := owner[bestJ]; prev >= 0 {
				object[prev] = -1
				queue = append(queue, prev)
			}
			owner[bestJ] = i
			object[i] = bestJ
		}
		if eps == 1 {
			break
		}
		eps /= 4
		if eps < 1 {
			eps = 1
		}
	}

	p := make(perm.Perm, n)
	copy(p, owner)
	return p, nil
}

const minInt64 = -1 << 63
