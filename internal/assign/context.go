package assign

import (
	"context"
	"fmt"

	"repro/internal/perm"
)

// ContextFunc is the context-aware solver signature: identical to Func plus
// a context observed at the solver's natural checkpoints (per augmenting
// row for JV, per row insertion for Hungarian, every bid stride and ε level
// for the auction). A cancelled or expired context makes the solver return
// promptly with the ctx error (test with errors.Is) and a nil permutation.
// Cancellation never changes a completed result: every registered solver is
// bit-identical to its Func counterpart when the context stays live.
type ContextFunc func(ctx context.Context, n int, w []Cost) (perm.Perm, error)

// ContextSolvers returns the registry of context-aware solvers, mirroring
// Solvers() name for name. The iterative solvers poll the context inside
// their main loops; the short-running baselines (Blossom, Greedy, Brute)
// check once on entry — their per-call work is bounded by the matrix sizes
// those algorithms are used at.
func ContextSolvers() map[Algorithm]ContextFunc {
	return map[Algorithm]ContextFunc{
		AlgoHungarian: HungarianContext,
		AlgoJV:        JVContext,
		AlgoAuction:   AuctionContext,
		AlgoAuctionDevice: func(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
			p, _, err := AuctionDeviceContext(ctx, n, w, DeviceAuctionOptions{})
			return p, err
		},
		AlgoSinkhorn: func(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
			p, _, err := SinkhornContext(ctx, n, w, SinkhornOptions{})
			return p, err
		},
		AlgoBlossom: entryChecked(Blossom),
		AlgoGreedy:  entryChecked(Greedy),
		AlgoBrute:   entryChecked(BruteForce),
	}
}

// entryChecked adapts a plain solver: one context check before the work.
func entryChecked(f Func) ContextFunc {
	return func(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
		if err := pollCtx(ctx); err != nil {
			return nil, err
		}
		return f(n, w)
	}
}

// pollCtx returns ctx's error if it is done, tolerating the nil context the
// non-context entry points pass.
func pollCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// checkpoints spaces context polls across a hot loop: each visit pays one
// increment and compare, and only every stride-th visit touches the context.
// A nil context never polls, so the plain Func entry points run the exact
// instruction stream they did before the context-aware refactor (minus one
// predictable branch).
type checkpoints struct {
	ctx    context.Context
	stride int
	count  int
	what   string
}

func (c *checkpoints) visit() error {
	if c.ctx == nil {
		return nil
	}
	c.count++
	if c.count < c.stride {
		return nil
	}
	c.count = 0
	if err := pollCtx(c.ctx); err != nil {
		return fmt.Errorf("assign: %s cancelled: %w", c.what, err)
	}
	return nil
}
