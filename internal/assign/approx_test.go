package assign

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cuda"
	"repro/internal/retry"
	"repro/internal/trace"
)

// optCost returns the exact optimum via JV.
func optCost(t *testing.T, n int, w []Cost) int64 {
	t.Helper()
	p, err := JV(n, w)
	if err != nil {
		t.Fatalf("jv n=%d: %v", n, err)
	}
	c, err := TotalCost(n, w, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAuctionDeviceGapCertified: at the default 1% target the returned
// assignment's true gap against the exact optimum must be within the
// certified gap, and both within target (the certificate is an upper bound
// on the true gap, so target ≥ certified ≥ true unless the ε schedule
// bottomed out — in which case the result is exact).
func TestAuctionDeviceGapCertified(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 50, 150} {
		for trial := 0; trial < 3; trial++ {
			w := randMatrix(t, n, 5000, int64(n*31+trial))
			opt := optCost(t, n, w)
			p, info, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{})
			if err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
			got, err := TotalCost(n, w, p)
			if err != nil {
				t.Fatalf("n=%d trial=%d: invalid assignment: %v", n, trial, err)
			}
			if got != info.Cost {
				t.Fatalf("n=%d: Info.Cost %d != evaluated cost %d", n, info.Cost, got)
			}
			if float64(opt) < info.LowerBound {
				t.Fatalf("n=%d: certificate lb %.2f above the optimum %d", n, info.LowerBound, opt)
			}
			slack := DefaultAuctionGap * maxf(1, float64(opt))
			if float64(got-opt) > slack+1 {
				t.Fatalf("n=%d trial=%d: cost %d exceeds optimum %d by more than %.1f", n, trial, got, opt, slack)
			}
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TestAuctionDeviceExactMode: a negative target disables the early stop;
// the full ε schedule must reproduce the exact optimal cost.
func TestAuctionDeviceExactMode(t *testing.T) {
	for _, n := range []int{1, 5, 40, 120} {
		w := randMatrix(t, n, 3000, int64(n*7))
		opt := optCost(t, n, w)
		p, info, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{TargetGap: -1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := TotalCost(n, w, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != opt {
			t.Fatalf("n=%d: exact mode cost %d, want optimum %d", n, got, opt)
		}
		if info.Degraded {
			t.Fatalf("n=%d: degraded without a device", n)
		}
	}
}

// TestAuctionDeviceDeterministic: identical inputs produce identical
// permutations — no randomness, no map iteration in the solve.
func TestAuctionDeviceDeterministic(t *testing.T) {
	n := 80
	w := randMatrix(t, n, 9000, 42)
	p1, _, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("run 1 and run 2 diverge at %d: %d vs %d", i, p1[i], p2[i])
		}
	}
}

// TestAuctionDeviceHostDeviceParity: the device path must be bit-identical
// to the host mirror — scans are pure, bidding is host-side either way.
func TestAuctionDeviceHostDeviceParity(t *testing.T) {
	n := 120
	w := randMatrix(t, n, 7000, 7)
	host, hInfo, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		dev, dInfo, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{Device: cuda.New(workers)})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range host {
			if host[i] != dev[i] {
				t.Fatalf("workers=%d: host and device assignments diverge at %d", workers, i)
			}
		}
		if hInfo.Cost != dInfo.Cost || hInfo.Gap != dInfo.Gap {
			t.Fatalf("workers=%d: info diverges: host %+v device %+v", workers, hInfo, dInfo)
		}
	}
}

// TestAuctionDeviceRetriesTransientFault: a single injected transient fault
// is absorbed by the retry policy — same result, no degradation.
func TestAuctionDeviceRetriesTransientFault(t *testing.T) {
	n := 90
	w := randMatrix(t, n, 4000, 11)
	want, _, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tree := trace.NewTree()
	dev := cuda.New(2).WithFaults(&cuda.FaultPlan{Nth: []int64{1}})
	got, info, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{
		Device: dev,
		Trace:  tree,
		Retry:  retry.Policy{BaseDelay: 1, Jitter: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("retried run diverges from host run at %d", i)
		}
	}
	if info.Degraded {
		t.Fatal("transient fault should be retried, not degraded")
	}
	st := tree.Snapshot()
	if st.Counter(trace.CounterLaunchFaults) == 0 || st.Counter(trace.CounterLaunchRetries) == 0 {
		t.Fatalf("fault/retry counters not recorded: %+v", st.Counters)
	}
}

// TestAuctionDeviceDeviceLostFallsBack: losing the device mid-solve
// switches the remaining scans to the host; the result is identical and the
// degradation is reported.
func TestAuctionDeviceDeviceLostFallsBack(t *testing.T) {
	n := 90
	w := randMatrix(t, n, 4000, 11)
	want, _, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tree := trace.NewTree()
	dev := cuda.New(2).WithFaults(&cuda.FaultPlan{Nth: []int64{2}, Err: cuda.ErrDeviceLost})
	got, info, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{
		Device: dev,
		Trace:  tree,
		Retry:  retry.Policy{BaseDelay: 1, Jitter: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("degraded run diverges from host run at %d", i)
		}
	}
	if !info.Degraded {
		t.Fatal("device loss not reported as degraded")
	}
	st := tree.Snapshot()
	if st.Counter(trace.CounterDegradedRuns) != 1 {
		t.Fatalf("degraded-runs counter = %d, want 1", st.Counter(trace.CounterDegradedRuns))
	}
	if st.Span(trace.SpanDegraded).Count == 0 {
		t.Fatal("no degraded span recorded")
	}
}

// TestAuctionDeviceDisableFallback: with fallback disabled a faulting
// device fails the solve, and a missing device is rejected up front.
func TestAuctionDeviceDisableFallback(t *testing.T) {
	n := 40
	w := randMatrix(t, n, 2000, 3)
	dev := cuda.New(2).WithFaults(&cuda.FaultPlan{}) // zero plan: every launch fails
	_, _, err := AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{
		Device:          dev,
		DisableFallback: true,
		Retry:           retry.Policy{BaseDelay: 1, Jitter: -1},
	})
	if !errors.Is(err, cuda.ErrLaunchFailed) {
		t.Fatalf("want ErrLaunchFailed with fallback disabled, got %v", err)
	}
	_, _, err = AuctionDeviceContext(context.Background(), n, w, DeviceAuctionOptions{DisableFallback: true})
	if err == nil {
		t.Fatal("nil device with fallback disabled must be rejected")
	}
}

// metricMatrix builds the structured instance class the pipeline actually
// feeds the solvers: costs |a_i − b_j| between random scalar descriptors,
// the 1-D analogue of tile-error matrices. (Uniform iid random matrices are
// deliberately not used as a quality probe: their optimum shrinks toward a
// constant as n grows — the Mézard–Parisi π²/6 limit — so any absolute
// error shows up as an enormous relative gap, telling us nothing about the
// workload.)
func metricMatrix(t testing.TB, n int, seed int64) []Cost {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := make([]int32, n)
	b := make([]int32, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Int31n(10000)
		b[i] = rng.Int31n(10000)
	}
	w := make([]Cost, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := int64(a[i]) - int64(b[j])
			if d < 0 {
				d = -d
			}
			w[i*n+j] = Cost(d)
		}
	}
	return w
}

// TestSinkhornQualityOnMetricInstances: on the structured instance class
// the pipeline produces, Sinkhorn + polish must certify Info invariants and
// land within 1% of the optimum (the solver-smoke bound).
func TestSinkhornQualityOnMetricInstances(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 60, 150} {
		for trial := 0; trial < 3; trial++ {
			w := metricMatrix(t, n, int64(n*17+trial))
			opt := optCost(t, n, w)
			p, info, err := SinkhornContext(context.Background(), n, w, SinkhornOptions{})
			if err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
			got, err := TotalCost(n, w, p)
			if err != nil {
				t.Fatalf("n=%d trial=%d: invalid assignment: %v", n, trial, err)
			}
			if got != info.Cost {
				t.Fatalf("n=%d: Info.Cost %d != evaluated cost %d", n, info.Cost, got)
			}
			if info.LowerBound > float64(opt)+1e-6 {
				t.Fatalf("n=%d: certificate lb %.2f above the optimum %d", n, info.LowerBound, opt)
			}
			if float64(got-opt) > 0.01*maxf(1, float64(opt)) {
				t.Fatalf("n=%d trial=%d: cost %d more than 1%% above optimum %d", n, trial, got, opt)
			}
		}
	}
}

// TestSinkhornValidOnAdversarialRandom: on unstructured uniform matrices
// (the solver's worst case) the result must still be a valid permutation
// with a genuine lower bound — quality is certified on metric instances and
// by the solver-smoke gate, not here.
func TestSinkhornValidOnAdversarialRandom(t *testing.T) {
	for _, n := range []int{16, 60, 150} {
		w := randMatrix(t, n, 5000, int64(n*17))
		opt := optCost(t, n, w)
		p, info, err := SinkhornContext(context.Background(), n, w, SinkhornOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if _, err := TotalCost(n, w, p); err != nil {
			t.Fatalf("n=%d: invalid assignment: %v", n, err)
		}
		if info.LowerBound > float64(opt)+1e-6 {
			t.Fatalf("n=%d: certificate lb %.2f above the optimum %d", n, info.LowerBound, opt)
		}
	}
}

// TestSinkhornDeterministic: rounding ties are broken deterministically.
func TestSinkhornDeterministic(t *testing.T) {
	n := 70
	w := randMatrix(t, n, 6000, 99)
	p1, _, err := SinkhornContext(context.Background(), n, w, SinkhornOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := SinkhornContext(context.Background(), n, w, SinkhornOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("run 1 and run 2 diverge at %d", i)
		}
	}
}

// TestSinkhornUniformCosts: an all-equal matrix has ε = 0; the solver must
// skip the iterations and still return a valid (trivially optimal)
// permutation with a zero gap.
func TestSinkhornUniformCosts(t *testing.T) {
	n := 12
	w := make([]Cost, n*n)
	for i := range w {
		w[i] = 7
	}
	p, info, err := SinkhornContext(context.Background(), n, w, SinkhornOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TotalCost(n, w, p); err != nil {
		t.Fatal(err)
	}
	if info.Gap > 1e-9 {
		t.Fatalf("uniform matrix gap = %g, want 0", info.Gap)
	}
}

// TestApproxSolversRegistered: the registry entries run the host mirrors
// and the context registry mirrors the plain one name for name.
func TestApproxSolversRegistered(t *testing.T) {
	n := 30
	w := randMatrix(t, n, 1000, 5)
	for _, algo := range []Algorithm{AlgoAuctionDevice, AlgoSinkhorn} {
		f, ok := Solvers()[algo]
		if !ok {
			t.Fatalf("%s not in Solvers()", algo)
		}
		if algo.Exact() {
			t.Fatalf("%s must not claim exactness", algo)
		}
		p, err := f(n, w)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if _, err := TotalCost(n, w, p); err != nil {
			t.Fatalf("%s: invalid assignment: %v", algo, err)
		}
	}
	plain, ctxd := Solvers(), ContextSolvers()
	if len(plain) != len(ctxd) {
		t.Fatalf("Solvers has %d entries, ContextSolvers %d", len(plain), len(ctxd))
	}
	for algo := range plain {
		if _, ok := ctxd[algo]; !ok {
			t.Fatalf("%s missing from ContextSolvers", algo)
		}
	}
}
