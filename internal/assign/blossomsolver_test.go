package assign

import (
	"testing"

	"repro/internal/perm"
)

func TestBlossomSolverMatchesBruteForce(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for trial := 0; trial < 10; trial++ {
			w := randMatrix(t, n, 100, int64(n*31+trial))
			want, err := BruteForce(n, w)
			if err != nil {
				t.Fatal(err)
			}
			wantCost, _ := TotalCost(n, w, want)
			p, err := Blossom(n, w)
			if err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
			got, err := TotalCost(n, w, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != wantCost {
				t.Fatalf("n=%d trial=%d: blossom %d, optimum %d", n, trial, got, wantCost)
			}
		}
	}
}

func TestBlossomSolverMatchesJVLarger(t *testing.T) {
	for _, n := range []int{16, 40, 64} {
		w := randMatrix(t, n, 10000, int64(n))
		pj, err := JV(n, w)
		if err != nil {
			t.Fatal(err)
		}
		jc, _ := TotalCost(n, w, pj)
		pb, err := Blossom(n, w)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := TotalCost(n, w, pb)
		if err != nil {
			t.Fatal(err)
		}
		if bc != jc {
			t.Errorf("n=%d: blossom %d vs JV %d", n, bc, jc)
		}
	}
}

func TestBlossomSolverNegativeCosts(t *testing.T) {
	n := 6
	w := randMatrix(t, n, 50, 5)
	for i := range w {
		w[i] -= 25
	}
	want, err := BruteForce(n, w)
	if err != nil {
		t.Fatal(err)
	}
	wantCost, _ := TotalCost(n, w, want)
	p, err := Blossom(n, w)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := TotalCost(n, w, p)
	if got != wantCost {
		t.Errorf("blossom %d, optimum %d", got, wantCost)
	}
}

func TestBlossomSolverSizeCap(t *testing.T) {
	n := BlossomMaxN + 1
	w := make([]Cost, n*n)
	if _, err := Blossom(n, w); err == nil {
		t.Error("accepted n above the cap")
	}
}

func TestBlossomSolverReturnsValidPerm(t *testing.T) {
	n := 20
	w := randMatrix(t, n, 500, 8)
	p, err := Blossom(n, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	_ = perm.Identity(1) // keep the perm import honest in minimal builds
}
