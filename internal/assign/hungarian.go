package assign

import (
	"context"
	"math"

	"repro/internal/perm"
)

// Hungarian solves the LAP exactly with the successive-shortest-path form of
// the Kuhn–Munkres algorithm in O(n³) time and O(n) extra space per phase:
// rows are inserted one at a time, each insertion growing the matching along
// a shortest augmenting path maintained with dual potentials (u, v). This is
// the algorithm the paper cites ([11], [12]) for the matching step.
func Hungarian(n int, w []Cost) (perm.Perm, error) {
	return hungarian(nil, n, w)
}

// HungarianContext is Hungarian with cancellation: the context is polled
// before each row insertion and at every step of the shortest-path tree
// growth (each step is one O(n) relaxation pass).
func HungarianContext(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
	return hungarian(ctx, n, w)
}

func hungarian(ctx context.Context, n int, w []Cost) (perm.Perm, error) {
	if err := checkInput(n, w); err != nil {
		return nil, err
	}
	cp := checkpoints{ctx: ctx, stride: 64, what: "hungarian"}
	const inf = math.MaxInt64

	// Potentials: rowPot over rows, colPot over columns 0..n (n is the
	// virtual start column of each augmenting search).
	rowPot := make([]int64, n)
	colPot := make([]int64, n+1)
	// matched[j] = row currently assigned to column j (index n is scratch).
	matched := make([]int, n+1)
	for j := range matched {
		matched[j] = -1
	}
	minv := make([]int64, n) // tentative shortest distances to each column
	way := make([]int, n)    // predecessor column on the shortest path
	used := make([]bool, n+1)

	for i := 0; i < n; i++ {
		matched[n] = i
		j0 := n
		for j := 0; j < n; j++ {
			minv[j] = inf
			used[j] = false
			way[j] = n
		}
		used[n] = false
		for {
			if err := cp.visit(); err != nil {
				return nil, err
			}
			used[j0] = true
			i0 := matched[j0]
			delta := int64(inf)
			j1 := -1
			row := w[i0*n : (i0+1)*n]
			for j := 0; j < n; j++ {
				if used[j] {
					continue
				}
				cur := int64(row[j]) - rowPot[i0] - colPot[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			// Dual update keeps reduced costs non-negative while the path
			// tree grows.
			for j := 0; j <= n; j++ {
				if used[j] {
					if matched[j] >= 0 {
						rowPot[matched[j]] += delta
					}
					colPot[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matched[j0] < 0 {
				break
			}
		}
		// Augment: flip the alternating path back to the virtual column.
		for j0 != n {
			j1 := way[j0]
			matched[j0] = matched[j1]
			j0 = j1
		}
	}

	p := make(perm.Perm, n)
	copy(p, matched[:n])
	return p, nil
}
