package assign

import (
	"fmt"

	"repro/internal/blossom"
	"repro/internal/perm"
)

// BlossomMaxN caps the Blossom LAP path: the general-graph solver keeps a
// dense (2n)×(2n) edge table, so beyond a few hundred rows the dedicated
// LAP algorithms are strictly better. The cap covers the paper's S = 16×16
// configuration with room to spare.
const BlossomMaxN = 600

// Blossom solves the LAP with the general-graph weighted blossom algorithm
// (internal/blossom) — the solver family the paper actually uses (Blossom V,
// §III). The bipartite instance is embedded in a complete graph on 2n
// vertices with same-side edges priced out. Exact, like JV/Hungarian, but
// O(n³) on twice the vertices with heavier constants; provided for fidelity
// and cross-validation rather than speed, and limited to n ≤ BlossomMaxN.
func Blossom(n int, w []Cost) (perm.Perm, error) {
	if err := checkInput(n, w); err != nil {
		return nil, err
	}
	if n > BlossomMaxN {
		return nil, fmt.Errorf("assign: blossom solver limited to n ≤ %d, got %d (use jv): %w", BlossomMaxN, n, ErrBadInput)
	}
	var minW, maxW int64
	for _, c := range w {
		if int64(c) > maxW {
			maxW = int64(c)
		}
		if int64(c) < minW {
			minW = int64(c)
		}
	}
	// Shift negatives so all cross weights are ≥ 0 (the blossom solver's
	// domain); shifting every cross edge by a constant moves every perfect
	// matching's total equally.
	shift := -minW
	big := (maxW+shift)*int64(n) + 1
	match, _, err := blossom.MinWeightPerfect(2*n, func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		if u < n && v >= n {
			return int64(w[u*n+(v-n)]) + shift
		}
		return big
	})
	if err != nil {
		return nil, err
	}
	p := make(perm.Perm, n)
	for u := 0; u < n; u++ {
		v := match[u]
		if v < n {
			return nil, fmt.Errorf("assign: blossom matched within a side (%d–%d): %w", u, v, ErrInfeasible)
		}
		p[v-n] = u
	}
	return p, nil
}
