package assign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

// randMatrix builds a deterministic random n×n cost matrix with entries in
// [0, maxC].
func randMatrix(t testing.TB, n int, maxC int32, seed int64) []Cost {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := make([]Cost, n*n)
	for i := range w {
		w[i] = Cost(rng.Int31n(maxC + 1))
	}
	return w
}

// exactSolvers are the solvers that must return an optimal assignment.
var exactSolvers = map[string]Func{
	"hungarian": Hungarian,
	"jv":        JV,
	"auction":   Auction,
}

func TestExactSolversMatchBruteForce(t *testing.T) {
	for name, solve := range exactSolvers {
		t.Run(name, func(t *testing.T) {
			for n := 1; n <= 7; n++ {
				for trial := 0; trial < 20; trial++ {
					w := randMatrix(t, n, 100, int64(n*1000+trial))
					want, err := BruteForce(n, w)
					if err != nil {
						t.Fatalf("brute n=%d: %v", n, err)
					}
					wantCost, err := TotalCost(n, w, want)
					if err != nil {
						t.Fatalf("brute cost: %v", err)
					}
					got, err := solve(n, w)
					if err != nil {
						t.Fatalf("%s n=%d: %v", name, n, err)
					}
					gotCost, err := TotalCost(n, w, got)
					if err != nil {
						t.Fatalf("%s assignment invalid (n=%d trial=%d): %v", name, n, trial, err)
					}
					if gotCost != wantCost {
						t.Fatalf("%s n=%d trial=%d: cost %d, optimal %d (got %v)", name, n, trial, gotCost, wantCost, got)
					}
				}
			}
		})
	}
}

func TestExactSolversAgreeOnLargerInstances(t *testing.T) {
	// Beyond brute-force reach the three independent exact algorithms must
	// still agree on the optimal cost.
	for _, n := range []int{16, 33, 64, 100} {
		w := randMatrix(t, n, 5000, int64(n))
		ph, err := Hungarian(n, w)
		if err != nil {
			t.Fatal(err)
		}
		hc, err := TotalCost(n, w, ph)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := JV(n, w)
		if err != nil {
			t.Fatal(err)
		}
		jc, err := TotalCost(n, w, pj)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := Auction(n, w)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := TotalCost(n, w, pa)
		if err != nil {
			t.Fatal(err)
		}
		if hc != jc || hc != ac {
			t.Errorf("n=%d: hungarian=%d jv=%d auction=%d", n, hc, jc, ac)
		}
	}
}

func TestSolversProduceValidPermutationsProperty(t *testing.T) {
	// Property (testing/quick): on arbitrary small matrices every solver
	// returns a valid permutation and no exact solver is beaten by greedy.
	f := func(rawN uint8, seed int64) bool {
		n := int(rawN)%12 + 1
		w := randMatrix(t, n, 200, seed)
		g, err := Greedy(n, w)
		if err != nil || g.Validate() != nil {
			return false
		}
		gc, err := TotalCost(n, w, g)
		if err != nil {
			return false
		}
		for _, solve := range exactSolvers {
			p, err := solve(n, w)
			if err != nil || p.Validate() != nil {
				return false
			}
			c, err := TotalCost(n, w, p)
			if err != nil || c > gc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolversOnStructuredMatrices(t *testing.T) {
	cases := []struct {
		name string
		n    int
		w    func(u, v int) Cost
		want int64 // optimal cost
	}{
		{"identity-cheap", 5, func(u, v int) Cost {
			if u == v {
				return 0
			}
			return 10
		}, 0},
		{"anti-diagonal", 4, func(u, v int) Cost {
			if u+v == 3 {
				return 1
			}
			return 100
		}, 4},
		{"constant", 6, func(u, v int) Cost { return 7 }, 42},
		{"row-increasing", 3, func(u, v int) Cost { return Cost(u*10 + v) }, 33},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := make([]Cost, tc.n*tc.n)
			for u := 0; u < tc.n; u++ {
				for v := 0; v < tc.n; v++ {
					w[u*tc.n+v] = tc.w(u, v)
				}
			}
			for name, solve := range exactSolvers {
				p, err := solve(tc.n, w)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				c, err := TotalCost(tc.n, w, p)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if c != tc.want {
					t.Errorf("%s: cost %d, want %d", name, c, tc.want)
				}
			}
		})
	}
}

func TestSolversHandleTies(t *testing.T) {
	// An all-equal-cost matrix has n! optima; any valid permutation is
	// correct but the solvers must not loop or return junk.
	n := 8
	w := make([]Cost, n*n)
	for name, solve := range exactSolvers {
		p, err := solve(n, w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGreedyIsDeterministicAndValid(t *testing.T) {
	n := 20
	w := randMatrix(t, n, 300, 7)
	a, err := Greedy(n, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(n, w)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("Greedy is not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGreedyTakesCheapestEdgeFirst(t *testing.T) {
	// The globally cheapest pair must always be in the greedy solution.
	n := 6
	w := randMatrix(t, n, 1000, 42)
	// Plant a unique global minimum.
	w[3*n+4] = -5
	p, err := Greedy(n, w)
	if err != nil {
		t.Fatal(err)
	}
	if p[4] != 3 {
		t.Errorf("greedy did not take the cheapest edge: p[4] = %d, want 3", p[4])
	}
}

func TestBruteForceRejectsLargeN(t *testing.T) {
	w := make([]Cost, 11*11)
	if _, err := BruteForce(11, w); err == nil {
		t.Error("BruteForce accepted n = 11")
	}
}

func TestBruteForceLexicographicTieBreak(t *testing.T) {
	// All-zero matrix: every permutation optimal; brute force must return
	// the identity (lexicographically smallest).
	n := 5
	w := make([]Cost, n*n)
	p, err := BruteForce(n, w)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(perm.Identity(n)) {
		t.Errorf("got %v, want identity", p)
	}
}

func TestInputValidation(t *testing.T) {
	all := map[string]Func{
		"hungarian": Hungarian, "jv": JV, "auction": Auction,
		"greedy": Greedy, "brute": BruteForce,
	}
	for name, solve := range all {
		if _, err := solve(0, nil); err == nil {
			t.Errorf("%s accepted n=0", name)
		}
		if _, err := solve(3, make([]Cost, 8)); err == nil {
			t.Errorf("%s accepted a short matrix", name)
		}
		if _, err := solve(-2, make([]Cost, 4)); err == nil {
			t.Errorf("%s accepted negative n", name)
		}
	}
}

func TestTotalCostValidation(t *testing.T) {
	w := make([]Cost, 9)
	if _, err := TotalCost(3, w, perm.Perm{0, 1}); err == nil {
		t.Error("TotalCost accepted a short permutation")
	}
	if _, err := TotalCost(3, w, perm.Perm{0, 0, 1}); err == nil {
		t.Error("TotalCost accepted a non-bijection")
	}
	c, err := TotalCost(3, []Cost{1, 2, 3, 4, 5, 6, 7, 8, 9}, perm.Perm{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// p[0]=2 → w[2*3+0]=7; p[1]=0 → w[0*3+1]=2; p[2]=1 → w[1*3+2]=6.
	if c != 15 {
		t.Errorf("TotalCost = %d, want 15", c)
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	reg := Solvers()
	for _, a := range []Algorithm{AlgoHungarian, AlgoJV, AlgoAuction, AlgoGreedy, AlgoBrute} {
		if reg[a] == nil {
			t.Errorf("registry missing %q", a)
		}
	}
	if !AlgoJV.Exact() || !AlgoHungarian.Exact() || !AlgoAuction.Exact() || !AlgoBrute.Exact() {
		t.Error("exact solver reported as inexact")
	}
	if AlgoGreedy.Exact() {
		t.Error("greedy reported as exact")
	}
}

func TestRandomAssignmentSeeded(t *testing.T) {
	a := RandomAssignment(50, 1)
	b := RandomAssignment(50, 1)
	c := RandomAssignment(50, 2)
	if !a.Equal(b) {
		t.Error("same seed produced different assignments")
	}
	if a.Equal(c) {
		t.Error("different seeds produced identical assignments (astronomically unlikely)")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSolversWithNegativeCosts(t *testing.T) {
	// Tile errors are non-negative, but the solvers are general LAP code and
	// must handle negative entries (the auction converts to benefits).
	n := 6
	w := randMatrix(t, n, 200, 99)
	for i := range w {
		w[i] -= 100
	}
	want, err := BruteForce(n, w)
	if err != nil {
		t.Fatal(err)
	}
	wantCost, _ := TotalCost(n, w, want)
	for name, solve := range exactSolvers {
		p, err := solve(n, w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := TotalCost(n, w, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c != wantCost {
			t.Errorf("%s: %d, want %d", name, c, wantCost)
		}
	}
}

func benchSolver(b *testing.B, n int, solve Func) {
	w := randMatrix(b, n, 1<<20, int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve(n, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHungarian256(b *testing.B) { benchSolver(b, 256, Hungarian) }
func BenchmarkJV256(b *testing.B)        { benchSolver(b, 256, JV) }
func BenchmarkAuction256(b *testing.B)   { benchSolver(b, 256, Auction) }
func BenchmarkGreedy256(b *testing.B)    { benchSolver(b, 256, Greedy) }
func BenchmarkJV1024(b *testing.B)       { benchSolver(b, 1024, JV) }
