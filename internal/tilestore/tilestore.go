// Package tilestore is the immutable columnar (SoA) tile store behind the
// Step-2 and Step-3 hot paths.
//
// The paper's pipeline streams per-tile pixels in both the cost-matrix build
// (Step 2, S² tile-error evaluations) and the local search's delta
// bookkeeping (Step 3), but a tile.Grid keeps tiles as row-major crops inside
// the source image: every consumer re-gathers them (Grid.Flatten) and no two
// consumers share the gathered copy. The Store fixes the layout once:
//
//   - Pix holds one contiguous pixel block per tile, tile i at
//     [i·Stride, (i+1)·Stride). Blocks are padded with zero bytes up to
//     Stride, a multiple of PadAlign, so the SWAR uint64 kernels stream
//     whole words with no tail handling and rows of consecutive tiles stay
//     cache-line aligned. Zero padding is metric-neutral: |0−0| contributes
//     nothing under L1 or L2, so kernels may run over the padded block and
//     stay bit-identical to the unpadded crop path.
//   - Per-tile summary stats — pixel sum, 256-bin histogram, and a low-res
//     box-downsampled thumbnail feature vector — are computed in the same
//     pass that gathers the pixels. The per-tile histograms sum to the
//     image's global histogram, which is how the fused Prepare gets the
//     target's distribution for §II histogram matching without a second
//     pass; the thumbnails are the feature vectors clustering/candidate
//     pruning consumes.
//
// A Store is immutable after construction: concurrent readers (cost-matrix
// builders on several devices, concurrent FinishContext calls on one cached
// core.Prepared) need no synchronisation. The gather is exact and invertible
// — Scatter reconstructs the source image byte for byte, which
// FuzzTileStoreRoundTrip enforces across fuzzed geometries.
package tilestore

import (
	"fmt"

	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/tile"
)

// PadAlign is the byte alignment of each tile's pixel block. 32 matches the
// widest stride of the SWAR kernels (four uint64 words per iteration), so a
// padded block is always covered by whole unrolled iterations.
const PadAlign = 32

// ThumbSide is the side length of the per-tile thumbnail feature vector
// (clamped to the tile side for tiles smaller than ThumbSide×ThumbSide).
// 4×4 box means follow the related-work descriptor size used by proxy
// matrices and by clustering-based candidate pruning.
const ThumbSide = 4

// histBins is the number of histogram bins per tile (the 8-bit data model).
const histBins = 256

// Store is an immutable columnar tile store: S contiguous padded pixel
// blocks plus per-tile summary stats, all indexed by the grid's row-major
// tile order. Construct with FromGrid, FromImage or GatherLUT; do not
// mutate any field afterwards.
type Store struct {
	M    int // tile side in pixels
	Cols int // tiles per image row
	Rows int // tiles per image column
	// Stride is the padded byte size of one tile block: M² rounded up to a
	// multiple of PadAlign. Padding bytes are zero.
	Stride int
	// Pix is the flat pixel buffer, S·Stride bytes: tile i row-major at
	// [i·Stride, i·Stride+M²), then zero padding to (i+1)·Stride.
	Pix []uint8
	// Sum is the per-tile pixel sum (Σ of the M² bytes).
	Sum []int64
	// Hist is the per-tile intensity histogram, histBins counters per tile:
	// tile i's bin v at Hist[i·256+v]. Tile histograms sum to the image's
	// global histogram.
	Hist []uint32
	// Thumb is the per-tile thumbnail, ThumbDim² bytes per tile: the tile
	// box-downsampled to ThumbDim×ThumbDim by integer mean (truncating
	// division) over each cell.
	Thumb []uint8
	// ThumbDim is the realised thumbnail side: min(ThumbSide, M).
	ThumbDim int
}

// Layout describes the store's memory layout for reports and schema records.
type Layout struct {
	TileBytes  int `json:"tile_bytes"`           // M² payload bytes per tile
	Stride     int `json:"stride_bytes"`         // padded block size
	PadBytes   int `json:"pad_bytes"`            // Stride − M²
	StatsBytes int `json:"stats_bytes_per_tile"` // sum + histogram + thumbnail
	ThumbSide  int `json:"thumb_side"`           // realised thumbnail side
}

// LayoutFor returns the layout a store with tile side m uses, without
// building one — reports record it next to their timings.
func LayoutFor(m int) Layout {
	if m <= 0 {
		panic(fmt.Sprintf("tilestore: LayoutFor(%d)", m))
	}
	m2 := m * m
	stride := (m2 + PadAlign - 1) / PadAlign * PadAlign
	td := ThumbSide
	if td > m {
		td = m
	}
	return Layout{
		TileBytes:  m2,
		Stride:     stride,
		PadBytes:   stride - m2,
		StatsBytes: 8 + 4*histBins + td*td,
		ThumbSide:  td,
	}
}

// Layout returns the realised layout of s.
func (s *Store) Layout() Layout { return LayoutFor(s.M) }

// S returns the number of tiles.
func (s *Store) S() int { return s.Cols * s.Rows }

// Tile returns tile i's M² payload bytes (no padding), row-major.
func (s *Store) Tile(i int) []uint8 {
	off := i * s.Stride
	return s.Pix[off : off+s.M*s.M : off+s.M*s.M]
}

// TilePadded returns tile i's full padded block (Stride bytes, zero tail).
// The kernels stream this form: same error sum, aligned length.
func (s *Store) TilePadded(i int) []uint8 {
	off := i * s.Stride
	return s.Pix[off : off+s.Stride : off+s.Stride]
}

// TileHist returns tile i's 256-bin histogram.
func (s *Store) TileHist(i int) []uint32 {
	return s.Hist[i*histBins : (i+1)*histBins]
}

// TileThumb returns tile i's ThumbDim² thumbnail feature vector.
func (s *Store) TileThumb(i int) []uint8 {
	n := s.ThumbDim * s.ThumbDim
	return s.Thumb[i*n : (i+1)*n]
}

// Mean returns tile i's mean intensity (truncating integer division, the
// scalar-recomputable convention the fuzz oracle checks).
func (s *Store) Mean(i int) uint8 {
	return uint8(s.Sum[i] / int64(s.M*s.M))
}

// GlobalHistogram sums the per-tile histograms into the image's histogram —
// exactly hist.Of of the source image, since the tiles partition it.
func (s *Store) GlobalHistogram() hist.Histogram {
	var h hist.Histogram
	for i := 0; i < s.S(); i++ {
		th := s.TileHist(i)
		for v := 0; v < histBins; v++ {
			h[v] += int64(th[v])
		}
	}
	return h
}

// MemoryBytes returns the resident size of the store's buffers — the weight
// serving caches charge for the shared artifact.
func (s *Store) MemoryBytes() int64 {
	return int64(len(s.Pix)) + 8*int64(len(s.Sum)) + 4*int64(len(s.Hist)) + int64(len(s.Thumb))
}

// newStore allocates an empty store for the given grid geometry.
func newStore(m, cols, rows int) *Store {
	lay := LayoutFor(m)
	s := cols * rows
	return &Store{
		M:        m,
		Cols:     cols,
		Rows:     rows,
		Stride:   lay.Stride,
		Pix:      make([]uint8, s*lay.Stride),
		Sum:      make([]int64, s),
		Hist:     make([]uint32, s*histBins),
		Thumb:    make([]uint8, s*lay.ThumbSide*lay.ThumbSide),
		ThumbDim: lay.ThumbSide,
	}
}

// thumbPlan precomputes, for tile side m and thumbnail side td, each pixel
// row/column's destination cell and each cell's pixel count. Cell mapping is
// c = x·td/m (integer), so non-divisible sides distribute remainder pixels
// deterministically — the same formula the scalar oracle uses.
type thumbPlan struct {
	cell   []int   // cell index per pixel coordinate (length m)
	counts []int64 // pixels per cell (length td²), product of row/col counts
}

func newThumbPlan(m, td int) thumbPlan {
	p := thumbPlan{cell: make([]int, m), counts: make([]int64, td*td)}
	axis := make([]int64, td)
	for x := 0; x < m; x++ {
		c := x * td / m
		p.cell[x] = c
		axis[c]++
	}
	for cy := 0; cy < td; cy++ {
		for cx := 0; cx < td; cx++ {
			p.counts[cy*td+cx] = axis[cy] * axis[cx]
		}
	}
	return p
}

// gather runs the single fused pass: for every tile it copies the (optionally
// LUT-mapped) pixels into the padded block, and accumulates sum, histogram
// and thumbnail cell sums from the bytes it just wrote. rowAt returns source
// row r of tile i; sink, when non-nil, additionally receives the mapped row
// (the fused histogram-matched image of GatherLUT).
func (s *Store) gather(rowAt func(i, r int) []uint8, lut *[256]uint8, sink func(i, r int, row []uint8)) {
	m := s.M
	td := s.ThumbDim
	plan := newThumbPlan(m, td)
	cellSum := make([]int64, td*td)
	for i := 0; i < s.S(); i++ {
		block := s.Pix[i*s.Stride : i*s.Stride+m*m]
		th := s.TileHist(i)
		var sum int64
		for c := range cellSum {
			cellSum[c] = 0
		}
		for r := 0; r < m; r++ {
			src := rowAt(i, r)
			dst := block[r*m : (r+1)*m]
			if lut != nil {
				for x, p := range src {
					dst[x] = lut[p]
				}
			} else {
				copy(dst, src)
			}
			rowCells := cellSum[plan.cell[r]*td : (plan.cell[r]+1)*td]
			for x, p := range dst {
				sum += int64(p)
				th[p]++
				rowCells[plan.cell[x]] += int64(p)
			}
			if sink != nil {
				sink(i, r, dst)
			}
		}
		s.Sum[i] = sum
		thumb := s.TileThumb(i)
		for c, cs := range cellSum {
			thumb[c] = uint8(cs / plan.counts[c])
		}
	}
}

// FromGrid builds the store from an existing grid in one fused
// gather-and-stats pass. The grid's image is not retained.
func FromGrid(g *tile.Grid) *Store {
	s := newStore(g.M, g.Cols, g.Rows)
	s.gather(g.Row, nil, nil)
	return s
}

// FromImage builds the store directly from an image divided into m×m tiles,
// with the same geometry validation as tile.NewGrid.
func FromImage(img *imgutil.Gray, m int) (*Store, error) {
	g, err := tile.NewGrid(img, m)
	if err != nil {
		return nil, err
	}
	return FromGrid(g), nil
}

// GatherLUT is the fused §II + Step-1 pass: it maps img through lut (the
// histogram-matching table), writing the matched image AND gathering its
// tiles into a store — with per-tile stats — in a single traversal. The
// returned image is byte-identical to hist.Match's output for the same LUT;
// the returned store equals FromImage of that image.
func GatherLUT(img *imgutil.Gray, m int, lut [256]uint8) (*Store, *imgutil.Gray, error) {
	g, err := tile.NewGrid(img, m)
	if err != nil {
		return nil, nil, err
	}
	matched := imgutil.NewGray(img.W, img.H)
	s := newStore(g.M, g.Cols, g.Rows)
	s.gather(g.Row, &lut, func(i, r int, row []uint8) {
		x, y := g.Origin(i)
		copy(matched.Pix[(y+r)*matched.W+x:], row)
	})
	return s, matched, nil
}

// Scatter reconstructs the source image from the stored tile blocks — the
// inverse of the gather, exact byte for byte (the round-trip contract the
// fuzz target pins).
func (s *Store) Scatter() *imgutil.Gray {
	out := imgutil.NewGray(s.Cols*s.M, s.Rows*s.M)
	m := s.M
	for i := 0; i < s.S(); i++ {
		x := (i % s.Cols) * m
		y := (i / s.Cols) * m
		block := s.Tile(i)
		for r := 0; r < m; r++ {
			copy(out.Pix[(y+r)*out.W+x:(y+r)*out.W+x+m], block[r*m:(r+1)*m])
		}
	}
	return out
}
