package tilestore

import (
	"bytes"
	"testing"

	"repro/internal/imgutil"
	"repro/internal/tile"
)

// fuzzImage renders a deterministic pseudo-random w×h image from seed
// (xorshift64*), so every corpus entry reproduces byte-exactly.
func fuzzImage(w, h int, seed uint64) *imgutil.Gray {
	img := imgutil.NewGray(w, h)
	x := seed | 1
	for i := range img.Pix {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		img.Pix[i] = uint8((x * 0x2545F4914F6CDD1D) >> 56)
	}
	return img
}

// FuzzTileStoreRoundTrip fuzzes the store over arbitrary tile geometry:
// non-divisible edges must be rejected exactly like tile.NewGrid, and for
// every valid geometry gather→store→scatter must reconstruct the source
// image byte for byte, padding must be zero, and the fused per-tile stats
// must match a scalar recomputation. A LUT gather must equal gathering the
// LUT-mapped image.
func FuzzTileStoreRoundTrip(f *testing.F) {
	f.Add(64, 64, 8, uint64(1))
	f.Add(96, 64, 16, uint64(2))   // non-square image
	f.Add(33, 33, 11, uint64(3))   // odd sides, stride padding
	f.Add(60, 60, 7, uint64(4))    // non-divisible edge → reject
	f.Add(5, 5, 5, uint64(5))      // single tile below thumb side
	f.Add(2, 2, 1, uint64(6))      // 1×1 tiles
	f.Add(50, 40, 10, uint64(7))   // thumb side not dividing tile side
	f.Add(128, 128, 64, uint64(8)) // large tiles
	f.Fuzz(func(t *testing.T, w, h, m int, seed uint64) {
		if w <= 0 || h <= 0 || w > 192 || h > 192 || m > 96 {
			t.Skip()
		}
		img := fuzzImage(w, h, seed)
		s, err := FromImage(img, m)
		if m <= 0 || w%m != 0 || h%m != 0 {
			if err == nil {
				t.Fatalf("FromImage(%dx%d, m=%d) accepted invalid geometry", w, h, m)
			}
			return
		}
		if err != nil {
			t.Fatalf("FromImage(%dx%d, m=%d): %v", w, h, m, err)
		}
		back := s.Scatter()
		if back.W != w || back.H != h || !bytes.Equal(back.Pix, img.Pix) {
			t.Fatalf("round trip failed for %dx%d m=%d", w, h, m)
		}
		g, err := tile.NewGrid(img, m)
		if err != nil {
			t.Fatal(err)
		}
		checkStoreAgainstGrid(t, s, g)

		// LUT gather: equal to gathering the mapped image, and the matched
		// image equal to mapping pixel-wise.
		var lut [256]uint8
		for v := range lut {
			lut[v] = uint8((uint64(v)*(seed|1) + seed>>8) % 256)
		}
		ls, matched, err := GatherLUT(img, m, lut)
		if err != nil {
			t.Fatalf("GatherLUT: %v", err)
		}
		mapped := imgutil.NewGray(w, h)
		for i, p := range img.Pix {
			mapped.Pix[i] = lut[p]
		}
		if !bytes.Equal(matched.Pix, mapped.Pix) {
			t.Fatal("GatherLUT matched image differs from pixel-wise mapping")
		}
		ref, err := FromImage(mapped, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ls.Pix, ref.Pix) || !bytes.Equal(ls.Thumb, ref.Thumb) {
			t.Fatal("GatherLUT store differs from FromImage of the mapped image")
		}
		for i := 0; i < s.S(); i++ {
			if ls.Sum[i] != ref.Sum[i] {
				t.Fatalf("GatherLUT sum[%d] = %d, want %d", i, ls.Sum[i], ref.Sum[i])
			}
		}
	})
}
