package tilestore

import (
	"bytes"
	"testing"

	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/synth"
	"repro/internal/tile"
)

// scalarStats recomputes tile i's summary stats the naive way, straight from
// the grid crop — the oracle the fused gather must match.
func scalarStats(g *tile.Grid, i int) (sum int64, h [256]int64, thumb []uint8) {
	m := g.M
	td := ThumbSide
	if td > m {
		td = m
	}
	cellSum := make([]int64, td*td)
	cellCnt := make([]int64, td*td)
	for r := 0; r < m; r++ {
		row := g.Row(i, r)
		for x, p := range row {
			sum += int64(p)
			h[p]++
			c := (r*td/m)*td + x*td/m
			cellSum[c] += int64(p)
			cellCnt[c]++
		}
	}
	thumb = make([]uint8, td*td)
	for c := range thumb {
		thumb[c] = uint8(cellSum[c] / cellCnt[c])
	}
	return sum, h, thumb
}

func checkStoreAgainstGrid(t *testing.T, s *Store, g *tile.Grid) {
	t.Helper()
	if s.M != g.M || s.Cols != g.Cols || s.Rows != g.Rows {
		t.Fatalf("store geometry %dx%d M=%d, grid %dx%d M=%d", s.Cols, s.Rows, s.M, g.Cols, g.Rows, g.M)
	}
	if s.Stride%PadAlign != 0 || s.Stride < g.M*g.M {
		t.Fatalf("stride %d not a padded multiple of %d over %d", s.Stride, PadAlign, g.M*g.M)
	}
	m2 := g.M * g.M
	for i := 0; i < g.S(); i++ {
		// Pixels: block payload equals the crop, padding is zero.
		want := g.Tile(i).Pix
		if !bytes.Equal(s.Tile(i), want) {
			t.Fatalf("tile %d pixels differ from crop", i)
		}
		for _, p := range s.TilePadded(i)[m2:] {
			if p != 0 {
				t.Fatalf("tile %d has non-zero padding", i)
			}
		}
		// Stats: fused pass vs scalar recomputation.
		sum, h, thumb := scalarStats(g, i)
		if s.Sum[i] != sum {
			t.Fatalf("tile %d sum = %d, scalar %d", i, s.Sum[i], sum)
		}
		th := s.TileHist(i)
		for v := 0; v < 256; v++ {
			if int64(th[v]) != h[v] {
				t.Fatalf("tile %d hist[%d] = %d, scalar %d", i, v, th[v], h[v])
			}
		}
		if !bytes.Equal(s.TileThumb(i), thumb) {
			t.Fatalf("tile %d thumb = %v, scalar %v", i, s.TileThumb(i), thumb)
		}
	}
}

func TestFromGridMatchesScalarOracle(t *testing.T) {
	for _, m := range []int{1, 3, 4, 7, 16} {
		img := synth.MustGenerate(synth.Peppers, 112) // 112 divisible by 1,4,7,16; 112%3 != 0
		if 112%m != 0 {
			if _, err := FromImage(img, m); err == nil {
				t.Fatalf("FromImage accepted non-divisible tile side %d", m)
			}
			continue
		}
		g, err := tile.NewGrid(img, m)
		if err != nil {
			t.Fatal(err)
		}
		checkStoreAgainstGrid(t, FromGrid(g), g)
	}
}

func TestScatterRoundTrip(t *testing.T) {
	img := synth.MustGenerate(synth.Barbara, 96)
	s, err := FromImage(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	back := s.Scatter()
	if back.W != img.W || back.H != img.H || !bytes.Equal(back.Pix, img.Pix) {
		t.Fatal("gather→store→scatter did not reconstruct the source image")
	}
}

func TestGlobalHistogramEqualsImageHistogram(t *testing.T) {
	img := synth.MustGenerate(synth.Lena, 128)
	s, err := FromImage(img, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := hist.Of(img)
	got := s.GlobalHistogram()
	if got != want {
		t.Fatal("sum of per-tile histograms differs from the image histogram")
	}
}

// TestGatherLUTFusesMatch pins the fused-Prepare contract: GatherLUT's
// matched image is byte-identical to hist.Match, and its store is identical
// to gathering that matched image.
func TestGatherLUTFusesMatch(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 128)
	target := synth.MustGenerate(synth.Sailboat, 128)
	lut, err := hist.MatchLUT(hist.Of(input), hist.Of(target))
	if err != nil {
		t.Fatal(err)
	}
	s, matched, err := GatherLUT(input, 16, lut)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := hist.Match(input, target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(matched.Pix, ref.Pix) {
		t.Fatal("GatherLUT matched image differs from hist.Match")
	}
	refStore, err := FromImage(ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.Pix, refStore.Pix) || !bytes.Equal(s.Thumb, refStore.Thumb) {
		t.Fatal("GatherLUT store differs from FromImage of the matched image")
	}
	g, err := tile.NewGrid(ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	checkStoreAgainstGrid(t, s, g)
}

func TestLayout(t *testing.T) {
	lay := LayoutFor(16) // m² = 256, already aligned
	if lay.TileBytes != 256 || lay.Stride != 256 || lay.PadBytes != 0 || lay.ThumbSide != 4 {
		t.Fatalf("LayoutFor(16) = %+v", lay)
	}
	lay = LayoutFor(5) // m² = 25 → stride 32
	if lay.Stride != 32 || lay.PadBytes != 7 || lay.ThumbSide != 4 {
		t.Fatalf("LayoutFor(5) = %+v", lay)
	}
	if lay = LayoutFor(3); lay.ThumbSide != 3 {
		t.Fatalf("LayoutFor(3).ThumbSide = %d", lay.ThumbSide)
	}
	s, err := FromImage(imgutil.NewGray(10, 10), 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Layout() != LayoutFor(5) {
		t.Fatalf("Layout() = %+v", s.Layout())
	}
	if s.MemoryBytes() != int64(len(s.Pix))+8*4+4*4*256+4*16 {
		t.Fatalf("MemoryBytes() = %d", s.MemoryBytes())
	}
}

func TestMean(t *testing.T) {
	img := imgutil.NewGray(4, 4)
	for i := range img.Pix {
		img.Pix[i] = uint8(i) // 0..15 → sum 120, mean 7 (truncated 120/16)
	}
	s, err := FromImage(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean(0) != 7 {
		t.Fatalf("Mean = %d, want 7", s.Mean(0))
	}
}
