// Package buildinfo is the single source of the binaries' identity: a
// version string (overridable at link time), the VCS revision baked in by
// the Go toolchain, and the Go version that built the binary. Every command
// exposes it two ways — a -version flag printing one line, and a
// mosaic_build_info gauge (constant 1, identity in the labels) so dashboards
// can correlate a latency regression with the deploy that caused it.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"repro/internal/telemetry"
)

// Version is the semantic version stamped at link time:
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3"
//
// Unstamped builds report "dev".
var Version = "dev"

// Revision returns the VCS commit the binary was built from, suffixed
// "-dirty" for modified checkouts, or "unknown" outside VCS builds (go test,
// plain `go run` of a non-checkout).
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty && rev != "unknown" {
		rev += "-dirty"
	}
	return rev
}

// Print writes the one-line -version output for the named command.
func Print(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s %s (commit %s, %s)\n", cmd, Version, Revision(), runtime.Version())
}

// Register exports the identity as mosaic_build_info{command,version,
// commit,goversion} = 1 — the standard Prometheus build-info idiom.
func Register(reg *telemetry.Registry, cmd string) {
	reg.Gauge("mosaic_build_info",
		"Build identity of the exporting process; constant 1, identity in the labels.",
		telemetry.Labels{
			"command":   cmd,
			"version":   Version,
			"commit":    Revision(),
			"goversion": runtime.Version(),
		}).Set(1)
}
