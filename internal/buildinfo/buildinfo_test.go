package buildinfo

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestPrint(t *testing.T) {
	var b strings.Builder
	Print(&b, "mosaicd")
	out := b.String()
	if !strings.HasPrefix(out, "mosaicd "+Version+" (commit ") || !strings.HasSuffix(out, ")\n") {
		t.Fatalf("unexpected -version line: %q", out)
	}
	if !strings.Contains(out, "go1.") {
		t.Fatalf("missing go version: %q", out)
	}
}

func TestRegister(t *testing.T) {
	reg := telemetry.NewRegistry()
	Register(reg, "mosaic")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE mosaic_build_info gauge") {
		t.Fatalf("build info gauge not exported:\n%s", out)
	}
	if !strings.Contains(out, `command="mosaic"`) || !strings.Contains(out, `version="`+Version+`"`) {
		t.Fatalf("identity labels missing:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "1") {
		t.Fatalf("gauge value should be 1:\n%s", out)
	}
}
