package cluster

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubBackend is a minimal mosaicd stand-in that records the forwarded
// X-Request-Deadline headers and answers 200 — the observation point for the
// propagation tests, where a real backend would obscure what the router sent.
type stubBackend struct {
	ts   *httptest.Server
	mu   sync.Mutex
	seen []string
	hits atomic.Int64
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	sb := &stubBackend{}
	sb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/mosaic" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		sb.hits.Add(1)
		sb.mu.Lock()
		sb.seen = append(sb.seen, r.Header.Get("X-Request-Deadline"))
		sb.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"done","job_id":"j1"}`))
	}))
	t.Cleanup(sb.ts.Close)
	return sb
}

func (sb *stubBackend) lastDeadline(t *testing.T) string {
	t.Helper()
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if len(sb.seen) == 0 {
		t.Fatal("stub backend saw no forwarded request")
	}
	return sb.seen[len(sb.seen)-1]
}

func stubRouter(t *testing.T, cfg Config, urls ...string) (*Router, *httptest.Server) {
	t.Helper()
	cfg.Backends = urls
	cfg.NoPeek = true
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	mux := http.NewServeMux()
	rt.RegisterRoutes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

// TestRouterDerivesAndPropagatesDeadline: a timeout_ms body with no deadline
// header gets an absolute X-Request-Deadline stamped before forwarding, and
// an explicit client header is passed through verbatim — a failover hop must
// never restart the clock.
func TestRouterDerivesAndPropagatesDeadline(t *testing.T) {
	sb := newStubBackend(t)
	_, ts := stubRouter(t, Config{}, sb.ts.URL)

	before := time.Now()
	resp, _ := postMosaic(t, ts.URL, `{"input":"lena","target":"gradient","size":64,"tiles":8,"timeout_ms":60000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	ms, err := strconv.ParseInt(sb.lastDeadline(t), 10, 64)
	if err != nil {
		t.Fatalf("forwarded X-Request-Deadline %q: %v", sb.lastDeadline(t), err)
	}
	got := time.UnixMilli(ms)
	wantLo, wantHi := before.Add(59*time.Second), before.Add(61*time.Second)
	if got.Before(wantLo) || got.After(wantHi) {
		t.Fatalf("derived deadline %v outside [%v, %v]", got, wantLo, wantHi)
	}

	// Explicit header: forwarded bit-for-bit.
	explicit := strconv.FormatInt(time.Now().Add(2*time.Minute).UnixMilli(), 10)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mosaic",
		strings.NewReader(`{"input":"lena","target":"gradient","size":64,"tiles":8}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Deadline", explicit)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp2.StatusCode)
	}
	if got := sb.lastDeadline(t); got != explicit {
		t.Fatalf("forwarded deadline %q, want the client's %q", got, explicit)
	}
}

// TestRouterShedsExpiredDeadline: a strict request whose propagated deadline
// has already passed is answered 504 at the router without burning a backend
// round-trip.
func TestRouterShedsExpiredDeadline(t *testing.T) {
	sb := newStubBackend(t)
	rt, ts := stubRouter(t, Config{Registry: nil}, sb.ts.URL)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mosaic",
		strings.NewReader(`{"input":"lena","target":"gradient","size":64,"tiles":8}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Deadline", strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if n := sb.hits.Load(); n != 0 {
		t.Fatalf("expired request reached the backend %d time(s)", n)
	}
	if got := rt.sheds("expired").Value(); got < 1 {
		t.Fatalf("sheds{expired} = %v, want ≥ 1", got)
	}

	// The same expired deadline with anytime:true is forwarded: the backend
	// degrades it to a partial result instead of wasting it.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mosaic",
		strings.NewReader(`{"input":"lena","target":"gradient","size":64,"tiles":8,"anytime":true}`))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("X-Request-Deadline", strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || sb.hits.Load() != 1 {
		t.Fatalf("anytime expired: status %d, backend hits %d, want 200/1", resp2.StatusCode, sb.hits.Load())
	}
}

// TestRouterShedsUnmeetableDeadline: once every candidate's latency estimate
// exceeds the remaining budget, strict requests get 429 + Retry-After at the
// router; anytime requests still go through.
func TestRouterShedsUnmeetableDeadline(t *testing.T) {
	sb := newStubBackend(t)
	rt, ts := stubRouter(t, Config{}, sb.ts.URL)
	node := strings.TrimRight(sb.ts.URL, "/")
	for i := 0; i < 4; i++ {
		rt.observeLatency(node, 10*time.Second)
	}

	resp, rr := postMosaic(t, ts.URL, `{"input":"lena","target":"gradient","size":64,"tiles":8,"timeout_ms":100}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, rr.Error)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 30]", resp.Header.Get("Retry-After"))
	}
	if n := sb.hits.Load(); n != 0 {
		t.Fatalf("unmeetable request reached the backend %d time(s)", n)
	}

	resp2, _ := postMosaic(t, ts.URL, `{"input":"lena","target":"gradient","size":64,"tiles":8,"timeout_ms":100,"anytime":true}`)
	if resp2.StatusCode != http.StatusOK || sb.hits.Load() != 1 {
		t.Fatalf("anytime unmeetable: status %d, backend hits %d, want 200/1", resp2.StatusCode, sb.hits.Load())
	}
}

// TestRouterNoShedDisablesShedding: with NoShed the router forwards even
// expired strict deadlines (the backends own the policy).
func TestRouterNoShedDisablesShedding(t *testing.T) {
	sb := newStubBackend(t)
	_, ts := stubRouter(t, Config{NoShed: true}, sb.ts.URL)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mosaic",
		strings.NewReader(`{"input":"lena","target":"gradient","size":64,"tiles":8}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Deadline", strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sb.hits.Load() != 1 {
		t.Fatalf("NoShed: status %d, backend hits %d, want 200/1", resp.StatusCode, sb.hits.Load())
	}
}

// slowDeadBackend accepts the request, burns `delay`, then kills the
// connection — a transport-level failure that normally triggers failover.
func slowDeadBackend(t *testing.T, delay time.Duration, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/mosaic" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		hits.Add(1)
		time.Sleep(delay)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("response writer not hijackable")
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRouterStopsFailoverOnExpiredDeadline: when the first forward's failure
// already consumed the deadline, the router answers 504 instead of replaying
// the request on the next backend — exactly one backend attempt total.
func TestRouterStopsFailoverOnExpiredDeadline(t *testing.T) {
	var hits atomic.Int64
	a := slowDeadBackend(t, 150*time.Millisecond, &hits)
	b := slowDeadBackend(t, 150*time.Millisecond, &hits)
	rt, ts := stubRouter(t, Config{ProbeInterval: time.Hour}, a.URL, b.URL)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mosaic",
		strings.NewReader(`{"input":"lena","target":"gradient","size":64,"tiles":8}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Deadline", strconv.FormatInt(time.Now().Add(50*time.Millisecond).UnixMilli(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (deadline expired during failover)", resp.StatusCode)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("backends attempted %d time(s), want exactly 1 — no replay past the deadline", n)
	}
	if got := rt.sheds("expired").Value(); got < 1 {
		t.Fatalf("sheds{expired} = %v, want ≥ 1", got)
	}
}
