package cluster

import (
	"fmt"
	"testing"
)

// owners maps every key to its current home node.
func owners(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.Pick(k)
	}
	return out
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("content-hash-%04d", i)
	}
	return keys
}

// TestRingLeaveMovesOneNth is the consistent-hashing property the cluster's
// cache affinity rests on: removing one of N nodes moves ONLY the keys that
// node owned (~1/N of the space) — every other key keeps its home, so every
// other node's prepared-work cache stays warm. Re-adding the node restores
// the original placement exactly.
func TestRingLeaveMovesOneNth(t *testing.T) {
	const nodes = 4
	r := NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("http://node-%d", i))
	}
	keys := testKeys(4000)
	before := owners(r, keys)

	const victim = "http://node-2"
	r.Remove(victim)
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		if after[k] == before[k] {
			continue
		}
		moved++
		if before[k] != victim {
			t.Fatalf("key %s moved from %s to %s, but only %s's keys may move",
				k, before[k], after[k], victim)
		}
		if after[k] == victim {
			t.Fatalf("key %s moved TO the removed node", k)
		}
	}
	frac := float64(moved) / float64(len(keys))
	// ~1/N with vnode variance: well inside (1/2N, 2/N).
	if frac < 0.5/nodes || frac > 2.0/nodes {
		t.Fatalf("leave moved %.1f%% of keys, want ~%.1f%%", frac*100, 100.0/nodes)
	}

	r.Add(victim)
	restored := owners(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %s at %s after rejoin, originally %s — placement is not deterministic",
				k, restored[k], before[k])
		}
	}
}

// TestRingJoinMovesOneNth: adding an (N+1)th node claims ~1/(N+1) of the
// keys, and every moved key moves to the new node — never between survivors.
func TestRingJoinMovesOneNth(t *testing.T) {
	const nodes = 4
	r := NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("http://node-%d", i))
	}
	keys := testKeys(4000)
	before := owners(r, keys)

	const joiner = "http://node-new"
	r.Add(joiner)
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		if after[k] == before[k] {
			continue
		}
		moved++
		if after[k] != joiner {
			t.Fatalf("key %s moved from %s to %s, but only the joiner may claim keys",
				k, before[k], after[k])
		}
	}
	frac := float64(moved) / float64(len(keys))
	want := 1.0 / (nodes + 1)
	if frac < want/2 || frac > want*2 {
		t.Fatalf("join moved %.1f%% of keys, want ~%.1f%%", frac*100, want*100)
	}
}

// TestRingCandidatesOrder: candidates are distinct, start at the home node
// and cover the whole membership when unbounded.
func TestRingCandidatesOrder(t *testing.T) {
	r := NewRing(0)
	members := []string{"a", "b", "c", "d"}
	for _, m := range members {
		r.Add(m)
	}
	for _, k := range testKeys(64) {
		c := r.Candidates(k, 0)
		if len(c) != len(members) {
			t.Fatalf("key %s: %d candidates, want %d", k, len(c), len(members))
		}
		if c[0] != r.Pick(k) {
			t.Fatalf("key %s: first candidate %s != Pick %s", k, c[0], r.Pick(k))
		}
		seen := map[string]bool{}
		for _, n := range c {
			if seen[n] {
				t.Fatalf("key %s: duplicate candidate %s", k, n)
			}
			seen[n] = true
		}
		if got := r.Candidates(k, 2); len(got) != 2 || got[0] != c[0] || got[1] != c[1] {
			t.Fatalf("key %s: bounded candidates %v disagree with prefix of %v", k, got, c)
		}
	}
}

// TestPickBounded pins the bounded-load rule: a home node over the bound
// spills to the next candidate, cold placements stay home, c ≤ 1 disables
// bounding, and an all-full list falls back to affinity.
func TestPickBounded(t *testing.T) {
	cand := []string{"a", "b", "c", "d"}
	if got := pickBounded(cand, map[string]int{}, 1.25); got != "a" {
		t.Fatalf("idle cluster: picked %s, want home a", got)
	}
	// a is far over its fair share; b is idle: spill to b.
	hot := map[string]int{"a": 10, "b": 0, "c": 1, "d": 1}
	if got := pickBounded(cand, hot, 1.25); got != "b" {
		t.Fatalf("hot home: picked %s, want spill to b", got)
	}
	// Bounding disabled: affinity wins regardless of load.
	if got := pickBounded(cand, hot, 0); got != "a" {
		t.Fatalf("c=0: picked %s, want a", got)
	}
	// Everyone at the bound: fall back to the home node.
	full := map[string]int{"a": 5, "b": 5, "c": 5, "d": 5}
	if got := pickBounded(cand, full, 1.0001); got != "a" {
		t.Fatalf("all full: picked %s, want home a", got)
	}
	if got := pickBounded(nil, nil, 1.25); got != "" {
		t.Fatalf("empty candidates: picked %q, want empty", got)
	}
}
