package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// backend is one in-process mosaicd: a real service.Service behind a real
// listener, the same wiring cmd/mosaicd does.
type backend struct {
	svc *service.Service
	ts  *httptest.Server
}

func newBackend(t *testing.T, cfg service.Config) *backend {
	t.Helper()
	svc := service.New(cfg)
	mux := telemetry.NewMux(svc.Registry(), telemetry.WithReadiness(svc.Ready))
	svc.RegisterRoutes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return &backend{svc: svc, ts: ts}
}

// newRouter fronts the given backends with a Router on its own listener.
func newRouter(t *testing.T, cfg Config, backends ...*backend) (*Router, *httptest.Server) {
	t.Helper()
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, b.ts.URL)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	mux := telemetry.NewMux(rt.Registry(), telemetry.WithReadiness(rt.Ready))
	rt.RegisterRoutes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

// routedResponse is the slice of the backend job JSON the tests assert on.
type routedResponse struct {
	Status     string   `json:"status"`
	Error      string   `json:"error"`
	Cache      string   `json:"cache"`
	TotalError int64    `json:"total_error"`
	Spans      []string `json:"spans"`
	PNGBase64  string   `json:"png_base64"`
	StatusURL  string   `json:"status_url"`
	JobID      string   `json:"job_id"`
}

func postMosaic(t *testing.T, url, body string) (*http.Response, routedResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/mosaic", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST via router: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var rr routedResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatalf("decode %q: %v", data, err)
	}
	return resp, rr
}

func hasSpan(spans []string, name string) bool {
	for _, s := range spans {
		if s == name {
			return true
		}
	}
	return false
}

// scrape sums a metric across label sets from a telemetry mux URL.
func scrape(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	var sum float64
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

const testBody = `{"input":"lena","target":"gradient","size":64,"tiles":8}`

// routingKeyOf computes the content hash the router will derive for a body —
// the test's way to reason about ring placement.
func routingKeyOf(t *testing.T, rt *Router, body string) string {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, "/v1/mosaic", strings.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	req, err := rt.decodeSubmission(r, []byte(body))
	if err != nil {
		t.Fatalf("decodeSubmission: %v", err)
	}
	return req.ContentKey()
}

// TestRouterAffinity: repeated same-content submissions all land on the ring
// home, and the second one is a cache hit there — the affinity that makes
// the cluster's caches compose instead of duplicate.
func TestRouterAffinity(t *testing.T) {
	a := newBackend(t, service.Config{Workers: 1})
	b := newBackend(t, service.Config{Workers: 1})
	rt, ts := newRouter(t, Config{}, a, b)

	home := rt.ring.Pick(routingKeyOf(t, rt, testBody))
	for i := 0; i < 2; i++ {
		resp, rr := postMosaic(t, ts.URL, testBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, rr.Error)
		}
		if got := resp.Header.Get("X-Mosaic-Backend"); got != home {
			t.Fatalf("request %d landed on %s, want ring home %s", i, got, home)
		}
		want := "miss"
		if i > 0 {
			want = "hit"
		}
		if rr.Cache != want {
			t.Fatalf("request %d: cache %q, want %q", i, rr.Cache, want)
		}
	}
	if v := scrape(t, ts.URL, "mosaic_router_peek_hits_total"); v != 0 {
		t.Errorf("peek_hits_total = %v for pure-affinity traffic, want 0", v)
	}
}

// TestRouterPeekRedirectSkipsCostMatrix is the cross-node cache peek
// acceptance path: node B prepared the content (directly, bypassing the
// router), so a routed request whose ring home is node A must be redirected
// to B by the peek — and B's response shows Step 2 never ran there again (no
// error-matrix span, cache hit).
func TestRouterPeekRedirectSkipsCostMatrix(t *testing.T) {
	a := newBackend(t, service.Config{Workers: 1})
	b := newBackend(t, service.Config{Workers: 1})
	rt, ts := newRouter(t, Config{}, a, b)

	key := routingKeyOf(t, rt, testBody)
	candidates := rt.ring.Candidates(key, 0)
	home, other := candidates[0], candidates[1]

	// Prepare the content on the NON-home node, as if an earlier topology
	// (or a direct client) had built it there.
	resp, err := http.Post(other+"/v1/mosaic", "application/json", strings.NewReader(testBody))
	if err != nil {
		t.Fatalf("direct POST to %s: %v", other, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct prepare: status %d", resp.StatusCode)
	}

	// Routed request: ring home lacks the Prepared, the peek finds it on the
	// other node, and the router redirects.
	rresp, rr := postMosaic(t, ts.URL, testBody)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("routed request: status %d (%s)", rresp.StatusCode, rr.Error)
	}
	if got := rresp.Header.Get("X-Mosaic-Backend"); got != other {
		t.Fatalf("routed to %s, want peek redirect to %s (home %s)", got, other, home)
	}
	if rr.Cache != "hit" {
		t.Fatalf("receiver cache = %q, want hit", rr.Cache)
	}
	if hasSpan(rr.Spans, "error-matrix") {
		t.Fatal("receiver ran the error matrix; the peek redirect should have reused its Prepared")
	}
	if v := scrape(t, ts.URL, "mosaic_router_peek_hits_total"); v != 1 {
		t.Errorf("peek_hits_total = %v, want 1", v)
	}
}

// TestRouterFailover: killing a backend mid-traffic must not surface errors —
// the router retries the ring successor, drops the dead node from the ring,
// and the health probe re-admits it when it returns.
func TestRouterFailover(t *testing.T) {
	a := newBackend(t, service.Config{Workers: 1})
	b := newBackend(t, service.Config{Workers: 1})
	rt, ts := newRouter(t, Config{ProbeInterval: 20 * time.Millisecond}, a, b)

	// Find a body homed on the victim so the kill provably reroutes. Only
	// content (pixels + geometry) feeds the routing key, so vary the size.
	bodyFor := func(node string) string {
		for k := 2; k < 66; k++ {
			body := fmt.Sprintf(`{"input":"lena","target":"gradient","size":%d,"tiles":8}`, 8*k)
			if rt.ring.Pick(routingKeyOf(t, rt, body)) == node {
				return body
			}
		}
		t.Fatalf("no test body hashes to %s", node)
		return ""
	}
	victim, survivor := a, b
	victimBody := bodyFor(a.ts.URL)

	victim.ts.Close() // kill node A: connections refused from here on
	resp, rr := postMosaic(t, ts.URL, victimBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: status %d (%s)", resp.StatusCode, rr.Error)
	}
	if got := resp.Header.Get("X-Mosaic-Backend"); got != survivor.ts.URL {
		t.Fatalf("failover landed on %s, want survivor %s", got, survivor.ts.URL)
	}
	if v := scrape(t, ts.URL, "mosaic_router_failovers_total"); v < 1 {
		t.Errorf("failovers_total = %v, want ≥ 1", v)
	}
	if rt.ring.Has(victim.ts.URL) {
		t.Error("dead backend still in the ring")
	}
	// Subsequent same-key requests go straight to the survivor: the ring
	// rebalanced, no more failover retries accumulate.
	before := scrape(t, ts.URL, "mosaic_router_failovers_total")
	resp2, _ := postMosaic(t, ts.URL, victimBody)
	if got := resp2.Header.Get("X-Mosaic-Backend"); got != survivor.ts.URL {
		t.Fatalf("post-rebalance request landed on %s, want %s", got, survivor.ts.URL)
	}
	if after := scrape(t, ts.URL, "mosaic_router_failovers_total"); after != before {
		t.Errorf("failovers_total grew %v → %v on a rebalanced key", before, after)
	}
}

// TestRouterAsyncJobProxy: a 202 accepted through the router is pollable
// through the router — the job→backend mapping survives until completion.
func TestRouterAsyncJobProxy(t *testing.T) {
	a := newBackend(t, service.Config{Workers: 1})
	b := newBackend(t, service.Config{Workers: 1})
	_, ts := newRouter(t, Config{}, a, b)

	body := `{"input":"lena","target":"gradient","size":64,"tiles":8,"mode":"async"}`
	resp, rr := postMosaic(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d (%s)", resp.StatusCode, rr.Error)
	}
	if rr.JobID == "" {
		t.Fatal("async submit returned no job_id")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		jresp, err := http.Get(ts.URL + "/v1/jobs/" + rr.JobID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		data, _ := io.ReadAll(jresp.Body)
		jresp.Body.Close()
		var st routedResponse
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("poll decode %q: %v", data, err)
		}
		if st.Status == "done" {
			if st.PNGBase64 == "" {
				t.Fatal("done job has no result")
			}
			break
		}
		if st.Status == "failed" || jresp.StatusCode != http.StatusOK {
			t.Fatalf("job failed: %d %q", jresp.StatusCode, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after 10s", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A job the router never accepted is a clean 404, not a misroute.
	nresp, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", nresp.StatusCode)
	}
}

// TestRouterRejects pins the router's own error surface: oversized bodies
// 413 without touching a backend, undecodable bodies 400, no backends 503.
func TestRouterRejects(t *testing.T) {
	a := newBackend(t, service.Config{Workers: 1})
	rt, ts := newRouter(t, Config{}, a)

	big := `{"input":"lena","target":"gradient","size":64,"tiles":8,"mode":"` +
		strings.Repeat("x", service.MaxUploadBytes) + `"}`
	resp, err := http.Post(ts.URL+"/v1/mosaic", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body via router: %d, want 413", resp.StatusCode)
	}

	resp2, rr := postMosaic(t, ts.URL, `{"input":"no-such-scene","target":"gradient"}`)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body via router: %d (%s), want 400", resp2.StatusCode, rr.Error)
	}

	rt.ring.Remove(a.ts.URL)
	resp3, rr3 := postMosaic(t, ts.URL, testBody)
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty ring: %d (%s), want 503", resp3.StatusCode, rr3.Error)
	}
	if ok, _ := rt.Ready(); ok {
		t.Error("router reports ready with an empty ring")
	}
}
