package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// Config sizes a Router. The zero value of any field selects the documented
// default; Backends is the only required field.
type Config struct {
	// Backends are the mosaicd base URLs ("http://host:port"). All start
	// healthy; the router removes a backend from the ring when a forward
	// fails at the transport level and re-adds it when its /healthz answers
	// again.
	Backends []string
	// Replicas is the virtual-node count per backend (default 128).
	Replicas int
	// LoadBound is the bounded-load factor c: a backend whose in-flight
	// count exceeds ceil(c·(total+1)/n) spills the request to its ring
	// successor. Default 1.25; values ≤ 1 disable bounding.
	LoadBound float64
	// NoPeek disables the cross-node cache peek: requests always go to
	// their ring home (or its load/failover successor).
	NoPeek bool
	// NoShed disables deadline-based load shedding. Set it when the
	// backends run with -anytime as their default policy: they will degrade
	// a missed deadline into a partial result themselves, so the router
	// rejecting up front would discard work the backend could still finish.
	NoShed bool
	// ShedMinSamples is how many observed round-trips a backend needs
	// before its latency estimate participates in shedding (default 4).
	// Shedding only fires when EVERY candidate has a warm estimate above
	// the request's remaining budget — one cold backend vetoes the shed.
	ShedMinSamples int
	// MaxImageSide caps the working image side accepted for routing-key
	// decoding (default 1024, matching the backend default).
	MaxImageSide int
	// ProbeInterval paces the health probe that restores dead backends
	// (default 500ms).
	ProbeInterval time.Duration
	// Registry receives the router metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Client issues the proxied requests (default: a dedicated client with
	// no overall timeout — per-request deadlines ride on the incoming
	// request's context).
	Client *http.Client
	// PeekTimeout bounds one HEAD /v1/prepared probe (default 250ms): a
	// slow peer must not stall routing, it just loses the redirect.
	PeekTimeout time.Duration
	// JobsRetain bounds the async job→backend map (default 4096).
	JobsRetain int
}

func (c *Config) applyDefaults() {
	if c.LoadBound == 0 {
		c.LoadBound = 1.25
	}
	if c.MaxImageSide <= 0 {
		c.MaxImageSide = 1024
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.PeekTimeout <= 0 {
		c.PeekTimeout = 250 * time.Millisecond
	}
	if c.JobsRetain <= 0 {
		c.JobsRetain = 4096
	}
	if c.ShedMinSamples <= 0 {
		c.ShedMinSamples = 4
	}
}

// Router consistent-hashes mosaic submissions by content hash onto healthy
// backends, peeks peer caches to reuse prepared work cluster-wide, fails
// over on dead nodes, and proxies async job polls back to the backend that
// owns the job.
type Router struct {
	cfg  Config
	reg  *telemetry.Registry
	ring *Ring

	mu      sync.Mutex
	loads   map[string]int  // in-flight proxied requests per backend
	down    map[string]bool // backends removed from the ring, awaiting probe
	jobs    map[string]string
	jobSeq  []string // FIFO eviction order for jobs
	latency map[string]*latEWMA
	stopped bool
	stop    chan struct{}

	requests  func(backend string) *telemetry.Counter
	peekHits  *telemetry.Counter
	failovers *telemetry.Counter
	sheds     func(reason string) *telemetry.Counter
	rejected  func(reason string) *telemetry.Counter
}

// latEWMA is one backend's observed round-trip latency, exponentially
// smoothed with the same factor the backend's own admission estimator uses.
type latEWMA struct {
	mean float64 // nanoseconds
	n    int64
}

// observeLatency folds one successful round-trip into node's estimate.
func (rt *Router) observeLatency(node string, d time.Duration) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e := rt.latency[node]
	if e == nil {
		e = &latEWMA{}
		rt.latency[node] = e
	}
	if e.n == 0 {
		e.mean = float64(d)
	} else {
		e.mean += 0.2 * (float64(d) - e.mean)
	}
	e.n++
}

// estimateLatency returns node's smoothed round-trip; ok is false until the
// backend has served ShedMinSamples requests through this router.
func (rt *Router) estimateLatency(node string) (time.Duration, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e := rt.latency[node]
	if e == nil || e.n < int64(rt.cfg.ShedMinSamples) {
		return 0, false
	}
	return time.Duration(e.mean), true
}

// New starts a router over cfg.Backends. The health probe goroutine runs
// until Close.
func New(cfg Config) (*Router, error) {
	cfg.applyDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	rt := &Router{
		cfg:   cfg,
		reg:   cfg.Registry,
		ring:  NewRing(cfg.Replicas),
		loads:   make(map[string]int),
		down:    make(map[string]bool),
		jobs:    make(map[string]string),
		latency: make(map[string]*latEWMA),
		stop:    make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		b = strings.TrimRight(b, "/")
		if !strings.Contains(b, "://") {
			return nil, fmt.Errorf("cluster: backend %q is not a base URL", b)
		}
		rt.ring.Add(b)
	}
	rt.registerMetrics()
	go rt.probeLoop()
	return rt, nil
}

func (rt *Router) registerMetrics() {
	reg := rt.reg
	rt.requests = func(backend string) *telemetry.Counter {
		return reg.Counter("mosaic_router_requests_total",
			"Requests proxied to each backend.", telemetry.Labels{"backend": backend})
	}
	rt.peekHits = reg.Counter("mosaic_router_peek_hits_total",
		"Requests redirected to a non-home backend that already held the prepared work.", nil)
	rt.failovers = reg.Counter("mosaic_router_failovers_total",
		"Forwards retried on a ring successor after a backend failed at the transport level.", nil)
	rt.rejected = func(reason string) *telemetry.Counter {
		return reg.Counter("mosaic_router_rejected_total",
			"Requests the router rejected without reaching a backend.", telemetry.Labels{"reason": reason})
	}
	rt.sheds = func(reason string) *telemetry.Counter {
		return reg.Counter("mosaic_router_sheds_total",
			"Requests shed because their deadline was expired or unmeetable on every candidate backend.",
			telemetry.Labels{"reason": reason})
	}
	reg.GaugeFunc("mosaic_router_backends_healthy", "Backends currently in the ring.", nil,
		func() float64 { return float64(rt.ring.Len()) })
	reg.GaugeFunc("mosaic_router_backends", "Backends configured.", nil,
		func() float64 { return float64(len(rt.cfg.Backends)) })
}

// Ready implements the telemetry.WithReadiness check: the router serves as
// long as at least one backend is in the ring.
func (rt *Router) Ready() (bool, string) {
	if rt.ring.Len() == 0 {
		return false, "no healthy backends"
	}
	return true, ""
}

// Registry returns the metrics registry the router reports into.
func (rt *Router) Registry() *telemetry.Registry { return rt.reg }

// Close stops the health probe. In-flight proxies complete on their own.
func (rt *Router) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.stopped {
		return
	}
	rt.stopped = true
	close(rt.stop)
}

// RegisterRoutes mounts the routed API:
//
//	POST /v1/mosaic     route by content hash, peek peers, forward
//	GET  /v1/jobs/{id}  proxy to the backend that accepted the async job
func (rt *Router) RegisterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/v1/mosaic", rt.handleMosaic)
	mux.HandleFunc("/v1/jobs/", rt.handleJob)
}

func (rt *Router) handleMosaic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		routerError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Buffer the body once: the routing key is derived from a decoded clone,
	// and the buffer makes failover retries safe (the original stream would
	// be half-consumed after a broken forward).
	body, err := io.ReadAll(io.LimitReader(r.Body, service.MaxUploadBytes+1))
	if err != nil {
		rt.rejected("read").Inc()
		routerError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	if len(body) > service.MaxUploadBytes {
		rt.rejected("too_large").Inc()
		routerError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit", service.MaxUploadBytes))
		return
	}
	decoded, err := rt.decodeSubmission(r, body)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, service.ErrTooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		rt.rejected("bad_request").Inc()
		routerError(w, code, err.Error())
		return
	}
	key := decoded.ContentKey()

	// Resolve the request's absolute deadline: an X-Request-Deadline header
	// (already absolute — a failover hop must not restart the clock) wins;
	// otherwise derive one from timeout_ms and stamp the header so the
	// backend and any further hop see the same instant.
	deadline := decoded.Deadline
	if deadline.IsZero() && decoded.Timeout > 0 {
		deadline = time.Now().Add(decoded.Timeout)
		r.Header.Set("X-Request-Deadline", strconv.FormatInt(deadline.UnixMilli(), 10))
	}
	// Anytime requests are never shed on deadline grounds: the backend
	// degrades them to a partial mosaic instead of failing, so work remains
	// useful even past the deadline.
	anytime := decoded.Anytime != nil && *decoded.Anytime

	candidates := rt.ring.Candidates(key, 0)
	if len(candidates) == 0 {
		rt.rejected("no_backends").Inc()
		routerError(w, http.StatusServiceUnavailable, "no healthy backends")
		return
	}

	if !rt.cfg.NoShed && !anytime && !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			rt.sheds("expired").Inc()
			routerError(w, http.StatusGatewayTimeout, "deadline already expired at the router")
			return
		}
		if min, ok := rt.minCandidateEstimate(candidates); ok && min > remaining {
			rt.sheds("unmeetable").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(clampSeconds(min-remaining)))
			routerError(w, http.StatusTooManyRequests,
				fmt.Sprintf("deadline unmeetable: every backend estimates %v against a %v budget", min.Round(time.Millisecond), remaining.Round(time.Millisecond)))
			return
		}
	}

	target := rt.placeRequest(r, key, candidates)

	// Forward with failover: the target first, then the remaining ring
	// candidates in order. Only transport-level failures trigger failover —
	// an HTTP error status is the backend's answer and is relayed as-is.
	// Each iteration re-checks the client context and the deadline: replaying
	// a cancelled or expired request against the next backend would burn a
	// worker on an answer nobody can use.
	tried := map[string]bool{}
	for _, node := range append([]string{target}, candidates...) {
		if tried[node] || !rt.ring.Has(node) {
			continue
		}
		if r.Context().Err() != nil {
			rt.rejected("cancelled").Inc()
			routerError(w, 499, "client closed request")
			return
		}
		if !rt.cfg.NoShed && !anytime && !deadline.IsZero() && time.Until(deadline) <= 0 {
			rt.sheds("expired").Inc()
			routerError(w, http.StatusGatewayTimeout, "deadline expired during failover")
			return
		}
		tried[node] = true
		rt.incLoad(node)
		start := time.Now()
		resp, err := rt.forward(node, r, body)
		rt.decLoad(node)
		if err != nil {
			if r.Context().Err() != nil {
				routerError(w, 499, "client closed request")
				return
			}
			rt.markDown(node)
			rt.failovers.Inc()
			continue
		}
		// Only completed sync jobs train the estimate: 202 accepts and
		// rejections return in microseconds and would drag the mean toward
		// zero exactly when shedding should fire.
		if resp.StatusCode == http.StatusOK {
			rt.observeLatency(node, time.Since(start))
		}
		rt.requests(node).Inc()
		rt.relay(w, resp, node)
		return
	}
	rt.rejected("all_failed").Inc()
	routerError(w, http.StatusBadGateway, "every backend failed")
}

// minCandidateEstimate returns the smallest warm latency estimate among
// candidates. ok is false when ANY candidate lacks a warm estimate — a cold
// backend might be fast, so it vetoes shedding.
func (rt *Router) minCandidateEstimate(candidates []string) (time.Duration, bool) {
	var min time.Duration
	for i, node := range candidates {
		est, ok := rt.estimateLatency(node)
		if !ok {
			return 0, false
		}
		if i == 0 || est < min {
			min = est
		}
	}
	return min, len(candidates) > 0
}

// clampSeconds renders a duration as whole seconds in [1, 30] for
// Retry-After headers.
func clampSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	if s > 30 {
		s = 30
	}
	return s
}

// placeRequest picks the backend for a key: the bounded-load home first,
// then — unless the home already holds the prepared work — a peek across the
// other candidates, redirecting to any node with the Prepared resident so
// Step 2 runs at most once cluster-wide per content hash.
func (rt *Router) placeRequest(r *http.Request, key string, candidates []string) string {
	rt.mu.Lock()
	loads := make(map[string]int, len(rt.loads))
	for n, l := range rt.loads {
		loads[n] = l
	}
	rt.mu.Unlock()
	target := pickBounded(candidates, loads, rt.cfg.LoadBound)
	if rt.cfg.NoPeek || rt.peek(r, target, key) {
		return target
	}
	for _, node := range candidates {
		if node == target {
			continue
		}
		if rt.peek(r, node, key) {
			rt.peekHits.Inc()
			return node
		}
	}
	return target
}

// decodeSubmission decodes a clone of the buffered submission exactly as the
// backend will. Its ContentKey is the routing key — the value that makes
// router placement and backend cache keying the same function — and its
// Timeout/Deadline/Anytime fields drive deadline propagation and shedding.
func (rt *Router) decodeSubmission(r *http.Request, body []byte) (*service.Request, error) {
	clone, err := http.NewRequestWithContext(r.Context(), http.MethodPost, r.URL.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	clone.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	if v := r.Header.Get("X-Request-Deadline"); v != "" {
		clone.Header.Set("X-Request-Deadline", v)
	}
	return service.DecodeSubmission(clone, rt.cfg.MaxImageSide)
}

// peek asks one backend whether it holds the prepared work. Any failure is a
// miss: the peek is an optimization and must never block routing.
func (rt *Router) peek(r *http.Request, node, key string) bool {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.PeekTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, node+"/v1/prepared/"+key, nil)
	if err != nil {
		return false
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) forward(node string, r *http.Request, body []byte) (*http.Response, error) {
	url := node + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := r.Header.Get("X-Request-ID"); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	if dl := r.Header.Get("X-Request-Deadline"); dl != "" {
		req.Header.Set("X-Request-Deadline", dl)
	}
	return rt.cfg.Client.Do(req)
}

// relay copies a backend response to the client, stamping the backend that
// answered, and — for async 202 accepts — records which backend owns the
// minted job so later polls route correctly.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, node string) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		routerError(w, http.StatusBadGateway, fmt.Sprintf("backend response: %v", err))
		return
	}
	if resp.StatusCode == http.StatusAccepted {
		var jr struct {
			JobID string `json:"job_id"`
		}
		if json.Unmarshal(data, &jr) == nil && jr.JobID != "" {
			rt.recordJob(jr.JobID, node)
		}
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Mosaic-Backend", node)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(data)
}

func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		routerError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	rt.mu.Lock()
	node, ok := rt.jobs[id]
	rt.mu.Unlock()
	if !ok {
		routerError(w, http.StatusNotFound, "no such job (not accepted through this router, or evicted)")
		return
	}
	resp, err := rt.forward(node, r, nil)
	if err != nil {
		rt.markDown(node)
		routerError(w, http.StatusBadGateway, fmt.Sprintf("backend %s: %v", node, err))
		return
	}
	rt.relay(w, resp, node)
}

func (rt *Router) recordJob(id, node string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.jobs[id]; !dup {
		rt.jobSeq = append(rt.jobSeq, id)
	}
	rt.jobs[id] = node
	for len(rt.jobs) > rt.cfg.JobsRetain && len(rt.jobSeq) > 0 {
		delete(rt.jobs, rt.jobSeq[0])
		rt.jobSeq = rt.jobSeq[1:]
	}
}

func (rt *Router) incLoad(node string) {
	rt.mu.Lock()
	rt.loads[node]++
	rt.mu.Unlock()
}

func (rt *Router) decLoad(node string) {
	rt.mu.Lock()
	if rt.loads[node] > 0 {
		rt.loads[node]--
	}
	rt.mu.Unlock()
}

// markDown removes a backend from the ring (its keys fall to ring
// successors — the rebalance) and queues it for the health probe.
func (rt *Router) markDown(node string) {
	rt.ring.Remove(node)
	rt.mu.Lock()
	rt.down[node] = true
	rt.mu.Unlock()
}

// probeLoop polls down backends' /healthz and re-adds recovered ones, which
// moves their old keys straight back — cache affinity surviving the bounce.
func (rt *Router) probeLoop() {
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.mu.Lock()
			var targets []string
			for n := range rt.down {
				targets = append(targets, n)
			}
			rt.mu.Unlock()
			for _, node := range targets {
				req, err := http.NewRequest(http.MethodGet, node+"/healthz", nil)
				if err != nil {
					continue
				}
				resp, err := rt.cfg.Client.Do(req)
				if err != nil {
					continue
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					rt.mu.Lock()
					delete(rt.down, node)
					rt.mu.Unlock()
					rt.ring.Add(node)
				}
			}
		}
	}
}

func routerError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}{"error", msg})
}
