// Package cluster turns N mosaicd processes into one service: a consistent-
// hash ring routes each submission by its content hash (the same
// core.ContentHash the prepared-work cache is keyed by), so repeated content
// lands on the node that already holds its Prepared; a bounded-load check
// spills hot keys to ring successors instead of melting one node; and a
// cross-node cache peek (HEAD /v1/prepared/{hash}) redirects to any node
// that already prepared the content, skipping Step 2 cluster-wide. The
// Router (router.go) is the HTTP front that cmd/mosaic-router serves.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// defaultReplicas is the virtual-node count per backend. 128 vnodes keep the
// per-node share of the key space within a few percent of 1/N for small N,
// which is what bounds the key movement on join/leave to ~1/N.
const defaultReplicas = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over named nodes with virtual replicas.
// Membership changes move only the keys owned by the affected node (~1/N of
// the space): that is the property that keeps the cluster's prepared-work
// caches warm through join/leave, and the property test in ring_test.go pins
// it. Safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []point
	members  map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-replica count per
// node (≤ 0 selects the default).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]struct{})}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; ok {
		return
	}
	r.members[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash64(fmt.Sprintf("%s\x00%d", node, i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node (idempotent). Keys it owned fall to their ring
// successors; everything else keeps its owner.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[node]
	return ok
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the nodes in unspecified order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	return out
}

// Pick returns the key's home node — the first vnode clockwise from the
// key's hash — or "" on an empty ring.
func (r *Ring) Pick(key string) string {
	c := r.Candidates(key, 1)
	if len(c) == 0 {
		return ""
	}
	return c[0]
}

// Candidates returns up to max distinct nodes in clockwise ring order from
// the key's position: the home node first, then the successors a router
// fails over (or load-spills) to. max ≤ 0 returns every member.
func (r *Ring) Candidates(key string, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.members) {
		max = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]struct{}, max)
	out := make([]string, 0, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// pickBounded applies the bounded-load rule to a candidate list: the first
// node whose in-flight load stays within ceil(c·(total+1)/n) wins, so a hot
// key spills to its ring successor instead of queueing arbitrarily deep on
// its home node — while cold keys never move (their home is under the bound
// by construction). c ≤ 1 disables bounding (pure consistent hashing:
// candidates[0]). An all-full candidate list also returns the home node:
// when everyone is at the bound there is nothing better than affinity.
func pickBounded(candidates []string, load map[string]int, c float64) string {
	if len(candidates) == 0 {
		return ""
	}
	if c <= 1 || len(candidates) == 1 {
		return candidates[0]
	}
	total := 1 // the request being placed
	for _, l := range load {
		total += l
	}
	// ceil(c * total / n) without importing math for a float ceil.
	bound := int((c*float64(total) + float64(len(candidates)) - 1) / float64(len(candidates)))
	if bound < 1 {
		bound = 1
	}
	for _, n := range candidates {
		if load[n] < bound {
			return n
		}
	}
	return candidates[0]
}
