package cluster

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/service"
)

// TestClusterSmoke is the `make cluster-smoke` acceptance harness, gated on
// MOSAIC_CLUSTER_SMOKE=1 because it is timing-based. Four in-process mosaicd
// backends behind a router must deliver ≥3× the aggregate throughput of a
// single identical node on a pinned device-latency-bound workload, with
// every mosaic bit-identical to the single node's; a cross-node cache peek
// must redirect (node B prepared, ring home is node A); and killing a
// backend mid-load must be absorbed by failover with the ring rebalanced.
//
// The workload is made device-bound on purpose: a latency-only FaultPlan
// injects a fixed delay per kernel launch (one fault-checked launch per
// prepare), so the 1-CPU-core CI box still shows real scale-out — the
// injected device time overlaps across backends the way real kernels would,
// while the host CPU work stays a small fraction.
func TestClusterSmoke(t *testing.T) {
	if os.Getenv("MOSAIC_CLUSTER_SMOKE") == "" {
		t.Skip("set MOSAIC_CLUSTER_SMOKE=1 to run the cluster scale-out gate")
	}
	const (
		launchDelay = 250 * time.Millisecond
		tiles       = 8
		window      = 8 // concurrent client requests in flight
		backends    = 4
	)
	scenes := []string{"lena", "sailboat", "airplane", "peppers", "barbara", "baboon", "tiffany", "plasma"}
	sizes := []int{64, 96, 128, 160}
	var bodies []string
	for _, sc := range scenes {
		for _, size := range sizes {
			bodies = append(bodies, fmt.Sprintf(`{"input":%q,"target":"gradient","size":%d,"tiles":%d}`, sc, size, tiles))
		}
	}
	backendCfg := func() service.Config {
		return service.Config{
			Workers: 2, Devices: 1,
			DeviceFaults: func(int) cuda.FaultInjector {
				return &cuda.FaultPlan{Delay: launchDelay}
			},
		}
	}

	// Phase 1 — single-node baseline: same workload, same backend config,
	// one node. Records the reference hash for every body.
	single := newBackend(t, backendCfg())
	refHash := make([]string, len(bodies))
	t0 := time.Now()
	runWave(t, single.ts.URL, bodies, window, func(i int, res waveResult) {
		refHash[i] = res.hash
	})
	singleWall := time.Since(t0)

	// Phase 2 — the cluster: 4 fresh backends behind the router. A tight
	// load bound makes the all-miss burst spread by load, not just by hash.
	nodes := make([]*backend, backends)
	for i := range nodes {
		nodes[i] = newBackend(t, backendCfg())
	}
	rt, ts := newRouter(t, Config{LoadBound: 1.05}, nodes...)
	served := make(map[string]int)
	var servedMu sync.Mutex
	t1 := time.Now()
	runWave(t, ts.URL, bodies, window, func(i int, res waveResult) {
		if res.hash != refHash[i] {
			t.Errorf("body %d: cluster mosaic differs from the single-node reference", i)
		}
		servedMu.Lock()
		served[res.backend]++
		servedMu.Unlock()
	})
	clusterWall := time.Since(t1)

	ratio := float64(singleWall) / float64(clusterWall)
	t.Logf("throughput: single node %v, %d-backend cluster %v → %.2fx", singleWall.Round(time.Millisecond), backends, clusterWall.Round(time.Millisecond), ratio)
	if ratio < 3.0 {
		t.Errorf("aggregate speedup %.2fx with %d backends, want ≥ 3x", ratio, backends)
	}
	if len(served) != backends {
		t.Errorf("only %d of %d backends served traffic: %v", len(served), backends, served)
	}

	// Phase 3 — cross-node cache peek: prepare a fresh content hash directly
	// on a NON-home node, then route it. The router's peek must redirect to
	// the node holding the Prepared, and that node must not rerun Step 2.
	peekBody := fmt.Sprintf(`{"input":"sailboat","target":"plasma","size":64,"tiles":%d}`, tiles)
	candidates := rt.ring.Candidates(routingKeyOf(t, rt, peekBody), 0)
	home, other := candidates[0], candidates[1]
	peekHitsBefore := scrape(t, ts.URL, "mosaic_router_peek_hits_total")
	direct, err := http.Post(other+"/v1/mosaic", "application/json", strings.NewReader(peekBody))
	if err != nil {
		t.Fatalf("direct prepare on %s: %v", other, err)
	}
	io.Copy(io.Discard, direct.Body)
	direct.Body.Close()
	resp, rr := postMosaic(t, ts.URL, peekBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peek-phase request: status %d (%s)", resp.StatusCode, rr.Error)
	}
	if got := resp.Header.Get("X-Mosaic-Backend"); got != other {
		t.Errorf("peek-phase request landed on %s, want redirect to %s (home %s)", got, other, home)
	}
	if rr.Cache != "hit" || hasSpan(rr.Spans, "error-matrix") {
		t.Errorf("peek receiver reran Step 2 (cache=%q, spans=%v)", rr.Cache, rr.Spans)
	}
	if after := scrape(t, ts.URL, "mosaic_router_peek_hits_total"); after <= peekHitsBefore {
		t.Errorf("peek_hits_total did not grow (%v → %v)", peekHitsBefore, after)
	}

	// Phase 4 — kill one backend mid-load. Every request must still answer
	// 200 with the reference hash (failover retries on the ring successor),
	// and afterwards the dead node is out of the ring while a key it owned
	// provably reroutes.
	victim := nodes[1]
	victimBody := -1
	for i, b := range bodies {
		if rt.ring.Pick(routingKeyOf(t, rt, b)) == victim.ts.URL {
			victimBody = i
			break
		}
	}
	var killOnce sync.Once
	var done int
	var doneMu sync.Mutex
	t2 := time.Now()
	runWave(t, ts.URL, bodies, window, func(i int, res waveResult) {
		if res.hash != refHash[i] {
			t.Errorf("body %d: post-kill mosaic differs from the single-node reference", i)
		}
		doneMu.Lock()
		done++
		trigger := done == len(bodies)/4
		doneMu.Unlock()
		if trigger {
			killOnce.Do(func() {
				victim.ts.CloseClientConnections()
				victim.ts.Close()
			})
		}
	})
	killOnce.Do(func() { // tiny waves could finish before the trigger
		victim.ts.CloseClientConnections()
		victim.ts.Close()
	})
	t.Logf("kill-one wave: %v", time.Since(t2).Round(time.Millisecond))

	if victimBody >= 0 {
		resp2, rr2 := postMosaic(t, ts.URL, bodies[victimBody])
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("victim-homed request after kill: status %d (%s)", resp2.StatusCode, rr2.Error)
		}
		if got := resp2.Header.Get("X-Mosaic-Backend"); got == victim.ts.URL {
			t.Error("request routed to the killed backend")
		}
	}
	if rt.ring.Has(victim.ts.URL) {
		t.Error("killed backend still in the ring")
	}
	if rt.ring.Len() != backends-1 {
		t.Errorf("ring has %d members after the kill, want %d", rt.ring.Len(), backends-1)
	}
	if v := scrape(t, ts.URL, "mosaic_router_failovers_total"); v < 1 {
		t.Errorf("failovers_total = %v after the kill, want ≥ 1", v)
	}
}

type waveResult struct {
	hash    string
	backend string
}

// runWave posts every body through url with `window` client goroutines and
// calls each body's callback with the PNG hash and serving backend. Any
// non-200 fails the test.
func runWave(t *testing.T, url string, bodies []string, window int, each func(int, waveResult)) {
	t.Helper()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < window; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				resp, err := http.Post(url+"/v1/mosaic", "application/json", strings.NewReader(bodies[i]))
				if err != nil {
					t.Errorf("body %d: POST: %v", i, err)
					continue
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("body %d: read: %v", i, err)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("body %d: status %d: %s", i, resp.StatusCode, data)
					continue
				}
				var rr routedResponse
				if err := json.Unmarshal(data, &rr); err != nil {
					t.Errorf("body %d: decode: %v", i, err)
					continue
				}
				png, err := base64.StdEncoding.DecodeString(rr.PNGBase64)
				if err != nil || len(png) == 0 {
					t.Errorf("body %d: bad png payload (%v)", i, err)
					continue
				}
				each(i, waveResult{
					hash:    fmt.Sprintf("%x", sha256.Sum256(png)),
					backend: resp.Header.Get("X-Mosaic-Backend"),
				})
			}
		}()
	}
	for i := range bodies {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
