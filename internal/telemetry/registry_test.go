package telemetry

import (
	"strings"
	"testing"

	"repro/internal/cuda"
)

func TestCounterGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("mosaic_ops_total", "Ops.", nil)
	a.Inc()
	a.Add(2)
	b := reg.Counter("mosaic_ops_total", "Ops.", nil)
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if got := b.Value(); got != 3 {
		t.Fatalf("counter value = %v, want 3", got)
	}
	labelled := reg.Counter("mosaic_ops_total", "Ops.", Labels{"stage": "x"})
	if labelled == a {
		t.Fatal("distinct labels returned the same series")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	g := NewRegistry().Gauge("mosaic_depth", "Depth.", nil)
	g.Set(4)
	g.Inc()
	g.Dec()
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value = %v, want 2.5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewRegistry().Histogram("mosaic_latency_seconds", "Latency.", nil, []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 4} {
		h.Observe(v)
	}
	s := h.snapshot()
	// Bucket bounds are inclusive (Prometheus le semantics): 0.1 lands in
	// the first bucket.
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want [2 1 1]", s.Counts)
	}
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mosaic_ops_total", "Ops.", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	reg.Gauge("mosaic_ops_total", "Ops.", nil)
}

func TestNegativeCounterAddPanics(t *testing.T) {
	c := NewRegistry().Counter("mosaic_ops_total", "Ops.", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Counter.Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("mosaic ops", "Ops.", nil)
}

func TestFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	v := 7.0
	reg.GaugeFunc("mosaic_workers", "Workers.", nil, func() float64 { return v })
	reg.CounterFunc("mosaic_launches_total", "Launches.", nil, func() float64 { return 2 * v })
	snap := reg.Snapshot()
	if snap.Gauges["mosaic_workers"] != 7 || snap.Counters["mosaic_launches_total"] != 14 {
		t.Fatalf("func metrics snapshot = %+v", snap)
	}
	v = 8
	if got := reg.Snapshot().Gauges["mosaic_workers"]; got != 8 {
		t.Fatalf("GaugeFunc not re-read at exposition: got %v", got)
	}
}

func TestFuncOverPlainPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("mosaic_depth", "Depth.", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("GaugeFunc over a plain gauge did not panic")
		}
	}()
	reg.GaugeFunc("mosaic_depth", "Depth.", nil, func() float64 { return 0 })
}

// TestRegistryConcurrentFromKernelWorkers updates and scrapes one registry
// from the virtual device's worker goroutines — the exact concurrency shape
// of an instrumented parallel run being scraped by -serve. Run under -race
// (make race does) this is the registry's data-race proof.
func TestRegistryConcurrentFromKernelWorkers(t *testing.T) {
	reg := NewRegistry()
	dev := cuda.New(4)
	RegisterDevice(reg, dev, nil)
	ctr := reg.Counter("mosaic_test_ops_total", "Ops.", nil)
	gauge := reg.Gauge("mosaic_test_depth", "Depth.", nil)
	hist := reg.Histogram("mosaic_test_latency_seconds", "Latency.", nil, []float64{0.001, 0.01, 0.1})

	done := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-done:
				return
			default:
			}
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			reg.Snapshot()
		}
	}()

	const blocks = 256
	dev.Launch(blocks, 1, func(b *cuda.Block) {
		ctr.Inc()
		gauge.Set(float64(b.Idx))
		hist.Observe(float64(b.Idx) / float64(blocks))
		// Get-or-create from worker goroutines must be safe too.
		reg.Counter("mosaic_test_ops_total", "Ops.", nil).Inc()
	})
	close(done)
	<-scraped

	if got := ctr.Value(); got != 2*blocks {
		t.Fatalf("counter = %v, want %d", got, 2*blocks)
	}
	if got := hist.snapshot().Count; got != blocks {
		t.Fatalf("histogram count = %d, want %d", got, blocks)
	}
}
