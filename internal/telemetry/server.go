package telemetry

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// MetricScrapeFailures counts exposition responses that failed mid-write
// (a scraper that disconnected, a broken pipe). Silently discarding those
// errors hides a flapping scrape path; counting them in the registry being
// scraped makes the next successful scrape report the gap. The endpoint
// label names the handler that failed.
const MetricScrapeFailures = "mosaic_scrape_failures_total"

// MuxOption configures NewMux.
type MuxOption func(*muxConfig)

type muxConfig struct {
	pprof bool
	ready func() (bool, string)
}

// WithPProf mounts the net/http/pprof handlers under /debug/pprof/. They
// expose process internals — command line, heap contents, CPU profiles — so
// they are off by default; enable them only on loopback binds or behind
// authentication. StartServer with a nil mux applies IsLoopback for you.
func WithPProf() MuxOption {
	return func(c *muxConfig) { c.pprof = true }
}

// WithReadiness mounts /readyz backed by check: 200 "ok" while check reports
// ready, 503 with the reason otherwise. A serving layer flips its check
// during startup and drain so load balancers stop routing to a dying
// instance while /healthz (pure liveness) stays 200.
func WithReadiness(check func() (ready bool, reason string)) MuxOption {
	return func(c *muxConfig) { c.ready = check }
}

// NewMux returns the debug mux behind the CLIs' -serve flag:
//
//	/metrics       Prometheus text exposition of reg
//	/metrics.json  JSON snapshot of reg
//	/healthz       200 "ok" liveness probe
//	/readyz        readiness probe (200 unless a WithReadiness check says no)
//	/debug/pprof/  the standard net/http/pprof handlers — only WithPProf
//
// Callers may register additional handlers (the CLIs add /convergence.json
// when a recorder is live; mosaicd adds the /v1 job API).
func NewMux(reg *Registry, opts ...MuxOption) *http.ServeMux {
	var cfg muxConfig
	for _, o := range opts {
		o(&cfg)
	}
	scrapeFailed := func(endpoint string) *Counter {
		return reg.Counter(MetricScrapeFailures,
			"Exposition responses that failed mid-write.", Labels{"endpoint": endpoint})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			scrapeFailed("metrics").Inc()
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			scrapeFailed("metrics.json").Inc()
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			scrapeFailed("healthz").Inc()
		}
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		body := "ok\n"
		if cfg.ready != nil {
			if ok, reason := cfg.ready(); !ok {
				if reason == "" {
					reason = "not ready"
				}
				w.WriteHeader(http.StatusServiceUnavailable)
				body = reason + "\n"
			}
		}
		if _, err := io.WriteString(w, body); err != nil {
			scrapeFailed("readyz").Inc()
		}
	})
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// IsLoopback reports whether addr ("host:port", "host" or ":port") binds a
// loopback interface. An empty host binds every interface and is therefore
// not loopback — the case the pprof default protects against.
func IsLoopback(addr string) bool {
	host := addr
	if h, _, err := net.SplitHostPort(addr); err == nil {
		host = h
	}
	if host == "" {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// Server is a running debug endpoint. Construct with StartServer; Close
// shuts it down.
type Server struct {
	// Addr is the bound address ("127.0.0.1:9190"); with a ":0" request it
	// carries the kernel-chosen port.
	Addr string
	srv  *http.Server
	done chan error
	once sync.Once
	err  error
}

// StartServer binds addr, serves mux in a background goroutine, and returns
// immediately — the CLIs call it before a long run so /metrics (and, on
// loopback binds, /debug/pprof) are live while the pipeline executes. A nil
// mux selects NewMux(reg) with pprof mounted only when addr is loopback, so
// a `-serve 0.0.0.0:…` bind never exposes profiling by accident. The
// returned Server must be Closed.
func StartServer(addr string, reg *Registry, mux http.Handler) (*Server, error) {
	if mux == nil {
		var opts []MuxOption
		if IsLoopback(addr) {
			opts = append(opts, WithPProf())
		}
		mux = NewMux(reg, opts...)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan error, 1),
	}
	go func() { s.done <- s.srv.Serve(ln) }()
	return s, nil
}

// Close gracefully shuts the server down (bounded by a short deadline so a
// finishing CLI never hangs on a stuck scrape). Idempotent: repeated calls —
// an explicit Close racing a deferred one — return the first call's result.
func (s *Server) Close() error {
	s.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		<-s.done // Serve has returned; its http.ErrServerClosed is expected
		if err != nil {
			s.err = fmt.Errorf("telemetry: shutdown: %w", err)
		}
	})
	return s.err
}
