package telemetry

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// NewMux returns the debug mux behind the CLIs' -serve flag:
//
//	/metrics       Prometheus text exposition of reg
//	/metrics.json  JSON snapshot of reg
//	/healthz       200 "ok" liveness probe
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Callers may register additional handlers (the CLIs add /convergence.json
// when a recorder is live).
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug endpoint. Construct with StartServer; Close
// shuts it down.
type Server struct {
	// Addr is the bound address ("127.0.0.1:9190"); with a ":0" request it
	// carries the kernel-chosen port.
	Addr string
	srv  *http.Server
	done chan error
	once sync.Once
	err  error
}

// StartServer binds addr, serves mux (nil selects NewMux(reg)) in a
// background goroutine, and returns immediately — the CLIs call it before a
// long run so /metrics and /debug/pprof are live while the pipeline
// executes. The returned Server must be Closed.
func StartServer(addr string, reg *Registry, mux http.Handler) (*Server, error) {
	if mux == nil {
		mux = NewMux(reg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan error, 1),
	}
	go func() { s.done <- s.srv.Serve(ln) }()
	return s, nil
}

// Close gracefully shuts the server down (bounded by a short deadline so a
// finishing CLI never hangs on a stuck scrape). Idempotent: repeated calls —
// an explicit Close racing a deferred one — return the first call's result.
func (s *Server) Close() error {
	s.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		<-s.done // Serve has returned; its http.ErrServerClosed is expected
		if err != nil {
			s.err = fmt.Errorf("telemetry: shutdown: %w", err)
		}
	})
	return s.err
}
