package telemetry

import (
	"strings"
	"testing"
)

// TestObserveExemplarBucketPlacement: exemplars land in the bucket that
// counted the sample, newest wins, and labels are copied (caller mutation
// after the call must not leak in).
func TestObserveExemplarBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ns", "", nil, []float64{10, 100, 1000})
	h.nowUnix = func() float64 { return 42 }

	labels := Labels{"request_id": "aaa"}
	h.ObserveExemplar(5, labels)
	labels["request_id"] = "mutated"
	h.ObserveExemplar(50, Labels{"request_id": "bbb"})
	h.ObserveExemplar(60, Labels{"request_id": "ccc"}) // same bucket: newest wins
	h.ObserveExemplar(1e9, Labels{"request_id": "inf"})

	snap := h.snapshot()
	if snap.Count != 4 || snap.Sum != 5+50+60+1e9 {
		t.Fatalf("count=%d sum=%v, want 4 / %v", snap.Count, snap.Sum, 5+50+60+1e9)
	}
	if len(snap.Exemplars) != 3 {
		t.Fatalf("got %d exemplars, want 3: %+v", len(snap.Exemplars), snap.Exemplars)
	}
	byBucket := map[int]*Exemplar{}
	for _, e := range snap.Exemplars {
		byBucket[e.Bucket] = e
	}
	if e := byBucket[0]; e == nil || e.Value != 5 || e.Labels["request_id"] != "aaa" || e.Unix != 42 {
		t.Errorf("bucket 0 exemplar = %+v, want value 5 id aaa ts 42", e)
	}
	if e := byBucket[1]; e == nil || e.Value != 60 || e.Labels["request_id"] != "ccc" {
		t.Errorf("bucket 1 exemplar = %+v, want newest (value 60, id ccc)", e)
	}
	if e := byBucket[3]; e == nil || e.Value != 1e9 || e.Labels["request_id"] != "inf" {
		t.Errorf("+Inf bucket exemplar = %+v, want value 1e9 id inf", e)
	}
}

// TestObserveExemplarEmptyLabels: no labels means no exemplar — the sample
// still counts.
func TestObserveExemplarEmptyLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", nil, []float64{1})
	h.ObserveExemplar(0.5, nil)
	snap := h.snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d, want 1", snap.Count)
	}
	if len(snap.Exemplars) != 0 {
		t.Fatalf("unlabelled observation produced exemplars: %+v", snap.Exemplars)
	}
}

// TestPrometheusExemplarRendering: bucket lines with a retained exemplar get
// the OpenMetrics suffix; buckets without stay plain, as do _sum/_count.
func TestPrometheusExemplarRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_phase_ns", "phase time", Labels{"phase": "queue_wait"}, []float64{100, 1000})
	h.nowUnix = func() float64 { return 1700000000.5 }
	h.Observe(50)
	h.ObserveExemplar(500, Labels{"request_id": "9f3a61cc52d04b17"})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		`req_phase_ns_bucket{phase="queue_wait",le="100"} 1`,
		`req_phase_ns_bucket{phase="queue_wait",le="1000"} 2 # {request_id="9f3a61cc52d04b17"} 500 1700000000.5`,
		`req_phase_ns_bucket{phase="queue_wait",le="+Inf"} 2`,
		`req_phase_ns_sum{phase="queue_wait"} 550`,
		`req_phase_ns_count{phase="queue_wait"} 2`,
	}
	for _, line := range wantLines {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q:\n%s", line, out)
		}
	}
}

// TestPrometheusNoExemplarUnchanged: a histogram that never saw
// ObserveExemplar renders without any " # " suffix anywhere.
func TestPrometheusNoExemplarUnchanged(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("plain", "", nil, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, " # ") {
			t.Fatalf("plain histogram rendered an exemplar: %q", line)
		}
	}
}

// TestSnapshotJSONExemplars: the JSON snapshot carries exemplars through.
func TestSnapshotJSONExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", nil, []float64{1})
	h.nowUnix = func() float64 { return 7 }
	h.ObserveExemplar(0.5, Labels{"request_id": "x"})
	snap := r.Snapshot()
	hs, ok := snap.Histograms["h"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if len(hs.Exemplars) != 1 || hs.Exemplars[0].Labels["request_id"] != "x" || hs.Exemplars[0].Unix != 7 {
		t.Fatalf("snapshot exemplars = %+v", hs.Exemplars)
	}
}
