package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mosaic_ops_total", "Ops.", nil).Inc()
	srv, err := StartServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr
	client := &http.Client{Timeout: 5 * time.Second}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz body = %q", body)
	}
	_ = ctype

	body, ctype = get("/metrics")
	if !strings.Contains(body, "mosaic_ops_total 1") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(body, `"mosaic_ops_total": 1`) {
		t.Fatalf("/metrics.json missing series:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json content type = %q", ctype)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline returned an empty body")
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// TestPProfGating: NewMux without WithPProf must not mount /debug/pprof/*
// (the default for non-loopback binds); WithPProf mounts it.
func TestPProfGating(t *testing.T) {
	reg := NewRegistry()
	for _, tc := range []struct {
		name string
		mux  *http.ServeMux
		want int
	}{
		{"default-off", NewMux(reg), http.StatusNotFound},
		{"opt-in", NewMux(reg, WithPProf()), http.StatusOK},
	} {
		rec := httptest.NewRecorder()
		tc.mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
		if rec.Code != tc.want {
			t.Errorf("%s: /debug/pprof/cmdline = %d, want %d", tc.name, rec.Code, tc.want)
		}
	}
}

func TestIsLoopback(t *testing.T) {
	for addr, want := range map[string]bool{
		"127.0.0.1:9190": true,
		"localhost:9190": true,
		"[::1]:9190":     true,
		"0.0.0.0:9190":   false,
		":9190":          false,
		"10.1.2.3:80":    false,
		"example.com:80": false,
	} {
		if got := IsLoopback(addr); got != want {
			t.Errorf("IsLoopback(%q) = %v, want %v", addr, got, want)
		}
	}
}

// TestReadiness: /readyz follows the WithReadiness check while /healthz
// stays a pure liveness 200.
func TestReadiness(t *testing.T) {
	reg := NewRegistry()
	var ready atomic.Bool
	ready.Store(true)
	mux := NewMux(reg, WithReadiness(func() (bool, string) {
		if ready.Load() {
			return true, ""
		}
		return false, "draining"
	}))
	probe := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, strings.TrimSpace(rec.Body.String())
	}
	if code, body := probe("/readyz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("/readyz ready = %d %q", code, body)
	}
	ready.Store(false)
	if code, body := probe("/readyz"); code != http.StatusServiceUnavailable || body != "draining" {
		t.Fatalf("/readyz draining = %d %q", code, body)
	}
	if code, _ := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", code)
	}
}

// failAfterWriter errors every write after the first n bytes, standing in
// for a scraper that disconnected mid-response.
type failAfterWriter struct {
	httptest.ResponseRecorder
	budget int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > w.budget {
		n = w.budget
		w.budget = 0
		return n, io.ErrClosedPipe
	}
	w.budget -= n
	return n, nil
}

// WriteString shadows ResponseRecorder's, which would bypass the failing
// Write above.
func (w *failAfterWriter) WriteString(s string) (int, error) { return w.Write([]byte(s)) }

// TestScrapeFailureCounted: a mid-write exposition error increments
// mosaic_scrape_failures_total instead of being dropped.
func TestScrapeFailureCounted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mosaic_ops_total", "Ops.", nil).Inc()
	mux := NewMux(reg)
	for _, endpoint := range []string{"metrics", "metrics.json"} {
		w := &failAfterWriter{budget: 3}
		mux.ServeHTTP(w, httptest.NewRequest("GET", "/"+endpoint, nil))
		key := MetricScrapeFailures + `{endpoint="` + endpoint + `"}`
		if got := reg.Snapshot().Counters[key]; got != 1 {
			t.Errorf("%s = %v, want 1", key, got)
		}
	}
	// A clean scrape must not count.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := reg.Snapshot().Counters[MetricScrapeFailures+`{endpoint="metrics"}`]; got != 1 {
		t.Errorf("clean scrape moved the failure counter to %v", got)
	}
}
