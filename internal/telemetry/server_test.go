package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mosaic_ops_total", "Ops.", nil).Inc()
	srv, err := StartServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr
	client := &http.Client{Timeout: 5 * time.Second}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz body = %q", body)
	}
	_ = ctype

	body, ctype = get("/metrics")
	if !strings.Contains(body, "mosaic_ops_total 1") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(body, `"mosaic_ops_total": 1`) {
		t.Fatalf("/metrics.json missing series:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json content type = %q", ctype)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline returned an empty body")
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}
