package telemetry

import (
	"repro/internal/cuda"
)

// RegisterDevice exposes a virtual device's execution state on reg:
// monotonic launch/block/launch-time totals (read live from the device, so
// they move while a kernel is running, unlike the per-run trace deltas) and
// the occupancy gauges — blocks in flight, busy workers, pool utilisation —
// that a profiler-style dashboard plots. The label set distinguishes
// devices when several are registered.
func RegisterDevice(reg *Registry, dev *cuda.Device, labels Labels) {
	reg.CounterFunc("mosaic_cuda_launches_total",
		"Kernel launches executed by the virtual device.", labels,
		func() float64 { return float64(dev.Metrics().Launches) })
	reg.CounterFunc("mosaic_cuda_blocks_total",
		"Thread blocks executed by the virtual device.", labels,
		func() float64 { return float64(dev.Metrics().Blocks) })
	reg.CounterFunc("mosaic_cuda_launch_seconds_total",
		"Total wall time spent inside synchronous kernel launches.", labels,
		func() float64 { return float64(dev.Metrics().LaunchNanos) / 1e9 })
	reg.GaugeFunc("mosaic_cuda_blocks_in_flight",
		"Thread blocks executing right now.", labels,
		func() float64 { return float64(dev.Occupancy().BlocksInFlight) })
	reg.GaugeFunc("mosaic_cuda_busy_workers",
		"Device pool workers currently running a block.", labels,
		func() float64 { return float64(dev.Occupancy().BusyWorkers) })
	reg.GaugeFunc("mosaic_cuda_workers",
		"Device worker-pool size.", labels,
		func() float64 { return float64(dev.Workers()) })
	reg.GaugeFunc("mosaic_cuda_utilisation",
		"Busy workers over pool size, 0 to 1.", labels,
		func() float64 { return dev.Occupancy().Utilisation() })
	reg.CounterFunc("mosaic_cuda_faults_injected_total",
		"Launches failed by the device's fault injector.", labels,
		func() float64 { return float64(dev.FaultsInjected()) })
	reg.GaugeFunc("mosaic_cuda_lost",
		"1 while the device is in the sticky lost state, else 0.", labels,
		func() float64 {
			if dev.Lost() {
				return 1
			}
			return 0
		})
}
