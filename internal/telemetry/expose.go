package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/trace"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per family followed by
// its series in registration order, histograms expanded into cumulative
// _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.familiesSnapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			if f.kind == kindHistogram {
				err = writePromHistogram(w, f.name, s.labels, s.hist.snapshot())
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.value()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram expands one histogram series into the cumulative bucket
// form Prometheus expects. Buckets that retain an exemplar append it in the
// OpenMetrics form (` # {labels} value timestamp`); histograms without
// exemplars render byte-identically to before exemplar support existed.
func writePromHistogram(w io.Writer, name, labels string, h HistogramSnapshot) error {
	byBucket := make(map[int]*Exemplar, len(h.Exemplars))
	for _, e := range h.Exemplars {
		byBucket[e.Bucket] = e
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if err := writeBucket(w, name, labels, formatFloat(bound), cum, byBucket[i]); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Counts)-1]
	if err := writeBucket(w, name, labels, "+Inf", cum, byBucket[len(h.Counts)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count)
	return err
}

// writeBucket writes one le-labelled bucket line, splicing le into any
// existing label set and appending the bucket's exemplar when one exists.
func writeBucket(w io.Writer, name, labels, le string, cum uint64, ex *Exemplar) error {
	merged := fmt.Sprintf("{le=%q}", le)
	if labels != "" {
		merged = labels[:len(labels)-1] + fmt.Sprintf(",le=%q}", le)
	}
	if ex == nil {
		_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, merged, cum)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d # %s %s %s\n",
		name, merged, cum, renderLabels(ex.Labels), formatFloat(ex.Value),
		strconv.FormatFloat(ex.Unix, 'f', -1, 64))
	return err
}

// formatFloat renders a sample value the way Prometheus does: shortest
// round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON form of a registry: flat maps keyed by
// name{label="value",...} (the key equals the Prometheus series identity).
type Snapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every series' current value.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{}
	for _, f := range r.familiesSnapshot() {
		for _, s := range f.series {
			key := f.name + s.labels
			switch f.kind {
			case kindCounter:
				if snap.Counters == nil {
					snap.Counters = map[string]float64{}
				}
				snap.Counters[key] = s.value()
			case kindGauge:
				if snap.Gauges == nil {
					snap.Gauges = map[string]float64{}
				}
				snap.Gauges[key] = s.value()
			case kindHistogram:
				if snap.Histograms == nil {
					snap.Histograms = map[string]HistogramSnapshot{}
				}
				snap.Histograms[key] = s.hist.snapshot()
			}
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON — the /metrics.json payload.
func (r *Registry) WriteJSON(w io.Writer) error {
	return writeIndented(w, r.Snapshot())
}

// Dump is the single observability document the CLIs emit for the
// -trace/-metrics flags: the span tree (when traced), the trace counter
// totals, the registry snapshot (when a registry is live) and the
// convergence samples (when recorded), in one JSON object. All durations in
// the document are nanoseconds, marked by _ns field names; registry
// histograms are in seconds, as their metric names state.
type Dump struct {
	Spans       []*trace.Node       `json:"spans,omitempty"`
	Counters    map[string]int64    `json:"counters,omitempty"`
	Registry    *Snapshot           `json:"registry,omitempty"`
	Convergence []ConvergenceSample `json:"convergence,omitempty"`
}

// WriteDump serialises d as indented JSON.
func WriteDump(w io.Writer, d Dump) error {
	return writeIndented(w, d)
}

// writeIndented marshals v with indentation and a trailing newline.
func writeIndented(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}
