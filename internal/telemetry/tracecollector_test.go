package telemetry

import (
	"testing"

	"repro/internal/trace"
)

func TestTraceCollectorFoldsSpansIntoRegistry(t *testing.T) {
	reg := NewRegistry()
	c := NewTraceCollector(reg)
	sp := c.StartSpan(trace.SpanCostMatrix)
	sp.End()
	c.StartSpan(trace.SpanCostMatrix).End()

	snap := reg.Snapshot()
	key := MetricStageStarted + `{stage="` + trace.SpanCostMatrix + `"}`
	if snap.Counters[key] != 2 {
		t.Fatalf("stage-started counter = %v, want 2 (%+v)", snap.Counters[key], snap.Counters)
	}
	hs := snap.Histograms[MetricStageDuration+`{stage="`+trace.SpanCostMatrix+`"}`]
	if hs.Count != 2 {
		t.Fatalf("duration histogram count = %d, want 2", hs.Count)
	}
	if hs.Sum < 0 {
		t.Fatalf("duration histogram sum = %v, want >= 0", hs.Sum)
	}
}

func TestTraceCollectorRewritesCounterNames(t *testing.T) {
	reg := NewRegistry()
	c := NewTraceCollector(reg)
	c.Count(trace.CounterSweepRounds, 3)
	c.Count(trace.CounterSweepRounds, 2)
	c.Count(trace.CounterKernelLaunches, 1)

	snap := reg.Snapshot()
	if got := snap.Counters["mosaic_search_sweep_rounds_total"]; got != 5 {
		t.Fatalf("sweep rounds = %v, want 5 (%+v)", got, snap.Counters)
	}
	if got := snap.Counters["mosaic_cuda_kernel_launches_total"]; got != 1 {
		t.Fatalf("kernel launches = %v, want 1 (%+v)", got, snap.Counters)
	}
}

// TestTraceCollectorAsMultiMember checks the intended wiring: a Tree and a
// TraceCollector behind one trace.Multi see the same events.
func TestTraceCollectorAsMultiMember(t *testing.T) {
	reg := NewRegistry()
	tree := trace.NewTree()
	tr := trace.Multi(tree, NewTraceCollector(reg))
	sp := tr.StartSpan(trace.SpanPipeline)
	tr.Count(trace.CounterSweepRounds, 4)
	sp.End()

	if got := tree.Counters()[trace.CounterSweepRounds]; got != 4 {
		t.Fatalf("tree counter = %d, want 4", got)
	}
	if got := reg.Snapshot().Counters["mosaic_search_sweep_rounds_total"]; got != 4 {
		t.Fatalf("registry counter = %v, want 4", got)
	}
}
