package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ConvergenceSample is one point on a cost-vs-work curve: the Eq. (2) total
// error after a unit of search work. Round counts local-search sweeps or
// annealing cooling epochs; Swaps is the cumulative applied-swap count;
// Temperature is the annealing temperature at the sample (0 for the plain
// local search); ElapsedNS is the monotonic offset from the recorder's
// creation.
type ConvergenceSample struct {
	Round       int     `json:"round"`
	Cost        int64   `json:"cost"`
	Swaps       int64   `json:"swaps"`
	Temperature float64 `json:"temperature,omitempty"`
	ElapsedNS   int64   `json:"elapsed_ns"`
}

// ConvergenceRecorder samples local-search cost per unit of work — the
// paper-style convergence curve (He/Zhou/Yuen evaluate photomosaic search
// exactly this way). Its Sweep method matches localsearch.Progress and its
// Anneal method matches localsearch.AnnealProgress, so wiring is
//
//	opts.Search.Progress = rec.Sweep
//	opts.Anneal.Progress = rec.Anneal
//
// Safe for concurrent use; Snapshot is coherent at any moment, including
// after a context abort mid-search — samples are appended atomically, so a
// cancelled run simply yields the prefix recorded so far.
type ConvergenceRecorder struct {
	mu      sync.Mutex
	epoch   time.Time
	samples []ConvergenceSample
	gauge   *Gauge // optional live cost gauge
}

// NewConvergenceRecorder returns an empty recorder. reg may be nil; when
// set, the recorder also maintains the mosaic_search_cost gauge so a -serve
// endpoint shows the live cost of a running search.
func NewConvergenceRecorder(reg *Registry) *ConvergenceRecorder {
	r := &ConvergenceRecorder{epoch: time.Now()}
	if reg != nil {
		r.gauge = reg.Gauge("mosaic_search_cost", "Current local-search total error.", nil)
	}
	return r
}

// Sweep records one local-search sweep sample; its signature matches
// localsearch.Progress.
func (r *ConvergenceRecorder) Sweep(round int, cost, swaps int64) {
	r.record(ConvergenceSample{Round: round, Cost: cost, Swaps: swaps})
}

// Anneal records one cooling-epoch sample; its signature matches
// localsearch.AnnealProgress.
func (r *ConvergenceRecorder) Anneal(epoch int, cost int64, temperature float64) {
	r.record(ConvergenceSample{Round: epoch, Cost: cost, Temperature: temperature})
}

func (r *ConvergenceRecorder) record(s ConvergenceSample) {
	r.mu.Lock()
	s.ElapsedNS = time.Since(r.epoch).Nanoseconds()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
	if r.gauge != nil {
		r.gauge.Set(float64(s.Cost))
	}
}

// Len returns the number of samples recorded so far.
func (r *ConvergenceRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Snapshot returns a copy of the samples in recording order.
func (r *ConvergenceRecorder) Snapshot() []ConvergenceSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ConvergenceSample(nil), r.samples...)
}

// WriteJSON writes the samples as an indented JSON array.
func (r *ConvergenceRecorder) WriteJSON(w io.Writer) error {
	return writeIndented(w, r.Snapshot())
}

// WriteCSV writes the samples as CSV with a header row; durations in
// nanoseconds, matching the JSON field.
func (r *ConvergenceRecorder) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "round,cost,swaps,temperature,elapsed_ns\n"); err != nil {
		return err
	}
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%g,%d\n",
			s.Round, s.Cost, s.Swaps, s.Temperature, s.ElapsedNS); err != nil {
			return err
		}
	}
	return nil
}
