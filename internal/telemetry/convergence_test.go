package telemetry

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
)

// testMatrix builds a deterministic pseudo-random cost matrix on which the
// identity assignment is far from swap-locally optimal.
func testMatrix(s int) *metric.Matrix {
	m := metric.NewMatrix(s)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range m.W {
		state = state*6364136223846793005 + 1442695040888963407
		m.W[i] = metric.Cost((state >> 33) % 1000)
	}
	return m
}

// TestConvergenceSerialMonotone runs the paper's serial local search with a
// recorder attached and checks the recorded curve is exactly what the
// search did: one sample per sweep, non-increasing costs, and a final cost
// equal to the returned assignment's true Eq. (2) total — which also proves
// the incremental cost maintenance agrees with a from-scratch evaluation.
func TestConvergenceSerialMonotone(t *testing.T) {
	const s = 24
	m := testMatrix(s)
	rec := NewConvergenceRecorder(nil)
	p, st, err := localsearch.Serial(m, perm.Identity(s), localsearch.Options{Progress: rec.Sweep})
	if err != nil {
		t.Fatal(err)
	}
	samples := rec.Snapshot()
	if len(samples) != st.Passes {
		t.Fatalf("recorded %d samples for %d sweeps", len(samples), st.Passes)
	}
	if len(samples) < 2 {
		t.Fatalf("search converged in %d sweeps; matrix too easy to test monotonicity", len(samples))
	}
	for i, smp := range samples {
		if smp.Round != i+1 {
			t.Fatalf("sample %d has round %d, want %d", i, smp.Round, i+1)
		}
		if i > 0 {
			prev := samples[i-1]
			if smp.Cost > prev.Cost {
				t.Fatalf("cost rose between sweeps %d and %d: %d -> %d", prev.Round, smp.Round, prev.Cost, smp.Cost)
			}
			if smp.Swaps < prev.Swaps {
				t.Fatalf("cumulative swaps fell between sweeps: %d -> %d", prev.Swaps, smp.Swaps)
			}
			if smp.ElapsedNS < prev.ElapsedNS {
				t.Fatalf("elapsed offsets regressed: %d -> %d", prev.ElapsedNS, smp.ElapsedNS)
			}
		}
	}
	last := samples[len(samples)-1]
	if want := m.Total(p); last.Cost != want {
		t.Fatalf("final recorded cost %d != true total %d", last.Cost, want)
	}
	if last.Swaps != st.Swaps {
		t.Fatalf("final recorded swaps %d != stats %d", last.Swaps, st.Swaps)
	}
}

// TestConvergenceCancellation cancels the search from inside the progress
// callback and checks the run fails with the context error while the
// recorder coherently holds exactly the prefix sampled before the abort.
func TestConvergenceCancellation(t *testing.T) {
	const s = 32
	m := testMatrix(s)
	rec := NewConvergenceRecorder(nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := localsearch.Options{Progress: func(round int, cost, swaps int64) {
		rec.Sweep(round, cost, swaps)
		if round == 1 {
			cancel()
		}
	}}
	_, _, err := localsearch.SerialContext(ctx, m, perm.Identity(s), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	samples := rec.Snapshot()
	if len(samples) == 0 {
		t.Fatal("no samples before cancellation")
	}
	for i, smp := range samples {
		if smp.Round != i+1 {
			t.Fatalf("post-abort snapshot incoherent: sample %d has round %d", i, smp.Round)
		}
	}
}

// TestConvergenceAnneal checks the annealing curve: one sample per cooling
// epoch with strictly decreasing temperatures (costs may rise — that is
// Metropolis acceptance working).
func TestConvergenceAnneal(t *testing.T) {
	const s = 16
	m := testMatrix(s)
	rec := NewConvergenceRecorder(nil)
	_, _, st, err := localsearch.Anneal(m, perm.Identity(s), localsearch.AnnealOptions{
		Steps: 10 * s, Seed: 1, Progress: rec.Anneal,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := rec.Snapshot()
	if len(samples) != st.Passes {
		t.Fatalf("recorded %d samples for %d cooling epochs", len(samples), st.Passes)
	}
	if len(samples) < 2 {
		t.Fatalf("want multiple epochs, got %d", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Temperature >= samples[i-1].Temperature {
			t.Fatalf("temperature did not cool: %v -> %v", samples[i-1].Temperature, samples[i].Temperature)
		}
	}
}

func TestConvergenceLiveGaugeAndCSV(t *testing.T) {
	reg := NewRegistry()
	rec := NewConvergenceRecorder(reg)
	rec.Sweep(1, 500, 10)
	rec.Sweep(2, 400, 15)
	if got := reg.Snapshot().Gauges["mosaic_search_cost"]; got != 400 {
		t.Fatalf("live cost gauge = %v, want 400", got)
	}
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || lines[0] != "round,cost,swaps,temperature,elapsed_ns" {
		t.Fatalf("CSV shape wrong:\n%s", sb.String())
	}
	if !strings.HasPrefix(lines[2], "2,400,15,0,") {
		t.Fatalf("CSV row wrong: %q", lines[2])
	}
}
