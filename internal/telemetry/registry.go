// Package telemetry is the aggregated metrics layer above internal/trace:
// where trace records the events of one run (a span tree, counter deltas),
// telemetry accumulates process-lifetime series — counters, gauges and
// histograms — and exposes them in Prometheus text and JSON form, live over
// HTTP (see server.go) or as a one-shot snapshot in the CLIs' combined
// -trace/-metrics document.
//
// The pieces:
//
//   - Registry: a concurrency-safe collection of named metrics with optional
//     constant labels. Metrics are get-or-create, so independent call sites
//     sharing a name share a series.
//   - TraceCollector (tracecollector.go): a trace.Collector that folds the
//     pipeline's span/counter vocabulary into registry metrics automatically
//     — per-stage duration histograms and monotonic counters.
//   - ConvergenceRecorder (convergence.go): cost-vs-work samples from the
//     local searches, the paper-style convergence curve as JSON/CSV.
//   - Server (server.go): the -serve debug endpoint with /metrics, /healthz,
//     /metrics.json and net/http/pprof.
//
// All duration-valued metrics are recorded in seconds (the Prometheus
// convention); all JSON duration fields elsewhere in this repository are
// nanoseconds with an explicit _ns suffix.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// unixNow is the exemplar timestamp source (overridable per histogram in
// tests via the unexported nowUnix field).
func unixNow() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// Labels are constant key→value pairs attached to a metric series.
// A nil or empty map means an unlabelled series.
type Labels map[string]string

// metric kinds for the Prometheus TYPE line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// DefBuckets are the default histogram buckets, in seconds — a decade sweep
// tuned for pipeline stages that range from microsecond tile passes to
// multi-second full-grid sweeps.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NanoBuckets are the DefBuckets sweep expressed in nanoseconds, extended a
// decade downward — the bounds for the _ns-suffixed request-phase
// histograms, whose values come straight from span durations.
var NanoBuckets = []float64{
	1e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7,
	1e8, 2.5e8, 5e8, 1e9, 2.5e9, 5e9, 1e10, 3e10,
}

// SizeBuckets are power-of-two bounds for small-cardinality count
// histograms — batch sizes, wave widths, fan-outs.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Counter is a monotonically increasing float64 value. Safe for concurrent
// use; Add panics on negative deltas (use a Gauge for values that can fall).
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("telemetry: Counter.Add(%v): negative delta", v))
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 value. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Exemplar is one sampled observation retained next to a histogram bucket,
// carrying the trace labels (typically {"request_id": ...}) that let an
// operator jump from a latency-spike bucket straight to the recorded
// request trace in the flight recorder — the OpenMetrics exemplar concept.
type Exemplar struct {
	// Bucket indexes the histogram's Counts slice (len(Bounds) = the +Inf
	// bucket).
	Bucket int `json:"bucket"`
	// Value is the observed sample.
	Value float64 `json:"value"`
	// Labels identify the originating request.
	Labels Labels `json:"labels,omitempty"`
	// Unix is the observation time in seconds since the epoch.
	Unix float64 `json:"timestamp_unix_s"`
}

// Histogram is a cumulative histogram with fixed upper-bound buckets plus an
// implicit +Inf bucket. Safe for concurrent Observe and snapshotting.
// ObserveExemplar additionally retains the newest labelled sample per
// bucket.
type Histogram struct {
	mu        sync.Mutex
	bounds    []float64 // sorted upper bounds, +Inf excluded
	counts    []uint64  // len(bounds)+1; last is the +Inf bucket
	sum       float64
	samples   uint64
	exemplars []*Exemplar // nil until the first ObserveExemplar; sparse, per bucket
	nowUnix   func() float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// ObserveExemplar records one sample and retains it, with its labels, as
// the bucket's exemplar (newest wins). Empty labels degrade to a plain
// Observe — an unattributed exemplar identifies nothing.
func (h *Histogram) ObserveExemplar(v float64, labels Labels) {
	if len(labels) == 0 {
		h.Observe(v)
		return
	}
	cp := make(Labels, len(labels))
	for k, val := range labels {
		cp[k] = val
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
	if h.exemplars == nil {
		h.exemplars = make([]*Exemplar, len(h.counts))
	}
	now := h.nowUnix
	if now == nil {
		now = unixNow
	}
	h.exemplars[i] = &Exemplar{Bucket: i, Value: v, Labels: cp, Unix: now()}
	h.mu.Unlock()
}

// snapshot returns a copy of the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.samples,
	}
	for _, e := range h.exemplars {
		if e != nil {
			cp := *e
			snap.Exemplars = append(snap.Exemplars, &cp)
		}
	}
	return snap
}

// HistogramSnapshot is the JSON form of a histogram: Counts[i] is the number
// of samples ≤ Bounds[i]; the final element of Counts is the +Inf bucket.
// Exemplars, when present, lists the retained per-bucket exemplars in
// bucket order (buckets without one are omitted).
type HistogramSnapshot struct {
	Bounds    []float64   `json:"bounds"`
	Counts    []uint64    `json:"counts"`
	Sum       float64     `json:"sum"`
	Count     uint64      `json:"count"`
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// series is one labelled instance of a metric family.
type series struct {
	labels    string // rendered {k="v",...} suffix, "" when unlabelled
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	valueFunc func() float64 // CounterFunc / GaugeFunc
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string
	series []*series
	byKey  map[string]*series
}

// Registry is a concurrency-safe collection of metrics. The zero value is
// not usable; construct with NewRegistry. Metric constructors are
// get-or-create: calling Counter twice with the same name and labels returns
// the same *Counter. Registering one name with two different kinds panics —
// that is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// checkName enforces the Prometheus metric-name charset.
func checkName(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
		}
	}
}

// renderLabels produces the canonical {k="v",...} suffix with sorted keys.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns (creating if needed) the series for name+labels, enforcing
// kind consistency. make constructs the series body on first use.
func (r *Registry) lookup(name, help, kind string, labels Labels, make func(s *series)) *series {
	checkName(name)
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: key}
		make(s)
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func(s *series) { s.counter = &Counter{} })
	if s.counter == nil {
		panic(fmt.Sprintf("telemetry: %q%s is a counter func", name, s.labels))
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func(s *series) { s.gauge = &Gauge{} })
	if s.gauge == nil {
		panic(fmt.Sprintf("telemetry: %q%s is a gauge func", name, s.labels))
	}
	return s.gauge
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds (nil selects DefBuckets) on first use. Buckets
// are fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func(s *series) {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		for i := 1; i < len(bounds); i++ {
			if bounds[i] == bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q: duplicate bucket %v", name, bounds[i]))
			}
		}
		s.hist = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	})
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — for wrapping an externally maintained monotonic total (the virtual
// device's launch counters). The func is fixed at first registration;
// registering over a plain counter of the same name panics.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	s := r.lookup(name, help, kindCounter, labels, func(s *series) { s.valueFunc = fn })
	if s.valueFunc == nil {
		panic(fmt.Sprintf("telemetry: %q%s already registered as a plain counter", name, s.labels))
	}
}

// GaugeFunc registers a gauge whose value is read from fn at exposition time
// — the natural shape for occupancy-style instantaneous readings. The func is
// fixed at first registration; registering over a plain gauge panics.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.lookup(name, help, kindGauge, labels, func(s *series) { s.valueFunc = fn })
	if s.valueFunc == nil {
		panic(fmt.Sprintf("telemetry: %q%s already registered as a plain gauge", name, s.labels))
	}
}

// value reads a counter/gauge series.
func (s *series) value() float64 {
	switch {
	case s.valueFunc != nil:
		return s.valueFunc()
	case s.counter != nil:
		return s.counter.Value()
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// familiesSnapshot copies the family/series structure under the lock so
// exposition can run without holding it while calling value funcs.
func (r *Registry) familiesSnapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	for i, f := range r.families {
		cp := &family{name: f.name, help: f.help, kind: f.kind}
		cp.series = append(cp.series, f.series...)
		out[i] = cp
	}
	return out
}
