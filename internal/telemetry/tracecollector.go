package telemetry

import (
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Metric names produced by the trace adapter and the pipeline wiring. They
// follow the Prometheus conventions: a mosaic_ namespace, _total suffixes on
// counters, base units (seconds) in histogram names.
const (
	// MetricStageDuration is the per-stage duration histogram; the span name
	// becomes the stage label.
	MetricStageDuration = "mosaic_stage_duration_seconds"
	// MetricStageStarted counts span starts per stage, so a hung stage is
	// visible as started > observed durations.
	MetricStageStarted = "mosaic_stage_started_total"
)

// TraceCollector folds the pipeline's span/counter vocabulary into registry
// metrics: every span becomes an observation on the
// mosaic_stage_duration_seconds{stage=...} histogram, and every trace
// counter becomes a mosaic_..._total registry counter (the dotted trace
// names are rewritten, e.g. "search.sweep-rounds" →
// mosaic_search_sweep_rounds_total).
//
// It implements trace.Collector, so wiring a whole run into a registry is
// one line: opts.Trace = telemetry.NewTraceCollector(reg). Safe for
// concurrent use to the same degree as the underlying registry.
type TraceCollector struct {
	reg *Registry

	mu       sync.Mutex
	counters map[string]*Counter // trace counter name → registry counter
}

// NewTraceCollector returns an adapter feeding reg.
func NewTraceCollector(reg *Registry) *TraceCollector {
	return &TraceCollector{reg: reg, counters: make(map[string]*Counter)}
}

type traceSpan struct {
	c     *TraceCollector
	name  string
	begin time.Time
}

// StartSpan implements trace.Collector.
func (c *TraceCollector) StartSpan(name string) trace.Span {
	c.reg.Counter(MetricStageStarted, "Pipeline stage spans started.", Labels{"stage": name}).Inc()
	return &traceSpan{c: c, name: name, begin: time.Now()}
}

func (s *traceSpan) End() {
	h := s.c.reg.Histogram(MetricStageDuration, "Pipeline stage duration in seconds.",
		Labels{"stage": s.name}, nil)
	h.Observe(time.Since(s.begin).Seconds())
}

// Count implements trace.Collector.
func (c *TraceCollector) Count(name string, delta int64) {
	c.mu.Lock()
	ctr := c.counters[name]
	if ctr == nil {
		ctr = c.reg.Counter(promCounterName(name), "Trace counter "+name+".", nil)
		c.counters[name] = ctr
	}
	c.mu.Unlock()
	if delta > 0 {
		ctr.Add(float64(delta))
	}
}

// promCounterName rewrites a dotted trace counter name ("cuda.blocks-executed")
// into the Prometheus form (mosaic_cuda_blocks_executed_total).
func promCounterName(name string) string {
	var b strings.Builder
	b.WriteString("mosaic_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	b.WriteString("_total")
	return b.String()
}
