package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full text exposition of a small
// registry: header lines, label rendering, float formatting and the
// cumulative histogram expansion. Observation values are exact binary
// fractions so the golden sum is byte-stable.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mosaic_ops_total", "Operations performed.", nil).Add(3)
	reg.Counter("mosaic_stage_started_total", "Stages started.", Labels{"stage": "pipeline"}).Inc()
	reg.Gauge("mosaic_queue_depth", "Queue depth.", nil).Set(2.5)
	h := reg.Histogram("mosaic_latency_seconds", "Stage latency.", nil, []float64{0.1, 1})
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(4)

	want := strings.Join([]string{
		`# HELP mosaic_ops_total Operations performed.`,
		`# TYPE mosaic_ops_total counter`,
		`mosaic_ops_total 3`,
		`# HELP mosaic_stage_started_total Stages started.`,
		`# TYPE mosaic_stage_started_total counter`,
		`mosaic_stage_started_total{stage="pipeline"} 1`,
		`# HELP mosaic_queue_depth Queue depth.`,
		`# TYPE mosaic_queue_depth gauge`,
		`mosaic_queue_depth 2.5`,
		`# HELP mosaic_latency_seconds Stage latency.`,
		`# TYPE mosaic_latency_seconds histogram`,
		`mosaic_latency_seconds_bucket{le="0.1"} 1`,
		`mosaic_latency_seconds_bucket{le="1"} 2`,
		`mosaic_latency_seconds_bucket{le="+Inf"} 3`,
		`mosaic_latency_seconds_sum 4.5625`,
		`mosaic_latency_seconds_count 3`,
	}, "\n") + "\n"

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestHistogramBucketLabelSplicing(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("mosaic_stage_duration_seconds", "Stage duration.",
		Labels{"stage": "cost-matrix"}, []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`mosaic_stage_duration_seconds_bucket{stage="cost-matrix",le="1"} 1`,
		`mosaic_stage_duration_seconds_count{stage="cost-matrix"} 1`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

func TestSnapshotKeysAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mosaic_ops_total", "Ops.", Labels{"stage": "x"}).Inc()
	reg.Gauge("mosaic_queue_depth", "Depth.", nil).Set(1)
	reg.Histogram("mosaic_latency_seconds", "Latency.", nil, []float64{1}).Observe(2)

	snap := reg.Snapshot()
	if snap.Counters[`mosaic_ops_total{stage="x"}`] != 1 {
		t.Fatalf("counter key missing: %+v", snap.Counters)
	}
	if snap.Gauges["mosaic_queue_depth"] != 1 {
		t.Fatalf("gauge key missing: %+v", snap.Gauges)
	}
	hs, ok := snap.Histograms["mosaic_latency_seconds"]
	if !ok || hs.Count != 1 || hs.Sum != 2 {
		t.Fatalf("histogram snapshot wrong: %+v", snap.Histograms)
	}

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if decoded.Counters[`mosaic_ops_total{stage="x"}`] != 1 {
		t.Fatalf("JSON round-trip lost the counter: %+v", decoded)
	}
}
