package metric

import (
	"fmt"

	"repro/internal/tile"
)

// BuildProxy computes an approximate cost matrix from d×d box-downsampled
// tile descriptors instead of full M×M tiles, cutting Step 2 from O(S²M²)
// to O(S²d²).
//
// This is the acceleration used by the database-driven photomosaic systems
// the paper cites ([19], [20] match tiles at reduced resolution); it is not
// part of the paper's method, and the ablation bench quantifies what the
// shortcut costs in mosaic quality. Proxy costs are scaled by (M/d)² so
// totals are comparable to the exact matrix's magnitude. d must divide M.
func BuildProxy(in, tgt *tile.Grid, met Metric, d int) (*Matrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !met.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", met)
	}
	if d <= 0 || d > in.M || in.M%d != 0 {
		return nil, fmt.Errorf("metric: proxy resolution %d must divide tile side %d: %w", d, in.M, ErrMismatch)
	}
	s := in.S()
	din := descriptors(in, d)
	dtgt := descriptors(tgt, d)
	// Box means preserve intensity scale, so per-sample errors are scaled by
	// the number of represented pixels to approximate the full-resolution
	// magnitude. For L2 the scale applies to the squared term's count, not
	// its square, matching E[Σd²] under a piecewise-constant model.
	scale := int64(in.M / d)
	scale *= scale
	d2 := d * d
	out := NewMatrix(s)
	for u := 0; u < s; u++ {
		du := din[u*d2 : (u+1)*d2]
		row := out.Row(u)
		for v := 0; v < s; v++ {
			dv := dtgt[v*d2 : (v+1)*d2]
			var sum int64
			if met == L2 {
				for i, p := range du {
					diff := int64(p) - int64(dv[i])
					sum += diff * diff
				}
			} else {
				for i, p := range du {
					diff := int64(p) - int64(dv[i])
					if diff < 0 {
						diff = -diff
					}
					sum += diff
				}
			}
			row[v] = Cost(sum * scale)
		}
	}
	return out, nil
}

// descriptors box-downsamples every tile of g to d×d, returning all
// descriptors concatenated (tile i at [i·d², (i+1)·d²)).
func descriptors(g *tile.Grid, d int) []uint8 {
	s := g.S()
	k := g.M / d // box side
	area := k * k
	d2 := d * d
	out := make([]uint8, s*d2)
	for i := 0; i < s; i++ {
		desc := out[i*d2 : (i+1)*d2]
		for by := 0; by < d; by++ {
			for bx := 0; bx < d; bx++ {
				var sum int
				for y := by * k; y < (by+1)*k; y++ {
					row := g.Row(i, y)
					for x := bx * k; x < (bx+1)*k; x++ {
						sum += int(row[x])
					}
				}
				desc[by*d+bx] = uint8((sum + area/2) / area)
			}
		}
	}
	return out
}
