// Store-backed Step-2 builders: the same named strategies as metric.go, but
// streaming the columnar tile store instead of re-cropping grids.
//
// A tilestore.Store holds every tile as a contiguous zero-padded block, so
// the builders here read the flat buffer linearly — no Grid.Flatten gather
// per build, no row arithmetic in the inner loop. The kernels run over the
// padded blocks (tilestore.Store.TilePadded): the padding is zero on both
// sides of every comparison, contributes |0−0| = 0 under either metric, and
// keeps every SWAR iteration on whole 32-byte words. Each store builder is
// bit-identical to its crop-path oracle of the same Builder name, which
// TestTileStoreBuildersEquivalent enforces over randomized scenes.
package metric

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/tilestore"
)

// checkStores validates that two stores are comparable: same grid geometry,
// tile side within the Cost overflow bound. Equal M implies equal Stride.
func checkStores(in, tgt *tilestore.Store) error {
	if in.M != tgt.M || in.Cols != tgt.Cols || in.Rows != tgt.Rows {
		return fmt.Errorf("metric: input store %dx%d tiles of %d vs target %dx%d tiles of %d: %w",
			in.Cols, in.Rows, in.M, tgt.Cols, tgt.Rows, tgt.M, ErrMismatch)
	}
	if in.M > MaxTileSide {
		return fmt.Errorf("metric: tile side %d exceeds %d (Cost overflow): %w", in.M, MaxTileSide, ErrMismatch)
	}
	return nil
}

// storeSetup shares validation across the store builders.
func storeSetup(in, tgt *tilestore.Store, m Metric) (s int, err error) {
	if err := checkStores(in, tgt); err != nil {
		return 0, err
	}
	if !m.Valid() {
		return 0, fmt.Errorf("metric: invalid metric %v", m)
	}
	return in.S(), nil
}

// BuildStoreSerial is BuildSerial over the store: one core, rows in order,
// each entry one TileError over the padded blocks.
func BuildStoreSerial(in, tgt *tilestore.Store, m Metric) (*Matrix, error) {
	s, err := storeSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(s)
	for u := 0; u < s; u++ {
		tu := in.TilePadded(u)
		row := out.Row(u)
		for v := 0; v < s; v++ {
			row[v] = TileError(tu, tgt.TilePadded(v), m)
		}
	}
	return out, nil
}

// BuildStoreSerialScalar is the scalar-kernel oracle over the store — the
// store-path counterpart of BuildSerialScalar.
func BuildStoreSerialScalar(in, tgt *tilestore.Store, m Metric) (*Matrix, error) {
	s, err := storeSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(s)
	for u := 0; u < s; u++ {
		tu := in.TilePadded(u)
		row := out.Row(u)
		for v := 0; v < s; v++ {
			row[v] = TileErrorScalar(tu, tgt.TilePadded(v), m)
		}
	}
	return out, nil
}

// BuildStoreBlocked is the cache-blocked loop nest over the store, with the
// same byte budgets as BuildBlocked (panels sized by the padded stride, so
// the resident working set is computed from what is actually streamed).
func BuildStoreBlocked(in, tgt *tilestore.Store, m Metric) (*Matrix, error) {
	s, err := storeSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(s)
	bv := blockSpan(blockedTargetBytes, in.Stride, s)
	bu := blockSpan(blockedInputBytes, in.Stride, s)
	for v0 := 0; v0 < s; v0 += bv {
		v1 := v0 + bv
		if v1 > s {
			v1 = s
		}
		for u0 := 0; u0 < s; u0 += bu {
			u1 := u0 + bu
			if u1 > s {
				u1 = s
			}
			for u := u0; u < u1; u++ {
				tu := in.TilePadded(u)
				row := out.Row(u)
				for v := v0; v < v1; v++ {
					row[v] = TileError(tu, tgt.TilePadded(v), m)
				}
			}
		}
	}
	return out, nil
}

// storeRowsKernel returns the row body shared by the device-shaped store
// builders: compute row u of the matrix (input tile u against every target)
// from a staged copy of the input tile.
func storeDeviceKernel(in, tgt *tilestore.Store, m Metric, out *Matrix, rowBase int) func(b *cuda.Block) {
	stride := in.Stride
	return func(b *cuda.Block) {
		u := rowBase + b.Idx
		// Stage the padded input block in shared memory (the paper's first
		// kernel phase); the padded length keeps the copy word-aligned.
		sh := b.Shared(stride)
		src := in.TilePadded(u)
		b.StrideLoop(stride, func(i int) { sh[i] = src[i] })
		row := out.Row(u)
		b.StrideLoop(out.S, func(v int) {
			row[v] = TileError(sh, tgt.TilePadded(v), m)
		})
	}
}

// BuildStoreDevice is the paper's §V kernel decomposition reading the store:
// S blocks, block u staging tile u's padded block in shared memory and
// producing row u.
func BuildStoreDevice(dev *cuda.Device, in, tgt *tilestore.Store, m Metric) (*Matrix, error) {
	s, err := storeSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(s)
	threads := 256
	if threads > s {
		threads = s
	}
	dev.Launch(s, threads, storeDeviceKernel(in, tgt, m, out, 0))
	return out, nil
}

// BuildStoreDeviceContext is BuildStoreDevice through the fault-aware launch
// path (typed errors instead of running the kernel, launch skipped when ctx
// is dead) — the variant the resilient Step-2 build retries.
func BuildStoreDeviceContext(ctx context.Context, dev *cuda.Device, in, tgt *tilestore.Store, m Metric) (*Matrix, error) {
	s, err := storeSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(s)
	threads := 256
	if threads > s {
		threads = s
	}
	if err := dev.LaunchErr(ctx, KernelCostMatrix, s, threads, storeDeviceKernel(in, tgt, m, out, 0)); err != nil {
		return nil, err
	}
	return out, nil
}

// BuildStoreRowsParallel is plain row-level multicore parallelism over the
// store, without the kernel shape.
func BuildStoreRowsParallel(dev *cuda.Device, in, tgt *tilestore.Store, m Metric) (*Matrix, error) {
	s, err := storeSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(s)
	dev.LaunchRange(s, storeRowBody(in, tgt, m, out))
	return out, nil
}

// storeRowBody returns the per-row body of the rows-parallel store builders.
func storeRowBody(in, tgt *tilestore.Store, m Metric, out *Matrix) func(u int) {
	return func(u int) {
		tu := in.TilePadded(u)
		row := out.Row(u)
		for v := 0; v < out.S; v++ {
			row[v] = TileError(tu, tgt.TilePadded(v), m)
		}
	}
}

// BuildStoreRowsParallelContext is BuildStoreRowsParallel through the
// fault-aware execute path.
func BuildStoreRowsParallelContext(ctx context.Context, dev *cuda.Device, in, tgt *tilestore.Store, m Metric) (*Matrix, error) {
	s, err := storeSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(s)
	if err := dev.ExecuteErr(ctx, KernelCostMatrixRows, s, storeRowBody(in, tgt, m, out)); err != nil {
		return nil, err
	}
	return out, nil
}

// BuildStoreSharded splits the S matrix rows into contiguous ranges — one
// per device — and launches the §V kernel concurrently on every device, each
// shard writing its disjoint row slab of one output matrix. This is the
// multi-device decomposition the columnar layout exists for: a shard needs
// only its row range of the input store and the whole target store, both
// read-only, so shards share the flat buffers zero-copy. The result is
// bit-identical to BuildStoreDevice (row order inside a shard is the kernel
// order; rows across shards are disjoint).
//
// Launch faults return as typed errors; the first failing shard's error is
// reported. Concurrent launches are safe because every shard runs on its own
// Device (separate streams).
func BuildStoreSharded(ctx context.Context, devs []*cuda.Device, in, tgt *tilestore.Store, m Metric) (*Matrix, error) {
	if len(devs) == 0 {
		return nil, errors.New("metric: BuildStoreSharded with no devices")
	}
	s, err := storeSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(s)
	threads := 256
	if threads > s {
		threads = s
	}
	ranges := cuda.SplitRange(s, len(devs))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r cuda.Range, dev *cuda.Device) {
			defer wg.Done()
			errs[i] = dev.LaunchErr(ctx, KernelCostMatrix, r.Len(), threads,
				storeDeviceKernel(in, tgt, m, out, r.Lo))
		}(i, r, devs[i])
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// BuildStore dispatches to the named builder's store-backed implementation —
// the same Builder vocabulary as Build, same bit-identical contract, reading
// the columnar store instead of grids. BuilderAuto resolves exactly as Build
// does.
func BuildStore(dev *cuda.Device, in, tgt *tilestore.Store, m Metric, b Builder) (*Matrix, error) {
	if b == BuilderAuto {
		if dev != nil {
			b = BuilderDevice
		} else {
			b = BuilderBlocked
		}
	}
	if b.NeedsDevice() && dev == nil {
		return nil, fmt.Errorf("metric: builder %q requires a device", b)
	}
	switch b {
	case BuilderSerial:
		return BuildStoreSerial(in, tgt, m)
	case BuilderScalar:
		return BuildStoreSerialScalar(in, tgt, m)
	case BuilderBlocked:
		return BuildStoreBlocked(in, tgt, m)
	case BuilderDevice:
		return BuildStoreDevice(dev, in, tgt, m)
	case BuilderRows:
		return BuildStoreRowsParallel(dev, in, tgt, m)
	}
	return nil, fmt.Errorf("metric: unknown builder %q", b)
}

// BuildOrientedStore is BuildOriented reading the store: all eight dihedral
// placements scored per pair from the unpadded tile views (orientation
// indexing is defined over the M×M payload, so the oriented kernels use
// Tile, not TilePadded; the upright case is the plain TileError).
func BuildOrientedStore(in, tgt *tilestore.Store, met Metric) (*OrientedMatrix, error) {
	s, err := storeSetup(in, tgt, met)
	if err != nil {
		return nil, err
	}
	m := in.M
	out := &OrientedMatrix{
		Matrix: *NewMatrix(s),
		Orient: make([]imgutil.Orientation, s*s),
	}
	for u := 0; u < s; u++ {
		tu := in.Tile(u)
		row := out.Row(u)
		orow := out.Orient[u*s : (u+1)*s]
		for v := 0; v < s; v++ {
			tv := tgt.Tile(v)
			best := TileError(tu, tv, met)
			bestO := imgutil.Upright
			for o := imgutil.Orientation(1); o < imgutil.NumOrientations; o++ {
				if c := orientedTileError(tu, tv, m, o, met); c < best {
					best = c
					bestO = o
				}
			}
			row[v] = best
			orow[v] = bestO
		}
	}
	return out, nil
}

// BuildOrientedStoreDevice is BuildOrientedDevice reading the store.
func BuildOrientedStoreDevice(dev *cuda.Device, in, tgt *tilestore.Store, met Metric) (*OrientedMatrix, error) {
	s, err := storeSetup(in, tgt, met)
	if err != nil {
		return nil, err
	}
	m := in.M
	m2 := m * m
	out := &OrientedMatrix{
		Matrix: *NewMatrix(s),
		Orient: make([]imgutil.Orientation, s*s),
	}
	threads := 256
	if threads > s {
		threads = s
	}
	dev.Launch(s, threads, func(b *cuda.Block) {
		u := b.Idx
		sh := b.Shared(m2)
		src := in.Tile(u)
		b.StrideLoop(m2, func(i int) { sh[i] = src[i] })
		row := out.Row(u)
		orow := out.Orient[u*s : (u+1)*s]
		b.StrideLoop(s, func(v int) {
			tv := tgt.Tile(v)
			best := TileError(sh, tv, met)
			bestO := imgutil.Upright
			for o := imgutil.Orientation(1); o < imgutil.NumOrientations; o++ {
				if c := orientedTileError(sh, tv, m, o, met); c < best {
					best = c
					bestO = o
				}
			}
			row[v] = best
			orow[v] = bestO
		})
	})
	return out, nil
}
