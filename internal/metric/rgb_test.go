package metric

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tile"
)

func rgbGrids(t testing.TB, n, m int) (*tile.RGBGrid, *tile.RGBGrid) {
	t.Helper()
	inImg, err := synth.GenerateRGB(synth.Peppers, n)
	if err != nil {
		t.Fatal(err)
	}
	tgtImg, err := synth.GenerateRGB(synth.Barbara, n)
	if err != nil {
		t.Fatal(err)
	}
	in, err := tile.NewRGBGrid(inImg, m)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tile.NewRGBGrid(tgtImg, m)
	if err != nil {
		t.Fatal(err)
	}
	return in, tg
}

func TestRGBBuildersAgree(t *testing.T) {
	in, tg := rgbGrids(t, 32, 8)
	for _, met := range []Metric{L1, L2} {
		want, err := BuildSerialRGB(in, tg, met)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, err := BuildDeviceRGB(cuda.New(workers), in, tg, met)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("workers=%d %v: device RGB matrix differs from serial", workers, met)
			}
		}
	}
}

func TestRGBMatrixOfGrayImageIsTripleGrayMatrix(t *testing.T) {
	// Lifting a grayscale image to RGB (r = g = b) must triple every L1
	// entry — the invariant tying the color error function to Eq. (1).
	inGray := synth.MustGenerate(synth.Lena, 32)
	tgtGray := synth.MustGenerate(synth.Sailboat, 32)
	gIn, _ := tile.NewGrid(inGray, 8)
	gTgt, _ := tile.NewGrid(tgtGray, 8)
	grayM, err := BuildSerial(gIn, gTgt, L1)
	if err != nil {
		t.Fatal(err)
	}
	cIn, _ := tile.NewRGBGrid(imgutil.RGBFromGray(inGray), 8)
	cTgt, _ := tile.NewRGBGrid(imgutil.RGBFromGray(tgtGray), 8)
	colorM, err := BuildSerialRGB(cIn, cTgt, L1)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range colorM.W {
		if c != 3*grayM.W[i] {
			t.Fatalf("entry %d: color %d != 3×gray %d", i, c, grayM.W[i])
		}
	}
}

func TestRGBTotalMatchesImageError(t *testing.T) {
	in, tg := rgbGrids(t, 32, 8)
	m, err := BuildSerialRGB(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	p := perm.Random(m.S, 4)
	mosaic, err := in.Assemble(p)
	if err != nil {
		t.Fatal(err)
	}
	imgErr, err := mosaic.AbsDiffSum(tg.Img)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total(p) != imgErr {
		t.Errorf("matrix total %d != image error %d", m.Total(p), imgErr)
	}
}

func TestRGBBuildValidation(t *testing.T) {
	in, _ := rgbGrids(t, 32, 8)
	_, tgSmall := rgbGrids(t, 32, 4)
	if _, err := BuildSerialRGB(in, tgSmall, L1); err == nil {
		t.Error("accepted mismatched color grids")
	}
	if _, err := BuildDeviceRGB(cuda.New(1), in, tgSmall, L1); err == nil {
		t.Error("device builder accepted mismatched color grids")
	}
	_, tg := rgbGrids(t, 32, 8)
	if _, err := BuildSerialRGB(in, tg, Metric(7)); err == nil {
		t.Error("accepted invalid metric")
	}
	// Oversized color tiles overflow Cost.
	big := imgutil.NewRGB(210, 210)
	bi, _ := tile.NewRGBGrid(big, 105)
	bt, _ := tile.NewRGBGrid(big.Clone(), 105)
	if _, err := BuildSerialRGB(bi, bt, L1); err == nil {
		t.Error("accepted color tile side beyond overflow bound")
	}
}

func TestAssignmentErrorMatchesMatrixTotal(t *testing.T) {
	in, tg := grids(t, 64, 8)
	m, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	p := perm.Random(m.S, 11)
	direct, err := AssignmentError(in, tg, p, L1)
	if err != nil {
		t.Fatal(err)
	}
	if direct != m.Total(p) {
		t.Errorf("AssignmentError %d != matrix total %d", direct, m.Total(p))
	}
	if _, err := AssignmentError(in, tg, perm.Perm{0}, L1); err == nil {
		t.Error("accepted short assignment")
	}
	if _, err := AssignmentError(in, tg, make(perm.Perm, m.S), L1); err == nil {
		t.Error("accepted non-bijection")
	}
	if _, err := AssignmentError(in, tg, p, Metric(9)); err == nil {
		t.Error("accepted invalid metric")
	}
}
