package metric

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/tile"
)

// MaxTileSideRGB bounds M for color matrices: the worst-case L2 tile error
// is 3·M²·255², which must fit in Cost.
const MaxTileSideRGB = 104

// checkRGBGrids validates that two color grids are comparable.
func checkRGBGrids(in, tgt *tile.RGBGrid) error {
	if in.M != tgt.M || in.Cols != tgt.Cols || in.Rows != tgt.Rows {
		return fmt.Errorf("metric: input %dx%d tiles of %d vs target %dx%d tiles of %d: %w",
			in.Cols, in.Rows, in.M, tgt.Cols, tgt.Rows, tgt.M, ErrMismatch)
	}
	if in.M > MaxTileSideRGB {
		return fmt.Errorf("metric: color tile side %d exceeds %d (Cost overflow): %w", in.M, MaxTileSideRGB, ErrMismatch)
	}
	return nil
}

// BuildSerialRGB computes the cost matrix for color grids. The error
// function is the per-channel extension of Eq. (1) — exactly the change the
// paper says is sufficient for color (§II) — applied to the interleaved
// tile bytes, so TileError is reused unchanged.
func BuildSerialRGB(in, tgt *tile.RGBGrid, m Metric) (*Matrix, error) {
	if err := checkRGBGrids(in, tgt); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 := 3 * in.M * in.M
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := NewMatrix(s)
	for u := 0; u < s; u++ {
		tu := fin[u*m2 : (u+1)*m2]
		row := out.Row(u)
		for v := 0; v < s; v++ {
			row[v] = TileError(tu, ftgt[v*m2:(v+1)*m2], m)
		}
	}
	return out, nil
}

// BuildDeviceRGB is BuildDevice for color grids: S blocks, block u staging
// the 3M² bytes of input tile u in shared memory before producing row u.
func BuildDeviceRGB(dev *cuda.Device, in, tgt *tile.RGBGrid, m Metric) (*Matrix, error) {
	if err := checkRGBGrids(in, tgt); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 := 3 * in.M * in.M
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := NewMatrix(s)
	threads := 256
	if threads > s {
		threads = s
	}
	dev.Launch(s, threads, func(b *cuda.Block) {
		u := b.Idx
		sh := b.Shared(m2)
		src := fin[u*m2 : (u+1)*m2]
		b.StrideLoop(m2, func(i int) { sh[i] = src[i] })
		row := out.Row(u)
		b.StrideLoop(s, func(v int) {
			row[v] = TileError(sh, ftgt[v*m2:(v+1)*m2], m)
		})
	})
	return out, nil
}
