package metric

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/perm"
	"repro/internal/tile"
)

// OrientedMatrix extends the cost matrix with, per (input tile, target
// position) pair, the dihedral orientation of the input tile that minimises
// Eq. (1). This is the rotation/mirror extension described in DESIGN.md: the
// paper places tiles upright; allowing the eight orientations of the square
// strictly enlarges the search space, so the optimal oriented mosaic is
// never worse. W holds the minimised costs (so every Step-3 algorithm works
// unchanged) and Orient[u*S+v] records the minimising orientation.
type OrientedMatrix struct {
	Matrix
	Orient []imgutil.Orientation
}

// BestOrientation returns the orientation achieving At(u, v).
func (m *OrientedMatrix) BestOrientation(u, v int) imgutil.Orientation {
	return m.Orient[u*m.S+v]
}

// orientedTileError scores tile a (flattened m×m) against tile b under
// orientation o of a, without materialising the oriented tile.
func orientedTileError(a, b []uint8, m int, o imgutil.Orientation, met Metric) Cost {
	if o == imgutil.Upright {
		return TileError(a, b, met)
	}
	var sum int64
	i := 0
	switch met {
	case L2:
		for y := 0; y < m; y++ {
			for x := 0; x < m; x++ {
				d := int64(a[imgutil.OrientIndex(o, m, x, y)]) - int64(b[i])
				sum += d * d
				i++
			}
		}
	default:
		for y := 0; y < m; y++ {
			for x := 0; x < m; x++ {
				d := int64(a[imgutil.OrientIndex(o, m, x, y)]) - int64(b[i])
				if d < 0 {
					d = -d
				}
				sum += d
				i++
			}
		}
	}
	return Cost(sum)
}

// BuildOriented computes the oriented cost matrix serially: for each pair it
// evaluates all eight orientations and keeps the best. Roughly 8× the work
// of BuildSerial.
func BuildOriented(in, tgt *tile.Grid, met Metric) (*OrientedMatrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !met.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", met)
	}
	s := in.S()
	m := in.M
	m2 := m * m
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := &OrientedMatrix{
		Matrix: *NewMatrix(s),
		Orient: make([]imgutil.Orientation, s*s),
	}
	for u := 0; u < s; u++ {
		tu := fin[u*m2 : (u+1)*m2]
		row := out.Row(u)
		orow := out.Orient[u*s : (u+1)*s]
		for v := 0; v < s; v++ {
			tv := ftgt[v*m2 : (v+1)*m2]
			best := TileError(tu, tv, met)
			bestO := imgutil.Upright
			for o := imgutil.Orientation(1); o < imgutil.NumOrientations; o++ {
				if c := orientedTileError(tu, tv, m, o, met); c < best {
					best = c
					bestO = o
				}
			}
			row[v] = best
			orow[v] = bestO
		}
	}
	return out, nil
}

// BuildOrientedDevice is BuildOriented with the paper's Step-2 kernel shape:
// S blocks, block u staging tile I_u in shared memory and producing row u
// (all eight orientations scored from the staged copy).
func BuildOrientedDevice(dev *cuda.Device, in, tgt *tile.Grid, met Metric) (*OrientedMatrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !met.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", met)
	}
	s := in.S()
	m := in.M
	m2 := m * m
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := &OrientedMatrix{
		Matrix: *NewMatrix(s),
		Orient: make([]imgutil.Orientation, s*s),
	}
	threads := 256
	if threads > s {
		threads = s
	}
	dev.Launch(s, threads, func(b *cuda.Block) {
		u := b.Idx
		sh := b.Shared(m2)
		src := fin[u*m2 : (u+1)*m2]
		b.StrideLoop(m2, func(i int) { sh[i] = src[i] })
		row := out.Row(u)
		orow := out.Orient[u*s : (u+1)*s]
		b.StrideLoop(s, func(v int) {
			tv := ftgt[v*m2 : (v+1)*m2]
			best := TileError(sh, tv, met)
			bestO := imgutil.Upright
			for o := imgutil.Orientation(1); o < imgutil.NumOrientations; o++ {
				if c := orientedTileError(sh, tv, m, o, met); c < best {
					best = c
					bestO = o
				}
			}
			row[v] = best
			orow[v] = bestO
		})
	})
	return out, nil
}

// Orientations extracts, for an assignment p, the per-position orientation
// vector tile.Grid.AssembleOriented consumes: position v gets the best
// orientation of the tile p[v] placed there.
func (m *OrientedMatrix) Orientations(p perm.Perm) ([]imgutil.Orientation, error) {
	if len(p) != m.S {
		return nil, fmt.Errorf("metric: %d-element assignment for S = %d: %w", len(p), m.S, ErrMismatch)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]imgutil.Orientation, m.S)
	for v, u := range p {
		out[v] = m.Orient[u*m.S+v]
	}
	return out, nil
}
