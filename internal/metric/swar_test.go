package metric

import (
	"math/rand"
	"testing"

	"repro/internal/cuda"
)

// TestTileErrorSWARMatchesScalarAllLengths differentially checks the SWAR
// kernels against the byte-at-a-time oracle over every length around the
// word, unroll and flush boundaries, with adversarial byte patterns mixed in.
func TestTileErrorSWARMatchesScalarAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 100,
		255, 256, 257, 8*flushWords - 8, 8 * flushWords, 8*flushWords + 8, 8*flushWords + 100}
	for _, n := range lengths {
		for trial := 0; trial < 8; trial++ {
			a := make([]uint8, n)
			b := make([]uint8, n)
			switch trial {
			case 0: // all-extreme: every byte saturates the lane sum
				for i := range a {
					a[i], b[i] = 255, 0
				}
			case 1:
				for i := range a {
					a[i], b[i] = 0, 255
				}
			case 2: // equal inputs: zero
				rng.Read(a)
				copy(b, a)
			default:
				rng.Read(a)
				rng.Read(b)
			}
			if got, want := tileErrorL1SWAR(a, b), int64(TileErrorScalar(a, b, L1)); got != want {
				t.Fatalf("L1 n=%d trial=%d: SWAR %d != scalar %d", n, trial, got, want)
			}
			if got, want := tileErrorL2SWAR(a, b), int64(TileErrorScalar(a, b, L2)); got != want {
				t.Fatalf("L2 n=%d trial=%d: SWAR %d != scalar %d", n, trial, got, want)
			}
			if got, want := TileError(a, b, L1), TileErrorScalar(a, b, L1); got != want {
				t.Fatalf("TileError L1 n=%d trial=%d: %d != %d", n, trial, got, want)
			}
			if got, want := TileError(a, b, L2), TileErrorScalar(a, b, L2); got != want {
				t.Fatalf("TileError L2 n=%d trial=%d: %d != %d", n, trial, got, want)
			}
		}
	}
}

// FuzzTileErrorSWAR is the differential fuzz target of the vectorization:
// on arbitrary bytes and lengths the word-at-a-time accumulators must be
// bit-identical to the scalar transcription of Eq. (1), for both metrics.
func FuzzTileErrorSWAR(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xFF}, []byte{0x00})
	f.Add(make([]byte, 256), make([]byte, 300))
	seed := make([]byte, 8*flushWords+17)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed, append([]byte{1, 2, 3}, seed...))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		// The kernels require equal lengths (TileError panics otherwise, by
		// contract); trim to the shorter input.
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		if got, want := tileErrorL1SWAR(a, b), int64(TileErrorScalar(a, b, L1)); got != want {
			t.Fatalf("L1 n=%d: SWAR %d != scalar %d", n, got, want)
		}
		if got, want := tileErrorL2SWAR(a, b), int64(TileErrorScalar(a, b, L2)); got != want {
			t.Fatalf("L2 n=%d: SWAR %d != scalar %d", n, got, want)
		}
	})
}

// TestBuildersEquivalent checks the tentpole invariant end to end: every
// named builder — serial SWAR, scalar oracle, cache-blocked, device kernel,
// rows-parallel — produces the bit-identical matrix through the Build
// dispatcher, for both metrics, on grids sized to exercise panel remainders.
func TestBuildersEquivalent(t *testing.T) {
	for _, tc := range []struct{ n, tiles int }{{64, 8}, {60, 6}, {96, 12}} {
		in, tg := grids(t, tc.n, tc.tiles)
		dev := cuda.New(3)
		for _, met := range []Metric{L1, L2} {
			want, err := Build(nil, in, tg, met, BuilderScalar)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range Builders() {
				var d *cuda.Device
				if b.NeedsDevice() {
					d = dev
				}
				got, err := Build(d, in, tg, met, b)
				if err != nil {
					t.Fatalf("Build(%q, %v): %v", b, met, err)
				}
				if !got.Equal(want) {
					t.Errorf("builder %q (%v, %d/%d) differs from the scalar oracle", b, met, tc.n, tc.tiles)
				}
			}
			// Auto without and with a device must agree too.
			for _, d := range []*cuda.Device{nil, dev} {
				got, err := Build(d, in, tg, met, BuilderAuto)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Errorf("BuilderAuto(device=%v, %v) differs from the scalar oracle", d != nil, met)
				}
			}
		}
	}
}

// TestBuildDispatcherValidation covers the Build/ParseBuilder error paths.
func TestBuildDispatcherValidation(t *testing.T) {
	in, tg := grids(t, 32, 4)
	if _, err := Build(nil, in, tg, L1, BuilderDevice); err == nil {
		t.Error("device builder without a device did not error")
	}
	if _, err := Build(nil, in, tg, L1, Builder("nope")); err == nil {
		t.Error("unknown builder did not error")
	}
	if _, err := ParseBuilder("nope"); err == nil {
		t.Error("ParseBuilder accepted junk")
	}
	for _, name := range []string{"", "auto"} {
		if b, err := ParseBuilder(name); err != nil || b != BuilderAuto {
			t.Errorf("ParseBuilder(%q) = %q, %v", name, b, err)
		}
	}
	for _, b := range Builders() {
		if got, err := ParseBuilder(string(b)); err != nil || got != b {
			t.Errorf("ParseBuilder(%q) = %q, %v", b, got, err)
		}
	}
}

// TestBlockSpan pins the panel-sizing clamps.
func TestBlockSpan(t *testing.T) {
	for _, tc := range []struct{ budget, m2, s, want int }{
		{128 << 10, 256, 1024, 512}, // pinned workload: 512-tile target panels
		{16 << 10, 256, 1024, 64},
		{1024, 32761, 100, 1},  // 181² tiles: degrade to one tile per panel
		{1 << 20, 256, 16, 16}, // budget beyond S: whole grid in one panel
	} {
		if got := blockSpan(tc.budget, tc.m2, tc.s); got != tc.want {
			t.Errorf("blockSpan(%d, %d, %d) = %d, want %d", tc.budget, tc.m2, tc.s, got, tc.want)
		}
	}
}
