// SWAR (SIMD-within-a-register) tile-error kernels.
//
// Eq. (1) is a sum of per-byte absolute differences — the classic SAD kernel
// of motion estimation, and the dominant, trivially vectorizable cost of
// Step 2 (the S×S matrix performs S²·M² of them). The loops below process
// eight pixels per uint64 word on plain integer arithmetic, four words per
// iteration, using the packed-subtract/borrow-mask construction (Hacker's
// Delight §2-18): with H marking each byte's top bit,
//
//	d  = ((x|H) − (y&^H)) ^ ((x^y^H)&H)   per-byte x−y (mod 256)
//	bo = (^x & y) | ((^x | y) & d)        top bit set where the byte borrowed
//	bm = (bo & H) >> 7                    0/1 per byte: 1 iff x < y
//	f  = bm<<8 − bm                       0x00/0xFF spread of bm
//	ad = (d ^ f) + bm                     per-byte |x−y| (negate-where-borrowed)
//
// carries never cross byte boundaries, so all eight lanes are exact. The
// per-byte absolute differences are then accumulated in packed 16-bit lanes
// and flushed to the scalar total before the lanes can overflow.
//
// TileErrorScalar keeps the byte-at-a-time transcription of Eq. (1) as the
// reference oracle; FuzzTileErrorSWAR differentially tests the two on
// arbitrary bytes and lengths, and every matrix builder must stay
// bit-identical to the scalar build (TestBuildersEquivalent).
package metric

import "encoding/binary"

const (
	// laneEven extracts the even bytes of a word into four 16-bit lanes.
	laneEven = 0x00FF00FF00FF00FF
	// byteHigh marks the top bit of every byte — the pivot of the packed
	// subtract and its borrow detector.
	byteHigh = 0x8080808080808080
	// flushWords bounds how many 8-byte words may accumulate into packed
	// 16-bit lane sums before they must spill into the 64-bit total: each
	// word adds at most 2·255 = 510 per lane (one even and one odd byte
	// land in the same lane index), and 128·510 = 65280 ≤ 65535. The main
	// loop splits these words across two accumulators and sums the pair
	// before flushing, which is covered by the same bound.
	flushWords = 128
	// swarMinBytes is the slice length below which the scalar loop wins
	// (word setup costs more than it saves on a couple of bytes).
	swarMinBytes = 16
)

// absDiffBytes returns |x−y| computed independently in each of the eight
// byte lanes of the two words.
func absDiffBytes(x, y uint64) uint64 {
	const H = uint64(byteHigh)
	d := ((x | H) - (y &^ H)) ^ ((x ^ y ^ H) & H)
	bo := (^x & y) | ((^x | y) & d)
	bm := (bo & H) >> 7
	f := bm<<8 - bm
	return (d ^ f) + bm
}

// tileErrorL1SWAR is the word-at-a-time L1 kernel: Σ|aᵢ−bᵢ|, 32 bytes per
// iteration with the absolute-difference math inlined (the compiler does not
// inline absDiffBytes into a 4× unrolled body, and the call costs ~10% here).
// Lane sums flush every flushWords words — see the overflow bound above.
func tileErrorL1SWAR(a, b []uint8) int64 {
	const H = uint64(byteHigh)
	var total int64
	n := len(a)
	i := 0
	for i+32 <= n {
		end := i + 8*flushWords
		if lim := n - n%32; end > lim {
			end = lim
		}
		var acc1, acc2 uint64
		for ; i < end; i += 32 {
			aa := a[i : i+32 : n]
			bb := b[i : i+32 : len(b)]
			x1 := binary.LittleEndian.Uint64(aa[0:8])
			y1 := binary.LittleEndian.Uint64(bb[0:8])
			x2 := binary.LittleEndian.Uint64(aa[8:16])
			y2 := binary.LittleEndian.Uint64(bb[8:16])
			x3 := binary.LittleEndian.Uint64(aa[16:24])
			y3 := binary.LittleEndian.Uint64(bb[16:24])
			x4 := binary.LittleEndian.Uint64(aa[24:32])
			y4 := binary.LittleEndian.Uint64(bb[24:32])
			d1 := ((x1 | H) - (y1 &^ H)) ^ ((x1 ^ y1 ^ H) & H)
			bo1 := (^x1 & y1) | ((^x1 | y1) & d1)
			bm1 := (bo1 & H) >> 7
			f1 := bm1<<8 - bm1
			ad1 := (d1 ^ f1) + bm1
			d2 := ((x2 | H) - (y2 &^ H)) ^ ((x2 ^ y2 ^ H) & H)
			bo2 := (^x2 & y2) | ((^x2 | y2) & d2)
			bm2 := (bo2 & H) >> 7
			f2 := bm2<<8 - bm2
			ad2 := (d2 ^ f2) + bm2
			d3 := ((x3 | H) - (y3 &^ H)) ^ ((x3 ^ y3 ^ H) & H)
			bo3 := (^x3 & y3) | ((^x3 | y3) & d3)
			bm3 := (bo3 & H) >> 7
			f3 := bm3<<8 - bm3
			ad3 := (d3 ^ f3) + bm3
			d4 := ((x4 | H) - (y4 &^ H)) ^ ((x4 ^ y4 ^ H) & H)
			bo4 := (^x4 & y4) | ((^x4 | y4) & d4)
			bm4 := (bo4 & H) >> 7
			f4 := bm4<<8 - bm4
			ad4 := (d4 ^ f4) + bm4
			acc1 += (ad1 & laneEven) + ((ad1 >> 8) & laneEven) +
				(ad2 & laneEven) + ((ad2 >> 8) & laneEven)
			acc2 += (ad3 & laneEven) + ((ad3 >> 8) & laneEven) +
				(ad4 & laneEven) + ((ad4 >> 8) & laneEven)
		}
		acc := acc1 + acc2
		total += int64(acc&0xFFFF) + int64((acc>>16)&0xFFFF) +
			int64((acc>>32)&0xFFFF) + int64(acc>>48)
	}
	if i+8 <= n {
		// At most three words remain — far below the lane bound.
		var acc uint64
		for ; i+8 <= n; i += 8 {
			ad := absDiffBytes(
				binary.LittleEndian.Uint64(a[i:]),
				binary.LittleEndian.Uint64(b[i:]))
			acc += (ad & laneEven) + ((ad >> 8) & laneEven)
		}
		total += int64(acc&0xFFFF) + int64((acc>>16)&0xFFFF) +
			int64((acc>>32)&0xFFFF) + int64(acc>>48)
	}
	for ; i < n; i++ {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total
}

// sqTab maps |a−b| to its square for the L2 kernel's per-byte lookup.
var sqTab = func() (t [256]int64) {
	for i := range t {
		t[i] = int64(i) * int64(i)
	}
	return
}()

// tileErrorL2SWAR computes Σ(aᵢ−bᵢ)² by taking the eight per-byte absolute
// differences of each word in byte lanes and squaring them through a
// 256-entry table — branch-free, and the abs machinery is shared with the
// L1 kernel.
func tileErrorL2SWAR(a, b []uint8) int64 {
	var total int64
	n := len(a) &^ 7
	for i := 0; i < n; i += 8 {
		ad := absDiffBytes(
			binary.LittleEndian.Uint64(a[i:]),
			binary.LittleEndian.Uint64(b[i:]))
		total += sqTab[ad&0xFF] + sqTab[ad>>8&0xFF] +
			sqTab[ad>>16&0xFF] + sqTab[ad>>24&0xFF] +
			sqTab[ad>>32&0xFF] + sqTab[ad>>40&0xFF] +
			sqTab[ad>>48&0xFF] + sqTab[ad>>56]
	}
	for i := n; i < len(a); i++ {
		d := int64(a[i]) - int64(b[i])
		total += d * d
	}
	return total
}
