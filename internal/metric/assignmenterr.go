package metric

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/tile"
)

// AssignmentError evaluates Eq. (2) exactly for an assignment, directly from
// the tile pixels in O(S·M²) — one matrix row's worth of work. Used when
// Step 3 ran on an approximate (proxy) matrix and the reported error must
// still be the true one.
func AssignmentError(in, tgt *tile.Grid, p perm.Perm, met Metric) (int64, error) {
	if err := checkGrids(in, tgt); err != nil {
		return 0, err
	}
	if !met.Valid() {
		return 0, fmt.Errorf("metric: invalid metric %v", met)
	}
	if len(p) != in.S() {
		return 0, fmt.Errorf("metric: %d-element assignment for S = %d: %w", len(p), in.S(), ErrMismatch)
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	m2 := in.M * in.M
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	var sum int64
	for v, u := range p {
		sum += int64(TileError(fin[u*m2:(u+1)*m2], ftgt[v*m2:(v+1)*m2], met))
	}
	return sum, nil
}
