// Package metric implements the paper's tile error function and the S×S
// cost matrix of Step 2.
//
// Eq. (1) defines the error between input tile I_u and target tile T_v as
// the sum of absolute per-pixel differences; Eq. (2) sums E(r(I_u), T_u)
// over all positions. The S×S matrix of all pairwise errors is the weight
// matrix of the bipartite matching reduction (§III) and the lookup table of
// the local search (§IV), and computing it is the paper's first GPU target
// (§V): S blocks, block u staging tile I_u in shared memory and producing
// row u of the matrix.
package metric

import (
	"errors"
	"fmt"

	"repro/internal/cuda"
	"repro/internal/perm"
	"repro/internal/tile"
)

// ErrMismatch reports grids whose geometry prevents comparing tiles.
var ErrMismatch = errors.New("metric: grid geometry mismatch")

// Metric selects the per-pixel error accumulated by Eq. (1).
type Metric int

// Supported per-pixel error functions.
const (
	// L1 is the paper's Σ|e_ij| (sum of absolute differences).
	L1 Metric = iota
	// L2 is the sum of squared differences, the usual alternative; the
	// paper notes the method only depends on the error function.
	L2
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case L1:
		return "L1"
	case L2:
		return "L2"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Valid reports whether m is a known metric.
func (m Metric) Valid() bool { return m == L1 || m == L2 }

// Cost is a single tile-pair error. For M ≤ 181 even L2 fits: the worst case
// is M²·255² = 181²·65025 < 2³¹.
type Cost = int32

// MaxTileSide bounds M so that a single tile error cannot overflow Cost
// under either metric.
const MaxTileSide = 181

// TileError computes Eq. (1) between two flattened tiles of equal length.
func TileError(a, b []uint8, m Metric) Cost {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: TileError on %d vs %d pixels", len(a), len(b)))
	}
	switch m {
	case L2:
		var sum int64
		for i, p := range a {
			d := int64(p) - int64(b[i])
			sum += d * d
		}
		return Cost(sum)
	default:
		var sum int64
		for i, p := range a {
			d := int64(p) - int64(b[i])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return Cost(sum)
	}
}

// Matrix is the dense S×S cost matrix: At(u, v) = E(I_u, T_v), input tile u
// against target position v, row-major by u.
type Matrix struct {
	S int
	W []Cost
}

// NewMatrix allocates a zero S×S matrix.
func NewMatrix(s int) *Matrix {
	if s <= 0 {
		panic(fmt.Sprintf("metric: NewMatrix(%d)", s))
	}
	return &Matrix{S: s, W: make([]Cost, s*s)}
}

// At returns E(I_u, T_v).
func (m *Matrix) At(u, v int) Cost { return m.W[u*m.S+v] }

// Set writes E(I_u, T_v).
func (m *Matrix) Set(u, v int, c Cost) { m.W[u*m.S+v] = c }

// Row returns row u (errors of input tile u against every target position).
func (m *Matrix) Row(u int) []Cost { return m.W[u*m.S : (u+1)*m.S] }

// Total evaluates Eq. (2) for rearrangement p: Σ_v E(I_{p[v]}, T_v).
// p must have length S.
func (m *Matrix) Total(p perm.Perm) int64 {
	if len(p) != m.S {
		panic(fmt.Sprintf("metric: Total with %d-element permutation on S=%d", len(p), m.S))
	}
	var sum int64
	for v, u := range p {
		sum += int64(m.W[u*m.S+v])
	}
	return sum
}

// Equal reports whether two matrices are identical (used by tests to check
// that every builder computes the same Step-2 result).
func (m *Matrix) Equal(o *Matrix) bool {
	if m.S != o.S {
		return false
	}
	for i, w := range m.W {
		if o.W[i] != w {
			return false
		}
	}
	return true
}

// checkGrids validates that the input and target grids are comparable.
func checkGrids(in, tgt *tile.Grid) error {
	if in.M != tgt.M || in.Cols != tgt.Cols || in.Rows != tgt.Rows {
		return fmt.Errorf("metric: input %dx%d tiles of %d vs target %dx%d tiles of %d: %w",
			in.Cols, in.Rows, in.M, tgt.Cols, tgt.Rows, tgt.M, ErrMismatch)
	}
	if in.M > MaxTileSide {
		return fmt.Errorf("metric: tile side %d exceeds %d (Cost overflow): %w", in.M, MaxTileSide, ErrMismatch)
	}
	return nil
}

// BuildSerial computes the full cost matrix on a single core — the paper's
// CPU reference for Table II. Tiles are flattened first so the S² inner
// loops stream contiguous memory.
func BuildSerial(in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 := in.M * in.M
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := NewMatrix(s)
	for u := 0; u < s; u++ {
		tu := fin[u*m2 : (u+1)*m2]
		row := out.Row(u)
		for v := 0; v < s; v++ {
			row[v] = TileError(tu, ftgt[v*m2:(v+1)*m2], m)
		}
	}
	return out, nil
}

// BuildDevice computes the cost matrix with the paper's GPU decomposition
// (§V): S blocks are launched; block u copies input tile I_u into shared
// memory, then its threads cooperatively produce E(I_u, T_v) for all v via a
// thread-stride loop over target tiles. One kernel launch, synchronous.
func BuildDevice(dev *cuda.Device, in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 := in.M * in.M
	fin := in.Flatten()   // global memory: input tiles
	ftgt := tgt.Flatten() // global memory: target tiles
	out := NewMatrix(s)

	// Threads per block: one thread per target tile row of work, capped at a
	// CUDA-typical 256. With the block's threads serialised on one worker
	// the count only shapes the stride loops, but keeping the canonical
	// configuration keeps the kernel a faithful port.
	threads := 256
	if threads > s {
		threads = s
	}
	dev.Launch(s, threads, func(b *cuda.Block) {
		u := b.Idx
		// Stage I_u in shared memory (the paper's first kernel phase). The
		// copy is cooperative: each thread moves a strided subset.
		sh := b.Shared(m2)
		src := fin[u*m2 : (u+1)*m2]
		b.StrideLoop(m2, func(i int) { sh[i] = src[i] })
		// __syncthreads() boundary: StrideLoop returning is the barrier.
		row := out.Row(u)
		b.StrideLoop(s, func(v int) {
			row[v] = TileError(sh, ftgt[v*m2:(v+1)*m2], m)
		})
	})
	return out, nil
}

// BuildRowsParallel computes the matrix with plain row-level multicore
// parallelism (no CUDA structure) — the "what a CPU programmer would write"
// baseline used by the ablation benches to isolate the cost of the
// kernel-shaped decomposition.
func BuildRowsParallel(dev *cuda.Device, in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 := in.M * in.M
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := NewMatrix(s)
	dev.LaunchRange(s, func(u int) {
		tu := fin[u*m2 : (u+1)*m2]
		row := out.Row(u)
		for v := 0; v < s; v++ {
			row[v] = TileError(tu, ftgt[v*m2:(v+1)*m2], m)
		}
	})
	return out, nil
}
