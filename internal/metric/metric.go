// Package metric implements the paper's tile error function and the S×S
// cost matrix of Step 2.
//
// Eq. (1) defines the error between input tile I_u and target tile T_v as
// the sum of absolute per-pixel differences; Eq. (2) sums E(r(I_u), T_u)
// over all positions. The S×S matrix of all pairwise errors is the weight
// matrix of the bipartite matching reduction (§III) and the lookup table of
// the local search (§IV), and computing it is the paper's first GPU target
// (§V): S blocks, block u staging tile I_u in shared memory and producing
// row u of the matrix.
package metric

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cuda"
	"repro/internal/perm"
	"repro/internal/tile"
)

// ErrMismatch reports grids whose geometry prevents comparing tiles.
var ErrMismatch = errors.New("metric: grid geometry mismatch")

// Metric selects the per-pixel error accumulated by Eq. (1).
type Metric int

// Supported per-pixel error functions.
const (
	// L1 is the paper's Σ|e_ij| (sum of absolute differences).
	L1 Metric = iota
	// L2 is the sum of squared differences, the usual alternative; the
	// paper notes the method only depends on the error function.
	L2
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case L1:
		return "L1"
	case L2:
		return "L2"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Valid reports whether m is a known metric.
func (m Metric) Valid() bool { return m == L1 || m == L2 }

// Cost is a single tile-pair error. For M ≤ 181 even L2 fits: the worst case
// is M²·255² = 181²·65025 < 2³¹.
type Cost = int32

// MaxTileSide bounds M so that a single tile error cannot overflow Cost
// under either metric.
const MaxTileSide = 181

// TileError computes Eq. (1) between two flattened tiles of equal length.
// Tiles of at least swarMinBytes pixels take the SWAR word-at-a-time path
// (see swar.go); the result is bit-identical to TileErrorScalar on every
// input, which the differential fuzz target FuzzTileErrorSWAR enforces.
func TileError(a, b []uint8, m Metric) Cost {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: TileError on %d vs %d pixels", len(a), len(b)))
	}
	if len(a) >= swarMinBytes {
		if m == L2 {
			return Cost(tileErrorL2SWAR(a, b))
		}
		return Cost(tileErrorL1SWAR(a, b))
	}
	return TileErrorScalar(a, b, m)
}

// TileErrorScalar is the byte-at-a-time transcription of Eq. (1) — the
// reference oracle the vectorized kernels are differentially tested against,
// and the builder backing BuilderScalar's before/after ablation column.
func TileErrorScalar(a, b []uint8, m Metric) Cost {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: TileErrorScalar on %d vs %d pixels", len(a), len(b)))
	}
	switch m {
	case L2:
		var sum int64
		for i, p := range a {
			d := int64(p) - int64(b[i])
			sum += d * d
		}
		return Cost(sum)
	default:
		var sum int64
		for i, p := range a {
			d := int64(p) - int64(b[i])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return Cost(sum)
	}
}

// Matrix is the dense S×S cost matrix: At(u, v) = E(I_u, T_v), input tile u
// against target position v, row-major by u.
type Matrix struct {
	S int
	W []Cost
}

// NewMatrix allocates a zero S×S matrix.
func NewMatrix(s int) *Matrix {
	if s <= 0 {
		panic(fmt.Sprintf("metric: NewMatrix(%d)", s))
	}
	return &Matrix{S: s, W: make([]Cost, s*s)}
}

// At returns E(I_u, T_v).
func (m *Matrix) At(u, v int) Cost { return m.W[u*m.S+v] }

// Set writes E(I_u, T_v).
func (m *Matrix) Set(u, v int, c Cost) { m.W[u*m.S+v] = c }

// Row returns row u (errors of input tile u against every target position).
func (m *Matrix) Row(u int) []Cost { return m.W[u*m.S : (u+1)*m.S] }

// Total evaluates Eq. (2) for rearrangement p: Σ_v E(I_{p[v]}, T_v).
// p must have length S.
func (m *Matrix) Total(p perm.Perm) int64 {
	if len(p) != m.S {
		panic(fmt.Sprintf("metric: Total with %d-element permutation on S=%d", len(p), m.S))
	}
	var sum int64
	for v, u := range p {
		sum += int64(m.W[u*m.S+v])
	}
	return sum
}

// Equal reports whether two matrices are identical (used by tests to check
// that every builder computes the same Step-2 result).
func (m *Matrix) Equal(o *Matrix) bool {
	if m.S != o.S {
		return false
	}
	for i, w := range m.W {
		if o.W[i] != w {
			return false
		}
	}
	return true
}

// checkGrids validates that the input and target grids are comparable.
func checkGrids(in, tgt *tile.Grid) error {
	if in.M != tgt.M || in.Cols != tgt.Cols || in.Rows != tgt.Rows {
		return fmt.Errorf("metric: input %dx%d tiles of %d vs target %dx%d tiles of %d: %w",
			in.Cols, in.Rows, in.M, tgt.Cols, tgt.Rows, tgt.M, ErrMismatch)
	}
	if in.M > MaxTileSide {
		return fmt.Errorf("metric: tile side %d exceeds %d (Cost overflow): %w", in.M, MaxTileSide, ErrMismatch)
	}
	return nil
}

// BuildSerial computes the full cost matrix on a single core — the paper's
// CPU reference for Table II. Tiles are flattened first so the S² inner
// loops stream contiguous memory; the inner loop is the SWAR TileError.
func BuildSerial(in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 := in.M * in.M
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := NewMatrix(s)
	for u := 0; u < s; u++ {
		tu := fin[u*m2 : (u+1)*m2]
		row := out.Row(u)
		for v := 0; v < s; v++ {
			row[v] = TileError(tu, ftgt[v*m2:(v+1)*m2], m)
		}
	}
	return out, nil
}

// BuildSerialScalar is BuildSerial with the scalar reference kernel — the
// "before" column of the vectorization ablation and the oracle the builder
// equivalence tests compare everything against.
func BuildSerialScalar(in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 := in.M * in.M
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := NewMatrix(s)
	for u := 0; u < s; u++ {
		tu := fin[u*m2 : (u+1)*m2]
		row := out.Row(u)
		for v := 0; v < s; v++ {
			row[v] = TileErrorScalar(tu, ftgt[v*m2:(v+1)*m2], m)
		}
	}
	return out, nil
}

// Cache-blocking budgets for BuildBlocked. The target-tile panel is sized to
// stay resident in L2 while every input row of the block streams over it;
// the input panel keeps a handful of tiles hot in L1. Both are byte budgets
// divided by the tile size at run time, so small tiles get wide panels and
// 181×181 tiles degrade gracefully to a few tiles per panel.
const (
	blockedTargetBytes = 128 << 10
	blockedInputBytes  = 16 << 10
)

// blockSpan converts a byte budget into a tile-count block side for m2-byte
// tiles, clamped to [1, s].
func blockSpan(budget, m2, s int) int {
	b := budget / m2
	if b < 1 {
		b = 1
	}
	if b > s {
		b = s
	}
	return b
}

// BuildBlocked computes the matrix with a cache-blocked loop nest: the S×S
// pair space is tiled into (input panel) × (target panel) blocks so each
// target panel is loaded from memory once per input panel instead of once
// per input row. The arithmetic is identical to BuildSerial's — every entry
// is one TileError call — so the result is bit-identical; only the visit
// order changes. This is the fastest single-core builder on matrices too
// large for the target grid to stay cached (S·M² beyond ~L2).
func BuildBlocked(in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 := in.M * in.M
	fin := in.Flatten()
	ftgt := tgt.Flatten()
	out := NewMatrix(s)
	bv := blockSpan(blockedTargetBytes, m2, s)
	bu := blockSpan(blockedInputBytes, m2, s)
	for v0 := 0; v0 < s; v0 += bv {
		v1 := v0 + bv
		if v1 > s {
			v1 = s
		}
		for u0 := 0; u0 < s; u0 += bu {
			u1 := u0 + bu
			if u1 > s {
				u1 = s
			}
			for u := u0; u < u1; u++ {
				tu := fin[u*m2 : (u+1)*m2]
				row := out.Row(u)
				for v := v0; v < v1; v++ {
					row[v] = TileError(tu, ftgt[v*m2:(v+1)*m2], m)
				}
			}
		}
	}
	return out, nil
}

// Kernel names under which the device builders launch, exported so fault
// plans (cuda.FaultPlan.Kernel) can target Step 2 specifically.
const (
	// KernelCostMatrix is BuildDevice's §V kernel.
	KernelCostMatrix = "cost-matrix"
	// KernelCostMatrixRows is BuildRowsParallel's row-parallel baseline.
	KernelCostMatrixRows = "cost-matrix-rows"
)

// deviceKernelSetup validates the grids and returns the launch geometry and
// the kernel closure shared by BuildDevice and BuildDeviceContext. The
// kernel fully overwrites out, so re-launching after a failed (injected)
// attempt is idempotent — the property the retry layer relies on.
func deviceKernelSetup(in, tgt *tile.Grid, m Metric) (out *Matrix, s, threads int, kernel func(b *cuda.Block), err error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, 0, 0, nil, err
	}
	if !m.Valid() {
		return nil, 0, 0, nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s = in.S()
	m2 := in.M * in.M
	fin := in.Flatten()   // global memory: input tiles
	ftgt := tgt.Flatten() // global memory: target tiles
	out = NewMatrix(s)

	// Threads per block: one thread per target tile row of work, capped at a
	// CUDA-typical 256. With the block's threads serialised on one worker
	// the count only shapes the stride loops, but keeping the canonical
	// configuration keeps the kernel a faithful port.
	threads = 256
	if threads > s {
		threads = s
	}
	kernel = func(b *cuda.Block) {
		u := b.Idx
		// Stage I_u in shared memory (the paper's first kernel phase). The
		// copy is cooperative: each thread moves a strided subset.
		sh := b.Shared(m2)
		src := fin[u*m2 : (u+1)*m2]
		b.StrideLoop(m2, func(i int) { sh[i] = src[i] })
		// __syncthreads() boundary: StrideLoop returning is the barrier.
		row := out.Row(u)
		b.StrideLoop(s, func(v int) {
			row[v] = TileError(sh, ftgt[v*m2:(v+1)*m2], m)
		})
	}
	return out, s, threads, kernel, nil
}

// BuildDevice computes the cost matrix with the paper's GPU decomposition
// (§V): S blocks are launched; block u copies input tile I_u into shared
// memory, then its threads cooperatively produce E(I_u, T_v) for all v via a
// thread-stride loop over target tiles. One kernel launch, synchronous.
func BuildDevice(dev *cuda.Device, in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	out, s, threads, kernel, err := deviceKernelSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	dev.Launch(s, threads, kernel)
	return out, nil
}

// BuildDeviceContext is BuildDevice through the fault-aware launch path:
// injected or real device faults return as typed errors
// (cuda.ErrLaunchFailed etc.) instead of running the kernel, and the launch
// is skipped when ctx is already dead. A healthy launch is bit-identical to
// BuildDevice.
func BuildDeviceContext(ctx context.Context, dev *cuda.Device, in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	out, s, threads, kernel, err := deviceKernelSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	if err := dev.LaunchErr(ctx, KernelCostMatrix, s, threads, kernel); err != nil {
		return nil, err
	}
	return out, nil
}

// BuildRowsParallel computes the matrix with plain row-level multicore
// parallelism (no CUDA structure) — the "what a CPU programmer would write"
// baseline used by the ablation benches to isolate the cost of the
// kernel-shaped decomposition.
func BuildRowsParallel(dev *cuda.Device, in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	out, _, _, _, body, err := rowsSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	dev.LaunchRange(out.S, body)
	return out, nil
}

// rowsSetup shares the validation and row body between BuildRowsParallel and
// BuildRowsParallelContext. Like the device kernel, the body overwrites
// whole rows, so replaying a failed launch is idempotent.
func rowsSetup(in, tgt *tile.Grid, m Metric) (out *Matrix, fin, ftgt []uint8, m2 int, body func(u int), err error) {
	if err := checkGrids(in, tgt); err != nil {
		return nil, nil, nil, 0, nil, err
	}
	if !m.Valid() {
		return nil, nil, nil, 0, nil, fmt.Errorf("metric: invalid metric %v", m)
	}
	s := in.S()
	m2 = in.M * in.M
	fin = in.Flatten()
	ftgt = tgt.Flatten()
	out = NewMatrix(s)
	body = func(u int) {
		tu := fin[u*m2 : (u+1)*m2]
		row := out.Row(u)
		for v := 0; v < s; v++ {
			row[v] = TileError(tu, ftgt[v*m2:(v+1)*m2], m)
		}
	}
	return out, fin, ftgt, m2, body, nil
}

// BuildRowsParallelContext is BuildRowsParallel through the fault-aware
// execute path, mirroring BuildDeviceContext.
func BuildRowsParallelContext(ctx context.Context, dev *cuda.Device, in, tgt *tile.Grid, m Metric) (*Matrix, error) {
	out, _, _, _, body, err := rowsSetup(in, tgt, m)
	if err != nil {
		return nil, err
	}
	if err := dev.ExecuteErr(ctx, KernelCostMatrixRows, out.S, body); err != nil {
		return nil, err
	}
	return out, nil
}

// Builder names a Step-2 matrix construction strategy. All builders produce
// bit-identical matrices (enforced by TestBuildersEquivalent); they differ
// only in loop order and parallel decomposition.
type Builder string

// The selectable builders.
const (
	// BuilderAuto picks BuilderDevice when a device is supplied and
	// BuilderBlocked otherwise.
	BuilderAuto Builder = ""
	// BuilderSerial is the paper's single-core reference loop.
	BuilderSerial Builder = "serial"
	// BuilderScalar is BuilderSerial with the byte-at-a-time oracle kernel —
	// the pre-vectorization "before" for ablation benches.
	BuilderScalar Builder = "scalar"
	// BuilderBlocked is the cache-blocked single-core loop nest.
	BuilderBlocked Builder = "blocked"
	// BuilderDevice is the paper's §V kernel decomposition on the virtual
	// accelerator.
	BuilderDevice Builder = "device"
	// BuilderRows is plain row-level multicore parallelism on the device's
	// worker pool, without the kernel shape.
	BuilderRows Builder = "rows-parallel"
)

// Builders lists the named builders in stable order (BuilderAuto excluded).
func Builders() []Builder {
	return []Builder{BuilderSerial, BuilderScalar, BuilderBlocked, BuilderDevice, BuilderRows}
}

// ParseBuilder resolves a name; the empty string is BuilderAuto.
func ParseBuilder(name string) (Builder, error) {
	if name == "" || name == "auto" {
		return BuilderAuto, nil
	}
	for _, b := range Builders() {
		if string(b) == name {
			return b, nil
		}
	}
	return "", fmt.Errorf("metric: unknown builder %q", name)
}

// NeedsDevice reports whether the builder runs on the device worker pool.
func (b Builder) NeedsDevice() bool { return b == BuilderDevice || b == BuilderRows }

// Build dispatches to the named builder. BuilderAuto resolves to
// BuilderDevice when dev is non-nil and BuilderBlocked otherwise; the
// device-backed builders require dev.
func Build(dev *cuda.Device, in, tgt *tile.Grid, m Metric, b Builder) (*Matrix, error) {
	if b == BuilderAuto {
		if dev != nil {
			b = BuilderDevice
		} else {
			b = BuilderBlocked
		}
	}
	if b.NeedsDevice() && dev == nil {
		return nil, fmt.Errorf("metric: builder %q requires a device", b)
	}
	switch b {
	case BuilderSerial:
		return BuildSerial(in, tgt, m)
	case BuilderScalar:
		return BuildSerialScalar(in, tgt, m)
	case BuilderBlocked:
		return BuildBlocked(in, tgt, m)
	case BuilderDevice:
		return BuildDevice(dev, in, tgt, m)
	case BuilderRows:
		return BuildRowsParallel(dev, in, tgt, m)
	}
	return nil, fmt.Errorf("metric: unknown builder %q", b)
}
