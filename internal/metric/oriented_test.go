package metric

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tile"
)

func TestOrientedNeverWorseThanUpright(t *testing.T) {
	in, tg := grids(t, 64, 8)
	plain, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	oriented, err := BuildOriented(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for i, c := range oriented.W {
		if c > plain.W[i] {
			t.Fatalf("entry %d: oriented cost %d above upright %d", i, c, plain.W[i])
		}
		if c < plain.W[i] {
			improved++
		}
	}
	if improved == 0 {
		t.Error("no pair improved under any orientation — oriented search is inert")
	}
	// Where the best orientation is upright, costs must match exactly.
	for i, o := range oriented.Orient {
		if o == imgutil.Upright && oriented.W[i] != plain.W[i] {
			t.Fatalf("entry %d: upright chosen but cost %d != %d", i, oriented.W[i], plain.W[i])
		}
	}
}

func TestOrientedCostMatchesMaterialisedTile(t *testing.T) {
	// The recorded best cost must equal TileError of the actually-oriented
	// tile — the kernel's index arithmetic against the reference transform.
	in, tg := grids(t, 32, 8)
	oriented, err := BuildOriented(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	for _, uv := range [][2]int{{0, 0}, {3, 9}, {14, 2}, {7, 7}} {
		u, v := uv[0], uv[1]
		o := oriented.BestOrientation(u, v)
		rotated := in.Tile(u).Orient(o)
		want := TileError(rotated.Pix, tg.Tile(v).Pix, L1)
		if got := oriented.At(u, v); got != want {
			t.Errorf("(%d,%d) orientation %v: cost %d, materialised %d", u, v, o, got, want)
		}
	}
}

func TestOrientedSerialAndDeviceAgree(t *testing.T) {
	in, tg := grids(t, 32, 8)
	want, err := BuildOriented(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := BuildOrientedDevice(cuda.New(workers), in, tg, L1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Matrix.Equal(&want.Matrix) {
			t.Errorf("workers=%d: cost matrices differ", workers)
		}
		for i, o := range got.Orient {
			if o != want.Orient[i] {
				t.Errorf("workers=%d: orientation %d differs", workers, i)
				break
			}
		}
	}
}

func TestOrientedL2(t *testing.T) {
	in, tg := grids(t, 32, 8)
	oriented, err := BuildOriented(in, tg, L2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildSerial(in, tg, L2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range oriented.W {
		if c > plain.W[i] {
			t.Fatalf("L2 entry %d: oriented %d above upright %d", i, c, plain.W[i])
		}
	}
}

func TestOrientationsVector(t *testing.T) {
	in, tg := grids(t, 32, 8)
	oriented, err := BuildOriented(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	p := perm.Random(oriented.S, 3)
	vec, err := oriented.Orientations(p)
	if err != nil {
		t.Fatal(err)
	}
	for v, o := range vec {
		if o != oriented.BestOrientation(p[v], v) {
			t.Fatalf("position %d: orientation %v, want %v", v, o, oriented.BestOrientation(p[v], v))
		}
	}
	if _, err := oriented.Orientations(perm.Perm{0, 1}); err == nil {
		t.Error("accepted short assignment")
	}
	if _, err := oriented.Orientations(make(perm.Perm, oriented.S)); err == nil {
		t.Error("accepted non-bijection")
	}
}

func TestOrientedValidation(t *testing.T) {
	in, _ := grids(t, 32, 8)
	_, tgBad := grids(t, 32, 4)
	if _, err := BuildOriented(in, tgBad, L1); err == nil {
		t.Error("accepted mismatched grids")
	}
	_, tg := grids(t, 32, 8)
	if _, err := BuildOriented(in, tg, Metric(9)); err == nil {
		t.Error("accepted invalid metric")
	}
}

func TestOrientedOnSymmetricTilesPrefersUpright(t *testing.T) {
	// Constant tiles are invariant under every orientation; the scan keeps
	// the first (upright) candidate, so the orientation matrix must be all
	// upright and costs equal to the plain matrix.
	img := imgutil.NewGray(16, 16)
	img.Fill(80)
	tgt := imgutil.NewGray(16, 16)
	tgt.Fill(90)
	in, _ := tile.NewGrid(img, 4)
	tg, _ := tile.NewGrid(tgt, 4)
	oriented, err := BuildOriented(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range oriented.Orient {
		if o != imgutil.Upright {
			t.Fatalf("entry %d: orientation %v on constant tiles", i, o)
		}
	}
}

func BenchmarkBuildOriented256(b *testing.B) {
	in, err := tile.NewGridByCount(synth.MustGenerate(synth.Lena, 128), 16)
	if err != nil {
		b.Fatal(err)
	}
	tg, err := tile.NewGridByCount(synth.MustGenerate(synth.Sailboat, 128), 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildOriented(in, tg, L1); err != nil {
			b.Fatal(err)
		}
	}
}
