package metric

import (
	"testing"
	"testing/quick"

	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tile"
)

func grids(t testing.TB, n, m int) (*tile.Grid, *tile.Grid) {
	t.Helper()
	in, err := tile.NewGrid(synth.MustGenerate(synth.Lena, n), m)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tile.NewGrid(synth.MustGenerate(synth.Sailboat, n), m)
	if err != nil {
		t.Fatal(err)
	}
	return in, tg
}

func TestTileErrorL1Known(t *testing.T) {
	a := []uint8{10, 20, 30, 40}
	b := []uint8{12, 18, 30, 45}
	if got := TileError(a, b, L1); got != 9 {
		t.Errorf("L1 = %d, want 9", got)
	}
	if got := TileError(a, b, L2); got != 4+4+0+25 {
		t.Errorf("L2 = %d, want 33", got)
	}
}

func TestTileErrorPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched tiles")
		}
	}()
	TileError([]uint8{1}, []uint8{1, 2}, L1)
}

func TestTileErrorProperties(t *testing.T) {
	// Symmetry, zero-on-self, non-negativity, L1 triangle inequality.
	f := func(s1, s2, s3 uint64) bool {
		a := randTile(s1, 16)
		b := randTile(s2, 16)
		c := randTile(s3, 16)
		ab := TileError(a, b, L1)
		if ab != TileError(b, a, L1) || ab < 0 {
			return false
		}
		if TileError(a, a, L1) != 0 || TileError(a, a, L2) != 0 {
			return false
		}
		return int64(TileError(a, c, L1)) <= int64(ab)+int64(TileError(b, c, L1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randTile(seed uint64, n int) []uint8 {
	out := make([]uint8, n)
	s := seed | 1
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = uint8(s >> 32)
	}
	return out
}

func TestBuildSerialMatchesDirectComputation(t *testing.T) {
	in, tg := grids(t, 32, 8)
	m, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check a handful of entries against whole-tile AbsDiffSum.
	for _, uv := range [][2]int{{0, 0}, {3, 7}, {15, 2}, {9, 9}} {
		u, v := uv[0], uv[1]
		tu := in.Tile(u)
		tv := tg.Tile(v)
		want, err := tu.AbsDiffSum(tv)
		if err != nil {
			t.Fatal(err)
		}
		if int64(m.At(u, v)) != want {
			t.Errorf("At(%d, %d) = %d, want %d", u, v, m.At(u, v), want)
		}
	}
}

func TestBuildersAgree(t *testing.T) {
	// Serial, device-kernel and rows-parallel builders must produce the
	// identical matrix, for both metrics and several worker counts.
	in, tg := grids(t, 64, 8)
	for _, met := range []Metric{L1, L2} {
		want, err := BuildSerial(in, tg, met)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			dev := cuda.New(workers)
			got, err := BuildDevice(dev, in, tg, met)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("BuildDevice(workers=%d, %v) differs from serial", workers, met)
			}
			got, err = BuildRowsParallel(dev, in, tg, met)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("BuildRowsParallel(workers=%d, %v) differs from serial", workers, met)
			}
		}
	}
}

func TestBuildRejectsMismatchedGrids(t *testing.T) {
	in, _ := grids(t, 32, 8)
	_, tg := grids(t, 32, 4)
	if _, err := BuildSerial(in, tg, L1); err == nil {
		t.Error("accepted mismatched tile sizes")
	}
	if _, err := BuildDevice(cuda.New(1), in, tg, L1); err == nil {
		t.Error("device builder accepted mismatched tile sizes")
	}
}

func TestBuildRejectsInvalidMetric(t *testing.T) {
	in, tg := grids(t, 32, 8)
	if _, err := BuildSerial(in, tg, Metric(9)); err == nil {
		t.Error("accepted invalid metric")
	}
}

func TestBuildRejectsOversizedTiles(t *testing.T) {
	big := imgutil.NewGray(364, 364)
	in, err := tile.NewGrid(big, 182) // > MaxTileSide
	if err != nil {
		t.Fatal(err)
	}
	tg, _ := tile.NewGrid(big.Clone(), 182)
	if _, err := BuildSerial(in, tg, L1); err == nil {
		t.Error("accepted tile side beyond overflow bound")
	}
}

func TestMatrixTotalIdentityVsPermuted(t *testing.T) {
	in, tg := grids(t, 32, 8)
	m, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	id := m.Total(perm.Identity(m.S))
	var want int64
	for v := 0; v < m.S; v++ {
		want += int64(m.At(v, v))
	}
	if id != want {
		t.Errorf("Total(identity) = %d, want trace %d", id, want)
	}
}

func TestTotalEqualsImageLevelError(t *testing.T) {
	// Eq. (2) on the matrix must equal the whole-image AbsDiffSum of the
	// assembled mosaic versus the target — the invariant connecting the
	// cost matrix to what the viewer sees.
	in, tg := grids(t, 64, 8)
	m, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		p := perm.Random(m.S, seed)
		mosaic, err := in.Assemble(p)
		if err != nil {
			return false
		}
		imgErr, err := mosaic.AbsDiffSum(tg.Img)
		if err != nil {
			return false
		}
		return m.Total(p) == imgErr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIdenticalImagesGiveZeroDiagonal(t *testing.T) {
	img := synth.MustGenerate(synth.Plasma, 32)
	in, _ := tile.NewGrid(img, 8)
	tg, _ := tile.NewGrid(img.Clone(), 8)
	m, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.S; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("E(I_%d, T_%d) = %d on identical images", i, i, m.At(i, i))
		}
	}
	if m.Total(perm.Identity(m.S)) != 0 {
		t.Error("identity total nonzero on identical images")
	}
}

func TestMetricStringAndValid(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" {
		t.Error("metric names wrong")
	}
	if !L1.Valid() || !L2.Valid() || Metric(5).Valid() {
		t.Error("Valid() wrong")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Error("Set/At broken")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 42 {
		t.Error("Row broken")
	}
	if m.Equal(NewMatrix(4)) {
		t.Error("matrices of different S reported equal")
	}
}

func benchBuild(b *testing.B, n, m int, build func(in, tg *tile.Grid) (*Matrix, error)) {
	in, tg := grids(b, n, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build(in, tg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSerial512S1024(b *testing.B) {
	benchBuild(b, 512, 16, func(in, tg *tile.Grid) (*Matrix, error) { return BuildSerial(in, tg, L1) })
}

func BenchmarkBuildDevice512S1024(b *testing.B) {
	dev := cuda.New(0)
	benchBuild(b, 512, 16, func(in, tg *tile.Grid) (*Matrix, error) { return BuildDevice(dev, in, tg, L1) })
}

func BenchmarkBuildRowsParallel512S1024(b *testing.B) {
	dev := cuda.New(0)
	benchBuild(b, 512, 16, func(in, tg *tile.Grid) (*Matrix, error) { return BuildRowsParallel(dev, in, tg, L1) })
}
