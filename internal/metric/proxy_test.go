package metric

import (
	"testing"

	"repro/internal/imgutil"
	"repro/internal/perm"
	"repro/internal/tile"
)

func TestProxyFullResolutionIsExact(t *testing.T) {
	// d = M means no downsampling: the proxy must equal the exact matrix.
	in, tg := grids(t, 32, 8)
	exact, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := BuildProxy(in, tg, L1, in.M)
	if err != nil {
		t.Fatal(err)
	}
	if !proxy.Equal(exact) {
		t.Error("full-resolution proxy differs from the exact matrix")
	}
}

func TestProxyValidation(t *testing.T) {
	in, tg := grids(t, 32, 8)
	for _, d := range []int{0, -1, 3, 16} { // 3 does not divide 8; 16 > 8
		if _, err := BuildProxy(in, tg, L1, d); err == nil {
			t.Errorf("accepted proxy resolution %d for tile side 8", d)
		}
	}
	if _, err := BuildProxy(in, tg, Metric(9), 4); err == nil {
		t.Error("accepted invalid metric")
	}
}

func TestProxyOnConstantTilesIsExact(t *testing.T) {
	// Tiles that are each one flat intensity are perfectly represented at
	// any resolution, so the scaled proxy equals the exact cost.
	mk := func(seed uint64) *tile.Grid {
		img := imgutil.NewGray(32, 32)
		g, err := tile.NewGrid(img, 8)
		if err != nil {
			t.Fatal(err)
		}
		s := seed | 1
		for i := 0; i < g.S(); i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := uint8(s >> 32)
			for r := 0; r < g.M; r++ {
				row := g.Row(i, r)
				for x := range row {
					row[x] = v
				}
			}
		}
		return g
	}
	in := mk(5)
	tg := mk(9)
	exact, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{1, 2, 4} {
		proxy, err := BuildProxy(in, tg, L1, d)
		if err != nil {
			t.Fatal(err)
		}
		if !proxy.Equal(exact) {
			t.Errorf("d=%d: proxy differs on piecewise-constant tiles", d)
		}
	}
}

func TestProxyRankingCorrelatesWithExact(t *testing.T) {
	// The proxy's purpose is preserving the cost ordering. Over random pair
	// comparisons, proxy and exact must agree far above chance.
	in, tg := grids(t, 64, 8)
	exact, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := BuildProxy(in, tg, L1, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := exact.S * exact.S
	agree, total := 0, 0
	state := uint64(12345)
	next := func() int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for i := 0; i < 5000; i++ {
		a, b := next(), next()
		if exact.W[a] == exact.W[b] {
			continue
		}
		total++
		if (exact.W[a] < exact.W[b]) == (proxy.W[a] < proxy.W[b]) {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("degenerate sample")
	}
	if rate := float64(agree) / float64(total); rate < 0.85 {
		t.Errorf("proxy ranking agreement only %.2f", rate)
	}
}

func TestProxyQualityGapIsBounded(t *testing.T) {
	// Solving Step 3 on the proxy and evaluating on the exact matrix must
	// stay within a modest factor of solving on the exact matrix directly —
	// the ablation claim from DESIGN.md.
	in, tg := grids(t, 64, 8)
	exact, err := BuildSerial(in, tg, L1)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := BuildProxy(in, tg, L1, 4)
	if err != nil {
		t.Fatal(err)
	}
	pExact := greedyLocal(exact)
	pProxy := greedyLocal(proxy)
	errExact := exact.Total(pExact)
	errProxy := exact.Total(pProxy) // proxy decision, exact evaluation
	if errProxy < errExact {
		// Possible but rare; the important bound is the other direction.
		return
	}
	if float64(errProxy) > 1.35*float64(errExact) {
		t.Errorf("proxy-guided error %d more than 35%% above exact-guided %d", errProxy, errExact)
	}
}

// greedyLocal runs a simple swap sweep to convergence (a local copy to avoid
// importing localsearch and creating an import cycle in tests).
func greedyLocal(m *Matrix) perm.Perm {
	s := m.S
	p := perm.Identity(s)
	for {
		swapped := false
		for x := 0; x < s; x++ {
			for y := x + 1; y < s; y++ {
				keep := int64(m.W[p[x]*s+x]) + int64(m.W[p[y]*s+y])
				swp := int64(m.W[p[y]*s+x]) + int64(m.W[p[x]*s+y])
				if keep > swp {
					p[x], p[y] = p[y], p[x]
					swapped = true
				}
			}
		}
		if !swapped {
			return p
		}
	}
}

func BenchmarkBuildProxyD4S1024(b *testing.B) {
	in, tg := grids(b, 512, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildProxy(in, tg, L1, 4); err != nil {
			b.Fatal(err)
		}
	}
}
