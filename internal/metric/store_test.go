package metric_test

// The differential oracle battery for the columnar store path: every named
// builder, under every metric and both orientation modes, must produce a
// cost matrix bit-identical to the legacy crop-path build — and, since the
// search is deterministic given a matrix, an identical final permutation.
// Scenes are randomized (seeded synth pairs) so the equivalence is not an
// artifact of one input.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tile"
	"repro/internal/tilestore"
)

// scenePair is one randomized test scene: two synth images on a shared
// geometry.
type scenePair struct {
	name string
	n, m int
	in   synth.Scene
	tgt  synth.Scene
}

func storeScenes() []scenePair {
	return []scenePair{
		{"lena-sailboat-64", 64, 8, synth.Lena, synth.Sailboat},
		{"plasma-checker-48", 48, 6, synth.Plasma, synth.Checker},
		{"baboon-peppers-45", 45, 9, synth.Baboon, synth.Peppers}, // odd side → padded stride
	}
}

func (sc scenePair) build(t testing.TB) (inG, tgtG *tile.Grid, inS, tgtS *tilestore.Store) {
	t.Helper()
	inImg := synth.MustGenerate(sc.in, sc.n)
	tgtImg := synth.MustGenerate(sc.tgt, sc.n)
	var err error
	if inG, err = tile.NewGrid(inImg, sc.m); err != nil {
		t.Fatal(err)
	}
	if tgtG, err = tile.NewGrid(tgtImg, sc.m); err != nil {
		t.Fatal(err)
	}
	if inS, err = tilestore.FromImage(inImg, sc.m); err != nil {
		t.Fatal(err)
	}
	if tgtS, err = tilestore.FromImage(tgtImg, sc.m); err != nil {
		t.Fatal(err)
	}
	return inG, tgtG, inS, tgtS
}

// searchPerm runs the deterministic serial search on a matrix — the "final
// permutation" half of the oracle battery.
func searchPerm(t testing.TB, m *metric.Matrix) perm.Perm {
	t.Helper()
	p, _, err := localsearch.Serial(m, perm.Identity(m.S), localsearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTileStoreBuildersEquivalent is the differential oracle battery: for
// every (builder × metric × orientation) combination the store-backed build
// must be bit-identical to the legacy crop-path build of the same name —
// matrices AND the final permutations the search derives from them.
func TestTileStoreBuildersEquivalent(t *testing.T) {
	for _, sc := range storeScenes() {
		inG, tgtG, inS, tgtS := sc.build(t)
		for _, met := range []metric.Metric{metric.L1, metric.L2} {
			// Upright: every named builder plus auto, store vs crop path.
			for _, b := range append(metric.Builders(), metric.BuilderAuto) {
				t.Run(fmt.Sprintf("%s/%v/%s", sc.name, met, b), func(t *testing.T) {
					var dev *cuda.Device
					if b.NeedsDevice() || b == metric.BuilderAuto {
						dev = cuda.New(0)
					}
					want, err := metric.Build(dev, inG, tgtG, met, b)
					if err != nil {
						t.Fatal(err)
					}
					got, err := metric.BuildStore(dev, inS, tgtS, met, b)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatal("store-backed matrix differs from crop-path oracle")
					}
					if !searchPerm(t, got).Equal(searchPerm(t, want)) {
						t.Fatal("final permutations differ")
					}
				})
			}
			// Oriented: CPU and device variants against BuildOriented.
			t.Run(fmt.Sprintf("%s/%v/oriented", sc.name, met), func(t *testing.T) {
				want, err := metric.BuildOriented(inG, tgtG, met)
				if err != nil {
					t.Fatal(err)
				}
				got, err := metric.BuildOrientedStore(inS, tgtS, met)
				if err != nil {
					t.Fatal(err)
				}
				checkOrientedEqual(t, got, want)
				gotDev, err := metric.BuildOrientedStoreDevice(cuda.New(0), inS, tgtS, met)
				if err != nil {
					t.Fatal(err)
				}
				checkOrientedEqual(t, gotDev, want)
				if !searchPerm(t, &got.Matrix).Equal(searchPerm(t, &want.Matrix)) {
					t.Fatal("final permutations differ (oriented)")
				}
			})
		}
	}
}

func checkOrientedEqual(t *testing.T, got, want *metric.OrientedMatrix) {
	t.Helper()
	if !got.Matrix.Equal(&want.Matrix) {
		t.Fatal("oriented store-backed matrix differs from crop-path oracle")
	}
	for i := range got.Orient {
		if got.Orient[i] != want.Orient[i] {
			t.Fatalf("orientation[%d] = %v, want %v", i, got.Orient[i], want.Orient[i])
		}
	}
}

// TestBuildStoreShardedBitIdentical: splitting the matrix rows across 1..4
// concurrent devices must reproduce the single-device build exactly.
func TestBuildStoreShardedBitIdentical(t *testing.T) {
	sc := storeScenes()[0]
	_, _, inS, tgtS := sc.build(t)
	want, err := metric.BuildStoreDevice(cuda.New(0), inS, tgtS, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	for parts := 1; parts <= 4; parts++ {
		devs := make([]*cuda.Device, parts)
		for i := range devs {
			devs[i] = cuda.New(0)
		}
		got, err := metric.BuildStoreSharded(context.Background(), devs, inS, tgtS, metric.L2)
		if err != nil {
			t.Fatalf("sharded over %d devices: %v", parts, err)
		}
		if !got.Equal(want) {
			t.Fatalf("sharded build over %d devices differs from single-device build", parts)
		}
	}
}

// TestBuildStoreShardedFaults: an injected launch fault on one shard surfaces
// as that shard's typed error.
func TestBuildStoreShardedFaults(t *testing.T) {
	sc := storeScenes()[0]
	_, _, inS, tgtS := sc.build(t)
	good := cuda.New(0)
	bad := cuda.New(0).WithFaults(&cuda.FaultPlan{EveryNth: 1})
	if _, err := metric.BuildStoreSharded(context.Background(), []*cuda.Device{good, bad}, inS, tgtS, metric.L1); err == nil {
		t.Fatal("sharded build over a faulted device returned no error")
	}
}

// TestStoreContextBuilders: the fault-aware store builders succeed on a clean
// device and match the oracle.
func TestStoreContextBuilders(t *testing.T) {
	sc := storeScenes()[1]
	inG, tgtG, inS, tgtS := sc.build(t)
	want, err := metric.BuildSerial(inG, tgtG, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got, err := metric.BuildStoreDeviceContext(ctx, cuda.New(0), inS, tgtS, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("BuildStoreDeviceContext differs from serial oracle")
	}
	got, err = metric.BuildStoreRowsParallelContext(ctx, cuda.New(0), inS, tgtS, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("BuildStoreRowsParallelContext differs from serial oracle")
	}
}

// TestBuildStoreRejections mirrors the crop path's validation errors.
func TestBuildStoreRejections(t *testing.T) {
	a, err := tilestore.FromImage(imgutil.NewGray(16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tilestore.FromImage(imgutil.NewGray(16, 16), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := metric.BuildStoreSerial(a, b, metric.L1); err == nil {
		t.Fatal("mismatched stores accepted")
	}
	if _, err := metric.BuildStoreSerial(a, a, metric.Metric(99)); err == nil {
		t.Fatal("invalid metric accepted")
	}
	if _, err := metric.BuildStore(nil, a, a, metric.L1, metric.BuilderDevice); err == nil {
		t.Fatal("device builder without device accepted")
	}
	if _, err := metric.BuildStore(nil, a, a, metric.L1, metric.Builder("nope")); err == nil {
		t.Fatal("unknown builder accepted")
	}
	if _, err := metric.BuildStoreSharded(context.Background(), nil, a, a, metric.L1); err == nil {
		t.Fatal("sharded build with no devices accepted")
	}
}
