package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky")

// TestDoSucceedsAfterRetries: a transient failure is retried and the attempt
// numbering is 1-based.
func TestDoSucceedsAfterRetries(t *testing.T) {
	p := &Policy{MaxAttempts: 4, BaseDelay: time.Microsecond}
	var attempts []int
	err := p.Do(context.Background(), func(a int) error {
		attempts = append(attempts, a)
		if a < 3 {
			return errFlaky
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(attempts) != 3 || attempts[0] != 1 || attempts[2] != 3 {
		t.Fatalf("attempts = %v, want [1 2 3]", attempts)
	}
}

// TestDoExhaustsAttempts: MaxAttempts bounds the tries and the last error
// surfaces.
func TestDoExhaustsAttempts(t *testing.T) {
	p := &Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func(int) error { calls++; return errFlaky })
	if !errors.Is(err, errFlaky) {
		t.Fatalf("got %v, want errFlaky", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
}

// TestDoStop: Stop abandons remaining attempts and unwraps to the original
// error for errors.Is classification.
func TestDoStop(t *testing.T) {
	p := &Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func(int) error { calls++; return Stop(errFlaky) })
	if calls != 1 {
		t.Fatalf("op ran %d times after Stop, want 1", calls)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("got %v, want errFlaky", err)
	}
	var s *stopErr
	if errors.As(err, &s) {
		t.Fatal("Stop wrapper leaked out of Do")
	}
	if Stop(nil) != nil {
		t.Fatal("Stop(nil) != nil")
	}
}

// TestDoRetryableClassifier: a false Retryable verdict stops immediately.
func TestDoRetryableClassifier(t *testing.T) {
	p := &Policy{MaxAttempts: 5, BaseDelay: time.Microsecond,
		Retryable: func(err error) bool { return !errors.Is(err, errFlaky) }}
	calls := 0
	err := p.Do(context.Background(), func(int) error { calls++; return errFlaky })
	if calls != 1 || !errors.Is(err, errFlaky) {
		t.Fatalf("calls=%d err=%v, want 1 call returning errFlaky", calls, err)
	}
}

// TestDoContextErrorFromOp: an op error that is the context error terminates
// without further attempts.
func TestDoContextErrorFromOp(t *testing.T) {
	p := &Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func(int) error {
		calls++
		return context.DeadlineExceeded
	})
	if calls != 1 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("calls=%d err=%v, want 1 call returning DeadlineExceeded", calls, err)
	}
}

// TestDoCancelledBeforeStart: a dead context never runs the op.
func TestDoCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Policy{}
	err := p.Do(ctx, func(int) error { t.Fatal("op ran on a dead context"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestDoCancelMidBackoff: cancelling while Do sleeps between attempts
// returns promptly with the context error, still wrapping the op error.
func TestDoCancelMidBackoff(t *testing.T) {
	p := &Policy{MaxAttempts: 3, BaseDelay: time.Hour, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- p.Do(ctx, func(int) error { close(started); return errFlaky })
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let Do enter the backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if !errors.Is(err, errFlaky) {
			t.Fatalf("backoff cancellation %v lost the op error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation mid-backoff")
	}
}

// TestDelaysExponentialAndCapped: without jitter the schedule is
// base·2^(n−1) capped at MaxDelay.
func TestDelaysExponentialAndCapped(t *testing.T) {
	p := &Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: -1}
	got := p.Delays(4)
	want := []time.Duration{2, 4, 8, 10}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("delay %d = %v, want %vms (all: %v)", i+1, got[i], want[i], got)
		}
	}
}

// TestDelaysJitterBounds: jittered delays stay within ±Jitter of the nominal
// schedule, are deterministic per seed, and actually vary.
func TestDelaysJitterBounds(t *testing.T) {
	nominal := []time.Duration{2, 4, 8, 16, 32, 64, 100, 100, 100, 100}
	mk := func(seed uint64) *Policy {
		return &Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 0.2, Seed: seed}
	}
	a := mk(1).Delays(len(nominal))
	b := mk(1).Delays(len(nominal))
	varied := false
	for i, d := range a {
		n := nominal[i] * time.Millisecond
		lo := time.Duration(float64(n) * 0.8)
		hi := time.Duration(float64(n) * 1.2)
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v outside jitter bounds [%v, %v]", i+1, d, lo, hi)
		}
		if d != b[i] {
			t.Fatalf("same seed produced different delay %d: %v vs %v", i+1, d, b[i])
		}
		if d != n {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never moved any delay off nominal")
	}
}

// TestZeroValueDefaults: the zero Policy retries with the documented
// defaults.
func TestZeroValueDefaults(t *testing.T) {
	p := &Policy{BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	calls := 0
	_ = p.Do(context.Background(), func(int) error { calls++; return errFlaky })
	if calls != defaultMaxAttempts {
		t.Fatalf("zero-value policy ran %d attempts, want %d", calls, defaultMaxAttempts)
	}
}

// TestOnBackoffHook: the hook wraps every inter-attempt sleep exactly once
// and sees the sleep's result, letting callers attribute backoff time.
func TestOnBackoffHook(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
		OnBackoff: func(sleep func() error) error {
			calls++
			return sleep()
		}}
	attempts := 0
	err := p.Do(context.Background(), func(int) error {
		attempts++
		return errFlaky
	})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, want errFlaky", err)
	}
	if attempts != 3 || calls != 2 {
		t.Fatalf("attempts=%d backoffs=%d, want 3 attempts / 2 backoffs", attempts, calls)
	}
}

// TestOnBackoffHookPropagatesCancel: a context ending mid-backoff surfaces
// through the hook unchanged.
func TestOnBackoffHookPropagatesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 2, BaseDelay: time.Minute, Jitter: -1,
		OnBackoff: func(sleep func() error) error {
			cancel()
			return sleep()
		}}
	err := p.Do(ctx, func(int) error { return errFlaky })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
