// Package retry implements the bounded, context-aware retry policy the
// fault-tolerant execution paths share.
//
// The unit of retry throughout the repo is one kernel launch — a cost-matrix
// build or one color-class sweep of Algorithm 2 — because launches are the
// pipeline's natural synchronisation points and both kernels are idempotent
// (they fully overwrite their outputs, and class pairs are vertex-disjoint),
// so re-running a failed launch cannot corrupt state. See DESIGN.md.
//
// The policy is deliberately small: bounded attempts, exponential backoff
// with deterministic seeded jitter (tests replay exact delay sequences), and
// three ways out — success, a context error, or a permanent error wrapped
// with Stop (how ErrDeviceLost short-circuits the remaining attempts).
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy describes a bounded exponential-backoff retry schedule. The zero
// value is usable and selects the defaults noted per field.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3; 1 means no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each later backoff
	// doubles it, capped at MaxDelay (default 2ms — device launches are
	// milliseconds, not RPCs).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 100ms).
	MaxDelay time.Duration
	// Jitter spreads each backoff uniformly over ±Jitter fraction of itself,
	// decorrelating retry storms across devices (default 0.2; 0 < j ≤ 1).
	// Set to a negative value to disable jitter entirely.
	Jitter float64
	// Seed seeds the jitter stream, making delay sequences reproducible.
	Seed uint64
	// Retryable, when set, classifies errors: a false return stops retrying
	// and surfaces the error as-is. nil means every error is retryable
	// (Stop-wrapped and context errors always terminate regardless).
	Retryable func(error) bool
	// OnBackoff, when set, wraps each backoff sleep: Do calls it instead of
	// sleeping directly, and the hook must invoke sleep exactly once and
	// return its error. The instrumented paths use it to attribute backoff
	// wall time to a retry-backoff span without the policy importing the
	// trace package.
	OnBackoff func(sleep func() error) error

	rng     uint64
	rngInit bool
}

const (
	defaultMaxAttempts = 3
	defaultBaseDelay   = 2 * time.Millisecond
	defaultMaxDelay    = 100 * time.Millisecond
	defaultJitter      = 0.2
)

func (p *Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return defaultMaxAttempts
	}
	return p.MaxAttempts
}

// stopErr marks an error as permanent; see Stop.
type stopErr struct{ err error }

func (e *stopErr) Error() string { return e.err.Error() }
func (e *stopErr) Unwrap() error { return e.err }

// Stop wraps an error to tell Do the failure is permanent: remaining
// attempts are abandoned and the wrapped error is returned (unwrapped, so
// errors.Is classification still works on the original). A nil err returns
// nil.
func Stop(err error) error {
	if err == nil {
		return nil
	}
	return &stopErr{err: err}
}

// Do runs op until it succeeds, the policy is exhausted, the error is
// permanent (Stop-wrapped or Retryable says no), or the context ends.
// attempt is 1-based. The returned error is the last op error — or, when the
// context ends mid-backoff, the context error wrapped with the attempt
// count. Do is not safe for concurrent use on one Policy (the jitter stream
// is stateful); give each goroutine its own Policy value.
func (p *Policy) Do(ctx context.Context, op func(attempt int) error) error {
	max := p.maxAttempts()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("retry: attempt %d: %w", attempt, cerr)
		}
		err = op(attempt)
		if err == nil {
			return nil
		}
		var stop *stopErr
		if errors.As(err, &stop) {
			return stop.err
		}
		// An error that *is* the context's error means the operation was
		// cancelled, not that it failed — retrying cannot help.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return err
		}
		if attempt >= max {
			return err
		}
		if serr := p.backoff(ctx, p.delay(attempt)); serr != nil {
			return fmt.Errorf("retry: backoff after attempt %d (%w): %w", attempt, err, serr)
		}
	}
}

// delay returns the backoff after the given 1-based attempt: BaseDelay
// doubled per attempt, capped at MaxDelay, jittered ±Jitter.
func (p *Policy) delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = defaultBaseDelay
	}
	max := p.MaxDelay
	if max <= 0 {
		max = defaultMaxDelay
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	j := p.Jitter
	if j == 0 {
		j = defaultJitter
	}
	if j > 0 {
		if j > 1 {
			j = 1
		}
		// Uniform in [1−j, 1+j), from a private splitmix64 stream.
		u := p.randFloat()
		d = time.Duration(float64(d) * (1 + j*(2*u-1)))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// Delays returns the first n backoff delays the policy would use, advancing
// the jitter stream — a test hook for asserting jitter bounds without
// sleeping.
func (p *Policy) Delays(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = p.delay(i + 1)
	}
	return out
}

// backoff performs one inter-attempt wait, routing through OnBackoff when
// set so callers can measure the time spent.
func (p *Policy) backoff(ctx context.Context, d time.Duration) error {
	if p.OnBackoff == nil {
		return p.sleep(ctx, d)
	}
	return p.OnBackoff(func() error { return p.sleep(ctx, d) })
}

// sleep waits for d or until the context ends, returning the context error
// in the latter case.
func (p *Policy) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// randFloat advances the policy's splitmix64 stream and returns a float in
// [0, 1).
func (p *Policy) randFloat() float64 {
	if !p.rngInit {
		p.rng = p.Seed
		p.rngInit = true
	}
	p.rng += 0x9E3779B97F4A7C15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
