package benchjson

import (
	"context"
	"fmt"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/cuda"
)

// AssignSolver is one matcher's measurement in the assign comparison block.
// GapVsJV is the true suboptimality against the JV optimum on this instance;
// CertifiedGap is the bound the solver proved about itself from its own dual
// certificate (always ≥ the true gap, and what the quality gates enforce).
type AssignSolver struct {
	Solver       string  `json:"solver"`
	AssignNS     int64   `json:"assign_ns"`
	FinalCost    int64   `json:"final_cost"`
	GapVsJV      float64 `json:"gap_vs_jv"`
	SpeedupVsJV  float64 `json:"speedup_vs_jv"`
	CertifiedGap float64 `json:"certified_gap,omitempty"`
}

// AssignBlock compares the Step-3 exact matchers on one pinned cost matrix.
// The instance is deliberately larger than the pipeline runs' (tiles =
// size/8, so the committed 512 report solves S = 64² = 4096): exact matching
// only dominates the pipeline at the paper's largest tile grids, which is
// exactly where the certified approximate solvers earn their keep.
type AssignBlock struct {
	Input   string         `json:"input"`
	Target  string         `json:"target"`
	Size    int            `json:"size"`
	Tiles   int            `json:"tiles_per_side"`
	S       int            `json:"s"`
	Solvers []AssignSolver `json:"solvers"`
}

// assignTiles picks the comparison instance's tile grid: size/8, floored to
// the smallest legal grid.
func assignTiles(size int) int {
	t := size / 8
	if t < 2 {
		t = 2
	}
	return t
}

// AssignComparison builds the pinned scene pair's cost matrix at the
// comparison tile grid and times JV, the device auction and Sinkhorn on it.
// Exported so `make solver-smoke` (TestSolverSmoke) asserts the same
// quantities the committed report records.
func AssignComparison(ctx context.Context, size int) (*AssignBlock, error) {
	if size <= 0 {
		size = pinnedSize
	}
	tiles := assignTiles(size)
	input, target, err := pinnedImages(size)
	if err != nil {
		return nil, err
	}
	prep, err := core.PrepareContext(ctx, input, target, core.Options{
		TilesPerSide: tiles,
		Algorithm:    core.Optimization,
	})
	if err != nil {
		return nil, err
	}
	costs := prep.Costs()
	block := &AssignBlock{
		Input: pinnedInput, Target: pinnedTarget,
		Size: size, Tiles: tiles, S: costs.S,
	}

	t0 := time.Now()
	jvPerm, err := assign.JVContext(ctx, costs.S, costs.W)
	if err != nil {
		return nil, fmt.Errorf("jv: %w", err)
	}
	jvNS := time.Since(t0).Nanoseconds()
	jvCost := costs.Total(jvPerm)
	block.Solvers = append(block.Solvers, AssignSolver{
		Solver: string(assign.AlgoJV), AssignNS: jvNS, FinalCost: jvCost, SpeedupVsJV: 1,
	})

	dev := cuda.New(0)
	t0 = time.Now()
	aPerm, aInfo, err := assign.AuctionDeviceContext(ctx, costs.S, costs.W, assign.DeviceAuctionOptions{Device: dev})
	if err != nil {
		return nil, fmt.Errorf("auction-device: %w", err)
	}
	block.Solvers = append(block.Solvers, solverEntry(string(assign.AlgoAuctionDevice),
		time.Since(t0).Nanoseconds(), costs.Total(aPerm), aInfo.Gap, jvCost, jvNS))

	t0 = time.Now()
	sPerm, sInfo, err := assign.SinkhornContext(ctx, costs.S, costs.W, assign.SinkhornOptions{})
	if err != nil {
		return nil, fmt.Errorf("sinkhorn: %w", err)
	}
	block.Solvers = append(block.Solvers, solverEntry(string(assign.AlgoSinkhorn),
		time.Since(t0).Nanoseconds(), costs.Total(sPerm), sInfo.Gap, jvCost, jvNS))
	return block, nil
}

// solverEntry derives the comparison quantities against the JV baseline.
func solverEntry(name string, ns, cost int64, certified float64, jvCost, jvNS int64) AssignSolver {
	gap := float64(cost-jvCost) / maxAbsF(jvCost)
	speedup := 0.0
	if ns > 0 {
		speedup = float64(jvNS) / float64(ns)
	}
	return AssignSolver{
		Solver: name, AssignNS: ns, FinalCost: cost,
		GapVsJV: gap, SpeedupVsJV: speedup, CertifiedGap: certified,
	}
}

// maxAbsF guards the relative-gap denominator against tiny optima.
func maxAbsF(v int64) float64 {
	if v < 0 {
		v = -v
	}
	if v < 1 {
		v = 1
	}
	return float64(v)
}
