package benchjson

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestExecutePinnedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("pinned workload runs the full 512²/32² pipeline three times")
	}
	rep, err := Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaVersion || len(rep.Runs) != 3 {
		t.Fatalf("report shape wrong: schema=%d runs=%d", rep.Schema, len(rep.Runs))
	}
	serial, dirty, parallel := rep.Runs[0], rep.Runs[1], rep.Runs[2]
	if serial.Workload.Algorithm != "approximation" ||
		dirty.Workload.Algorithm != "approximation-dirty" ||
		parallel.Workload.Algorithm != "approximation-parallel" {
		t.Fatalf("unexpected algorithms: %q, %q, %q",
			serial.Workload.Algorithm, dirty.Workload.Algorithm, parallel.Workload.Algorithm)
	}
	if rep.Host.GoMaxProcs < 1 || rep.Host.CPUs < 1 || rep.Host.DeviceWorkers < 1 {
		t.Fatalf("host fingerprint incomplete: %+v", rep.Host)
	}
	for i, run := range rep.Runs {
		if run.Stages.CostMatrixNS <= 0 || run.Stages.RearrangeNS <= 0 {
			t.Fatalf("run %d: stage timings not positive: %+v", i, run.Stages)
		}
		if run.Search.Sweeps < 1 || run.Search.FinalCost <= 0 {
			t.Fatalf("run %d: degenerate search outcome: %+v", i, run.Search)
		}
		if run.Search.Attempts <= 0 {
			t.Fatalf("run %d: no swap attempts recorded: %+v", i, run.Search)
		}
		if len(run.Convergence) != run.Search.Sweeps {
			t.Fatalf("run %d: %d convergence samples for %d sweeps", i, len(run.Convergence), run.Search.Sweeps)
		}
		for j := 1; j < len(run.Convergence); j++ {
			if run.Convergence[j].Cost > run.Convergence[j-1].Cost {
				t.Fatalf("run %d: convergence cost rose at sample %d", i, j)
			}
		}
		if last := run.Convergence[len(run.Convergence)-1]; last.Cost != run.Search.FinalCost {
			t.Fatalf("run %d: curve endpoint %d != final cost %d", i, last.Cost, run.Search.FinalCost)
		}
	}
	// The dirty-tracked search is an exact replay of the serial sweep with
	// known-outcome pairs skipped (Execute itself also checks this tripwire).
	if dirty.Search.FinalCost != serial.Search.FinalCost || dirty.Search.Swaps != serial.Search.Swaps {
		t.Fatalf("dirty run diverged from serial: %+v vs %+v", dirty.Search, serial.Search)
	}
	if dirty.Search.Attempts >= serial.Search.Attempts {
		t.Fatalf("dirty run attempted %d pairs, serial %d", dirty.Search.Attempts, serial.Search.Attempts)
	}
	// Both exhaustive searches descend on the same matrix; their fixed points
	// need not be identical but must be in the same regime.
	if serial.Search.FinalCost <= 0 || parallel.Search.FinalCost <= 0 {
		t.Fatal("non-positive final costs")
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if len(decoded.Runs) != 3 || decoded.Runs[0].Search.FinalCost != serial.Search.FinalCost {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
}

func TestExecuteSizedSmoke(t *testing.T) {
	rep, err := ExecuteSized(context.Background(), 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("want 3 runs, got %d", len(rep.Runs))
	}
	for i, run := range rep.Runs {
		if run.Workload.Size != 128 || run.Workload.Tiles != 16 {
			t.Fatalf("run %d: workload not resized: %+v", i, run.Workload)
		}
	}
	// The report pins the columnar layout behind its cost_matrix_ns figures:
	// 128/16 → m = 8, one 64-byte payload padded to two 32-byte words.
	if rep.TileStore.TileBytes != 64 || rep.TileStore.Stride != 64 || rep.TileStore.ThumbSide != 4 {
		t.Fatalf("tile_store layout wrong: %+v", rep.TileStore)
	}
}
