package benchjson

import (
	"context"
	"os"
	"testing"

	"repro/internal/assign"
)

// TestSolverSmoke is the `make solver-smoke` gate: on the pinned 512-pixel
// comparison instance (tiles = 64, S = 4096) both certified approximate
// solvers must beat the JV baseline's wall time while staying within the
// certified 1% cost gap. It is env-gated because the instance takes a few
// seconds per solver — too slow for the default test run, exactly right for
// a dedicated CI job.
func TestSolverSmoke(t *testing.T) {
	if os.Getenv("MOSAIC_SOLVER_SMOKE") == "" {
		t.Skip("set MOSAIC_SOLVER_SMOKE=1 to run the pinned S=4096 solver comparison")
	}
	block, err := AssignComparison(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if block.S != 4096 || len(block.Solvers) != 3 {
		t.Fatalf("unexpected comparison shape: S=%d solvers=%d", block.S, len(block.Solvers))
	}
	jv := block.Solvers[0]
	if jv.Solver != string(assign.AlgoJV) || jv.AssignNS <= 0 {
		t.Fatalf("JV baseline malformed: %+v", jv)
	}
	for _, s := range block.Solvers[1:] {
		t.Logf("%s: %.0fms vs JV %.0fms (%.2fx), gap %.4f%% (certified %.4f%%)",
			s.Solver, float64(s.AssignNS)/1e6, float64(jv.AssignNS)/1e6,
			s.SpeedupVsJV, 100*s.GapVsJV, 100*s.CertifiedGap)
		if s.GapVsJV > assign.DefaultAuctionGap {
			t.Errorf("%s: true gap %.4f%% above the %.0f%% gate",
				s.Solver, 100*s.GapVsJV, 100*assign.DefaultAuctionGap)
		}
		if s.AssignNS >= jv.AssignNS {
			t.Errorf("%s: %dns not faster than JV's %dns", s.Solver, s.AssignNS, jv.AssignNS)
		}
	}
	// The auction's certificate is what the pipeline trusts at runtime; it
	// must itself be within the gate (Sinkhorn's dual bound is valid but
	// loose, so only its true gap is gated).
	if auction := block.Solvers[1]; auction.CertifiedGap > assign.DefaultAuctionGap {
		t.Errorf("auction-device certificate %.4f%% above the gate", 100*auction.CertifiedGap)
	}
}
