package imgutil

// Geometric transforms used by the oriented-tile extension: the mosaic
// quality improves further if each tile may be placed in any of its eight
// dihedral orientations (4 rotations × optional mirror), at the cost of an
// 8× larger Step-2 search per pair. The paper keeps tiles upright; the
// extension is documented in DESIGN.md.

// Orientation names one of the eight dihedral-group placements of a square
// tile. Values 0–3 are counter-clockwise rotations by 0°, 90°, 180°, 270°;
// values 4–7 are the same rotations applied after a horizontal flip.
type Orientation uint8

// The eight dihedral orientations.
const (
	Upright Orientation = iota
	Rot90
	Rot180
	Rot270
	Flip
	FlipRot90
	FlipRot180
	FlipRot270

	// NumOrientations counts the dihedral group D₄.
	NumOrientations = 8
	// NumRotations counts the pure rotations (orientations 0–3).
	NumRotations = 4
)

// String names the orientation.
func (o Orientation) String() string {
	switch o {
	case Upright:
		return "upright"
	case Rot90:
		return "rot90"
	case Rot180:
		return "rot180"
	case Rot270:
		return "rot270"
	case Flip:
		return "flip"
	case FlipRot90:
		return "flip+rot90"
	case FlipRot180:
		return "flip+rot180"
	case FlipRot270:
		return "flip+rot270"
	}
	return "orientation(?)"
}

// Rotate90 returns g rotated 90° counter-clockwise (W and H swap).
func (g *Gray) Rotate90() *Gray {
	out := NewGray(g.H, g.W)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			// (x, y) → (y, W−1−x) in the rotated frame.
			out.Pix[(g.W-1-x)*out.W+y] = g.Pix[y*g.W+x]
		}
	}
	return out
}

// Rotate180 returns g rotated 180°.
func (g *Gray) Rotate180() *Gray {
	out := NewGray(g.W, g.H)
	n := len(g.Pix)
	for i, p := range g.Pix {
		out.Pix[n-1-i] = p
	}
	return out
}

// Rotate270 returns g rotated 270° counter-clockwise (= 90° clockwise).
func (g *Gray) Rotate270() *Gray {
	out := NewGray(g.H, g.W)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Pix[x*out.W+(g.H-1-y)] = g.Pix[y*g.W+x]
		}
	}
	return out
}

// FlipH returns g mirrored about the vertical axis.
func (g *Gray) FlipH() *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		row := g.Pix[y*g.W : (y+1)*g.W]
		dst := out.Pix[y*g.W : (y+1)*g.W]
		for x, p := range row {
			dst[g.W-1-x] = p
		}
	}
	return out
}

// FlipV returns g mirrored about the horizontal axis.
func (g *Gray) FlipV() *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		copy(out.Pix[(g.H-1-y)*g.W:(g.H-y)*g.W], g.Pix[y*g.W:(y+1)*g.W])
	}
	return out
}

// Orient returns g placed in orientation o. Non-square images are supported
// (rotations swap the axes).
func (g *Gray) Orient(o Orientation) *Gray {
	base := g
	if o >= Flip {
		base = g.FlipH()
		o -= Flip
	}
	switch o {
	case Rot90:
		return base.Rotate90()
	case Rot180:
		return base.Rotate180()
	case Rot270:
		return base.Rotate270()
	}
	if base == g {
		return g.Clone()
	}
	return base
}

// OrientIndex returns the flat pixel index into an m×m tile that orientation
// o maps to position (x, y): reading source pixel OrientIndex(o, m, x, y)
// and writing it at (x, y) produces Orient(o). This is the zero-allocation
// form the error kernels use to score oriented tiles without materialising
// them.
func OrientIndex(o Orientation, m, x, y int) int {
	// Compute the source coordinate (sx, sy) whose pixel lands at (x, y).
	var sx, sy int
	switch o & 3 {
	case 0: // upright
		sx, sy = x, y
	case 1: // rot90 CCW: dst(x, y) = src(m−1−y … ) — inverse of Rotate90
		sx, sy = m-1-y, x
	case 2: // rot180
		sx, sy = m-1-x, m-1-y
	case 3: // rot270
		sx, sy = y, m-1-x
	}
	if o >= Flip {
		sx = m - 1 - sx
	}
	return sy*m + sx
}
