package imgutil

import (
	"testing"
)

func TestNewRGBGeometry(t *testing.T) {
	m := NewRGB(3, 2)
	if m.W != 3 || m.H != 2 || len(m.Pix) != 18 {
		t.Errorf("NewRGB(3,2): W=%d H=%d len=%d", m.W, m.H, len(m.Pix))
	}
}

func TestRGBAtSet(t *testing.T) {
	m := NewRGB(4, 4)
	m.Set(2, 3, 10, 20, 30)
	r, g, b := m.At(2, 3)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("At = (%d, %d, %d)", r, g, b)
	}
}

func TestRGBAtPanicsOutOfBounds(t *testing.T) {
	m := NewRGB(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("RGB.At out of bounds did not panic")
		}
	}()
	m.At(2, 0)
}

func TestNewRGBFromValidation(t *testing.T) {
	if _, err := NewRGBFrom(2, 2, make([]uint8, 11)); err == nil {
		t.Error("NewRGBFrom accepted wrong-length slice")
	}
	m, err := NewRGBFrom(2, 2, make([]uint8, 12))
	if err != nil || m.W != 2 {
		t.Errorf("NewRGBFrom failed: %v", err)
	}
}

func TestRGBCloneEqual(t *testing.T) {
	m := NewRGB(3, 3)
	m.Set(1, 1, 5, 6, 7)
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone differs")
	}
	c.Set(0, 0, 1, 1, 1)
	if m.Equal(c) {
		t.Error("clone aliased original")
	}
}

func TestRGBSubImageBlit(t *testing.T) {
	m := NewRGB(6, 6)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			m.Set(x, y, uint8(x), uint8(y), uint8(x+y))
		}
	}
	sub, err := m.SubImage(1, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b := sub.At(0, 0)
	if r != 1 || g != 2 || b != 3 {
		t.Errorf("sub At(0,0) = (%d, %d, %d)", r, g, b)
	}
	dst := NewRGB(6, 6)
	if err := dst.Blit(sub, 3, 3); err != nil {
		t.Fatal(err)
	}
	r, g, b = dst.At(3, 3)
	if r != 1 || g != 2 || b != 3 {
		t.Errorf("blit landed wrong: (%d, %d, %d)", r, g, b)
	}
	if _, err := m.SubImage(5, 5, 3, 3); err == nil {
		t.Error("SubImage accepted out-of-range rect")
	}
	if err := dst.Blit(sub, 5, 5); err == nil {
		t.Error("Blit accepted out-of-range position")
	}
}

func TestRGBGrayMatchesStdlib(t *testing.T) {
	// RGB.Gray must agree with converting through the stdlib image pipeline.
	m := NewRGB(4, 4)
	vals := []uint8{0, 37, 99, 128, 200, 255, 14, 77}
	k := 0
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			m.Set(x, y, vals[k%len(vals)], vals[(k+1)%len(vals)], vals[(k+2)%len(vals)])
			k++
		}
	}
	direct := m.Gray()
	viaStdlib := GrayFromImage(m.ToImage())
	if !direct.Equal(viaStdlib) {
		t.Error("RGB.Gray disagrees with the stdlib conversion path")
	}
}

func TestRGBFromGrayIsNeutral(t *testing.T) {
	g := NewGray(3, 3)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 20)
	}
	m := RGBFromGray(g)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			r, gg, b := m.At(x, y)
			if r != gg || gg != b || r != g.At(x, y) {
				t.Fatalf("(%d,%d): (%d,%d,%d) vs gray %d", x, y, r, gg, b, g.At(x, y))
			}
		}
	}
	// Gray → RGB → Gray must be the identity on gray pixels.
	if !m.Gray().Equal(g) {
		t.Error("gray→rgb→gray not identity")
	}
}

func TestRGBToImageRoundTrip(t *testing.T) {
	m := NewRGB(5, 4)
	for i := range m.Pix {
		m.Pix[i] = uint8(i * 7)
	}
	back := RGBFromImage(m.ToImage())
	if !m.Equal(back) {
		t.Error("ToImage/RGBFromImage round trip changed pixels")
	}
}

func TestRGBAbsDiffSum(t *testing.T) {
	a := NewRGB(1, 2)
	b := NewRGB(1, 2)
	a.Pix = []uint8{10, 20, 30, 0, 0, 0}
	b.Pix = []uint8{11, 18, 30, 5, 0, 0}
	got, err := a.AbsDiffSum(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1+2+0+5 {
		t.Errorf("AbsDiffSum = %d, want 8", got)
	}
	if _, err := a.AbsDiffSum(NewRGB(2, 2)); err == nil {
		t.Error("accepted mismatched geometry")
	}
}
