package imgutil

import (
	"fmt"
	"image"
	"image/color"
)

// RGB is a 24-bit color image with interleaved row-major storage.
// Pixel (x, y) occupies Pix[3*(y*W+x) : 3*(y*W+x)+3] as R, G, B.
//
// The paper's mosaic method extends to color "only by changing the error
// function" (§II); RGB is the substrate for that extension.
type RGB struct {
	W, H int
	Pix  []uint8
}

// NewRGB returns a zeroed (black) w×h color image.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgutil: NewRGB(%d, %d): non-positive dimensions", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// NewRGBFrom wraps an existing interleaved pixel slice; len(pix) must be 3*w*h.
func NewRGBFrom(w, h int, pix []uint8) (*RGB, error) {
	if w <= 0 || h <= 0 || len(pix) != 3*w*h {
		return nil, fmt.Errorf("imgutil: NewRGBFrom(%d, %d) with %d bytes: %w", w, h, len(pix), ErrBounds)
	}
	return &RGB{W: w, H: h, Pix: pix}, nil
}

// At returns the (r, g, b) triple at (x, y).
func (m *RGB) At(x, y int) (r, g, b uint8) {
	if uint(x) >= uint(m.W) || uint(y) >= uint(m.H) {
		panic(fmt.Sprintf("imgutil: RGB.At(%d, %d) on %dx%d image", x, y, m.W, m.H))
	}
	i := 3 * (y*m.W + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set writes the (r, g, b) triple at (x, y).
func (m *RGB) Set(x, y int, r, g, b uint8) {
	if uint(x) >= uint(m.W) || uint(y) >= uint(m.H) {
		panic(fmt.Sprintf("imgutil: RGB.Set(%d, %d) on %dx%d image", x, y, m.W, m.H))
	}
	i := 3 * (y*m.W + x)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// Clone returns a deep copy of m.
func (m *RGB) Clone() *RGB {
	out := NewRGB(m.W, m.H)
	copy(out.Pix, m.Pix)
	return out
}

// Equal reports whether m and o have identical geometry and pixels.
func (m *RGB) Equal(o *RGB) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i, p := range m.Pix {
		if o.Pix[i] != p {
			return false
		}
	}
	return true
}

// SubImage copies the w×h rectangle at (x, y) into a new RGB image.
func (m *RGB) SubImage(x, y, w, h int) (*RGB, error) {
	if x < 0 || y < 0 || w <= 0 || h <= 0 || x+w > m.W || y+h > m.H {
		return nil, fmt.Errorf("imgutil: RGB.SubImage(%d, %d, %d, %d) of %dx%d: %w", x, y, w, h, m.W, m.H, ErrBounds)
	}
	out := NewRGB(w, h)
	for row := 0; row < h; row++ {
		src := m.Pix[3*((y+row)*m.W+x) : 3*((y+row)*m.W+x+w)]
		copy(out.Pix[3*row*w:3*(row+1)*w], src)
	}
	return out, nil
}

// Blit copies src into m with src's top-left corner at (x, y).
func (m *RGB) Blit(src *RGB, x, y int) error {
	if x < 0 || y < 0 || x+src.W > m.W || y+src.H > m.H {
		return fmt.Errorf("imgutil: RGB.Blit %dx%d at (%d, %d) into %dx%d: %w", src.W, src.H, x, y, m.W, m.H, ErrBounds)
	}
	for row := 0; row < src.H; row++ {
		copy(m.Pix[3*((y+row)*m.W+x):3*((y+row)*m.W+x+src.W)], src.Pix[3*row*src.W:3*(row+1)*src.W])
	}
	return nil
}

// Gray converts m to grayscale with the JFIF/ITU-R BT.601 luma weights used
// by the stdlib color.GrayModel, so Gray(m) matches GrayFromImage(m.ToImage()).
func (m *RGB) Gray() *Gray {
	out := NewGray(m.W, m.H)
	for i := 0; i < m.W*m.H; i++ {
		r := uint32(m.Pix[3*i])
		g := uint32(m.Pix[3*i+1])
		b := uint32(m.Pix[3*i+2])
		// 0.299 R + 0.587 G + 0.114 B with the stdlib's fixed-point rounding.
		y := (19595*r + 38470*g + 7471*b + 1<<15) >> 16
		out.Pix[i] = uint8(y)
	}
	return out
}

// ToImage converts m to a stdlib *image.RGBA (alpha fully opaque).
func (m *RGB) ToImage() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, m.W, m.H))
	for i := 0; i < m.W*m.H; i++ {
		img.Pix[4*i] = m.Pix[3*i]
		img.Pix[4*i+1] = m.Pix[3*i+1]
		img.Pix[4*i+2] = m.Pix[3*i+2]
		img.Pix[4*i+3] = 0xff
	}
	return img
}

// RGBFromImage converts any stdlib image to RGB, discarding alpha.
func RGBFromImage(src image.Image) *RGB {
	b := src.Bounds()
	out := NewRGB(b.Dx(), b.Dy())
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			c := color.RGBAModel.Convert(src.At(b.Min.X+x, b.Min.Y+y)).(color.RGBA)
			out.Set(x, y, c.R, c.G, c.B)
		}
	}
	return out
}

// RGBFromGray lifts a grayscale image into RGB (r = g = b).
func RGBFromGray(g *Gray) *RGB {
	out := NewRGB(g.W, g.H)
	for i, p := range g.Pix {
		out.Pix[3*i], out.Pix[3*i+1], out.Pix[3*i+2] = p, p, p
	}
	return out
}

// AbsDiffSum returns Σ(|Δr|+|Δg|+|Δb|) over all pixels — the color analogue
// of the paper's Eq. (1).
func (m *RGB) AbsDiffSum(o *RGB) (int64, error) {
	if m.W != o.W || m.H != o.H {
		return 0, fmt.Errorf("imgutil: RGB.AbsDiffSum %dx%d vs %dx%d: %w", m.W, m.H, o.W, o.H, ErrBounds)
	}
	var sum int64
	for i, p := range m.Pix {
		d := int64(p) - int64(o.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum, nil
}
