package imgutil

import (
	"testing"
	"testing/quick"
)

func TestRotate90Known(t *testing.T) {
	// 2×2: [a b; c d] rotated 90° CCW → [b d; a c].
	g := NewGray(2, 2)
	g.Pix = []uint8{1, 2, 3, 4} // a=1 b=2 c=3 d=4
	r := g.Rotate90()
	want := []uint8{2, 4, 1, 3}
	for i, p := range want {
		if r.Pix[i] != p {
			t.Fatalf("Rotate90 = %v, want %v", r.Pix, want)
		}
	}
}

func TestRotate90NonSquare(t *testing.T) {
	g := NewGray(3, 2)
	g.Pix = []uint8{1, 2, 3, 4, 5, 6}
	r := g.Rotate90()
	if r.W != 2 || r.H != 3 {
		t.Fatalf("geometry %dx%d", r.W, r.H)
	}
	// Column x of g (top→bottom) becomes row (W−1−x) of r… verify via At:
	// r(x', y') = g(m… ) — spot check corners.
	if r.At(0, 0) != g.At(2, 0) || r.At(1, 2) != g.At(0, 1) {
		t.Errorf("Rotate90 wrong: %v", r.Pix)
	}
}

func TestRotationComposition(t *testing.T) {
	g := randomGray(3, 8, 8)
	if !g.Rotate90().Rotate90().Equal(g.Rotate180()) {
		t.Error("Rotate90² != Rotate180")
	}
	if !g.Rotate90().Rotate180().Equal(g.Rotate270()) {
		t.Error("Rotate90·Rotate180 != Rotate270")
	}
	if !g.Rotate90().Rotate270().Equal(g) {
		t.Error("Rotate90·Rotate270 != identity")
	}
	if !g.Rotate180().Rotate180().Equal(g) {
		t.Error("Rotate180² != identity")
	}
}

func TestFlipsAreInvolutions(t *testing.T) {
	g := randomGray(5, 6, 9)
	if !g.FlipH().FlipH().Equal(g) {
		t.Error("FlipH² != identity")
	}
	if !g.FlipV().FlipV().Equal(g) {
		t.Error("FlipV² != identity")
	}
	// FlipH·FlipV = Rotate180.
	if !g.FlipH().FlipV().Equal(g.Rotate180()) {
		t.Error("FlipH·FlipV != Rotate180")
	}
}

func TestFlipHKnown(t *testing.T) {
	g := NewGray(3, 1)
	g.Pix = []uint8{1, 2, 3}
	if got := g.FlipH().Pix; got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Errorf("FlipH = %v", got)
	}
}

func TestOrientCoversAllEight(t *testing.T) {
	// On a generic square image the eight orientations are pairwise distinct.
	g := randomGray(7, 8, 8)
	seen := map[string]Orientation{}
	for o := Orientation(0); o < NumOrientations; o++ {
		key := string(g.Orient(o).Pix)
		if prev, dup := seen[key]; dup {
			t.Errorf("orientations %v and %v coincide", prev, o)
		}
		seen[key] = o
	}
}

func TestOrientUprightIsCopy(t *testing.T) {
	g := randomGray(9, 4, 4)
	u := g.Orient(Upright)
	if !u.Equal(g) {
		t.Error("Upright changed pixels")
	}
	u.Pix[0] ^= 0xff
	if g.Pix[0] == u.Pix[0] {
		t.Error("Orient(Upright) aliased the source")
	}
}

func TestOrientMatchesExplicitTransforms(t *testing.T) {
	g := randomGray(11, 6, 6)
	cases := []struct {
		o    Orientation
		want *Gray
	}{
		{Rot90, g.Rotate90()},
		{Rot180, g.Rotate180()},
		{Rot270, g.Rotate270()},
		{Flip, g.FlipH()},
		{FlipRot90, g.FlipH().Rotate90()},
		{FlipRot180, g.FlipH().Rotate180()},
		{FlipRot270, g.FlipH().Rotate270()},
	}
	for _, tc := range cases {
		if !g.Orient(tc.o).Equal(tc.want) {
			t.Errorf("Orient(%v) mismatch", tc.o)
		}
	}
}

func TestOrientIndexAgreesWithOrient(t *testing.T) {
	// The zero-allocation index form must reproduce Orient exactly for every
	// orientation and several tile sizes — the invariant the oriented error
	// kernel depends on.
	for _, m := range []int{1, 2, 3, 8} {
		g := randomGray(uint64(m)+1, m, m)
		for o := Orientation(0); o < NumOrientations; o++ {
			want := g.Orient(o)
			for y := 0; y < m; y++ {
				for x := 0; x < m; x++ {
					got := g.Pix[OrientIndex(o, m, x, y)]
					if got != want.Pix[y*m+x] {
						t.Fatalf("m=%d o=%v (%d,%d): OrientIndex gives %d, Orient gives %d",
							m, o, x, y, got, want.Pix[y*m+x])
					}
				}
			}
		}
	}
}

func TestOrientIndexIsBijectionProperty(t *testing.T) {
	// For every orientation, OrientIndex(o, m, ·, ·) is a bijection on the
	// m² pixel indices.
	f := func(rawO, rawM uint8) bool {
		o := Orientation(rawO % NumOrientations)
		m := int(rawM)%12 + 1
		seen := make([]bool, m*m)
		for y := 0; y < m; y++ {
			for x := 0; x < m; x++ {
				i := OrientIndex(o, m, x, y)
				if i < 0 || i >= m*m || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrientationString(t *testing.T) {
	names := map[Orientation]string{
		Upright: "upright", Rot90: "rot90", Rot180: "rot180", Rot270: "rot270",
		Flip: "flip", FlipRot90: "flip+rot90", FlipRot180: "flip+rot180", FlipRot270: "flip+rot270",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	if Orientation(99).String() != "orientation(?)" {
		t.Error("unknown orientation name")
	}
}

func BenchmarkOrient16(b *testing.B) {
	g := randomGray(1, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Orient(Orientation(i % NumOrientations))
	}
}
