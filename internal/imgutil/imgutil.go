// Package imgutil provides the 8-bit image types used throughout the
// photomosaic library.
//
// The paper operates on N×N 8-bit grayscale images; the color extension
// (paper §II) uses 24-bit RGB. Both are stored as flat row-major pixel
// slices so tile extraction and error kernels can index without bounds
// gymnastics, and so the CUDA-style kernels in internal/cuda can treat the
// pixel buffer as "global memory".
package imgutil

import (
	"errors"
	"fmt"
	"image"
	"image/color"
)

// ErrBounds reports an out-of-range image access or malformed geometry.
var ErrBounds = errors.New("imgutil: coordinates out of bounds")

// Gray is an 8-bit grayscale image with row-major pixel storage.
// Pixel (x, y) lives at Pix[y*W+x].
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray returns a zeroed w×h grayscale image.
// It panics if w or h is not positive, mirroring image.NewGray's behaviour
// for nonsensical geometry.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgutil: NewGray(%d, %d): non-positive dimensions", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// NewGrayFrom wraps an existing pixel slice as a Gray image.
// The slice is used directly (not copied); len(pix) must equal w*h.
func NewGrayFrom(w, h int, pix []uint8) (*Gray, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return nil, fmt.Errorf("imgutil: NewGrayFrom(%d, %d) with %d pixels: %w", w, h, len(pix), ErrBounds)
	}
	return &Gray{W: w, H: h, Pix: pix}, nil
}

// At returns the pixel at (x, y). It panics on out-of-range access.
func (g *Gray) At(x, y int) uint8 {
	if uint(x) >= uint(g.W) || uint(y) >= uint(g.H) {
		panic(fmt.Sprintf("imgutil: Gray.At(%d, %d) on %dx%d image", x, y, g.W, g.H))
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y). It panics on out-of-range access.
func (g *Gray) Set(x, y int, v uint8) {
	if uint(x) >= uint(g.W) || uint(y) >= uint(g.H) {
		panic(fmt.Sprintf("imgutil: Gray.Set(%d, %d) on %dx%d image", x, y, g.W, g.H))
	}
	g.Pix[y*g.W+x] = v
}

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Equal reports whether g and o have identical geometry and pixels.
func (g *Gray) Equal(o *Gray) bool {
	if g.W != o.W || g.H != o.H {
		return false
	}
	for i, p := range g.Pix {
		if o.Pix[i] != p {
			return false
		}
	}
	return true
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// SubImage copies the w×h rectangle with top-left corner (x, y) into a new
// image. Unlike image.Gray.SubImage the result does not alias g.
func (g *Gray) SubImage(x, y, w, h int) (*Gray, error) {
	if x < 0 || y < 0 || w <= 0 || h <= 0 || x+w > g.W || y+h > g.H {
		return nil, fmt.Errorf("imgutil: SubImage(%d, %d, %d, %d) of %dx%d: %w", x, y, w, h, g.W, g.H, ErrBounds)
	}
	out := NewGray(w, h)
	for row := 0; row < h; row++ {
		src := g.Pix[(y+row)*g.W+x : (y+row)*g.W+x+w]
		copy(out.Pix[row*w:(row+1)*w], src)
	}
	return out, nil
}

// Blit copies src into g with src's top-left corner at (x, y).
func (g *Gray) Blit(src *Gray, x, y int) error {
	if x < 0 || y < 0 || x+src.W > g.W || y+src.H > g.H {
		return fmt.Errorf("imgutil: Blit %dx%d at (%d, %d) into %dx%d: %w", src.W, src.H, x, y, g.W, g.H, ErrBounds)
	}
	for row := 0; row < src.H; row++ {
		copy(g.Pix[(y+row)*g.W+x:(y+row)*g.W+x+src.W], src.Pix[row*src.W:(row+1)*src.W])
	}
	return nil
}

// ToImage converts g to a stdlib *image.Gray (pixels are copied).
func (g *Gray) ToImage() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		copy(img.Pix[y*img.Stride:y*img.Stride+g.W], g.Pix[y*g.W:(y+1)*g.W])
	}
	return img
}

// GrayFromImage converts any stdlib image to a Gray using the standard
// luminance conversion performed by the color.GrayModel.
func GrayFromImage(src image.Image) *Gray {
	b := src.Bounds()
	out := NewGray(b.Dx(), b.Dy())
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			c := color.GrayModel.Convert(src.At(b.Min.X+x, b.Min.Y+y)).(color.Gray)
			out.Pix[y*out.W+x] = c.Y
		}
	}
	return out
}

// ResizeNearest returns g scaled to w×h with nearest-neighbour sampling.
// It is used to bring arbitrary user images to the power-of-two sizes the
// paper evaluates (512, 1024, 2048).
func (g *Gray) ResizeNearest(w, h int) *Gray {
	out := NewGray(w, h)
	for y := 0; y < h; y++ {
		sy := y * g.H / h
		for x := 0; x < w; x++ {
			sx := x * g.W / w
			out.Pix[y*w+x] = g.Pix[sy*g.W+sx]
		}
	}
	return out
}

// ResizeBilinear returns g scaled to w×h with bilinear interpolation.
func (g *Gray) ResizeBilinear(w, h int) *Gray {
	out := NewGray(w, h)
	if g.W == 1 && g.H == 1 {
		out.Fill(g.Pix[0])
		return out
	}
	for y := 0; y < h; y++ {
		fy := 0.0
		if h > 1 {
			fy = float64(y) * float64(g.H-1) / float64(h-1)
		}
		y0 := int(fy)
		y1 := y0
		if y1 < g.H-1 {
			y1++
		}
		wy := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := 0.0
			if w > 1 {
				fx = float64(x) * float64(g.W-1) / float64(w-1)
			}
			x0 := int(fx)
			x1 := x0
			if x1 < g.W-1 {
				x1++
			}
			wx := fx - float64(x0)
			p00 := float64(g.Pix[y0*g.W+x0])
			p01 := float64(g.Pix[y0*g.W+x1])
			p10 := float64(g.Pix[y1*g.W+x0])
			p11 := float64(g.Pix[y1*g.W+x1])
			top := p00 + (p01-p00)*wx
			bot := p10 + (p11-p10)*wx
			v := top + (bot-top)*wy
			out.Pix[y*w+x] = uint8(v + 0.5)
		}
	}
	return out
}

// MeanIntensity returns the average pixel value of g.
func (g *Gray) MeanIntensity() float64 {
	var sum uint64
	for _, p := range g.Pix {
		sum += uint64(p)
	}
	return float64(sum) / float64(len(g.Pix))
}

// AbsDiffSum returns Σ|g−o| over all pixels, the paper's Eq. (1) error
// applied to whole images. Geometry must match.
func (g *Gray) AbsDiffSum(o *Gray) (int64, error) {
	if g.W != o.W || g.H != o.H {
		return 0, fmt.Errorf("imgutil: AbsDiffSum %dx%d vs %dx%d: %w", g.W, g.H, o.W, o.H, ErrBounds)
	}
	var sum int64
	for i, p := range g.Pix {
		d := int64(p) - int64(o.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum, nil
}
