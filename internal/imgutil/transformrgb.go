package imgutil

// Color counterparts of the grayscale geometric transforms, so color
// pipelines can manipulate tiles the same way (the oriented-mosaic
// extension itself is grayscale-only; these keep the RGB type complete for
// downstream users rotating or mirroring whole images).

// Rotate90 returns m rotated 90° counter-clockwise (W and H swap).
func (m *RGB) Rotate90() *RGB {
	out := NewRGB(m.H, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			si := 3 * (y*m.W + x)
			di := 3 * ((m.W-1-x)*out.W + y)
			out.Pix[di], out.Pix[di+1], out.Pix[di+2] = m.Pix[si], m.Pix[si+1], m.Pix[si+2]
		}
	}
	return out
}

// Rotate180 returns m rotated 180°.
func (m *RGB) Rotate180() *RGB {
	out := NewRGB(m.W, m.H)
	n := m.W * m.H
	for i := 0; i < n; i++ {
		si := 3 * i
		di := 3 * (n - 1 - i)
		out.Pix[di], out.Pix[di+1], out.Pix[di+2] = m.Pix[si], m.Pix[si+1], m.Pix[si+2]
	}
	return out
}

// Rotate270 returns m rotated 270° counter-clockwise (= 90° clockwise).
func (m *RGB) Rotate270() *RGB {
	out := NewRGB(m.H, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			si := 3 * (y*m.W + x)
			di := 3 * (x*out.W + (m.H - 1 - y))
			out.Pix[di], out.Pix[di+1], out.Pix[di+2] = m.Pix[si], m.Pix[si+1], m.Pix[si+2]
		}
	}
	return out
}

// FlipH returns m mirrored about the vertical axis.
func (m *RGB) FlipH() *RGB {
	out := NewRGB(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			si := 3 * (y*m.W + x)
			di := 3 * (y*m.W + (m.W - 1 - x))
			out.Pix[di], out.Pix[di+1], out.Pix[di+2] = m.Pix[si], m.Pix[si+1], m.Pix[si+2]
		}
	}
	return out
}

// FlipV returns m mirrored about the horizontal axis.
func (m *RGB) FlipV() *RGB {
	out := NewRGB(m.W, m.H)
	row := 3 * m.W
	for y := 0; y < m.H; y++ {
		copy(out.Pix[(m.H-1-y)*row:(m.H-y)*row], m.Pix[y*row:(y+1)*row])
	}
	return out
}

// Orient returns m placed in orientation o (FlipH first for the mirrored
// orientations, then the rotation — the same convention as Gray.Orient).
func (m *RGB) Orient(o Orientation) *RGB {
	base := m
	if o >= Flip {
		base = m.FlipH()
		o -= Flip
	}
	switch o {
	case Rot90:
		return base.Rotate90()
	case Rot180:
		return base.Rotate180()
	case Rot270:
		return base.Rotate270()
	}
	if base == m {
		return m.Clone()
	}
	return base
}
