package imgutil

import (
	"image"
	"testing"
	"testing/quick"
)

func TestNewGrayGeometry(t *testing.T) {
	g := NewGray(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Errorf("NewGray(4,3): W=%d H=%d len=%d", g.W, g.H, len(g.Pix))
	}
	for _, p := range g.Pix {
		if p != 0 {
			t.Fatal("NewGray not zeroed")
		}
	}
}

func TestNewGrayPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGray(%d, %d) did not panic", dims[0], dims[1])
				}
			}()
			NewGray(dims[0], dims[1])
		}()
	}
}

func TestNewGrayFrom(t *testing.T) {
	pix := []uint8{1, 2, 3, 4, 5, 6}
	g, err := NewGrayFrom(3, 2, pix)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %d, want 6", g.At(2, 1))
	}
	if _, err := NewGrayFrom(3, 2, pix[:5]); err == nil {
		t.Error("NewGrayFrom accepted a short slice")
	}
	if _, err := NewGrayFrom(0, 2, nil); err == nil {
		t.Error("NewGrayFrom accepted zero width")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	g := NewGray(8, 8)
	g.Set(3, 5, 200)
	if g.At(3, 5) != 200 {
		t.Errorf("At(3,5) = %d", g.At(3, 5))
	}
	if g.Pix[5*8+3] != 200 {
		t.Error("Set wrote to the wrong flat index")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	g := NewGray(2, 2)
	for _, xy := range [][2]int{{2, 0}, {0, 2}, {-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d, %d) did not panic", xy[0], xy[1])
				}
			}()
			g.At(xy[0], xy[1])
		}()
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := NewGray(4, 4)
	g.Set(1, 1, 42)
	c := g.Clone()
	if !g.Equal(c) {
		t.Error("clone not equal to original")
	}
	c.Set(0, 0, 9)
	if g.Equal(c) {
		t.Error("mutating clone changed original")
	}
	if g.Equal(NewGray(4, 5)) {
		t.Error("images of different sizes reported equal")
	}
}

func TestSubImageAndBlitRoundTrip(t *testing.T) {
	g := NewGray(8, 8)
	for i := range g.Pix {
		g.Pix[i] = uint8(i)
	}
	sub, err := g.SubImage(2, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.W != 4 || sub.H != 2 {
		t.Fatalf("sub geometry %dx%d", sub.W, sub.H)
	}
	if sub.At(0, 0) != g.At(2, 3) || sub.At(3, 1) != g.At(5, 4) {
		t.Error("SubImage copied wrong pixels")
	}
	// Blit it back somewhere else and verify.
	if err := g.Blit(sub, 0, 0); err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != sub.At(0, 0) || g.At(3, 1) != sub.At(3, 1) {
		t.Error("Blit wrote wrong pixels")
	}
}

func TestSubImageRejectsBadRects(t *testing.T) {
	g := NewGray(8, 8)
	bad := [][4]int{{-1, 0, 2, 2}, {0, -1, 2, 2}, {7, 0, 2, 2}, {0, 7, 2, 2}, {0, 0, 0, 2}, {0, 0, 9, 1}}
	for _, r := range bad {
		if _, err := g.SubImage(r[0], r[1], r[2], r[3]); err == nil {
			t.Errorf("SubImage(%v) accepted", r)
		}
	}
}

func TestBlitRejectsOutOfBounds(t *testing.T) {
	g := NewGray(4, 4)
	src := NewGray(3, 3)
	for _, xy := range [][2]int{{2, 0}, {0, 2}, {-1, 0}} {
		if err := g.Blit(src, xy[0], xy[1]); err == nil {
			t.Errorf("Blit at (%d, %d) accepted", xy[0], xy[1])
		}
	}
}

func TestToImageFromImageRoundTrip(t *testing.T) {
	g := NewGray(5, 7)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 3)
	}
	back := GrayFromImage(g.ToImage())
	if !g.Equal(back) {
		t.Error("ToImage/GrayFromImage round trip changed pixels")
	}
}

func TestGrayFromImageRespectsBounds(t *testing.T) {
	// A sub-image with non-zero Min must still convert correctly.
	base := image.NewGray(image.Rect(0, 0, 10, 10))
	for i := range base.Pix {
		base.Pix[i] = uint8(i)
	}
	sub := base.SubImage(image.Rect(2, 2, 6, 6)).(*image.Gray)
	g := GrayFromImage(sub)
	if g.W != 4 || g.H != 4 {
		t.Fatalf("geometry %dx%d", g.W, g.H)
	}
	if g.At(0, 0) != base.GrayAt(2, 2).Y {
		t.Error("conversion ignored bounds offset")
	}
}

func TestResizeNearestExact(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 10)
	g.Set(1, 0, 20)
	g.Set(0, 1, 30)
	g.Set(1, 1, 40)
	up := g.ResizeNearest(4, 4)
	if up.At(0, 0) != 10 || up.At(3, 3) != 40 || up.At(2, 1) != 20 {
		t.Errorf("ResizeNearest quadrants wrong: %v", up.Pix)
	}
	down := up.ResizeNearest(2, 2)
	if !down.Equal(g) {
		t.Error("down-scaling an exact upscale did not return the original")
	}
}

func TestResizeBilinearPreservesConstant(t *testing.T) {
	g := NewGray(5, 5)
	g.Fill(123)
	r := g.ResizeBilinear(9, 3)
	for _, p := range r.Pix {
		if p != 123 {
			t.Fatalf("constant image changed under bilinear resize: %d", p)
		}
	}
}

func TestResizeBilinearEndpoints(t *testing.T) {
	g := NewGray(2, 1)
	g.Set(0, 0, 0)
	g.Set(1, 0, 200)
	r := g.ResizeBilinear(5, 1)
	if r.At(0, 0) != 0 || r.At(4, 0) != 200 {
		t.Errorf("endpoints %d..%d, want 0..200", r.At(0, 0), r.At(4, 0))
	}
	if r.At(2, 0) != 100 {
		t.Errorf("midpoint %d, want 100", r.At(2, 0))
	}
}

func TestResizeBilinearFromSinglePixel(t *testing.T) {
	g := NewGray(1, 1)
	g.Fill(77)
	r := g.ResizeBilinear(3, 3)
	for _, p := range r.Pix {
		if p != 77 {
			t.Fatal("1x1 upscale not constant")
		}
	}
}

func TestMeanIntensity(t *testing.T) {
	g := NewGray(2, 2)
	g.Pix = []uint8{0, 100, 100, 200}
	if m := g.MeanIntensity(); m != 100 {
		t.Errorf("mean = %v, want 100", m)
	}
}

func TestAbsDiffSum(t *testing.T) {
	a := NewGray(2, 2)
	b := NewGray(2, 2)
	a.Pix = []uint8{10, 20, 30, 40}
	b.Pix = []uint8{12, 18, 30, 45}
	got, err := a.AbsDiffSum(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2+2+0+5 {
		t.Errorf("AbsDiffSum = %d, want 9", got)
	}
	// Symmetry and zero-on-self.
	rev, _ := b.AbsDiffSum(a)
	if rev != got {
		t.Error("AbsDiffSum not symmetric")
	}
	self, _ := a.AbsDiffSum(a)
	if self != 0 {
		t.Error("AbsDiffSum(a, a) != 0")
	}
	if _, err := a.AbsDiffSum(NewGray(3, 3)); err == nil {
		t.Error("AbsDiffSum accepted mismatched geometry")
	}
}

func TestAbsDiffSumProperties(t *testing.T) {
	// Property: 0 ≤ AbsDiffSum ≤ 255·pixels, and triangle inequality.
	f := func(seed1, seed2, seed3 uint64) bool {
		a, b, c := randomGray(seed1, 6, 6), randomGray(seed2, 6, 6), randomGray(seed3, 6, 6)
		ab, _ := a.AbsDiffSum(b)
		bc, _ := b.AbsDiffSum(c)
		ac, _ := a.AbsDiffSum(c)
		return ab >= 0 && ab <= 255*36 && ac <= ab+bc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomGray builds a deterministic pseudo-random image for property tests.
func randomGray(seed uint64, w, h int) *Gray {
	g := NewGray(w, h)
	s := seed
	for i := range g.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		g.Pix[i] = uint8(s)
	}
	return g
}

func BenchmarkAbsDiffSum512(b *testing.B) {
	x := randomGray(1, 512, 512)
	y := randomGray(2, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.AbsDiffSum(y); err != nil {
			b.Fatal(err)
		}
	}
}
