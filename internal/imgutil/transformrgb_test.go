package imgutil

import "testing"

func randomRGBImg(seed uint64, w, h int) *RGB {
	m := NewRGB(w, h)
	s := seed | 1
	for i := range m.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		m.Pix[i] = uint8(s >> 24)
	}
	return m
}

func TestRGBTransformsMatchPerChannelGray(t *testing.T) {
	// Every RGB transform must act on each channel exactly as the (already
	// heavily verified) Gray transform acts on a single-channel image.
	m := randomRGBImg(7, 6, 4)
	channel := func(img *RGB, ch int) *Gray {
		g := NewGray(img.W, img.H)
		for i := 0; i < img.W*img.H; i++ {
			g.Pix[i] = img.Pix[3*i+ch]
		}
		return g
	}
	cases := []struct {
		name string
		rgb  func(*RGB) *RGB
		gray func(*Gray) *Gray
	}{
		{"rot90", (*RGB).Rotate90, (*Gray).Rotate90},
		{"rot180", (*RGB).Rotate180, (*Gray).Rotate180},
		{"rot270", (*RGB).Rotate270, (*Gray).Rotate270},
		{"flipH", (*RGB).FlipH, (*Gray).FlipH},
		{"flipV", (*RGB).FlipV, (*Gray).FlipV},
	}
	for _, tc := range cases {
		got := tc.rgb(m)
		for ch := 0; ch < 3; ch++ {
			want := tc.gray(channel(m, ch))
			if !channel(got, ch).Equal(want) {
				t.Errorf("%s: channel %d differs from gray reference", tc.name, ch)
			}
		}
	}
}

func TestRGBOrientMatchesGrayConvention(t *testing.T) {
	m := randomRGBImg(9, 5, 5)
	for o := Orientation(0); o < NumOrientations; o++ {
		got := m.Orient(o)
		// Compare via luminance-free per-channel check against the Gray
		// convention.
		for ch := 0; ch < 3; ch++ {
			g := NewGray(m.W, m.H)
			for i := 0; i < m.W*m.H; i++ {
				g.Pix[i] = m.Pix[3*i+ch]
			}
			want := g.Orient(o)
			for i := 0; i < m.W*m.H; i++ {
				if got.Pix[3*i+ch] != want.Pix[i] {
					t.Fatalf("orientation %v channel %d pixel %d", o, ch, i)
				}
			}
		}
	}
}

func TestRGBRotationGroupLaws(t *testing.T) {
	m := randomRGBImg(3, 8, 8)
	if !m.Rotate90().Rotate90().Equal(m.Rotate180()) {
		t.Error("Rotate90² != Rotate180")
	}
	if !m.Rotate90().Rotate270().Equal(m) {
		t.Error("Rotate90·Rotate270 != identity")
	}
	if !m.FlipH().FlipH().Equal(m) {
		t.Error("FlipH² != identity")
	}
	if !m.FlipV().FlipV().Equal(m) {
		t.Error("FlipV² != identity")
	}
}

func TestRGBOrientUprightIsCopy(t *testing.T) {
	m := randomRGBImg(5, 4, 4)
	u := m.Orient(Upright)
	if !u.Equal(m) {
		t.Error("Upright changed pixels")
	}
	u.Pix[0] ^= 0xff
	if m.Pix[0] == u.Pix[0] {
		t.Error("Orient(Upright) aliased the source")
	}
}
