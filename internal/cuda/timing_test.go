package cuda

import (
	"testing"
	"time"
)

func TestMakespanSingleProcessorIsSum(t *testing.T) {
	ds := []time.Duration{3, 1, 4, 1, 5}
	if got := makespan(ds, 1); got != 14 {
		t.Errorf("makespan(p=1) = %v, want 14", got)
	}
}

func TestMakespanUnlimitedProcessorsIsMax(t *testing.T) {
	ds := []time.Duration{3, 1, 4, 1, 5}
	if got := makespan(ds, 5); got != 5 {
		t.Errorf("makespan(p=n) = %v, want 5", got)
	}
	if got := makespan(ds, 100); got != 5 {
		t.Errorf("makespan(p>n) = %v, want 5", got)
	}
}

func TestMakespanListScheduling(t *testing.T) {
	// Issue order 4,4,4,2 on 2 processors:
	// P0: 4, then 4 (ends 8); P1: 4, then 2 (ends 6) → makespan 8.
	ds := []time.Duration{4, 4, 4, 2}
	if got := makespan(ds, 2); got != 8 {
		t.Errorf("makespan = %v, want 8", got)
	}
}

func TestMakespanEmpty(t *testing.T) {
	if makespan(nil, 4) != 0 {
		t.Error("empty makespan nonzero")
	}
}

func TestMakespanBounds(t *testing.T) {
	// For any p: max(ds) ≤ makespan ≤ sum(ds), and p' > p never increases it.
	ds := []time.Duration{7, 3, 9, 2, 2, 5, 1}
	var sum, max time.Duration
	for _, d := range ds {
		sum += d
		if d > max {
			max = d
		}
	}
	prev := sum + 1
	for p := 1; p <= 8; p++ {
		m := makespan(ds, p)
		if m < max || m > sum {
			t.Errorf("p=%d: makespan %v outside [%v, %v]", p, m, max, sum)
		}
		if m > prev {
			t.Errorf("p=%d: makespan %v increased from %v with more processors", p, m, prev)
		}
		prev = m
	}
}

func TestSetTimingModelValidation(t *testing.T) {
	dev := New(1)
	if err := dev.SetTimingModel(&TimingModel{SMs: 0}); err == nil {
		t.Error("accepted SMs=0")
	}
	if err := dev.SetTimingModel(&TimingModel{SMs: 4, LaunchOverhead: -time.Second}); err == nil {
		t.Error("accepted negative overhead")
	}
	if err := dev.SetTimingModel(&TimingModel{SMs: 4}); err != nil {
		t.Error(err)
	}
	if err := dev.SetTimingModel(nil); err != nil {
		t.Error(err)
	}
}

func TestVirtualClockAccumulatesLaunchOverhead(t *testing.T) {
	dev := New(1)
	if err := dev.SetTimingModel(&TimingModel{SMs: 4, LaunchOverhead: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		dev.Launch(2, 1, func(b *Block) {})
	}
	if got := dev.VirtualTime(); got < 5*time.Millisecond {
		t.Errorf("virtual time %v, want ≥ 5ms of launch overhead", got)
	}
	dev.ResetVirtualTime()
	if dev.VirtualTime() != 0 {
		t.Error("reset did not zero the clock")
	}
}

func TestVirtualClockZeroWithoutModel(t *testing.T) {
	dev := New(2)
	dev.Launch(8, 4, func(b *Block) {})
	if dev.VirtualTime() != 0 {
		t.Error("virtual time advanced without a model")
	}
}

func TestVirtualTimeScalesWithSMs(t *testing.T) {
	// The same workload on more virtual SMs must take no longer, and on a
	// 1-SM device must be roughly the serial total.
	work := func(dev *Device) {
		dev.Launch(16, 8, func(b *Block) {
			// Busy work long enough to dwarf timer noise (~hundreds of µs).
			sink := 0
			b.StrideLoop(3000, func(i int) {
				for j := 0; j < 300; j++ {
					sink += i * j
				}
			})
			_ = sink
		})
	}
	timeWith := func(sms int) time.Duration {
		dev := New(1)
		if err := dev.SetTimingModel(&TimingModel{SMs: sms}); err != nil {
			t.Fatal(err)
		}
		work(dev)
		return dev.VirtualTime()
	}
	t1 := timeWith(1)
	t4 := timeWith(4)
	t16 := timeWith(16)
	if t4 > t1 || t16 > t4 {
		t.Errorf("virtual time not monotone in SMs: 1→%v 4→%v 16→%v", t1, t4, t16)
	}
	// 16 equal blocks on 4 SMs should land near t1/4 (loose 2× tolerance
	// for timer noise).
	if t4 > t1/2 {
		t.Errorf("4-SM virtual time %v not meaningfully below serial %v", t4, t1)
	}
}

func TestSetTimingModelResetsClock(t *testing.T) {
	dev := New(1)
	if err := dev.SetTimingModel(&TimingModel{SMs: 1, LaunchOverhead: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	dev.Launch(1, 1, func(b *Block) {})
	if dev.VirtualTime() == 0 {
		t.Fatal("no time accrued")
	}
	if err := dev.SetTimingModel(&TimingModel{SMs: 2}); err != nil {
		t.Fatal(err)
	}
	if dev.VirtualTime() != 0 {
		t.Error("SetTimingModel did not reset the clock")
	}
}
