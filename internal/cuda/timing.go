package cuda

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// TimingModel configures the device's virtual clock — a discrete-event
// simulation of a P-way accelerator.
//
// This host may have fewer cores than the paper's Tesla K40 has streaming
// multiprocessors, so wall-clock measurements cannot exhibit the paper's
// GPU/CPU speedup shape. The timing model recovers it the way architecture
// simulators do: every block's body is timed while it executes (ideally on
// a single-worker device, so measurements are uncontended serial costs),
// the measured blocks are list-scheduled in issue order onto SMs virtual
// processors, and the launch is charged the schedule makespan plus a fixed
// LaunchOverhead (the driver/launch latency that makes many tiny kernel
// launches expensive on real GPUs — the effect behind Table III's slowdown
// at S = 16²).
type TimingModel struct {
	// SMs is the number of virtual processors blocks are scheduled onto.
	// The paper's K40 has 15 SMs.
	SMs int
	// CoresPerSM models intra-block thread parallelism: a block's measured
	// serial duration is divided by min(block threads, CoresPerSM) before
	// scheduling, approximating an SM that executes that many threads at
	// once (the K40 has 192 cores per SM; memory-bound kernels sustain far
	// fewer, so calibrate rather than copying the spec sheet). ≤ 0 means 1 —
	// blocks charged at full serial cost.
	CoresPerSM int
	// LaunchOverhead is charged once per Launch, covering kernel dispatch.
	// Real CUDA launches cost ~5–10µs.
	LaunchOverhead time.Duration
}

// validate rejects nonsense models early.
func (m *TimingModel) validate() error {
	if m.SMs <= 0 {
		return fmt.Errorf("cuda: TimingModel.SMs = %d", m.SMs)
	}
	if m.LaunchOverhead < 0 {
		return fmt.Errorf("cuda: negative LaunchOverhead %v", m.LaunchOverhead)
	}
	return nil
}

// SetTimingModel enables (non-nil) or disables (nil) the virtual clock.
// Enabling resets the clock. Returns an error for invalid models.
func (d *Device) SetTimingModel(m *TimingModel) error {
	if m != nil {
		if err := m.validate(); err != nil {
			return err
		}
	}
	d.timingMu.Lock()
	defer d.timingMu.Unlock()
	d.timing = m
	d.virtualClock = 0
	return nil
}

// VirtualTime returns the accumulated virtual time of all launches since the
// model was set or the clock reset. Zero when no model is active.
func (d *Device) VirtualTime() time.Duration {
	d.timingMu.Lock()
	defer d.timingMu.Unlock()
	return d.virtualClock
}

// ResetVirtualTime zeroes the virtual clock.
func (d *Device) ResetVirtualTime() {
	d.timingMu.Lock()
	defer d.timingMu.Unlock()
	d.virtualClock = 0
}

// smHeap is a min-heap of virtual-SM free times for list scheduling.
type smHeap []time.Duration

func (h smHeap) Len() int            { return len(h) }
func (h smHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h smHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *smHeap) Push(x any)         { *h = append(*h, x.(time.Duration)) }
func (h *smHeap) Pop() any           { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h smHeap) peek() time.Duration { return h[0] }

// makespan list-schedules the block durations, in issue order, onto p
// virtual processors (each block starts on the processor that frees first,
// mirroring a GPU's block scheduler) and returns the completion time of the
// last block.
func makespan(durations []time.Duration, p int) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if p >= len(durations) {
		// Every block gets its own processor: makespan is the longest block.
		var max time.Duration
		for _, d := range durations {
			if d > max {
				max = d
			}
		}
		return max
	}
	h := make(smHeap, p)
	heap.Init(&h)
	var finish time.Duration
	for _, d := range durations {
		start := h.peek()
		end := start + d
		h[0] = end
		heap.Fix(&h, 0)
		if end > finish {
			finish = end
		}
	}
	return finish
}

// chargeLaunch records one launch's measured block durations against the
// virtual clock, scaling each block by the modelled intra-block thread
// parallelism. No-op when no model is active.
func (d *Device) chargeLaunch(durations []time.Duration, threadsPerBlock int) {
	d.timingMu.Lock()
	defer d.timingMu.Unlock()
	if d.timing == nil {
		return
	}
	width := d.timing.CoresPerSM
	if width < 1 {
		width = 1
	}
	if threadsPerBlock < width {
		width = threadsPerBlock
	}
	if width > 1 {
		scaled := make([]time.Duration, len(durations))
		for i, dur := range durations {
			scaled[i] = dur / time.Duration(width)
		}
		durations = scaled
	}
	d.virtualClock += d.timing.LaunchOverhead + makespan(durations, d.timing.SMs)
}

// timingEnabled reports whether a model is active (cheap racy read is fine:
// callers re-check under the lock when charging).
func (d *Device) timingEnabled() bool {
	d.timingMu.Lock()
	defer d.timingMu.Unlock()
	return d.timing != nil
}

// timingState carries the virtual clock; embedded in Device so the timing
// machinery lives in one file.
type timingState struct {
	timingMu     sync.Mutex
	timing       *TimingModel
	virtualClock time.Duration
}
