package cuda

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault model.
//
// The paper's pipeline assumes a healthy Tesla K40; this package's simulator
// inherited that optimism — every device problem was a panic. A serving
// layer needs the opposite contract: launches that can *fail*, with typed
// errors a retry policy can classify, and a way to make those failures
// happen on demand so the recovery paths are testable. The types below
// provide both halves:
//
//   - FaultInjector decides, per launch, whether to inject latency, a hang,
//     or a typed failure. Installed per Device with WithFaults.
//   - LaunchErr/ExecuteErr are the error-returning variants of
//     Launch/LaunchRange. Injected faults surface as errors from them; the
//     panicking Launch/LaunchRange stay unchanged for programmer misuse
//     (concurrent launches, bad thread counts, kernel panics).
//   - FaultPlan is the built-in deterministic injector: nth-launch,
//     every-nth, seeded probability and kernel-name matching, so a chaos
//     test replays the exact same storm every run.
//
// A fault that wraps ErrDeviceLost additionally marks the device lost:
// every subsequent LaunchErr/ExecuteErr fails fast with ErrDeviceLost until
// ClearLost — modelling a real device loss, which persists until the host
// resets the device. Health probes (internal/service's device pool) call
// ClearLost and then Canary to test whether the device has come back.

// Typed launch errors. Injected faults wrap one of these; classify with
// errors.Is.
var (
	// ErrLaunchFailed is a transient kernel-launch failure — the retryable
	// case (cudaErrorLaunchFailure-shaped).
	ErrLaunchFailed = errors.New("cuda: kernel launch failed")
	// ErrDeviceLost is a persistent device failure — retrying on the same
	// device is pointless until it is reset (cudaErrorDeviceLost-shaped).
	// The device stays lost until ClearLost.
	ErrDeviceLost = errors.New("cuda: device lost")
	// ErrDeviceHung reports a launch that never completed before the
	// context's deadline — the watchdog-timeout shape. It wraps the context
	// error, so errors.Is(err, context.DeadlineExceeded) also holds when the
	// job deadline expired.
	ErrDeviceHung = errors.New("cuda: device hung")
)

// KernelCanary is the kernel name Canary launches under, so fault plans can
// target or spare health probes explicitly.
const KernelCanary = "canary"

// LaunchInfo describes one fault-checked launch to an injector.
type LaunchInfo struct {
	// Kernel is the name passed to LaunchErr/ExecuteErr.
	Kernel string
	// Ordinal is the 1-based count of fault-checked launches on this device
	// (only launches made while an injector is installed are counted).
	Ordinal int64
}

// Fault is an injector's verdict for one launch. The zero value lets the
// launch proceed normally.
type Fault struct {
	// Err, when non-nil, fails the launch with this error (after Delay, if
	// any). Wrap or use ErrLaunchFailed/ErrDeviceLost; an Err satisfying
	// errors.Is(Err, ErrDeviceLost) marks the device lost.
	Err error
	// Delay injects latency before the verdict is applied. With a nil Err it
	// is pure latency injection: the launch then runs normally. If the
	// context expires during the delay the launch fails with ErrDeviceHung.
	Delay time.Duration
	// Hang makes the launch block until the context is done and then fail
	// with ErrDeviceHung — the infinite-delay case. Only meaningful when the
	// caller's context carries a deadline or is cancelled.
	Hang bool
}

// FaultInjector decides per launch whether to inject a fault. Decide must be
// safe for concurrent use: a device pool probes and launches from different
// goroutines.
type FaultInjector interface {
	Decide(LaunchInfo) Fault
}

// faultState carries the per-device fault-injection machinery; embedded in
// Device so the zero state (no injector, not lost) costs one atomic load per
// LaunchErr.
type faultState struct {
	injMu sync.Mutex
	inj   FaultInjector
	// launchSeq numbers fault-checked launches for LaunchInfo.Ordinal.
	launchSeq atomic.Int64
	// lost is the sticky device-lost flag (see ErrDeviceLost).
	lost atomic.Bool
	// faultsInjected counts launches that failed with an injected fault.
	faultsInjected atomic.Int64
}

// WithFaults installs a fault injector (nil removes it) and returns the
// device, so construction reads cuda.New(4).WithFaults(plan). Install a
// separate injector per device — the built-in FaultPlan keeps internal
// state (probability stream, fault budget) that should not be shared.
func (d *Device) WithFaults(fi FaultInjector) *Device {
	d.injMu.Lock()
	d.inj = fi
	d.injMu.Unlock()
	return d
}

// Lost reports whether the device is in the sticky lost state.
func (d *Device) Lost() bool { return d.lost.Load() }

// ClearLost resets the lost flag — the virtual analogue of cudaDeviceReset.
// It does not remove the injector: a probe that resets and relaunches may be
// told the device is lost again, which is exactly how a dead device stays
// quarantined.
func (d *Device) ClearLost() { d.lost.Store(false) }

// FaultsInjected returns how many launches failed with an injected fault
// since construction.
func (d *Device) FaultsInjected() int64 { return d.faultsInjected.Load() }

// faultCheck is the gate LaunchErr/ExecuteErr run before the real launch:
// fail fast on a lost device or a dead context, then consult the injector.
func (d *Device) faultCheck(ctx context.Context, kernel string) error {
	if d.lost.Load() {
		return fmt.Errorf("cuda: launch %q: %w", kernel, ErrDeviceLost)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cuda: launch %q: %w", kernel, err)
	}
	d.injMu.Lock()
	inj := d.inj
	d.injMu.Unlock()
	if inj == nil {
		return nil
	}
	f := inj.Decide(LaunchInfo{Kernel: kernel, Ordinal: d.launchSeq.Add(1)})
	if f.Hang {
		d.faultsInjected.Add(1)
		<-ctx.Done()
		return fmt.Errorf("cuda: launch %q: %w: %w", kernel, ErrDeviceHung, ctx.Err())
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			d.faultsInjected.Add(1)
			return fmt.Errorf("cuda: launch %q: %w: %w", kernel, ErrDeviceHung, ctx.Err())
		}
	}
	if f.Err != nil {
		d.faultsInjected.Add(1)
		if errors.Is(f.Err, ErrDeviceLost) {
			d.lost.Store(true)
		}
		return fmt.Errorf("cuda: launch %q: %w", kernel, f.Err)
	}
	return nil
}

// LaunchErr is Launch with an error path: the launch is checked against the
// device's fault state (lost flag, installed injector, context) and injected
// faults return as typed errors instead of running the kernel. kernel names
// the launch for injector matching and error messages. A healthy check runs
// the kernel exactly as Launch would — bit-identical results, same metrics —
// and programmer misuse (threadsPerBlock ≤ 0, concurrent launches, panics
// inside the kernel) keeps the panic contract.
func (d *Device) LaunchErr(ctx context.Context, kernel string, grid, threadsPerBlock int, k func(b *Block)) error {
	if grid <= 0 {
		return nil
	}
	if threadsPerBlock <= 0 {
		panic(fmt.Sprintf("cuda: LaunchErr with threadsPerBlock=%d", threadsPerBlock))
	}
	if err := d.faultCheck(ctx, kernel); err != nil {
		return err
	}
	d.Launch(grid, threadsPerBlock, k)
	return nil
}

// ExecuteErr is LaunchRange with the same error path as LaunchErr: the
// fault gate runs first, a healthy gate executes the range exactly as
// LaunchRange would.
func (d *Device) ExecuteErr(ctx context.Context, kernel string, n int, body func(i int)) error {
	if n <= 0 {
		return nil
	}
	if err := d.faultCheck(ctx, kernel); err != nil {
		return err
	}
	d.LaunchRange(n, body)
	return nil
}

// Canary launches a tiny self-checking kernel through the fault gate — the
// health probe a device pool runs against a quarantined device. It exercises
// a launch, shared memory and the thread loop; any injected fault surfaces
// as the error.
func (d *Device) Canary(ctx context.Context) error {
	const threads = 32
	return d.LaunchErr(ctx, KernelCanary, 1, threads, func(b *Block) {
		sh := b.SharedInts(threads)
		b.ForThreads(func(t int) { sh[t] = int32(t) })
		b.ForThreads(func(t int) {
			if sh[t] != int32(t) {
				panic("cuda: canary shared-memory mismatch")
			}
		})
	})
}

// FaultPlan is the built-in deterministic FaultInjector: a seeded plan that
// matches launches by ordinal (EveryNth, Nth), by seeded probability, and/or
// by kernel name, and injects a typed error, latency or a hang. The zero
// value matches every launch with ErrLaunchFailed — the total-storm plan.
//
// Matching: Kernel (when set) must match exactly; of the ordinal selectors,
// any that is set may match (EveryNth, Nth, Probability are OR-ed); when
// none is set every launch matches. MaxFaults bounds the injected failures,
// after which the plan goes quiet — how a test storm dies out so a probe can
// restore the device.
//
// A plan keeps internal state (the probability stream, the fault budget);
// install a separate instance per device.
type FaultPlan struct {
	// Seed seeds the Probability stream; the same seed replays the same
	// decisions.
	Seed uint64
	// Probability in (0, 1] fails each matched launch with that chance.
	Probability float64
	// EveryNth matches launches whose ordinal is a multiple of n (2 = every
	// other launch, starting with the second).
	EveryNth int64
	// Nth matches the exact launch ordinals listed (1-based).
	Nth []int64
	// Kernel restricts the plan to launches with this kernel name ("" = all).
	Kernel string
	// Err is the injected error; nil selects ErrLaunchFailed unless the
	// fault is latency-only (Delay set, Hang false).
	Err error
	// Delay is injected latency on matched launches. With a nil Err and
	// Hang false the plan is pure latency injection.
	Delay time.Duration
	// Hang makes matched launches block until the caller's deadline and fail
	// with ErrDeviceHung.
	Hang bool
	// MaxFaults bounds the total injected failures (0 = unlimited); latency-
	// only matches do not consume the budget.
	MaxFaults int64

	mu       sync.Mutex
	rng      uint64
	rngInit  bool
	injected int64
}

// Clone returns a fresh plan with the same configuration and none of the
// internal state (probability stream, fault budget). Plans are stateful, so a
// spec parsed once can be fanned out to N devices by cloning — each clone
// counts its own ordinals and budget, exactly as N separate parses would.
func (p *FaultPlan) Clone() *FaultPlan {
	return &FaultPlan{
		Seed:        p.Seed,
		Probability: p.Probability,
		EveryNth:    p.EveryNth,
		Nth:         append([]int64(nil), p.Nth...),
		Kernel:      p.Kernel,
		Err:         p.Err,
		Delay:       p.Delay,
		Hang:        p.Hang,
		MaxFaults:   p.MaxFaults,
	}
}

// Decide implements FaultInjector.
func (p *FaultPlan) Decide(info LaunchInfo) Fault {
	if p.Kernel != "" && p.Kernel != info.Kernel {
		return Fault{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	selective := false
	matched := false
	if p.EveryNth > 0 {
		selective = true
		if info.Ordinal%p.EveryNth == 0 {
			matched = true
		}
	}
	if len(p.Nth) > 0 {
		selective = true
		for _, n := range p.Nth {
			if n == info.Ordinal {
				matched = true
			}
		}
	}
	if p.Probability > 0 {
		selective = true
		if !p.rngInit {
			p.rng = p.Seed
			p.rngInit = true
		}
		if p.randFloat() < p.Probability {
			matched = true
		}
	}
	if !selective {
		matched = true
	}
	if !matched {
		return Fault{}
	}
	f := Fault{Err: p.Err, Delay: p.Delay, Hang: p.Hang}
	if f.Err == nil && !f.Hang {
		if f.Delay > 0 {
			return f // latency-only: not a failure, no budget consumed
		}
		f.Err = ErrLaunchFailed
	}
	if p.MaxFaults > 0 && p.injected >= p.MaxFaults {
		return Fault{}
	}
	p.injected++
	return f
}

// Injected returns how many failures the plan has injected so far.
func (p *FaultPlan) Injected() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// randFloat advances the plan's splitmix64 stream and returns a float in
// [0, 1). Caller holds p.mu.
func (p *FaultPlan) randFloat() float64 {
	p.rng += 0x9E3779B97F4A7C15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// ParseFaultSpec builds a FaultPlan from the comma-separated key=value spec
// the CLIs' -chaos flags accept:
//
//	every=N          fail every Nth launch (2 = every other)
//	nth=3+7+9        fail the listed launch ordinals (plus-separated)
//	prob=0.25        fail each launch with this probability
//	seed=7           seed the probability stream
//	kernel=NAME      restrict to launches of this kernel (cost-matrix,
//	                 swap-sweep, canary, ...)
//	err=launch|lost  injected error class (default launch)
//	hang             matched launches hang until the deadline
//	delay=5ms        injected latency on matched launches
//	max=N            stop injecting after N failures
//
// Example: "every=2,err=launch" is the every-other-launch storm;
// "nth=1,err=lost" kills the device on first use; "prob=0.3,seed=1,max=10"
// is a bounded random storm that dies out.
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	p := &FaultPlan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("cuda: fault spec every=%q: want a positive integer", val)
			}
			p.EveryNth = n
		case "nth":
			for _, s := range strings.Split(val, "+") {
				n, err := strconv.ParseInt(s, 10, 64)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("cuda: fault spec nth=%q: want positive integers separated by +", val)
				}
				p.Nth = append(p.Nth, n)
			}
		case "prob":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 || math.IsNaN(f) {
				return nil, fmt.Errorf("cuda: fault spec prob=%q: want a value in (0, 1]", val)
			}
			p.Probability = f
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cuda: fault spec seed=%q: want an unsigned integer", val)
			}
			p.Seed = n
		case "kernel":
			if val == "" {
				return nil, fmt.Errorf("cuda: fault spec kernel=: want a kernel name")
			}
			p.Kernel = val
		case "err":
			switch val {
			case "launch":
				p.Err = ErrLaunchFailed
			case "lost":
				p.Err = ErrDeviceLost
			default:
				return nil, fmt.Errorf("cuda: fault spec err=%q: want launch or lost", val)
			}
		case "hang":
			if hasVal && val != "true" {
				return nil, fmt.Errorf("cuda: fault spec hang=%q: hang takes no value", val)
			}
			p.Hang = true
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("cuda: fault spec delay=%q: want a non-negative duration", val)
			}
			p.Delay = d
		case "max":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("cuda: fault spec max=%q: want a positive integer", val)
			}
			p.MaxFaults = n
		default:
			return nil, fmt.Errorf("cuda: fault spec: unknown key %q", key)
		}
	}
	return p, nil
}
