package cuda

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestLaunchErrHealthy: with no injector, LaunchErr behaves exactly like
// Launch — runs the kernel, returns nil, counts no faults.
func TestLaunchErrHealthy(t *testing.T) {
	d := New(2)
	var ran atomic.Int64
	err := d.LaunchErr(context.Background(), "k", 4, 8, func(b *Block) {
		b.ForThreads(func(int) { ran.Add(1) })
	})
	if err != nil {
		t.Fatalf("LaunchErr on healthy device: %v", err)
	}
	if got := ran.Load(); got != 4*8 {
		t.Fatalf("kernel ran %d thread-iterations, want %d", got, 4*8)
	}
	if d.FaultsInjected() != 0 {
		t.Fatalf("healthy device reports %d injected faults", d.FaultsInjected())
	}
}

// TestFaultPlanEveryNth: every=2 fails exactly the even-ordinal launches.
func TestFaultPlanEveryNth(t *testing.T) {
	d := New(1).WithFaults(&FaultPlan{EveryNth: 2})
	ctx := context.Background()
	var outcomes []bool
	for i := 0; i < 6; i++ {
		err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) {})
		outcomes = append(outcomes, err != nil)
		if err != nil && !errors.Is(err, ErrLaunchFailed) {
			t.Fatalf("launch %d: got %v, want ErrLaunchFailed", i+1, err)
		}
	}
	want := []bool{false, true, false, true, false, true}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("launch %d failed=%v, want %v (outcomes %v)", i+1, outcomes[i], want[i], outcomes)
		}
	}
	if d.FaultsInjected() != 3 {
		t.Fatalf("FaultsInjected = %d, want 3", d.FaultsInjected())
	}
}

// TestFaultPlanNth: nth-launch matching fires on exactly the listed ordinals.
func TestFaultPlanNth(t *testing.T) {
	d := New(1).WithFaults(&FaultPlan{Nth: []int64{1, 4}})
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) {})
		wantFail := i == 1 || i == 4
		if (err != nil) != wantFail {
			t.Fatalf("launch %d: err=%v, want failure=%v", i, err, wantFail)
		}
	}
}

// TestFaultPlanKernelMatch: a kernel-scoped plan spares other kernels.
func TestFaultPlanKernelMatch(t *testing.T) {
	d := New(1).WithFaults(&FaultPlan{Kernel: "cost-matrix"})
	ctx := context.Background()
	if err := d.LaunchErr(ctx, "swap-sweep", 1, 1, func(*Block) {}); err != nil {
		t.Fatalf("unmatched kernel failed: %v", err)
	}
	if err := d.LaunchErr(ctx, "cost-matrix", 1, 1, func(*Block) {}); !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("matched kernel: got %v, want ErrLaunchFailed", err)
	}
}

// TestFaultPlanProbabilityDeterministic: the same seed replays the same
// fault decisions; a different seed (almost surely) differs somewhere, and
// the empirical rate is in a sane band around the target.
func TestFaultPlanProbabilityDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		d := New(1).WithFaults(&FaultPlan{Probability: 0.5, Seed: seed})
		out := make([]bool, 200)
		for i := range out {
			out[i] = d.LaunchErr(context.Background(), "k", 1, 1, func(*Block) {}) != nil
		}
		return out
	}
	a, b := run(7), run(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at launch %d", i+1)
		}
		if a[i] {
			fails++
		}
	}
	if fails < 60 || fails > 140 {
		t.Fatalf("prob=0.5 over 200 launches injected %d faults; want roughly half", fails)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestDeviceLostSticky: an ErrDeviceLost fault poisons every later launch
// until ClearLost, and Lost() reflects the state.
func TestDeviceLostSticky(t *testing.T) {
	d := New(1).WithFaults(&FaultPlan{Nth: []int64{1}, Err: ErrDeviceLost})
	ctx := context.Background()
	if err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) {}); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("first launch: got %v, want ErrDeviceLost", err)
	}
	if !d.Lost() {
		t.Fatal("device not marked lost after ErrDeviceLost")
	}
	// Subsequent launches fail fast without consulting the injector (the
	// plan only matches ordinal 1, so this failure comes from the flag).
	if err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) {}); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("launch on lost device: got %v, want ErrDeviceLost", err)
	}
	d.ClearLost()
	if d.Lost() {
		t.Fatal("ClearLost did not clear the flag")
	}
	if err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) {}); err != nil {
		t.Fatalf("launch after ClearLost: %v", err)
	}
}

// TestFaultHangRespectsDeadline: a hang fault blocks until the context
// deadline and reports both ErrDeviceHung and the context error.
func TestFaultHangRespectsDeadline(t *testing.T) {
	d := New(1).WithFaults(&FaultPlan{Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) { t.Fatal("hung kernel ran") })
	if !errors.Is(err, ErrDeviceHung) {
		t.Fatalf("got %v, want ErrDeviceHung", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestFaultDelayOnly: a delay-only plan injects latency but lets the launch
// succeed and counts no faults.
func TestFaultDelayOnly(t *testing.T) {
	d := New(1).WithFaults(&FaultPlan{Delay: 5 * time.Millisecond})
	ran := false
	start := time.Now()
	if err := d.LaunchErr(context.Background(), "k", 1, 1, func(*Block) { ran = true }); err != nil {
		t.Fatalf("delay-only launch failed: %v", err)
	}
	if !ran {
		t.Fatal("delayed kernel never ran")
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("no latency was injected")
	}
	if d.FaultsInjected() != 0 {
		t.Fatalf("latency-only injection counted as %d faults", d.FaultsInjected())
	}
}

// TestFaultDelayCancelled: cancelling mid-delay surfaces as ErrDeviceHung
// wrapping the context error.
func TestFaultDelayCancelled(t *testing.T) {
	d := New(1).WithFaults(&FaultPlan{Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) { t.Fatal("kernel ran past cancellation") })
	if !errors.Is(err, ErrDeviceHung) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ErrDeviceHung wrapping context.Canceled", err)
	}
}

// TestFaultPlanMaxFaults: the budget bounds injected failures, after which
// the storm dies out and launches succeed again.
func TestFaultPlanMaxFaults(t *testing.T) {
	plan := &FaultPlan{MaxFaults: 2}
	d := New(1).WithFaults(plan)
	ctx := context.Background()
	for i := 1; i <= 2; i++ {
		if err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) {}); !errors.Is(err, ErrLaunchFailed) {
			t.Fatalf("launch %d: got %v, want ErrLaunchFailed", i, err)
		}
	}
	if err := d.LaunchErr(ctx, "k", 1, 1, func(*Block) {}); err != nil {
		t.Fatalf("launch after budget exhausted: %v", err)
	}
	if plan.Injected() != 2 {
		t.Fatalf("plan.Injected = %d, want 2", plan.Injected())
	}
}

// TestExecuteErrFaults: ExecuteErr routes through the same gate.
func TestExecuteErrFaults(t *testing.T) {
	d := New(2).WithFaults(&FaultPlan{Nth: []int64{1}})
	var ran atomic.Int64
	if err := d.ExecuteErr(context.Background(), "rows", 16, func(int) { ran.Add(1) }); !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("got %v, want ErrLaunchFailed", err)
	}
	if ran.Load() != 0 {
		t.Fatal("body ran despite injected fault")
	}
	if err := d.ExecuteErr(context.Background(), "rows", 16, func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("second ExecuteErr: %v", err)
	}
	if ran.Load() != 16 {
		t.Fatalf("body ran %d times, want 16", ran.Load())
	}
}

// TestCanary: healthy devices pass the probe; a faulted one fails it with
// the injected error.
func TestCanary(t *testing.T) {
	if err := New(2).Canary(context.Background()); err != nil {
		t.Fatalf("healthy canary failed: %v", err)
	}
	d := New(2).WithFaults(&FaultPlan{Kernel: KernelCanary, Err: ErrDeviceLost})
	if err := d.Canary(context.Background()); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("faulted canary: got %v, want ErrDeviceLost", err)
	}
}

// TestParseFaultSpec covers the -chaos flag grammar.
func TestParseFaultSpec(t *testing.T) {
	p, err := ParseFaultSpec("every=2,err=launch")
	if err != nil {
		t.Fatalf("ParseFaultSpec: %v", err)
	}
	if p.EveryNth != 2 || !errors.Is(p.Err, ErrLaunchFailed) {
		t.Fatalf("every=2,err=launch parsed as %+v", p)
	}
	p, err = ParseFaultSpec("nth=3+7,err=lost,max=1,kernel=swap-sweep")
	if err != nil {
		t.Fatalf("ParseFaultSpec: %v", err)
	}
	if len(p.Nth) != 2 || p.Nth[0] != 3 || p.Nth[1] != 7 || !errors.Is(p.Err, ErrDeviceLost) || p.MaxFaults != 1 || p.Kernel != "swap-sweep" {
		t.Fatalf("nth spec parsed as %+v", p)
	}
	p, err = ParseFaultSpec("prob=0.25,seed=9,delay=5ms,hang")
	if err != nil {
		t.Fatalf("ParseFaultSpec: %v", err)
	}
	if p.Probability != 0.25 || p.Seed != 9 || p.Delay != 5*time.Millisecond || !p.Hang {
		t.Fatalf("prob spec parsed as %+v", p)
	}
	for _, bad := range []string{"every=0", "nth=a", "prob=2", "err=boom", "delay=-1s", "max=0", "wat=1", "kernel="} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("ParseFaultSpec(%q) accepted an invalid spec", bad)
		}
	}
}

// TestMultiPanicAggregation: when several workers panic in one launch, the
// rethrown panic names the count and carries every message (satellite fix:
// previously only the first was rethrown).
func TestMultiPanicAggregation(t *testing.T) {
	d := New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic propagated")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("aggregated panic is %T, want string", r)
		}
		if !strings.Contains(msg, "4 workers panicked") {
			t.Fatalf("aggregated panic %q does not name the worker count", msg)
		}
		for _, want := range []string{"boom-0", "boom-1", "boom-2", "boom-3"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("aggregated panic %q missing %q", msg, want)
			}
		}
	}()
	gate := make(chan struct{})
	var arrived atomic.Int64
	d.Launch(4, 1, func(b *Block) {
		// Hold every worker at the gate so all four panic in one launch.
		if arrived.Add(1) == 4 {
			close(gate)
		}
		<-gate
		panic("boom-" + string(rune('0'+b.Idx)))
	})
}

// TestSinglePanicPreservesValue: a single worker panic is rethrown with its
// original value, not wrapped.
func TestSinglePanicPreservesValue(t *testing.T) {
	type marker struct{ n int }
	d := New(2)
	defer func() {
		r := recover()
		m, ok := r.(marker)
		if !ok || m.n != 42 {
			t.Fatalf("panic value %v (%T), want marker{42}", r, r)
		}
	}()
	d.Launch(4, 1, func(b *Block) {
		if b.Idx == 2 {
			panic(marker{42})
		}
	})
}

// TestFaultPlanClone: a clone carries the configuration but none of the
// state, so N clones of one validated plan behave like N separate parses —
// the mosaicd -chaos fan-out path (previously each device re-parsed the spec
// and discarded the error).
func TestFaultPlanClone(t *testing.T) {
	base, err := ParseFaultSpec("nth=1+2,err=launch,max=2,delay=1ms,kernel=canary")
	if err != nil {
		t.Fatalf("ParseFaultSpec: %v", err)
	}
	// Exhaust the base plan's budget so clones must not inherit it.
	for i := int64(1); i <= 4; i++ {
		base.Decide(LaunchInfo{Kernel: "canary", Ordinal: i})
	}
	if got := base.Injected(); got != 2 {
		t.Fatalf("base injected %d faults, want 2", got)
	}
	c := base.Clone()
	if c.Injected() != 0 {
		t.Fatalf("clone inherited %d injected faults, want 0", c.Injected())
	}
	if c.EveryNth != base.EveryNth || len(c.Nth) != 2 || c.Kernel != base.Kernel ||
		c.MaxFaults != base.MaxFaults || c.Delay != base.Delay || !errors.Is(c.Err, base.Err) {
		t.Fatalf("clone config %+v does not match base %+v", c, base)
	}
	// Mutating the clone's Nth slice must not alias the base's.
	c.Nth[0] = 99
	if base.Nth[0] != 1 {
		t.Fatal("Clone aliased the Nth slice")
	}
	f := c.Decide(LaunchInfo{Kernel: "canary", Ordinal: 2})
	if f.Err == nil {
		t.Fatal("clone with a fresh budget injected nothing")
	}
}
