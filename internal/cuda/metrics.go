package cuda

import (
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Metrics is a snapshot of a device's lifetime execution counters — the
// virtual analogue of the launch/occupancy counters a CUDA profiler reports.
type Metrics struct {
	// Launches counts kernel launches (Launch calls with grid > 0 plus
	// LaunchRange calls with n > 0).
	Launches int64
	// Blocks counts thread blocks executed across all launches (LaunchRange
	// counts its contiguous worker chunks as blocks).
	Blocks int64
	// LaunchNanos is the total wall time, in nanoseconds, spent inside the
	// synchronous Launch/LaunchRange calls — the launch-accounting total a
	// profiler sums when attributing time to kernels.
	LaunchNanos int64
}

// Sub returns m − o, the delta between two snapshots — how callers charge a
// pipeline stage with the launches it performed on a long-lived device.
func (m Metrics) Sub(o Metrics) Metrics {
	return Metrics{
		Launches:    m.Launches - o.Launches,
		Blocks:      m.Blocks - o.Blocks,
		LaunchNanos: m.LaunchNanos - o.LaunchNanos,
	}
}

// Occupancy is an instantaneous view of the device's execution state — the
// gauge-shaped counterpart to the monotonic Metrics totals, mirroring the
// occupancy numbers a CUDA profiler derives from blocks resident per SM.
type Occupancy struct {
	// BlocksInFlight is the number of thread blocks executing right now.
	BlocksInFlight int64
	// BusyWorkers is the number of pool workers currently running a block.
	BusyWorkers int64
	// Workers is the pool size, so utilisation is BusyWorkers/Workers.
	Workers int
}

// Utilisation returns BusyWorkers/Workers in [0, 1].
func (o Occupancy) Utilisation() float64 {
	if o.Workers == 0 {
		return 0
	}
	return float64(o.BusyWorkers) / float64(o.Workers)
}

// metricsState carries the execution counters and the optional forwarding
// collector; embedded in Device alongside timingState.
type metricsState struct {
	launches    atomic.Int64
	blocks      atomic.Int64
	launchNanos atomic.Int64
	inFlight    atomic.Int64
	busyWorkers atomic.Int64

	collectorMu sync.Mutex
	collector   trace.Collector
}

// Metrics returns the device's counters since construction or the last
// ResetMetrics. Safe to call concurrently with launches.
func (d *Device) Metrics() Metrics {
	return Metrics{
		Launches:    d.launches.Load(),
		Blocks:      d.blocks.Load(),
		LaunchNanos: d.launchNanos.Load(),
	}
}

// Occupancy returns the device's instantaneous execution state. Safe to call
// concurrently with launches — this is what a live /metrics scrape reads
// while a kernel is running.
func (d *Device) Occupancy() Occupancy {
	return Occupancy{
		BlocksInFlight: d.inFlight.Load(),
		BusyWorkers:    d.busyWorkers.Load(),
		Workers:        d.workers,
	}
}

// ResetMetrics zeroes the counters (the in-flight gauges are left alone —
// they return to zero when running launches drain).
func (d *Device) ResetMetrics() {
	d.launches.Store(0)
	d.blocks.Store(0)
	d.launchNanos.Store(0)
}

// SetCollector attaches a trace collector that receives
// trace.CounterKernelLaunches / trace.CounterKernelBlocks increments on
// every launch, in addition to the device's own counters. nil detaches.
func (d *Device) SetCollector(c trace.Collector) {
	d.collectorMu.Lock()
	d.collector = c
	d.collectorMu.Unlock()
}

// blockRun brackets one block execution for the in-flight gauge.
func (d *Device) blockRun(kernel func()) {
	d.inFlight.Add(1)
	defer d.inFlight.Add(-1)
	kernel()
}

// workerRun brackets one worker's participation in a launch for the
// busy-worker gauge.
func (d *Device) workerRun(body func()) {
	d.busyWorkers.Add(1)
	defer d.busyWorkers.Add(-1)
	body()
}

// countLaunch records one launch of the given block count.
func (d *Device) countLaunch(blocks int) {
	d.launches.Add(1)
	d.blocks.Add(int64(blocks))
	d.collectorMu.Lock()
	c := d.collector
	d.collectorMu.Unlock()
	if c != nil {
		trace.Count(c, trace.CounterKernelLaunches, 1)
		trace.Count(c, trace.CounterKernelBlocks, int64(blocks))
	}
}
