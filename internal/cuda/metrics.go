package cuda

import (
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Metrics is a snapshot of a device's lifetime execution counters — the
// virtual analogue of the launch/occupancy counters a CUDA profiler reports.
type Metrics struct {
	// Launches counts kernel launches (Launch calls with grid > 0 plus
	// LaunchRange calls with n > 0).
	Launches int64
	// Blocks counts thread blocks executed across all launches (LaunchRange
	// counts its contiguous worker chunks as blocks).
	Blocks int64
}

// Sub returns m − o, the delta between two snapshots — how callers charge a
// pipeline stage with the launches it performed on a long-lived device.
func (m Metrics) Sub(o Metrics) Metrics {
	return Metrics{Launches: m.Launches - o.Launches, Blocks: m.Blocks - o.Blocks}
}

// metricsState carries the execution counters and the optional forwarding
// collector; embedded in Device alongside timingState.
type metricsState struct {
	launches atomic.Int64
	blocks   atomic.Int64

	collectorMu sync.Mutex
	collector   trace.Collector
}

// Metrics returns the device's counters since construction or the last
// ResetMetrics. Safe to call concurrently with launches.
func (d *Device) Metrics() Metrics {
	return Metrics{Launches: d.launches.Load(), Blocks: d.blocks.Load()}
}

// ResetMetrics zeroes the counters.
func (d *Device) ResetMetrics() {
	d.launches.Store(0)
	d.blocks.Store(0)
}

// SetCollector attaches a trace collector that receives
// trace.CounterKernelLaunches / trace.CounterKernelBlocks increments on
// every launch, in addition to the device's own counters. nil detaches.
func (d *Device) SetCollector(c trace.Collector) {
	d.collectorMu.Lock()
	d.collector = c
	d.collectorMu.Unlock()
}

// countLaunch records one launch of the given block count.
func (d *Device) countLaunch(blocks int) {
	d.launches.Add(1)
	d.blocks.Add(int64(blocks))
	d.collectorMu.Lock()
	c := d.collector
	d.collectorMu.Unlock()
	if c != nil {
		trace.Count(c, trace.CounterKernelLaunches, 1)
		trace.Count(c, trace.CounterKernelBlocks, int64(blocks))
	}
}
