package cuda

import (
	"strings"
	"testing"
)

// parkKernel launches a kernel on dev that blocks until release is closed,
// signalling entered once the launch is in flight. It returns a channel that
// closes when the launch goroutine has fully returned.
func parkKernel(dev *Device, entered chan<- struct{}, release <-chan struct{}) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		dev.Launch(1, 1, func(*Block) {
			entered <- struct{}{}
			<-release
		})
	}()
	return done
}

// TestConcurrentLaunchPanics pins the documented stream invariant: a second
// Launch or LaunchRange while one is in flight panics deterministically, and
// the device stays usable once the first launch drains.
func TestConcurrentLaunchPanics(t *testing.T) {
	dev := New(1)
	entered := make(chan struct{})
	release := make(chan struct{})
	done := parkKernel(dev, entered, release)
	<-entered // first launch is now provably in flight

	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s during an in-flight launch did not panic", what)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "concurrent") {
				t.Fatalf("%s panic = %v, want a concurrent-launch message", what, r)
			}
			if !strings.Contains(msg, what) {
				t.Fatalf("%s panic %q does not name the offending entry point", what, msg)
			}
		}()
		f()
	}
	mustPanic("Launch", func() { dev.Launch(1, 1, func(*Block) {}) })
	mustPanic("LaunchRange", func() { dev.LaunchRange(4, func(int) {}) })

	close(release)
	<-done

	// The flag must be released: a fresh launch succeeds.
	ran := false
	dev.Launch(1, 1, func(*Block) { ran = true })
	if !ran {
		t.Fatal("device unusable after the guarded launch drained")
	}
}

// TestGuardReleasedAfterKernelPanic: a kernel panic propagates to the caller
// (existing contract) and must also release the in-flight flag, so a
// recovered panic leaves the device reusable.
func TestGuardReleasedAfterKernelPanic(t *testing.T) {
	dev := New(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kernel panic did not propagate")
			}
		}()
		dev.Launch(4, 2, func(*Block) { panic("boom") })
	}()
	if dev.launchActive.Load() {
		t.Fatal("launch flag still set after a panicking kernel")
	}
	n := 0
	dev.LaunchRange(8, func(int) { n++ })
	if n != 8 {
		t.Fatalf("LaunchRange after recovered panic ran %d of 8 iterations", n)
	}
}

// TestNestedLaunchFromKernelPanics: launching from inside a kernel would
// deadlock the worker pool; the guard turns it into an immediate panic.
func TestNestedLaunchFromKernelPanics(t *testing.T) {
	dev := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nested launch did not panic")
		}
	}()
	dev.Launch(1, 1, func(*Block) {
		dev.LaunchRange(1, func(int) {})
	})
}
