package cuda

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers = %d, want %d", got, want)
	}
	if New(-3).Workers() != runtime.GOMAXPROCS(0) {
		t.Error("negative workers not defaulted")
	}
	if New(5).Workers() != 5 {
		t.Error("explicit worker count ignored")
	}
}

func TestLaunchCoversEveryBlockExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		dev := New(workers)
		for _, grid := range []int{1, 2, 16, 100} {
			counts := make([]int32, grid)
			dev.Launch(grid, 4, func(b *Block) {
				atomic.AddInt32(&counts[b.Idx], 1)
				if b.Grid != grid || b.Threads != 4 {
					t.Errorf("block context wrong: grid=%d threads=%d", b.Grid, b.Threads)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d grid=%d: block %d ran %d times", workers, grid, i, c)
				}
			}
		}
	}
}

func TestLaunchZeroGridIsNoop(t *testing.T) {
	ran := false
	New(2).Launch(0, 1, func(b *Block) { ran = true })
	if ran {
		t.Error("kernel ran with grid 0")
	}
}

func TestLaunchPanicsOnBadThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Launch with 0 threads did not panic")
		}
	}()
	New(1).Launch(1, 0, func(b *Block) {})
}

func TestForThreadsRunsEachThreadOnce(t *testing.T) {
	dev := New(1)
	dev.Launch(1, 8, func(b *Block) {
		seen := make([]bool, 8)
		b.ForThreads(func(t2 int) {
			if seen[t2] {
				panic("thread ran twice")
			}
			seen[t2] = true
		})
		for i, s := range seen {
			if !s {
				t.Errorf("thread %d never ran", i)
			}
		}
	})
}

func TestStrideLoopCoversRange(t *testing.T) {
	dev := New(2)
	for _, n := range []int{0, 1, 5, 16, 100} {
		dev.Launch(1, 7, func(b *Block) {
			hit := make([]int, n)
			b.StrideLoop(n, func(i int) { hit[i]++ })
			for i, h := range hit {
				if h != 1 {
					t.Errorf("n=%d: index %d hit %d times", n, i, h)
				}
			}
		})
	}
}

func TestSharedMemoryIsPerBlockSafe(t *testing.T) {
	// Many blocks hammer their shared buffers concurrently; each block must
	// read back exactly what it wrote (no cross-block interference).
	dev := New(4)
	var fails atomic.Int32
	dev.Launch(64, 8, func(b *Block) {
		sh := b.Shared(128)
		for i := range sh {
			sh[i] = byte(b.Idx)
		}
		ints := b.SharedInts(32)
		for i := range ints {
			ints[i] = int32(b.Idx)
		}
		for _, v := range sh {
			if v != byte(b.Idx) {
				fails.Add(1)
			}
		}
		for _, v := range ints {
			if v != int32(b.Idx) {
				fails.Add(1)
			}
		}
	})
	if fails.Load() != 0 {
		t.Errorf("%d shared-memory corruption events", fails.Load())
	}
}

func TestSharedGrowsAndReuses(t *testing.T) {
	dev := New(1)
	dev.Launch(1, 1, func(b *Block) {
		small := b.Shared(8)
		big := b.Shared(1024)
		if len(small) != 8 || len(big) != 1024 {
			t.Errorf("Shared sizes %d, %d", len(small), len(big))
		}
		again := b.Shared(16)
		if len(again) != 16 {
			t.Errorf("Shared(16) returned %d bytes", len(again))
		}
	})
}

func TestSharedPanicsOnNegative(t *testing.T) {
	dev := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Shared(-1) did not panic")
		}
	}()
	dev.Launch(1, 1, func(b *Block) { b.Shared(-1) })
}

func TestLaunchPropagatesKernelPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		dev := New(workers)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d: kernel panic not propagated", workers)
				}
			}()
			dev.Launch(8, 1, func(b *Block) {
				if b.Idx == 3 {
					panic("kernel fault")
				}
			})
		}()
	}
}

func TestLaunchRangeCoversAll(t *testing.T) {
	dev := New(3)
	for _, n := range []int{0, 1, 2, 17, 1000} {
		counts := make([]int32, n)
		dev.LaunchRange(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

func TestLaunchRangePropagatesPanic(t *testing.T) {
	dev := New(2)
	defer func() {
		if recover() == nil {
			t.Error("LaunchRange panic not propagated")
		}
	}()
	dev.LaunchRange(10, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestLaunchDeterministicSumProperty(t *testing.T) {
	// Property: a parallel reduction over blocks equals the serial sum for
	// any worker count — the device must not lose or duplicate work.
	f := func(rawWorkers, rawGrid uint8) bool {
		workers := int(rawWorkers)%8 + 1
		grid := int(rawGrid)%64 + 1
		dev := New(workers)
		var sum atomic.Int64
		dev.Launch(grid, 3, func(b *Block) {
			local := int64(0)
			b.StrideLoop(10, func(i int) { local += int64(b.Idx*10 + i) })
			sum.Add(local)
		})
		want := int64(0)
		for g := 0; g < grid; g++ {
			for i := 0; i < 10; i++ {
				want += int64(g*10 + i)
			}
		}
		return sum.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLaunchOverhead(b *testing.B) {
	dev := New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Launch(64, 32, func(bl *Block) {})
	}
}

func BenchmarkLaunchRangeOverhead(b *testing.B) {
	dev := New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.LaunchRange(64, func(i int) {})
	}
}
