package cuda

import "testing"

// TestSplitRange pins the sharding contract: in-order, disjoint, non-empty
// ranges covering [0, n) exactly, near-equal lengths (long ranges first).
func TestSplitRange(t *testing.T) {
	cases := []struct{ n, parts int }{
		{10, 1}, {10, 2}, {10, 3}, {10, 10}, {3, 7}, {1, 1}, {1024, 16}, {7, 4},
	}
	for _, c := range cases {
		rs := SplitRange(c.n, c.parts)
		wantParts := c.parts
		if wantParts > c.n {
			wantParts = c.n
		}
		if len(rs) != wantParts {
			t.Fatalf("SplitRange(%d, %d) returned %d ranges, want %d", c.n, c.parts, len(rs), wantParts)
		}
		lo := 0
		minLen, maxLen := c.n, 0
		for _, r := range rs {
			if r.Lo != lo || r.Len() <= 0 {
				t.Fatalf("SplitRange(%d, %d) = %v: not contiguous in-order non-empty", c.n, c.parts, rs)
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			lo = r.Hi
		}
		if lo != c.n {
			t.Fatalf("SplitRange(%d, %d) covers [0, %d), want [0, %d)", c.n, c.parts, lo, c.n)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("SplitRange(%d, %d) lengths spread %d..%d, want near-equal", c.n, c.parts, minLen, maxLen)
		}
	}
}

func TestSplitRangeEdges(t *testing.T) {
	if rs := SplitRange(0, 3); rs != nil {
		t.Fatalf("SplitRange(0, 3) = %v, want nil", rs)
	}
	if rs := SplitRange(-5, 3); rs != nil {
		t.Fatalf("SplitRange(-5, 3) = %v, want nil", rs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SplitRange(4, 0) did not panic")
		}
	}()
	SplitRange(4, 0)
}
