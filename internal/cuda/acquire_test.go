package cuda

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAcquireSerializesLaunches is the shared-device contract the service
// layer depends on: N goroutines funnelling launches through AcquireContext
// never overlap (so the launch guard can never fire) and never observe more
// than one holder at a time.
func TestAcquireSerializesLaunches(t *testing.T) {
	dev := New(2)
	const goroutines, launchesEach = 8, 5
	var holders atomic.Int32
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < launchesEach; i++ {
				if err := dev.AcquireContext(context.Background()); err != nil {
					t.Errorf("AcquireContext: %v", err)
					return
				}
				if h := holders.Add(1); h != 1 {
					t.Errorf("%d concurrent holders", h)
				}
				dev.Launch(4, 2, func(b *Block) {
					b.StrideLoop(8, func(int) { total.Add(1) })
				})
				holders.Add(-1)
				dev.Release()
			}
		}()
	}
	wg.Wait()
	if want := int64(goroutines * launchesEach * 4 * 8); total.Load() != want {
		t.Fatalf("kernel work = %d, want %d", total.Load(), want)
	}
}

// TestAcquireContextCancellation: a blocked acquirer unblocks with the ctx
// error instead of panicking or deadlocking, and a pre-cancelled ctx never
// acquires.
func TestAcquireContextCancellation(t *testing.T) {
	dev := New(1)
	if err := dev.AcquireContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := dev.AcquireContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled acquire = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if err := dev.AcquireContext(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked acquire = %v, want context.DeadlineExceeded", err)
	}

	dev.Release()
	if err := dev.AcquireContext(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	dev.Release()
}

func TestTryAcquire(t *testing.T) {
	dev := New(1)
	if !dev.TryAcquire() {
		t.Fatal("TryAcquire on a free device failed")
	}
	if dev.TryAcquire() {
		t.Fatal("TryAcquire on a held device succeeded")
	}
	dev.Release()
	if !dev.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
	dev.Release()
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	dev := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of an unheld device did not panic")
		}
	}()
	dev.Release()
}
