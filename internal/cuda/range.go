package cuda

import "fmt"

// Range is a half-open index interval [Lo, Hi) — the unit of row-range
// sharding: a cost-matrix build over S rows splits into contiguous ranges,
// one launch per range, each writing a disjoint slab of the output.
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices the range covers.
func (r Range) Len() int { return r.Hi - r.Lo }

// SplitRange divides [0, n) into up to parts contiguous ranges of
// near-equal length (the first n%parts ranges are one longer). Fewer ranges
// are returned when n < parts; every returned range is non-empty, the ranges
// are in order, disjoint, and cover [0, n) exactly. This is the split shape
// multi-device (and, later, multi-node) sharding of the Step-2 matrix uses:
// each shard streams its row range of the flat tile buffer independently.
func SplitRange(n, parts int) []Range {
	if parts <= 0 {
		panic(fmt.Sprintf("cuda: SplitRange(%d, %d)", n, parts))
	}
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}
