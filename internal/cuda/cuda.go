// Package cuda is a software re-creation of the CUDA execution model the
// paper's GPU kernels are written against (§V).
//
// The paper's two GPU computations are expressed in terms of a grid of
// thread blocks: S blocks for the S×S tile-error matrix, and one kernel
// launch per edge-color class for the parallel local search, with kernel
// boundaries acting as global barriers. This package runs the same
// decomposition on CPU cores:
//
//   - a Device owns a bounded pool of workers standing in for streaming
//     multiprocessors;
//   - Launch executes a kernel once per block, distributing blocks over the
//     workers and returning only when every block has finished (kernel
//     launches are the paper's synchronisation points, so Launch is
//     synchronous);
//   - inside a block, ForThreads runs a body for each logical thread; the
//     threads of one block execute on one worker, so everything between two
//     ForThreads calls is ordered exactly as code between two
//     __syncthreads() barriers;
//   - Shared returns a per-block scratch buffer with shared-memory
//     semantics: visible to all threads of the block, undefined across
//     blocks, never shared between concurrently running blocks.
//
// What this deliberately does not model: warp scheduling, memory
// coalescing, bank conflicts, and the host↔device copies (the paper assumes
// images are resident in global memory before timing begins, so host slices
// serve as global memory here). Absolute speedups therefore track the host
// core count rather than the paper's 40–66×, but the relative shape of the
// experiments is preserved; see EXPERIMENTS.md.
package cuda

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Device is a virtual accelerator with a fixed number of workers.
// The zero value is not usable; construct with New.
//
// A Device serialises kernel launches: Launch and LaunchRange are
// synchronous and must not be called concurrently on one Device, because the
// per-worker shared-memory arenas (Shared/SharedInts) are reused across
// launches — two in-flight launches would hand the same arena to two
// concurrently running blocks. This mirrors real CUDA, where kernels on one
// stream execute in order. The invariant is enforced with a cheap atomic
// in-flight flag; a concurrent launch panics rather than racing. Callers
// needing concurrent kernels use separate Devices (separate streams);
// callers that must *share* one device across goroutines (a serving layer)
// serialise through the cooperative AcquireContext/TryAcquire/Release path
// in acquire.go instead of relying on the panic.
type Device struct {
	workers int
	// sem is the exclusive-use token behind AcquireContext/TryAcquire/
	// Release: capacity 1, full while the device is held.
	sem chan struct{}
	// launchActive guards the launch invariant above: set for the duration of
	// every Launch/LaunchRange, checked with a compare-and-swap on entry.
	launchActive atomic.Bool
	// scratch and intScratch hold one shared-memory arena per worker (byte
	// and int32 flavours), grown on demand and reused across launches so
	// steady-state kernels allocate nothing.
	scratch    [][]byte
	intScratch [][]int32
	// timingState implements the optional virtual clock (see timing.go).
	timingState
	// metricsState carries launch/block counters (see metrics.go).
	metricsState
	// faultState carries the fault-injection machinery behind
	// LaunchErr/ExecuteErr (see faults.go).
	faultState
}

// beginLaunch acquires the single-launch-in-flight flag or panics: a
// concurrent launch is a caller bug that would silently corrupt shared
// memory, so it fails loudly instead.
func (d *Device) beginLaunch(what string) {
	if !d.launchActive.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("cuda: concurrent %s on one Device: launches are serialised like a CUDA stream (use separate Devices for concurrent kernels)", what))
	}
}

// endLaunch releases the in-flight flag.
func (d *Device) endLaunch() { d.launchActive.Store(false) }

// New returns a Device with the given number of workers. workers ≤ 0 selects
// runtime.GOMAXPROCS(0), the natural "all the hardware there is" default.
func New(workers int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Device{
		workers:    workers,
		sem:        make(chan struct{}, 1),
		scratch:    make([][]byte, workers),
		intScratch: make([][]int32, workers),
	}
}

// Workers returns the size of the device's worker pool.
func (d *Device) Workers() int { return d.workers }

// Block is the execution context handed to a kernel, one per block.
// It plays the role of the (blockIdx, blockDim, gridDim) built-ins plus the
// block's shared memory.
type Block struct {
	Idx     int // blockIdx.x
	Grid    int // gridDim.x
	Threads int // blockDim.x

	worker int
	dev    *Device
}

// Shared returns an n-byte shared-memory buffer for this block. Contents are
// undefined on entry (as in CUDA, where __shared__ arrays are uninitialised)
// and must not be retained past the kernel invocation. Repeated calls within
// one block return the same arena, so a kernel carving several arrays out of
// shared memory should call Shared once and slice the result.
func (b *Block) Shared(n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("cuda: Shared(%d): negative size", n))
	}
	s := b.dev.scratch[b.worker]
	if cap(s) < n {
		s = make([]byte, n)
		b.dev.scratch[b.worker] = s
	}
	return s[:n]
}

// SharedInts returns an n-element int32 shared array for this block —
// convenient for kernels whose shared arrays hold accumulators rather than
// pixels. CUDA kernels carve such arrays out of one extern __shared__ block;
// Go cannot alias []byte as []int32 without unsafe (which this repo avoids),
// so the device keeps a parallel int32 arena with identical semantics:
// contents undefined on entry, private to the running block.
func (b *Block) SharedInts(n int) []int32 {
	if n < 0 {
		panic(fmt.Sprintf("cuda: SharedInts(%d): negative size", n))
	}
	s := b.dev.intScratch[b.worker]
	if cap(s) < n {
		s = make([]int32, n)
		b.dev.intScratch[b.worker] = s
	}
	return s[:n]
}

// ForThreads runs body(t) for t = 0..b.Threads−1. One call corresponds to a
// barrier-delimited region of a CUDA kernel: every thread completes the
// region before the next ForThreads region starts, because the threads of a
// block run on the block's worker.
func (b *Block) ForThreads(body func(t int)) {
	for t := 0; t < b.Threads; t++ {
		body(t)
	}
}

// StrideLoop runs body(i) for i = t, t+stride, … < n — the canonical CUDA
// grid-stride/thread-stride loop for covering n items with Threads threads.
func (b *Block) StrideLoop(n int, body func(i int)) {
	b.ForThreads(func(t int) {
		for i := t; i < n; i += b.Threads {
			body(i)
		}
	})
}

// Launch runs kernel once per block, blocks 0..grid−1, distributing blocks
// over the device workers. It returns when all blocks have completed, like
// a kernel launch followed by cudaDeviceSynchronize. threadsPerBlock only
// sets Block.Threads for the kernel's loops; it does not change the worker
// pool. A panic inside the kernel propagates to the caller.
func (d *Device) Launch(grid, threadsPerBlock int, kernel func(b *Block)) {
	if grid <= 0 {
		return
	}
	if threadsPerBlock <= 0 {
		panic(fmt.Sprintf("cuda: Launch with threadsPerBlock=%d", threadsPerBlock))
	}
	d.beginLaunch("Launch")
	defer d.endLaunch()
	d.countLaunch(grid)
	launchStart := time.Now()
	defer func() { d.launchNanos.Add(time.Since(launchStart).Nanoseconds()) }()
	nw := d.workers
	if nw > grid {
		nw = grid
	}
	// With the virtual clock active, each block's body is timed so the
	// launch can be charged its scheduled makespan (see timing.go). The
	// measurements are most faithful on a single-worker device, where
	// blocks never contend for host cores.
	var durations []time.Duration
	if d.timingEnabled() {
		durations = make([]time.Duration, grid)
	}
	if nw == 1 {
		// Degenerate single-worker device: run inline, no goroutines.
		d.workerRun(func() {
			b := &Block{Grid: grid, Threads: threadsPerBlock, worker: 0, dev: d}
			for i := 0; i < grid; i++ {
				b.Idx = i
				if durations != nil {
					start := time.Now()
					d.blockRun(func() { kernel(b) })
					durations[i] = time.Since(start)
				} else {
					d.blockRun(func() { kernel(b) })
				}
			}
		})
		d.chargeLaunch(durations, threadsPerBlock)
		return
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make(chan any, nw)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			d.workerRun(func() {
				b := &Block{Grid: grid, Threads: threadsPerBlock, worker: worker, dev: d}
				for {
					i := int(next.Add(1)) - 1
					if i >= grid {
						return
					}
					b.Idx = i
					if durations != nil {
						start := time.Now()
						d.blockRun(func() { kernel(b) })
						durations[i] = time.Since(start)
					} else {
						d.blockRun(func() { kernel(b) })
					}
				}
			})
		}(w)
	}
	wg.Wait()
	rethrowPanics(panics)
	d.chargeLaunch(durations, threadsPerBlock)
}

// rethrowPanics drains every worker panic captured during a launch and
// rethrows. One panic is rethrown as-is, preserving its value for callers
// that match on it; several (distinct blocks panicking on different workers)
// are aggregated into a single message rather than silently dropping all but
// the first. Called after wg.Wait(), so all sends have completed.
func rethrowPanics(panics chan any) {
	close(panics)
	var collected []any
	for r := range panics {
		collected = append(collected, r)
	}
	switch len(collected) {
	case 0:
		return
	case 1:
		panic(collected[0])
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "cuda: %d workers panicked: ", len(collected))
	for i, r := range collected {
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "%v", r)
	}
	panic(sb.String())
}

// LaunchRange is a convenience for embarrassingly parallel loops: it covers
// i = 0..n−1 with the device workers using contiguous chunks, without the
// block/thread structure. Used where the paper's kernel shape does not
// matter (e.g. building baselines).
func (d *Device) LaunchRange(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	d.beginLaunch("LaunchRange")
	defer d.endLaunch()
	chunk := (n + d.workers - 1) / d.workers
	d.countLaunch((n + chunk - 1) / chunk)
	launchStart := time.Now()
	defer func() { d.launchNanos.Add(time.Since(launchStart).Nanoseconds()) }()
	var wg sync.WaitGroup
	panics := make(chan any, d.workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			d.workerRun(func() {
				d.blockRun(func() {
					for i := lo; i < hi; i++ {
						body(i)
					}
				})
			})
		}(lo, hi)
	}
	wg.Wait()
	rethrowPanics(panics)
}
