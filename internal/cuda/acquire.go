package cuda

import (
	"context"
	"fmt"
)

// Exclusive-use acquisition.
//
// Launch and LaunchRange keep their documented invariant: two concurrent
// launches on one Device are a caller bug and panic (see beginLaunch). That
// is the right contract for direct API use — a race there would silently
// corrupt the per-worker shared-memory arenas — but it is a process-killer
// for a server where many request goroutines legitimately want to share one
// device. The methods below are the cooperative path for that caller: a
// goroutine acquires the device, submits any number of (serial) launches,
// and releases it; contending acquirers block or receive an error instead
// of tripping the launch guard.
//
// Acquisition is advisory: it does not block a goroutine that calls Launch
// without acquiring (that caller keeps the panic contract). The invariant
// for shared-device callers is therefore: every goroutine that may overlap
// with another holds the acquisition for the duration of its launches.
// internal/service's device pool routes every job through AcquireContext,
// which is why its jobs can never fire the launch-guard panic.

// AcquireContext reserves the device for the calling goroutine's kernel
// launches, blocking until the device is free or ctx is done. It returns
// nil exactly once per subsequent Release; on cancellation it returns the
// ctx error and the caller must not Release.
func (d *Device) AcquireContext(ctx context.Context) error {
	// Cancellation is honoured even when the device is free, so a caller
	// holding a dead context never acquires (and then leaks) the device.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cuda: acquire: %w", err)
	}
	select {
	case d.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case d.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cuda: acquire: %w", ctx.Err())
	}
}

// TryAcquire reserves the device if it is free, returning whether it did.
func (d *Device) TryAcquire() bool {
	select {
	case d.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns the device to the free state. Releasing a device that is
// not held is a caller bug and panics, mirroring sync.Mutex.Unlock.
func (d *Device) Release() {
	select {
	case <-d.sem:
	default:
		panic("cuda: Release of a device that is not acquired")
	}
}
