package blossom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMaxMatching enumerates matchings by branching on each vertex's
// partner — exact for small graphs.
func bruteMaxMatching(g *Graph) int {
	used := make([]bool, g.N)
	var rec func(v int) int
	rec = func(v int) int {
		for v < g.N && used[v] {
			v++
		}
		if v >= g.N {
			return 0
		}
		// Option 1: leave v unmatched.
		used[v] = true
		best := rec(v + 1)
		// Option 2: match v with a free neighbour.
		for _, u := range g.adj[v] {
			if used[u] {
				continue
			}
			used[u] = true
			if r := 1 + rec(v+1); r > best {
				best = r
			}
			used[u] = false
		}
		used[v] = false
		return best
	}
	return rec(0)
}

func randomGraph(t testing.TB, n int, p float64, seed int64) *Graph {
	t.Helper()
	g, err := NewGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

func TestMatchesBruteForceOnRandomGraphs(t *testing.T) {
	for n := 2; n <= 10; n++ {
		for _, p := range []float64{0.2, 0.5, 0.8} {
			for trial := 0; trial < 10; trial++ {
				g := randomGraph(t, n, p, int64(n*100+trial)+int64(p*10))
				match, size := g.MaxMatching()
				if err := g.Verify(match); err != nil {
					t.Fatalf("n=%d p=%v trial=%d: %v", n, p, trial, err)
				}
				if want := bruteMaxMatching(g); size != want {
					t.Fatalf("n=%d p=%v trial=%d: size %d, optimum %d", n, p, trial, size, want)
				}
			}
		}
	}
}

func TestOddCycleNeedsBlossom(t *testing.T) {
	// C₅ (5-cycle): maximum matching has 2 edges; a bipartite-style search
	// without blossom contraction fails on it.
	g, _ := NewGraph(5)
	for i := 0; i < 5; i++ {
		if err := g.AddEdge(i, (i+1)%5); err != nil {
			t.Fatal(err)
		}
	}
	match, size := g.MaxMatching()
	if size != 2 {
		t.Fatalf("C5 matching size %d, want 2", size)
	}
	if err := g.Verify(match); err != nil {
		t.Fatal(err)
	}
}

func TestPetersenGraphHasPerfectMatching(t *testing.T) {
	// The Petersen graph: 10 vertices, 3-regular, perfect matching exists
	// but the graph is famously non-bipartite and blossom-rich.
	g, _ := NewGraph(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	for _, es := range [][][2]int{outer, spokes, inner} {
		for _, e := range es {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !g.HasPerfectMatching() {
		t.Error("Petersen graph reported without perfect matching")
	}
}

func TestTriangleWithPendant(t *testing.T) {
	// Triangle {0,1,2} plus pendant 3–0: perfect matching {0–3, 1–2}.
	g, _ := NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	match, size := g.MaxMatching()
	if size != 2 {
		t.Fatalf("size %d, want 2", size)
	}
	if match[3] != 0 || match[1] != 2 {
		t.Errorf("match = %v", match)
	}
}

func TestCompleteBipartiteTileGraph(t *testing.T) {
	// The mosaic reduction's graph: K_{s,s} always has a perfect matching —
	// the structural fact behind the paper's §III reduction.
	for _, s := range []int{1, 4, 16} {
		g, _ := NewGraph(2 * s)
		for u := 0; u < s; u++ {
			for v := s; v < 2*s; v++ {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		match, size := g.MaxMatching()
		if size != s {
			t.Fatalf("K_{%d,%d}: size %d", s, s, size)
		}
		if err := g.Verify(match); err != nil {
			t.Fatal(err)
		}
		// Bipartiteness respected: partners cross sides.
		for u := 0; u < s; u++ {
			if match[u] < s {
				t.Fatalf("vertex %d matched within its side to %d", u, match[u])
			}
		}
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	g, err := NewGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, size := g.MaxMatching(); size != 0 {
		t.Error("empty graph matched something")
	}
	g, _ = NewGraph(5)
	match, size := g.MaxMatching()
	if size != 0 {
		t.Error("edgeless graph matched something")
	}
	for _, m := range match {
		if m != -1 {
			t.Error("edgeless graph has partners")
		}
	}
	if g.HasPerfectMatching() {
		t.Error("odd edgeless graph reported perfect")
	}
}

func TestGraphValidation(t *testing.T) {
	if _, err := NewGraph(-1); err == nil {
		t.Error("accepted negative vertex count")
	}
	g, _ := NewGraph(3)
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("accepted self-loop")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 1 {
		t.Errorf("duplicate edge counted: %d", g.Edges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestVerifyCatchesCorruptMatchings(t *testing.T) {
	g := randomGraph(t, 8, 0.6, 1)
	match, _ := g.MaxMatching()
	if err := g.Verify(match[:4]); err == nil {
		t.Error("accepted short matching")
	}
	bad := append([]int(nil), match...)
	// Asymmetry.
	for i, v := range bad {
		if v >= 0 {
			bad[i] = -1
			break
		}
	}
	if err := g.Verify(bad); err == nil {
		t.Error("accepted asymmetric matching")
	}
	// Non-edge pairing.
	bad2 := make([]int, g.N)
	for i := range bad2 {
		bad2[i] = -1
	}
	u, v := -1, -1
	for a := 0; a < g.N && u < 0; a++ {
		for b := a + 1; b < g.N; b++ {
			if !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	if u >= 0 {
		bad2[u], bad2[v] = v, u
		if err := g.Verify(bad2); err == nil {
			t.Error("accepted a matching using a non-edge")
		}
	}
}

func TestMatchingSizeMonotoneProperty(t *testing.T) {
	// Adding an edge never decreases the maximum matching size.
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%9 + 2
		g := randomGraph(t, n, 0.4, seed)
		_, before := g.MaxMatching()
		// Add the first missing edge, if any.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) {
					if err := g.AddEdge(u, v); err != nil {
						return false
					}
					_, after := g.MaxMatching()
					return after >= before
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMaxMatchingK64(b *testing.B) {
	g, _ := NewGraph(64)
	for u := 0; u < 64; u++ {
		for v := u + 1; v < 64; v++ {
			if err := g.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, size := g.MaxMatching(); size != 32 {
			b.Fatalf("size %d", size)
		}
	}
}
