// Weighted perfect matching on general graphs — the algorithm family of
// Blossom V, which the paper uses for its optimization step (§III, [15]).
//
// This is the O(n³) primal-dual method with explicit blossom nodes
// (Edmonds' weighted blossom algorithm in the formulation popularised by
// Kolmogorov's and Galil's expositions): vertices and contracted odd sets
// ("flowers") carry dual variables, alternating trees grow over tight
// edges, and dual adjustments create new tight edges, new blossoms, or
// blossom expansions until every vertex is matched. Weights are doubled
// internally so all dual values stay integral.
//
// The mosaic pipeline itself solves its (bipartite) instances with the LAP
// solvers in internal/assign; this implementation exists to reproduce the
// paper's actual solver and is cross-validated against brute force on
// general graphs and against Jonker–Volgenant on bipartite ones.

package blossom

import (
	"fmt"
)

// MaxWeightPerfect computes a maximum-weight perfect matching of the
// complete graph on n vertices (n even) with edge weights w(u, v) ≥ 0.
// It returns the partner of each vertex and the total weight.
func MaxWeightPerfect(n int, weight func(u, v int) int64) ([]int, int64, error) {
	if n <= 0 || n%2 != 0 {
		return nil, 0, fmt.Errorf("blossom: perfect matching needs positive even n, got %d: %w", n, ErrGraph)
	}
	if n == 2 {
		if weight(0, 1) < 0 {
			return nil, 0, fmt.Errorf("blossom: negative weight: %w", ErrGraph)
		}
		return []int{1, 0}, weight(0, 1), nil
	}
	b := newWeighted(n)
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			ww := weight(u-1, v-1)
			if ww < 0 {
				return nil, 0, fmt.Errorf("blossom: negative weight w(%d, %d) = %d: %w", u-1, v-1, ww, ErrGraph)
			}
			// +1 shifts zero-weight edges to stay positive: the solver treats
			// weight-0 slots as absent edges. The shift adds exactly n/2 to
			// any perfect matching's total, subtracted again below.
			b.g[u][v] = edge{u: u, v: v, w: 2 * (ww + 1)}
			b.g[v][u] = edge{u: v, v: u, w: 2 * (ww + 1)}
		}
	}
	total := b.solve() - int64(n/2)
	match := make([]int, n)
	for u := 1; u <= n; u++ {
		match[u-1] = b.match[u] - 1
	}
	return match, total, nil
}

// MinWeightPerfect computes a minimum-weight perfect matching of the
// complete graph on n vertices (n even); weights may be any int64 values
// whose shifted doubles fit comfortably in int64.
func MinWeightPerfect(n int, weight func(u, v int) int64) ([]int, int64, error) {
	if n <= 0 || n%2 != 0 {
		return nil, 0, fmt.Errorf("blossom: perfect matching needs positive even n, got %d: %w", n, ErrGraph)
	}
	var max int64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if w := weight(u, v); w > max {
				max = w
			}
		}
	}
	match, shifted, err := MaxWeightPerfect(n, func(u, v int) int64 {
		w := weight(u, v)
		if w > max {
			return 0
		}
		return max - w
	})
	if err != nil {
		return nil, 0, err
	}
	// Σ(max − w) over n/2 pairs = (n/2)·max − Σw.
	return match, int64(n/2)*max - shifted, nil
}

// edge is a directed copy of an undirected weighted edge (w pre-doubled).
type edge struct {
	u, v int
	w    int64
}

// weighted holds the primal-dual state. Vertices are 1..n; blossom nodes
// occupy n+1..2n. Index 0 is the null sentinel throughout.
type weighted struct {
	n, nx int // real vertices; current node horizon (≤ 2n)

	g          [][]edge // g[u][v] for current nodes
	lab        []int64  // dual variables (vertices and blossoms)
	match      []int    // matched partner (vertex id)
	slack      []int    // slack[x] = vertex u minimising the u→x edge delta
	st         []int    // st[x] = the top-level node containing x
	pa         []int    // alternating-tree parent (vertex id)
	s          []int    // label: -1 free, 0 outer (even), 1 inner (odd)
	vis        []int    // timestamps for lca walks
	flower     [][]int  // blossom cycles (top-level children)
	flowerFrom [][]int  // flowerFrom[b][u] = child of b containing vertex u
	q          []int    // BFS queue of outer vertices
	visTime    int
}

func newWeighted(n int) *weighted {
	size := 2*n + 1
	b := &weighted{n: n, nx: n}
	b.g = make([][]edge, size)
	for i := range b.g {
		b.g[i] = make([]edge, size)
		for j := range b.g[i] {
			b.g[i][j] = edge{u: i, v: j}
		}
	}
	b.lab = make([]int64, size)
	b.match = make([]int, size)
	b.slack = make([]int, size)
	b.st = make([]int, size)
	b.pa = make([]int, size)
	b.s = make([]int, size)
	b.vis = make([]int, size)
	b.flower = make([][]int, size)
	b.flowerFrom = make([][]int, size)
	for i := range b.flowerFrom {
		b.flowerFrom[i] = make([]int, n+1)
	}
	return b
}

// eDelta is the reduced cost of edge e (non-negative for feasible duals;
// zero means tight).
func (b *weighted) eDelta(e edge) int64 {
	return b.lab[e.u] + b.lab[e.v] - b.g[e.u][e.v].w
}

func (b *weighted) updateSlack(u, x int) {
	if b.slack[x] == 0 || b.eDelta(b.g[u][x]) < b.eDelta(b.g[b.slack[x]][x]) {
		b.slack[x] = u
	}
}

func (b *weighted) setSlack(x int) {
	b.slack[x] = 0
	for u := 1; u <= b.n; u++ {
		if b.g[u][x].w > 0 && b.st[u] != x && b.s[b.st[u]] == 0 {
			b.updateSlack(u, x)
		}
	}
}

// qPush enqueues the real vertices of node x.
func (b *weighted) qPush(x int) {
	if x <= b.n {
		b.q = append(b.q, x)
		return
	}
	for _, f := range b.flower[x] {
		b.qPush(f)
	}
}

// setSt points every vertex inside x at top-level node bn.
func (b *weighted) setSt(x, bn int) {
	b.st[x] = bn
	if x <= b.n {
		return
	}
	for _, f := range b.flower[x] {
		b.setSt(f, bn)
	}
}

// getPr rotates blossom bb's cycle so that child xr sits at an even
// position, returning xr's index. (An odd position would break the
// alternating structure; reversing the tail fixes the parity because the
// cycle has odd length.)
func (b *weighted) getPr(bb, xr int) int {
	pr := 0
	for i, f := range b.flower[bb] {
		if f == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		// reverse flower[bb][1:]
		fl := b.flower[bb]
		for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
			fl[i], fl[j] = fl[j], fl[i]
		}
		return len(fl) - pr
	}
	return pr
}

// setMatch matches node u with node v through the concrete edge g[u][v],
// recursing into blossoms.
func (b *weighted) setMatch(u, v int) {
	e := b.g[u][v]
	b.match[u] = e.v
	if u <= b.n {
		return
	}
	xr := b.flowerFrom[u][e.u]
	pr := b.getPr(u, xr)
	for i := 0; i < pr; i++ {
		b.setMatch(b.flower[u][i], b.flower[u][i^1])
	}
	b.setMatch(xr, v)
	// rotate flower[u] left by pr
	fl := b.flower[u]
	rotated := append(append([]int(nil), fl[pr:]...), fl[:pr]...)
	b.flower[u] = rotated
}

// augment flips the alternating path from outer node u through edge (u, v).
func (b *weighted) augment(u, v int) {
	for {
		xnv := b.st[b.match[u]]
		b.setMatch(u, v)
		if xnv == 0 {
			return
		}
		b.setMatch(xnv, b.st[b.pa[xnv]])
		u, v = b.st[b.pa[xnv]], xnv
	}
}

// getLCA finds the common alternating-tree ancestor of outer nodes u and v.
func (b *weighted) getLCA(u, v int) int {
	b.visTime++
	t := b.visTime
	for u != 0 || v != 0 {
		if u != 0 {
			if b.vis[u] == t {
				return u
			}
			b.vis[u] = t
			u = b.st[b.match[u]]
			if u != 0 {
				u = b.st[b.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

// addBlossom contracts the odd cycle through outer nodes u, v and their
// tree ancestor lca into a new (or recycled) blossom node.
func (b *weighted) addBlossom(u, lca, v int) {
	bn := b.n + 1
	for bn <= b.nx && b.st[bn] != 0 {
		bn++
	}
	if bn > b.nx {
		b.nx++
	}
	b.lab[bn] = 0
	b.s[bn] = 0
	b.match[bn] = b.match[lca]
	b.flower[bn] = b.flower[bn][:0]
	b.flower[bn] = append(b.flower[bn], lca)
	for x := u; x != lca; {
		b.flower[bn] = append(b.flower[bn], x)
		nx := b.st[b.match[x]]
		b.flower[bn] = append(b.flower[bn], nx)
		b.qPush(nx)
		x = b.st[b.pa[nx]]
	}
	// reverse flower[bn][1:]
	fl := b.flower[bn]
	for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
		fl[i], fl[j] = fl[j], fl[i]
	}
	for x := v; x != lca; {
		b.flower[bn] = append(b.flower[bn], x)
		nx := b.st[b.match[x]]
		b.flower[bn] = append(b.flower[bn], nx)
		b.qPush(nx)
		x = b.st[b.pa[nx]]
	}
	b.setSt(bn, bn)
	for x := 1; x <= b.nx; x++ {
		b.g[bn][x].w = 0
		b.g[x][bn].w = 0
	}
	for x := 1; x <= b.n; x++ {
		b.flowerFrom[bn][x] = 0
	}
	for _, xs := range b.flower[bn] {
		for x := 1; x <= b.nx; x++ {
			if b.g[bn][x].w == 0 || b.eDelta(b.g[xs][x]) < b.eDelta(b.g[bn][x]) {
				b.g[bn][x] = b.g[xs][x]
				b.g[x][bn] = b.g[x][xs]
			}
		}
		for x := 1; x <= b.n; x++ {
			if xs <= b.n {
				if xs == x {
					b.flowerFrom[bn][x] = xs
				}
			} else if b.flowerFrom[xs][x] != 0 {
				b.flowerFrom[bn][x] = xs
			}
		}
	}
	b.setSlack(bn)
}

// expandBlossom dissolves an inner blossom whose dual has hit zero,
// relabelling the path fragment that stays in the tree.
func (b *weighted) expandBlossom(bb int) {
	for _, xs := range b.flower[bb] {
		b.setSt(xs, xs)
	}
	xr := b.flowerFrom[bb][b.g[bb][b.pa[bb]].u]
	pr := b.getPr(bb, xr)
	for i := 0; i < pr; i += 2 {
		xs := b.flower[bb][i]
		xns := b.flower[bb][i+1]
		b.pa[xs] = b.g[xns][xs].u
		b.s[xs] = 1
		b.s[xns] = 0
		b.slack[xs] = 0
		b.setSlack(xns)
		b.qPush(xns)
	}
	b.s[xr] = 1
	b.pa[xr] = b.pa[bb]
	for i := pr + 1; i < len(b.flower[bb]); i++ {
		xs := b.flower[bb][i]
		b.s[xs] = -1
		b.setSlack(xs)
	}
	b.st[bb] = 0
}

// onFoundEdge processes a newly tight edge out of an outer vertex; returns
// true when an augmenting path was applied.
func (b *weighted) onFoundEdge(e edge) bool {
	u := b.st[e.u]
	v := b.st[e.v]
	switch b.s[v] {
	case -1:
		b.pa[v] = e.u
		b.s[v] = 1
		nu := b.st[b.match[v]]
		b.slack[v] = 0
		b.slack[nu] = 0
		b.s[nu] = 0
		b.qPush(nu)
	case 0:
		lca := b.getLCA(u, v)
		if lca == 0 {
			b.augment(u, v)
			b.augment(v, u)
			return true
		}
		b.addBlossom(u, lca, v)
	}
	return false
}

// matching runs one phase: grow trees / adjust duals until an augmenting
// path is found (true) or none exists (false — cannot happen on complete
// graphs with even n before all vertices are matched).
func (b *weighted) matching() bool {
	for i := range b.s {
		b.s[i] = -1
		b.slack[i] = 0
	}
	b.q = b.q[:0]
	for x := 1; x <= b.nx; x++ {
		if b.st[x] == x && b.match[x] == 0 {
			b.pa[x] = 0
			b.s[x] = 0
			b.qPush(x)
		}
	}
	if len(b.q) == 0 {
		return false
	}
	for {
		for len(b.q) > 0 {
			u := b.q[0]
			b.q = b.q[1:]
			if b.s[b.st[u]] == 1 {
				continue
			}
			for v := 1; v <= b.n; v++ {
				if b.g[u][v].w > 0 && b.st[u] != b.st[v] {
					if b.eDelta(b.g[u][v]) == 0 {
						if b.onFoundEdge(b.g[u][v]) {
							return true
						}
					} else {
						b.updateSlack(u, b.st[v])
					}
				}
			}
		}
		// Dual adjustment.
		d := int64(-1)
		setd := func(v int64) {
			if d < 0 || v < d {
				d = v
			}
		}
		for x := b.n + 1; x <= b.nx; x++ {
			if b.st[x] == x && b.s[x] == 1 {
				setd(b.lab[x] / 2)
			}
		}
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 {
				switch b.s[x] {
				case -1:
					setd(b.eDelta(b.g[b.slack[x]][x]))
				case 0:
					setd(b.eDelta(b.g[b.slack[x]][x]) / 2)
				}
			}
		}
		for u := 1; u <= b.n; u++ {
			switch b.s[b.st[u]] {
			case 0:
				if b.lab[u] <= d {
					// Dual of an outer vertex would go non-positive: the
					// standard termination guard; with w ≥ 0 and complete
					// graphs it only fires when no augmenting path exists.
					return false
				}
				b.lab[u] -= d
			case 1:
				b.lab[u] += d
			}
		}
		for bb := b.n + 1; bb <= b.nx; bb++ {
			if b.st[bb] == bb && b.s[bb] != -1 {
				if b.s[bb] == 0 {
					b.lab[bb] += 2 * d
				} else {
					b.lab[bb] -= 2 * d
				}
			}
		}
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 && b.st[b.slack[x]] != x && b.eDelta(b.g[b.slack[x]][x]) == 0 {
				if b.onFoundEdge(b.g[b.slack[x]][x]) {
					return true
				}
			}
		}
		for bb := b.n + 1; bb <= b.nx; bb++ {
			if b.st[bb] == bb && b.s[bb] == 1 && b.lab[bb] == 0 {
				b.expandBlossom(bb)
			}
		}
	}
}

// solve runs phases until the matching is perfect and returns the original
// (undoubled) total weight.
func (b *weighted) solve() int64 {
	// Initial duals: half the maximum incident weight (doubled weights),
	// the standard feasible start.
	var wmax int64
	for u := 1; u <= b.n; u++ {
		for v := 1; v <= b.n; v++ {
			if u != v && b.g[u][v].w > wmax {
				wmax = b.g[u][v].w
			}
		}
	}
	for u := 1; u <= b.n; u++ {
		b.st[u] = u
		b.lab[u] = wmax / 2 // wmax is even (weights are doubled), so duals stay integral
	}
	matched := 0
	for matched < b.n/2 {
		if !b.matching() {
			break
		}
		matched++
	}
	var total int64
	for u := 1; u <= b.n; u++ {
		if b.match[u] > u {
			total += b.g[u][b.match[u]].w / 2
		}
	}
	return total
}
