// Package blossom implements Edmonds' blossom algorithm for maximum-
// cardinality matching on general (non-bipartite) graphs.
//
// The paper's optimization algorithm rests on matching theory: it cites
// Edmonds' algorithm ([13]) and solves its minimum-weight instances with a
// Blossom-V implementation. The *weighted* solve in this repository goes
// through the dedicated bipartite LAP solvers (internal/assign) — the
// mosaic graph is complete bipartite, so they reach the same optimum; see
// DESIGN.md. This package provides the cited general-graph substrate
// itself: augmenting-path search with blossom (odd-cycle) contraction, in
// O(V·E·α) time per phase, O(V³) overall for dense graphs. It verifies the
// structural side of the reduction (a perfect matching exists and is found
// on the bipartite tile graphs) and serves as a reference implementation
// for the graph-theory layer.
package blossom

import (
	"errors"
	"fmt"
)

// ErrGraph reports an invalid graph description.
var ErrGraph = errors.New("blossom: invalid graph")

// Graph is a simple undirected graph on vertices 0..N−1.
type Graph struct {
	N   int
	adj [][]int
	set map[[2]int]bool
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("blossom: %d vertices: %w", n, ErrGraph)
	}
	return &Graph{N: n, adj: make([][]int, n), set: make(map[[2]int]bool)}, nil
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected;
// duplicate edges are ignored.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return fmt.Errorf("blossom: edge (%d, %d) out of range [0, %d): %w", u, v, g.N, ErrGraph)
	}
	if u == v {
		return fmt.Errorf("blossom: self-loop at %d: %w", u, ErrGraph)
	}
	if u > v {
		u, v = v, u
	}
	if g.set[[2]int{u, v}] {
		return nil
	}
	g.set[[2]int{u, v}] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// Edges returns the number of distinct edges.
func (g *Graph) Edges() int { return len(g.set) }

// HasEdge reports whether {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return g.set[[2]int{u, v}]
}

// MaxMatching computes a maximum-cardinality matching. The result maps each
// vertex to its partner, or −1 if unmatched; the number of matched pairs is
// returned alongside.
func (g *Graph) MaxMatching() (match []int, size int) {
	n := g.N
	match = make([]int, n)
	for i := range match {
		match[i] = -1
	}
	if n == 0 {
		return match, 0
	}

	// Greedy warm start halves the number of augmenting phases.
	for u := 0; u < n; u++ {
		if match[u] >= 0 {
			continue
		}
		for _, v := range g.adj[u] {
			if match[v] < 0 {
				match[u], match[v] = v, u
				size++
				break
			}
		}
	}

	// state for each phase of the search
	parent := make([]int, n) // alternating-tree parent (through base vertices)
	base := make([]int, n)   // base[v] = base vertex of v's blossom
	queue := make([]int, 0, n)
	inQueue := make([]bool, n)
	inBlossom := make([]bool, n)
	inPath := make([]bool, n)

	// lca finds the lowest common ancestor of the bases of u and v in the
	// alternating tree, walking matched+parent edges.
	lca := func(u, v int) int {
		for i := range inPath {
			inPath[i] = false
		}
		a := u
		for {
			a = base[a]
			inPath[a] = true
			if match[a] < 0 {
				break
			}
			a = parent[match[a]]
		}
		b := v
		for {
			b = base[b]
			if inPath[b] {
				return b
			}
			b = parent[match[b]]
		}
	}

	// markPath flags blossom membership walking from v up to the base b,
	// recording child as the tree parent for the odd vertices.
	markPath := func(v, b, child int) {
		for base[v] != b {
			inBlossom[base[v]] = true
			inBlossom[base[match[v]]] = true
			parent[v] = child
			child = match[v]
			v = parent[match[v]]
		}
	}

	contract := func(u, v int) {
		b := lca(u, v)
		for i := range inBlossom {
			inBlossom[i] = false
		}
		markPath(u, b, v)
		markPath(v, b, u)
		for i := 0; i < n; i++ {
			if inBlossom[base[i]] {
				base[i] = b
				if !inQueue[i] {
					inQueue[i] = true
					queue = append(queue, i)
				}
			}
		}
	}

	// findPath grows an alternating tree from root; returns the free vertex
	// ending an augmenting path, or −1.
	findPath := func(root int) int {
		for i := 0; i < n; i++ {
			parent[i] = -1
			base[i] = i
			inQueue[i] = false
		}
		queue = queue[:0]
		queue = append(queue, root)
		inQueue[root] = true
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range g.adj[u] {
				if base[u] == base[v] || match[u] == v {
					continue
				}
				if v == root || (match[v] >= 0 && parent[match[v]] >= 0) {
					// v is an even (outer) vertex: odd cycle → blossom.
					contract(u, v)
				} else if parent[v] < 0 {
					parent[v] = u
					if match[v] < 0 {
						return v // augmenting path found
					}
					// v is matched: its partner becomes an outer vertex.
					if !inQueue[match[v]] {
						inQueue[match[v]] = true
						queue = append(queue, match[v])
					}
				}
			}
		}
		return -1
	}

	for root := 0; root < n; root++ {
		if match[root] >= 0 {
			continue
		}
		v := findPath(root)
		if v < 0 {
			continue
		}
		size++
		// Augment: flip matched/unmatched along the path back to the root.
		for v >= 0 {
			pv := parent[v]
			ppv := match[pv]
			match[v] = pv
			match[pv] = v
			v = ppv
		}
	}
	return match, size
}

// Verify checks that match is a valid matching of g: symmetric, partner
// edges exist, no vertex matched twice.
func (g *Graph) Verify(match []int) error {
	if len(match) != g.N {
		return fmt.Errorf("blossom: %d-entry matching on %d vertices: %w", len(match), g.N, ErrGraph)
	}
	for u, v := range match {
		if v < 0 {
			continue
		}
		if v >= g.N {
			return fmt.Errorf("blossom: partner %d out of range: %w", v, ErrGraph)
		}
		if match[v] != u {
			return fmt.Errorf("blossom: asymmetric match %d→%d→%d: %w", u, v, match[v], ErrGraph)
		}
		if !g.HasEdge(u, v) {
			return fmt.Errorf("blossom: matched pair (%d, %d) is not an edge: %w", u, v, ErrGraph)
		}
	}
	return nil
}

// HasPerfectMatching reports whether g admits a perfect matching.
func (g *Graph) HasPerfectMatching() bool {
	if g.N%2 != 0 {
		return false
	}
	_, size := g.MaxMatching()
	return 2*size == g.N
}
