package blossom

import (
	"math"
	"math/rand"
	"testing"
)

// bruteMaxWeightPerfect enumerates all perfect matchings of K_n (n even).
func bruteMaxWeightPerfect(n int, w func(u, v int) int64) int64 {
	used := make([]bool, n)
	var rec func() int64
	rec = func() int64 {
		u := 0
		for u < n && used[u] {
			u++
		}
		if u == n {
			return 0
		}
		used[u] = true
		best := int64(math.MinInt64)
		for v := u + 1; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			if r := w(u, v) + rec(); r > best {
				best = r
			}
			used[v] = false
		}
		used[u] = false
		return best
	}
	return rec()
}

func randWeights(n int, maxW int64, seed int64) func(u, v int) int64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]int64, n*n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			x := rng.Int63n(maxW + 1)
			w[u*n+v] = x
			w[v*n+u] = x
		}
	}
	return func(u, v int) int64 { return w[u*n+v] }
}

func verifyPerfect(t *testing.T, n int, match []int, w func(u, v int) int64, wantTotal int64) {
	t.Helper()
	if len(match) != n {
		t.Fatalf("match length %d", len(match))
	}
	var total int64
	for u, v := range match {
		if v < 0 || v >= n || v == u {
			t.Fatalf("vertex %d matched to %d", u, v)
		}
		if match[v] != u {
			t.Fatalf("asymmetric: %d→%d→%d", u, v, match[v])
		}
		if u < v {
			total += w(u, v)
		}
	}
	if total != wantTotal {
		t.Fatalf("reported total %d, edges sum to %d", wantTotal, total)
	}
}

func TestMaxWeightPerfectMatchesBruteForce(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		for trial := 0; trial < 15; trial++ {
			w := randWeights(n, 50, int64(n*1000+trial))
			match, total, err := MaxWeightPerfect(n, w)
			if err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
			verifyPerfect(t, n, match, w, total)
			if want := bruteMaxWeightPerfect(n, w); total != want {
				t.Fatalf("n=%d trial=%d: total %d, optimum %d", n, trial, total, want)
			}
		}
	}
}

func TestMaxWeightPerfectWithManyTies(t *testing.T) {
	// All-equal weights: any perfect matching is optimal; must terminate and
	// return n/2 · w.
	for _, n := range []int{4, 6, 10} {
		match, total, err := MaxWeightPerfect(n, func(u, v int) int64 { return 7 })
		if err != nil {
			t.Fatal(err)
		}
		verifyPerfect(t, n, match, func(u, v int) int64 { return 7 }, total)
		if total != int64(n/2)*7 {
			t.Errorf("n=%d: total %d", n, total)
		}
	}
}

func TestMaxWeightPerfectZeroWeights(t *testing.T) {
	// The all-zeros instance exercises the +1 edge-presence shift.
	match, total, err := MaxWeightPerfect(6, func(u, v int) int64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	verifyPerfect(t, 6, match, func(u, v int) int64 { return 0 }, total)
	if total != 0 {
		t.Errorf("total %d, want 0", total)
	}
}

func TestMaxWeightPerfectForcedBlossoms(t *testing.T) {
	// A weighted instance known to require blossom contractions: strong
	// triangle weights that tempt the greedy structure into odd cycles.
	// K6 with heavy triangle {0,1,2} and {3,4,5}, weak cross edges except a
	// planted optimum.
	w := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		switch {
		case v < 3 || u >= 3: // inside a triangle
			return 100
		case u == 0 && v == 3, u == 1 && v == 4, u == 2 && v == 5:
			return 90
		default:
			return 1
		}
	}
	// Perfect matching cannot use two edges of one triangle; optimum is one
	// triangle edge from each (100+100) plus the forced cross pair... brute
	// force is the referee.
	match, total, err := MaxWeightPerfect(6, w)
	if err != nil {
		t.Fatal(err)
	}
	verifyPerfect(t, 6, match, w, total)
	if want := bruteMaxWeightPerfect(6, w); total != want {
		t.Errorf("total %d, optimum %d", total, want)
	}
}

func TestMinWeightPerfectAgainstBrute(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		for trial := 0; trial < 10; trial++ {
			w := randWeights(n, 40, int64(n*77+trial))
			match, total, err := MinWeightPerfect(n, w)
			if err != nil {
				t.Fatal(err)
			}
			verifyPerfect(t, n, match, w, total)
			// Brute minimum via negated brute maximum.
			want := -bruteMaxWeightPerfect(n, func(u, v int) int64 { return -w(u, v) })
			if total != want {
				t.Fatalf("n=%d trial=%d: total %d, optimum %d", n, trial, total, want)
			}
		}
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, _, err := MaxWeightPerfect(3, func(u, v int) int64 { return 1 }); err == nil {
		t.Error("accepted odd n")
	}
	if _, _, err := MaxWeightPerfect(0, func(u, v int) int64 { return 1 }); err == nil {
		t.Error("accepted n=0")
	}
	if _, _, err := MaxWeightPerfect(4, func(u, v int) int64 { return -1 }); err == nil {
		t.Error("accepted negative weight")
	}
	if _, _, err := MinWeightPerfect(5, func(u, v int) int64 { return 1 }); err == nil {
		t.Error("MinWeightPerfect accepted odd n")
	}
}

func TestWeightedTwoVertices(t *testing.T) {
	match, total, err := MaxWeightPerfect(2, func(u, v int) int64 { return 13 })
	if err != nil {
		t.Fatal(err)
	}
	if match[0] != 1 || match[1] != 0 || total != 13 {
		t.Errorf("match %v total %d", match, total)
	}
}

func BenchmarkMaxWeightPerfect64(b *testing.B) {
	w := randWeights(64, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxWeightPerfect(64, w); err != nil {
			b.Fatal(err)
		}
	}
}
