package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/synth"
)

// TestPreCancelledContext: a context cancelled before the call must return
// context.Canceled without executing Step 2 or Step 3 — verified through the
// device's launch counters, which stay at zero.
func TestPreCancelledContext(t *testing.T) {
	input, target := pair(t, 64)
	dev := cuda.New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := GenerateContext(ctx, input, target, Options{
		TilesPerSide: 8,
		Algorithm:    ParallelApproximation,
		Device:       dev,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled call returned a non-nil Result")
	}
	if m := dev.Metrics(); m.Launches != 0 || m.Blocks != 0 {
		t.Fatalf("device executed %d launches / %d blocks despite pre-cancelled context", m.Launches, m.Blocks)
	}
}

func TestPreCancelledContextRGB(t *testing.T) {
	input, err := synth.GenerateRGB(synth.Peppers, 64)
	if err != nil {
		t.Fatal(err)
	}
	target, err := synth.GenerateRGB(synth.Barbara, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := GenerateRGBContext(ctx, input, target, Options{TilesPerSide: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled call returned a non-nil ResultRGB")
	}
}

// countingCtx is a deterministic context: Done() reports cancellation after
// the channel has been polled `after` times. It makes "cancelled between
// sweep rounds" reproducible without racing real timers against the search.
type countingCtx struct {
	context.Context
	mu     sync.Mutex
	after  int
	polls  int
	closed chan struct{}
	fired  bool
}

func newCountingCtx(after int) *countingCtx {
	return &countingCtx{Context: context.Background(), after: after, closed: make(chan struct{})}
}

func (c *countingCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	if c.polls >= c.after && !c.fired {
		c.fired = true
		close(c.closed)
	}
	return c.closed
}

func (c *countingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return context.DeadlineExceeded
	}
	return nil
}

// randomMatrix builds a reproducible S×S cost matrix with enough structure
// that the local search needs several sweeps.
func randomMatrix(s int, seed uint64) *metric.Matrix {
	m := metric.NewMatrix(s)
	state := seed ^ 0x9e3779b97f4a7c15
	for i := range m.W {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		m.W[i] = metric.Cost((z ^ (z >> 31)) % 100000)
	}
	return m
}

// TestCancellationBoundedByOneSweep: with a context that fires on its third
// poll, SerialContext completes exactly two sweeps and stops at the next
// sweep boundary — cancellation latency is bounded by one sweep round.
func TestCancellationBoundedByOneSweep(t *testing.T) {
	m := randomMatrix(128, 7)
	ctx := newCountingCtx(3)
	p, st, err := localsearch.SerialContext(ctx, m, perm.Identity(m.S), localsearch.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if p != nil {
		t.Fatal("cancelled search returned an assignment")
	}
	if st.Passes != 2 {
		t.Fatalf("search ran %d sweeps before honouring the cancellation, want exactly 2", st.Passes)
	}
	// Sanity: the same search uncancelled needs more than two sweeps, so the
	// cancellation genuinely interrupted it mid-run.
	_, full, err := localsearch.Serial(m, perm.Identity(m.S), localsearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Passes <= 2 {
		t.Fatalf("instance converges in %d sweeps; pick a harder one", full.Passes)
	}
}

// TestParallelCancellationBetweenClasses: the parallel search checks the
// context between the kernel launches of consecutive color classes.
func TestParallelCancellationBetweenClasses(t *testing.T) {
	m := randomMatrix(64, 11)
	dev := cuda.New(2)
	// Fires on the second poll: the sweep-level check passes once, the first
	// between-class check cancels — mid-sweep, before convergence.
	ctx := newCountingCtx(2)
	p, _, err := localsearch.ParallelContext(ctx, dev, m, perm.Identity(m.S), nil, localsearch.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if p != nil {
		t.Fatal("cancelled search returned an assignment")
	}
}

// TestDeadlineMidPipeline: a wall-clock deadline far shorter than the
// pipeline aborts the run promptly with DeadlineExceeded and no Result.
func TestDeadlineMidPipeline(t *testing.T) {
	input, target := pair(t, 256)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	begin := time.Now()
	res, err := GenerateContext(ctx, input, target, Options{TilesPerSide: 64})
	elapsed := time.Since(begin)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatal("timed-out call returned a non-nil Result")
	}
	// Generous promptness bound: the pipeline must stop at the next stage or
	// sweep boundary, not run to completion.
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestAnnealingCancellation: the annealing engine honours cancellation at
// cooling-epoch boundaries.
func TestAnnealingCancellation(t *testing.T) {
	m := randomMatrix(64, 3)
	ctx := newCountingCtx(2)
	p, _, err := localsearch.AnnealThenPolishContext(ctx, m, perm.Identity(m.S), localsearch.AnnealOptions{}, localsearch.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if p != nil {
		t.Fatal("cancelled annealing returned an assignment")
	}
}

// TestContextCompleteRunMatchesGenerate: an unconstrained context changes
// nothing — GenerateContext and Generate agree bit-for-bit.
func TestContextCompleteRunMatchesGenerate(t *testing.T) {
	input, target := pair(t, 64)
	opts := Options{TilesPerSide: 8}
	a, err := Generate(input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateContext(context.Background(), input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Assignment.Equal(b.Assignment) || a.TotalError != b.TotalError {
		t.Fatal("GenerateContext diverged from Generate on the same inputs")
	}
}
