package core

import (
	"errors"
	"testing"

	"repro/internal/imgutil"
	"repro/internal/metric"
)

// FuzzGenerateOptions hardens the pipeline entry point against hostile
// configurations: fuzzed image geometry (zero, negative, non-square,
// mismatched buffer lengths) and fuzzed tile/metric/proxy parameters must
// either be rejected with ErrOptions or produce a valid permutation — never
// panic, and never return a Result alongside an error.
func FuzzGenerateOptions(f *testing.F) {
	f.Add(32, 32, 1024, 32, 32, 1024, 4, 0, 0, uint8(1), uint8(0))  // valid run
	f.Add(32, 32, 1024, 32, 32, 1024, 0, 8, 2, uint8(1), uint8(1))  // tile size + proxy
	f.Add(0, 0, 0, 32, 32, 1024, 4, 0, 0, uint8(0), uint8(0))       // empty input
	f.Add(-16, 16, 256, 16, 16, 256, 4, 0, 0, uint8(2), uint8(0))   // negative width
	f.Add(16, 24, 384, 16, 24, 384, 4, 0, 0, uint8(3), uint8(1))    // non-square
	f.Add(16, 16, 255, 16, 16, 256, 4, 0, 0, uint8(4), uint8(0))    // short buffer
	f.Add(16, 16, 256, 16, 16, 256, -3, 0, 0, uint8(1), uint8(0))   // negative tiles
	f.Add(16, 16, 256, 16, 16, 256, 5, 0, 0, uint8(1), uint8(0))    // indivisible tiles
	f.Add(16, 16, 256, 16, 16, 256, 4, 4, 0, uint8(1), uint8(0))    // both tile params
	f.Add(16, 16, 256, 16, 16, 256, 4, 0, -1, uint8(1), uint8(99))  // bad proxy + metric
	f.Add(16, 16, 256, 8, 8, 64, 4, 0, 0, uint8(5), uint8(0))       // size mismatch

	f.Fuzz(func(t *testing.T, iw, ih, ilen, tw, th, tlen, tiles, tileSize, proxy int, algo, met uint8) {
		// Cap buffers and dimensions: the target is crash-resistance of the
		// validation path, not generating enormous workloads.
		const maxLen = 1 << 12
		if ilen > maxLen || tlen > maxLen || ilen < 0 || tlen < 0 {
			t.Skip()
		}
		if iw > maxLen || ih > maxLen || tw > maxLen || th > maxLen {
			t.Skip()
		}
		build := func(w, h, n int) *imgutil.Gray {
			img := &imgutil.Gray{W: w, H: h, Pix: make([]uint8, n)}
			for i := range img.Pix {
				img.Pix[i] = uint8(i * 31)
			}
			return img
		}
		input := build(iw, ih, ilen)
		target := build(tw, th, tlen)

		algorithms := Algorithms()
		opts := Options{
			TilesPerSide:    tiles,
			TileSize:        tileSize,
			Metric:          metric.Metric(met % 3), // includes one invalid value
			ProxyResolution: proxy,
		}
		// Rotate through the serial algorithms; ParallelApproximation needs a
		// device, so substitute it with an unknown name to also exercise the
		// unknown-algorithm rejection.
		a := algorithms[int(algo)%len(algorithms)]
		if a == ParallelApproximation {
			a = Algorithm("no-such-algorithm")
		}
		opts.Algorithm = a

		res, err := Generate(input, target, opts)
		if err != nil {
			if res != nil {
				t.Fatal("Generate returned a Result alongside an error")
			}
			if !errors.Is(err, ErrOptions) {
				t.Fatalf("rejection %v does not wrap ErrOptions", err)
			}
			return
		}
		// Accepted: the inputs must have been genuinely well-formed…
		if iw <= 0 || ih <= 0 || iw != ih || ilen != iw*ih || tw != iw || th != ih || tlen != ilen {
			t.Fatalf("Generate accepted malformed geometry %dx%d/%d vs %dx%d/%d", iw, ih, ilen, tw, th, tlen)
		}
		// …and the result fully populated.
		if err := res.Assignment.Validate(); err != nil {
			t.Fatalf("accepted run produced invalid assignment: %v", err)
		}
		if res.Mosaic == nil || res.Mosaic.W != iw || res.Mosaic.H != ih {
			t.Fatal("accepted run produced a malformed mosaic")
		}
	})
}
