package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/synth"
	"repro/internal/tilestore"
)

// TestPreparedExposesStores: PrepareContext builds both columnar stores in
// the fused pass; the input store reflects the histogram-matched pixels and
// MemoryBytes charges the stores.
func TestPreparedExposesStores(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 128)
	target := synth.MustGenerate(synth.Sailboat, 128)
	prep, err := PrepareContext(context.Background(), input, target, Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	in, tgt := prep.InputStore(), prep.TargetStore()
	if in == nil || tgt == nil {
		t.Fatal("Prepared missing a tile store")
	}
	if in.S() != prep.Tiles() || in.M != prep.TileSide() || tgt.S() != prep.Tiles() {
		t.Fatalf("store geometry S=%d M=%d vs prepared S=%d M=%d", in.S(), in.M, prep.Tiles(), prep.TileSide())
	}
	res, err := prep.FinishContext(context.Background(), Options{Algorithm: IdentityBaseline})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tilestore.FromImage(res.Input, prep.TileSide())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in.Pix, ref.Pix) {
		t.Fatal("input store does not match the histogram-matched image")
	}
	if prep.MemoryBytes() < in.MemoryBytes()+tgt.MemoryBytes() {
		t.Fatalf("MemoryBytes %d does not cover the stores (%d)", prep.MemoryBytes(), in.MemoryBytes()+tgt.MemoryBytes())
	}
}

// TestStoreCandidatesOption: the thumbnail-derived warm start drives
// ApproximationDirty to a valid mosaic whose reported error matches the
// matrix, both through GenerateContext and a Prepared reused via
// FinishContext (mergeFinishOptions must carry the flag through).
func TestStoreCandidatesOption(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 128)
	target := synth.MustGenerate(synth.Sailboat, 128)
	opts := Options{TilesPerSide: 16, Algorithm: ApproximationDirty, StoreCandidates: true}
	res, err := Generate(input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.SearchStats.Passes < 1 {
		t.Fatalf("degenerate search stats %+v", res.SearchStats)
	}
	plain, err := Generate(input, target, Options{TilesPerSide: 16, Algorithm: ApproximationDirty})
	if err != nil {
		t.Fatal(err)
	}
	// Both land on swap-local plateaus of the same matrix; the warm-started
	// one must stay in the same cost regime.
	if float64(res.TotalError) > 1.1*float64(plain.TotalError) {
		t.Fatalf("store-candidate cost %d more than 10%% above exhaustive %d", res.TotalError, plain.TotalError)
	}

	prep, err := PrepareContext(context.Background(), input, target, Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, err := prep.FinishContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalError != res.TotalError || !got.Assignment.Equal(res.Assignment) {
		t.Fatal("FinishContext with StoreCandidates diverged from GenerateContext")
	}
}
