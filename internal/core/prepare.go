package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/assign"
	"repro/internal/cuda"
	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/tile"
	"repro/internal/tilestore"
	"repro/internal/trace"
)

// Prepared is the reusable front half of the pipeline: the preprocessed
// input, both tile grids and the S×S error matrix of one (input, target,
// geometry, metric) combination. Photomosaic serving is naturally repeated
// against a fixed target/tile library, and Steps 1–2 dominate the per-request
// cost there, so a serving layer caches Prepared values by content hash and
// runs only Step 3 + assembly per request (FinishContext).
//
// A Prepared is immutable after PrepareContext returns: concurrent
// FinishContext calls on one shared value are safe, provided each call either
// omits Options.Start or passes a perm it does not mutate elsewhere.
type Prepared struct {
	// opts are the prepare-time options with defaults applied; the fields
	// that shaped Steps 1–2 (geometry, metric, histogram matching, proxy,
	// orientations) are authoritative for every later Finish.
	opts  Options
	m     int
	input *imgutil.Gray // preprocessed (histogram-matched) input actually tiled
	// inStore/tgtStore are the columnar tile stores — contiguous padded
	// per-tile pixel blocks plus per-tile stats, gathered once here in a pass
	// fused with histogram matching. They are immutable, so every concurrent
	// FinishContext (and every Step-2 builder shard) reads them zero-copy.
	inStore  *tilestore.Store
	tgtStore *tilestore.Store
	inGrid   *tile.Grid
	tgtGrid  *tile.Grid
	costs    *metric.Matrix
	oriented *metric.OrientedMatrix
	// prepTiming carries the Preprocess and CostMatrix stage times measured
	// at prepare time; FinishContext copies them into Result.Timing, so a
	// cache-hit result reports the original build cost of the reused work.
	prepTiming Timing
}

// Tiles returns S, the number of tiles per image.
func (p *Prepared) Tiles() int { return p.costs.S }

// TileSide returns M, the tile side in pixels.
func (p *Prepared) TileSide() int { return p.m }

// MemoryBytes estimates the resident size of the prepared artifacts — the
// two pixel buffers the grids reference, both columnar tile stores (padded
// pixel blocks plus per-tile stats) and the error matrix (and, when
// orientations were scored, the per-pair orientation table). Serving caches
// use it as the eviction weight.
func (p *Prepared) MemoryBytes() int64 {
	n := int64(len(p.input.Pix)) + int64(len(p.tgtGrid.Img.Pix))
	n += p.inStore.MemoryBytes() + p.tgtStore.MemoryBytes()
	n += int64(len(p.costs.W)) * 8
	if p.oriented != nil {
		n += int64(len(p.oriented.Orient))
	}
	return n
}

// Costs returns the prepared S×S error matrix. The matrix is shared, not
// copied — callers must treat it as read-only (benchjson's solver comparison
// and the solver-smoke gate read it to run the exact matchers standalone).
func (p *Prepared) Costs() *metric.Matrix { return p.costs }

// InputStore returns the input image's columnar tile store (post-matching).
func (p *Prepared) InputStore() *tilestore.Store { return p.inStore }

// TargetStore returns the target image's columnar tile store.
func (p *Prepared) TargetStore() *tilestore.Store { return p.tgtStore }

// PrepareContext runs the cacheable front half of GenerateContext —
// preprocessing (§II), tiling (Step 1) and the error matrix (Step 2) — and
// returns the artifacts for any number of FinishContext calls. Options is
// validated exactly as GenerateContext validates it; stage spans are emitted
// to opts.Trace.
func PrepareContext(ctx context.Context, input, target *imgutil.Gray, opts Options) (*Prepared, error) {
	m, err := opts.validate(input, target)
	if err != nil {
		return nil, err
	}
	return prepareStages(ctx, input, target, opts, m, opts.Trace)
}

// FinishContext runs the back half of the pipeline — Step-3 rearrangement
// and assembly — on the prepared artifacts. The Step-3 fields of opts
// (Algorithm, Solver, Search, Anneal, Start, Coloring, Device, Trace) are
// honoured; everything that shaped Steps 1–2 is taken from prepare time, so
// one Prepared serves requests that differ only in rearrangement strategy.
// Result.Stats aggregates this call's spans and counters; a Finish on reused
// work therefore contains no error-matrix span — the observable signature of
// a cache hit.
func (p *Prepared) FinishContext(ctx context.Context, opts Options) (*Result, error) {
	merged, err := p.mergeFinishOptions(opts)
	if err != nil {
		return nil, err
	}
	tree := trace.NewTree()
	tr := trace.Multi(tree, merged.Trace)
	var dev0 cuda.Metrics
	if merged.Device != nil {
		dev0 = merged.Device.Metrics()
	}
	res, err := func() (*Result, error) {
		root := trace.Start(tr, trace.SpanPipeline)
		defer root.End()
		return p.finishStages(ctx, merged, tr)
	}()
	deviceDelta(tr, merged.Device, dev0)
	if err != nil {
		trace.Count(tr, trace.CounterPipelineErrors, 1)
		return nil, err
	}
	trace.Count(tr, trace.CounterPipelineRuns, 1)
	res.Stats = tree.Snapshot()
	return res, nil
}

// mergeFinishOptions overlays the Step-3 fields of next onto the
// prepare-time options and validates the combination.
func (p *Prepared) mergeFinishOptions(next Options) (Options, error) {
	o := p.opts
	o.Algorithm = next.Algorithm
	o.Solver = next.Solver
	o.Search = next.Search
	o.StoreCandidates = next.StoreCandidates
	o.Anneal = next.Anneal
	o.Start = next.Start
	o.Coloring = next.Coloring
	o.Device = next.Device
	o.Trace = next.Trace
	o.Resilience = next.Resilience
	o.Anytime = next.Anytime
	o.Deadline = next.Deadline
	if o.Algorithm == "" {
		o.Algorithm = Approximation
	}
	if _, err := ParseAlgorithm(string(o.Algorithm)); err != nil {
		return o, err
	}
	if o.Solver == "" {
		o.Solver = assign.AlgoJV
	}
	if _, ok := assign.Solvers()[o.Solver]; !ok {
		return o, fmt.Errorf("core: unknown solver %q: %w", o.Solver, ErrOptions)
	}
	if o.Algorithm == ParallelApproximation && o.Device == nil && !o.cpuFallbackAllowed() {
		return o, fmt.Errorf("core: %s requires a Device: %w", ParallelApproximation, ErrOptions)
	}
	return o, nil
}

// startFloor fills res with the anytime quality floor: the start assignment
// (or identity) untouched by any search — the paper's unrearranged mosaic.
// It is the result when the budget is exhausted before Step 3 can run at
// all, marked Partial with its achieved cost.
func (p *Prepared) startFloor(opts Options, res *Result) error {
	start := opts.Start
	if start == nil {
		start = perm.Identity(p.costs.S)
	} else if err := start.Validate(); err != nil {
		return err
	}
	res.Assignment = start
	res.SearchStats = localsearch.Stats{Partial: true, Cost: p.costs.Total(start)}
	res.AssignInfo = nil
	return nil
}

// prepareStages runs preprocessing, tiling and Step 2 under tr, with the
// same cancellation points GenerateContext has always had.
func prepareStages(ctx context.Context, input, target *imgutil.Gray, opts Options, m int, tr trace.Collector) (*Prepared, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before preprocessing: %w", err)
	}
	p := &Prepared{opts: opts, m: m}

	// §II preprocessing fused with the Step-1 gather: the target store is
	// built first (its per-tile histograms sum to exactly the target's global
	// distribution, so matching needs no separate histogram pass over the
	// target), then the input is mapped through the matching LUT and gathered
	// into its store — pixels, per-tile stats and the matched image — in one
	// traversal. tilestore.GatherLUT is byte-identical to hist.Match followed
	// by a plain gather, which TestGatherLUTFusesMatch pins.
	t0 := time.Now()
	sp := trace.Start(tr, trace.SpanPreprocess)
	var err error
	p.tgtStore, err = tilestore.FromImage(target, m)
	if err != nil {
		return nil, err
	}
	work := input
	if !opts.NoHistogramMatch {
		lut, lerr := hist.MatchLUT(hist.Of(input), p.tgtStore.GlobalHistogram())
		if lerr != nil {
			return nil, fmt.Errorf("core: histogram match: %w", lerr)
		}
		p.inStore, work, err = tilestore.GatherLUT(input, m, lut)
	} else {
		p.inStore, err = tilestore.FromImage(input, m)
	}
	if err != nil {
		return nil, err
	}
	sp.End()
	p.input = work
	p.prepTiming.Preprocess = time.Since(t0)
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before tiling: %w", err)
	}

	// Step 1: tiling. The grids are views over the already-gathered images —
	// assembly and exact-error evaluation still address tiles in place — so
	// this stage is geometry validation plus two headers.
	sp = trace.Start(tr, trace.SpanTiling)
	p.inGrid, err = tile.NewGrid(work, m)
	if err != nil {
		return nil, err
	}
	p.tgtGrid, err = tile.NewGrid(target, m)
	if err != nil {
		return nil, err
	}
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before Step 2: %w", err)
	}

	// Step 2: the S×S error matrix (oriented variant scores all eight
	// dihedral placements per pair and keeps the best). The builders stream
	// the columnar stores — no per-build re-gather — and are bit-identical to
	// the legacy crop-path builders of the same name (the differential oracle
	// battery in metric enforces this). Only the proxy builder still reads
	// the grids: it downsamples tiles to descriptors rather than streaming
	// full-resolution blocks.
	t0 = time.Now()
	sp = trace.Start(tr, trace.SpanCostMatrix)
	switch {
	case opts.AllowOrientations && opts.Device != nil:
		p.oriented, err = metric.BuildOrientedStoreDevice(opts.Device, p.inStore, p.tgtStore, opts.Metric)
	case opts.AllowOrientations:
		p.oriented, err = metric.BuildOrientedStore(p.inStore, p.tgtStore, opts.Metric)
	case opts.ProxyResolution > 0:
		p.costs, err = metric.BuildProxy(p.inGrid, p.tgtGrid, opts.Metric, opts.ProxyResolution)
	case opts.Resilience != nil:
		p.costs, err = buildCostsResilient(ctx, opts, p.inStore, p.tgtStore, tr)
	default:
		p.costs, err = metric.BuildStore(opts.Device, p.inStore, p.tgtStore, opts.Metric, opts.Builder)
	}
	if err != nil {
		return nil, err
	}
	if p.oriented != nil {
		p.costs = &p.oriented.Matrix
	}
	sp.End()
	p.prepTiming.CostMatrix = time.Since(t0)
	return p, nil
}

// finishStages runs Step 3 and assembly under tr. opts must already carry
// the prepare-time Step-1/2 fields (see mergeFinishOptions); callers inside
// this package pass the original options unchanged.
//
// In anytime mode the remaining time until opts.Deadline (falling back to
// ctx's deadline) is split into stage budgets: Step 3 runs under everything
// except the assembly/encode reserve (SplitBudget), a budget that has
// already run out skips the search entirely — the start assignment is the
// quality floor — and assembly always completes, so a deadline miss yields
// a valid, Partial result instead of an error.
func (p *Prepared) finishStages(ctx context.Context, opts Options, tr trace.Collector) (*Result, error) {
	if err := softCtxErr(ctx, opts.Anytime); err != nil {
		return nil, fmt.Errorf("core: cancelled before Step 3: %w", err)
	}
	res := &Result{Input: p.input}
	res.Timing.Preprocess = p.prepTiming.Preprocess
	res.Timing.CostMatrix = p.prepTiming.CostMatrix

	// Anytime budgeting: derive the binding Step-3 allotment from the time
	// left on the soft deadline. The search runs under its own sub-deadline
	// so the encode reserve survives; a search that exhausts it stops at a
	// safe point (Options.Search.Anytime) instead of erroring.
	searchCtx := ctx
	var deadline time.Time
	skipSearch := false
	if opts.Anytime {
		opts.Search.Anytime = true
		opts.Anneal.Anytime = true
		deadline = opts.Deadline
		if deadline.IsZero() {
			if d, ok := ctx.Deadline(); ok {
				deadline = d
			}
		}
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			res.BudgetRemaining = map[string]int64{"search": remaining.Nanoseconds()}
			if step3 := remaining - SplitBudget(remaining).Encode; step3 <= 0 {
				skipSearch = true
			} else {
				var cancel context.CancelFunc
				searchCtx, cancel = context.WithDeadline(ctx, time.Now().Add(step3))
				defer cancel()
			}
		}
	}

	if opts.StoreCandidates && opts.Algorithm == ApproximationDirty && opts.Search.CandidateLists == nil {
		// Warm the dirty search from the stores' thumbnail descriptors — the
		// stats half of the columnar store feeding Step 3 directly.
		k := opts.Search.Candidates
		if k <= 0 {
			k = 8
		}
		opts.Search.CandidateLists = localsearch.StoreCandidates(p.inStore, p.tgtStore, k)
	}

	// Step 3: rearrangement.
	t0 := time.Now()
	sp := trace.Start(tr, trace.SpanRearrange)
	var err error
	if skipSearch {
		if err := p.startFloor(opts, res); err != nil {
			return nil, err
		}
	} else {
		res.Assignment, res.SearchStats, res.Timing.Assign, res.AssignInfo, err = rearrangeContext(searchCtx, p.costs, opts, tr)
		if err != nil {
			if opts.Anytime && errors.Is(err, context.DeadlineExceeded) && ctxErr(ctx) == nil {
				// The stage budget expired inside a Step-3 algorithm with no
				// snapshot of its own (an exact matcher mid-solve holds no
				// valid assignment): degrade to the start floor.
				if ferr := p.startFloor(opts, res); ferr != nil {
					return nil, ferr
				}
			} else {
				return nil, err
			}
		}
	}
	res.Partial = res.SearchStats.Partial
	if res.SearchStats.Degraded > 0 {
		// The resilient parallel search ran some color classes on the host;
		// mark the degradation in the tree and the run-level counter (the
		// host sweeps themselves already happened inside rearrangeContext).
		trace.Count(tr, trace.CounterDegradedRuns, 1)
		trace.Start(tr, trace.SpanDegraded).End()
	}
	sp.End()
	res.Timing.Rearrange = time.Since(t0)
	if opts.ProxyResolution > 0 && opts.ProxyResolution < p.m {
		// Step 3 ran on approximate costs; report the true Eq. (2) error.
		res.TotalError, err = metric.AssignmentError(p.inGrid, p.tgtGrid, res.Assignment, opts.Metric)
		if err != nil {
			return nil, err
		}
	} else {
		res.TotalError = p.costs.Total(res.Assignment)
	}
	if err := softCtxErr(ctx, opts.Anytime); err != nil {
		return nil, fmt.Errorf("core: cancelled before assembly: %w", err)
	}
	if res.BudgetRemaining != nil {
		res.BudgetRemaining["assemble"] = time.Until(deadline).Nanoseconds()
	}

	// Assembly.
	t0 = time.Now()
	sp = trace.Start(tr, trace.SpanAssemble)
	if p.oriented != nil {
		res.Orientations, err = p.oriented.Orientations(res.Assignment)
		if err != nil {
			return nil, err
		}
		res.Mosaic, err = p.inGrid.AssembleOriented(res.Assignment, res.Orientations)
	} else {
		res.Mosaic, err = p.inGrid.Assemble(res.Assignment)
	}
	if err != nil {
		return nil, err
	}
	sp.End()
	res.Timing.Assemble = time.Since(t0)
	return res, nil
}
