package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cuda"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestPrepareFinishMatchesGenerate: splitting the pipeline into
// PrepareContext + FinishContext must reproduce GenerateContext bit for bit.
func TestPrepareFinishMatchesGenerate(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 128)
	target := synth.MustGenerate(synth.Sailboat, 128)
	opts := Options{TilesPerSide: 16, Algorithm: Approximation}

	want, err := Generate(input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := PrepareContext(context.Background(), input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prep.FinishContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalError != want.TotalError {
		t.Fatalf("TotalError = %d, want %d", got.TotalError, want.TotalError)
	}
	if !got.Assignment.Equal(want.Assignment) {
		t.Fatal("assignments differ")
	}
	if !got.Mosaic.Equal(want.Mosaic) {
		t.Fatal("mosaics differ")
	}
	if prep.Tiles() != 16*16 || prep.TileSide() != 8 {
		t.Fatalf("Tiles()=%d TileSide()=%d, want 256, 8", prep.Tiles(), prep.TileSide())
	}
	if prep.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes() = %d", prep.MemoryBytes())
	}
}

// TestFinishAlgorithmOverride: one Prepared serves Step-3 variants, each
// matching the corresponding full pipeline run.
func TestFinishAlgorithmOverride(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 64)
	target := synth.MustGenerate(synth.Sailboat, 64)
	base := Options{TilesPerSide: 8}
	prep, err := PrepareContext(context.Background(), input, target, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Optimization, Approximation, GreedyBaseline, IdentityBaseline} {
		opts := base
		opts.Algorithm = alg
		want, err := Generate(input, target, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		got, err := prep.FinishContext(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if got.TotalError != want.TotalError {
			t.Fatalf("%s: TotalError = %d, want %d", alg, got.TotalError, want.TotalError)
		}
		if !got.Mosaic.Equal(want.Mosaic) {
			t.Fatalf("%s: mosaics differ", alg)
		}
	}
}

// TestConcurrentFinishSharedPrepared: a Prepared is immutable, so concurrent
// FinishContext calls (the serving layer's cache-hit path) must be race-free
// and identical.
func TestConcurrentFinishSharedPrepared(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 64)
	target := synth.MustGenerate(synth.Sailboat, 64)
	opts := Options{TilesPerSide: 8, Algorithm: Approximation}
	prep, err := PrepareContext(context.Background(), input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prep.FinishContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]*Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = prep.FinishContext(context.Background(), opts)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("finish %d: %v", i, errs[i])
		}
		if results[i].TotalError != want.TotalError || !results[i].Mosaic.Equal(want.Mosaic) {
			t.Fatalf("finish %d diverged from the serial result", i)
		}
	}
}

// TestFinishHasNoCostMatrixSpan: the observable signature of reusing a
// Prepared is the absence of the Step-2 span — both in Result.Stats and on
// the caller's collector.
func TestFinishHasNoCostMatrixSpan(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 64)
	target := synth.MustGenerate(synth.Sailboat, 64)
	opts := Options{TilesPerSide: 8}
	prep, err := PrepareContext(context.Background(), input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	tree := trace.NewTree()
	opts.Trace = tree
	res, err := prep.FinishContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, stats := range []trace.Stats{res.Stats, tree.Snapshot()} {
		if stats.Span(trace.SpanCostMatrix).Count != 0 {
			t.Fatalf("finish emitted a %s span: %+v", trace.SpanCostMatrix, stats.Spans)
		}
		if stats.Span(trace.SpanRearrange).Count == 0 {
			t.Fatalf("finish missing the %s span: %+v", trace.SpanRearrange, stats.Spans)
		}
	}
	if res.Stats.Counter(trace.CounterPipelineRuns) != 1 {
		t.Fatalf("pipeline.runs = %d, want 1", res.Stats.Counter(trace.CounterPipelineRuns))
	}
}

// TestFinishValidatesStepThreeOptions: bad Step-3 options are rejected with
// ErrOptions, including the parallel algorithm without a device.
func TestFinishValidatesStepThreeOptions(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 64)
	target := synth.MustGenerate(synth.Sailboat, 64)
	prep, err := PrepareContext(context.Background(), input, target, Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.FinishContext(context.Background(), Options{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := prep.FinishContext(context.Background(), Options{Algorithm: ParallelApproximation}); err == nil {
		t.Fatal("parallel algorithm without a device accepted")
	}
	// With a device it runs, sharing the prepare-time matrix.
	res, err := prep.FinishContext(context.Background(), Options{Algorithm: ParallelApproximation, Device: cuda.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalError <= 0 {
		t.Fatalf("TotalError = %d", res.TotalError)
	}
}
