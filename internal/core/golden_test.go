package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/cuda"
	"repro/internal/metric"
	"repro/internal/synth"
)

// Golden end-to-end gates: two gallery scenes (the fig8 pairs) run through
// the full pipeline under every Step-2 builder, and the SHA-256 of the
// mosaic's pixel buffer must match a pinned constant. The pipeline is pure
// integer arithmetic over deterministic synth scenes, so the hashes are
// platform-independent; hashing pixels rather than encoded PNG bytes keeps
// the gate independent of PNG-encoder versions. Any layout bug that slips
// past the unit oracles — a padding byte leaking into a tile, a store gather
// off by a row — lands here as a visible hash change.
//
// If a hash changes, that is an output change of the whole pipeline:
// understand it before repinning (see DESIGN.md, "Golden outputs").
var goldenScenes = []struct {
	name    string
	in, tgt synth.Scene
	hash    string // SHA-256 of the mosaic pixel buffer, identical across builders
}{
	{"fig8-airplane-to-lena", synth.Airplane, synth.Lena,
		"ef07e7c9549686c4d37ecb7db4ee1561a5606f4a596447ceb47c5b0cec9ea2ca"},
	{"fig8-peppers-to-barbara", synth.Peppers, synth.Barbara,
		"84cc2c34d17537531727a2e63813048cd226d50d3e73289f67e0f31e3ec963e9"},
}

func TestGoldenGalleryScenes(t *testing.T) {
	for _, sc := range goldenScenes {
		input := synth.MustGenerate(sc.in, 128)
		target := synth.MustGenerate(sc.tgt, 128)
		for _, b := range append(metric.Builders(), metric.BuilderAuto) {
			opts := Options{TilesPerSide: 16, Algorithm: Approximation, Builder: b}
			if b.NeedsDevice() {
				opts.Device = cuda.New(0)
			}
			res, err := GenerateContext(context.Background(), input, target, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.name, b, err)
			}
			sum := sha256.Sum256(res.Mosaic.Pix)
			if got := hex.EncodeToString(sum[:]); got != sc.hash {
				t.Errorf("%s/builder=%q: mosaic hash %s, want %s", sc.name, b, got, sc.hash)
			}
		}
	}
}
