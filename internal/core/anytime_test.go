package core

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestSplitBudget pins the budget arithmetic: shares are non-negative, never
// overcommit the remainder, and a spent budget yields all zeros.
func TestSplitBudget(t *testing.T) {
	b := SplitBudget(time.Second)
	total := b.Prepare + b.CostMatrix + b.Assign + b.Search + b.Encode
	if total > time.Second {
		t.Fatalf("budget shares %v overcommit the 1s remainder", total)
	}
	for _, d := range []time.Duration{b.Prepare, b.CostMatrix, b.Assign, b.Search, b.Encode} {
		if d <= 0 {
			t.Fatalf("zero/negative share in %+v", b)
		}
	}
	if got := b.Step3(); got != b.Prepare+b.CostMatrix+b.Assign+b.Search {
		t.Fatalf("Step3() = %v, want the non-encode shares", got)
	}
	if z := SplitBudget(-time.Second); z != (Budgets{}) {
		t.Fatalf("negative remainder produced non-zero budgets %+v", z)
	}
}

// TestAnytimeAmpleBudgetBitIdentical: with a deadline comfortably beyond the
// run, the anytime pipeline must be invisible — same assignment, same error,
// same pixels, not Partial.
func TestAnytimeAmpleBudgetBitIdentical(t *testing.T) {
	input, target := pair(t, 128)
	plain, err := Generate(input, target, Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	anytime, err := Generate(input, target, Options{
		TilesPerSide: 16,
		Anytime:      true,
		Deadline:     time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if anytime.Partial {
		t.Fatal("ample-budget anytime run reported Partial")
	}
	if anytime.TotalError != plain.TotalError {
		t.Fatalf("total error %d != plain %d", anytime.TotalError, plain.TotalError)
	}
	for i := range plain.Assignment {
		if anytime.Assignment[i] != plain.Assignment[i] {
			t.Fatalf("assignment diverges at %d: %d vs %d", i, anytime.Assignment[i], plain.Assignment[i])
		}
	}
	if !bytes.Equal(anytime.Mosaic.Pix, plain.Mosaic.Pix) {
		t.Fatal("mosaic pixels diverge from the plain run")
	}
}

// TestAnytimeExpiredDeadlineFloor: a budget that is gone before Step 3 skips
// the search entirely and returns the start-assignment quality floor — a
// valid, Partial mosaic, never an error.
func TestAnytimeExpiredDeadlineFloor(t *testing.T) {
	input, target := pair(t, 64)
	res, err := Generate(input, target, Options{
		TilesPerSide: 8,
		Anytime:      true,
		Deadline:     time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expired-budget run not marked Partial")
	}
	if verr := res.Assignment.Validate(); verr != nil {
		t.Fatalf("floor assignment invalid: %v", verr)
	}
	if res.Mosaic == nil || res.Mosaic.W != 64 {
		t.Fatalf("floor run produced no mosaic: %+v", res.Mosaic)
	}
	if !res.SearchStats.Partial || res.SearchStats.Cost != res.TotalError {
		t.Fatalf("floor stats incoherent: %+v vs total %d", res.SearchStats, res.TotalError)
	}
	if res.BudgetRemaining == nil {
		t.Fatal("BudgetRemaining not reported")
	}
	if ns, ok := res.BudgetRemaining["search"]; !ok || ns > 0 {
		t.Fatalf("search budget remaining = %d, want ≤ 0 for an expired deadline", ns)
	}
}

// TestAnytimeMonotoneCostAcrossBudgets: the serial search walks one
// deterministic, monotonically improving trajectory, so more budget can
// never produce a worse mosaic. Equal costs are fine (both budgets may
// converge); an inversion is a bug regardless of machine speed.
func TestAnytimeMonotoneCostAcrossBudgets(t *testing.T) {
	input, target := pair(t, 256)
	costs := make([]int64, 0, 3)
	for _, deadline := range []time.Time{
		time.Now().Add(-time.Second),         // floor
		time.Now().Add(5 * time.Millisecond), // maybe mid-search
		time.Now().Add(time.Hour),            // converged
	} {
		res, err := Generate(input, target, Options{
			TilesPerSide: 32,
			Anytime:      true,
			Deadline:     deadline,
		})
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, res.TotalError)
	}
	if costs[1] > costs[0] || costs[2] > costs[1] {
		t.Fatalf("cost not monotone in budget: %v", costs)
	}
	if costs[2] >= costs[0] {
		t.Fatalf("ample budget (%d) did not improve on the floor (%d)", costs[2], costs[0])
	}
}

// TestAnytimeCanceledStillAborts: anytime forgives deadlines, not
// cancellation — a Canceled context (client gone, shutdown) must abort.
func TestAnytimeCanceledStillAborts(t *testing.T) {
	input, target := pair(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateContext(ctx, input, target, Options{
		TilesPerSide: 8,
		Anytime:      true,
		Deadline:     time.Now().Add(time.Hour),
	})
	if err == nil {
		t.Fatal("cancelled anytime run returned nil error")
	}
}

// TestAnytimeCtxDeadlineFallback: with no Options.Deadline, the soft budget
// falls back to the context's deadline — an expired one lands on the floor
// rather than erroring (Anytime forgives DeadlineExceeded end to end).
func TestAnytimeCtxDeadlineFallback(t *testing.T) {
	input, target := pair(t, 64)
	prepared, err := PrepareContext(context.Background(), input, target, Options{TilesPerSide: 8, Anytime: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := prepared.FinishContext(ctx, Options{TilesPerSide: 8, Anytime: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expired ctx deadline did not mark the result Partial")
	}
	if verr := res.Assignment.Validate(); verr != nil {
		t.Fatalf("fallback floor assignment invalid: %v", verr)
	}
}
