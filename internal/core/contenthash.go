package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/imgutil"
	"repro/internal/metric"
)

// ContentHash is the canonical content address of one unit of prepared work:
// it hashes everything that shapes Steps 1–2 — both pixel buffers with their
// geometry, the tile grid, the metric, and whether histogram matching runs.
// Step-3 parameters are deliberately excluded, so requests that differ only
// in rearrangement strategy share one Prepared.
//
// The hash is load-bearing beyond the single-node cache: mosaicd's
// prepared-work cache keys on it, HEAD /v1/prepared/{hash} peeks by it, and
// the cluster router consistent-hashes jobs onto backends with it — cache
// affinity across the fleet depends on every layer deriving the same bytes.
func ContentHash(input, target *imgutil.Gray, tiles int, met metric.Metric, noHistMatch bool) string {
	h := sha256.New()
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(input.W))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(input.H))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(target.W))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(target.H))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(tiles))
	h.Write(hdr[:])
	h.Write(input.Pix)
	h.Write(target.Pix)
	var flags [2]byte
	flags[0] = byte(met)
	if noHistMatch {
		flags[1] = 1
	}
	h.Write(flags[:])
	return hex.EncodeToString(h.Sum(nil))
}
