package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/retry"
	"repro/internal/trace"
)

func fastRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

// TestResilientHappyPathUnchanged: with Resilience set but no faults, the
// run matches the plain device run bit-for-bit and records zero
// faults/retries/degradations.
func TestResilientHappyPathUnchanged(t *testing.T) {
	input, target := pair(t, 128)
	opts := Options{TilesPerSide: 16, Algorithm: ParallelApproximation}

	opts.Device = cuda.New(4)
	ref, err := Generate(input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Device = cuda.New(4)
	opts.Resilience = &Resilience{Retry: fastRetry()}
	got, err := Generate(input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalError != ref.TotalError || !bytes.Equal(got.Mosaic.Pix, ref.Mosaic.Pix) {
		t.Fatal("healthy resilient run diverged from the plain device run")
	}
	for _, c := range []string{trace.CounterLaunchFaults, trace.CounterLaunchRetries, trace.CounterDegradedRuns} {
		if n := got.Stats.Counter(c); n != 0 {
			t.Errorf("healthy run has %s = %d, want 0", c, n)
		}
	}
	if got.Stats.Span(trace.SpanDegraded).Count != 0 {
		t.Error("healthy run recorded a degraded span")
	}
}

// TestResilientDifferentialDegraded is the differential test of the issue:
// a run whose device dies on the very first launch — forcing the Step-2
// matrix onto the host and every Step-3 class onto the serial sweep — is
// bit-identical to the healthy device run.
func TestResilientDifferentialDegraded(t *testing.T) {
	input, target := pair(t, 128)
	opts := Options{TilesPerSide: 16, Algorithm: ParallelApproximation}

	opts.Device = cuda.New(4)
	ref, err := Generate(input, target, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Device = cuda.New(4).WithFaults(&cuda.FaultPlan{Nth: []int64{1}, Err: cuda.ErrDeviceLost})
	opts.Resilience = &Resilience{Retry: fastRetry()}
	got, err := Generate(input, target, opts)
	if err != nil {
		t.Fatalf("degraded run failed instead of falling back: %v", err)
	}
	if got.TotalError != ref.TotalError {
		t.Fatalf("degraded TotalError %d != healthy %d", got.TotalError, ref.TotalError)
	}
	if !got.Assignment.Equal(ref.Assignment) {
		t.Fatal("degraded assignment diverged from healthy run")
	}
	if !bytes.Equal(got.Mosaic.Pix, ref.Mosaic.Pix) {
		t.Fatal("degraded mosaic pixels diverged from healthy run")
	}
	if got.Stats.Counter(trace.CounterDegradedRuns) == 0 {
		t.Error("degraded run did not advance degraded.runs")
	}
	if got.Stats.Span(trace.SpanDegraded).Count == 0 {
		t.Error("degraded run recorded no degraded span")
	}
	if got.SearchStats.Degraded == 0 {
		t.Error("SearchStats.Degraded is zero after device loss")
	}
}

// TestResilientTransientStorm: every-other-launch faults are absorbed by
// retries — same result, retries recorded, no degradation.
func TestResilientTransientStorm(t *testing.T) {
	input, target := pair(t, 128)
	opts := Options{TilesPerSide: 16, Algorithm: ParallelApproximation}

	opts.Device = cuda.New(4)
	ref, err := Generate(input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Device = cuda.New(4).WithFaults(&cuda.FaultPlan{EveryNth: 2})
	opts.Resilience = &Resilience{Retry: fastRetry()}
	got, err := Generate(input, target, opts)
	if err != nil {
		t.Fatalf("run under transient storm failed: %v", err)
	}
	if got.TotalError != ref.TotalError || !bytes.Equal(got.Mosaic.Pix, ref.Mosaic.Pix) {
		t.Fatal("storm-retried run diverged from healthy run")
	}
	if got.Stats.Counter(trace.CounterLaunchFaults) == 0 || got.Stats.Counter(trace.CounterLaunchRetries) == 0 {
		t.Fatalf("storm run counters: faults=%d retries=%d, want both > 0",
			got.Stats.Counter(trace.CounterLaunchFaults), got.Stats.Counter(trace.CounterLaunchRetries))
	}
	if got.Stats.Counter(trace.CounterDegradedRuns) != 0 {
		t.Error("transient storm degraded despite successful retries")
	}
}

// TestResilientDisableFallbackFails: with fallback disabled a dead device
// fails the run with the typed error.
func TestResilientDisableFallbackFails(t *testing.T) {
	input, target := pair(t, 64)
	opts := Options{
		TilesPerSide: 8,
		Algorithm:    ParallelApproximation,
		Device:       cuda.New(2).WithFaults(&cuda.FaultPlan{Err: cuda.ErrDeviceLost}),
		Resilience:   &Resilience{Retry: fastRetry(), DisableFallback: true},
	}
	_, err := Generate(input, target, opts)
	if !errors.Is(err, cuda.ErrDeviceLost) {
		t.Fatalf("got %v, want ErrDeviceLost", err)
	}
}

// TestResilientPrepareFinishSplit: the serving-path split degrades the same
// way — Prepare under a dead device falls back for Step 2, Finish falls back
// for Step 3, and the final mosaic matches the healthy run.
func TestResilientPrepareFinishSplit(t *testing.T) {
	input, target := pair(t, 64)
	base := Options{TilesPerSide: 8, Algorithm: ParallelApproximation}

	healthy := base
	healthy.Device = cuda.New(2)
	ref, err := Generate(input, target, healthy)
	if err != nil {
		t.Fatal(err)
	}

	dead := base
	dead.Device = cuda.New(2).WithFaults(&cuda.FaultPlan{Err: cuda.ErrDeviceLost})
	dead.Resilience = &Resilience{Retry: fastRetry()}
	prep, err := PrepareContext(context.Background(), input, target, dead)
	if err != nil {
		t.Fatalf("PrepareContext on dead device: %v", err)
	}
	res, err := prep.FinishContext(context.Background(), dead)
	if err != nil {
		t.Fatalf("FinishContext on dead device: %v", err)
	}
	if res.TotalError != ref.TotalError || !bytes.Equal(res.Mosaic.Pix, ref.Mosaic.Pix) {
		t.Fatal("split degraded run diverged from healthy run")
	}
	if res.Stats.Counter(trace.CounterDegradedRuns) == 0 {
		t.Error("degraded Finish did not advance degraded.runs")
	}
}

// TestResilientRetryUnit asserts the retry granularity is one kernel launch:
// a single injected fault costs exactly one retry, not a pipeline restart.
func TestResilientRetryUnit(t *testing.T) {
	input, target := pair(t, 64)
	opts := Options{
		TilesPerSide: 8,
		Algorithm:    ParallelApproximation,
		Device:       cuda.New(2).WithFaults(&cuda.FaultPlan{Nth: []int64{3}}),
		Resilience:   &Resilience{Retry: fastRetry()},
	}
	res, err := Generate(input, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Stats.Counter(trace.CounterLaunchFaults); n != 1 {
		t.Errorf("one injected fault recorded as %d", n)
	}
	if n := res.Stats.Counter(trace.CounterLaunchRetries); n != 1 {
		t.Errorf("one injected fault cost %d retries, want exactly 1", n)
	}
	if res.Stats.Counter(trace.CounterDegradedRuns) != 0 {
		t.Error("single retried fault should not degrade")
	}
}
