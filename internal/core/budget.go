package core

import (
	"context"
	"errors"
	"time"
)

// Budgets is the per-stage split of a deadline-budgeted request's remaining
// time. The fractions mirror the pinned workload's stage profile
// (BENCH_pipeline.json): Step 2 dominates a cold run, Step 3 dominates a
// cache hit, and the fixed-cost stages (preprocess, assembly + encode) get
// thin guaranteed slices. The split is advisory for the stages that cannot
// stop early — preprocessing, the cost matrix and assembly always run to
// completion — and binding for Step 3, whose anytime search absorbs
// whatever the earlier stages left over.
type Budgets struct {
	Prepare    time.Duration // §II preprocessing + Step-1 tiling
	CostMatrix time.Duration // Step 2
	Assign     time.Duration // exact/certified matching inside Step 3
	Search     time.Duration // local-search sweeps inside Step 3
	Encode     time.Duration // assembly + caller-side encoding reserve
}

// SplitBudget derives the stage budgets from the time remaining when the
// job starts executing — not when it was enqueued, because queue wait is
// dead time that must come out of the budget, not be planned into it (see
// DESIGN.md "Deadline budgeting"). A non-positive remainder yields all-zero
// budgets, which downstream reads as "skip everything skippable".
func SplitBudget(remaining time.Duration) Budgets {
	if remaining < 0 {
		remaining = 0
	}
	return Budgets{
		Prepare:    remaining / 10,
		CostMatrix: remaining * 3 / 10,
		Assign:     remaining / 4,
		Search:     remaining / 4,
		Encode:     remaining / 10,
	}
}

// Step3 is the binding Step-3 allotment: everything except the encode
// reserve. The search is the one stage that can use an arbitrarily large
// budget productively, so it inherits the shares of the stages that already
// ran by the time Finish starts.
func (b Budgets) Step3() time.Duration {
	return b.Prepare + b.CostMatrix + b.Assign + b.Search
}

// softCtxErr is ctxErr for anytime runs: a surpassed deadline is budget
// exhaustion — the run degrades instead of failing — so only genuine
// cancellation (client gone, shutdown) aborts. Non-anytime runs keep the
// strict contract.
func softCtxErr(ctx context.Context, anytime bool) error {
	err := ctxErr(ctx)
	if err != nil && anytime && errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}
