package core

import (
	"fmt"
	"time"

	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/tile"
)

// ResultRGB is the color counterpart of Result.
type ResultRGB struct {
	Mosaic      *imgutil.RGB
	Assignment  []int
	TotalError  int64
	Input       *imgutil.RGB
	SearchStats SearchStats
	Timing      Timing
}

// SearchStats re-exports the local-search statistics without forcing color
// callers to import internal/localsearch.
type SearchStats struct {
	Passes int
	Swaps  int64
}

// GenerateRGB runs the pipeline on color images. The paper's §II remark —
// color needs "only … changing the error function in Eq. (1)" — is realised
// by the per-channel L1/L2 error of metric.BuildSerialRGB; histogram
// matching becomes per-channel matching.
func GenerateRGB(input, target *imgutil.RGB, opts Options) (*ResultRGB, error) {
	// Geometry and option checks mirror the grayscale path.
	if input.W != input.H || target.W != target.H || input.W != target.W {
		return nil, fmt.Errorf("core: color images must be square and equal-sized (input %dx%d, target %dx%d): %w",
			input.W, input.H, target.W, target.H, ErrOptions)
	}
	if opts.AllowOrientations {
		return nil, fmt.Errorf("core: AllowOrientations is grayscale-only: %w", ErrOptions)
	}
	// Reuse the grayscale validator via same-geometry placeholders so the
	// option normalisation logic exists exactly once.
	probe := imgutil.NewGray(input.W, input.H)
	m, err := opts.validate(probe, probe)
	if err != nil {
		return nil, err
	}
	res := &ResultRGB{}

	t0 := time.Now()
	work := input
	if !opts.NoHistogramMatch {
		work, err = hist.MatchRGB(input, target)
		if err != nil {
			return nil, fmt.Errorf("core: histogram match: %w", err)
		}
	}
	res.Input = work
	res.Timing.Preprocess = time.Since(t0)

	inGrid, err := tile.NewRGBGrid(work, m)
	if err != nil {
		return nil, err
	}
	tgtGrid, err := tile.NewRGBGrid(target, m)
	if err != nil {
		return nil, err
	}

	t0 = time.Now()
	var costs *metric.Matrix
	if opts.Device != nil {
		costs, err = metric.BuildDeviceRGB(opts.Device, inGrid, tgtGrid, opts.Metric)
	} else {
		costs, err = metric.BuildSerialRGB(inGrid, tgtGrid, opts.Metric)
	}
	if err != nil {
		return nil, err
	}
	res.Timing.CostMatrix = time.Since(t0)

	t0 = time.Now()
	p, st, err := rearrange(costs, opts)
	if err != nil {
		return nil, err
	}
	res.Timing.Rearrange = time.Since(t0)
	res.Assignment = p
	res.SearchStats = SearchStats{Passes: st.Passes, Swaps: st.Swaps}
	res.TotalError = costs.Total(p)

	t0 = time.Now()
	res.Mosaic, err = inGrid.Assemble(p)
	if err != nil {
		return nil, err
	}
	res.Timing.Assemble = time.Since(t0)
	return res, nil
}
