package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/tile"
	"repro/internal/trace"
)

// ResultRGB is the color counterpart of Result.
type ResultRGB struct {
	Mosaic      *imgutil.RGB
	Assignment  []int
	TotalError  int64
	Input       *imgutil.RGB
	SearchStats SearchStats
	Timing      Timing
	Stats       trace.Stats
}

// SearchStats re-exports the local-search statistics without forcing color
// callers to import internal/localsearch.
type SearchStats struct {
	Passes int
	Swaps  int64
}

// checkGeometryRGB is checkGeometry for color images (3 bytes per pixel).
func checkGeometryRGB(img *imgutil.RGB, role string) error {
	if img == nil {
		return fmt.Errorf("core: nil %s image: %w", role, ErrOptions)
	}
	if img.W <= 0 || img.H <= 0 || len(img.Pix) != 3*img.W*img.H {
		return fmt.Errorf("core: %s image %dx%d with %d pixel bytes: %w", role, img.W, img.H, len(img.Pix), ErrOptions)
	}
	return nil
}

// GenerateRGB runs the pipeline on color images. The paper's §II remark —
// color needs "only … changing the error function in Eq. (1)" — is realised
// by the per-channel L1/L2 error of metric.BuildSerialRGB; histogram
// matching becomes per-channel matching.
func GenerateRGB(input, target *imgutil.RGB, opts Options) (*ResultRGB, error) {
	return GenerateRGBContext(context.Background(), input, target, opts)
}

// GenerateRGBContext is GenerateRGB with the cancellation and tracing
// semantics of GenerateContext.
func GenerateRGBContext(ctx context.Context, input, target *imgutil.RGB, opts Options) (*ResultRGB, error) {
	// Geometry and option checks mirror the grayscale path.
	if err := checkGeometryRGB(input, "input"); err != nil {
		return nil, err
	}
	if err := checkGeometryRGB(target, "target"); err != nil {
		return nil, err
	}
	if input.W != input.H || target.W != target.H || input.W != target.W {
		return nil, fmt.Errorf("core: color images must be square and equal-sized (input %dx%d, target %dx%d): %w",
			input.W, input.H, target.W, target.H, ErrOptions)
	}
	if opts.AllowOrientations {
		return nil, fmt.Errorf("core: AllowOrientations is grayscale-only: %w", ErrOptions)
	}
	// Reuse the grayscale validator via same-geometry placeholders so the
	// option normalisation logic exists exactly once.
	probe := imgutil.NewGray(input.W, input.H)
	m, err := opts.validate(probe, probe)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before preprocessing: %w", err)
	}
	tree := trace.NewTree()
	tr := trace.Multi(tree, opts.Trace)
	var dev0 cuda.Metrics
	if opts.Device != nil {
		dev0 = opts.Device.Metrics()
	}
	res, err := generateRGB(ctx, input, target, opts, m, tr)
	deviceDelta(tr, opts.Device, dev0)
	if err != nil {
		trace.Count(tr, trace.CounterPipelineErrors, 1)
		return nil, err
	}
	trace.Count(tr, trace.CounterPipelineRuns, 1)
	res.Stats = tree.Snapshot()
	return res, nil
}

// generateRGB runs the color pipeline stages under the root span.
func generateRGB(ctx context.Context, input, target *imgutil.RGB, opts Options, m int, tr trace.Collector) (res *ResultRGB, err error) {
	root := trace.Start(tr, trace.SpanPipeline)
	defer root.End()
	res = &ResultRGB{}

	t0 := time.Now()
	sp := trace.Start(tr, trace.SpanPreprocess)
	work := input
	if !opts.NoHistogramMatch {
		work, err = hist.MatchRGB(input, target)
		if err != nil {
			return nil, fmt.Errorf("core: histogram match: %w", err)
		}
	}
	sp.End()
	res.Input = work
	res.Timing.Preprocess = time.Since(t0)
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before tiling: %w", err)
	}

	sp = trace.Start(tr, trace.SpanTiling)
	inGrid, err := tile.NewRGBGrid(work, m)
	if err != nil {
		return nil, err
	}
	tgtGrid, err := tile.NewRGBGrid(target, m)
	if err != nil {
		return nil, err
	}
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before Step 2: %w", err)
	}

	t0 = time.Now()
	sp = trace.Start(tr, trace.SpanCostMatrix)
	var costs *metric.Matrix
	if opts.Device != nil {
		costs, err = metric.BuildDeviceRGB(opts.Device, inGrid, tgtGrid, opts.Metric)
	} else {
		costs, err = metric.BuildSerialRGB(inGrid, tgtGrid, opts.Metric)
	}
	if err != nil {
		return nil, err
	}
	sp.End()
	res.Timing.CostMatrix = time.Since(t0)
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before Step 3: %w", err)
	}

	t0 = time.Now()
	sp = trace.Start(tr, trace.SpanRearrange)
	p, st, assignDur, _, err := rearrangeContext(ctx, costs, opts, tr)
	if err != nil {
		return nil, err
	}
	sp.End()
	res.Timing.Rearrange = time.Since(t0)
	res.Timing.Assign = assignDur
	res.Assignment = p
	res.SearchStats = SearchStats{Passes: st.Passes, Swaps: st.Swaps}
	res.TotalError = costs.Total(p)
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before assembly: %w", err)
	}

	t0 = time.Now()
	sp = trace.Start(tr, trace.SpanAssemble)
	res.Mosaic, err = inGrid.Assemble(p)
	if err != nil {
		return nil, err
	}
	sp.End()
	res.Timing.Assemble = time.Since(t0)
	return res, nil
}
