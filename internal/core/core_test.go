package core

import (
	"testing"

	"repro/internal/assign"
	"repro/internal/cuda"
	"repro/internal/edgecolor"
	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tile"
)

func pair(t testing.TB, n int) (*imgutil.Gray, *imgutil.Gray) {
	t.Helper()
	return synth.MustGenerate(synth.Lena, n), synth.MustGenerate(synth.Sailboat, n)
}

func TestGenerateEndToEnd(t *testing.T) {
	input, target := pair(t, 128)
	res, err := Generate(input, target, Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mosaic.W != 128 || res.Mosaic.H != 128 {
		t.Fatalf("mosaic geometry %dx%d", res.Mosaic.W, res.Mosaic.H)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reported error must equal the image-level error of the mosaic.
	imgErr, err := res.Mosaic.AbsDiffSum(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalError != imgErr {
		t.Errorf("TotalError %d != image error %d", res.TotalError, imgErr)
	}
	if res.SearchStats.Passes < 1 {
		t.Error("no local-search passes recorded")
	}
}

func TestGeneratePreservesTileMultiset(t *testing.T) {
	// The mosaic is a rearrangement of the (preprocessed) input: identical
	// pixel multisets.
	input, target := pair(t, 64)
	res, err := Generate(input, target, Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	hm := hist.Of(res.Input)
	hr := hist.Of(res.Mosaic)
	if hm != hr {
		t.Error("mosaic pixel multiset differs from preprocessed input")
	}
}

func TestOptimizationBeatsApproximationBeatsBaselines(t *testing.T) {
	input, target := pair(t, 128)
	errors := map[Algorithm]int64{}
	dev := cuda.New(4)
	for _, algo := range Algorithms() {
		res, err := Generate(input, target, Options{TilesPerSide: 8, Algorithm: algo, Device: dev})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		errors[algo] = res.TotalError
	}
	if errors[Optimization] > errors[Approximation] {
		t.Errorf("optimization %d worse than approximation %d", errors[Optimization], errors[Approximation])
	}
	if errors[Optimization] > errors[ParallelApproximation] {
		t.Errorf("optimization %d worse than parallel approximation %d", errors[Optimization], errors[ParallelApproximation])
	}
	if errors[Approximation] > errors[GreedyBaseline] {
		t.Errorf("approximation %d worse than greedy %d", errors[Approximation], errors[GreedyBaseline])
	}
	if errors[Approximation] >= errors[IdentityBaseline] {
		t.Errorf("approximation %d did not improve on identity %d", errors[Approximation], errors[IdentityBaseline])
	}
}

func TestAllExactSolversAgree(t *testing.T) {
	input, target := pair(t, 64)
	var want int64 = -1
	for _, solver := range []assign.Algorithm{assign.AlgoJV, assign.AlgoHungarian, assign.AlgoAuction} {
		res, err := Generate(input, target, Options{TilesPerSide: 8, Algorithm: Optimization, Solver: solver})
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		if want < 0 {
			want = res.TotalError
		} else if res.TotalError != want {
			t.Errorf("%s: error %d, others %d", solver, res.TotalError, want)
		}
	}
}

func TestHistogramMatchImprovesMosaic(t *testing.T) {
	// §II: matching the input's distribution to the target's should lower
	// the achievable error for distribution-mismatched pairs.
	input := synth.MustGenerate(synth.Tiffany, 128) // high-key
	target := synth.MustGenerate(synth.Sailboat, 128)
	with, err := Generate(input, target, Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Generate(input, target, Options{TilesPerSide: 16, NoHistogramMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.TotalError >= without.TotalError {
		t.Errorf("histogram matching did not help: with %d, without %d", with.TotalError, without.TotalError)
	}
}

func TestDeviceAndSerialPipelinesAgree(t *testing.T) {
	// Moving Step 2 to the device must not change the resulting mosaic
	// (same matrix, same deterministic search).
	input, target := pair(t, 64)
	cpu, err := Generate(input, target, Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := Generate(input, target, Options{TilesPerSide: 8, Device: cuda.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !cpu.Mosaic.Equal(gpu.Mosaic) {
		t.Error("device pipeline produced a different mosaic")
	}
	if cpu.TotalError != gpu.TotalError {
		t.Errorf("errors differ: %d vs %d", cpu.TotalError, gpu.TotalError)
	}
}

func TestParallelApproximationWithPrecomputedColoring(t *testing.T) {
	input, target := pair(t, 64)
	dev := cuda.New(4)
	coloring := edgecolor.Complete(64)
	res, err := Generate(input, target, Options{
		TilesPerSide: 8, Algorithm: ParallelApproximation,
		Device: dev, Coloring: coloring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTileSizeAndTilesPerSideEquivalent(t *testing.T) {
	input, target := pair(t, 64)
	a, err := Generate(input, target, Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(input, target, Options{TileSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mosaic.Equal(b.Mosaic) {
		t.Error("TilesPerSide=8 and TileSize=8 disagree on a 64px image")
	}
}

func TestOptionValidation(t *testing.T) {
	input, target := pair(t, 64)
	cases := []struct {
		name string
		in   *imgutil.Gray
		tgt  *imgutil.Gray
		opts Options
	}{
		{"no-tiling", input, target, Options{}},
		{"both-tiling", input, target, Options{TilesPerSide: 8, TileSize: 8}},
		{"indivisible", input, target, Options{TilesPerSide: 7}},
		{"bad-algorithm", input, target, Options{TilesPerSide: 8, Algorithm: "nope"}},
		{"bad-solver", input, target, Options{TilesPerSide: 8, Algorithm: Optimization, Solver: "nope"}},
		{"bad-metric", input, target, Options{TilesPerSide: 8, Metric: metric.Metric(7)}},
		{"parallel-without-device", input, target, Options{TilesPerSide: 8, Algorithm: ParallelApproximation}},
		{"non-square-input", imgutil.NewGray(64, 32), target, Options{TilesPerSide: 8}},
		{"non-square-target", input, imgutil.NewGray(64, 32), Options{TilesPerSide: 8}},
		{"size-mismatch", imgutil.NewGray(32, 32), target, Options{TilesPerSide: 8}},
	}
	for _, tc := range cases {
		if _, err := Generate(tc.in, tc.tgt, tc.opts); err == nil {
			t.Errorf("%s: Generate accepted invalid options", tc.name)
		}
	}
}

func TestStartOverride(t *testing.T) {
	input, target := pair(t, 64)
	start := perm.Random(64, 42)
	res, err := Generate(input, target, Options{TilesPerSide: 8, Algorithm: IdentityBaseline, Start: start})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Equal(start) {
		t.Error("IdentityBaseline ignored the Start override")
	}
}

func TestParseAlgorithm(t *testing.T) {
	a, err := ParseAlgorithm("optimization")
	if err != nil || a != Optimization {
		t.Errorf("ParseAlgorithm(optimization) = %q, %v", a, err)
	}
	if _, err := ParseAlgorithm("magic"); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestTimingPopulated(t *testing.T) {
	input, target := pair(t, 128)
	res, err := Generate(input, target, Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.CostMatrix <= 0 || res.Timing.Rearrange <= 0 {
		t.Errorf("timings not recorded: %+v", res.Timing)
	}
	if res.Timing.Total() != res.Timing.CostMatrix+res.Timing.Rearrange {
		t.Error("Total() is not CostMatrix + Rearrange")
	}
}

func TestRearrangeStandalone(t *testing.T) {
	input, target := pair(t, 64)
	inGrid, _ := tile.NewGridByCount(input, 8)
	tgtGrid, _ := tile.NewGridByCount(target, 8)
	costs, err := metric.BuildSerial(inGrid, tgtGrid, metric.L1)
	if err != nil {
		t.Fatal(err)
	}
	pOpt, _, err := Rearrange(costs, Options{Algorithm: Optimization})
	if err != nil {
		t.Fatal(err)
	}
	pApp, _, err := Rearrange(costs, Options{}) // defaults to approximation
	if err != nil {
		t.Fatal(err)
	}
	if costs.Total(pOpt) > costs.Total(pApp) {
		t.Error("optimization worse than approximation on the same matrix")
	}
	if _, _, err := Rearrange(costs, Options{Algorithm: ParallelApproximation}); err == nil {
		t.Error("Rearrange allowed parallel approximation without a device")
	}
	if _, _, err := Rearrange(costs, Options{Algorithm: Optimization, Solver: "nope"}); err == nil {
		t.Error("Rearrange accepted an unknown solver")
	}
}

func TestGenerateRGBEndToEnd(t *testing.T) {
	in, err := synth.GenerateRGB(synth.Peppers, 64)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := synth.GenerateRGB(synth.Barbara, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenerateRGB(in, tgt, Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mosaic.W != 64 {
		t.Fatalf("geometry %d", res.Mosaic.W)
	}
	// Reported error equals the image-level color error.
	imgErr, err := res.Mosaic.AbsDiffSum(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalError != imgErr {
		t.Errorf("TotalError %d != image error %d", res.TotalError, imgErr)
	}
	// Optimization beats approximation in color too.
	opt, err := GenerateRGB(in, tgt, Options{TilesPerSide: 8, Algorithm: Optimization})
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalError > res.TotalError {
		t.Error("color optimization worse than approximation")
	}
}

func TestGenerateRGBValidation(t *testing.T) {
	in, _ := synth.GenerateRGB(synth.Peppers, 64)
	if _, err := GenerateRGB(in, imgutil.NewRGB(32, 32), Options{TilesPerSide: 8}); err == nil {
		t.Error("accepted mismatched color sizes")
	}
	if _, err := GenerateRGB(imgutil.NewRGB(64, 32), in, Options{TilesPerSide: 8}); err == nil {
		t.Error("accepted non-square color input")
	}
}

func TestGenerateRGBDeviceAgrees(t *testing.T) {
	in, _ := synth.GenerateRGB(synth.Peppers, 64)
	tgt, _ := synth.GenerateRGB(synth.Barbara, 64)
	cpu, err := GenerateRGB(in, tgt, Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := GenerateRGB(in, tgt, Options{TilesPerSide: 8, Device: cuda.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !cpu.Mosaic.Equal(gpu.Mosaic) {
		t.Error("color device pipeline differs from CPU")
	}
}

func BenchmarkGenerateApprox256S256(b *testing.B) {
	input, target := pair(b, 256)
	opts := Options{TilesPerSide: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(input, target, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateOptimization256S256(b *testing.B) {
	input, target := pair(b, 256)
	opts := Options{TilesPerSide: 16, Algorithm: Optimization}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(input, target, opts); err != nil {
			b.Fatal(err)
		}
	}
}
