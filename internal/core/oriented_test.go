package core

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/synth"
)

func TestOrientedPipelineNeverWorse(t *testing.T) {
	input, target := pair(t, 128)
	plain, err := Generate(input, target, Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	oriented, err := Generate(input, target, Options{TilesPerSide: 16, AllowOrientations: true})
	if err != nil {
		t.Fatal(err)
	}
	if oriented.TotalError > plain.TotalError {
		t.Errorf("oriented error %d above upright %d", oriented.TotalError, plain.TotalError)
	}
	if oriented.Orientations == nil {
		t.Fatal("Orientations not recorded")
	}
	if plain.Orientations != nil {
		t.Error("Orientations recorded for the upright pipeline")
	}
	// The reported error must equal the assembled image's error — the
	// oriented assembly and the oriented matrix must agree.
	imgErr, err := oriented.Mosaic.AbsDiffSum(target)
	if err != nil {
		t.Fatal(err)
	}
	if oriented.TotalError != imgErr {
		t.Errorf("oriented TotalError %d != image error %d", oriented.TotalError, imgErr)
	}
}

func TestOrientedPipelineUsesNonTrivialOrientations(t *testing.T) {
	// On textured scenes some tiles must actually rotate or mirror.
	input := synth.MustGenerate(synth.Barbara, 128)
	target := synth.MustGenerate(synth.Baboon, 128)
	res, err := Generate(input, target, Options{TilesPerSide: 16, AllowOrientations: true})
	if err != nil {
		t.Fatal(err)
	}
	nontrivial := 0
	for _, o := range res.Orientations {
		if o != 0 {
			nontrivial++
		}
	}
	if nontrivial == 0 {
		t.Error("every tile placed upright — orientation search is inert")
	}
}

func TestOrientedWithOptimizationAndDevice(t *testing.T) {
	input, target := pair(t, 64)
	dev := cuda.New(4)
	cpu, err := Generate(input, target, Options{TilesPerSide: 8, Algorithm: Optimization, AllowOrientations: true})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := Generate(input, target, Options{TilesPerSide: 8, Algorithm: Optimization, AllowOrientations: true, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if cpu.TotalError != gpu.TotalError {
		t.Errorf("oriented optimization differs across device: %d vs %d", cpu.TotalError, gpu.TotalError)
	}
	if !cpu.Mosaic.Equal(gpu.Mosaic) {
		t.Error("oriented mosaics differ across device")
	}
}

func TestOrientedRejectedForColor(t *testing.T) {
	in, _ := synth.GenerateRGB(synth.Peppers, 64)
	tgt, _ := synth.GenerateRGB(synth.Barbara, 64)
	if _, err := GenerateRGB(in, tgt, Options{TilesPerSide: 8, AllowOrientations: true}); err == nil {
		t.Error("color pipeline accepted AllowOrientations")
	}
}
