package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cuda"
	"repro/internal/metric"
	"repro/internal/retry"
	"repro/internal/tilestore"
	"repro/internal/trace"
)

// isDeviceFault reports whether err is one of the typed launch failures the
// fault model can produce — the errors worth counting as cuda.launch-faults
// and worth degrading over (as opposed to validation errors).
func isDeviceFault(err error) bool {
	return errors.Is(err, cuda.ErrLaunchFailed) ||
		errors.Is(err, cuda.ErrDeviceLost) ||
		errors.Is(err, cuda.ErrDeviceHung)
}

// buildCostsResilient is the fault-tolerant Step-2 build: the device-backed
// builders run through the error-returning launch path under
// opts.Resilience.Retry; exhausted retries (or an immediate device loss)
// degrade to metric.BuildStoreBlocked, which is certified bit-identical to
// the device builders, under a trace.SpanDegraded span. CPU builders pass
// through untouched — there is nothing to retry. All paths stream the
// columnar tile stores.
func buildCostsResilient(ctx context.Context, opts Options, in, tgt *tilestore.Store, tr trace.Collector) (*metric.Matrix, error) {
	b := opts.Builder
	if b == metric.BuilderAuto {
		if opts.Device != nil {
			b = metric.BuilderDevice
		} else {
			b = metric.BuilderBlocked
		}
	}
	if opts.Device == nil || !b.NeedsDevice() {
		return metric.BuildStore(opts.Device, in, tgt, opts.Metric, b)
	}
	pol := opts.Resilience.Retry
	if pol.OnBackoff == nil {
		pol.OnBackoff = func(sleep func() error) error {
			defer trace.Start(tr, trace.SpanRetryBackoff).End()
			return sleep()
		}
	}
	var costs *metric.Matrix
	lerr := pol.Do(ctx, func(attempt int) error {
		if attempt > 1 {
			trace.Count(tr, trace.CounterLaunchRetries, 1)
		}
		var err error
		if b == metric.BuilderRows {
			costs, err = metric.BuildStoreRowsParallelContext(ctx, opts.Device, in, tgt, opts.Metric)
		} else {
			costs, err = metric.BuildStoreDeviceContext(ctx, opts.Device, in, tgt, opts.Metric)
		}
		if err != nil && isDeviceFault(err) {
			trace.Count(tr, trace.CounterLaunchFaults, 1)
			if errors.Is(err, cuda.ErrDeviceLost) {
				// A lost device cannot come back within this run; skip the
				// remaining attempts and degrade (or fail) now.
				return retry.Stop(err)
			}
		}
		return err
	})
	if lerr == nil {
		return costs, nil
	}
	if errors.Is(lerr, context.Canceled) || errors.Is(lerr, context.DeadlineExceeded) {
		return nil, lerr
	}
	if !isDeviceFault(lerr) {
		// Validation-shaped error: retrying or degrading cannot change it.
		return nil, lerr
	}
	if opts.Resilience.DisableFallback {
		return nil, fmt.Errorf("core: Step-2 device build failed with host fallback disabled: %w", lerr)
	}
	trace.Count(tr, trace.CounterDegradedRuns, 1)
	sp := trace.Start(tr, trace.SpanDegraded)
	defer sp.End()
	return metric.BuildStoreBlocked(in, tgt, opts.Metric)
}
