// Package core assembles the paper's photomosaic pipeline: histogram-match
// the input to the target (§II), divide both into S tiles (Step 1), build
// the S×S tile-error matrix (Step 2), rearrange tiles by exact matching or
// local search (Step 3), and assemble the mosaic.
//
// It is the engine behind the public mosaic package; the experiment harness
// also drives it directly so every table and figure flows through one code
// path.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/assign"
	"repro/internal/cuda"
	"repro/internal/edgecolor"
	"repro/internal/imgutil"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/retry"
	"repro/internal/trace"
)

// ErrOptions reports an invalid pipeline configuration.
var ErrOptions = errors.New("core: invalid options")

// Algorithm selects how Step 3 rearranges the tiles.
type Algorithm string

// The rearrangement algorithms of the paper plus the baselines used by the
// evaluation harness.
const (
	// Optimization is the exact method of §III: minimum-weight perfect
	// bipartite matching over the tile-error matrix.
	Optimization Algorithm = "optimization"
	// Approximation is the serial local search of §IV-A (Algorithm 1).
	Approximation Algorithm = "approximation"
	// ApproximationDirty is Algorithm 1 with dirty-pair tracking (and, via
	// Options.Search.Candidates, optional candidate-list warm sweeps): it
	// reaches the same swap-local fixed points while re-testing only pairs
	// whose endpoints moved — the delta-driven Step 3.
	ApproximationDirty Algorithm = "approximation-dirty"
	// ParallelApproximation is the edge-coloring-scheduled local search of
	// §IV-B (Algorithm 2) executed on the device.
	ParallelApproximation Algorithm = "approximation-parallel"
	// GreedyBaseline assigns tiles greedily by ascending error; not from the
	// paper, used to calibrate how much the real algorithms buy.
	GreedyBaseline Algorithm = "greedy"
	// IdentityBaseline performs no rearrangement at all (the histogram-
	// matched input as-is) — the quality floor.
	IdentityBaseline Algorithm = "identity"
	// Annealing is the simulated-annealing extension (DESIGN.md): random
	// swaps with Metropolis acceptance, then a final Algorithm-1 polish.
	// Tuned by Options.Anneal.
	Annealing Algorithm = "annealing"
)

// Algorithms lists the selectable algorithms in stable order.
func Algorithms() []Algorithm {
	return []Algorithm{Optimization, Approximation, ApproximationDirty, ParallelApproximation, GreedyBaseline, IdentityBaseline, Annealing}
}

// ParseAlgorithm resolves a name.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == name {
			return a, nil
		}
	}
	return "", fmt.Errorf("core: unknown algorithm %q: %w", name, ErrOptions)
}

// Options configures Generate. The zero value is not runnable: one of
// TilesPerSide or TileSize must be set. Everything else defaults to the
// paper's configuration (L1 metric, histogram matching on, serial
// approximation, JV for the optimization algorithm).
type Options struct {
	// TilesPerSide divides the images into TilesPerSide² tiles (the paper's
	// "S = 32×32" notation sets TilesPerSide = 32). Mutually exclusive with
	// TileSize.
	TilesPerSide int
	// TileSize divides the images into tiles of TileSize×TileSize pixels
	// (the paper's M). Mutually exclusive with TilesPerSide.
	TileSize int
	// Algorithm picks the Step-3 rearrangement; default Approximation.
	Algorithm Algorithm
	// Solver picks the exact matcher for Optimization; default JV.
	Solver assign.Algorithm
	// Metric picks the per-pixel error of Eq. (1); default L1 (the paper's).
	Metric metric.Metric
	// Builder picks the Step-2 matrix construction strategy. The zero value
	// (metric.BuilderAuto) resolves to the device kernel when Device is set
	// and the cache-blocked single-core loop otherwise; every builder yields
	// a bit-identical matrix. Only the plain grayscale matrix honours it —
	// AllowOrientations and ProxyResolution have their own builders and
	// require BuilderAuto.
	Builder metric.Builder
	// NoHistogramMatch disables the §II preprocessing that reshapes the
	// input's intensity distribution to the target's.
	NoHistogramMatch bool
	// Device supplies the virtual accelerator. nil leaves every stage on
	// the CPU (the paper's "CPU" columns); non-nil moves the Step-2 matrix
	// and, for ParallelApproximation, the Step-3 swaps onto the device.
	Device *cuda.Device
	// Coloring optionally supplies a precomputed, verified edge coloring of
	// K_S for ParallelApproximation; the paper precomputes it per S and
	// amortises it across images. nil builds one on the fly.
	Coloring *edgecolor.Coloring
	// Start optionally overrides the identity start of the local search.
	Start perm.Perm
	// Search tunes the local search (pass caps); zero value = paper.
	Search localsearch.Options
	// StoreCandidates, when set, derives ApproximationDirty's candidate
	// warm-sweep lists from the tile stores' thumbnail feature vectors
	// (localsearch.StoreCandidates) instead of top-K matrix columns. K is
	// Search.Candidates when positive, 8 otherwise. Only GenerateContext and
	// PrepareContext/FinishContext honour it — Rearrange has no stores.
	StoreCandidates bool
	// Anneal tunes the Annealing algorithm; zero value selects instance-
	// derived defaults (see localsearch.AnnealOptions).
	Anneal localsearch.AnnealOptions
	// ProxyResolution, when positive, builds the Step-2 matrix from tiles
	// box-downsampled to ProxyResolution² descriptors instead of full
	// resolution — the related-work acceleration documented in DESIGN.md.
	// Must divide the tile side M. Result.TotalError is still evaluated
	// exactly. Mutually exclusive with AllowOrientations.
	ProxyResolution int
	// Trace optionally receives span and counter events as the pipeline
	// runs (stage spans, local-search counters, device launch counters) —
	// see internal/trace for the built-in collectors. Result.Stats is
	// populated whether or not a collector is supplied.
	Trace trace.Collector
	// Resilience, when non-nil, routes the device-backed stages (the Step-2
	// matrix build and the Step-3 parallel sweeps) through fault-aware
	// launches with retry and host fallback; see the Resilience type. nil
	// keeps the original panic-on-misuse launch path with no retry
	// machinery — the happy path is unchanged. Only the plain grayscale
	// pipeline honours it; the oriented and proxy Step-2 builders ignore it.
	Resilience *Resilience
	// Anytime turns a deadline into a quality budget instead of a failure
	// mode: when the budget expires mid-Step-3 the pipeline stops the search
	// at a safe point and returns the best assignment found so far with
	// Result.Partial set — every intermediate permutation of the paper's
	// local search is a valid mosaic — instead of a context error. Stages
	// that cannot be partial (preprocessing, the cost matrix, assembly)
	// always run to completion; refinement that no longer fits the remaining
	// budget is shrunk or skipped (see SplitBudget). With an ample budget
	// the result is bit-identical to a run without Anytime.
	Anytime bool
	// Deadline is the anytime completion target (a soft deadline: the run
	// degrades as it approaches rather than failing at it). Zero with
	// Anytime set falls back to ctx's deadline, if any; with neither, the
	// run is unbounded and Anytime only changes how a cancelled ctx is
	// reported by Step 3. Serving callers pass the request deadline here
	// and keep ctx for hard cancellation (client gone, shutdown).
	Deadline time.Time
	// AllowOrientations extends the search space beyond the paper: each
	// placed tile may additionally use any of its eight dihedral
	// orientations (4 rotations × optional mirror). Step 2 scores all eight
	// per pair (~8× cost) and keeps the best, so every Step-3 algorithm
	// works unchanged on the minimised matrix; the resulting error is never
	// worse than the upright pipeline's. Grayscale only.
	AllowOrientations bool
}

// Resilience configures fault-tolerant execution of the device-backed
// pipeline stages. Each kernel launch (the Step-2 matrix build; each
// color-class sweep of Algorithm 2) is retried per Retry; when retries are
// exhausted — or immediately on cuda.ErrDeviceLost — the stage degrades to
// the bit-identical host equivalent (metric.BuildBlocked; a serial sweep of
// the class's pairs), recording trace.SpanDegraded and
// trace.CounterDegradedRuns, unless DisableFallback is set, in which case
// the run fails with the launch error.
type Resilience struct {
	// Retry is the per-launch retry schedule (zero value = retry defaults:
	// 3 attempts, exponential backoff with jitter).
	Retry retry.Policy
	// DisableFallback fails the run instead of degrading to the host.
	DisableFallback bool
}

// cpuFallbackAllowed reports whether the options permit running device
// algorithms entirely on the host: Resilience set with fallback enabled.
// This is how a serving layer with every device quarantined still satisfies
// approximation-parallel requests — the host sweeps are bit-identical.
func (o *Options) cpuFallbackAllowed() bool {
	return o.Resilience != nil && !o.Resilience.DisableFallback
}

// Timing breaks the pipeline down the way the paper's tables do.
type Timing struct {
	Preprocess time.Duration // histogram matching (outside the paper's timings)
	CostMatrix time.Duration // Step 2 (Table II)
	Rearrange  time.Duration // Step 3 (Table III)
	// Assign is the LAP solve inside Rearrange when Algorithm ==
	// Optimization (zero otherwise) — a subset of Rearrange, not an
	// additional stage, so Total() is unchanged. Rearrange − Assign is the
	// Step-3 time outside the solver.
	Assign   time.Duration
	Assemble time.Duration // writing the output image
}

// Total returns the Step-2 + Step-3 time, the quantity of Table IV.
func (t Timing) Total() time.Duration { return t.CostMatrix + t.Rearrange }

// Result is the output of Generate.
type Result struct {
	// Mosaic is the rearranged image R.
	Mosaic *imgutil.Gray
	// Assignment maps target position v to the input tile placed there.
	Assignment perm.Perm
	// TotalError is Eq. (2) evaluated for Assignment.
	TotalError int64
	// Input is the preprocessed (histogram-matched) input actually tiled;
	// equal to the original input when preprocessing is disabled.
	Input *imgutil.Gray
	// SearchStats holds pass/swap counts for the approximation algorithms.
	SearchStats localsearch.Stats
	// Orientations records, when Options.AllowOrientations was set, the
	// orientation applied to the tile at each target position; nil otherwise.
	Orientations []imgutil.Orientation
	// Timing records per-stage wall time.
	Timing Timing
	// Stats is the aggregated trace of this run: per-stage span totals plus
	// the sweep/swap/kernel counters, mirroring what a Trace collector saw.
	Stats trace.Stats
	// Partial reports an anytime run that stopped before convergence: the
	// Assignment is valid and TotalError exact, but more budget would have
	// refined it further. Always false without Options.Anytime.
	Partial bool
	// AssignInfo is the quality certificate of Step 3's matcher when an
	// early-exit certified solver ran (auction-device, sinkhorn): its Gap
	// bounds the distance to the exact optimum, so a Partial result still
	// carries a certified/observed quality gap. nil for the other
	// algorithms.
	AssignInfo *assign.Info
	// BudgetRemaining reports, for anytime runs with a deadline, the
	// nanoseconds of budget left at stage entry (keys "search", "assemble";
	// negative once overdrawn) — the per-stage budget-remaining gauges feed
	// from it. nil otherwise.
	BudgetRemaining map[string]int64
}

// checkGeometry rejects images whose declared dimensions do not describe
// their pixel buffer, so no later stage indexes or allocates from
// inconsistent geometry.
func checkGeometry(img *imgutil.Gray, role string) error {
	if img == nil {
		return fmt.Errorf("core: nil %s image: %w", role, ErrOptions)
	}
	if img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H {
		return fmt.Errorf("core: %s image %dx%d with %d pixels: %w", role, img.W, img.H, len(img.Pix), ErrOptions)
	}
	return nil
}

// validate normalises opts against the image geometry, returning the tile
// side M.
func (o *Options) validate(input, target *imgutil.Gray) (int, error) {
	if err := checkGeometry(input, "input"); err != nil {
		return 0, err
	}
	if err := checkGeometry(target, "target"); err != nil {
		return 0, err
	}
	if input.W != input.H {
		return 0, fmt.Errorf("core: input image %dx%d is not square: %w", input.W, input.H, ErrOptions)
	}
	if target.W != target.H {
		return 0, fmt.Errorf("core: target image %dx%d is not square: %w", target.W, target.H, ErrOptions)
	}
	if input.W != target.W {
		return 0, fmt.Errorf("core: input %dx%d vs target %dx%d: %w", input.W, input.H, target.W, target.H, ErrOptions)
	}
	var m int
	switch {
	case o.TilesPerSide > 0 && o.TileSize > 0:
		return 0, fmt.Errorf("core: TilesPerSide and TileSize are mutually exclusive: %w", ErrOptions)
	case o.TilesPerSide > 0:
		if input.W%o.TilesPerSide != 0 {
			return 0, fmt.Errorf("core: image side %d not divisible by %d tiles: %w", input.W, o.TilesPerSide, ErrOptions)
		}
		m = input.W / o.TilesPerSide
	case o.TileSize > 0:
		m = o.TileSize
		if input.W%m != 0 {
			return 0, fmt.Errorf("core: image side %d not divisible by tile size %d: %w", input.W, m, ErrOptions)
		}
	default:
		return 0, fmt.Errorf("core: one of TilesPerSide or TileSize is required: %w", ErrOptions)
	}
	if o.Algorithm == "" {
		o.Algorithm = Approximation
	}
	if _, err := ParseAlgorithm(string(o.Algorithm)); err != nil {
		return 0, err
	}
	if o.Solver == "" {
		o.Solver = assign.AlgoJV
	}
	if _, ok := assign.Solvers()[o.Solver]; !ok {
		return 0, fmt.Errorf("core: unknown solver %q: %w", o.Solver, ErrOptions)
	}
	if !o.Metric.Valid() {
		return 0, fmt.Errorf("core: invalid metric %v: %w", o.Metric, ErrOptions)
	}
	if o.Algorithm == ParallelApproximation && o.Device == nil && !o.cpuFallbackAllowed() {
		return 0, fmt.Errorf("core: %s requires a Device: %w", ParallelApproximation, ErrOptions)
	}
	if _, err := metric.ParseBuilder(string(o.Builder)); err != nil {
		return 0, fmt.Errorf("core: %v: %w", err, ErrOptions)
	}
	if o.Builder != metric.BuilderAuto {
		if o.AllowOrientations || o.ProxyResolution > 0 {
			return 0, fmt.Errorf("core: Builder %q requires the plain matrix (no orientations/proxy): %w", o.Builder, ErrOptions)
		}
		if o.Builder.NeedsDevice() && o.Device == nil {
			return 0, fmt.Errorf("core: builder %q requires a Device: %w", o.Builder, ErrOptions)
		}
	}
	if o.ProxyResolution > 0 {
		if o.AllowOrientations {
			return 0, fmt.Errorf("core: ProxyResolution and AllowOrientations are mutually exclusive: %w", ErrOptions)
		}
		if o.ProxyResolution > m || m%o.ProxyResolution != 0 {
			return 0, fmt.Errorf("core: ProxyResolution %d must divide tile side %d: %w", o.ProxyResolution, m, ErrOptions)
		}
	} else if o.ProxyResolution < 0 {
		return 0, fmt.Errorf("core: negative ProxyResolution: %w", ErrOptions)
	}
	return m, nil
}

// Generate runs the full pipeline on grayscale images.
func Generate(input, target *imgutil.Gray, opts Options) (*Result, error) {
	return GenerateContext(context.Background(), input, target, opts)
}

// ctxErr returns ctx's error if it is already done, nil otherwise.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// deviceDelta charges a trace collector with the kernel launches/blocks a
// device executed since the snapshot m0. No-op for a nil device.
func deviceDelta(tr trace.Collector, dev *cuda.Device, m0 cuda.Metrics) {
	if dev == nil {
		return
	}
	d := dev.Metrics().Sub(m0)
	trace.Count(tr, trace.CounterKernelLaunches, d.Launches)
	trace.Count(tr, trace.CounterKernelBlocks, d.Blocks)
}

// GenerateContext is Generate with cancellation and tracing: ctx is checked
// before every pipeline stage and, inside Step 3, between local-search sweep
// rounds and color classes, so a cancelled or timed-out call returns
// promptly with the ctx error (test with errors.Is) and a nil Result —
// never a partially-populated one. A pre-cancelled context returns before
// Step 2 or Step 3 run any work.
func GenerateContext(ctx context.Context, input, target *imgutil.Gray, opts Options) (*Result, error) {
	m, err := opts.validate(input, target)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: cancelled before preprocessing: %w", err)
	}
	// Every run is recorded into a private tree so Result.Stats is always
	// available; a caller-supplied collector observes the same events.
	tree := trace.NewTree()
	tr := trace.Multi(tree, opts.Trace)
	var dev0 cuda.Metrics
	if opts.Device != nil {
		dev0 = opts.Device.Metrics()
	}
	res, err := generate(ctx, input, target, opts, m, tr)
	deviceDelta(tr, opts.Device, dev0)
	if err != nil {
		trace.Count(tr, trace.CounterPipelineErrors, 1)
		return nil, err
	}
	trace.Count(tr, trace.CounterPipelineRuns, 1)
	res.Stats = tree.Snapshot()
	return res, nil
}

// generate runs the pipeline stages under the root span: the cacheable
// front half (prepareStages: preprocess, tiling, Step 2) followed by the
// per-request back half (finishStages: Step 3, assembly). Serving callers
// split the halves via PrepareContext/FinishContext in prepare.go.
func generate(ctx context.Context, input, target *imgutil.Gray, opts Options, m int, tr trace.Collector) (*Result, error) {
	root := trace.Start(tr, trace.SpanPipeline)
	defer root.End()
	p, err := prepareStages(ctx, input, target, opts, m, tr)
	if err != nil {
		return nil, err
	}
	return p.finishStages(ctx, opts, tr)
}

// rearrangeContext dispatches Step 3 on an already-built cost matrix. The
// local-search algorithms observe ctx between sweep rounds / color classes
// and report their counters to tr (merged with any caller-set Search.Trace);
// the exact and certified matchers observe it at their solver checkpoints.
// assignDur is the time spent inside the LAP solver (Optimization only) —
// the SpanAssign slice of the rearrangement. info is the certified solver's
// quality certificate (auction-device/sinkhorn only, nil otherwise).
func rearrangeContext(ctx context.Context, costs *metric.Matrix, opts Options, tr trace.Collector) (p perm.Perm, stats localsearch.Stats, assignDur time.Duration, info *assign.Info, err error) {
	start := opts.Start
	if start == nil {
		start = perm.Identity(costs.S)
	}
	search := opts.Search
	search.Trace = trace.Multi(search.Trace, tr)
	switch opts.Algorithm {
	case Optimization:
		t0 := time.Now()
		sp := trace.Start(tr, trace.SpanAssign)
		trace.Annotate(sp, trace.AttrSolver, string(opts.Solver))
		p, info, err := solveAssignment(ctx, costs, opts, tr)
		sp.End()
		return p, localsearch.Stats{}, time.Since(t0), info, err
	case Approximation:
		p, stats, err := localsearch.SerialContext(ctx, costs, start, search)
		return p, stats, 0, nil, err
	case ApproximationDirty:
		p, stats, err := localsearch.SerialDirtyContext(ctx, costs, start, search)
		return p, stats, 0, nil, err
	case ParallelApproximation:
		if opts.Resilience != nil {
			p, stats, err := localsearch.ParallelResilientContext(ctx, opts.Device, costs, start, opts.Coloring, search,
				localsearch.Resilience{Retry: opts.Resilience.Retry, DisableFallback: opts.Resilience.DisableFallback})
			return p, stats, 0, nil, err
		}
		p, stats, err := localsearch.ParallelContext(ctx, opts.Device, costs, start, opts.Coloring, search)
		return p, stats, 0, nil, err
	case GreedyBaseline:
		p, err := assign.Greedy(costs.S, costs.W)
		return p, localsearch.Stats{}, 0, nil, err
	case IdentityBaseline:
		if err := start.Validate(); err != nil {
			return nil, localsearch.Stats{}, 0, nil, err
		}
		return start, localsearch.Stats{}, 0, nil, nil
	case Annealing:
		p, stats, err := localsearch.AnnealThenPolishContext(ctx, costs, start, opts.Anneal, search)
		return p, stats, 0, nil, err
	}
	return nil, localsearch.Stats{}, 0, nil, fmt.Errorf("core: unknown algorithm %q: %w", opts.Algorithm, ErrOptions)
}

// solveAssignment runs the configured LAP solver. The certified solvers get
// their full option surface threaded through: the device auction receives
// the pipeline's Device, trace collector and resilience policy (so a lost
// device degrades its scan batches to the host exactly like the other
// device-backed stages); Sinkhorn runs with its tuned defaults. Every other
// solver runs through its context-aware registration. The certified
// solvers' early-exit certificate (assign.Info) is surfaced to the caller;
// the exact solvers have no certificate (their gap is zero by construction)
// and return nil.
func solveAssignment(ctx context.Context, costs *metric.Matrix, opts Options, tr trace.Collector) (perm.Perm, *assign.Info, error) {
	switch opts.Solver {
	case assign.AlgoAuctionDevice:
		dopts := assign.DeviceAuctionOptions{Device: opts.Device, Trace: tr}
		if opts.Resilience != nil {
			dopts.Retry = opts.Resilience.Retry
			// With no device at all the host mirror is the run, not a
			// degradation — only a supplied device honours DisableFallback.
			if opts.Device != nil {
				dopts.DisableFallback = opts.Resilience.DisableFallback
			}
		}
		return assign.AuctionDeviceContext(ctx, costs.S, costs.W, dopts)
	case assign.AlgoSinkhorn:
		return assign.SinkhornContext(ctx, costs.S, costs.W, assign.SinkhornOptions{})
	default:
		p, err := assign.ContextSolvers()[opts.Solver](ctx, costs.S, costs.W)
		return p, nil, err
	}
}

// Rearrange exposes Step 3 alone for callers that reuse one cost matrix
// across several algorithms (the evaluation harness compares optimization
// and approximation on identical matrices, as the paper does).
func Rearrange(costs *metric.Matrix, opts Options) (perm.Perm, localsearch.Stats, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = Approximation
	}
	if opts.Solver == "" {
		opts.Solver = assign.AlgoJV
	}
	if _, ok := assign.Solvers()[opts.Solver]; !ok {
		return nil, localsearch.Stats{}, fmt.Errorf("core: unknown solver %q: %w", opts.Solver, ErrOptions)
	}
	if opts.Algorithm == ParallelApproximation && opts.Device == nil {
		return nil, localsearch.Stats{}, fmt.Errorf("core: %s requires a Device: %w", ParallelApproximation, ErrOptions)
	}
	p, stats, _, _, err := rearrangeContext(context.Background(), costs, opts, opts.Trace)
	return p, stats, err
}

// ParseSolver resolves a Step-3 exact-matcher name against the assign
// registry; the empty name selects the default (JV).
func ParseSolver(name string) (assign.Algorithm, error) {
	if name == "" {
		return assign.AlgoJV, nil
	}
	a := assign.Algorithm(name)
	if _, ok := assign.Solvers()[a]; !ok {
		return "", fmt.Errorf("core: unknown solver %q: %w", name, ErrOptions)
	}
	return a, nil
}
