package core

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/hist"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tile"
)

// TestAssignmentPermutationProperty checks, for every Algorithm × Metric
// combination, the two invariants every engine must deliver: the assignment
// is a valid permutation of 0..S−1, and the reported cost equals the
// independently recomputed Eq. (2) error of that assignment (differential
// check against internal/metric, which evaluates directly from tile pixels
// rather than through the engine's cost matrix).
func TestAssignmentPermutationProperty(t *testing.T) {
	input, target := pair(t, 64)
	const tiles = 8
	m := 64 / tiles
	dev := cuda.New(4)
	for _, alg := range Algorithms() {
		for _, met := range []metric.Metric{metric.L1, metric.L2} {
			t.Run(string(alg)+"/"+met.String(), func(t *testing.T) {
				opts := Options{TilesPerSide: tiles, Algorithm: alg, Metric: met}
				if alg == ParallelApproximation {
					opts.Device = dev
				}
				res, err := Generate(input, target, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Assignment) != tiles*tiles {
					t.Fatalf("assignment length %d, want %d", len(res.Assignment), tiles*tiles)
				}
				if err := res.Assignment.Validate(); err != nil {
					t.Fatalf("assignment is not a permutation: %v", err)
				}
				inGrid, err := tile.NewGrid(res.Input, m)
				if err != nil {
					t.Fatal(err)
				}
				tgtGrid, err := tile.NewGrid(target, m)
				if err != nil {
					t.Fatal(err)
				}
				want, err := metric.AssignmentError(inGrid, tgtGrid, res.Assignment, met)
				if err != nil {
					t.Fatal(err)
				}
				if res.TotalError != want {
					t.Fatalf("reported cost %d != recomputed assignment error %d", res.TotalError, want)
				}
			})
		}
	}
}

// TestAlgorithmCostOrdering runs every engine on shared cost matrices (same
// scenes, same preprocessing, same seeds) and asserts the quality ordering
// the algorithms guarantee by construction:
//
//	cost(Optimization) ≤ cost(Approximation) ≤ cost(Greedy) ≤ cost(Identity)
//
// and that serial and parallel approximation both converge to swap-local
// optima — their cost plateaus: re-polishing either result with Algorithm 1
// applies zero further swaps.
func TestAlgorithmCostOrdering(t *testing.T) {
	dev := cuda.New(4)
	cases := []struct {
		in, tgt synth.Scene
	}{
		{synth.Lena, synth.Sailboat},
		{synth.Peppers, synth.Airplane},
		{synth.Baboon, synth.Barbara},
	}
	for _, tc := range cases {
		t.Run(string(tc.in)+"_"+string(tc.tgt), func(t *testing.T) {
			input := synth.MustGenerate(tc.in, 128)
			target := synth.MustGenerate(tc.tgt, 128)
			matched, err := hist.Match(input, target)
			if err != nil {
				t.Fatal(err)
			}
			inGrid, err := tile.NewGridByCount(matched, 16)
			if err != nil {
				t.Fatal(err)
			}
			tgtGrid, err := tile.NewGridByCount(target, 16)
			if err != nil {
				t.Fatal(err)
			}
			costs, err := metric.BuildSerial(inGrid, tgtGrid, metric.L1)
			if err != nil {
				t.Fatal(err)
			}

			run := func(alg Algorithm) (perm.Perm, int64) {
				t.Helper()
				opts := Options{Algorithm: alg}
				if alg == ParallelApproximation {
					opts.Device = dev
				}
				p, _, err := Rearrange(costs, opts)
				if err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
				return p, costs.Total(p)
			}
			pOpt, opt := run(Optimization)
			pApx, apx := run(Approximation)
			pPar, par := run(ParallelApproximation)
			_, greedy := run(GreedyBaseline)
			_, identity := run(IdentityBaseline)

			if err := pOpt.Validate(); err != nil {
				t.Fatal(err)
			}
			if opt > apx {
				t.Errorf("optimization %d worse than approximation %d", opt, apx)
			}
			if opt > par {
				t.Errorf("optimization %d worse than parallel approximation %d", opt, par)
			}
			if apx > greedy {
				t.Errorf("approximation %d worse than greedy %d", apx, greedy)
			}
			if par > greedy {
				t.Errorf("parallel approximation %d worse than greedy %d", par, greedy)
			}
			if greedy > identity {
				t.Errorf("greedy %d worse than identity %d", greedy, identity)
			}

			// Local-optimality plateau: a full Algorithm-1 polish of either
			// approximation result must find nothing left to improve.
			for name, p := range map[string]perm.Perm{"serial": pApx, "parallel": pPar} {
				polished, st, err := localsearch.Serial(costs, p, localsearch.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if st.Swaps != 0 {
					t.Errorf("%s result was not swap-local-optimal: polish applied %d swaps", name, st.Swaps)
				}
				if got := costs.Total(polished); got != costs.Total(p) {
					t.Errorf("%s plateau moved: %d → %d", name, costs.Total(p), got)
				}
			}
		})
	}
}

// TestGenerateStatsSpans asserts the acceptance-level contract of
// Result.Stats: one span per pipeline stage with non-zero totals, counters
// consistent with SearchStats, and kernel counters present whenever the
// device ran.
func TestGenerateStatsSpans(t *testing.T) {
	input, target := pair(t, 128)
	dev := cuda.New(2)
	res, err := Generate(input, target, Options{
		TilesPerSide: 16,
		Algorithm:    ParallelApproximation,
		Device:       dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pipeline", "histogram-match", "tiling", "error-matrix", "rearrangement", "assembly"} {
		sp := res.Stats.Span(name)
		if sp.Count != 1 {
			t.Errorf("span %q recorded %d times, want 1", name, sp.Count)
		}
		if sp.Total <= 0 {
			t.Errorf("span %q has non-positive total %v", name, sp.Total)
		}
	}
	if got := res.Stats.Counter("search.sweep-rounds"); got != int64(res.SearchStats.Passes) {
		t.Errorf("sweep-rounds counter %d != SearchStats.Passes %d", got, res.SearchStats.Passes)
	}
	if got := res.Stats.Counter("search.improving-swaps"); got != res.SearchStats.Swaps {
		t.Errorf("improving-swaps counter %d != SearchStats.Swaps %d", got, res.SearchStats.Swaps)
	}
	s := int64(16 * 16)
	if got, want := res.Stats.Counter("search.swap-attempts"), int64(res.SearchStats.Passes)*s*(s-1)/2; got != want {
		t.Errorf("swap-attempts counter %d, want passes·S(S−1)/2 = %d", got, want)
	}
	if res.Stats.Counter("cuda.kernel-launches") <= 0 {
		t.Error("no kernel launches counted despite device execution")
	}
	if res.Stats.Counter("cuda.blocks-executed") < res.Stats.Counter("cuda.kernel-launches") {
		t.Error("fewer blocks than launches counted")
	}
}
