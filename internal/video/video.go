// Package video generates photomosaic sequences — the real-time video use
// case the paper gives as the motivation for its approximation algorithm
// (§III cites interactive and video photomosaic systems [16]–[18]).
//
// A Sequencer holds everything reusable across frames of one stream:
//
//   - the tiled input image and its flattened tile buffer (Step 1, once);
//   - the edge coloring of K_S for the parallel search, which depends only
//     on S (§IV-B: "computed in advance");
//   - the previous frame's assignment, used to warm-start the local search —
//     consecutive frames differ little, so far fewer passes are needed than
//     from the identity start.
//
// Per frame, only Step 2 (the cost matrix against the new target) and the
// warm-started Step 3 run.
package video

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/edgecolor"
	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/telemetry"
	"repro/internal/tile"
	"repro/internal/trace"
)

// ErrConfig reports an invalid sequencer configuration or frame.
var ErrConfig = errors.New("video: invalid configuration")

// Config sets up a Sequencer.
type Config struct {
	// TilesPerSide divides frames into TilesPerSide² tiles.
	TilesPerSide int
	// Metric is the per-pixel error; default L1.
	Metric metric.Metric
	// Device runs Step 2 and the parallel search; nil keeps everything
	// serial (Algorithm 1 with warm starts).
	Device *cuda.Device
	// NoWarmStart disables reusing the previous frame's assignment — each
	// frame then starts from the identity, as the single-image pipeline
	// does. Exposed for the ablation that measures what warm starts buy.
	NoWarmStart bool
	// NoHistogramMatch skips the per-frame §II preprocessing.
	NoHistogramMatch bool
	// Trace optionally receives span and counter events for every frame
	// (one trace.SpanFrame root per Next call); nil traces nothing.
	Trace trace.Collector
	// Metrics optionally receives per-frame registry metrics: the
	// mosaic_video_frame_latency_seconds histogram, frame/error totals, and
	// — in Stream mode — the mosaic_video_queue_depth gauge. nil records
	// nothing.
	Metrics *telemetry.Registry
}

// FrameResult is the output for one target frame.
type FrameResult struct {
	Mosaic     *imgutil.Gray
	Assignment perm.Perm
	TotalError int64
	Passes     int // local-search sweeps this frame (k)
	// Latency is the wall time of this frame's Next call — what the frame
	// latency histogram observes.
	Latency time.Duration
	// Stats is the aggregated trace of this frame — the per-frame analogue
	// of core.Result.Stats.
	Stats trace.Stats
}

// Sequencer produces mosaics for a stream of equally-sized target frames
// from one fixed input image. Not safe for concurrent use.
type Sequencer struct {
	cfg      Config
	input    *imgutil.Gray
	coloring *edgecolor.Coloring
	prev     perm.Perm
	frames   int
	s        int

	// Registry series, resolved once in NewSequencer when cfg.Metrics is
	// set; all nil otherwise.
	latencyHist *telemetry.Histogram
	framesCtr   *telemetry.Counter
	errorsCtr   *telemetry.Counter
	queueGauge  *telemetry.Gauge
}

// NewSequencer validates the configuration and precomputes the per-stream
// state. input must be square and divisible into the requested grid.
func NewSequencer(input *imgutil.Gray, cfg Config) (*Sequencer, error) {
	if cfg.TilesPerSide <= 0 {
		return nil, fmt.Errorf("video: TilesPerSide %d: %w", cfg.TilesPerSide, ErrConfig)
	}
	if input.W != input.H {
		return nil, fmt.Errorf("video: input %dx%d not square: %w", input.W, input.H, ErrConfig)
	}
	if input.W%cfg.TilesPerSide != 0 {
		return nil, fmt.Errorf("video: side %d not divisible by %d: %w", input.W, cfg.TilesPerSide, ErrConfig)
	}
	if !cfg.Metric.Valid() {
		return nil, fmt.Errorf("video: invalid metric %v: %w", cfg.Metric, ErrConfig)
	}
	s := cfg.TilesPerSide * cfg.TilesPerSide
	seq := &Sequencer{cfg: cfg, input: input.Clone(), s: s}
	if cfg.Device != nil {
		seq.coloring = edgecolor.Complete(s)
	}
	if reg := cfg.Metrics; reg != nil {
		seq.latencyHist = reg.Histogram("mosaic_video_frame_latency_seconds",
			"Wall time per mosaicked video frame.", nil, nil)
		seq.framesCtr = reg.Counter("mosaic_video_frames_total",
			"Video frames mosaicked successfully.", nil)
		seq.errorsCtr = reg.Counter("mosaic_video_frame_errors_total",
			"Video frames that failed, including cancellations.", nil)
		seq.queueGauge = reg.Gauge("mosaic_video_queue_depth",
			"Frames waiting in the Stream input channel.", nil)
	}
	return seq, nil
}

// S returns the number of tiles per frame.
func (q *Sequencer) S() int { return q.s }

// Frames returns how many frames have been processed.
func (q *Sequencer) Frames() int { return q.frames }

// Reset discards the warm-start state (use at scene cuts, where the next
// frame no longer resembles the previous one).
func (q *Sequencer) Reset() { q.prev = nil }

// Next mosaics one target frame.
func (q *Sequencer) Next(target *imgutil.Gray) (*FrameResult, error) {
	return q.NextContext(context.Background(), target)
}

// NextContext is Next with cancellation and tracing: ctx is checked between
// stages and between local-search sweep rounds / color classes, so a
// cancelled or timed-out frame returns promptly with the ctx error (test
// with errors.Is) and a nil FrameResult. A cancelled frame leaves the
// sequencer's warm-start state and frame count untouched, so the stream can
// continue with the next frame.
func (q *Sequencer) NextContext(ctx context.Context, target *imgutil.Gray) (*FrameResult, error) {
	if target.W != q.input.W || target.H != q.input.H {
		q.countFrameError()
		return nil, fmt.Errorf("video: frame %dx%d, stream is %dx%d: %w",
			target.W, target.H, q.input.W, q.input.H, ErrConfig)
	}
	if err := ctxErr(ctx); err != nil {
		q.countFrameError()
		return nil, fmt.Errorf("video: frame cancelled before preprocessing: %w", err)
	}
	tree := trace.NewTree()
	tr := trace.Multi(tree, q.cfg.Trace)
	var dev0 cuda.Metrics
	if q.cfg.Device != nil {
		dev0 = q.cfg.Device.Metrics()
	}
	begin := time.Now()
	fr, err := q.next(ctx, target, tr)
	latency := time.Since(begin)
	if q.cfg.Device != nil {
		d := q.cfg.Device.Metrics().Sub(dev0)
		trace.Count(tr, trace.CounterKernelLaunches, d.Launches)
		trace.Count(tr, trace.CounterKernelBlocks, d.Blocks)
	}
	if err != nil {
		trace.Count(tr, trace.CounterFrameErrors, 1)
		if q.errorsCtr != nil {
			q.errorsCtr.Inc()
		}
		return nil, err
	}
	trace.Count(tr, trace.CounterFrames, 1)
	if q.latencyHist != nil {
		q.latencyHist.Observe(latency.Seconds())
		q.framesCtr.Inc()
	}
	fr.Latency = latency
	fr.Stats = tree.Snapshot()
	return fr, nil
}

// countFrameError charges one failed frame to the trace and registry
// counters — used by the early returns that fail before the per-frame trace
// tree exists.
func (q *Sequencer) countFrameError() {
	trace.Count(q.cfg.Trace, trace.CounterFrameErrors, 1)
	if q.errorsCtr != nil {
		q.errorsCtr.Inc()
	}
}

// next runs the per-frame stages under the frame span.
func (q *Sequencer) next(ctx context.Context, target *imgutil.Gray, tr trace.Collector) (*FrameResult, error) {
	root := trace.Start(tr, trace.SpanFrame)
	defer root.End()

	sp := trace.Start(tr, trace.SpanPreprocess)
	work := q.input
	var err error
	if !q.cfg.NoHistogramMatch {
		work, err = hist.Match(q.input, target)
		if err != nil {
			return nil, err
		}
	}
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("video: frame cancelled before tiling: %w", err)
	}

	sp = trace.Start(tr, trace.SpanTiling)
	m := q.input.W / q.cfg.TilesPerSide
	inGrid, err := tile.NewGrid(work, m)
	if err != nil {
		return nil, err
	}
	tgtGrid, err := tile.NewGrid(target, m)
	if err != nil {
		return nil, err
	}
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("video: frame cancelled before Step 2: %w", err)
	}

	sp = trace.Start(tr, trace.SpanCostMatrix)
	var costs *metric.Matrix
	if q.cfg.Device != nil {
		costs, err = metric.BuildDevice(q.cfg.Device, inGrid, tgtGrid, q.cfg.Metric)
	} else {
		costs, err = metric.BuildSerial(inGrid, tgtGrid, q.cfg.Metric)
	}
	if err != nil {
		return nil, err
	}
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("video: frame cancelled before Step 3: %w", err)
	}

	start := q.prev
	if start == nil || q.cfg.NoWarmStart {
		start = perm.Identity(q.s)
	}
	sp = trace.Start(tr, trace.SpanRearrange)
	var p perm.Perm
	var st localsearch.Stats
	searchOpts := localsearch.Options{Trace: tr}
	if q.cfg.Device != nil {
		p, st, err = localsearch.ParallelContext(ctx, q.cfg.Device, costs, start, q.coloring, searchOpts)
	} else {
		p, st, err = localsearch.SerialContext(ctx, costs, start, searchOpts)
	}
	if err != nil {
		return nil, err
	}
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("video: frame cancelled before assembly: %w", err)
	}

	sp = trace.Start(tr, trace.SpanAssemble)
	mos, err := inGrid.Assemble(p)
	if err != nil {
		return nil, err
	}
	sp.End()
	q.prev = p
	q.frames++
	return &FrameResult{
		Mosaic:     mos,
		Assignment: p,
		TotalError: costs.Total(p),
		Passes:     st.Passes,
	}, nil
}

// Stream drains target frames from in until the channel closes or ctx is
// cancelled, mosaicking each with NextContext and handing the result to
// emit. When Config.Metrics is set, the queue-depth gauge tracks len(in)
// before each frame — with a buffered producer channel this is the
// backpressure signal of the serving story: a rising queue means frames
// arrive faster than the pipeline drains them.
//
// Stream returns the first error from a frame or from emit (the warm-start
// state survives, so a caller may resume), or ctx's error on cancellation,
// or nil when in closes.
func (q *Sequencer) Stream(ctx context.Context, in <-chan *imgutil.Gray, emit func(*FrameResult) error) error {
	for {
		if q.queueGauge != nil {
			q.queueGauge.Set(float64(len(in)))
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case target, ok := <-in:
			if !ok {
				if q.queueGauge != nil {
					q.queueGauge.Set(0)
				}
				return nil
			}
			fr, err := q.NextContext(ctx, target)
			if err != nil {
				return err
			}
			if err := emit(fr); err != nil {
				return err
			}
		}
	}
}

// ctxErr returns ctx's error if it is already done, nil otherwise.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Pan synthesises a horizontal camera pan across a wide scene: frame f is
// the size×size window at offset f·stride. A convenient target stream for
// tests and demos.
func Pan(scene *imgutil.Gray, size, frames int) ([]*imgutil.Gray, error) {
	if size <= 0 || frames <= 0 || scene.W < size || scene.H < size {
		return nil, fmt.Errorf("video: pan of %dx%d windows over %dx%d: %w", size, size, scene.W, scene.H, ErrConfig)
	}
	out := make([]*imgutil.Gray, frames)
	span := scene.W - size
	for f := 0; f < frames; f++ {
		off := 0
		if frames > 1 {
			off = f * span / (frames - 1)
		}
		w, err := scene.SubImage(off, (scene.H-size)/2, size, size)
		if err != nil {
			return nil, err
		}
		out[f] = w
	}
	return out, nil
}
