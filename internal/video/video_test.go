package video

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func stream(t testing.TB, size, frames int) (*imgutil.Gray, []*imgutil.Gray) {
	t.Helper()
	input := synth.MustGenerate(synth.Lena, size)
	wide := synth.MustGenerate(synth.Sailboat, size*2)
	targets, err := Pan(wide, size, frames)
	if err != nil {
		t.Fatal(err)
	}
	return input, targets
}

func TestSequencerProducesValidFrames(t *testing.T) {
	input, targets := stream(t, 64, 5)
	seq, err := NewSequencer(input, Config{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, tgt := range targets {
		fr, err := seq.Next(tgt)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if err := fr.Assignment.Validate(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Mosaic.W != 64 || fr.TotalError <= 0 || fr.Passes < 1 {
			t.Fatalf("frame %d degenerate: %+v", i, fr)
		}
		// Reported error equals the image-level error of the mosaic.
		imgErr, err := fr.Mosaic.AbsDiffSum(tgt)
		if err != nil {
			t.Fatal(err)
		}
		if fr.TotalError != imgErr {
			t.Fatalf("frame %d: error %d != image error %d", i, fr.TotalError, imgErr)
		}
	}
	if seq.Frames() != 5 {
		t.Errorf("Frames() = %d", seq.Frames())
	}
}

func TestWarmStartReducesPasses(t *testing.T) {
	// The sequencing claim: after the first frame, warm-started searches
	// need fewer sweeps than identity-started ones on the same stream.
	input, targets := stream(t, 128, 6)
	warm, err := NewSequencer(input, Config{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSequencer(input, Config{TilesPerSide: 16, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	var warmPasses, coldPasses int
	for i, tgt := range targets {
		fw, err := warm.Next(tgt)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := cold.Next(tgt)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 { // first frame has no warm start to use
			warmPasses += fw.Passes
			coldPasses += fc.Passes
		}
	}
	if warmPasses >= coldPasses {
		t.Errorf("warm starts did not reduce passes: warm %d vs cold %d", warmPasses, coldPasses)
	}
}

func TestWarmAndColdQualityComparable(t *testing.T) {
	// Warm starting must not cost meaningful quality: both land at swap-
	// local optima of the same matrix.
	input, targets := stream(t, 128, 4)
	warm, _ := NewSequencer(input, Config{TilesPerSide: 16})
	cold, _ := NewSequencer(input, Config{TilesPerSide: 16, NoWarmStart: true})
	for i, tgt := range targets {
		fw, err := warm.Next(tgt)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := cold.Next(tgt)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(fw.TotalError) / float64(fc.TotalError)
		if ratio > 1.05 || ratio < 0.95 {
			t.Errorf("frame %d: warm %d vs cold %d (ratio %.3f)", i, fw.TotalError, fc.TotalError, ratio)
		}
	}
}

func TestSequencerWithDevice(t *testing.T) {
	input, targets := stream(t, 64, 3)
	seq, err := NewSequencer(input, Config{TilesPerSide: 8, Device: cuda.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range targets {
		fr, err := seq.Next(tgt)
		if err != nil {
			t.Fatal(err)
		}
		if err := fr.Assignment.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestResetDropsWarmStart(t *testing.T) {
	input, targets := stream(t, 64, 2)
	seq, _ := NewSequencer(input, Config{TilesPerSide: 8})
	if _, err := seq.Next(targets[0]); err != nil {
		t.Fatal(err)
	}
	seq.Reset()
	// After a reset the next frame behaves like a first frame; mainly this
	// must not crash or corrupt state.
	fr, err := seq.Next(targets[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSequencerValidation(t *testing.T) {
	input := synth.MustGenerate(synth.Lena, 64)
	if _, err := NewSequencer(input, Config{}); err == nil {
		t.Error("accepted zero TilesPerSide")
	}
	if _, err := NewSequencer(input, Config{TilesPerSide: 7}); err == nil {
		t.Error("accepted indivisible grid")
	}
	if _, err := NewSequencer(imgutil.NewGray(64, 32), Config{TilesPerSide: 8}); err == nil {
		t.Error("accepted non-square input")
	}
	seq, err := NewSequencer(input, Config{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Next(imgutil.NewGray(32, 32)); err == nil {
		t.Error("accepted mismatched frame size")
	}
}

func TestPan(t *testing.T) {
	scene := synth.MustGenerate(synth.Plasma, 128)
	frames, err := Pan(scene, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("%d frames", len(frames))
	}
	for _, f := range frames {
		if f.W != 64 || f.H != 64 {
			t.Fatalf("frame %dx%d", f.W, f.H)
		}
	}
	// First and last frames are the extreme windows.
	want, _ := scene.SubImage(0, 32, 64, 64)
	if !frames[0].Equal(want) {
		t.Error("first frame wrong window")
	}
	want, _ = scene.SubImage(64, 32, 64, 64)
	if !frames[4].Equal(want) {
		t.Error("last frame wrong window")
	}
	if _, err := Pan(scene, 256, 2); err == nil {
		t.Error("accepted window larger than scene")
	}
	if _, err := Pan(scene, 64, 0); err == nil {
		t.Error("accepted zero frames")
	}
}

func BenchmarkSequencerFrame(b *testing.B) {
	input, targets := stream(b, 256, 2)
	seq, err := NewSequencer(input, Config{TilesPerSide: 16})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seq.Next(targets[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seq.Next(targets[1-i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSequencerCancelledFrameLeavesStateUntouched(t *testing.T) {
	input, targets := stream(t, 64, 3)
	seq, err := NewSequencer(input, Config{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Next(targets[0]); err != nil {
		t.Fatal(err)
	}
	prevBefore := append(perm.Perm(nil), seq.prev...)
	framesBefore := seq.Frames()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fr, err := seq.NextContext(ctx, targets[1])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fr != nil {
		t.Fatal("cancelled frame returned a non-nil FrameResult")
	}
	if seq.Frames() != framesBefore {
		t.Fatalf("frame count moved %d → %d on a cancelled frame", framesBefore, seq.Frames())
	}
	if !seq.prev.Equal(prevBefore) {
		t.Fatal("warm-start assignment mutated by a cancelled frame")
	}

	// The stream continues cleanly after the cancelled frame.
	fr, err = seq.Next(targets[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq.Frames() != framesBefore+1 {
		t.Fatalf("Frames() = %d after recovery, want %d", seq.Frames(), framesBefore+1)
	}
}

func TestSequencerDeviceFrameCancellation(t *testing.T) {
	input, targets := stream(t, 64, 2)
	dev := cuda.New(2)
	seq, err := NewSequencer(input, Config{TilesPerSide: 8, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := seq.NextContext(ctx, targets[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m := dev.Metrics(); m.Launches != 0 {
		t.Fatalf("device launched %d kernels for a pre-cancelled frame", m.Launches)
	}
	fr, err := seq.NextContext(context.Background(), targets[1])
	if err != nil {
		t.Fatal(err)
	}
	if fr.Stats.Counter(trace.CounterKernelLaunches) <= 0 {
		t.Fatal("frame stats missing kernel-launch counter after device run")
	}
}

func TestSequencerMetrics(t *testing.T) {
	input, targets := stream(t, 64, 3)
	reg := telemetry.NewRegistry()
	seq, err := NewSequencer(input, Config{TilesPerSide: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i, tgt := range targets {
		fr, err := seq.Next(tgt)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Latency <= 0 {
			t.Fatalf("frame %d: latency %v not positive", i, fr.Latency)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["mosaic_video_frames_total"]; got != 3 {
		t.Fatalf("frames counter = %v, want 3", got)
	}
	if got := snap.Counters["mosaic_video_frame_errors_total"]; got != 0 {
		t.Fatalf("error counter = %v, want 0", got)
	}
	h := snap.Histograms["mosaic_video_frame_latency_seconds"]
	if h.Count != 3 || h.Sum <= 0 {
		t.Fatalf("latency histogram = %+v, want 3 positive observations", h)
	}
}

func TestSequencerMetricsCountErrors(t *testing.T) {
	input, targets := stream(t, 64, 1)
	reg := telemetry.NewRegistry()
	seq, err := NewSequencer(input, Config{TilesPerSide: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := seq.NextContext(ctx, targets[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["mosaic_video_frame_errors_total"]; got != 1 {
		t.Fatalf("error counter = %v, want 1", got)
	}
	if got := snap.Counters["mosaic_video_frames_total"]; got != 0 {
		t.Fatalf("frames counter = %v, want 0", got)
	}
}

func TestStreamEmitsEveryFrame(t *testing.T) {
	input, targets := stream(t, 64, 4)
	reg := telemetry.NewRegistry()
	seq, err := NewSequencer(input, Config{TilesPerSide: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *imgutil.Gray, len(targets))
	for _, tgt := range targets {
		in <- tgt
	}
	close(in)
	var emitted int
	if err := seq.Stream(context.Background(), in, func(fr *FrameResult) error {
		emitted++
		if fr.Latency <= 0 {
			return errors.New("frame without latency")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if emitted != len(targets) {
		t.Fatalf("emitted %d frames, want %d", emitted, len(targets))
	}
	// The channel drained, so the final queue-depth reading is zero.
	if got := reg.Snapshot().Gauges["mosaic_video_queue_depth"]; got != 0 {
		t.Fatalf("queue depth gauge = %v, want 0 after drain", got)
	}
}

func TestStreamStopsOnEmitError(t *testing.T) {
	input, targets := stream(t, 64, 3)
	seq, err := NewSequencer(input, Config{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *imgutil.Gray, len(targets))
	for _, tgt := range targets {
		in <- tgt
	}
	close(in)
	boom := errors.New("sink full")
	if err := seq.Stream(context.Background(), in, func(*FrameResult) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if seq.Frames() != 1 {
		t.Fatalf("processed %d frames after emit failure, want 1", seq.Frames())
	}
}
