// Package trace is the pipeline's observability layer: named spans around
// the paper's pipeline stages (tiling, histogram matching, the Step-2 error
// matrix, the Step-3 rearrangement, assembly) and monotonic counters for the
// quantities the paper's tables aggregate (sweep rounds, swap attempts,
// improving swaps, kernel launches, blocks executed).
//
// A Collector receives the events; the pipeline emits them through the
// nil-safe helpers Start and Count, so an unobserved run pays only a nil
// check per stage. Built-in collectors:
//
//   - Tree records a span tree plus counter totals and serialises to JSON
//     (the -trace flag of cmd/mosaic) or aggregates into a Stats snapshot
//     (Result.Stats);
//   - Log streams one line per event to an io.Writer;
//   - Multi fans events out to several collectors.
//
// Span and counter names are exported constants so tests, CLIs and future
// serving code agree on the vocabulary; the names map one-to-one onto the
// stage breakdown of the paper's Tables II–IV (see EXPERIMENTS.md).
package trace

import "time"

// Pipeline stage span names. The five stages of the acceptance vocabulary —
// tiling, histogram match, error matrix, rearrangement, assembly — plus the
// roots that group them.
const (
	SpanPipeline   = "pipeline"        // one Generate/GenerateRGB call
	SpanFrame      = "frame"           // one Sequencer.Next call
	SpanPreprocess = "histogram-match" // §II preprocessing
	SpanTiling     = "tiling"          // Step 1
	SpanCostMatrix = "error-matrix"    // Step 2 (Table II)
	SpanRearrange  = "rearrangement"   // Step 3 (Table III)
	// SpanAssign nests inside SpanRearrange when Step 3 runs an exact or
	// certified matcher (Algorithm == Optimization): the LAP solve itself,
	// annotated with AttrSolver. Phases() attributes its time exclusively,
	// so rearrangement minus assign is the Step-3 overhead outside the
	// solver.
	SpanAssign   = "assign"
	SpanAssemble = "assembly" // writing the mosaic
	// SpanDegraded wraps work re-run on the host after device retries were
	// exhausted — a CPU cost-matrix rebuild or the host portion of a
	// degraded local search. Its presence in a span tree is the per-run
	// degradation marker.
	SpanDegraded = "degraded-fallback"
)

// Request-scoped span names. The serving layer wraps every job in one
// SpanRequest root whose children attribute the request's wall time to the
// journey stages outside the pipeline proper: waiting for a worker, waiting
// for a device lease, looking work up in the prepared cache, backing off
// between launch retries, and encoding the response. Together with the
// pipeline stage spans above they form the per-request breakdown the
// flight recorder serves at /debug/requests (see Phases).
const (
	// SpanRequest is the root of one served request's span tree; its own
	// (exclusive) time is the bookkeeping the named children do not cover.
	SpanRequest = "request"
	// SpanQueueWait covers submission until a worker picks the job up — the
	// backpressure signal per request.
	SpanQueueWait = "queue-wait"
	// SpanDeviceWait covers blocking on a device-pool lease.
	SpanDeviceWait = "device-wait"
	// SpanRetryBackoff covers one backoff sleep between launch retry
	// attempts (emitted by the retry policy's accounting hook, nested in
	// whatever stage was retrying).
	SpanRetryBackoff = "retry-backoff"
	// SpanCacheLookup covers the prepared-work cache lookup; on a miss the
	// prepare stages nest inside it, so its exclusive time is pure lookup
	// (or follower-wait) overhead.
	SpanCacheLookup = "cache-lookup"
	// SpanEncode covers encoding the finished mosaic for the response.
	SpanEncode = "encode"
)

// Annotation keys the serving layer attaches to request spans.
const (
	AttrRequestID  = "request_id"
	AttrCache      = "cache"       // "hit" | "miss"
	AttrDevice     = "device"      // pool device name, or "host"
	AttrDegraded   = "degraded"    // "true" when any stage fell back to the host
	AttrRetries    = "retries"     // launch re-attempts observed by the request
	AttrQuarantine = "quarantined" // "true" when the request's report quarantined its device
	AttrOutcome    = "outcome"     // "done" | "timeout" | "cancelled" | "error"
	// AttrSolver names the LAP solver on an assign span ("jv",
	// "auction-device", "sinkhorn", ...).
	AttrSolver = "solver"
	// AttrBatched marks a request settled as a follower in a batch leader's
	// Finish wave — it reused the leader's Prepared and device lease, so its
	// tree has neither a device-wait nor a cache-lookup span.
	AttrBatched = "batched"
	// AttrBatchSize is the wave width (leader included) on every job of a
	// coalesced Finish wave.
	AttrBatchSize = "batch_size"
	// AttrPartial marks a request settled with a deadline-budgeted anytime
	// result: the search stopped at a safe point when the budget ran out
	// instead of failing, so the mosaic is valid but unconverged.
	AttrPartial = "partial"
)

// Counter names.
const (
	// CounterSweepRounds counts local-search sweeps (the paper's k).
	CounterSweepRounds = "search.sweep-rounds"
	// CounterSwapAttempts counts pair tests performed by the local search
	// (each sweep attempts S·(S−1)/2 of them).
	CounterSwapAttempts = "search.swap-attempts"
	// CounterImprovingSwaps counts swaps that were applied because they
	// strictly reduced the Eq. (2) error.
	CounterImprovingSwaps = "search.improving-swaps"
	// CounterAnnealSteps counts proposed annealing moves.
	CounterAnnealSteps = "search.anneal-steps"
	// CounterKernelLaunches counts Device.Launch/LaunchRange invocations.
	CounterKernelLaunches = "cuda.kernel-launches"
	// CounterKernelBlocks counts thread blocks executed across all launches.
	CounterKernelBlocks = "cuda.blocks-executed"
	// CounterPipelineRuns counts Generate/GenerateRGB pipelines that
	// completed successfully.
	CounterPipelineRuns = "pipeline.runs"
	// CounterPipelineErrors counts pipelines that returned an error,
	// including cancellation — the error-rate numerator a serving dashboard
	// alerts on.
	CounterPipelineErrors = "pipeline.errors"
	// CounterFrames counts video frames mosaicked successfully.
	CounterFrames = "video.frames"
	// CounterFrameErrors counts frames that returned an error, including
	// cancellation.
	CounterFrameErrors = "video.frame-errors"
	// CounterLaunchFaults counts device launches that failed with a typed
	// fault (injected or real) before any retry decision.
	CounterLaunchFaults = "cuda.launch-faults"
	// CounterLaunchRetries counts re-attempts of faulted launches (attempt
	// two onward), successful or not.
	CounterLaunchRetries = "cuda.launch-retries"
	// CounterDegradedRuns counts runs (or run stages) that fell back to the
	// host after device retries were exhausted or the device was lost. The
	// telemetry adapter exports it as mosaic_degraded_runs_total.
	CounterDegradedRuns = "degraded.runs"
)

// Collector receives span and counter events. Implementations must be safe
// for concurrent Count calls (kernels count from worker goroutines); spans
// are emitted from the pipeline goroutine and are strictly nested.
type Collector interface {
	// StartSpan opens a named span; the returned Span's End closes it.
	StartSpan(name string) Span
	// Count adds delta (which may be negative only in tests; the pipeline
	// emits non-negative deltas) to the named counter.
	Count(name string, delta int64)
}

// Span is an open span handle. End must be called exactly once.
type Span interface {
	End()
}

// noopSpan backs the nil-safe helpers.
type noopSpan struct{}

func (noopSpan) End() {}

// Start opens a span on c, tolerating a nil collector — the idiom at every
// instrumentation site is `defer trace.Start(c, name).End()` or an explicit
// sp := Start(...) / sp.End() pair around the stage.
func Start(c Collector, name string) Span {
	if c == nil {
		return noopSpan{}
	}
	return c.StartSpan(name)
}

// Count adds to a counter on c, tolerating a nil collector and dropping
// zero deltas so unobserved fast paths stay quiet.
func Count(c Collector, name string, delta int64) {
	if c == nil || delta == 0 {
		return
	}
	c.Count(name, delta)
}

// Annotator is the optional Span extension for key/value annotations —
// cache hit/miss, device name, degradation and quarantine markers. Spans
// that do not record (noop, log) simply don't implement it.
type Annotator interface {
	Annotate(key, value string)
}

// Annotate attaches a key/value annotation to sp if its collector records
// them (Multi spans fan out). Nil-safe; no-op otherwise.
func Annotate(sp Span, key, value string) {
	if a, ok := sp.(Annotator); ok {
		a.Annotate(key, value)
	}
}

// multi fans out to several collectors.
type multi struct{ cs []Collector }

type multiSpan struct{ spans []Span }

func (m multiSpan) End() {
	for _, s := range m.spans {
		s.End()
	}
}

// Annotate implements Annotator by fanning out to every fanned-out span
// that records annotations.
func (m multiSpan) Annotate(key, value string) {
	for _, s := range m.spans {
		Annotate(s, key, value)
	}
}

func (m multi) StartSpan(name string) Span {
	spans := make([]Span, len(m.cs))
	for i, c := range m.cs {
		spans[i] = c.StartSpan(name)
	}
	return multiSpan{spans}
}

func (m multi) Count(name string, delta int64) {
	for _, c := range m.cs {
		c.Count(name, delta)
	}
}

// Multi returns a collector broadcasting every event to all non-nil
// arguments. Zero or one effective collectors collapse to nil or the
// collector itself, keeping the nil fast path.
func Multi(cs ...Collector) Collector {
	eff := make([]Collector, 0, len(cs))
	for _, c := range cs {
		if c != nil {
			eff = append(eff, c)
		}
	}
	switch len(eff) {
	case 0:
		return nil
	case 1:
		return eff[0]
	}
	return multi{eff}
}

// SpanStat aggregates all spans sharing one name.
type SpanStat struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// Stats is an aggregated snapshot of a traced run: per-name span totals in
// first-seen order and counter totals. It is a plain value — safe to copy,
// compare and embed in results.
type Stats struct {
	Spans    []SpanStat       `json:"spans"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Span returns the aggregate for the named span (zero SpanStat if absent).
func (s Stats) Span(name string) SpanStat {
	for _, sp := range s.Spans {
		if sp.Name == name {
			return sp
		}
	}
	return SpanStat{Name: name}
}

// Counter returns the named counter total (zero if absent).
func (s Stats) Counter(name string) int64 { return s.Counters[name] }

// PhaseName canonicalises a span name into the phase label used by the
// per-request breakdown ("queue-wait" → "queue_wait", "error-matrix" →
// "error_matrix"): lowercase alphanumerics with every other rune folded to
// an underscore, matching the Prometheus label-value vocabulary of
// mosaic_request_phase_ns.
func PhaseName(span string) string {
	b := make([]byte, len(span))
	for i := 0; i < len(span); i++ {
		c := span[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b[i] = c
		case c >= 'A' && c <= 'Z':
			b[i] = c - 'A' + 'a'
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// Phases attributes a span forest's wall time to named phases: each node
// contributes its *exclusive* duration (its own time minus its children's)
// to the phase named after its span, so nested stages never double-count —
// retry-backoff time inside the error matrix is charged to retry_backoff,
// not twice. Negative exclusive time (clock skew between parent and child
// reads) clamps to zero. The values therefore satisfy
//
//	sum(phases) ≤ sum(root durations)
//
// with equality up to clamping — the invariant the latency-attribution
// acceptance test pins. Durations are nanoseconds.
func Phases(roots []*Node) map[string]int64 {
	out := make(map[string]int64)
	var walk func(n *Node)
	walk = func(n *Node) {
		excl := n.Duration
		for _, c := range n.Children {
			excl -= c.Duration
			walk(c)
		}
		if excl < 0 {
			excl = 0
		}
		out[PhaseName(n.Name)] += int64(excl)
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// Merge returns the element-wise sum of two snapshots — used by the video
// sequencer to keep a stream-lifetime aggregate over per-frame stats.
func (s Stats) Merge(o Stats) Stats {
	out := Stats{}
	order := make(map[string]int)
	add := func(sp SpanStat) {
		if i, ok := order[sp.Name]; ok {
			out.Spans[i].Count += sp.Count
			out.Spans[i].Total += sp.Total
			return
		}
		order[sp.Name] = len(out.Spans)
		out.Spans = append(out.Spans, sp)
	}
	for _, sp := range s.Spans {
		add(sp)
	}
	for _, sp := range o.Spans {
		add(sp)
	}
	if len(s.Counters) > 0 || len(o.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters)+len(o.Counters))
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range o.Counters {
			out.Counters[k] += v
		}
	}
	return out
}
