package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorHelpers(t *testing.T) {
	// Start/Count on a nil collector must be safe no-ops.
	sp := Start(nil, "x")
	sp.End()
	Count(nil, "c", 5)
}

func TestTreeNesting(t *testing.T) {
	tr := NewTree()
	root := tr.StartSpan(SpanPipeline)
	a := tr.StartSpan(SpanCostMatrix)
	a.End()
	b := tr.StartSpan(SpanRearrange)
	b.End()
	root.End()
	top := tr.StartSpan(SpanAssemble)
	top.End()

	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	if roots[0].Name != SpanPipeline || roots[1].Name != SpanAssemble {
		t.Fatalf("root names %q, %q", roots[0].Name, roots[1].Name)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != SpanCostMatrix || kids[1].Name != SpanRearrange {
		t.Fatalf("unexpected children %+v", kids)
	}
	if roots[0].Duration <= 0 {
		t.Fatalf("root duration %v not positive", roots[0].Duration)
	}
	if roots[0].Duration < kids[0].Duration+kids[1].Duration {
		t.Fatalf("parent %v shorter than children %v + %v",
			roots[0].Duration, kids[0].Duration, kids[1].Duration)
	}
}

func TestTreeCountersConcurrent(t *testing.T) {
	tr := NewTree()
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Count(CounterKernelLaunches, 1)
				tr.Count(CounterKernelBlocks, 3)
			}
		}()
	}
	wg.Wait()
	c := tr.Counters()
	if c[CounterKernelLaunches] != workers*per {
		t.Fatalf("launches = %d, want %d", c[CounterKernelLaunches], workers*per)
	}
	if c[CounterKernelBlocks] != 3*workers*per {
		t.Fatalf("blocks = %d, want %d", c[CounterKernelBlocks], 3*workers*per)
	}
}

func TestSnapshotAggregatesByName(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 3; i++ {
		sp := tr.StartSpan(SpanFrame)
		inner := tr.StartSpan(SpanCostMatrix)
		time.Sleep(time.Millisecond)
		inner.End()
		sp.End()
	}
	tr.Count(CounterSweepRounds, 7)
	st := tr.Snapshot()
	if got := st.Span(SpanFrame); got.Count != 3 || got.Total <= 0 {
		t.Fatalf("frame stat %+v", got)
	}
	if got := st.Span(SpanCostMatrix); got.Count != 3 || got.Total < 3*time.Millisecond {
		t.Fatalf("cost-matrix stat %+v", got)
	}
	if st.Counter(CounterSweepRounds) != 7 {
		t.Fatalf("counter = %d, want 7", st.Counter(CounterSweepRounds))
	}
	if st.Span("absent").Count != 0 || st.Counter("absent") != 0 {
		t.Fatal("absent lookups must be zero")
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{
		Spans:    []SpanStat{{Name: "x", Count: 1, Total: time.Second}},
		Counters: map[string]int64{"c": 2},
	}
	b := Stats{
		Spans:    []SpanStat{{Name: "x", Count: 2, Total: time.Second}, {Name: "y", Count: 1, Total: time.Millisecond}},
		Counters: map[string]int64{"c": 3, "d": 1},
	}
	m := a.Merge(b)
	if got := m.Span("x"); got.Count != 3 || got.Total != 2*time.Second {
		t.Fatalf("merged x = %+v", got)
	}
	if got := m.Span("y"); got.Count != 1 {
		t.Fatalf("merged y = %+v", got)
	}
	if m.Counter("c") != 5 || m.Counter("d") != 1 {
		t.Fatalf("merged counters %v", m.Counters)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	tr := NewTree()
	sp := tr.StartSpan(SpanPipeline)
	in := tr.StartSpan(SpanTiling)
	in.End()
	sp.End()
	tr.Count(CounterSwapAttempts, 42)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Spans    []*Node          `json:"spans"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(decoded.Spans) != 1 || decoded.Spans[0].Name != SpanPipeline {
		t.Fatalf("decoded spans %+v", decoded.Spans)
	}
	if len(decoded.Spans[0].Children) != 1 || decoded.Spans[0].Children[0].Name != SpanTiling {
		t.Fatalf("decoded children %+v", decoded.Spans[0].Children)
	}
	if decoded.Counters[CounterSwapAttempts] != 42 {
		t.Fatalf("decoded counters %v", decoded.Counters)
	}
}

func TestMultiFansOut(t *testing.T) {
	t1, t2 := NewTree(), NewTree()
	m := Multi(t1, nil, t2)
	sp := m.StartSpan("s")
	m.Count("c", 4)
	sp.End()
	for i, tr := range []*Tree{t1, t2} {
		if len(tr.Roots()) != 1 || tr.Roots()[0].Name != "s" {
			t.Fatalf("collector %d missed the span", i)
		}
		if tr.Counters()["c"] != 4 {
			t.Fatalf("collector %d missed the counter", i)
		}
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils must collapse to nil")
	}
	if Multi(t1) != Collector(t1) {
		t.Fatal("Multi of one must collapse to it")
	}
}

func TestLogCollectorLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(&buf)
	sp := l.StartSpan("stage")
	l.Count("ctr", 9)
	sp.End()
	out := buf.String()
	for _, want := range []string{"> stage", "< stage", "ctr += 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
}

// TestLogCollectorOffsets checks every Log line leads with a monotonic
// elapsed-time offset: '+'-prefixed, parseable as a duration, and
// non-decreasing down the stream — the property that lets interleaved
// counter lines be correlated with the span lines around them.
func TestLogCollectorOffsets(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(&buf)
	outer := l.StartSpan("outer")
	l.Count("ctr", 1)
	inner := l.StartSpan("inner")
	inner.End()
	outer.End()

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	prev := time.Duration(-1)
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "+") {
			t.Fatalf("line %q does not lead with a +offset", line)
		}
		d, err := time.ParseDuration(fields[0][1:])
		if err != nil {
			t.Fatalf("line %q: offset not a duration: %v", line, err)
		}
		if d < prev {
			t.Fatalf("offsets regressed at %q (%v after %v)", line, d, prev)
		}
		prev = d
	}
	// Counter lines are indented to the depth of the enclosing span.
	if !strings.Contains(lines[1], "  ctr += 1") {
		t.Fatalf("counter line not depth-indented: %q", lines[1])
	}
}
