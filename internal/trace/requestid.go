package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Request IDs travel by context so every layer a job crosses — queue,
// device pool, retry policy, Prepare/Finish — can attribute its work to the
// request that caused it without threading an extra parameter through the
// pipeline. The serving layer accepts a caller-supplied ID (the
// X-Request-ID header) or mints one, stores it with WithRequestID, and the
// telemetry layer reads it back with RequestID when attaching exemplars.

type requestIDKey struct{}

// WithRequestID returns a context carrying id. An empty id returns ctx
// unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "" when none is set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// reqSeq breaks ties when the crypto reader is unavailable — IDs must stay
// unique within the process even then.
var reqSeq atomic.Uint64

// NewRequestID mints a 16-hex-char request ID ("9f3a61cc52d04b17"). IDs
// come from crypto/rand so concurrent processes behind one load balancer
// cannot collide; if the reader fails (it practically cannot) a
// process-unique sequential ID is used instead.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID validates a caller-supplied request ID: printable
// ASCII excluding '"' and '\' (so IDs embed safely in JSON logs and
// Prometheus exemplar labels), at most 128 bytes. Invalid or empty IDs
// return "", telling the caller to mint one.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x21 || c > 0x7e || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}
