package trace

import (
	"context"
	"testing"
	"time"
)

func TestPhaseName(t *testing.T) {
	cases := map[string]string{
		"queue-wait":      "queue_wait",
		"error-matrix":    "error_matrix",
		"request":         "request",
		"Mixed Case.9":    "mixed_case_9",
		"retry-backoff":   "retry_backoff",
		"histogram-match": "histogram_match",
	}
	for in, want := range cases {
		if got := PhaseName(in); got != want {
			t.Errorf("PhaseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPhasesExclusive pins the attribution invariant: each span's exclusive
// time goes to its own phase, nested children never double-count, and the
// phase totals sum to the root durations.
func TestPhasesExclusive(t *testing.T) {
	roots := []*Node{{
		Name: SpanRequest, Duration: 100,
		Children: []*Node{
			{Name: SpanQueueWait, Duration: 20},
			{Name: SpanCacheLookup, Duration: 50, Children: []*Node{
				{Name: SpanCostMatrix, Duration: 40, Children: []*Node{
					{Name: SpanRetryBackoff, Duration: 15},
				}},
			}},
			{Name: SpanEncode, Duration: 10},
		},
	}}
	ph := Phases(roots)
	want := map[string]int64{
		"request":       20, // 100 − 20 − 50 − 10
		"queue_wait":    20,
		"cache_lookup":  10, // 50 − 40
		"error_matrix":  25, // 40 − 15
		"retry_backoff": 15,
		"encode":        10,
	}
	for k, v := range want {
		if ph[k] != v {
			t.Errorf("phase %q = %d, want %d", k, ph[k], v)
		}
	}
	var sum int64
	for _, v := range ph {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("phases sum to %d, want the root's 100", sum)
	}
}

// TestPhasesClampsNegative: a child reporting longer than its parent (clock
// reads race) must clamp the parent's exclusive time to zero, not go
// negative.
func TestPhasesClampsNegative(t *testing.T) {
	ph := Phases([]*Node{{Name: "a", Duration: 5, Children: []*Node{{Name: "b", Duration: 9}}}})
	if ph["a"] != 0 || ph["b"] != 9 {
		t.Fatalf("got %v, want a=0 b=9", ph)
	}
}

func TestTreeSpanAnnotate(t *testing.T) {
	tr := NewTree()
	sp := tr.StartSpan(SpanRequest)
	Annotate(sp, AttrCache, "miss")
	Annotate(sp, AttrDevice, "0")
	Annotate(sp, AttrCache, "hit") // last write wins
	sp.End()
	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	if got := roots[0].Attrs[AttrCache]; got != "hit" {
		t.Errorf("cache attr %q, want hit", got)
	}
	if got := roots[0].Attrs[AttrDevice]; got != "0" {
		t.Errorf("device attr %q, want 0", got)
	}
}

// TestAnnotateMulti: annotations fan out through Multi to every collector
// that records them, and tolerate collectors that do not (Log) plus nil
// spans.
func TestAnnotateMulti(t *testing.T) {
	t1, t2 := NewTree(), NewTree()
	sp := Multi(t1, t2).StartSpan("s")
	Annotate(sp, "k", "v")
	sp.End()
	for i, tr := range []*Tree{t1, t2} {
		if got := tr.Roots()[0].Attrs["k"]; got != "v" {
			t.Errorf("tree %d attr = %q, want v", i, got)
		}
	}
	Annotate(noopSpan{}, "k", "v") // must not panic
	Annotate(nil, "k", "v")
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("empty context carries ID %q", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("got %q, want abc123", got)
	}
	if WithRequestID(ctx, "") != ctx {
		t.Fatal("empty ID should return ctx unchanged")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestSanitizeRequestID(t *testing.T) {
	if got := SanitizeRequestID("trace-42_OK.x"); got != "trace-42_OK.x" {
		t.Errorf("valid id rejected: %q", got)
	}
	for _, bad := range []string{"", "has space", "quote\"", "back\\slash", "ctrl\n", string(make([]byte, 129))} {
		if got := SanitizeRequestID(bad); got != "" {
			t.Errorf("SanitizeRequestID(%q) = %q, want \"\"", bad, got)
		}
	}
}

// TestTreeConcurrentAnnotateCount: annotations and counter increments from
// worker goroutines must not tear the tree (run under -race).
func TestTreeConcurrentAnnotateCount(t *testing.T) {
	tr := NewTree()
	sp := tr.StartSpan(SpanRequest)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				Annotate(sp, "k", "v")
				tr.Count("c", 1)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	sp.End()
	if tr.Counters()["c"] != 800 {
		t.Fatalf("counter = %d, want 800", tr.Counters()["c"])
	}
	if tr.Roots()[0].Attrs["k"] != "v" {
		t.Fatal("annotation lost")
	}
	_ = tr.Snapshot()
	time.Sleep(0)
}
