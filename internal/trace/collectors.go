package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Node is one recorded span in a Tree. Start is the offset from the tree's
// creation, so serialised trees are reproducible modulo durations.
type Node struct {
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
	// Attrs carries the span's key/value annotations (cache hit/miss,
	// device, degradation markers) — see trace.Annotate.
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// Tree records spans into a tree (nesting follows the StartSpan/End order)
// and counters into totals. It is the JSON collector behind the -trace flag
// and the source of the Stats snapshot on Result. Safe for concurrent Count;
// spans must be emitted strictly nested from one goroutine, which is how the
// pipeline emits them.
type Tree struct {
	mu       sync.Mutex
	epoch    time.Time
	roots    []*Node
	stack    []*Node
	counters map[string]int64
}

// NewTree returns an empty tree collector.
func NewTree() *Tree {
	return &Tree{epoch: time.Now(), counters: make(map[string]int64)}
}

type treeSpan struct {
	t     *Tree
	node  *Node
	begin time.Time
}

// StartSpan implements Collector.
func (t *Tree) StartSpan(name string) Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	n := &Node{Name: name, Start: now.Sub(t.epoch)}
	if len(t.stack) == 0 {
		t.roots = append(t.roots, n)
	} else {
		parent := t.stack[len(t.stack)-1]
		parent.Children = append(parent.Children, n)
	}
	t.stack = append(t.stack, n)
	return &treeSpan{t: t, node: n, begin: now}
}

// Annotate implements trace.Annotator, recording a key/value pair on the
// span's node. Safe to call until (and racing with) End — the tree mutex
// orders it against snapshotting.
func (s *treeSpan) Annotate(key, value string) {
	s.t.mu.Lock()
	if s.node.Attrs == nil {
		s.node.Attrs = make(map[string]string)
	}
	s.node.Attrs[key] = value
	s.t.mu.Unlock()
}

// End implements Span, closing the most recently opened span. Closing out of
// order closes every span opened after this one too (defensive; the pipeline
// never does it).
func (s *treeSpan) End() {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.node.Duration = time.Since(s.begin)
	for i := len(s.t.stack) - 1; i >= 0; i-- {
		if s.t.stack[i] == s.node {
			s.t.stack = s.t.stack[:i]
			break
		}
	}
}

// Count implements Collector.
func (t *Tree) Count(name string, delta int64) {
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Roots returns the recorded top-level spans (live pointers; callers must
// not mutate).
func (t *Tree) Roots() []*Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Node(nil), t.roots...)
}

// Counters returns a copy of the counter totals.
func (t *Tree) Counters() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Snapshot aggregates the tree into a Stats value: spans grouped by name in
// first-seen preorder, counters copied.
func (t *Tree) Snapshot() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Stats{}
	index := make(map[string]int)
	var walk func(ns []*Node)
	walk = func(ns []*Node) {
		for _, n := range ns {
			i, ok := index[n.Name]
			if !ok {
				i = len(st.Spans)
				index[n.Name] = i
				st.Spans = append(st.Spans, SpanStat{Name: n.Name})
			}
			st.Spans[i].Count++
			st.Spans[i].Total += n.Duration
			walk(n.Children)
		}
	}
	walk(t.roots)
	if len(t.counters) > 0 {
		st.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			st.Counters[k] = v
		}
	}
	return st
}

// jsonDump is the serialised form of a Tree.
type jsonDump struct {
	Spans    []*Node          `json:"spans"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// WriteJSON serialises the span tree and counters as indented JSON — the
// payload of the -trace flag.
func (t *Tree) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	dump := jsonDump{Spans: t.roots, Counters: t.counters}
	b, err := json.MarshalIndent(dump, "", "  ")
	t.mu.Unlock()
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// WriteCounters prints the counter totals sorted by name, one per line —
// the payload of the -metrics flag.
func (t *Tree) WriteCounters(w io.Writer) error {
	counters := t.Counters()
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%-24s %d\n", k, counters[k]); err != nil {
			return err
		}
	}
	return nil
}

// Log streams one line per event to an io.Writer. Every line — span open,
// span close, counter — leads with the elapsed-time offset from the
// collector's creation, read from one monotonic clock (Go's time.Since uses
// the monotonic reading, so offsets never regress even if the wall clock is
// stepped). Interleaved counter lines therefore correlate with the span
// lines around them without any separate clock, and counter lines are
// indented to the depth of the enclosing span. Span close lines additionally
// carry the span's duration. Offsets and durations share one unit:
// microsecond-rounded Go duration notation. Concurrency-safe.
type Log struct {
	mu    sync.Mutex
	w     io.Writer
	epoch time.Time
	depth int
}

// NewLog returns a line-oriented collector writing to w.
func NewLog(w io.Writer) *Log { return &Log{w: w, epoch: time.Now()} }

// offset returns the monotonic elapsed time since the collector's creation,
// formatted with the leading '+' that marks every event line's clock column.
func (l *Log) offset() string {
	return "+" + time.Since(l.epoch).Round(time.Microsecond).String()
}

type logSpan struct {
	l     *Log
	name  string
	begin time.Time
}

// StartSpan implements Collector.
func (l *Log) StartSpan(name string) Span {
	l.mu.Lock()
	fmt.Fprintf(l.w, "%13s %*s> %s\n", l.offset(), 2*l.depth, "", name)
	l.depth++
	l.mu.Unlock()
	return &logSpan{l: l, name: name, begin: time.Now()}
}

func (s *logSpan) End() {
	s.l.mu.Lock()
	if s.l.depth > 0 {
		s.l.depth--
	}
	fmt.Fprintf(s.l.w, "%13s %*s< %s (%s)\n",
		s.l.offset(), 2*s.l.depth, "", s.name,
		time.Since(s.begin).Round(time.Microsecond))
	s.l.mu.Unlock()
}

// Count implements Collector.
func (l *Log) Count(name string, delta int64) {
	l.mu.Lock()
	fmt.Fprintf(l.w, "%13s %*s%s += %d\n", l.offset(), 2*l.depth, "", name, delta)
	l.mu.Unlock()
}
