package edgecolor

import (
	"testing"
	"testing/quick"
)

// paperK16 is the 15-edge-coloring of K₁₆ printed in §IV-B of the paper
// (1-based vertices), transcribed verbatim. The construction must reproduce
// it exactly — classes in order, pairs in order.
var paperK16 = [][][2]int{
	{{1, 2}, {3, 15}, {4, 14}, {5, 13}, {6, 12}, {7, 11}, {8, 10}, {9, 16}},
	{{1, 4}, {2, 3}, {5, 15}, {6, 14}, {7, 13}, {8, 12}, {9, 11}, {10, 16}},
	{{1, 6}, {2, 5}, {3, 4}, {7, 15}, {8, 14}, {9, 13}, {10, 12}, {11, 16}},
	{{1, 8}, {2, 7}, {3, 6}, {4, 5}, {9, 15}, {10, 14}, {11, 13}, {12, 16}},
	{{1, 10}, {2, 9}, {3, 8}, {4, 7}, {5, 6}, {11, 15}, {12, 14}, {13, 16}},
	{{1, 12}, {2, 11}, {3, 10}, {4, 9}, {5, 8}, {6, 7}, {13, 15}, {14, 16}},
	{{1, 14}, {2, 13}, {3, 12}, {4, 11}, {5, 10}, {6, 9}, {7, 8}, {15, 16}},
	{{1, 16}, {2, 15}, {3, 14}, {4, 13}, {5, 12}, {6, 11}, {7, 10}, {8, 9}},
	{{1, 3}, {2, 16}, {4, 15}, {5, 14}, {6, 13}, {7, 12}, {8, 11}, {9, 10}},
	{{1, 5}, {2, 4}, {3, 16}, {6, 15}, {7, 14}, {8, 13}, {9, 12}, {10, 11}},
	{{1, 7}, {2, 6}, {3, 5}, {4, 16}, {8, 15}, {9, 14}, {10, 13}, {11, 12}},
	{{1, 9}, {2, 8}, {3, 7}, {4, 6}, {5, 16}, {10, 15}, {11, 14}, {12, 13}},
	{{1, 11}, {2, 10}, {3, 9}, {4, 8}, {5, 7}, {6, 16}, {12, 15}, {13, 14}},
	{{1, 13}, {2, 12}, {3, 11}, {4, 10}, {5, 9}, {6, 8}, {7, 16}, {14, 15}},
	{{1, 15}, {2, 14}, {3, 13}, {4, 12}, {5, 11}, {6, 10}, {7, 9}, {8, 16}},
}

func TestK16MatchesPaperListing(t *testing.T) {
	c := Complete(16)
	if got, want := len(c.Classes), len(paperK16); got != want {
		t.Fatalf("K16: %d classes, want %d", got, want)
	}
	for ci, class := range c.Classes {
		want := paperK16[ci]
		if len(class) != len(want) {
			t.Fatalf("class %d: %d pairs, want %d", ci+1, len(class), len(want))
		}
		for pi, p := range class {
			// Paper vertices are 1-based.
			if p.U+1 != want[pi][0] || p.V+1 != want[pi][1] {
				t.Errorf("class P%d pair %d: got (%d, %d), want (%d, %d)",
					ci+1, pi, p.U+1, p.V+1, want[pi][0], want[pi][1])
			}
		}
	}
}

func TestCompleteVerifiesForSmallN(t *testing.T) {
	for n := 0; n <= 64; n++ {
		c := Complete(n)
		if err := c.Verify(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestCompleteVerifiesForPaperSizes(t *testing.T) {
	// The tile counts of the paper's evaluation (16², 32², 64²).
	sizes := []int{256, 1024, 4096}
	if testing.Short() {
		sizes = sizes[:2]
	}
	for _, n := range sizes {
		c := Complete(n)
		if err := c.Verify(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if got, want := c.NumColors(), n-1; got != want {
			t.Errorf("n=%d: %d colors, want %d", n, got, want)
		}
	}
}

func TestColorCountMatchesTheorem1(t *testing.T) {
	// Theorem 1: K_n is (n−1)-edge-colorable for even n, n for odd n.
	for n := 2; n <= 60; n++ {
		c := Complete(n)
		want := n
		if n%2 == 0 {
			want = n - 1
		}
		if got := c.NumColors(); got != want {
			t.Errorf("n=%d: %d colors, want %d", n, got, want)
		}
	}
}

func TestClassSizes(t *testing.T) {
	// Even n: every class is a perfect matching (n/2 pairs).
	// Odd n: every class leaves exactly one vertex out ((n−1)/2 pairs).
	for n := 3; n <= 41; n++ {
		c := Complete(n)
		want := n / 2
		for ci, class := range c.Classes {
			if len(class) != want {
				t.Errorf("n=%d class %d: %d pairs, want %d", n, ci, len(class), want)
			}
		}
	}
}

func TestEdgesCountsAllEdges(t *testing.T) {
	for n := 0; n <= 50; n++ {
		c := Complete(n)
		if got, want := c.Edges(), n*(n-1)/2; got != want {
			t.Errorf("n=%d: %d edges, want %d", n, got, want)
		}
	}
}

func TestProperColoringProperty(t *testing.T) {
	// Property: Complete(n) verifies for arbitrary n. quick feeds byte-sized
	// n so sizes stay tractable while covering odd/even/tiny cases.
	f := func(raw uint8) bool {
		n := int(raw)%150 + 2
		return Complete(n).Verify() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVerifyRejectsDuplicateEdge(t *testing.T) {
	c := Complete(8)
	c.Classes[1][0] = c.Classes[0][0]
	if err := c.Verify(); err == nil {
		t.Error("Verify accepted a coloring with a duplicated edge")
	}
}

func TestVerifyRejectsSharedVertexInClass(t *testing.T) {
	c := Complete(8)
	// Force two pairs of class 0 to share a vertex.
	c.Classes[0][1] = Pair{U: c.Classes[0][0].U, V: 7}
	if err := c.Verify(); err == nil {
		t.Error("Verify accepted a class with a repeated vertex")
	}
}

func TestVerifyRejectsWrongClassCount(t *testing.T) {
	c := Complete(8)
	c.Classes = c.Classes[:len(c.Classes)-1]
	if err := c.Verify(); err == nil {
		t.Error("Verify accepted a coloring missing a class")
	}
}

func TestVerifyRejectsUnnormalisedPair(t *testing.T) {
	c := Complete(8)
	p := c.Classes[0][0]
	c.Classes[0][0] = Pair{U: p.V, V: p.U} // reversed: U > V
	if err := c.Verify(); err == nil {
		t.Error("Verify accepted a pair with U > V")
	}
}

func TestVerifyRejectsOutOfRangeVertex(t *testing.T) {
	c := Complete(8)
	c.Classes[0][0] = Pair{U: 0, V: 8}
	if err := c.Verify(); err == nil {
		t.Error("Verify accepted a vertex ≥ n")
	}
}

func TestTinyGraphs(t *testing.T) {
	if c := Complete(0); c.NumColors() != 0 {
		t.Errorf("K0: %d classes, want 0", c.NumColors())
	}
	if c := Complete(1); c.NumColors() != 0 {
		t.Errorf("K1: %d classes, want 0", c.NumColors())
	}
	c := Complete(2)
	if c.NumColors() != 1 || len(c.Classes[0]) != 1 || c.Classes[0][0] != (Pair{U: 0, V: 1}) {
		t.Errorf("K2: got %+v", c.Classes)
	}
}

func TestCompletePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Complete(-1) did not panic")
		}
	}()
	Complete(-1)
}

func BenchmarkComplete1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Complete(1024)
	}
}

func BenchmarkComplete4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Complete(4096)
	}
}

func BenchmarkVerify1024(b *testing.B) {
	c := Complete(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
