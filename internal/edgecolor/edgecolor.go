// Package edgecolor constructs proper edge colorings of complete graphs.
//
// The parallel approximation algorithm (paper §IV-B) swaps many tile pairs
// concurrently; two pairs may run together only if they share no tile. The
// paper invokes the classical result (its Theorem 1) that K_n is
// (n−1)-edge-colorable for even n and n-edge-colorable for odd n, and
// executes one color class per kernel launch. This package produces that
// coloring with the rotational ("circle method") construction and exactly
// reproduces the 15-coloring of K₁₆ listed in the paper: class i contains
// the pairs {u, v} ⊆ {1..n−1} with u + v ≡ 2i+1 (mod n−1), plus the pair
// (w, n) for the unique w with 2w ≡ 2i+1 (mod n−1).
package edgecolor

import (
	"errors"
	"fmt"
	"sort"
)

// ErrImproper reports a coloring that fails verification.
var ErrImproper = errors.New("edgecolor: improper coloring")

// Pair is an unordered vertex pair stored with U < V.
type Pair struct {
	U, V int
}

// Coloring is a partition of the edges of K_n into color classes, each class
// a set of pairwise-disjoint pairs (a partial matching of K_n).
type Coloring struct {
	N       int
	Classes [][]Pair
}

// Complete returns the circle-method edge coloring of K_n with vertices
// 0..n−1: n−1 classes for even n, n classes for odd n (matching the paper's
// Theorem 1). Classes are emitted in the paper's order, with the pairs of a
// class sorted by first vertex. n = 0 or 1 yields zero classes.
func Complete(n int) *Coloring {
	if n < 0 {
		panic(fmt.Sprintf("edgecolor: Complete(%d)", n))
	}
	c := &Coloring{N: n}
	if n < 2 {
		return c
	}
	if n == 2 {
		c.Classes = [][]Pair{{{U: 0, V: 1}}}
		return c
	}
	if n%2 == 0 {
		// Even n: vertices 0..m−1 on a circle (m = n−1, odd) plus the fixed
		// vertex n−1. Paper class i (1-based, 1..m) holds 1-based pairs with
		// u+v ≡ 2i+1 (mod m); in 0-based labels the sum shifts by 2.
		m := n - 1
		for i := 1; i <= m; i++ {
			sigma := ((2*i-1)%m + m) % m // 0-based residue of the class
			c.Classes = append(c.Classes, classForSum(n, m, sigma, true))
		}
		return c
	}
	// Odd n: no fixed vertex; n classes, the vertex with 2w ≡ σ (mod n)
	// sits the round out.
	for i := 1; i <= n; i++ {
		sigma := ((2*i-1)%n + n) % n
		c.Classes = append(c.Classes, classForSum(n, n, sigma, false))
	}
	return c
}

// classForSum builds one color class: all pairs {u, v} of circle vertices
// 0..m−1 with u+v ≡ sigma (mod m); the self-paired vertex (2w ≡ sigma) is
// matched with the fixed vertex n−1 when one exists (even n), and rests
// otherwise (odd n).
func classForSum(n, m, sigma int, hasFixed bool) []Pair {
	var out []Pair
	for u := 0; u < m; u++ {
		v := ((sigma-u)%m + m) % m
		switch {
		case u < v:
			out = append(out, Pair{U: u, V: v})
		case u == v && hasFixed:
			out = append(out, Pair{U: u, V: n - 1})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].U < out[b].U })
	return out
}

// NumColors returns the number of color classes.
func (c *Coloring) NumColors() int { return len(c.Classes) }

// Edges returns the total number of edges across all classes.
func (c *Coloring) Edges() int {
	n := 0
	for _, cl := range c.Classes {
		n += len(cl)
	}
	return n
}

// Verify checks that c is a proper edge coloring of K_n: every pair is
// normalised and in range, no vertex appears twice within a class, every
// edge of K_n appears exactly once overall, and the class count matches
// Theorem 1 (n−1 for even n ≥ 2, n for odd n ≥ 3).
func (c *Coloring) Verify() error {
	want := 0
	switch {
	case c.N >= 2 && c.N%2 == 0:
		want = c.N - 1
	case c.N >= 3:
		want = c.N
	}
	if len(c.Classes) != want {
		return fmt.Errorf("edgecolor: %d classes for n=%d, want %d: %w", len(c.Classes), c.N, want, ErrImproper)
	}
	seen := make(map[Pair]int)
	for ci, cl := range c.Classes {
		used := make(map[int]bool, 2*len(cl))
		for _, p := range cl {
			if p.U < 0 || p.V >= c.N || p.U >= p.V {
				return fmt.Errorf("edgecolor: class %d has invalid pair (%d, %d): %w", ci, p.U, p.V, ErrImproper)
			}
			if used[p.U] || used[p.V] {
				return fmt.Errorf("edgecolor: class %d reuses a vertex in pair (%d, %d): %w", ci, p.U, p.V, ErrImproper)
			}
			used[p.U], used[p.V] = true, true
			if prev, dup := seen[p]; dup {
				return fmt.Errorf("edgecolor: edge (%d, %d) in classes %d and %d: %w", p.U, p.V, prev, ci, ErrImproper)
			}
			seen[p] = ci
		}
	}
	if wantEdges := c.N * (c.N - 1) / 2; len(seen) != wantEdges {
		return fmt.Errorf("edgecolor: %d distinct edges, want %d: %w", len(seen), wantEdges, ErrImproper)
	}
	return nil
}
