package dbmosaic

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/synth"
	"repro/internal/tile"
)

func TestSelfDatabaseGivesZeroError(t *testing.T) {
	// A database containing the target's own tiles reproduces it exactly.
	target := synth.MustGenerate(synth.Lena, 64)
	db, err := NewDatabase(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddImage(target); err != nil {
		t.Fatal(err)
	}
	res, err := db.Generate(target, metric.L1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalError != 0 {
		t.Errorf("self-database error %d", res.TotalError)
	}
	if !res.Mosaic.Equal(target) {
		t.Error("self-database mosaic differs from target")
	}
}

func TestLargerDatabaseNeverWorse(t *testing.T) {
	// Adding tiles can only improve (or keep) every per-position minimum.
	target := synth.MustGenerate(synth.Sailboat, 64)
	db, err := NewDatabase(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddImage(synth.MustGenerate(synth.Plasma, 64)); err != nil {
		t.Fatal(err)
	}
	small, err := db.Generate(target, metric.L1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddImage(synth.MustGenerate(synth.Lena, 64)); err != nil {
		t.Fatal(err)
	}
	if err := db.AddImage(synth.MustGenerate(synth.Peppers, 64)); err != nil {
		t.Fatal(err)
	}
	large, err := db.Generate(target, metric.L1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if large.TotalError > small.TotalError {
		t.Errorf("larger database got worse: %d > %d", large.TotalError, small.TotalError)
	}
}

func TestChoicesAreNearestNeighbours(t *testing.T) {
	target := synth.MustGenerate(synth.Baboon, 32)
	db, _ := NewDatabase(8)
	if err := db.AddImage(synth.MustGenerate(synth.Lena, 32)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Generate(target, metric.L1, nil)
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := tile.NewGrid(target, 8)
	for v, c := range res.Choice {
		chosen := metric.TileError(db.Tile(c).Pix, grid.Tile(v).Pix, metric.L1)
		for i := 0; i < db.Len(); i++ {
			if alt := metric.TileError(db.Tile(i).Pix, grid.Tile(v).Pix, metric.L1); alt < chosen {
				t.Fatalf("position %d: chose tile %d (err %d) but tile %d has %d", v, c, chosen, i, alt)
			}
		}
	}
}

func TestSerialAndDeviceAgree(t *testing.T) {
	target := synth.MustGenerate(synth.Peppers, 64)
	db, _ := NewDatabase(8)
	if err := db.AddImage(synth.MustGenerate(synth.Barbara, 64)); err != nil {
		t.Fatal(err)
	}
	serial, err := db.Generate(target, metric.L1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := db.Generate(target, metric.L1, cuda.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalError != parallel.TotalError || !serial.Mosaic.Equal(parallel.Mosaic) {
		t.Error("device search disagrees with serial search")
	}
}

func TestDatabaseBeatsRearrangementWithRichDatabase(t *testing.T) {
	// The paper's positioning: with repetition allowed and a rich database
	// the classical method reaches lower error than any bijective
	// rearrangement of a single image's tiles.
	target := synth.MustGenerate(synth.Sailboat, 64)
	input := synth.MustGenerate(synth.Lena, 64)
	matched, err := hist.Match(input, target)
	if err != nil {
		t.Fatal(err)
	}

	// Rearrangement error: best possible (exact matching) on the single
	// input — compute via the identity that DB search with bijection would
	// equal LAP; use a local search bound instead: DB with only the input's
	// tiles but repetition allowed is already ≤ any bijection.
	db, _ := NewDatabase(8)
	if err := db.AddImage(matched); err != nil {
		t.Fatal(err)
	}
	withRepetition, err := db.Generate(target, metric.L1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Any bijective rearrangement's error is ≥ the per-position minima sum.
	inGrid, _ := tile.NewGrid(matched, 8)
	tgtGrid, _ := tile.NewGrid(target, 8)
	costs, err := metric.BuildSerial(inGrid, tgtGrid, metric.L1)
	if err != nil {
		t.Fatal(err)
	}
	var lowerBound int64
	for v := 0; v < costs.S; v++ {
		best := costs.At(0, v)
		for u := 1; u < costs.S; u++ {
			if c := costs.At(u, v); c < best {
				best = c
			}
		}
		lowerBound += int64(best)
	}
	if withRepetition.TotalError != lowerBound {
		t.Errorf("repetition-allowed error %d != per-position minima %d", withRepetition.TotalError, lowerBound)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewDatabase(0); err == nil {
		t.Error("accepted zero tile size")
	}
	db, _ := NewDatabase(8)
	if err := db.AddTile(imgutil.NewGray(4, 4)); err == nil {
		t.Error("accepted wrong-size tile")
	}
	if err := db.AddImage(imgutil.NewGray(12, 12)); err == nil {
		t.Error("accepted indivisible image")
	}
	target := synth.MustGenerate(synth.Lena, 64)
	if _, err := db.Generate(target, metric.L1, nil); err == nil {
		t.Error("accepted empty database")
	}
	if err := db.AddTile(imgutil.NewGray(8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Generate(target, metric.Metric(9), nil); err == nil {
		t.Error("accepted invalid metric")
	}
	if _, err := db.Generate(imgutil.NewGray(10, 10), metric.L1, nil); err == nil {
		t.Error("accepted indivisible target")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if got := db.Tile(0); got.W != 8 {
		t.Error("Tile returned wrong geometry")
	}
}

func TestTilePanicsOutOfRange(t *testing.T) {
	db, _ := NewDatabase(4)
	defer func() {
		if recover() == nil {
			t.Error("Tile out of range did not panic")
		}
	}()
	db.Tile(0)
}

func BenchmarkGenerate1024Tiles(b *testing.B) {
	target := synth.MustGenerate(synth.Sailboat, 256)
	db, _ := NewDatabase(16)
	for _, s := range []synth.Scene{synth.Lena, synth.Peppers, synth.Barbara, synth.Plasma} {
		if err := db.AddImage(synth.MustGenerate(s, 256)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Generate(target, metric.L1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
