// Package dbmosaic implements the classical database-driven photomosaic the
// paper's introduction describes and contrasts with its own method (and
// shows as Figure 1): divide the target into subimages, pick for each the
// most similar image from a database of small images (reuse allowed), and
// assemble.
//
// Unlike the paper's rearrangement method there is no bijection constraint,
// so per-tile errors are independent nearest-neighbour lookups. The package
// exists to reproduce Figure 1 and to serve as the conceptual baseline the
// paper positions itself against: with a rich database it can beat the
// rearrangement method on error (it may use a good tile many times), at the
// cost of needing a database at all.
package dbmosaic

import (
	"errors"
	"fmt"

	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/tile"
)

// ErrDatabase reports an unusable database or query.
var ErrDatabase = errors.New("dbmosaic: invalid database")

// Database is a flat collection of M×M grayscale tiles.
type Database struct {
	M     int
	tiles []uint8 // tile i at [i·M², (i+1)·M²)
}

// NewDatabase returns an empty database of m×m tiles.
func NewDatabase(m int) (*Database, error) {
	if m <= 0 {
		return nil, fmt.Errorf("dbmosaic: tile size %d: %w", m, ErrDatabase)
	}
	return &Database{M: m}, nil
}

// Len returns the number of tiles in the database.
func (d *Database) Len() int { return len(d.tiles) / (d.M * d.M) }

// AddTile appends one M×M image as a database tile.
func (d *Database) AddTile(img *imgutil.Gray) error {
	if img.W != d.M || img.H != d.M {
		return fmt.Errorf("dbmosaic: tile %dx%d in a database of %d×%d tiles: %w", img.W, img.H, d.M, d.M, ErrDatabase)
	}
	d.tiles = append(d.tiles, img.Pix...)
	return nil
}

// AddImage splits img into M×M tiles and adds them all — the usual way of
// ingesting a source collection. The image dimensions must be multiples
// of M.
func (d *Database) AddImage(img *imgutil.Gray) error {
	g, err := tile.NewGrid(img, d.M)
	if err != nil {
		return fmt.Errorf("dbmosaic: %w", err)
	}
	d.tiles = append(d.tiles, g.Flatten()...)
	return nil
}

// Tile returns a copy of database tile i.
func (d *Database) Tile(i int) *imgutil.Gray {
	if i < 0 || i >= d.Len() {
		panic(fmt.Sprintf("dbmosaic: Tile(%d) of %d", i, d.Len()))
	}
	m2 := d.M * d.M
	out := imgutil.NewGray(d.M, d.M)
	copy(out.Pix, d.tiles[i*m2:(i+1)*m2])
	return out
}

// Result is the output of Generate.
type Result struct {
	Mosaic *imgutil.Gray
	// Choice[v] is the database tile placed at target position v.
	Choice []int
	// TotalError is the summed per-tile error of the chosen tiles.
	TotalError int64
}

// Generate builds the database mosaic of target: every target tile receives
// its nearest database tile under the metric (tiles may repeat). dev, when
// non-nil, parallelises the per-position searches.
func (d *Database) Generate(target *imgutil.Gray, met metric.Metric, dev *cuda.Device) (*Result, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("dbmosaic: empty database: %w", ErrDatabase)
	}
	if !met.Valid() {
		return nil, fmt.Errorf("dbmosaic: invalid metric %v: %w", met, ErrDatabase)
	}
	grid, err := tile.NewGrid(target, d.M)
	if err != nil {
		return nil, fmt.Errorf("dbmosaic: %w", err)
	}
	s := grid.S()
	m2 := d.M * d.M
	ftgt := grid.Flatten()
	choice := make([]int, s)
	errs := make([]int64, s)

	searchOne := func(v int) {
		tv := ftgt[v*m2 : (v+1)*m2]
		best := metric.Cost(1<<31 - 1)
		bestI := 0
		for i := 0; i < d.Len(); i++ {
			c := metric.TileError(d.tiles[i*m2:(i+1)*m2], tv, met)
			if c < best {
				best = c
				bestI = i
			}
		}
		choice[v] = bestI
		errs[v] = int64(best)
	}
	if dev != nil {
		dev.LaunchRange(s, searchOne)
	} else {
		for v := 0; v < s; v++ {
			searchOne(v)
		}
	}

	out := imgutil.NewGray(target.W, target.H)
	var total int64
	for v := 0; v < s; v++ {
		x, y := grid.Origin(v)
		src := d.tiles[choice[v]*m2 : (choice[v]+1)*m2]
		for r := 0; r < d.M; r++ {
			copy(out.Pix[(y+r)*out.W+x:(y+r)*out.W+x+d.M], src[r*d.M:(r+1)*d.M])
		}
		total += errs[v]
	}
	return &Result{Mosaic: out, Choice: choice, TotalError: total}, nil
}
