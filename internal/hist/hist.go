// Package hist implements intensity histograms, histogram equalization and
// histogram matching (specification) for 8-bit images.
//
// The paper (§II) adjusts "the distribution of an input image to that of a
// target image using the histogram equalization" before any tiles are
// rearranged: that operation — equalize the input, then push it through the
// inverse of the target's equalization — is classical histogram *matching*.
// Both the plain equalization and the matching transform are provided; the
// mosaic pipeline uses Match.
package hist

import (
	"errors"
	"fmt"

	"repro/internal/imgutil"
)

// Levels is the number of intensity levels of the 8-bit data model.
const Levels = 256

// ErrEmpty reports an operation on an image or histogram with no mass.
var ErrEmpty = errors.New("hist: empty histogram")

// ErrGeometry reports an image whose declared dimensions do not describe its
// pixel buffer (non-positive sides, or a buffer of the wrong length).
var ErrGeometry = errors.New("hist: invalid image geometry")

// checkGray rejects images whose W×H does not match the pixel buffer, so the
// transforms below never index or allocate from inconsistent geometry.
func checkGray(img *imgutil.Gray, role string) error {
	if img == nil || img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H {
		return fmt.Errorf("hist: %s image: %w", role, ErrGeometry)
	}
	return nil
}

func checkRGB(img *imgutil.RGB, role string) error {
	if img == nil || img.W <= 0 || img.H <= 0 || len(img.Pix) != 3*img.W*img.H {
		return fmt.Errorf("hist: %s image: %w", role, ErrGeometry)
	}
	return nil
}

// Histogram counts pixels per intensity level.
type Histogram [Levels]int64

// Of computes the histogram of img.
func Of(img *imgutil.Gray) Histogram {
	var h Histogram
	for _, p := range img.Pix {
		h[p]++
	}
	return h
}

// Total returns the pixel mass of h.
func (h *Histogram) Total() int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// CDF returns the cumulative distribution of h, normalised to [0, 1]:
// CDF()[v] is the fraction of pixels with intensity ≤ v. The last entry is
// exactly 1 for any non-empty histogram.
func (h *Histogram) CDF() ([Levels]float64, error) {
	var cdf [Levels]float64
	n := h.Total()
	if n == 0 {
		return cdf, ErrEmpty
	}
	var run int64
	for v := 0; v < Levels; v++ {
		run += h[v]
		cdf[v] = float64(run) / float64(n)
	}
	return cdf, nil
}

// Min returns the lowest occupied level, or an error for an empty histogram.
func (h *Histogram) Min() (uint8, error) {
	for v := 0; v < Levels; v++ {
		if h[v] > 0 {
			return uint8(v), nil
		}
	}
	return 0, ErrEmpty
}

// Max returns the highest occupied level, or an error for an empty histogram.
func (h *Histogram) Max() (uint8, error) {
	for v := Levels - 1; v >= 0; v-- {
		if h[v] > 0 {
			return uint8(v), nil
		}
	}
	return 0, ErrEmpty
}

// Mean returns the average intensity of h.
func (h *Histogram) Mean() (float64, error) {
	n := h.Total()
	if n == 0 {
		return 0, ErrEmpty
	}
	var sum int64
	for v, c := range h {
		sum += int64(v) * c
	}
	return float64(sum) / float64(n), nil
}

// EqualizeLUT builds the classical histogram-equalization lookup table for
// h: level v maps to round(255 · (cdf(v) − cdf_min) / (1 − cdf_min)), the
// textbook form that anchors the lowest occupied level at 0.
func EqualizeLUT(h Histogram) ([Levels]uint8, error) {
	var lut [Levels]uint8
	cdf, err := h.CDF()
	if err != nil {
		return lut, err
	}
	lo, err := h.Min()
	if err != nil {
		return lut, err
	}
	cdfMin := cdf[lo]
	den := 1 - cdfMin
	for v := 0; v < Levels; v++ {
		if den <= 0 {
			// Constant image: equalization is the identity on the single
			// occupied level; map everything there.
			lut[v] = lo
			continue
		}
		f := (cdf[v] - cdfMin) / den
		if f < 0 {
			f = 0
		}
		lut[v] = uint8(f*(Levels-1) + 0.5)
	}
	return lut, nil
}

// Equalize returns a copy of img with an equalized histogram.
func Equalize(img *imgutil.Gray) (*imgutil.Gray, error) {
	if err := checkGray(img, "input"); err != nil {
		return nil, err
	}
	lut, err := EqualizeLUT(Of(img))
	if err != nil {
		return nil, err
	}
	return applyLUT(img, lut), nil
}

// MatchLUT builds the histogram-specification lookup table that maps
// intensities distributed like src onto the distribution of dst: for each
// level v it picks the smallest target level whose CDF reaches src's CDF at
// v. Monotonicity of the result follows from both CDFs being monotone.
func MatchLUT(src, dst Histogram) ([Levels]uint8, error) {
	var lut [Levels]uint8
	sc, err := src.CDF()
	if err != nil {
		return lut, fmt.Errorf("hist: source: %w", err)
	}
	dc, err := dst.CDF()
	if err != nil {
		return lut, fmt.Errorf("hist: target: %w", err)
	}
	j := 0
	for v := 0; v < Levels; v++ {
		for j < Levels-1 && dc[j] < sc[v] {
			j++
		}
		lut[v] = uint8(j)
	}
	return lut, nil
}

// Match returns a copy of img whose intensity distribution approximates that
// of ref — the paper's §II preprocessing step.
func Match(img, ref *imgutil.Gray) (*imgutil.Gray, error) {
	if err := checkGray(img, "input"); err != nil {
		return nil, err
	}
	if err := checkGray(ref, "reference"); err != nil {
		return nil, err
	}
	lut, err := MatchLUT(Of(img), Of(ref))
	if err != nil {
		return nil, err
	}
	return applyLUT(img, lut), nil
}

// MatchRGB applies per-channel histogram matching, the color analogue used
// by the color-mosaic extension.
func MatchRGB(img, ref *imgutil.RGB) (*imgutil.RGB, error) {
	if err := checkRGB(img, "input"); err != nil {
		return nil, err
	}
	if err := checkRGB(ref, "reference"); err != nil {
		return nil, err
	}
	out := imgutil.NewRGB(img.W, img.H)
	n := img.W * img.H
	rn := ref.W * ref.H
	for ch := 0; ch < 3; ch++ {
		var hs, hd Histogram
		for i := 0; i < n; i++ {
			hs[img.Pix[3*i+ch]]++
		}
		for i := 0; i < rn; i++ {
			hd[ref.Pix[3*i+ch]]++
		}
		lut, err := MatchLUT(hs, hd)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Pix[3*i+ch] = lut[img.Pix[3*i+ch]]
		}
	}
	return out, nil
}

// applyLUT maps every pixel of img through lut into a fresh image.
func applyLUT(img *imgutil.Gray, lut [Levels]uint8) *imgutil.Gray {
	out := imgutil.NewGray(img.W, img.H)
	for i, p := range img.Pix {
		out.Pix[i] = lut[p]
	}
	return out
}

// Distance returns the L1 distance between the normalised CDFs of a and b —
// the Wasserstein-1 distance between the two intensity distributions divided
// by 255. Zero means identical distributions; used by tests to verify that
// Match actually moves the input toward the reference.
func Distance(a, b Histogram) (float64, error) {
	ca, err := a.CDF()
	if err != nil {
		return 0, err
	}
	cb, err := b.CDF()
	if err != nil {
		return 0, err
	}
	var d float64
	for v := 0; v < Levels; v++ {
		dv := ca[v] - cb[v]
		if dv < 0 {
			dv = -dv
		}
		d += dv
	}
	return d / Levels, nil
}
