package hist

import (
	"testing"
	"testing/quick"

	"repro/internal/imgutil"
	"repro/internal/synth"
)

func TestHistogramCountsAndTotal(t *testing.T) {
	g := imgutil.NewGray(2, 2)
	g.Pix = []uint8{0, 0, 7, 255}
	h := Of(g)
	if h[0] != 2 || h[7] != 1 || h[255] != 1 {
		t.Errorf("histogram wrong: h[0]=%d h[7]=%d h[255]=%d", h[0], h[7], h[255])
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
}

func TestCDFMonotoneAndEndsAtOne(t *testing.T) {
	f := func(seed uint64) bool {
		img := randomGray(seed, 12, 12)
		h := Of(img)
		cdf, err := h.CDF()
		if err != nil {
			return false
		}
		prev := 0.0
		for _, c := range cdf {
			if c < prev {
				return false
			}
			prev = c
		}
		return cdf[Levels-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFEmptyHistogram(t *testing.T) {
	var h Histogram
	if _, err := h.CDF(); err == nil {
		t.Error("CDF of empty histogram succeeded")
	}
	if _, err := h.Min(); err == nil {
		t.Error("Min of empty histogram succeeded")
	}
	if _, err := h.Max(); err == nil {
		t.Error("Max of empty histogram succeeded")
	}
	if _, err := h.Mean(); err == nil {
		t.Error("Mean of empty histogram succeeded")
	}
}

func TestMinMaxMean(t *testing.T) {
	g := imgutil.NewGray(1, 4)
	g.Pix = []uint8{10, 20, 20, 30}
	h := Of(g)
	if lo, _ := h.Min(); lo != 10 {
		t.Errorf("Min = %d", lo)
	}
	if hi, _ := h.Max(); hi != 30 {
		t.Errorf("Max = %d", hi)
	}
	if m, _ := h.Mean(); m != 20 {
		t.Errorf("Mean = %v", m)
	}
}

func TestEqualizeFlattensRamp(t *testing.T) {
	// A two-level image equalizes to {something, 255} with the top level at
	// full scale; a uniform ramp is already equalized (identity up to
	// rounding).
	ramp := imgutil.NewGray(16, 16)
	for i := range ramp.Pix {
		ramp.Pix[i] = uint8(i)
	}
	eq, err := Equalize(ramp)
	if err != nil {
		t.Fatal(err)
	}
	// Every level occupied exactly once → CDF is linear → LUT ≈ identity.
	for i, p := range eq.Pix {
		want := ramp.Pix[i]
		d := int(p) - int(want)
		if d < -1 || d > 1 {
			t.Fatalf("pixel %d: equalized ramp deviates: %d → %d", i, want, p)
		}
	}
}

func TestEqualizeConstantImage(t *testing.T) {
	g := imgutil.NewGray(4, 4)
	g.Fill(99)
	eq, err := Equalize(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range eq.Pix {
		if p != 99 {
			t.Fatalf("constant image moved under equalization: %d", p)
		}
	}
}

func TestEqualizeStretchesRange(t *testing.T) {
	// A compressed two-level image must stretch to the full range: the
	// lowest occupied level maps to 0 and the highest to 255.
	g := imgutil.NewGray(4, 4)
	for i := range g.Pix {
		if i%2 == 0 {
			g.Pix[i] = 100
		} else {
			g.Pix[i] = 110
		}
	}
	eq, err := Equalize(g)
	if err != nil {
		t.Fatal(err)
	}
	h := Of(eq)
	lo, _ := h.Min()
	hi, _ := h.Max()
	if lo != 0 || hi != 255 {
		t.Errorf("equalized range [%d, %d], want [0, 255]", lo, hi)
	}
}

func TestMatchLUTMonotone(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		a := Of(randomGray(s1, 10, 10))
		b := Of(randomGray(s2, 10, 10))
		lut, err := MatchLUT(a, b)
		if err != nil {
			return false
		}
		for v := 1; v < Levels; v++ {
			if lut[v] < lut[v-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchMovesDistributionTowardReference(t *testing.T) {
	// The paper's preprocessing: after Match, the input's distribution must
	// be much closer to the target's than before.
	input := synth.MustGenerate(synth.Airplane, 128) // bright, skewed
	target := synth.MustGenerate(synth.Sailboat, 128)
	before, err := Distance(Of(input), Of(target))
	if err != nil {
		t.Fatal(err)
	}
	matched, err := Match(input, target)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Distance(Of(matched), Of(target))
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("Match did not reduce distribution distance: before %v, after %v", before, after)
	}
	// Quantization plateaus in the 8-bit source bound how exactly the CDFs
	// can be aligned; 0.03 is well within visual equivalence.
	if after > 0.03 {
		t.Errorf("matched distribution still far from target: %v", after)
	}
}

func TestMatchToSelfIsNearIdentity(t *testing.T) {
	img := synth.MustGenerate(synth.Lena, 64)
	matched, err := Match(img, img)
	if err != nil {
		t.Fatal(err)
	}
	// Matching an image to its own histogram may relabel within plateaus
	// but the distribution must be essentially unchanged.
	d, err := Distance(Of(matched), Of(img))
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.005 {
		t.Errorf("self-match moved the distribution by %v", d)
	}
}

func TestMatchPreservesGeometry(t *testing.T) {
	a := randomGray(1, 8, 6)
	b := randomGray(2, 30, 30) // reference of different size is fine
	m, err := Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.W != a.W || m.H != a.H {
		t.Errorf("geometry changed: %dx%d", m.W, m.H)
	}
}

func TestMatchRGBPerChannel(t *testing.T) {
	a := randomRGB(3, 16, 16)
	b := randomRGB(4, 16, 16)
	m, err := MatchRGB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Each channel's distribution should approach the reference channel's.
	for ch := 0; ch < 3; ch++ {
		var hm, hb Histogram
		for i := 0; i < m.W*m.H; i++ {
			hm[m.Pix[3*i+ch]]++
			hb[b.Pix[3*i+ch]]++
		}
		d, err := Distance(hm, hb)
		if err != nil {
			t.Fatal(err)
		}
		if d > 0.02 {
			t.Errorf("channel %d: distance %v after matching", ch, d)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	a := Of(randomGray(7, 10, 10))
	b := Of(randomGray(8, 10, 10))
	dab, err := Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dba, err := Distance(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if dab != dba {
		t.Error("Distance not symmetric")
	}
	if self, _ := Distance(a, a); self != 0 {
		t.Errorf("Distance(a, a) = %v", self)
	}
	if dab < 0 || dab > 1 {
		t.Errorf("Distance out of [0, 1]: %v", dab)
	}
}

func randomGray(seed uint64, w, h int) *imgutil.Gray {
	g := imgutil.NewGray(w, h)
	s := seed | 1
	for i := range g.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		g.Pix[i] = uint8(s >> 24)
	}
	return g
}

func randomRGB(seed uint64, w, h int) *imgutil.RGB {
	m := imgutil.NewRGB(w, h)
	s := seed | 1
	for i := range m.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		m.Pix[i] = uint8(s >> 24)
	}
	return m
}

func BenchmarkMatch512(b *testing.B) {
	img := synth.MustGenerate(synth.Lena, 512)
	ref := synth.MustGenerate(synth.Sailboat, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Match(img, ref); err != nil {
			b.Fatal(err)
		}
	}
}
