package hist

import (
	"errors"
	"testing"

	"repro/internal/imgutil"
)

// buildGray constructs a possibly-hostile image directly, bypassing the
// imgutil constructors: the declared W×H and the buffer length are fuzzed
// independently, so the transforms must validate geometry themselves.
func buildGray(w, h, pixLen int) *imgutil.Gray {
	if pixLen < 0 {
		pixLen = 0
	}
	return &imgutil.Gray{W: w, H: h, Pix: make([]uint8, pixLen)}
}

// FuzzHistogramMatch hardens the §II preprocessing against malformed
// geometry: any combination of declared dimensions and buffer lengths must
// either be rejected with an error or produce a well-formed image whose
// geometry equals the input's. It must never panic or index out of range.
func FuzzHistogramMatch(f *testing.F) {
	f.Add(4, 4, 16, 4, 4, 16, uint8(7))    // consistent pair
	f.Add(0, 0, 0, 4, 4, 16, uint8(0))     // zero-sized input
	f.Add(-3, 5, 15, 4, 4, 16, uint8(1))   // negative width
	f.Add(4, 4, 15, 4, 4, 16, uint8(2))    // short buffer
	f.Add(4, 4, 17, 4, 4, 16, uint8(3))    // long buffer
	f.Add(4, 4, 16, 1<<20, 1<<20, 0, uint8(4)) // absurd reference dims
	f.Add(3, 5, 15, 5, 3, 15, uint8(5))    // non-square, still consistent
	f.Add(1, 1, 1, 1, 1, 1, uint8(255))    // minimal constant images

	f.Fuzz(func(t *testing.T, iw, ih, ilen, rw, rh, rlen int, fill uint8) {
		// Cap buffer sizes so hostile lengths don't just exhaust memory.
		const maxLen = 1 << 16
		if ilen > maxLen || rlen > maxLen {
			t.Skip()
		}
		img := buildGray(iw, ih, ilen)
		ref := buildGray(rw, rh, rlen)
		for i := range img.Pix {
			img.Pix[i] = fill + uint8(i)
		}
		for i := range ref.Pix {
			ref.Pix[i] = fill ^ uint8(i)
		}

		imgOK := iw > 0 && ih > 0 && ilen == iw*ih
		refOK := rw > 0 && rh > 0 && rlen == rw*rh

		out, err := Match(img, ref)
		if imgOK && refOK {
			if err != nil {
				t.Fatalf("Match rejected consistent %dx%d / %dx%d images: %v", iw, ih, rw, rh, err)
			}
			if out.W != iw || out.H != ih || len(out.Pix) != ilen {
				t.Fatalf("Match output geometry %dx%d/%d, want %dx%d/%d", out.W, out.H, len(out.Pix), iw, ih, ilen)
			}
		} else {
			if err == nil {
				t.Fatalf("Match accepted malformed geometry %dx%d/%d vs %dx%d/%d", iw, ih, ilen, rw, rh, rlen)
			}
			if !errors.Is(err, ErrGeometry) {
				t.Fatalf("Match error %v does not wrap ErrGeometry", err)
			}
			if out != nil {
				t.Fatal("Match returned an image alongside an error")
			}
		}

		eq, err := Equalize(img)
		if imgOK {
			if err != nil {
				t.Fatalf("Equalize rejected a consistent image: %v", err)
			}
			if eq.W != iw || eq.H != ih {
				t.Fatalf("Equalize output geometry %dx%d", eq.W, eq.H)
			}
		} else if err == nil {
			t.Fatalf("Equalize accepted malformed geometry %dx%d/%d", iw, ih, ilen)
		}

		// The color path shares the LUT machinery but indexes 3 bytes per
		// pixel; reuse the same fuzzed geometry for it.
		rgb := &imgutil.RGB{W: iw, H: ih, Pix: make([]uint8, min(3*max(ilen, 0), 3*maxLen))}
		rgbRef := &imgutil.RGB{W: rw, H: rh, Pix: make([]uint8, min(3*max(rlen, 0), 3*maxLen))}
		outRGB, err := MatchRGB(rgb, rgbRef)
		rgbOK := imgOK && len(rgb.Pix) == 3*iw*ih
		rgbRefOK := refOK && len(rgbRef.Pix) == 3*rw*rh
		if rgbOK && rgbRefOK {
			if err != nil {
				t.Fatalf("MatchRGB rejected consistent images: %v", err)
			}
			if outRGB.W != iw || outRGB.H != ih || len(outRGB.Pix) != 3*iw*ih {
				t.Fatal("MatchRGB output geometry mismatch")
			}
		} else if err == nil {
			t.Fatalf("MatchRGB accepted malformed geometry %dx%d/%d vs %dx%d/%d",
				iw, ih, len(rgb.Pix), rw, rh, len(rgbRef.Pix))
		}
	})
}
