// Package pnm implements the Netpbm PGM and PPM codecs (magic numbers P2,
// P3, P5 and P6) for 8-bit images.
//
// The standard library decodes PNG/JPEG/GIF but not PGM, while the image
// research corpus the paper draws on (USC-SIPI) ships grayscale images as
// raw PGM; this codec lets users feed real database images to the mosaic
// pipeline. Only maxval ≤ 255 is supported, matching the 8-bit data model of
// the rest of the library.
package pnm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/imgutil"
)

// ErrFormat reports a malformed or unsupported Netpbm stream.
var ErrFormat = errors.New("pnm: invalid format")

// Format identifies a Netpbm subformat.
type Format int

// Supported Netpbm subformats.
const (
	PGMPlain Format = iota // P2: ASCII grayscale
	PPMPlain               // P3: ASCII color
	PGMRaw                 // P5: binary grayscale
	PPMRaw                 // P6: binary color
)

// String returns the magic number for f.
func (f Format) String() string {
	switch f {
	case PGMPlain:
		return "P2"
	case PPMPlain:
		return "P3"
	case PGMRaw:
		return "P5"
	case PPMRaw:
		return "P6"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// header is the parsed width/height/maxval triple following the magic.
type header struct {
	format Format
	w, h   int
	maxval int
}

// readToken scans the next whitespace-delimited token, skipping '#' comments
// as required by the Netpbm grammar.
func readToken(r *bufio.Reader) (string, error) {
	var tok []byte
	inComment := false
	for {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			if len(tok) > 0 {
				// Comment terminates a token like whitespace would.
				if err := r.UnreadByte(); err != nil {
					return "", err
				}
				return string(tok), nil
			}
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\v' || b == '\f':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func readUint(r *bufio.Reader, what string, max int) (int, error) {
	tok, err := readToken(r)
	if err != nil {
		return 0, fmt.Errorf("pnm: reading %s: %w", what, err)
	}
	n := 0
	for _, c := range []byte(tok) {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("pnm: %s %q is not a number: %w", what, tok, ErrFormat)
		}
		n = n*10 + int(c-'0')
		if n > max {
			return 0, fmt.Errorf("pnm: %s %d exceeds limit %d: %w", what, n, max, ErrFormat)
		}
	}
	if len(tok) == 0 {
		return 0, fmt.Errorf("pnm: empty %s: %w", what, ErrFormat)
	}
	return n, nil
}

// maxDim bounds decoded dimensions so a corrupt header cannot trigger a
// multi-gigabyte allocation.
const maxDim = 1 << 16

func readHeader(r *bufio.Reader) (header, error) {
	var hd header
	magic, err := readToken(r)
	if err != nil {
		return hd, fmt.Errorf("pnm: reading magic: %w", err)
	}
	switch magic {
	case "P2":
		hd.format = PGMPlain
	case "P3":
		hd.format = PPMPlain
	case "P5":
		hd.format = PGMRaw
	case "P6":
		hd.format = PPMRaw
	default:
		return hd, fmt.Errorf("pnm: magic %q: %w", magic, ErrFormat)
	}
	if hd.w, err = readUint(r, "width", maxDim); err != nil {
		return hd, err
	}
	if hd.h, err = readUint(r, "height", maxDim); err != nil {
		return hd, err
	}
	if hd.w == 0 || hd.h == 0 {
		return hd, fmt.Errorf("pnm: zero dimension %dx%d: %w", hd.w, hd.h, ErrFormat)
	}
	if hd.maxval, err = readUint(r, "maxval", 99999); err != nil {
		return hd, err
	}
	if hd.maxval == 0 || hd.maxval > 65535 {
		return hd, fmt.Errorf("pnm: unsupported maxval %d (want 1..65535): %w", hd.maxval, ErrFormat)
	}
	return hd, nil
}

// wide reports whether the raw rasters of hd use two bytes per sample
// (big-endian, per the Netpbm specification for maxval > 255). Decoded
// samples are scaled onto the library's 8-bit range.
func (hd header) wide() bool { return hd.maxval > 255 }

// scale maps a sample in [0, maxval] onto [0, 255].
func scale(v, maxval int) uint8 {
	if maxval == 255 {
		return uint8(v)
	}
	return uint8((v*255 + maxval/2) / maxval)
}

// DecodeGray reads a PGM (P2 or P5) image. A color PPM stream is rejected;
// use Decode for format-agnostic reading.
func DecodeGray(r io.Reader) (*imgutil.Gray, error) {
	br := bufio.NewReader(r)
	hd, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if hd.format != PGMPlain && hd.format != PGMRaw {
		return nil, fmt.Errorf("pnm: %v is not grayscale: %w", hd.format, ErrFormat)
	}
	return decodeGrayBody(br, hd)
}

func decodeGrayBody(br *bufio.Reader, hd header) (*imgutil.Gray, error) {
	img := imgutil.NewGray(hd.w, hd.h)
	if hd.format == PGMRaw {
		// The single whitespace byte after maxval was already consumed by
		// the token scanner.
		if err := readRaster(br, img.Pix, hd); err != nil {
			return nil, err
		}
		return img, nil
	}
	for i := range img.Pix {
		v, err := readUint(br, "sample", hd.maxval)
		if err != nil {
			return nil, err
		}
		img.Pix[i] = scale(v, hd.maxval)
	}
	return img, nil
}

// readRaster fills dst with the raw raster of hd: one byte per sample up to
// maxval 255, two big-endian bytes above, scaled onto 0..255 either way.
func readRaster(br *bufio.Reader, dst []uint8, hd header) error {
	if hd.wide() {
		raw := make([]uint8, 2*len(dst))
		if _, err := io.ReadFull(br, raw); err != nil {
			return fmt.Errorf("pnm: raster: %w", err)
		}
		for i := range dst {
			v := int(raw[2*i])<<8 | int(raw[2*i+1])
			if v > hd.maxval {
				return fmt.Errorf("pnm: sample %d exceeds maxval %d: %w", v, hd.maxval, ErrFormat)
			}
			dst[i] = scale(v, hd.maxval)
		}
		return nil
	}
	if _, err := io.ReadFull(br, dst); err != nil {
		return fmt.Errorf("pnm: raster: %w", err)
	}
	if hd.maxval != 255 {
		for i, p := range dst {
			if int(p) > hd.maxval {
				return fmt.Errorf("pnm: sample %d exceeds maxval %d: %w", p, hd.maxval, ErrFormat)
			}
			dst[i] = scale(int(p), hd.maxval)
		}
	}
	return nil
}

// DecodeRGB reads a PPM (P3 or P6) image. A grayscale PGM stream is rejected.
func DecodeRGB(r io.Reader) (*imgutil.RGB, error) {
	br := bufio.NewReader(r)
	hd, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if hd.format != PPMPlain && hd.format != PPMRaw {
		return nil, fmt.Errorf("pnm: %v is not color: %w", hd.format, ErrFormat)
	}
	return decodeRGBBody(br, hd)
}

func decodeRGBBody(br *bufio.Reader, hd header) (*imgutil.RGB, error) {
	img := imgutil.NewRGB(hd.w, hd.h)
	if hd.format == PPMRaw {
		if err := readRaster(br, img.Pix, hd); err != nil {
			return nil, err
		}
		return img, nil
	}
	for i := range img.Pix {
		v, err := readUint(br, "sample", hd.maxval)
		if err != nil {
			return nil, err
		}
		img.Pix[i] = scale(v, hd.maxval)
	}
	return img, nil
}

// Decode reads any supported Netpbm stream. Grayscale streams come back as
// *imgutil.Gray, color streams as *imgutil.RGB.
func Decode(r io.Reader) (any, error) {
	br := bufio.NewReader(r)
	hd, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	switch hd.format {
	case PGMPlain, PGMRaw:
		return decodeGrayBody(br, hd)
	default:
		return decodeRGBBody(br, hd)
	}
}

// EncodeGray writes img in the given grayscale format (PGMPlain or PGMRaw).
func EncodeGray(w io.Writer, img *imgutil.Gray, f Format) error {
	bw := bufio.NewWriter(w)
	switch f {
	case PGMRaw:
		if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", img.W, img.H); err != nil {
			return err
		}
		if _, err := bw.Write(img.Pix); err != nil {
			return err
		}
	case PGMPlain:
		if _, err := fmt.Fprintf(bw, "P2\n%d %d\n255\n", img.W, img.H); err != nil {
			return err
		}
		if err := writePlainSamples(bw, img.Pix); err != nil {
			return err
		}
	default:
		return fmt.Errorf("pnm: EncodeGray with color format %v: %w", f, ErrFormat)
	}
	return bw.Flush()
}

// EncodeRGB writes img in the given color format (PPMPlain or PPMRaw).
func EncodeRGB(w io.Writer, img *imgutil.RGB, f Format) error {
	bw := bufio.NewWriter(w)
	switch f {
	case PPMRaw:
		if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", img.W, img.H); err != nil {
			return err
		}
		if _, err := bw.Write(img.Pix); err != nil {
			return err
		}
	case PPMPlain:
		if _, err := fmt.Fprintf(bw, "P3\n%d %d\n255\n", img.W, img.H); err != nil {
			return err
		}
		if err := writePlainSamples(bw, img.Pix); err != nil {
			return err
		}
	default:
		return fmt.Errorf("pnm: EncodeRGB with grayscale format %v: %w", f, ErrFormat)
	}
	return bw.Flush()
}

// writePlainSamples emits decimal samples, at most 17 per line so lines stay
// under the Netpbm 70-character recommendation.
func writePlainSamples(bw *bufio.Writer, pix []uint8) error {
	for i, p := range pix {
		sep := byte(' ')
		if i%17 == 16 || i == len(pix)-1 {
			sep = '\n'
		}
		if _, err := fmt.Fprintf(bw, "%d%c", p, sep); err != nil {
			return err
		}
	}
	return nil
}

// LoadGray reads a PGM file from disk.
func LoadGray(path string) (*imgutil.Gray, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeGray(f)
}

// SaveGray writes img to path as binary PGM (P5).
func SaveGray(path string, img *imgutil.Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeGray(f, img, PGMRaw); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRGB reads a PPM file from disk.
func LoadRGB(path string) (*imgutil.RGB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeRGB(f)
}

// SaveRGB writes img to path as binary PPM (P6).
func SaveRGB(path string, img *imgutil.RGB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeRGB(f, img, PPMRaw); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
