package pnm

import (
	"bytes"
	"testing"

	"repro/internal/imgutil"
)

// FuzzDecode hardens the codec against hostile streams: any input must
// either fail cleanly or produce an image that re-encodes and re-decodes to
// identical pixels. Run with `go test -fuzz FuzzDecode ./internal/pnm`;
// the seeds below always run as part of the normal suite.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	img := imgutil.NewGray(3, 2)
	img.Pix = []uint8{0, 127, 255, 1, 2, 3}
	if err := EncodeGray(&buf, img, PGMRaw); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := EncodeGray(&buf, img, PGMPlain); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P2\n2 2\n255\n0 1 2 3"))
	f.Add([]byte("P5\n1 1\n255\nx"))
	f.Add([]byte("P6\n1 1\n255\nabc"))
	f.Add([]byte("P3\n1 1\n255\n1 2 3"))
	f.Add([]byte("P2 # comment\n1 1\n100\n50"))
	f.Add([]byte("P9\n"))
	f.Add([]byte(""))
	f.Add([]byte("P2\n65536 65536\n255\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // clean rejection is fine
		}
		switch img := v.(type) {
		case *imgutil.Gray:
			if img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H {
				t.Fatalf("decoded gray image has inconsistent geometry %dx%d/%d", img.W, img.H, len(img.Pix))
			}
			var out bytes.Buffer
			if err := EncodeGray(&out, img, PGMRaw); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			back, err := DecodeGray(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !img.Equal(back) {
				t.Fatal("gray round trip changed pixels")
			}
		case *imgutil.RGB:
			if img.W <= 0 || img.H <= 0 || len(img.Pix) != 3*img.W*img.H {
				t.Fatalf("decoded color image has inconsistent geometry %dx%d/%d", img.W, img.H, len(img.Pix))
			}
			var out bytes.Buffer
			if err := EncodeRGB(&out, img, PPMRaw); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			back, err := DecodeRGB(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !img.Equal(back) {
				t.Fatal("color round trip changed pixels")
			}
		default:
			t.Fatalf("Decode returned %T", v)
		}
	})
}
