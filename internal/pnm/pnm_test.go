package pnm

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/imgutil"
)

func randomGray(seed uint64, w, h int) *imgutil.Gray {
	g := imgutil.NewGray(w, h)
	s := seed | 1
	for i := range g.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		g.Pix[i] = uint8(s)
	}
	return g
}

func randomRGB(seed uint64, w, h int) *imgutil.RGB {
	m := imgutil.NewRGB(w, h)
	s := seed | 1
	for i := range m.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		m.Pix[i] = uint8(s)
	}
	return m
}

func TestGrayRoundTripBothFormats(t *testing.T) {
	img := randomGray(42, 13, 7)
	for _, f := range []Format{PGMPlain, PGMRaw} {
		var buf bytes.Buffer
		if err := EncodeGray(&buf, img, f); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got, err := DecodeGray(&buf)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !img.Equal(got) {
			t.Errorf("%v: round trip changed pixels", f)
		}
	}
}

func TestRGBRoundTripBothFormats(t *testing.T) {
	img := randomRGB(43, 9, 5)
	for _, f := range []Format{PPMPlain, PPMRaw} {
		var buf bytes.Buffer
		if err := EncodeRGB(&buf, img, f); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got, err := DecodeRGB(&buf)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !img.Equal(got) {
			t.Errorf("%v: round trip changed pixels", f)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, rw, rh uint8) bool {
		w := int(rw)%16 + 1
		h := int(rh)%16 + 1
		img := randomGray(seed, w, h)
		var buf bytes.Buffer
		if err := EncodeGray(&buf, img, PGMRaw); err != nil {
			return false
		}
		got, err := DecodeGray(&buf)
		return err == nil && img.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeHandlesComments(t *testing.T) {
	src := "P2 # magic comment\n# full line comment\n2 2\n# another\n255\n0 50\n100 255\n"
	img, err := DecodeGray(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 50, 100, 255}
	for i, p := range want {
		if img.Pix[i] != p {
			t.Errorf("pix[%d] = %d, want %d", i, img.Pix[i], p)
		}
	}
}

func TestDecodeCommentTerminatesToken(t *testing.T) {
	// A comment directly after a number must terminate it.
	src := "P2\n2#c\n1 255 7 9\n"
	img, err := DecodeGray(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 2 || img.H != 1 || img.Pix[0] != 7 || img.Pix[1] != 9 {
		t.Errorf("got %dx%d %v", img.W, img.H, img.Pix)
	}
}

func TestDecodeScalesMaxval(t *testing.T) {
	// maxval 100 → samples scale onto 0..255.
	src := "P2\n2 1\n100\n0 100\n"
	img, err := DecodeGray(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if img.Pix[0] != 0 || img.Pix[1] != 255 {
		t.Errorf("scaled pixels = %v, want [0 255]", img.Pix)
	}
	// Midpoint rounds.
	src = "P2\n1 1\n100\n50\n"
	img, err = DecodeGray(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if img.Pix[0] != 128 { // (50*255 + 50) / 100 = 128
		t.Errorf("midpoint = %d, want 128", img.Pix[0])
	}
}

func TestDecodeRejectsMalformedStreams(t *testing.T) {
	cases := map[string]string{
		"bad-magic":        "P9\n2 2\n255\n0 0 0 0",
		"zero-width":       "P2\n0 2\n255\n",
		"huge-width":       "P2\n99999999 2\n255\n",
		"missing-maxval":   "P2\n2 2\n",
		"maxval-too-big":   "P2\n2 2\n70000\n0 0 0 0",
		"maxval-zero":      "P2\n2 2\n0\n0 0 0 0",
		"short-raster":     "P2\n2 2\n255\n0 0 0",
		"sample-too-big":   "P2\n1 1\n10\n11\n",
		"non-numeric":      "P2\nab 2\n255\n",
		"empty":            "",
		"truncated-binary": "P5\n4 4\n255\nab",
	}
	for name, src := range cases {
		if _, err := DecodeGray(strings.NewReader(src)); err == nil {
			t.Errorf("%s: decode accepted %q", name, src)
		}
	}
}

func TestDecodeGrayRejectsColor(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeRGB(&buf, randomRGB(1, 2, 2), PPMRaw); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGray(&buf); err == nil {
		t.Error("DecodeGray accepted a PPM stream")
	}
}

func TestDecodeRGBRejectsGray(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeGray(&buf, randomGray(1, 2, 2), PGMRaw); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRGB(&buf); err == nil {
		t.Error("DecodeRGB accepted a PGM stream")
	}
}

func TestGenericDecode(t *testing.T) {
	var buf bytes.Buffer
	gray := randomGray(5, 3, 3)
	if err := EncodeGray(&buf, gray, PGMRaw); err != nil {
		t.Fatal(err)
	}
	v, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := v.(*imgutil.Gray); !ok || !g.Equal(gray) {
		t.Errorf("Decode returned %T", v)
	}
	buf.Reset()
	color := randomRGB(6, 3, 3)
	if err := EncodeRGB(&buf, color, PPMPlain); err != nil {
		t.Fatal(err)
	}
	v, err = Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := v.(*imgutil.RGB); !ok || !c.Equal(color) {
		t.Errorf("Decode returned %T", v)
	}
}

func TestEncodeRejectsWrongFamily(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeGray(&buf, randomGray(1, 2, 2), PPMRaw); err == nil {
		t.Error("EncodeGray accepted a color format")
	}
	if err := EncodeRGB(&buf, randomRGB(1, 2, 2), PGMPlain); err == nil {
		t.Error("EncodeRGB accepted a gray format")
	}
}

func TestPlainEncodingLineLength(t *testing.T) {
	var buf bytes.Buffer
	img := imgutil.NewGray(64, 64)
	img.Fill(255)
	if err := EncodeGray(&buf, img, PGMPlain); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 70 {
			t.Fatalf("line %d is %d chars (>70): %q", i, len(line), line)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gp := filepath.Join(dir, "x.pgm")
	img := randomGray(9, 16, 16)
	if err := SaveGray(gp, img); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGray(gp)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Error("file round trip changed pixels")
	}
	cp := filepath.Join(dir, "x.ppm")
	cimg := randomRGB(9, 8, 8)
	if err := SaveRGB(cp, cimg); err != nil {
		t.Fatal(err)
	}
	cgot, err := LoadRGB(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !cimg.Equal(cgot) {
		t.Error("color file round trip changed pixels")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadGray(filepath.Join(t.TempDir(), "nope.pgm")); err == nil {
		t.Error("LoadGray of a missing file succeeded")
	}
}

func TestFormatString(t *testing.T) {
	if PGMPlain.String() != "P2" || PPMPlain.String() != "P3" || PGMRaw.String() != "P5" || PPMRaw.String() != "P6" {
		t.Error("Format.String mismatch")
	}
	if !strings.Contains(Format(99).String(), "99") {
		t.Error("unknown format string")
	}
}

func BenchmarkEncodeRaw512(b *testing.B) {
	img := randomGray(1, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := EncodeGray(&buf, img, PGMRaw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRaw512(b *testing.B) {
	var buf bytes.Buffer
	if err := EncodeGray(&buf, randomGray(1, 512, 512), PGMRaw); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeGray(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecode16BitRawGray(t *testing.T) {
	// maxval 65535, big-endian samples: 0x0000 → 0, 0xffff → 255,
	// 0x8000 → round(32768·255/65535) = 128.
	src := append([]byte("P5\n3 1\n65535\n"), 0x00, 0x00, 0xff, 0xff, 0x80, 0x00)
	img, err := DecodeGray(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if img.Pix[0] != 0 || img.Pix[1] != 255 || img.Pix[2] != 128 {
		t.Errorf("16-bit samples decoded to %v, want [0 255 128]", img.Pix)
	}
}

func TestDecode16BitPlainGray(t *testing.T) {
	img, err := DecodeGray(strings.NewReader("P2\n2 1\n1000\n0 1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if img.Pix[0] != 0 || img.Pix[1] != 255 {
		t.Errorf("plain 16-bit scaled to %v", img.Pix)
	}
}

func TestDecode16BitRawRGB(t *testing.T) {
	src := append([]byte("P6\n1 1\n65535\n"),
		0xff, 0xff, 0x00, 0x00, 0x80, 0x00)
	img, err := DecodeRGB(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	r, g, b := img.At(0, 0)
	if r != 255 || g != 0 || b != 128 {
		t.Errorf("16-bit RGB decoded to (%d, %d, %d)", r, g, b)
	}
}

func TestDecode16BitRejectsBadStreams(t *testing.T) {
	// Truncated wide raster.
	src := append([]byte("P5\n2 1\n65535\n"), 0x00, 0x01, 0x02)
	if _, err := DecodeGray(bytes.NewReader(src)); err == nil {
		t.Error("accepted truncated 16-bit raster")
	}
	// Sample above a sub-16-bit maxval.
	src = append([]byte("P5\n1 1\n1000\n"), 0x04, 0x00) // 1024 > 1000
	if _, err := DecodeGray(bytes.NewReader(src)); err == nil {
		t.Error("accepted sample above maxval")
	}
	// maxval above 65535.
	if _, err := DecodeGray(strings.NewReader("P2\n1 1\n70000\n1\n")); err == nil {
		t.Error("accepted maxval > 65535")
	}
}
