package tile

import (
	"testing"
	"testing/quick"

	"repro/internal/imgutil"
	"repro/internal/perm"
)

func ramp(w, h int) *imgutil.Gray {
	g := imgutil.NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = uint8(i)
	}
	return g
}

func TestNewGridGeometry(t *testing.T) {
	g, err := NewGrid(ramp(16, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 4 || g.Rows != 2 || g.S() != 8 {
		t.Errorf("cols=%d rows=%d S=%d", g.Cols, g.Rows, g.S())
	}
}

func TestNewGridRejectsBadGeometry(t *testing.T) {
	img := ramp(16, 16)
	if _, err := NewGrid(img, 0); err == nil {
		t.Error("accepted tile size 0")
	}
	if _, err := NewGrid(img, -2); err == nil {
		t.Error("accepted negative tile size")
	}
	if _, err := NewGrid(img, 5); err == nil {
		t.Error("accepted non-divisible tile size")
	}
	if _, err := NewGrid(ramp(16, 12), 8); err == nil {
		t.Error("accepted height not divisible")
	}
}

func TestNewGridByCount(t *testing.T) {
	g, err := NewGridByCount(ramp(32, 32), 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.M != 4 || g.S() != 64 {
		t.Errorf("M=%d S=%d", g.M, g.S())
	}
	if _, err := NewGridByCount(ramp(32, 16), 8); err == nil {
		t.Error("accepted non-square image")
	}
	if _, err := NewGridByCount(ramp(32, 32), 5); err == nil {
		t.Error("accepted non-divisible count")
	}
	if _, err := NewGridByCount(ramp(32, 32), 0); err == nil {
		t.Error("accepted zero count")
	}
}

func TestOriginAndIndexInverse(t *testing.T) {
	g, err := NewGrid(ramp(24, 24), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.S(); i++ {
		x, y := g.Origin(i)
		if g.Index(x, y) != i {
			t.Errorf("Index(Origin(%d)) = %d", i, g.Index(x, y))
		}
		// Every pixel inside the tile maps back to it.
		if g.Index(x+g.M-1, y+g.M-1) != i {
			t.Errorf("bottom-right of tile %d maps to %d", i, g.Index(x+g.M-1, y+g.M-1))
		}
	}
}

func TestRowIsAliasedView(t *testing.T) {
	g, err := NewGrid(ramp(8, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	row := g.Row(3, 1) // tile 3 = bottom-right, row 1
	row[0] = 250
	x, y := g.Origin(3)
	if g.Img.At(x, y+1) != 250 {
		t.Error("Row did not alias the image")
	}
}

func TestTileCopies(t *testing.T) {
	g, err := NewGrid(ramp(8, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	tl := g.Tile(0)
	tl.Pix[0] = 99
	if g.Img.Pix[0] == 99 {
		t.Error("Tile aliased the image")
	}
	if len(g.Tiles()) != 4 {
		t.Errorf("Tiles returned %d", len(g.Tiles()))
	}
}

func TestFlattenLayout(t *testing.T) {
	g, err := NewGrid(ramp(4, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	flat := g.Flatten()
	// Tile 1 (top-right): pixels (2,0),(3,0),(2,1),(3,1) = 2,3,6,7.
	want := []uint8{2, 3, 6, 7}
	got := flat[4:8]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flat tile 1 = %v, want %v", got, want)
		}
	}
}

func TestAssembleIdentityReconstructs(t *testing.T) {
	img := ramp(16, 16)
	g, err := NewGrid(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Assemble(perm.Identity(g.S()))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(img) {
		t.Error("identity assembly changed the image")
	}
}

func TestAssembleMovesTiles(t *testing.T) {
	img := imgutil.NewGray(4, 4)
	// Tile values: tile i filled with i*10.
	g, err := NewGrid(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		x, y := g.Origin(i)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				img.Set(x+c, y+r, uint8(i*10))
			}
		}
	}
	p := perm.Perm{3, 2, 1, 0} // reverse tiles
	out, err := g.Assemble(p)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		x, y := g.Origin(v)
		if out.At(x, y) != uint8(p[v]*10) {
			t.Errorf("position %d holds %d, want tile %d", v, out.At(x, y), p[v])
		}
	}
}

func TestAssembleRejectsBadPerms(t *testing.T) {
	g, err := NewGrid(ramp(8, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Assemble(perm.Perm{0, 1}); err == nil {
		t.Error("accepted short permutation")
	}
	if _, err := g.Assemble(perm.Perm{0, 0, 1, 2}); err == nil {
		t.Error("accepted non-bijection")
	}
}

func TestAssembleRoundTripProperty(t *testing.T) {
	// Assembling with p then with p.Inverse() restores the original.
	img := ramp(24, 24)
	g, err := NewGrid(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		p := perm.Random(g.S(), seed)
		mid, err := g.Assemble(p)
		if err != nil {
			return false
		}
		g2, err := NewGrid(mid, 4)
		if err != nil {
			return false
		}
		back, err := g2.Assemble(p.Inverse())
		return err == nil && back.Equal(img)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAssemblePreservesMultiset(t *testing.T) {
	// Rearrangement permutes tiles: the pixel multiset is invariant.
	img := ramp(16, 16)
	g, _ := NewGrid(img, 4)
	out, err := g.Assemble(perm.Random(g.S(), 7))
	if err != nil {
		t.Fatal(err)
	}
	var histIn, histOut [256]int
	for _, p := range img.Pix {
		histIn[p]++
	}
	for _, p := range out.Pix {
		histOut[p]++
	}
	if histIn != histOut {
		t.Error("assembly changed the pixel multiset")
	}
}

func TestRGBGridFlattenAndAssemble(t *testing.T) {
	img := imgutil.NewRGB(4, 4)
	for i := range img.Pix {
		img.Pix[i] = uint8(i)
	}
	g, err := NewRGBGrid(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.S() != 4 {
		t.Fatalf("S = %d", g.S())
	}
	flat := g.Flatten()
	if len(flat) != 4*12 {
		t.Fatalf("flatten length %d", len(flat))
	}
	// Identity assembly reproduces the image.
	out, err := g.Assemble(perm.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(img) {
		t.Error("identity assembly changed the color image")
	}
	// Round trip under a swap.
	p := perm.Perm{1, 0, 3, 2}
	mid, err := g.Assemble(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewRGBGrid(mid, 2)
	back, err := g2.Assemble(p.Inverse())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(img) {
		t.Error("color assembly round trip failed")
	}
}

func TestRGBGridRejectsBadGeometry(t *testing.T) {
	img := imgutil.NewRGB(8, 8)
	if _, err := NewRGBGrid(img, 3); err == nil {
		t.Error("accepted non-divisible tile size")
	}
	if _, err := NewRGBGrid(img, 0); err == nil {
		t.Error("accepted zero tile size")
	}
	g, _ := NewRGBGrid(img, 4)
	if _, err := g.Assemble(perm.Perm{0}); err == nil {
		t.Error("accepted short permutation")
	}
}

func TestOriginPanicsOutOfRange(t *testing.T) {
	g, _ := NewGrid(ramp(8, 8), 4)
	defer func() {
		if recover() == nil {
			t.Error("Origin out of range did not panic")
		}
	}()
	g.Origin(4)
}

func BenchmarkFlatten512M8(b *testing.B) {
	g, err := NewGrid(ramp(512, 512), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Flatten()
	}
}

func BenchmarkAssemble512(b *testing.B) {
	g, err := NewGrid(ramp(512, 512), 16)
	if err != nil {
		b.Fatal(err)
	}
	p := perm.Random(g.S(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Assemble(p); err != nil {
			b.Fatal(err)
		}
	}
}
