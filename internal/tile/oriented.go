package tile

import (
	"fmt"

	"repro/internal/imgutil"
	"repro/internal/perm"
)

// AssembleOriented builds the rearranged image like Assemble, additionally
// placing each tile in the per-position orientation chosen by the oriented
// cost matrix (see metric.OrientedMatrix). orients[v] is the orientation
// applied to tile p[v] at position v; len(orients) must equal S.
func (g *Grid) AssembleOriented(p perm.Perm, orients []imgutil.Orientation) (*imgutil.Gray, error) {
	if len(p) != g.S() {
		return nil, fmt.Errorf("tile: AssembleOriented with %d-element permutation on %d tiles: %w", len(p), g.S(), ErrGeometry)
	}
	if len(orients) != g.S() {
		return nil, fmt.Errorf("tile: AssembleOriented with %d orientations on %d tiles: %w", len(orients), g.S(), ErrGeometry)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for i, o := range orients {
		if o >= imgutil.NumOrientations {
			return nil, fmt.Errorf("tile: orientation %d at position %d out of range: %w", o, i, ErrGeometry)
		}
	}
	out := imgutil.NewGray(g.Img.W, g.Img.H)
	m := g.M
	for v := 0; v < g.S(); v++ {
		dx, dy := g.Origin(v)
		src := p[v]
		o := orients[v]
		if o == imgutil.Upright {
			for r := 0; r < m; r++ {
				copy(out.Pix[(dy+r)*out.W+dx:(dy+r)*out.W+dx+m], g.Row(src, r))
			}
			continue
		}
		sx, sy := g.Origin(src)
		for y := 0; y < m; y++ {
			dst := out.Pix[(dy+y)*out.W+dx : (dy+y)*out.W+dx+m]
			for x := 0; x < m; x++ {
				idx := imgutil.OrientIndex(o, m, x, y)
				dst[x] = g.Img.Pix[(sy+idx/m)*g.Img.W+sx+idx%m]
			}
		}
	}
	return out, nil
}
