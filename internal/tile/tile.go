// Package tile splits images into the fixed grids of M×M tiles the paper
// operates on and reassembles rearranged images from them.
//
// The paper divides an N×N image into S = (N/M)² tiles (§II). A Grid keeps
// the source image plus its geometry; tiles are indexed 0..S−1 in row-major
// order (the paper's 1-based I₁..I_S shifted to 0-based). Tile pixel data is
// exposed as subslice views into the original image so the error kernels can
// stream rows without copying.
package tile

import (
	"errors"
	"fmt"

	"repro/internal/imgutil"
	"repro/internal/perm"
)

// ErrGeometry reports an image/tile-size combination that does not form a
// whole grid.
var ErrGeometry = errors.New("tile: invalid grid geometry")

// Grid is an image divided into square tiles.
type Grid struct {
	Img  *imgutil.Gray
	M    int // tile side length in pixels
	Cols int // tiles per row  (Img.W / M)
	Rows int // tiles per column (Img.H / M)
}

// NewGrid divides img into m×m tiles. The image dimensions must be positive
// multiples of m. Images need not be square (the paper uses square images,
// but nothing in the algorithms requires it).
func NewGrid(img *imgutil.Gray, m int) (*Grid, error) {
	if m <= 0 {
		return nil, fmt.Errorf("tile: tile size %d: %w", m, ErrGeometry)
	}
	if img.W%m != 0 || img.H%m != 0 {
		return nil, fmt.Errorf("tile: %dx%d image not divisible into %dx%d tiles: %w", img.W, img.H, m, m, ErrGeometry)
	}
	return &Grid{Img: img, M: m, Cols: img.W / m, Rows: img.H / m}, nil
}

// NewGridByCount divides img into tilesPerSide × tilesPerSide tiles, the
// parameterisation the paper's tables use (S = 16×16 means 16 tiles per
// side). The image must be square and divisible by tilesPerSide.
func NewGridByCount(img *imgutil.Gray, tilesPerSide int) (*Grid, error) {
	if tilesPerSide <= 0 {
		return nil, fmt.Errorf("tile: %d tiles per side: %w", tilesPerSide, ErrGeometry)
	}
	if img.W != img.H {
		return nil, fmt.Errorf("tile: NewGridByCount needs a square image, got %dx%d: %w", img.W, img.H, ErrGeometry)
	}
	if img.W%tilesPerSide != 0 {
		return nil, fmt.Errorf("tile: side %d not divisible by %d tiles: %w", img.W, tilesPerSide, ErrGeometry)
	}
	return NewGrid(img, img.W/tilesPerSide)
}

// S returns the number of tiles in the grid.
func (g *Grid) S() int { return g.Cols * g.Rows }

// Origin returns the pixel coordinates of the top-left corner of tile i.
func (g *Grid) Origin(i int) (x, y int) {
	if i < 0 || i >= g.S() {
		panic(fmt.Sprintf("tile: Origin(%d) on grid with %d tiles", i, g.S()))
	}
	return (i % g.Cols) * g.M, (i / g.Cols) * g.M
}

// Index returns the tile index containing pixel (x, y).
func (g *Grid) Index(x, y int) int {
	if x < 0 || y < 0 || x >= g.Img.W || y >= g.Img.H {
		panic(fmt.Sprintf("tile: Index(%d, %d) on %dx%d image", x, y, g.Img.W, g.Img.H))
	}
	return (y/g.M)*g.Cols + x/g.M
}

// Row returns row r (0 ≤ r < M) of tile i as a view into the image buffer.
// Mutating the returned slice mutates the grid's image.
func (g *Grid) Row(i, r int) []uint8 {
	x, y := g.Origin(i)
	off := (y+r)*g.Img.W + x
	return g.Img.Pix[off : off+g.M]
}

// Tile copies tile i into a standalone M×M image.
func (g *Grid) Tile(i int) *imgutil.Gray {
	out := imgutil.NewGray(g.M, g.M)
	for r := 0; r < g.M; r++ {
		copy(out.Pix[r*g.M:(r+1)*g.M], g.Row(i, r))
	}
	return out
}

// Tiles copies every tile, in index order.
func (g *Grid) Tiles() []*imgutil.Gray {
	out := make([]*imgutil.Gray, g.S())
	for i := range out {
		out[i] = g.Tile(i)
	}
	return out
}

// Flatten packs all tiles into one contiguous buffer of S·M·M bytes, tile
// after tile, each tile row-major. This is the "global memory" layout the
// CUDA-style kernels consume: tile i occupies bytes [i·M², (i+1)·M²).
func (g *Grid) Flatten() []uint8 {
	m2 := g.M * g.M
	out := make([]uint8, g.S()*m2)
	for i := 0; i < g.S(); i++ {
		for r := 0; r < g.M; r++ {
			copy(out[i*m2+r*g.M:i*m2+(r+1)*g.M], g.Row(i, r))
		}
	}
	return out
}

// Assemble builds the rearranged image R: position v of the result receives
// tile p[v] of the grid. p must be a valid permutation of S elements.
func (g *Grid) Assemble(p perm.Perm) (*imgutil.Gray, error) {
	if len(p) != g.S() {
		return nil, fmt.Errorf("tile: Assemble with %d-element permutation on %d tiles: %w", len(p), g.S(), ErrGeometry)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := imgutil.NewGray(g.Img.W, g.Img.H)
	for v := 0; v < g.S(); v++ {
		dx, dy := g.Origin(v)
		src := p[v]
		for r := 0; r < g.M; r++ {
			copy(out.Pix[(dy+r)*out.W+dx:(dy+r)*out.W+dx+g.M], g.Row(src, r))
		}
	}
	return out, nil
}

// RGBGrid is the color counterpart of Grid, used by the color-mosaic
// extension.
type RGBGrid struct {
	Img  *imgutil.RGB
	M    int
	Cols int
	Rows int
}

// NewRGBGrid divides a color image into m×m tiles.
func NewRGBGrid(img *imgutil.RGB, m int) (*RGBGrid, error) {
	if m <= 0 {
		return nil, fmt.Errorf("tile: tile size %d: %w", m, ErrGeometry)
	}
	if img.W%m != 0 || img.H%m != 0 {
		return nil, fmt.Errorf("tile: %dx%d image not divisible into %dx%d tiles: %w", img.W, img.H, m, m, ErrGeometry)
	}
	return &RGBGrid{Img: img, M: m, Cols: img.W / m, Rows: img.H / m}, nil
}

// S returns the number of tiles in the grid.
func (g *RGBGrid) S() int { return g.Cols * g.Rows }

// Origin returns the pixel coordinates of the top-left corner of tile i.
func (g *RGBGrid) Origin(i int) (x, y int) {
	if i < 0 || i >= g.S() {
		panic(fmt.Sprintf("tile: Origin(%d) on grid with %d tiles", i, g.S()))
	}
	return (i % g.Cols) * g.M, (i / g.Cols) * g.M
}

// Row returns row r of tile i as an interleaved RGB view (3·M bytes).
func (g *RGBGrid) Row(i, r int) []uint8 {
	x, y := g.Origin(i)
	off := 3 * ((y+r)*g.Img.W + x)
	return g.Img.Pix[off : off+3*g.M]
}

// Flatten packs all tiles contiguously: tile i occupies bytes
// [i·3M², (i+1)·3M²).
func (g *RGBGrid) Flatten() []uint8 {
	m2 := 3 * g.M * g.M
	rowBytes := 3 * g.M
	out := make([]uint8, g.S()*m2)
	for i := 0; i < g.S(); i++ {
		for r := 0; r < g.M; r++ {
			copy(out[i*m2+r*rowBytes:i*m2+(r+1)*rowBytes], g.Row(i, r))
		}
	}
	return out
}

// Assemble builds the rearranged color image under permutation p.
func (g *RGBGrid) Assemble(p perm.Perm) (*imgutil.RGB, error) {
	if len(p) != g.S() {
		return nil, fmt.Errorf("tile: Assemble with %d-element permutation on %d tiles: %w", len(p), g.S(), ErrGeometry)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := imgutil.NewRGB(g.Img.W, g.Img.H)
	for v := 0; v < g.S(); v++ {
		dx, dy := g.Origin(v)
		src := p[v]
		for r := 0; r < g.M; r++ {
			dst := 3 * ((dy+r)*out.W + dx)
			copy(out.Pix[dst:dst+3*g.M], g.Row(src, r))
		}
	}
	return out, nil
}
