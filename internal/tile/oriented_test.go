package tile

import (
	"testing"

	"repro/internal/imgutil"
	"repro/internal/perm"
)

func TestAssembleOrientedUprightMatchesAssemble(t *testing.T) {
	g, err := NewGrid(ramp(16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	p := perm.Random(g.S(), 5)
	orients := make([]imgutil.Orientation, g.S()) // all upright
	a, err := g.Assemble(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AssembleOriented(p, orients)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("upright oriented assembly differs from plain assembly")
	}
}

func TestAssembleOrientedAppliesTransform(t *testing.T) {
	g, err := NewGrid(ramp(8, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	p := perm.Identity(g.S())
	orients := []imgutil.Orientation{imgutil.Rot90, imgutil.Upright, imgutil.Flip, imgutil.Rot180}
	out, err := g.AssembleOriented(p, orients)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.S(); v++ {
		want := g.Tile(v).Orient(orients[v])
		x, y := g.Origin(v)
		got, err := out.SubImage(x, y, g.M, g.M)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("position %d (%v): tile not oriented correctly", v, orients[v])
		}
	}
}

func TestAssembleOrientedPreservesMultiset(t *testing.T) {
	g, err := NewGrid(ramp(16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	p := perm.Random(g.S(), 9)
	orients := make([]imgutil.Orientation, g.S())
	for i := range orients {
		orients[i] = imgutil.Orientation(i % imgutil.NumOrientations)
	}
	out, err := g.AssembleOriented(p, orients)
	if err != nil {
		t.Fatal(err)
	}
	var hin, hout [256]int
	for _, px := range g.Img.Pix {
		hin[px]++
	}
	for _, px := range out.Pix {
		hout[px]++
	}
	if hin != hout {
		t.Error("oriented assembly changed the pixel multiset")
	}
}

func TestAssembleOrientedValidation(t *testing.T) {
	g, err := NewGrid(ramp(8, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	good := make([]imgutil.Orientation, g.S())
	if _, err := g.AssembleOriented(perm.Perm{0, 1}, good); err == nil {
		t.Error("accepted short permutation")
	}
	if _, err := g.AssembleOriented(perm.Identity(g.S()), good[:1]); err == nil {
		t.Error("accepted short orientation vector")
	}
	bad := make([]imgutil.Orientation, g.S())
	bad[2] = imgutil.NumOrientations
	if _, err := g.AssembleOriented(perm.Identity(g.S()), bad); err == nil {
		t.Error("accepted out-of-range orientation")
	}
	if _, err := g.AssembleOriented(perm.Perm{0, 0, 1, 2}, good); err == nil {
		t.Error("accepted non-bijection")
	}
}
