package localsearch

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/perm"
)

// countdownCtx is a deterministic cancellation source: it reports done after
// its Done() channel has been requested `fuse` times. The searches poll the
// context at every safe point (sweep tops, row boundaries, color-class
// boundaries), so the fuse pins the stop to an exact safe point without any
// wall-clock dependence.
type countdownCtx struct {
	context.Context
	mu     sync.Mutex
	fuse   int
	done   chan struct{}
	closed bool
}

func newCountdownCtx(fuse int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), fuse: fuse, done: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fuse--
	if c.fuse < 0 && !c.closed {
		c.closed = true
		close(c.done)
	}
	return c.done
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return context.DeadlineExceeded
	}
	return nil
}

// requireAnytimeInvariants asserts the contract every partial return must
// satisfy: a valid permutation, Partial set, and Cost equal to an independent
// recomputation over the matrix.
func requireAnytimeInvariants(t *testing.T, m interface{ Total(perm.Perm) int64 }, p perm.Perm, st Stats, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("anytime stop returned error: %v", err)
	}
	if p == nil {
		t.Fatal("anytime stop returned nil permutation")
	}
	if verr := p.Validate(); verr != nil {
		t.Fatalf("anytime permutation invalid: %v", verr)
	}
	if !st.Partial {
		t.Fatal("Stats.Partial not set on anytime stop")
	}
	if got := m.Total(p); got != st.Cost {
		t.Fatalf("Stats.Cost = %d, recomputed total = %d", st.Cost, got)
	}
}

// TestSerialAnytimePreCancelled: a context that is already done before the
// first sweep returns the (unmodified) start assignment as a partial result
// instead of an error.
func TestSerialAnytimePreCancelled(t *testing.T) {
	m := randCosts(32, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := perm.Identity(32)
	p, st, err := SerialContext(ctx, m, start, Options{Anytime: true})
	requireAnytimeInvariants(t, m, p, st, err)
	if st.Passes != 0 || st.Swaps != 0 || st.Attempts != 0 {
		t.Fatalf("pre-cancelled run reported work: %+v", st)
	}
	if st.Cost != m.Total(start) {
		t.Fatalf("pre-cancelled cost %d, want start cost %d", st.Cost, m.Total(start))
	}
}

// TestSerialAnytimeMidSweep pins the stop to an exact row boundary inside
// the first sweep via the countdown context and checks the closed-form
// attempts accounting: stopping before row x means x(2S−x−1)/2 pairs were
// tested.
func TestSerialAnytimeMidSweep(t *testing.T) {
	const s = 64
	m := randCosts(s, 2)
	// Done() polls: 1 at the sweep top, then one per row boundary (x = 0, 1,
	// 2, ...). Fuse 4 survives the sweep top and rows 0..2, so the search
	// stops at the x = 3 boundary.
	ctx := newCountdownCtx(4)
	p, st, err := SerialContext(ctx, m, perm.Identity(s), Options{Anytime: true})
	requireAnytimeInvariants(t, m, p, st, err)
	const x = 3
	want := int64(x) * int64(2*s-x-1) / 2
	if st.Attempts != want {
		t.Fatalf("attempts = %d, want %d (stop before row %d of S=%d)", st.Attempts, want, x, s)
	}
	if st.Passes != 0 {
		t.Fatalf("mid-first-sweep stop reported %d completed passes", st.Passes)
	}
	if st.Cost > m.Total(perm.Identity(s)) {
		t.Fatalf("partial cost %d worse than start %d", st.Cost, m.Total(perm.Identity(s)))
	}
}

// TestSerialAnytimeNeverWorseThanConverged: the serial search is
// deterministic and monotonically cost-decreasing, so a partial stop
// anywhere on the trajectory costs at least the converged optimum and at
// most the start — for every stop point.
func TestSerialAnytimeNeverWorseThanConverged(t *testing.T) {
	const s = 48
	m := randCosts(s, 3)
	start := perm.Identity(s)
	full, _, err := Serial(m, start, Options{})
	if err != nil {
		t.Fatal(err)
	}
	converged := m.Total(full)
	startCost := m.Total(start)
	prev := startCost
	for fuse := 0; fuse < 40; fuse += 7 {
		p, st, err := SerialContext(newCountdownCtx(fuse), m, start, Options{Anytime: true})
		requireAnytimeInvariants(t, m, p, st, err)
		if st.Cost < converged {
			t.Fatalf("fuse %d: partial cost %d beats the converged optimum %d", fuse, st.Cost, converged)
		}
		if st.Cost > startCost {
			t.Fatalf("fuse %d: partial cost %d worse than start %d", fuse, st.Cost, startCost)
		}
		// Later stop points resume the same deterministic trajectory, so the
		// achieved cost is non-increasing in the budget.
		if st.Cost > prev {
			t.Fatalf("fuse %d: cost %d increased from %d with a larger budget", fuse, st.Cost, prev)
		}
		prev = st.Cost
	}
}

// TestSerialAnytimeDisabledStillErrors: without Anytime the original
// contract holds — cancellation discards the permutation and surfaces the
// ctx error.
func TestSerialAnytimeDisabledStillErrors(t *testing.T) {
	m := randCosts(16, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, _, err := SerialContext(ctx, m, perm.Identity(16), Options{})
	if err == nil || p != nil {
		t.Fatalf("got (%v, %v), want nil perm and ctx error", p, err)
	}
}

// TestDirtyAnytime: the dirty search honours the same partial contract at
// its safe points.
func TestDirtyAnytime(t *testing.T) {
	m := randCosts(48, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, st, err := SerialDirtyContext(ctx, m, perm.Identity(48), Options{Anytime: true})
	requireAnytimeInvariants(t, m, p, st, err)

	// And with the candidate warm phase enabled.
	p, st, err = SerialDirtyContext(ctx, m, perm.Identity(48), Options{Anytime: true, Candidates: 4})
	requireAnytimeInvariants(t, m, p, st, err)
}

// TestParallelAnytime: the parallel search returns a consistent snapshot at
// its class-boundary safe points.
func TestParallelAnytime(t *testing.T) {
	m := randCosts(48, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, st, err := ParallelContext(ctx, cuda.New(4), m, perm.Identity(48), nil, Options{Anytime: true})
	requireAnytimeInvariants(t, m, p, st, err)
}

// TestAnnealAnytime: annealing epochs are safe points too; the polish phase
// inherits the anytime flag from the search options.
func TestAnnealAnytime(t *testing.T) {
	m := randCosts(32, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, st, err := AnnealThenPolishContext(ctx, m, perm.Identity(32), AnnealOptions{Seed: 1}, Options{Anytime: true})
	requireAnytimeInvariants(t, m, p, st, err)
}

// TestSerialAnytimeDeadline: a real (not synthetic) expired deadline behaves
// identically to the countdown context — guarding the production path where
// the budget comes from context.WithDeadline.
func TestSerialAnytimeDeadline(t *testing.T) {
	m := randCosts(64, 8)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	p, st, err := SerialContext(ctx, m, perm.Identity(64), Options{Anytime: true})
	requireAnytimeInvariants(t, m, p, st, err)
}
