package localsearch

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tilestore"
)

func sceneStores(t *testing.T, n, m int) (*tilestore.Store, *tilestore.Store) {
	t.Helper()
	in, err := tilestore.FromImage(synth.MustGenerate(synth.Lena, n), m)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tilestore.FromImage(synth.MustGenerate(synth.Sailboat, n), m)
	if err != nil {
		t.Fatal(err)
	}
	return in, tgt
}

// TestStoreCandidatesShape: K lists per position, valid tile indices, K
// clamped to S, zero K yields empty lists.
func TestStoreCandidatesShape(t *testing.T) {
	in, tgt := sceneStores(t, 128, 16)
	s := tgt.S()
	for _, k := range []int{1, 8, s, s + 50} {
		lists := StoreCandidates(in, tgt, k)
		if len(lists) != s {
			t.Fatalf("k=%d: %d lists for S=%d", k, len(lists), s)
		}
		wantK := k
		if wantK > s {
			wantK = s
		}
		for x, l := range lists {
			if len(l) != wantK {
				t.Fatalf("k=%d: position %d has %d candidates, want %d", k, x, len(l), wantK)
			}
			for _, u := range l {
				if u < 0 || int(u) >= s {
					t.Fatalf("position %d: candidate %d out of range", x, u)
				}
			}
		}
	}
	for _, l := range StoreCandidates(in, tgt, 0) {
		if len(l) != 0 {
			t.Fatal("k=0 produced candidates")
		}
	}
}

// TestStoreCandidatesAreThumbNearest: each list is exactly the K tiles with
// the smallest thumbnail L1 distance (up to ties at the boundary).
func TestStoreCandidatesAreThumbNearest(t *testing.T) {
	in, tgt := sceneStores(t, 96, 12)
	s := tgt.S()
	k := 6
	lists := StoreCandidates(in, tgt, k)
	thumbDist := func(u, x int) int32 {
		var d int32
		tx := tgt.TileThumb(x)
		for i, p := range in.TileThumb(u) {
			diff := int32(p) - int32(tx[i])
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		return d
	}
	for x := 0; x < s; x++ {
		worst := thumbDist(int(lists[x][k-1]), x)
		chosen := make(map[int32]bool, k)
		for _, u := range lists[x] {
			chosen[u] = true
		}
		for u := 0; u < s; u++ {
			if !chosen[int32(u)] && thumbDist(u, x) < worst {
				t.Fatalf("position %d: tile %d closer than chosen worst", x, u)
			}
		}
	}
}

// TestCandidateListsWarmReachesPlateau: driving the dirty search with
// store-derived lists still certifies a swap-local optimum of the true
// matrix, and invalid lists are rejected up front.
func TestCandidateListsWarmReachesPlateau(t *testing.T) {
	in, tgt := sceneStores(t, 128, 16)
	m, err := metric.BuildStoreSerial(in, tgt, metric.L1)
	if err != nil {
		t.Fatal(err)
	}
	lists := StoreCandidates(in, tgt, 8)
	p, st, err := SerialDirty(m, perm.Identity(m.S), Options{CandidateLists: lists})
	if err != nil {
		t.Fatal(err)
	}
	if !swapLocalOptimal(m, p) {
		t.Fatal("store-candidate-warmed result not swap-local optimal")
	}
	if st.Passes < 1 {
		t.Fatalf("degenerate stats %+v", st)
	}

	if _, _, err := SerialDirty(m, perm.Identity(m.S), Options{CandidateLists: lists[:3]}); err == nil {
		t.Fatal("wrong-length candidate lists accepted")
	}
	bad := StoreCandidates(in, tgt, 4)
	bad[0][0] = int32(m.S)
	if _, _, err := SerialDirty(m, perm.Identity(m.S), Options{CandidateLists: bad}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}
