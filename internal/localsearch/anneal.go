package localsearch

import (
	"context"
	"fmt"
	"math"

	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/trace"
)

// AnnealProgress receives one convergence sample per cooling epoch (every S
// proposed swaps): the 1-based epoch number, the current Eq. (2) error of
// the walking state (not the best-so-far), and the temperature before
// cooling. Unlike the sweep curve, annealing samples may rise — that is the
// Metropolis acceptance doing its job. telemetry.ConvergenceRecorder.Anneal
// has exactly this signature.
type AnnealProgress func(epoch int, cost int64, temperature float64)

// AnnealOptions tunes Anneal. The zero value selects defaults derived from
// the instance.
type AnnealOptions struct {
	// Steps is the number of proposed swaps; 0 means 300·S.
	Steps int
	// T0 is the initial temperature; 0 derives it from the matrix so the
	// early acceptance rate is high (mean diagonal cost / 2).
	T0 float64
	// Alpha is the geometric cooling factor applied every S steps;
	// 0 means 0.97. Must lie in (0, 1) when set.
	Alpha float64
	// Seed drives the proposal and acceptance randomness; fixed seeds make
	// runs reproducible.
	Seed uint64
	// Progress optionally receives a cost/temperature sample at every
	// cooling epoch; nil records nothing.
	Progress AnnealProgress
	// Anytime mirrors Options.Anytime for the annealer: cancellation at an
	// epoch boundary returns the best assignment seen so far with
	// Stats.Partial and Stats.Cost, instead of discarding it with an error.
	Anytime bool
}

// Anneal is a simulated-annealing extension of the paper's local search
// (documented in DESIGN.md): random pair swaps are accepted when they
// improve the error or, with probability exp(−Δ/T), when they worsen it,
// with T cooled geometrically. Escaping swap-local optima lets it sometimes
// beat Algorithm 1's fixed point, at far higher cost per unit of quality —
// the ablation bench quantifies the trade. Returns the best assignment
// seen, its error, and the accepted-swap count in Stats.Swaps (Stats.Passes
// counts cooling epochs).
func Anneal(m *metric.Matrix, start perm.Perm, opts AnnealOptions) (perm.Perm, int64, Stats, error) {
	return AnnealContext(context.Background(), m, start, opts, nil)
}

// AnnealContext is Anneal with cancellation and tracing: ctx is checked at
// every cooling epoch (every S proposed swaps), bounding cancellation
// latency, and tr (which may be nil) receives trace.CounterAnnealSteps
// increments per epoch.
func AnnealContext(ctx context.Context, m *metric.Matrix, start perm.Perm, opts AnnealOptions, tr trace.Collector) (perm.Perm, int64, Stats, error) {
	cur, err := checkStart(m, start)
	if err != nil {
		return nil, 0, Stats{}, err
	}
	s := m.S
	if opts.Steps < 0 || opts.T0 < 0 {
		return nil, 0, Stats{}, fmt.Errorf("localsearch: negative annealing parameters: %w", ErrBadStart)
	}
	if opts.Alpha != 0 && (opts.Alpha <= 0 || opts.Alpha >= 1) {
		return nil, 0, Stats{}, fmt.Errorf("localsearch: Alpha %v outside (0, 1): %w", opts.Alpha, ErrBadStart)
	}
	steps := opts.Steps
	if steps == 0 {
		steps = 300 * s
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = 0.97
	}
	w := m.W
	curErr := m.Total(cur)
	best := cur.Clone()
	bestErr := curErr

	temp := opts.T0
	if temp == 0 {
		// Mean per-position cost of the start sets the scale of Δ.
		temp = float64(curErr) / float64(s) / 2
		if temp < 1 {
			temp = 1
		}
	}

	rng := annealRNG{state: opts.Seed ^ 0x9e3779b97f4a7c15}
	var st Stats
	if s < 2 {
		return best, bestErr, st, nil
	}
	for step := 0; step < steps; step++ {
		x := rng.intn(s)
		y := rng.intn(s - 1)
		if y >= x {
			y++
		}
		px, py := cur[x], cur[y]
		delta := int64(w[py*s+x]) + int64(w[px*s+y]) -
			int64(w[px*s+x]) - int64(w[py*s+y])
		accept := delta <= 0
		if !accept && temp > 0 {
			accept = rng.float64() < math.Exp(-float64(delta)/temp)
		}
		if accept {
			cur[x], cur[y] = py, px
			curErr += delta
			st.Swaps++
			if curErr < bestErr {
				bestErr = curErr
				copy(best, cur)
			}
		}
		if (step+1)%s == 0 {
			st.Passes++
			if opts.Progress != nil {
				opts.Progress(st.Passes, curErr, temp)
			}
			temp *= alpha
			trace.Count(tr, trace.CounterAnnealSteps, int64(s))
			if err := ctxErr(ctx); err != nil {
				if opts.Anytime {
					// The annealer already tracks its incumbent: return it
					// directly (bestErr is maintained incrementally).
					st.Partial = true
					st.Cost = bestErr
					return best, bestErr, st, nil
				}
				return nil, 0, st, fmt.Errorf("localsearch: annealing cancelled after %d epochs: %w", st.Passes, err)
			}
		}
	}
	trace.Count(tr, trace.CounterAnnealSteps, int64(steps%s))
	return best, bestErr, st, nil
}

// AnnealThenPolish runs Anneal and then drives the result to a swap-local
// optimum with Algorithm 1 — the strongest approximation configuration in
// this repository: never worse than Serial from the same start in error
// (both end at local optima, but annealing explores basins Serial cannot
// leave... strictly, the guarantee is only "a local optimum at least as
// good as the annealed point"). Returns the polished assignment and
// combined stats.
func AnnealThenPolish(m *metric.Matrix, start perm.Perm, opts AnnealOptions) (perm.Perm, Stats, error) {
	return AnnealThenPolishContext(context.Background(), m, start, opts, Options{})
}

// AnnealThenPolishContext is AnnealThenPolish with cancellation and tracing;
// search tunes (and traces) the polishing run, and its Trace collector also
// observes the annealing phase.
// In anytime mode (search.Anytime, which also covers the annealing phase)
// cancellation during annealing skips the polish and returns the annealer's
// incumbent; cancellation during the polish returns its snapshot — either
// way a valid assignment with Stats.Partial instead of an error.
func AnnealThenPolishContext(ctx context.Context, m *metric.Matrix, start perm.Perm, opts AnnealOptions, search Options) (perm.Perm, Stats, error) {
	opts.Anytime = opts.Anytime || search.Anytime
	annealed, aerr, st, err := AnnealContext(ctx, m, start, opts, search.Trace)
	if err != nil {
		return nil, Stats{}, err
	}
	if st.Partial {
		st.Cost = aerr
		return annealed, st, nil
	}
	polished, st2, err := SerialContext(ctx, m, annealed, search)
	if err != nil {
		return nil, Stats{}, err
	}
	st.Passes += st2.Passes
	st.Swaps += st2.Swaps
	st.Attempts += st2.Attempts
	st.Partial = st2.Partial
	st.Cost = st2.Cost
	return polished, st, nil
}

// annealRNG is a splitmix64 stream local to the annealer (math/rand's global
// stream would break reproducibility across runs).
type annealRNG struct{ state uint64 }

func (r *annealRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *annealRNG) intn(n int) int {
	bound := uint64(n)
	limit := (^uint64(0) / bound) * bound
	for {
		if v := r.next(); v < limit {
			return int(v % bound)
		}
	}
}

func (r *annealRNG) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
