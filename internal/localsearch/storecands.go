package localsearch

import "repro/internal/tilestore"

// StoreCandidates derives per-position candidate lists from the columnar
// tile stores' thumbnail feature vectors: for each target position x, the K
// input tiles whose ThumbDim² thumbnails are closest (L1) to target tile x's.
// This is the clustering-style candidate pruning of the related work, run on
// descriptors the fused Prepare already computed — it never reads the S×S
// matrix, so the lists can be built before (or instead of) a full Step-2
// build and fed to SerialDirty via Options.CandidateLists.
//
// The thumbnail distance is an approximation of the full tile error, so the
// warm sweeps it drives are heuristic; the exhaustive dirty sweeps that
// follow still certify a swap-local plateau of the true matrix.
func StoreCandidates(in, tgt *tilestore.Store, k int) [][]int32 {
	s := tgt.S()
	if k > in.S() {
		k = in.S()
	}
	out := make([][]int32, s)
	if k <= 0 {
		return out
	}
	for x := 0; x < s; x++ {
		tx := tgt.TileThumb(x)
		cand := make([]int32, 0, k)
		dists := make([]int32, 0, k)
		for u := 0; u < in.S(); u++ {
			var d int32
			for i, p := range in.TileThumb(u) {
				diff := int32(p) - int32(tx[i])
				if diff < 0 {
					diff = -diff
				}
				d += diff
			}
			if len(cand) == k && d >= dists[k-1] {
				continue
			}
			i := len(dists)
			if i < k {
				cand = append(cand, 0)
				dists = append(dists, 0)
			} else {
				i--
			}
			for i > 0 && dists[i-1] > d {
				cand[i], dists[i] = cand[i-1], dists[i-1]
				i--
			}
			cand[i], dists[i] = int32(u), d
		}
		out[x] = cand
	}
	return out
}
