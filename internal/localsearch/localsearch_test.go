package localsearch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/assign"
	"repro/internal/cuda"
	"repro/internal/edgecolor"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tile"
)

// randCosts builds a deterministic random S×S cost matrix.
func randCosts(s int, seed int64) *metric.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := metric.NewMatrix(s)
	for i := range m.W {
		m.W[i] = metric.Cost(rng.Int31n(10000))
	}
	return m
}

// sceneCosts builds the real Lena→Sailboat matrix at the given size.
func sceneCosts(t testing.TB, n, tiles int) *metric.Matrix {
	t.Helper()
	in, err := tile.NewGridByCount(synth.MustGenerate(synth.Lena, n), tiles)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tile.NewGridByCount(synth.MustGenerate(synth.Sailboat, n), tiles)
	if err != nil {
		t.Fatal(err)
	}
	m, err := metric.BuildSerial(in, tg, metric.L1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSerialImprovesAndTerminates(t *testing.T) {
	m := randCosts(64, 1)
	start := perm.Identity(64)
	before := m.Total(start)
	p, st, err := Serial(m, start, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	after := m.Total(p)
	if after > before {
		t.Errorf("local search increased error: %d → %d", before, after)
	}
	if st.Passes < 1 {
		t.Error("no passes recorded")
	}
	// Start must not be mutated.
	if !start.IsIdentity() {
		t.Error("Serial mutated its start assignment")
	}
}

func TestSerialReachesSwapLocalOptimum(t *testing.T) {
	// On convergence no improving swap may remain — the definition of the
	// algorithm's fixed point.
	m := randCosts(48, 2)
	p, _, err := Serial(m, perm.Identity(48), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.S
	for x := 0; x < s; x++ {
		for y := x + 1; y < s; y++ {
			keep := int64(m.W[p[x]*s+x]) + int64(m.W[p[y]*s+y])
			swap := int64(m.W[p[y]*s+x]) + int64(m.W[p[x]*s+y])
			if keep > swap {
				t.Fatalf("improving swap (%d, %d) remains after convergence", x, y)
			}
		}
	}
}

func TestParallelMatchesSerialQuality(t *testing.T) {
	// The paper reports the serial and parallel variants reach slightly
	// different but comparable errors. Both must land within a few percent
	// of each other and strictly improve on the start.
	m := sceneCosts(t, 128, 16) // S = 256
	dev := cuda.New(4)
	start := perm.Identity(m.S)
	ps, _, err := Serial(m, start, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pp, _, err := Parallel(dev, m, start, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	es := m.Total(ps)
	ep := m.Total(pp)
	if es <= 0 || ep <= 0 {
		t.Fatalf("degenerate errors: serial %d, parallel %d", es, ep)
	}
	ratio := float64(ep) / float64(es)
	if ratio > 1.05 || ratio < 0.95 {
		t.Errorf("parallel error %d vs serial %d (ratio %.3f) — expected near-parity", ep, es, ratio)
	}
}

func TestParallelReachesSwapLocalOptimumPerClass(t *testing.T) {
	// Parallel convergence means no improving swap remains across ALL pairs
	// (every pair appears in some class).
	m := randCosts(32, 5)
	dev := cuda.New(3)
	p, _, err := Parallel(dev, m, perm.Identity(32), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.S
	for x := 0; x < s; x++ {
		for y := x + 1; y < s; y++ {
			keep := int64(m.W[p[x]*s+x]) + int64(m.W[p[y]*s+y])
			swap := int64(m.W[p[y]*s+x]) + int64(m.W[p[x]*s+y])
			if keep > swap {
				t.Fatalf("improving swap (%d, %d) remains after parallel convergence", x, y)
			}
		}
	}
}

func TestParallelDeterministicForFixedWorkerCountAndColoring(t *testing.T) {
	// Swaps within a class are disjoint, so the outcome of a sweep is
	// independent of execution order: parallel results must be identical
	// across worker counts.
	m := randCosts(50, 9)
	coloring := edgecolor.Complete(50)
	var first perm.Perm
	for _, workers := range []int{1, 2, 8} {
		p, _, err := Parallel(cuda.New(workers), m, perm.Identity(50), coloring, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = p
		} else if !p.Equal(first) {
			t.Errorf("workers=%d produced a different assignment", workers)
		}
	}
}

func TestLocalSearchNearOptimal(t *testing.T) {
	// The paper's observation: approximation errors are within a few percent
	// of the matching optimum on real tile matrices.
	m := sceneCosts(t, 128, 16)
	opt, err := assign.JV(m.S, m.W)
	if err != nil {
		t.Fatal(err)
	}
	optCost, err := assign.TotalCost(m.S, m.W, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := Serial(m, perm.Identity(m.S), Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx := m.Total(p)
	if approx < optCost {
		t.Fatalf("approximation %d beat the optimum %d — solver bug", approx, optCost)
	}
	if float64(approx) > 1.10*float64(optCost) {
		t.Errorf("approximation %d more than 10%% above optimum %d", approx, optCost)
	}
}

func TestPassCountsMatchPaperScale(t *testing.T) {
	// Paper §IV-A: k ≤ 9 for S=16². Allow 2× headroom for the synthetic
	// scenes; the point is that k is O(10), not O(S).
	m := sceneCosts(t, 256, 16)
	_, st, err := Serial(m, perm.Identity(m.S), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes > 18 {
		t.Errorf("serial local search took %d passes at S=256 (paper: ≤ 9)", st.Passes)
	}
}

func TestMaxPassesCap(t *testing.T) {
	m := randCosts(64, 3)
	_, st, err := Serial(m, perm.Identity(64), Options{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes != 1 {
		t.Errorf("MaxPasses=1 ran %d passes", st.Passes)
	}
	_, st, err = Parallel(cuda.New(2), m, perm.Identity(64), nil, Options{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes != 1 {
		t.Errorf("parallel MaxPasses=1 ran %d passes", st.Passes)
	}
}

func TestBestImprovementConvergesToLocalOptimum(t *testing.T) {
	m := randCosts(24, 4)
	p, st, err := SerialBestImprovement(m, perm.Identity(24), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same fixed-point condition.
	s := m.S
	for x := 0; x < s; x++ {
		for y := x + 1; y < s; y++ {
			keep := int64(m.W[p[x]*s+x]) + int64(m.W[p[y]*s+y])
			swap := int64(m.W[p[y]*s+x]) + int64(m.W[p[x]*s+y])
			if keep > swap {
				t.Fatalf("improving swap remains after best-improvement convergence")
			}
		}
	}
	// Best-improvement applies one swap per pass.
	if st.Swaps >= int64(st.Passes) {
		t.Errorf("swaps %d ≥ passes %d for best-improvement", st.Swaps, st.Passes)
	}
}

func TestMonotoneErrorDecreaseProperty(t *testing.T) {
	// Property: from any random start, the result never has higher error
	// than the start, and is always a valid permutation.
	f := func(seed uint64, rawS uint8) bool {
		s := int(rawS)%40 + 2
		m := randCosts(s, int64(seed))
		start := perm.Random(s, seed)
		p, _, err := Serial(m, start, Options{})
		if err != nil || p.Validate() != nil {
			return false
		}
		return m.Total(p) <= m.Total(start)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParallelMonotoneProperty(t *testing.T) {
	dev := cuda.New(4)
	f := func(seed uint64, rawS uint8) bool {
		s := int(rawS)%30 + 2
		m := randCosts(s, int64(seed))
		start := perm.Random(s, seed)
		p, _, err := Parallel(dev, m, start, nil, Options{})
		if err != nil || p.Validate() != nil {
			return false
		}
		return m.Total(p) <= m.Total(start)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRejectsBadStarts(t *testing.T) {
	m := randCosts(8, 1)
	if _, _, err := Serial(m, perm.Perm{0, 1}, Options{}); err == nil {
		t.Error("Serial accepted short start")
	}
	if _, _, err := Serial(m, perm.Perm{0, 0, 1, 2, 3, 4, 5, 6}, Options{}); err == nil {
		t.Error("Serial accepted non-bijection")
	}
	if _, _, err := Parallel(cuda.New(1), m, perm.Perm{0}, nil, Options{}); err == nil {
		t.Error("Parallel accepted short start")
	}
	wrong := edgecolor.Complete(6)
	if _, _, err := Parallel(cuda.New(1), m, perm.Identity(8), wrong, Options{}); err == nil {
		t.Error("Parallel accepted a coloring of the wrong size")
	}
}

func TestWithRestartsNeverWorseThanSingleStart(t *testing.T) {
	m := randCosts(30, 11)
	single, _, err := Serial(m, perm.Identity(30), Options{})
	if err != nil {
		t.Fatal(err)
	}
	best, cost, _, err := WithRestarts(m, 4, 99, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Validate(); err != nil {
		t.Fatal(err)
	}
	if cost > m.Total(single) {
		t.Errorf("restarts (%d) worse than single start (%d)", cost, m.Total(single))
	}
	if cost != m.Total(best) {
		t.Error("reported cost does not match returned assignment")
	}
}

func TestSwapCountsConsistent(t *testing.T) {
	m := sceneCosts(t, 64, 8)
	_, st, err := Serial(m, perm.Identity(m.S), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Swaps <= 0 {
		t.Error("no swaps recorded on a non-trivial instance")
	}
}

func BenchmarkSerialS256(b *testing.B) {
	m := sceneCosts(b, 256, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Serial(m, perm.Identity(m.S), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelS256(b *testing.B) {
	m := sceneCosts(b, 256, 16)
	dev := cuda.New(0)
	coloring := edgecolor.Complete(m.S)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parallel(dev, m, perm.Identity(m.S), coloring, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialS1024(b *testing.B) {
	m := sceneCosts(b, 512, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Serial(m, perm.Identity(m.S), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelS1024(b *testing.B) {
	m := sceneCosts(b, 512, 32)
	dev := cuda.New(0)
	coloring := edgecolor.Complete(m.S)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parallel(dev, m, perm.Identity(m.S), coloring, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
