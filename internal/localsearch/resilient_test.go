package localsearch

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/edgecolor"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/retry"
	"repro/internal/trace"
)

// testMatrix builds a deterministic pseudo-random S×S cost matrix.
func testMatrix(s int, seed uint64) *metric.Matrix {
	m := metric.NewMatrix(s)
	x := seed
	for i := range m.W {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		m.W[i] = metric.Cost((z ^ (z >> 31)) % 10000)
	}
	return m
}

func fastRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

// TestResilientHealthyMatchesParallel: with no faults the resilient search is
// the parallel search — same assignment, zero retries, zero degradations.
func TestResilientHealthyMatchesParallel(t *testing.T) {
	const s = 64
	m := testMatrix(s, 1)
	coloring := edgecolor.Complete(s)
	start := perm.Random(s, 7)
	ctx := context.Background()

	ref, refSt, err := ParallelContext(ctx, cuda.New(4), m, start, coloring, Options{})
	if err != nil {
		t.Fatalf("ParallelContext: %v", err)
	}
	got, st, err := ParallelResilientContext(ctx, cuda.New(4), m, start, coloring, Options{}, Resilience{Retry: fastRetry()})
	if err != nil {
		t.Fatalf("ParallelResilientContext: %v", err)
	}
	if !got.Equal(ref) {
		t.Fatal("healthy resilient search diverged from ParallelContext")
	}
	if st.Retries != 0 || st.Degraded != 0 {
		t.Fatalf("healthy run reports Retries=%d Degraded=%d, want 0/0", st.Retries, st.Degraded)
	}
	if st.Passes != refSt.Passes || st.Swaps != refSt.Swaps {
		t.Fatalf("healthy resilient stats %+v != parallel stats %+v", st, refSt)
	}
}

// TestResilientEveryOtherLaunch: transient faults on every other launch are
// absorbed by retries — identical result, no degradation.
func TestResilientEveryOtherLaunch(t *testing.T) {
	const s = 48
	m := testMatrix(s, 2)
	coloring := edgecolor.Complete(s)
	start := perm.Random(s, 3)
	ctx := context.Background()

	ref, _, err := ParallelContext(ctx, cuda.New(4), m, start, coloring, Options{})
	if err != nil {
		t.Fatalf("ParallelContext: %v", err)
	}
	dev := cuda.New(4).WithFaults(&cuda.FaultPlan{EveryNth: 2})
	tree := trace.NewTree()
	got, st, err := ParallelResilientContext(ctx, dev, m, start, coloring, Options{Trace: tree}, Resilience{Retry: fastRetry()})
	if err != nil {
		t.Fatalf("resilient search under every-other-launch storm: %v", err)
	}
	if !got.Equal(ref) {
		t.Fatal("fault-storm result diverged from healthy run")
	}
	if st.Retries == 0 {
		t.Fatal("every-other-launch storm caused no retries")
	}
	if st.Degraded != 0 {
		t.Fatalf("transient storm degraded %d classes; retries should have absorbed it", st.Degraded)
	}
	stats := tree.Snapshot()
	if stats.Counter(trace.CounterLaunchFaults) == 0 || stats.Counter(trace.CounterLaunchRetries) == 0 {
		t.Fatalf("trace counters not advanced: faults=%d retries=%d",
			stats.Counter(trace.CounterLaunchFaults), stats.Counter(trace.CounterLaunchRetries))
	}
}

// TestResilientDeviceLostMidSearch: losing the device mid-search degrades the
// remaining classes to the host with a bit-identical final assignment.
func TestResilientDeviceLostMidSearch(t *testing.T) {
	const s = 48
	m := testMatrix(s, 4)
	coloring := edgecolor.Complete(s)
	start := perm.Random(s, 9)
	ctx := context.Background()

	ref, _, err := ParallelContext(ctx, cuda.New(4), m, start, coloring, Options{})
	if err != nil {
		t.Fatalf("ParallelContext: %v", err)
	}
	// Kill the device on its 5th launch: some classes run on the device,
	// everything after runs on the host.
	dev := cuda.New(4).WithFaults(&cuda.FaultPlan{Nth: []int64{5}, Err: cuda.ErrDeviceLost})
	got, st, err := ParallelResilientContext(ctx, dev, m, start, coloring, Options{}, Resilience{Retry: fastRetry()})
	if err != nil {
		t.Fatalf("resilient search with mid-run device loss: %v", err)
	}
	if !got.Equal(ref) {
		t.Fatal("degraded result diverged from healthy run")
	}
	if st.Degraded == 0 {
		t.Fatal("device loss caused no degraded classes")
	}
	if !dev.Lost() {
		t.Fatal("device not marked lost")
	}
}

// TestResilientExhaustedRetriesDegrade: a launch that fails every attempt
// falls back to the host for that class and the search still matches the
// healthy reference.
func TestResilientExhaustedRetriesDegrade(t *testing.T) {
	const s = 32
	m := testMatrix(s, 5)
	coloring := edgecolor.Complete(s)
	start := perm.Identity(s)
	ctx := context.Background()

	ref, _, err := ParallelContext(ctx, cuda.New(2), m, start, coloring, Options{})
	if err != nil {
		t.Fatalf("ParallelContext: %v", err)
	}
	dev := cuda.New(2).WithFaults(&cuda.FaultPlan{}) // zero plan: every launch fails
	got, st, err := ParallelResilientContext(ctx, dev, m, start, coloring, Options{}, Resilience{Retry: fastRetry()})
	if err != nil {
		t.Fatalf("resilient search under total storm: %v", err)
	}
	if !got.Equal(ref) {
		t.Fatal("fully-degraded result diverged from healthy run")
	}
	if st.Degraded == 0 {
		t.Fatal("total storm produced no degraded classes")
	}
}

// TestResilientDisableFallback: with the host fallback off, exhausted
// retries fail the search with the launch error.
func TestResilientDisableFallback(t *testing.T) {
	const s = 16
	m := testMatrix(s, 6)
	dev := cuda.New(2).WithFaults(&cuda.FaultPlan{})
	_, _, err := ParallelResilientContext(context.Background(), dev, m, perm.Identity(s), nil,
		Options{}, Resilience{Retry: fastRetry(), DisableFallback: true})
	if !errors.Is(err, cuda.ErrLaunchFailed) {
		t.Fatalf("got %v, want ErrLaunchFailed", err)
	}
}

// TestResilientCancelledMidStorm: context cancellation during a fault storm
// surfaces as the context error, not a degradation.
func TestResilientCancelledMidStorm(t *testing.T) {
	const s = 32
	m := testMatrix(s, 8)
	dev := cuda.New(2).WithFaults(&cuda.FaultPlan{Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := ParallelResilientContext(ctx, dev, m, perm.Identity(s), nil, Options{}, Resilience{Retry: fastRetry()})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
