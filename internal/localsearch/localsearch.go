// Package localsearch implements the paper's approximation algorithms:
// the serial pairwise-swap local search (Algorithm 1) and its parallel
// variant scheduled by an edge coloring of K_S (Algorithm 2).
//
// State is an assignment p with p[v] = u (input tile u at target position
// v); the improving-swap test for positions x and y is Eq. from Algorithm 1:
//
//	E(I_{p[x]}, T_x) + E(I_{p[y]}, T_y) > E(I_{p[y]}, T_x) + E(I_{p[x]}, T_y)
//
// Every applied swap strictly decreases the integer total error of Eq. (2),
// so both algorithms terminate; tests assert the monotone decrease and the
// paper's observed pass counts (k ≤ 9, 8, 16 for S = 16², 32², 64²).
package localsearch

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cuda"
	"repro/internal/edgecolor"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/retry"
	"repro/internal/trace"
)

// ErrBadStart reports a start assignment unusable for the matrix.
var ErrBadStart = errors.New("localsearch: bad start assignment")

// Stats describes one local-search run.
type Stats struct {
	Passes   int   // number of full sweeps (the paper's k)
	Swaps    int64 // improving swaps applied
	Attempts int64 // pair tests evaluated (exhaustive sweeps test S(S−1)/2 each)
	// Retries counts re-attempts of faulted color-class launches (resilient
	// search only; zero on a healthy device).
	Retries int64
	// Degraded counts color-class sweeps that ran on the host after device
	// retries were exhausted or the device was lost (resilient search only).
	Degraded int64
	// Partial marks a run stopped by cancellation in anytime mode
	// (Options.Anytime): the returned assignment is the valid best-so-far
	// state at the stop point, not a converged swap-local optimum.
	Partial bool
	// Cost is the Eq. (2) total error of the returned assignment, populated
	// only on Partial returns (complete runs leave it zero — callers evaluate
	// the matrix when they need the final cost).
	Cost int64
}

// Progress receives one convergence sample per completed sweep round: the
// 1-based round number, the Eq. (2) total error of the assignment after the
// round, and the cumulative applied-swap count. The local searches maintain
// the error incrementally from the applied swap deltas, so sampling adds one
// O(S) evaluation at the start of the run and O(1) per sweep.
// telemetry.ConvergenceRecorder.Sweep has exactly this signature.
type Progress func(round int, cost, swaps int64)

// Options tunes the search. The zero value reproduces the paper exactly.
type Options struct {
	// MaxPasses caps the number of sweeps; 0 means run to convergence
	// (guaranteed to terminate — the total error is a non-negative integer
	// that every swap strictly decreases).
	MaxPasses int
	// Trace optionally receives sweep-round / swap-attempt / improving-swap
	// counters as the search runs; nil traces nothing.
	Trace trace.Collector
	// Progress optionally receives a cost sample after every sweep round —
	// the cost-vs-work convergence curve; nil records nothing and the search
	// skips the cost bookkeeping entirely.
	Progress Progress
	// Candidates, when positive, makes SerialDirty warm-start with top-K
	// candidate-list sweeps (K = Candidates) before certifying the plateau
	// with exhaustive dirty sweeps. Ignored by the other searches.
	Candidates int
	// CandidateLists, when non-nil, supplies the warm phase's per-position
	// candidate tiles directly — one list per target position — instead of
	// extracting top-K matrix columns. StoreCandidates derives such lists
	// from the tile stores' thumbnail feature vectors without touching the
	// matrix. Setting it enables the warm phase even when Candidates is 0.
	// Ignored by the searches without a warm phase.
	CandidateLists [][]int32
	// Anytime makes cancellation a result instead of an error: when ctx
	// expires mid-run the search stops at the nearest safe point — a row
	// boundary for the serial searches, a color-class boundary for the
	// parallel one, an epoch for annealing — and returns the current
	// assignment (always a valid permutation; swaps are atomic) with
	// Stats.Partial set and Stats.Cost the achieved Eq. (2) error. The
	// default (false) keeps the original contract: cancellation discards
	// the partial assignment and returns the ctx error.
	Anytime bool
}

// ctxErr returns ctx's error if it is already done, nil otherwise — the
// non-blocking check the searches run between sweeps and color classes.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// anytimeStop finalises a partial result: the current assignment is always
// valid (swaps are atomic), so anytime mode returns it with the achieved
// Eq. (2) cost instead of the ctx error.
func anytimeStop(m *metric.Matrix, p perm.Perm, st *Stats) (perm.Perm, Stats, error) {
	st.Partial = true
	st.Cost = m.Total(p)
	return p, *st, nil
}

// checkStart validates (m, start) and returns a working copy of start.
func checkStart(m *metric.Matrix, start perm.Perm) (perm.Perm, error) {
	if len(start) != m.S {
		return nil, fmt.Errorf("localsearch: %d-element start for S = %d: %w", len(start), m.S, ErrBadStart)
	}
	if err := start.Validate(); err != nil {
		return nil, fmt.Errorf("localsearch: %v: %w", err, ErrBadStart)
	}
	return start.Clone(), nil
}

// Serial runs Algorithm 1 from the given start assignment: repeated sweeps
// over all position pairs x < y, swapping whenever the swap reduces the
// error, until a sweep applies no swap. Swaps take effect immediately within
// a sweep (first-improvement), exactly as in the paper's listing.
func Serial(m *metric.Matrix, start perm.Perm, opts Options) (perm.Perm, Stats, error) {
	return SerialContext(context.Background(), m, start, opts)
}

// SerialContext is Serial with cancellation: ctx is checked before every
// sweep (and, in anytime mode, at every row boundary inside the sweep), so
// cancellation latency is bounded by one sweep round. On cancellation the
// partial assignment is discarded and the ctx error is returned (wrapped;
// test with errors.Is) alongside the stats accumulated so far — unless
// Options.Anytime is set, in which case the best-so-far assignment is
// returned with Stats.Partial.
func SerialContext(ctx context.Context, m *metric.Matrix, start perm.Perm, opts Options) (perm.Perm, Stats, error) {
	p, err := checkStart(m, start)
	if err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	s := m.S
	w := m.W
	// The convergence curve is maintained incrementally: one O(S) evaluation
	// up front, then each applied swap's delta, so sampling never re-walks
	// the matrix.
	sample := opts.Progress != nil
	var curCost int64
	if sample {
		curCost = m.Total(p)
	}
	for {
		if err := ctxErr(ctx); err != nil {
			if opts.Anytime {
				return anytimeStop(m, p, &st)
			}
			return nil, st, fmt.Errorf("localsearch: serial search cancelled after %d sweeps: %w", st.Passes, err)
		}
		swapped := false
		swapsBefore := st.Swaps
		for x := 0; x < s; x++ {
			if opts.Anytime && ctxErr(ctx) != nil {
				// Row boundaries are safe points too: rows 0..x-1 of this
				// sweep tested pairs(x') = Σ_{i<x}(s-1-i) = x(2s-x-1)/2.
				st.Attempts += int64(x) * int64(2*s-x-1) / 2
				trace.Count(opts.Trace, trace.CounterSwapAttempts, int64(x)*int64(2*s-x-1)/2)
				trace.Count(opts.Trace, trace.CounterImprovingSwaps, st.Swaps-swapsBefore)
				return anytimeStop(m, p, &st)
			}
			// Hoist the x-dependent row pointers; p[x] changes when a swap
			// lands, so reload inside the y loop only after swaps.
			px := p[x]
			for y := x + 1; y < s; y++ {
				py := p[y]
				keep := int64(w[px*s+x]) + int64(w[py*s+y])
				swap := int64(w[py*s+x]) + int64(w[px*s+y])
				if keep > swap {
					p[x], p[y] = py, px
					px = py
					swapped = true
					st.Swaps++
					if sample {
						curCost += swap - keep
					}
				}
			}
		}
		st.Passes++
		st.Attempts += int64(s) * int64(s-1) / 2
		trace.Count(opts.Trace, trace.CounterSweepRounds, 1)
		trace.Count(opts.Trace, trace.CounterSwapAttempts, int64(s)*int64(s-1)/2)
		trace.Count(opts.Trace, trace.CounterImprovingSwaps, st.Swaps-swapsBefore)
		if sample {
			opts.Progress(st.Passes, curCost, st.Swaps)
		}
		if !swapped || (opts.MaxPasses > 0 && st.Passes >= opts.MaxPasses) {
			break
		}
	}
	return p, st, nil
}

// SerialBestImprovement is the best-improvement ablation of Algorithm 1:
// each sweep finds the single most-improving swap and applies only that.
// It converges to the same kind of swap-local optimum but needs one sweep
// per swap, which is why the paper's first-improvement sweep is the right
// design — the ablation bench quantifies the gap.
func SerialBestImprovement(m *metric.Matrix, start perm.Perm, opts Options) (perm.Perm, Stats, error) {
	p, err := checkStart(m, start)
	if err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	s := m.S
	w := m.W
	for {
		bestDelta := int64(0)
		bestX, bestY := -1, -1
		for x := 0; x < s; x++ {
			px := p[x]
			for y := x + 1; y < s; y++ {
				py := p[y]
				delta := int64(w[py*s+x]) + int64(w[px*s+y]) -
					int64(w[px*s+x]) - int64(w[py*s+y])
				if delta < bestDelta {
					bestDelta = delta
					bestX, bestY = x, y
				}
			}
		}
		st.Passes++
		st.Attempts += int64(s) * int64(s-1) / 2
		if bestX < 0 {
			break
		}
		p[bestX], p[bestY] = p[bestY], p[bestX]
		st.Swaps++
		if opts.MaxPasses > 0 && st.Passes >= opts.MaxPasses {
			break
		}
	}
	return p, st, nil
}

// pairsPerBlock is the number of color-class pairs each CUDA block handles
// in the parallel sweep. The per-pair work is four matrix reads, so blocks
// batch pairs to amortise scheduling.
const pairsPerBlock = 256

// Parallel runs Algorithm 2 on the device: each sweep walks the color
// classes of K_S in order, launching one kernel per class whose threads
// test-and-swap the class's pairs concurrently. Pairs within a class are
// vertex-disjoint (guaranteed by the coloring), so the concurrent swaps
// touch disjoint entries of the assignment and each applied swap strictly
// improves the error just as in the serial algorithm.
//
// coloring must be a verified coloring of K_S; pass nil to have one built
// (the paper precomputes it once per S and reuses it across images — reuse
// by passing the same coloring to repeated calls).
func Parallel(dev *cuda.Device, m *metric.Matrix, start perm.Perm, coloring *edgecolor.Coloring, opts Options) (perm.Perm, Stats, error) {
	return ParallelContext(context.Background(), dev, m, start, coloring, opts)
}

// KernelSwapSweep is the kernel name the parallel sweep launches under (one
// launch per color class) — the cuda.FaultPlan.Kernel target for Step 3.
const KernelSwapSweep = "swap-sweep"

// Resilience configures the fault-tolerant parallel search.
type Resilience struct {
	// Retry is the per-class-launch retry schedule (zero value = defaults:
	// 3 attempts, exponential backoff with jitter).
	Retry retry.Policy
	// DisableFallback turns off the host fallback: exhausted retries fail
	// the search instead of degrading.
	DisableFallback bool
}

// ParallelContext is Parallel with cancellation: ctx is checked before every
// sweep and between the kernel launches of consecutive color classes (the
// paper's global barriers), so cancellation latency is bounded by one
// class's kernel. The partial assignment is discarded on cancellation.
func ParallelContext(ctx context.Context, dev *cuda.Device, m *metric.Matrix, start perm.Perm, coloring *edgecolor.Coloring, opts Options) (perm.Perm, Stats, error) {
	return parallelSearch(ctx, dev, m, start, coloring, opts, nil)
}

// ParallelResilientContext is ParallelContext through the fault-aware launch
// path: each color-class launch goes through res.Retry (faults and
// re-attempts are counted on opts.Trace as cuda.launch-faults and
// cuda.launch-retries), and a class whose retries are exhausted — or any
// class after the device reports cuda.ErrDeviceLost — is swept on the host
// instead, counted in Stats.Degraded.
//
// The degraded result is bit-identical to the healthy parallel run: a faulted
// launch fails before executing any pair (the fault gate precedes the
// kernel), pairs within a class are vertex-disjoint so their execution order
// cannot matter, and the host sweep applies exactly the kernel's test-and-
// swap to exactly the class's pairs. The retry unit is one class launch
// because launches are Algorithm 2's global barriers — see DESIGN.md.
func ParallelResilientContext(ctx context.Context, dev *cuda.Device, m *metric.Matrix, start perm.Perm, coloring *edgecolor.Coloring, opts Options, res Resilience) (perm.Perm, Stats, error) {
	return parallelSearch(ctx, dev, m, start, coloring, opts, &res)
}

// parallelSearch is the shared implementation; res == nil selects the
// original panic-on-misuse launch path with no retry machinery.
func parallelSearch(ctx context.Context, dev *cuda.Device, m *metric.Matrix, start perm.Perm, coloring *edgecolor.Coloring, opts Options, res *Resilience) (perm.Perm, Stats, error) {
	p, err := checkStart(m, start)
	if err != nil {
		return nil, Stats{}, err
	}
	if coloring == nil {
		coloring = edgecolor.Complete(m.S)
	} else if coloring.N != m.S {
		return nil, Stats{}, fmt.Errorf("localsearch: coloring of K_%d for S = %d: %w", coloring.N, m.S, ErrBadStart)
	}
	var st Stats
	s := m.S
	w := m.W
	var swapCount atomic.Int64
	// Convergence sampling mirrors the serial search: one O(S) evaluation up
	// front, then per-block swap deltas folded into an atomic accumulator
	// (the concurrent swaps touch disjoint pairs, so the deltas are exact).
	sample := opts.Progress != nil
	var cost0 int64
	var costDelta atomic.Int64
	if sample {
		cost0 = m.Total(p)
	}
	// Resilient-path state: one retry-policy copy for the whole search (its
	// jitter stream advances across classes) and a sticky device-dead flag —
	// once the device is lost, remaining classes go straight to the host
	// without further launch attempts. A nil device with fallback enabled is
	// the fully-degraded case: every class runs on the host from the start.
	var pol retry.Policy
	if res != nil {
		pol = res.Retry
	}
	if pol.OnBackoff == nil {
		// Backoff sleeps run on this (the search) goroutine, so the span
		// nests correctly in the caller's tree.
		pol.OnBackoff = func(sleep func() error) error {
			defer trace.Start(opts.Trace, trace.SpanRetryBackoff).End()
			return sleep()
		}
	}
	deviceDead := false
	if dev == nil {
		if res == nil || res.DisableFallback {
			return nil, Stats{}, errors.New("localsearch: parallel search requires a device")
		}
		deviceDead = true
	}
	for {
		if err := ctxErr(ctx); err != nil {
			st.Swaps = swapCount.Load()
			if opts.Anytime {
				return anytimeStop(m, p, &st)
			}
			return nil, st, fmt.Errorf("localsearch: parallel search cancelled after %d sweeps: %w", st.Passes, err)
		}
		swapsBefore := swapCount.Load()
		var swapped atomic.Bool
		for ci, class := range coloring.Classes {
			if ci > 0 {
				// The launch boundary below is the natural cancellation
				// point between color classes: all prior launches completed,
				// so the assignment is a consistent snapshot.
				if err := ctxErr(ctx); err != nil {
					st.Swaps = swapCount.Load()
					if opts.Anytime {
						return anytimeStop(m, p, &st)
					}
					return nil, st, fmt.Errorf("localsearch: parallel search cancelled in sweep %d: %w", st.Passes+1, err)
				}
			}
			pairs := class
			grid := (len(pairs) + pairsPerBlock - 1) / pairsPerBlock
			if grid == 0 {
				continue
			}
			// One kernel launch per color class; the launch boundary is the
			// global barrier between classes (paper §V).
			kernel := func(b *cuda.Block) {
				lo := b.Idx * pairsPerBlock
				hi := lo + pairsPerBlock
				if hi > len(pairs) {
					hi = len(pairs)
				}
				local := int64(0)
				localDelta := int64(0)
				b.StrideLoop(hi-lo, func(i int) {
					pr := pairs[lo+i]
					x, y := pr.U, pr.V
					px, py := p[x], p[y]
					keep := int64(w[px*s+x]) + int64(w[py*s+y])
					swap := int64(w[py*s+x]) + int64(w[px*s+y])
					if keep > swap {
						p[x], p[y] = py, px
						local++
						localDelta += swap - keep
					}
				})
				if local > 0 {
					swapCount.Add(local)
					swapped.Store(true)
					if sample {
						costDelta.Add(localDelta)
					}
				}
			}
			if res == nil {
				dev.Launch(grid, pairsPerBlock, kernel)
				continue
			}
			// hostClass is the degraded path: the kernel's test-and-swap over
			// exactly this class's pairs, on the host. Pairs within a class
			// are vertex-disjoint, so the sequential order cannot produce a
			// different result than the concurrent kernel — bit-identical.
			hostClass := func() {
				local := int64(0)
				localDelta := int64(0)
				for _, pr := range pairs {
					x, y := pr.U, pr.V
					px, py := p[x], p[y]
					keep := int64(w[px*s+x]) + int64(w[py*s+y])
					swap := int64(w[py*s+x]) + int64(w[px*s+y])
					if keep > swap {
						p[x], p[y] = py, px
						local++
						localDelta += swap - keep
					}
				}
				if local > 0 {
					swapCount.Add(local)
					swapped.Store(true)
					if sample {
						costDelta.Add(localDelta)
					}
				}
			}
			if deviceDead {
				hostClass()
				st.Degraded++
				continue
			}
			lerr := pol.Do(ctx, func(attempt int) error {
				if attempt > 1 {
					st.Retries++
					trace.Count(opts.Trace, trace.CounterLaunchRetries, 1)
				}
				err := dev.LaunchErr(ctx, KernelSwapSweep, grid, pairsPerBlock, kernel)
				if err != nil {
					trace.Count(opts.Trace, trace.CounterLaunchFaults, 1)
					if errors.Is(err, cuda.ErrDeviceLost) {
						// Retrying on a lost device is pointless; fall
						// through to the host immediately.
						return retry.Stop(err)
					}
				}
				return err
			})
			if lerr == nil {
				continue
			}
			if errors.Is(lerr, context.Canceled) || errors.Is(lerr, context.DeadlineExceeded) {
				st.Swaps = swapCount.Load()
				if opts.Anytime {
					// The faulted launch executed no pairs (the fault gate
					// precedes the kernel), so p is a consistent snapshot.
					return anytimeStop(m, p, &st)
				}
				return nil, st, fmt.Errorf("localsearch: parallel search cancelled in sweep %d: %w", st.Passes+1, lerr)
			}
			if res.DisableFallback {
				st.Swaps = swapCount.Load()
				return nil, st, fmt.Errorf("localsearch: class launch failed with host fallback disabled: %w", lerr)
			}
			if errors.Is(lerr, cuda.ErrDeviceLost) {
				deviceDead = true
			}
			hostClass()
			st.Degraded++
		}
		st.Passes++
		st.Attempts += int64(s) * int64(s-1) / 2
		trace.Count(opts.Trace, trace.CounterSweepRounds, 1)
		trace.Count(opts.Trace, trace.CounterSwapAttempts, int64(s)*int64(s-1)/2)
		trace.Count(opts.Trace, trace.CounterImprovingSwaps, swapCount.Load()-swapsBefore)
		if sample {
			opts.Progress(st.Passes, cost0+costDelta.Load(), swapCount.Load())
		}
		if !swapped.Load() || (opts.MaxPasses > 0 && st.Passes >= opts.MaxPasses) {
			break
		}
	}
	st.Swaps = swapCount.Load()
	return p, st, nil
}

// WithRestarts runs Algorithm 1 from the identity start plus `restarts`
// seeded random starts and keeps the lowest-error result — the restart
// ablation showing how close single-start local search already gets to the
// matching optimum. Returns the winning assignment, its error under m, and
// the stats of the winning run.
func WithRestarts(m *metric.Matrix, restarts int, seed uint64, opts Options) (perm.Perm, int64, Stats, error) {
	best, st, err := Serial(m, perm.Identity(m.S), opts)
	if err != nil {
		return nil, 0, Stats{}, err
	}
	bestCost := m.Total(best)
	for r := 0; r < restarts; r++ {
		cand, cst, err := Serial(m, perm.Random(m.S, seed+uint64(r)), opts)
		if err != nil {
			return nil, 0, Stats{}, err
		}
		if c := m.Total(cand); c < bestCost {
			best, bestCost, st = cand, c, cst
		}
	}
	return best, bestCost, st, nil
}
