// Delta-driven variants of Algorithm 1: dirty-pair tracking and candidate
// lists.
//
// The exhaustive sweep re-tests all S(S−1)/2 pairs every round, but a pair's
// improving-swap test depends only on (p[x], x, p[y], y) — if neither
// position changed occupant since the pair last failed the test, it fails
// again. SerialDirty exploits this with per-position move clocks (the classic
// don't-look-bit scheme): a sweep skips every pair already scored after both
// endpoints last moved. Skipped pairs are exactly those whose test outcome is
// already known, so the applied-swap sequence — and therefore the final
// assignment and cost — is IDENTICAL to Serial's, pair for pair, while the
// attempt count collapses after the first sweep (TestSerialDirtyReplaysSerial
// asserts equality, BENCH_pipeline.json records the attempt reduction).
//
// Candidate lists (Options.Candidates > 0) add a warm-start phase in the
// spirit of He et al.'s candidate pruning: for each target position x, the K
// input tiles with the smallest E(I_u, T_x) are extracted from column x of
// the matrix, and warm sweeps only attempt swaps that would bring such a tile
// to x. Warm sweeps concentrate attempts where column-wise improvement is
// possible but cannot certify optimality, so the search always finishes with
// dirty exhaustive sweeps over the warmed assignment — the result is a
// genuine swap-local optimum of the full neighbourhood, the same fixed-point
// class Serial reaches (TestCandidatesReachSwapLocalPlateau asserts the
// plateau).
package localsearch

import (
	"context"
	"fmt"

	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/trace"
)

// dirtyState carries the move clocks of the don't-look scheme. clock counts
// applied swaps; lastMoved[x] is the clock value when position x last changed
// occupant (1 for "initial placement"); lastScored[x*s+y] (x < y) is the
// clock value when pair (x,y) was last known to fail the improving-swap test.
// The pair can be skipped iff lastScored ≥ both endpoints' lastMoved.
type dirtyState struct {
	s          int
	clock      int32
	lastMoved  []int32
	lastScored []int32
}

func newDirtyState(s int) *dirtyState {
	d := &dirtyState{
		s:          s,
		clock:      1,
		lastMoved:  make([]int32, s),
		lastScored: make([]int32, s*s),
	}
	for i := range d.lastMoved {
		d.lastMoved[i] = 1
	}
	return d
}

// moved records an applied swap at positions x < y: both endpoints move, and
// the swapped pair itself is provably non-improving in its new state (its
// keep/swap sums exchange roles), so it is marked scored at the new clock.
func (d *dirtyState) moved(x, y int) {
	d.clock++
	d.lastMoved[x] = d.clock
	d.lastMoved[y] = d.clock
	d.lastScored[x*d.s+y] = d.clock
}

// SerialDirty runs Algorithm 1 with dirty-pair tracking (and the candidate
// warm start when opts.Candidates > 0). See SerialDirtyContext.
func SerialDirty(m *metric.Matrix, start perm.Perm, opts Options) (perm.Perm, Stats, error) {
	return SerialDirtyContext(context.Background(), m, start, opts)
}

// SerialDirtyContext is the delta-driven serial search. With
// opts.Candidates == 0 it replays Serial exactly — same swaps in the same
// order, bit-identical final assignment — while attempting only pairs whose
// outcome is not already known. With opts.Candidates = K > 0 it first runs
// candidate-list warm sweeps (top-K tiles per position), then certifies a
// swap-local plateau with the dirty exhaustive sweeps; the result is then a
// fixed point of the full swap neighbourhood but not necessarily the one
// Serial finds. Cancellation mirrors SerialContext: checked between sweeps
// (and at row boundaries in anytime mode, where it returns the best-so-far
// assignment with Stats.Partial instead of an error).
func SerialDirtyContext(ctx context.Context, m *metric.Matrix, start perm.Perm, opts Options) (perm.Perm, Stats, error) {
	p, err := checkStart(m, start)
	if err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	s := m.S
	w := m.W
	d := newDirtyState(s)
	sample := opts.Progress != nil
	var curCost int64
	if sample {
		curCost = m.Total(p)
	}
	if opts.Candidates > 0 || opts.CandidateLists != nil {
		if opts.CandidateLists != nil {
			if len(opts.CandidateLists) != s {
				return nil, st, fmt.Errorf("localsearch: %d candidate lists for S = %d", len(opts.CandidateLists), s)
			}
			for x, list := range opts.CandidateLists {
				for _, u := range list {
					if u < 0 || int(u) >= s {
						return nil, st, fmt.Errorf("localsearch: candidate tile %d at position %d out of range for S = %d", u, x, s)
					}
				}
			}
		}
		partial, err := warmCandidates(ctx, m, p, d, opts, &st, &curCost)
		if err != nil {
			return nil, st, err
		}
		if partial {
			return anytimeStop(m, p, &st)
		}
	}
	for {
		if err := ctxErr(ctx); err != nil {
			if opts.Anytime {
				return anytimeStop(m, p, &st)
			}
			return nil, st, fmt.Errorf("localsearch: dirty search cancelled after %d sweeps: %w", st.Passes, err)
		}
		swapped := false
		swapsBefore := st.Swaps
		attemptsBefore := st.Attempts
		for x := 0; x < s; x++ {
			if opts.Anytime && x&63 == 0 && ctxErr(ctx) != nil {
				// Row boundaries are safe points; attempts were counted
				// incrementally, so the stats already reflect the partial
				// sweep exactly.
				trace.Count(opts.Trace, trace.CounterSwapAttempts, st.Attempts-attemptsBefore)
				trace.Count(opts.Trace, trace.CounterImprovingSwaps, st.Swaps-swapsBefore)
				return anytimeStop(m, p, &st)
			}
			px := p[x]
			mx := d.lastMoved[x]
			scored := d.lastScored[x*s : (x+1)*s]
			for y := x + 1; y < s; y++ {
				if sc := scored[y]; sc >= mx && sc >= d.lastMoved[y] {
					continue
				}
				st.Attempts++
				py := p[y]
				keep := int64(w[px*s+x]) + int64(w[py*s+y])
				swap := int64(w[py*s+x]) + int64(w[px*s+y])
				if keep > swap {
					p[x], p[y] = py, px
					px = py
					swapped = true
					st.Swaps++
					d.moved(x, y)
					mx = d.lastMoved[x]
					if sample {
						curCost += swap - keep
					}
				} else {
					scored[y] = d.clock
				}
			}
		}
		st.Passes++
		trace.Count(opts.Trace, trace.CounterSweepRounds, 1)
		trace.Count(opts.Trace, trace.CounterSwapAttempts, st.Attempts-attemptsBefore)
		trace.Count(opts.Trace, trace.CounterImprovingSwaps, st.Swaps-swapsBefore)
		if sample {
			opts.Progress(st.Passes, curCost, st.Swaps)
		}
		if !swapped || (opts.MaxPasses > 0 && st.Passes >= opts.MaxPasses) {
			break
		}
	}
	return p, st, nil
}

// topKColumn returns the K input tiles with the smallest E(I_u, T_x) —
// column x of the matrix — by insertion into a small sorted prefix. K is
// expected to be tens at most, so the O(S·K) scan beats sorting the column.
func topKColumn(m *metric.Matrix, x, k int) []int32 {
	s := m.S
	w := m.W
	if k > s {
		k = s
	}
	cand := make([]int32, 0, k)
	costs := make([]metric.Cost, 0, k)
	for u := 0; u < s; u++ {
		c := w[u*s+x]
		if len(cand) == k && c >= costs[k-1] {
			continue
		}
		// Find insertion point from the tail (the common case rejects at
		// the last slot, so the scan is short).
		i := len(costs)
		if i < k {
			cand = append(cand, 0)
			costs = append(costs, 0)
		} else {
			i--
		}
		for i > 0 && costs[i-1] > c {
			cand[i], costs[i] = cand[i-1], costs[i-1]
			i--
		}
		cand[i], costs[i] = int32(u), c
	}
	return cand
}

// warmCandidates runs the candidate-list warm phase: sweeps attempting only
// swaps that bring one of position x's candidate tiles to x, repeated until
// such a sweep applies no swap. Candidates come from opts.CandidateLists when
// supplied (e.g. StoreCandidates' thumbnail-derived lists) and from top-K
// matrix columns otherwise. Move clocks are maintained so the subsequent
// dirty exhaustive sweeps skip everything the warm phase left untouched.
// In anytime mode cancellation returns partial=true (the caller finalises
// the snapshot) instead of an error.
func warmCandidates(ctx context.Context, m *metric.Matrix, p perm.Perm, d *dirtyState, opts Options, st *Stats, curCost *int64) (partial bool, err error) {
	s := m.S
	w := m.W
	cands := opts.CandidateLists
	if cands == nil {
		k := opts.Candidates
		cands = make([][]int32, s)
		for x := 0; x < s; x++ {
			cands[x] = topKColumn(m, x, k)
		}
	}
	// pos is the inverse assignment: pos[u] = position currently holding
	// input tile u, maintained across swaps.
	pos := make([]int32, s)
	for v, u := range p {
		pos[u] = int32(v)
	}
	sample := opts.Progress != nil
	for {
		if err := ctxErr(ctx); err != nil {
			if opts.Anytime {
				return true, nil
			}
			return false, fmt.Errorf("localsearch: candidate warm phase cancelled after %d sweeps: %w", st.Passes, err)
		}
		swapped := false
		swapsBefore := st.Swaps
		attemptsBefore := st.Attempts
		for x := 0; x < s; x++ {
			for _, u := range cands[x] {
				y := int(pos[u])
				if y == x {
					continue
				}
				st.Attempts++
				px, py := p[x], p[y]
				keep := int64(w[px*s+x]) + int64(w[py*s+y])
				swap := int64(w[py*s+x]) + int64(w[px*s+y])
				if keep > swap {
					p[x], p[y] = py, px
					pos[py], pos[px] = int32(x), int32(y)
					swapped = true
					st.Swaps++
					lo, hi := x, y
					if lo > hi {
						lo, hi = hi, lo
					}
					d.moved(lo, hi)
					if sample {
						*curCost += swap - keep
					}
				}
			}
		}
		st.Passes++
		trace.Count(opts.Trace, trace.CounterSweepRounds, 1)
		trace.Count(opts.Trace, trace.CounterSwapAttempts, st.Attempts-attemptsBefore)
		trace.Count(opts.Trace, trace.CounterImprovingSwaps, st.Swaps-swapsBefore)
		if sample {
			opts.Progress(st.Passes, *curCost, st.Swaps)
		}
		if !swapped || (opts.MaxPasses > 0 && st.Passes >= opts.MaxPasses) {
			return false, nil
		}
	}
}
