package localsearch

import (
	"context"
	"errors"
	"testing"

	"repro/internal/metric"
	"repro/internal/perm"
)

// TestSerialDirtyReplaysSerial is the dirty search's correctness anchor: on
// random and real matrices it must retrace the exhaustive serial sweep
// exactly — identical final assignment, cost, pass and swap counts — while
// evaluating strictly fewer pairs whenever the search runs more than one
// sweep.
func TestSerialDirtyReplaysSerial(t *testing.T) {
	matrices := []*metric.Matrix{
		randCosts(40, 1),
		randCosts(64, 2),
		randCosts(97, 3),
		sceneCosts(t, 128, 16),
	}
	for mi, m := range matrices {
		for _, start := range []perm.Perm{perm.Identity(m.S), perm.Random(m.S, 11)} {
			want, wantSt, err := Serial(m, start, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, gotSt, err := SerialDirty(m, start, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("matrix %d: dirty assignment differs from serial", mi)
			}
			if gotSt.Passes != wantSt.Passes || gotSt.Swaps != wantSt.Swaps {
				t.Fatalf("matrix %d: dirty stats %+v != serial %+v", mi, gotSt, wantSt)
			}
			if m.Total(got) != m.Total(want) {
				t.Fatalf("matrix %d: costs differ", mi)
			}
			if wantSt.Passes > 1 && gotSt.Attempts >= wantSt.Attempts {
				t.Fatalf("matrix %d: dirty attempted %d of serial's %d pairs", mi, gotSt.Attempts, wantSt.Attempts)
			}
			if gotSt.Attempts > wantSt.Attempts {
				t.Fatalf("matrix %d: dirty attempted more pairs than serial", mi)
			}
		}
	}
}

// swapLocalOptimal reports whether no improving pair exists for p on m.
func swapLocalOptimal(m *metric.Matrix, p perm.Perm) bool {
	s := m.S
	w := m.W
	for x := 0; x < s; x++ {
		for y := x + 1; y < s; y++ {
			px, py := p[x], p[y]
			if int64(w[px*s+x])+int64(w[py*s+y]) > int64(w[py*s+x])+int64(w[px*s+y]) {
				return false
			}
		}
	}
	return true
}

// TestSerialDirtyReachesSwapLocalPlateau: with or without candidate warm
// sweeps the returned assignment admits no improving pairwise swap.
func TestSerialDirtyReachesSwapLocalPlateau(t *testing.T) {
	for _, k := range []int{0, 1, 4, 16, 1000} {
		for _, seed := range []int64{5, 6} {
			m := randCosts(48, seed)
			p, st, err := SerialDirty(m, perm.Identity(m.S), Options{Candidates: k})
			if err != nil {
				t.Fatal(err)
			}
			if !swapLocalOptimal(m, p) {
				t.Fatalf("candidates=%d seed=%d: result is not swap-local optimal", k, seed)
			}
			if st.Passes < 1 || st.Attempts < 1 {
				t.Fatalf("candidates=%d: degenerate stats %+v", k, st)
			}
		}
	}
}

// TestCandidatesSameCostClassAsExhaustive: the candidate-warmed search lands
// on a swap-local optimum whose cost is in the same regime as the exhaustive
// one (fixed points need not be identical, but warm sweeps must not wreck
// quality — the plateau certification bounds how far they can drift).
func TestCandidatesSameCostClassAsExhaustive(t *testing.T) {
	m := sceneCosts(t, 128, 16)
	base, _, err := Serial(m, perm.Identity(m.S), Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := SerialDirty(m, perm.Identity(m.S), Options{Candidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	bc, wc := m.Total(base), m.Total(warm)
	if float64(wc) > 1.1*float64(bc) {
		t.Fatalf("candidate-warmed cost %d more than 10%% above exhaustive %d", wc, bc)
	}
	if !swapLocalOptimal(m, warm) {
		t.Fatal("candidate-warmed result not swap-local optimal")
	}
}

// TestTopKColumn pins the candidate extraction on a hand-built matrix.
func TestTopKColumn(t *testing.T) {
	m := metric.NewMatrix(5)
	// Column 2 costs by input tile u: {9, 1, 8, 0, 5}.
	col := []metric.Cost{9, 1, 8, 0, 5}
	for u, c := range col {
		m.Set(u, 2, c)
	}
	got := topKColumn(m, 2, 3)
	want := []int32{3, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("topKColumn returned %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topKColumn = %v, want %v", got, want)
		}
	}
	if n := len(topKColumn(m, 2, 99)); n != 5 {
		t.Fatalf("K beyond S returned %d candidates", n)
	}
}

// TestSerialDirtyCancellation mirrors the serial search's contract: a
// cancelled context aborts between sweeps with a wrapped ctx error.
func TestSerialDirtyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := randCosts(32, 9)
	p, _, err := SerialDirtyContext(ctx, m, perm.Identity(m.S), Options{})
	if p != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want canceled", p, err)
	}
}

// TestSerialDirtyMaxPasses honours the sweep cap.
func TestSerialDirtyMaxPasses(t *testing.T) {
	m := sceneCosts(t, 64, 8)
	_, st, err := SerialDirty(m, perm.Identity(m.S), Options{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes != 1 {
		t.Fatalf("MaxPasses=1 ran %d passes", st.Passes)
	}
}

// TestSerialDirtyProgressMatchesSerial: the incremental convergence curve of
// the dirty replay equals the serial one sample for sample.
func TestSerialDirtyProgressMatchesSerial(t *testing.T) {
	m := randCosts(40, 12)
	type sample struct {
		round int
		cost  int64
		swaps int64
	}
	var a, b []sample
	if _, _, err := Serial(m, perm.Identity(m.S), Options{
		Progress: func(r int, c, s int64) { a = append(a, sample{r, c, s}) },
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SerialDirty(m, perm.Identity(m.S), Options{
		Progress: func(r int, c, s int64) { b = append(b, sample{r, c, s}) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("curve lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
