package localsearch

import (
	"testing"

	"repro/internal/assign"
	"repro/internal/perm"
)

func TestAnnealReturnsBestSeen(t *testing.T) {
	m := randCosts(40, 7)
	start := perm.Identity(40)
	best, bestErr, st, err := Anneal(m, start, AnnealOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Validate(); err != nil {
		t.Fatal(err)
	}
	if bestErr != m.Total(best) {
		t.Errorf("reported error %d != recomputed %d", bestErr, m.Total(best))
	}
	if bestErr > m.Total(start) {
		t.Errorf("annealing ended worse than start: %d > %d", bestErr, m.Total(start))
	}
	if st.Swaps == 0 {
		t.Error("no swaps accepted")
	}
	// Start untouched.
	if !start.IsIdentity() {
		t.Error("Anneal mutated its start")
	}
}

func TestAnnealDeterministicForSeed(t *testing.T) {
	m := randCosts(30, 3)
	a, ae, _, err := Anneal(m, perm.Identity(30), AnnealOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, be, _, err := Anneal(m, perm.Identity(30), AnnealOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || ae != be {
		t.Error("same seed produced different results")
	}
	c, _, _, err := Anneal(m, perm.Identity(30), AnnealOptions{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different seeds produced identical trajectories (very unlikely)")
	}
}

func TestAnnealNeverBeatsOptimum(t *testing.T) {
	m := randCosts(24, 9)
	opt, err := assign.JV(m.S, m.W)
	if err != nil {
		t.Fatal(err)
	}
	optErr, err := assign.TotalCost(m.S, m.W, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, bestErr, _, err := Anneal(m, perm.Identity(24), AnnealOptions{Seed: 5, Steps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if bestErr < optErr {
		t.Fatalf("annealing 'beat' the exact optimum: %d < %d — accounting bug", bestErr, optErr)
	}
}

func TestAnnealThenPolishReachesLocalOptimum(t *testing.T) {
	m := randCosts(32, 11)
	p, _, err := AnnealThenPolish(m, perm.Identity(32), AnnealOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := m.S
	for x := 0; x < s; x++ {
		for y := x + 1; y < s; y++ {
			keep := int64(m.W[p[x]*s+x]) + int64(m.W[p[y]*s+y])
			swap := int64(m.W[p[y]*s+x]) + int64(m.W[p[x]*s+y])
			if keep > swap {
				t.Fatal("polished result is not a swap-local optimum")
			}
		}
	}
}

func TestAnnealGetsCloseToOptimumOnRealMatrix(t *testing.T) {
	m := sceneCosts(t, 64, 8) // S = 64
	opt, err := assign.JV(m.S, m.W)
	if err != nil {
		t.Fatal(err)
	}
	optErr, _ := assign.TotalCost(m.S, m.W, opt)
	p, _, err := AnnealThenPolish(m, perm.Identity(m.S), AnnealOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Total(p)
	if float64(got) > 1.15*float64(optErr) {
		t.Errorf("anneal+polish %d more than 15%% above optimum %d", got, optErr)
	}
}

func TestAnnealValidation(t *testing.T) {
	m := randCosts(8, 1)
	if _, _, _, err := Anneal(m, perm.Perm{0, 1}, AnnealOptions{}); err == nil {
		t.Error("accepted short start")
	}
	if _, _, _, err := Anneal(m, perm.Identity(8), AnnealOptions{Steps: -1}); err == nil {
		t.Error("accepted negative steps")
	}
	if _, _, _, err := Anneal(m, perm.Identity(8), AnnealOptions{Alpha: 1.5}); err == nil {
		t.Error("accepted alpha ≥ 1")
	}
	if _, _, _, err := Anneal(m, perm.Identity(8), AnnealOptions{T0: -2}); err == nil {
		t.Error("accepted negative temperature")
	}
}

func TestAnnealTrivialInstance(t *testing.T) {
	m := randCosts(1, 1)
	p, e, _, err := Anneal(m, perm.Identity(1), AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || e != m.Total(p) {
		t.Error("S=1 annealing broken")
	}
}

func BenchmarkAnnealS256(b *testing.B) {
	m := sceneCosts(b, 256, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Anneal(m, perm.Identity(m.S), AnnealOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
