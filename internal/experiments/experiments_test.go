package experiments

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/synth"
)

// tinyConfig keeps experiment tests fast: 64px images, S = 4² and 8².
func tinyConfig() Config {
	return Config{
		Sizes:      []int{64},
		TileCounts: []int{4, 8},
		Pairs:      []Pair{{synth.Lena, synth.Sailboat}},
	}
}

func TestValidate(t *testing.T) {
	cfg := tinyConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyConfig()
	bad.TileCounts = []int{7}
	if err := bad.Validate(); err == nil {
		t.Error("accepted indivisible tile count")
	}
	bad = tinyConfig()
	bad.Pairs = []Pair{{"nope", synth.Lena}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted unknown scene")
	}
	bad = tinyConfig()
	bad.Sizes = nil
	if err := bad.Validate(); err == nil {
		t.Error("accepted empty sizes")
	}
}

func TestNewConfigMatchesPaperGrid(t *testing.T) {
	cfg := NewConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Sizes) != 3 || cfg.Sizes[0] != 512 || cfg.Sizes[2] != 2048 {
		t.Errorf("sizes %v", cfg.Sizes)
	}
	if len(cfg.TileCounts) != 3 || cfg.TileCounts[2] != 64 {
		t.Errorf("tile counts %v", cfg.TileCounts)
	}
	if len(cfg.Pairs) != 4 {
		t.Errorf("pairs %v", cfg.Pairs)
	}
}

func TestTable1ShapesHold(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	rows, err := cfg.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, c := range rows {
		// Optimization must not lose to either approximation.
		if c.ErrOpt > c.ErrApproxCPU || c.ErrOpt > c.ErrApproxGPU {
			t.Errorf("S=%d²: optimization %d vs approx cpu %d gpu %d",
				c.Tiles, c.ErrOpt, c.ErrApproxCPU, c.ErrApproxGPU)
		}
		// Approximation close to optimal (paper: within a few percent).
		if float64(c.ErrApproxCPU) > 1.2*float64(c.ErrOpt) {
			t.Errorf("S=%d²: approximation %d too far above optimum %d", c.Tiles, c.ErrApproxCPU, c.ErrOpt)
		}
	}
	// Error decreases as S grows (more, smaller tiles → finer reproduction).
	if rows[1].ErrOpt >= rows[0].ErrOpt {
		t.Errorf("error did not fall with S: %d → %d", rows[0].ErrOpt, rows[1].ErrOpt)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("Table I header missing from output")
	}
}

func TestSweepAndTables(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	cells, err := cfg.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.Step2CPU <= 0 || c.Step2GPU <= 0 || c.Step3ApproxCPU <= 0 || c.Step3ApproxGPU <= 0 {
			t.Errorf("cell %dx%d has non-positive timings: %+v", c.N, c.Tiles, c)
		}
		if c.Step2Scalar <= 0 || c.Step2Blocked <= 0 || c.Step3ApproxDirty <= 0 {
			t.Errorf("cell %dx%d missing ablation timings: %+v", c.N, c.Tiles, c)
		}
		if c.OptSkipped {
			t.Errorf("optimization skipped without MaxOptimizationS")
		}
		if c.PassesSerial < 1 || c.PassesDirty < 1 || c.PassesParallel < 1 {
			t.Errorf("pass counts missing: %+v", c)
		}
		if c.ErrApproxDirty != c.ErrApproxCPU {
			t.Errorf("dirty search error %d != serial %d", c.ErrApproxDirty, c.ErrApproxCPU)
		}
		if c.AttemptsSerial <= 0 || c.AttemptsDirty <= 0 || c.AttemptsDirty > c.AttemptsSerial {
			t.Errorf("attempt counts wrong: serial=%d dirty=%d", c.AttemptsSerial, c.AttemptsDirty)
		}
	}
	cfg.Table2(cells)
	cfg.Table3(cells)
	cfg.Table4(cells)
	out := buf.String()
	for _, want := range []string{"Table II", "Table III", "Table IV", "Vec×", "Dirty×", "GPU×", "Speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestMaxOptimizationSSkips(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxOptimizationS = 16 // allows 4², skips 8²
	rows, err := cfg.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].OptSkipped {
		t.Error("S=16 skipped despite cap 16")
	}
	if !rows[1].OptSkipped {
		t.Error("S=64 not skipped with cap 16")
	}
	if rows[1].ErrOpt != 0 || rows[1].Step3Opt != 0 {
		t.Error("skipped cell carries optimization results")
	}
}

func TestFigures(t *testing.T) {
	cfg := Config{
		Sizes:      []int{64},
		TileCounts: []int{4},
		Pairs:      PaperPairs(),
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg.Out = &buf

	f2, err := cfg.Figure2(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) != 4 {
		t.Errorf("figure 2: %d panels", len(f2))
	}
	f7, err := cfg.Figure7(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7) != 3 { // one tile count × three variants
		t.Errorf("figure 7: %d panels", len(f7))
	}
	f8, err := cfg.Figure8(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8) != 9 { // three pairs × three panels
		t.Errorf("figure 8: %d panels", len(f8))
	}
	// Every reported path must exist and be a PNG.
	for _, fr := range append(append(f2, f7...), f8...) {
		if fr.Path == "" {
			t.Errorf("%s: no path with an output dir configured", fr.Label)
			continue
		}
		data, err := os.ReadFile(fr.Path)
		if err != nil {
			t.Errorf("%s: %v", fr.Label, err)
			continue
		}
		if len(data) < 8 || data[1] != 'P' || data[2] != 'N' || data[3] != 'G' {
			t.Errorf("%s: not a PNG", fr.Label)
		}
		if filepath.Ext(fr.Path) != ".png" {
			t.Errorf("%s: unexpected extension", fr.Path)
		}
	}
	// Figure 7 mosaics must carry errors; optimization ≤ approximations.
	var opt, cpu int64
	for _, fr := range f7 {
		if fr.Error <= 0 {
			t.Errorf("%s: missing error", fr.Label)
		}
		if strings.Contains(fr.Label, "optimization") {
			opt = fr.Error
		}
		if strings.Contains(fr.Label, "approx-cpu") {
			cpu = fr.Error
		}
	}
	if opt > cpu {
		t.Errorf("figure 7: optimization error %d above approximation %d", opt, cpu)
	}
}

func TestFiguresWithoutDir(t *testing.T) {
	cfg := tinyConfig()
	out, err := cfg.Figure2("")
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range out {
		if fr.Path != "" {
			t.Errorf("%s: path %q without an output dir", fr.Label, fr.Path)
		}
	}
}

func TestMeasureAdaptiveRepetition(t *testing.T) {
	// Fast bodies must be repeated (result well under the 50ms floor)...
	d := measure(func() { time.Sleep(20 * time.Microsecond) })
	if d > 10*time.Millisecond {
		t.Errorf("fast body measured as %v", d)
	}
	if d <= 0 {
		t.Error("non-positive measurement")
	}
	// ...and slow bodies run exactly once (duration ≈ body time).
	d = measure(func() { time.Sleep(60 * time.Millisecond) })
	if d < 55*time.Millisecond || d > 200*time.Millisecond {
		t.Errorf("slow body measured as %v", d)
	}
}

func TestSpeedupGuardsZero(t *testing.T) {
	if speedup(time.Second, 0) != 0 {
		t.Error("zero denominator not guarded")
	}
	if s := speedup(2*time.Second, time.Second); s != 2 {
		t.Errorf("speedup = %v", s)
	}
}

func TestPairString(t *testing.T) {
	p := Pair{synth.Lena, synth.Sailboat}
	if p.String() != "lena → sailboat" {
		t.Errorf("Pair.String() = %q", p.String())
	}
}

func TestVirtualModeSweep(t *testing.T) {
	cfg := tinyConfig()
	cfg.VirtualSMs = 4
	cfg.VirtualLaunchOverhead = 2 * time.Microsecond
	cfg.VirtualCoresPerSM = 8
	cells, err := cfg.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Step2GPU <= 0 || c.Step3ApproxGPU <= 0 {
			t.Errorf("virtual timings not recorded: %+v", c)
		}
		// Virtual GPU Step-2 must beat the serial CPU: the modelled device
		// has 4×8 = 32 parallel lanes and the kernel saturates them.
		if c.Step2GPU >= c.Step2CPU {
			t.Errorf("N=%d S=%d²: virtual Step-2 %v not below CPU %v", c.N, c.Tiles, c.Step2GPU, c.Step2CPU)
		}
	}
}

func TestVirtualModeRejectsBadModel(t *testing.T) {
	cfg := tinyConfig()
	cfg.VirtualSMs = 2
	cfg.VirtualLaunchOverhead = -time.Second
	if _, err := cfg.Sweep(); err == nil {
		t.Error("accepted negative launch overhead")
	}
}

func TestRunAllTables(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	cells, err := cfg.RunAllTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSweepRejectsEmptyPairs(t *testing.T) {
	cfg := tinyConfig()
	cfg.Pairs = nil
	if _, err := cfg.Sweep(); err == nil {
		t.Error("Sweep accepted empty pairs")
	}
	if _, err := cfg.Table1(); err == nil {
		t.Error("Table1 accepted empty pairs")
	}
}

func TestQuickConfigValid(t *testing.T) {
	cfg := QuickConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Pairs) != 1 {
		t.Errorf("quick config has %d pairs", len(cfg.Pairs))
	}
}

func TestFigure1(t *testing.T) {
	cfg := Config{
		Sizes:      []int{64},
		TileCounts: []int{8},
		Pairs:      []Pair{{synth.Lena, synth.Sailboat}},
	}
	dir := t.TempDir()
	out, err := cfg.Figure1(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d panels", len(out))
	}
	var mosaicErr int64
	for _, fr := range out {
		if fr.Path == "" {
			t.Errorf("%s: missing path", fr.Label)
		}
		if strings.Contains(fr.Label, "database-mosaic") {
			mosaicErr = fr.Error
		}
	}
	if mosaicErr <= 0 {
		t.Error("figure 1 mosaic carries no error")
	}
}

func TestWriteCellsCSV(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxOptimizationS = 16 // exercise the skipped-columns path at 8²
	cells, err := cfg.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(cells, &buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(cells) {
		t.Fatalf("%d csv rows for %d cells", len(rows), len(cells))
	}
	if rows[0][0] != "image_size" {
		t.Errorf("header: %v", rows[0])
	}
	// First data row: S = 16, optimization present.
	if rows[1][2] != "16" || rows[1][20] != "false" || rows[1][11] == "" {
		t.Errorf("row 1: %v", rows[1])
	}
	// Second data row: S = 64, optimization skipped → empty columns.
	if rows[2][20] != "true" || rows[2][7] != "" || rows[2][11] != "" {
		t.Errorf("row 2: %v", rows[2])
	}
	// Every duration parses as a float.
	for _, col := range []int{3, 4, 5, 6, 8, 9, 10} {
		if _, err := strconv.ParseFloat(rows[1][col], 64); err != nil {
			t.Errorf("column %d not numeric: %q", col, rows[1][col])
		}
	}
	// The dirty search replays the serial one: identical error, fewer or
	// equal attempts.
	if rows[1][12] != rows[1][13] {
		t.Errorf("dirty error %q != serial error %q", rows[1][13], rows[1][12])
	}
	as, _ := strconv.ParseInt(rows[1][18], 10, 64)
	ad, _ := strconv.ParseInt(rows[1][19], 10, 64)
	if as <= 0 || ad <= 0 || ad > as {
		t.Errorf("attempts serial=%d dirty=%d", as, ad)
	}
}
