package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCellsCSV emits the sweep results as machine-readable CSV — one row
// per (image size, tile count) combination with every measured quantity, so
// downstream plotting does not have to parse the paper-layout tables.
// Durations are in seconds; a skipped optimization leaves its columns empty.
func WriteCellsCSV(cells []*Cell, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"image_size", "tiles_per_side", "s",
		"step2_scalar_s", "step2_cpu_s", "step2_blocked_s", "step2_gpu_s",
		"step3_opt_s", "step3_approx_cpu_s", "step3_approx_dirty_s", "step3_approx_gpu_s",
		"err_opt", "err_approx_cpu", "err_approx_dirty", "err_approx_gpu",
		"passes_serial", "passes_dirty", "passes_parallel",
		"attempts_serial", "attempts_dirty", "opt_skipped",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	sec := func(d interface{ Seconds() float64 }) string {
		return strconv.FormatFloat(d.Seconds(), 'g', 6, 64)
	}
	for _, c := range cells {
		optTime, optErr := sec(c.Step3Opt), strconv.FormatInt(c.ErrOpt, 10)
		if c.OptSkipped {
			optTime, optErr = "", ""
		}
		row := []string{
			strconv.Itoa(c.N), strconv.Itoa(c.Tiles), strconv.Itoa(c.S()),
			sec(c.Step2Scalar), sec(c.Step2CPU), sec(c.Step2Blocked), sec(c.Step2GPU),
			optTime, sec(c.Step3ApproxCPU), sec(c.Step3ApproxDirty), sec(c.Step3ApproxGPU),
			optErr, strconv.FormatInt(c.ErrApproxCPU, 10),
			strconv.FormatInt(c.ErrApproxDirty, 10), strconv.FormatInt(c.ErrApproxGPU, 10),
			strconv.Itoa(c.PassesSerial), strconv.Itoa(c.PassesDirty), strconv.Itoa(c.PassesParallel),
			strconv.FormatInt(c.AttemptsSerial, 10), strconv.FormatInt(c.AttemptsDirty, 10),
			strconv.FormatBool(c.OptSkipped),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	return nil
}
