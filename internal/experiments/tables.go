package experiments

import (
	"fmt"
	"time"

	"repro/internal/assign"
	"repro/internal/edgecolor"
	"repro/internal/hist"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/tile"
)

// Cell holds every measurement for one (pair, image size, tile count)
// combination — the unit all four tables aggregate.
type Cell struct {
	Pair  Pair
	N     int // image side
	Tiles int // tiles per side; S = Tiles²

	Step2Scalar  time.Duration // serial build, byte-at-a-time scalar kernel (the "before")
	Step2CPU     time.Duration // serial error-matrix build (SWAR kernel)
	Step2Blocked time.Duration // cache-blocked serial build
	Step2GPU     time.Duration // device error-matrix build

	Step3Opt         time.Duration // exact matching (JV) on the CPU
	Step3ApproxCPU   time.Duration // Algorithm 1
	Step3ApproxDirty time.Duration // Algorithm 1 with dirty-pair tracking
	Step3ApproxGPU   time.Duration // Algorithm 2 on the device

	ErrOpt         int64 // Eq. (2) of the optimization result
	ErrApproxCPU   int64
	ErrApproxDirty int64
	ErrApproxGPU   int64

	PassesSerial   int // the paper's k for Algorithm 1
	PassesDirty    int
	PassesParallel int

	AttemptsSerial int64 // pair tests evaluated by the exhaustive sweeps
	AttemptsDirty  int64 // pair tests evaluated by the dirty-tracked search

	OptSkipped bool // exact matching skipped by MaxOptimizationS
}

// S returns the tile count of the cell.
func (c *Cell) S() int { return c.Tiles * c.Tiles }

// colorings caches one edge coloring per S within a sweep, mirroring the
// paper's "computed in advance" treatment (coloring time is excluded from
// Step-3 measurements).
type colorings map[int]*edgecolor.Coloring

func (cc colorings) get(s int) *edgecolor.Coloring {
	if c, ok := cc[s]; ok {
		return c
	}
	c := edgecolor.Complete(s)
	cc[s] = c
	return c
}

// runCell performs all measurements for one combination.
func (cfg *Config) runCell(p Pair, n, tiles int, cc colorings) (*Cell, error) {
	input, target, err := scenePair(p, n)
	if err != nil {
		return nil, err
	}
	matched, err := hist.Match(input, target)
	if err != nil {
		return nil, err
	}
	inGrid, err := tile.NewGridByCount(matched, tiles)
	if err != nil {
		return nil, err
	}
	tgtGrid, err := tile.NewGridByCount(target, tiles)
	if err != nil {
		return nil, err
	}
	dev, err := cfg.device()
	if err != nil {
		return nil, err
	}
	cell := &Cell{Pair: p, N: n, Tiles: tiles}
	s := tiles * tiles

	// Step 2, every implementation. The serial build's result is reused for
	// each Step-3 variant so all algorithms see the identical matrix (the
	// builders are bit-identical by construction — TestBuildersEquivalent).
	var costs *metric.Matrix
	cell.Step2Scalar = measure(func() {
		if _, err2 := metric.BuildSerialScalar(inGrid, tgtGrid, metric.L1); err2 != nil {
			panic(err2)
		}
	})
	cell.Step2CPU = measure(func() {
		m, err2 := metric.BuildSerial(inGrid, tgtGrid, metric.L1)
		if err2 != nil {
			panic(err2)
		}
		costs = m
	})
	cell.Step2Blocked = measure(func() {
		if _, err2 := metric.BuildBlocked(inGrid, tgtGrid, metric.L1); err2 != nil {
			panic(err2)
		}
	})
	cell.Step2GPU = cfg.measureDevice(dev, func() {
		if _, err2 := metric.BuildDevice(dev, inGrid, tgtGrid, metric.L1); err2 != nil {
			panic(err2)
		}
	})

	// Step 3: exact matching.
	if cfg.MaxOptimizationS > 0 && s > cfg.MaxOptimizationS {
		cell.OptSkipped = true
	} else {
		solve := assign.Solvers()[cfg.solverAlgo()]
		var opt perm.Perm
		cell.Step3Opt = measure(func() {
			q, err2 := solve(s, costs.W)
			if err2 != nil {
				panic(err2)
			}
			opt = q
		})
		cell.ErrOpt = costs.Total(opt)
	}

	// Step 3: serial approximation.
	var pcpu perm.Perm
	var stCPU localsearch.Stats
	cell.Step3ApproxCPU = measure(func() {
		q, st, err2 := localsearch.Serial(costs, perm.Identity(s), localsearch.Options{Trace: cfg.Trace})
		if err2 != nil {
			panic(err2)
		}
		pcpu, stCPU = q, st
	})
	cell.ErrApproxCPU = costs.Total(pcpu)
	cell.PassesSerial = stCPU.Passes
	cell.AttemptsSerial = stCPU.Attempts

	// Step 3: dirty-tracked serial approximation (exact replay of Algorithm 1
	// with known-outcome pairs skipped).
	var pdirty perm.Perm
	var stDirty localsearch.Stats
	cell.Step3ApproxDirty = measure(func() {
		q, st, err2 := localsearch.SerialDirty(costs, perm.Identity(s), localsearch.Options{Trace: cfg.Trace})
		if err2 != nil {
			panic(err2)
		}
		pdirty, stDirty = q, st
	})
	cell.ErrApproxDirty = costs.Total(pdirty)
	cell.PassesDirty = stDirty.Passes
	cell.AttemptsDirty = stDirty.Attempts

	// Step 3: parallel approximation with a precomputed coloring.
	coloring := cc.get(s)
	var pgpu perm.Perm
	var stGPU localsearch.Stats
	cell.Step3ApproxGPU = cfg.measureDevice(dev, func() {
		q, st, err2 := localsearch.Parallel(dev, costs, perm.Identity(s), coloring, localsearch.Options{Trace: cfg.Trace})
		if err2 != nil {
			panic(err2)
		}
		pgpu, stGPU = q, st
	})
	cell.ErrApproxGPU = costs.Total(pgpu)
	cell.PassesParallel = stGPU.Passes
	return cell, nil
}

// Sweep runs every (size, tiles) combination, averaging times over the
// configured pairs, and returns one aggregate cell per combination (errors
// and pass counts are taken from the first pair, matching Table I's single-
// pair reporting).
func (cfg *Config) Sweep() ([]*Cell, error) {
	if len(cfg.Pairs) == 0 {
		return nil, fmt.Errorf("experiments: no scene pairs configured")
	}
	cc := colorings{}
	var out []*Cell
	for _, n := range cfg.Sizes {
		for _, tiles := range cfg.TileCounts {
			agg := &Cell{N: n, Tiles: tiles, Pair: cfg.Pairs[0]}
			for pi, p := range cfg.Pairs {
				cell, err := cfg.runCell(p, n, tiles, cc)
				if err != nil {
					return nil, err
				}
				agg.Step2Scalar += cell.Step2Scalar
				agg.Step2CPU += cell.Step2CPU
				agg.Step2Blocked += cell.Step2Blocked
				agg.Step2GPU += cell.Step2GPU
				agg.Step3Opt += cell.Step3Opt
				agg.Step3ApproxCPU += cell.Step3ApproxCPU
				agg.Step3ApproxDirty += cell.Step3ApproxDirty
				agg.Step3ApproxGPU += cell.Step3ApproxGPU
				agg.OptSkipped = agg.OptSkipped || cell.OptSkipped
				if pi == 0 {
					agg.ErrOpt = cell.ErrOpt
					agg.ErrApproxCPU = cell.ErrApproxCPU
					agg.ErrApproxDirty = cell.ErrApproxDirty
					agg.ErrApproxGPU = cell.ErrApproxGPU
					agg.PassesSerial = cell.PassesSerial
					agg.PassesDirty = cell.PassesDirty
					agg.PassesParallel = cell.PassesParallel
					agg.AttemptsSerial = cell.AttemptsSerial
					agg.AttemptsDirty = cell.AttemptsDirty
				}
			}
			np := time.Duration(len(cfg.Pairs))
			agg.Step2Scalar /= np
			agg.Step2CPU /= np
			agg.Step2Blocked /= np
			agg.Step2GPU /= np
			agg.Step3Opt /= np
			agg.Step3ApproxCPU /= np
			agg.Step3ApproxDirty /= np
			agg.Step3ApproxGPU /= np
			out = append(out, agg)
		}
	}
	return out, nil
}

// Table1 reproduces Table I: total error (Eq. 2) of the optimization,
// serial-approximation and parallel-approximation mosaics on the first
// configured pair at the smallest configured image size, across tile counts.
func (cfg *Config) Table1() ([]*Cell, error) {
	if len(cfg.Sizes) == 0 || len(cfg.Pairs) == 0 {
		return nil, fmt.Errorf("experiments: empty configuration")
	}
	n := cfg.Sizes[0]
	cc := colorings{}
	var rows []*Cell
	for _, tiles := range cfg.TileCounts {
		cell, err := cfg.runCell(cfg.Pairs[0], n, tiles, cc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, cell)
	}
	w := cfg.out()
	fmt.Fprintf(w, "Table I — total error of the photomosaic images (%s, %d×%d)\n", cfg.Pairs[0], n, n)
	fmt.Fprintf(w, "%-8s %14s %16s %16s\n", "S", "Optimization", "Approx (CPU)", "Approx (GPU)")
	for _, c := range rows {
		opt := fmt.Sprintf("%d", c.ErrOpt)
		if c.OptSkipped {
			opt = "skipped"
		}
		fmt.Fprintf(w, "%-8s %14s %16d %16d\n",
			fmt.Sprintf("%dx%d", c.Tiles, c.Tiles), opt, c.ErrApproxCPU, c.ErrApproxGPU)
	}
	return rows, nil
}

// Table2 reproduces Table II with the builder ablation alongside the paper's
// CPU-vs-device comparison: Scalar is the byte-at-a-time kernel (the
// "before"), CPU the SWAR serial build, Blocked the cache-blocked loop nest.
// Vec× = Scalar/Blocked isolates the single-core vectorization win; GPU× =
// CPU/GPU is the paper's speed-up column.
func (cfg *Config) Table2(cells []*Cell) {
	w := cfg.out()
	fmt.Fprintf(w, "Table II — computing the error values between tiles in Step 2 (avg over %d pair(s))\n", len(cfg.Pairs))
	fmt.Fprintf(w, "%-12s %-8s %11s %11s %11s %11s %7s %7s\n",
		"Image", "S", "Scalar [s]", "CPU [s]", "Blocked [s]", "GPU [s]", "Vec×", "GPU×")
	for _, c := range cells {
		fmt.Fprintf(w, "%-12s %-8s %11.4f %11.4f %11.4f %11.4f %7.2f %7.2f\n",
			fmt.Sprintf("%dx%d", c.N, c.N), fmt.Sprintf("%dx%d", c.Tiles, c.Tiles),
			c.Step2Scalar.Seconds(), c.Step2CPU.Seconds(), c.Step2Blocked.Seconds(),
			c.Step2GPU.Seconds(), speedup(c.Step2Scalar, c.Step2Blocked), speedup(c.Step2CPU, c.Step2GPU))
	}
}

// Table3 reproduces Table III: Step-3 rearrangement time — exact matching on
// the CPU versus the serial, dirty-tracked and device local searches. The
// GPU speed-up column compares the two exhaustive implementations as the
// paper does; Dirty× is the delta-driven win over the exhaustive serial
// sweep, and Tested shows the fraction of pair tests the dirty search
// actually evaluated (it reaches the identical final assignment).
func (cfg *Config) Table3(cells []*Cell) {
	w := cfg.out()
	fmt.Fprintf(w, "Table III — rearrangement of tiles in Step 3 (avg over %d pair(s))\n", len(cfg.Pairs))
	fmt.Fprintf(w, "%-12s %-8s %13s %13s %13s %13s %7s %7s %8s\n",
		"Image", "S", "Opt CPU [s]", "Apx CPU [s]", "Dirty [s]", "Apx GPU [s]", "Dirty×", "GPU×", "Tested")
	for _, c := range cells {
		opt := fmt.Sprintf("%13.4f", c.Step3Opt.Seconds())
		if c.OptSkipped {
			opt = fmt.Sprintf("%13s", "skipped")
		}
		tested := "-"
		if c.AttemptsSerial > 0 {
			tested = fmt.Sprintf("%7.1f%%", 100*float64(c.AttemptsDirty)/float64(c.AttemptsSerial))
		}
		fmt.Fprintf(w, "%-12s %-8s %s %13.4f %13.4f %13.4f %7.2f %7.2f %8s\n",
			fmt.Sprintf("%dx%d", c.N, c.N), fmt.Sprintf("%dx%d", c.Tiles, c.Tiles),
			opt, c.Step3ApproxCPU.Seconds(), c.Step3ApproxDirty.Seconds(), c.Step3ApproxGPU.Seconds(),
			speedup(c.Step3ApproxCPU, c.Step3ApproxDirty),
			speedup(c.Step3ApproxCPU, c.Step3ApproxGPU), tested)
	}
}

// Table4 reproduces Table IV: end-to-end generation time. For the
// optimization pipeline the device accelerates only Step 2 (matching stays
// on the CPU, §V); for the approximation pipeline both steps move over.
func (cfg *Config) Table4(cells []*Cell) {
	w := cfg.out()
	fmt.Fprintf(w, "Table IV — total photomosaic generation time (avg over %d pair(s))\n", len(cfg.Pairs))
	fmt.Fprintf(w, "%-12s %-8s | %12s %12s %8s | %12s %12s %8s\n",
		"Image", "S", "Opt CPU", "Opt CPU+GPU", "Speedup", "Apx CPU", "Apx GPU", "Speedup")
	for _, c := range cells {
		optCPU := c.Step2CPU + c.Step3Opt
		optMix := c.Step2GPU + c.Step3Opt
		apxCPU := c.Step2CPU + c.Step3ApproxCPU
		apxGPU := c.Step2GPU + c.Step3ApproxGPU
		optCols := fmt.Sprintf("%12.4f %12.4f %8.2f", optCPU.Seconds(), optMix.Seconds(), speedup(optCPU, optMix))
		if c.OptSkipped {
			optCols = fmt.Sprintf("%12s %12s %8s", "skipped", "skipped", "-")
		}
		fmt.Fprintf(w, "%-12s %-8s | %s | %12.4f %12.4f %8.2f\n",
			fmt.Sprintf("%dx%d", c.N, c.N), fmt.Sprintf("%dx%d", c.Tiles, c.Tiles),
			optCols, apxCPU.Seconds(), apxGPU.Seconds(), speedup(apxCPU, apxGPU))
	}
}

// RunAllTables executes the sweep once and prints Tables II–IV from it,
// plus Table I from its own (error-focused) runs. It returns the sweep
// cells for further inspection.
func (cfg *Config) RunAllTables() ([]*Cell, error) {
	if _, err := cfg.Table1(); err != nil {
		return nil, err
	}
	fmt.Fprintln(cfg.out())
	cells, err := cfg.Sweep()
	if err != nil {
		return nil, err
	}
	cfg.Table2(cells)
	fmt.Fprintln(cfg.out())
	cfg.Table3(cells)
	fmt.Fprintln(cfg.out())
	cfg.Table4(cells)
	return cells, nil
}
