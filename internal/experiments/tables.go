package experiments

import (
	"fmt"
	"time"

	"repro/internal/assign"
	"repro/internal/edgecolor"
	"repro/internal/hist"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/tile"
)

// Cell holds every measurement for one (pair, image size, tile count)
// combination — the unit all four tables aggregate.
type Cell struct {
	Pair  Pair
	N     int // image side
	Tiles int // tiles per side; S = Tiles²

	Step2CPU time.Duration // serial error-matrix build
	Step2GPU time.Duration // device error-matrix build

	Step3Opt       time.Duration // exact matching (JV) on the CPU
	Step3ApproxCPU time.Duration // Algorithm 1
	Step3ApproxGPU time.Duration // Algorithm 2 on the device

	ErrOpt       int64 // Eq. (2) of the optimization result
	ErrApproxCPU int64
	ErrApproxGPU int64

	PassesSerial   int // the paper's k for Algorithm 1
	PassesParallel int

	OptSkipped bool // exact matching skipped by MaxOptimizationS
}

// S returns the tile count of the cell.
func (c *Cell) S() int { return c.Tiles * c.Tiles }

// colorings caches one edge coloring per S within a sweep, mirroring the
// paper's "computed in advance" treatment (coloring time is excluded from
// Step-3 measurements).
type colorings map[int]*edgecolor.Coloring

func (cc colorings) get(s int) *edgecolor.Coloring {
	if c, ok := cc[s]; ok {
		return c
	}
	c := edgecolor.Complete(s)
	cc[s] = c
	return c
}

// runCell performs all measurements for one combination.
func (cfg *Config) runCell(p Pair, n, tiles int, cc colorings) (*Cell, error) {
	input, target, err := scenePair(p, n)
	if err != nil {
		return nil, err
	}
	matched, err := hist.Match(input, target)
	if err != nil {
		return nil, err
	}
	inGrid, err := tile.NewGridByCount(matched, tiles)
	if err != nil {
		return nil, err
	}
	tgtGrid, err := tile.NewGridByCount(target, tiles)
	if err != nil {
		return nil, err
	}
	dev, err := cfg.device()
	if err != nil {
		return nil, err
	}
	cell := &Cell{Pair: p, N: n, Tiles: tiles}
	s := tiles * tiles

	// Step 2, both implementations. The serial build's result is reused for
	// every Step-3 variant so all algorithms see the identical matrix.
	var costs *metric.Matrix
	cell.Step2CPU = measure(func() {
		m, err2 := metric.BuildSerial(inGrid, tgtGrid, metric.L1)
		if err2 != nil {
			panic(err2)
		}
		costs = m
	})
	cell.Step2GPU = cfg.measureDevice(dev, func() {
		if _, err2 := metric.BuildDevice(dev, inGrid, tgtGrid, metric.L1); err2 != nil {
			panic(err2)
		}
	})

	// Step 3: exact matching.
	if cfg.MaxOptimizationS > 0 && s > cfg.MaxOptimizationS {
		cell.OptSkipped = true
	} else {
		var opt perm.Perm
		cell.Step3Opt = measure(func() {
			q, err2 := assign.JV(s, costs.W)
			if err2 != nil {
				panic(err2)
			}
			opt = q
		})
		cell.ErrOpt = costs.Total(opt)
	}

	// Step 3: serial approximation.
	var pcpu perm.Perm
	var stCPU localsearch.Stats
	cell.Step3ApproxCPU = measure(func() {
		q, st, err2 := localsearch.Serial(costs, perm.Identity(s), localsearch.Options{Trace: cfg.Trace})
		if err2 != nil {
			panic(err2)
		}
		pcpu, stCPU = q, st
	})
	cell.ErrApproxCPU = costs.Total(pcpu)
	cell.PassesSerial = stCPU.Passes

	// Step 3: parallel approximation with a precomputed coloring.
	coloring := cc.get(s)
	var pgpu perm.Perm
	var stGPU localsearch.Stats
	cell.Step3ApproxGPU = cfg.measureDevice(dev, func() {
		q, st, err2 := localsearch.Parallel(dev, costs, perm.Identity(s), coloring, localsearch.Options{Trace: cfg.Trace})
		if err2 != nil {
			panic(err2)
		}
		pgpu, stGPU = q, st
	})
	cell.ErrApproxGPU = costs.Total(pgpu)
	cell.PassesParallel = stGPU.Passes
	return cell, nil
}

// Sweep runs every (size, tiles) combination, averaging times over the
// configured pairs, and returns one aggregate cell per combination (errors
// and pass counts are taken from the first pair, matching Table I's single-
// pair reporting).
func (cfg *Config) Sweep() ([]*Cell, error) {
	if len(cfg.Pairs) == 0 {
		return nil, fmt.Errorf("experiments: no scene pairs configured")
	}
	cc := colorings{}
	var out []*Cell
	for _, n := range cfg.Sizes {
		for _, tiles := range cfg.TileCounts {
			agg := &Cell{N: n, Tiles: tiles, Pair: cfg.Pairs[0]}
			for pi, p := range cfg.Pairs {
				cell, err := cfg.runCell(p, n, tiles, cc)
				if err != nil {
					return nil, err
				}
				agg.Step2CPU += cell.Step2CPU
				agg.Step2GPU += cell.Step2GPU
				agg.Step3Opt += cell.Step3Opt
				agg.Step3ApproxCPU += cell.Step3ApproxCPU
				agg.Step3ApproxGPU += cell.Step3ApproxGPU
				agg.OptSkipped = agg.OptSkipped || cell.OptSkipped
				if pi == 0 {
					agg.ErrOpt = cell.ErrOpt
					agg.ErrApproxCPU = cell.ErrApproxCPU
					agg.ErrApproxGPU = cell.ErrApproxGPU
					agg.PassesSerial = cell.PassesSerial
					agg.PassesParallel = cell.PassesParallel
				}
			}
			np := time.Duration(len(cfg.Pairs))
			agg.Step2CPU /= np
			agg.Step2GPU /= np
			agg.Step3Opt /= np
			agg.Step3ApproxCPU /= np
			agg.Step3ApproxGPU /= np
			out = append(out, agg)
		}
	}
	return out, nil
}

// Table1 reproduces Table I: total error (Eq. 2) of the optimization,
// serial-approximation and parallel-approximation mosaics on the first
// configured pair at the smallest configured image size, across tile counts.
func (cfg *Config) Table1() ([]*Cell, error) {
	if len(cfg.Sizes) == 0 || len(cfg.Pairs) == 0 {
		return nil, fmt.Errorf("experiments: empty configuration")
	}
	n := cfg.Sizes[0]
	cc := colorings{}
	var rows []*Cell
	for _, tiles := range cfg.TileCounts {
		cell, err := cfg.runCell(cfg.Pairs[0], n, tiles, cc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, cell)
	}
	w := cfg.out()
	fmt.Fprintf(w, "Table I — total error of the photomosaic images (%s, %d×%d)\n", cfg.Pairs[0], n, n)
	fmt.Fprintf(w, "%-8s %14s %16s %16s\n", "S", "Optimization", "Approx (CPU)", "Approx (GPU)")
	for _, c := range rows {
		opt := fmt.Sprintf("%d", c.ErrOpt)
		if c.OptSkipped {
			opt = "skipped"
		}
		fmt.Fprintf(w, "%-8s %14s %16d %16d\n",
			fmt.Sprintf("%dx%d", c.Tiles, c.Tiles), opt, c.ErrApproxCPU, c.ErrApproxGPU)
	}
	return rows, nil
}

// Table2 reproduces Table II: Step-2 error-matrix time, CPU vs device.
func (cfg *Config) Table2(cells []*Cell) {
	w := cfg.out()
	fmt.Fprintf(w, "Table II — computing the error values between tiles in Step 2 (avg over %d pair(s))\n", len(cfg.Pairs))
	fmt.Fprintf(w, "%-12s %-8s %12s %12s %10s\n", "Image", "S", "CPU [s]", "GPU [s]", "Speed-up")
	for _, c := range cells {
		fmt.Fprintf(w, "%-12s %-8s %12.4f %12.4f %10.2f\n",
			fmt.Sprintf("%dx%d", c.N, c.N), fmt.Sprintf("%dx%d", c.Tiles, c.Tiles),
			c.Step2CPU.Seconds(), c.Step2GPU.Seconds(), speedup(c.Step2CPU, c.Step2GPU))
	}
}

// Table3 reproduces Table III: Step-3 rearrangement time — exact matching
// on the CPU versus the serial and device local searches; the speed-up
// column compares the two approximation implementations as the paper does.
func (cfg *Config) Table3(cells []*Cell) {
	w := cfg.out()
	fmt.Fprintf(w, "Table III — rearrangement of tiles in Step 3 (avg over %d pair(s))\n", len(cfg.Pairs))
	fmt.Fprintf(w, "%-12s %-8s %14s %14s %14s %10s\n", "Image", "S", "Opt CPU [s]", "Apx CPU [s]", "Apx GPU [s]", "Speed-up")
	for _, c := range cells {
		opt := fmt.Sprintf("%14.4f", c.Step3Opt.Seconds())
		if c.OptSkipped {
			opt = fmt.Sprintf("%14s", "skipped")
		}
		fmt.Fprintf(w, "%-12s %-8s %s %14.4f %14.4f %10.2f\n",
			fmt.Sprintf("%dx%d", c.N, c.N), fmt.Sprintf("%dx%d", c.Tiles, c.Tiles),
			opt, c.Step3ApproxCPU.Seconds(), c.Step3ApproxGPU.Seconds(),
			speedup(c.Step3ApproxCPU, c.Step3ApproxGPU))
	}
}

// Table4 reproduces Table IV: end-to-end generation time. For the
// optimization pipeline the device accelerates only Step 2 (matching stays
// on the CPU, §V); for the approximation pipeline both steps move over.
func (cfg *Config) Table4(cells []*Cell) {
	w := cfg.out()
	fmt.Fprintf(w, "Table IV — total photomosaic generation time (avg over %d pair(s))\n", len(cfg.Pairs))
	fmt.Fprintf(w, "%-12s %-8s | %12s %12s %8s | %12s %12s %8s\n",
		"Image", "S", "Opt CPU", "Opt CPU+GPU", "Speedup", "Apx CPU", "Apx GPU", "Speedup")
	for _, c := range cells {
		optCPU := c.Step2CPU + c.Step3Opt
		optMix := c.Step2GPU + c.Step3Opt
		apxCPU := c.Step2CPU + c.Step3ApproxCPU
		apxGPU := c.Step2GPU + c.Step3ApproxGPU
		optCols := fmt.Sprintf("%12.4f %12.4f %8.2f", optCPU.Seconds(), optMix.Seconds(), speedup(optCPU, optMix))
		if c.OptSkipped {
			optCols = fmt.Sprintf("%12s %12s %8s", "skipped", "skipped", "-")
		}
		fmt.Fprintf(w, "%-12s %-8s | %s | %12.4f %12.4f %8.2f\n",
			fmt.Sprintf("%dx%d", c.N, c.N), fmt.Sprintf("%dx%d", c.Tiles, c.Tiles),
			optCols, apxCPU.Seconds(), apxGPU.Seconds(), speedup(apxCPU, apxGPU))
	}
}

// RunAllTables executes the sweep once and prints Tables II–IV from it,
// plus Table I from its own (error-focused) runs. It returns the sweep
// cells for further inspection.
func (cfg *Config) RunAllTables() ([]*Cell, error) {
	if _, err := cfg.Table1(); err != nil {
		return nil, err
	}
	fmt.Fprintln(cfg.out())
	cells, err := cfg.Sweep()
	if err != nil {
		return nil, err
	}
	cfg.Table2(cells)
	fmt.Fprintln(cfg.out())
	cfg.Table3(cells)
	fmt.Fprintln(cfg.out())
	cfg.Table4(cells)
	return cells, nil
}
