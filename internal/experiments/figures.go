package experiments

import (
	"fmt"
	"image/png"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/dbmosaic"
	"repro/internal/hist"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/synth"
)

// FigureResult records one generated panel image and its metadata.
type FigureResult struct {
	Label  string // e.g. "fig7-32x32-optimization"
	Path   string // written PNG ("" when no output dir configured)
	Error  int64  // Eq. (2), 0 for non-mosaic panels
	Passes int    // local-search passes (k) when applicable
}

// savePanel writes img to dir/label.png when dir is non-empty.
func savePanel(dir, label string, img *imgutil.Gray) (string, error) {
	if dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, label+".png")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := png.Encode(f, img.ToImage()); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Figure2 reproduces Figures 2 and 3: the input image, the target image,
// the histogram-matched input (Fig. 3) and the resulting photomosaic at
// S = 32×32 on the first configured pair.
func (cfg *Config) Figure2(dir string) ([]FigureResult, error) {
	p := cfg.Pairs[0]
	n := cfg.Sizes[0]
	input, target, err := scenePair(p, n)
	if err != nil {
		return nil, err
	}
	matched, err := hist.Match(input, target)
	if err != nil {
		return nil, err
	}
	res, err := core.Generate(input, target, core.Options{TilesPerSide: 32})
	if err != nil {
		return nil, err
	}
	panels := []struct {
		label string
		img   *imgutil.Gray
		err   int64
		k     int
	}{
		{"fig2-input", input, 0, 0},
		{"fig2-target", target, 0, 0},
		{"fig3-histogram-matched", matched, 0, 0},
		{"fig2-photomosaic", res.Mosaic, res.TotalError, res.SearchStats.Passes},
	}
	var out []FigureResult
	w := cfg.out()
	fmt.Fprintf(w, "Figure 2/3 — %s at %d×%d, S = 32×32\n", p, n, n)
	for _, panel := range panels {
		path, err := savePanel(dir, panel.label, panel.img)
		if err != nil {
			return nil, err
		}
		out = append(out, FigureResult{Label: panel.label, Path: path, Error: panel.err, Passes: panel.k})
		fmt.Fprintf(w, "  %-26s", panel.label)
		if panel.err > 0 {
			fmt.Fprintf(w, " error=%d k=%d", panel.err, panel.k)
		}
		fmt.Fprintln(w)
	}
	return out, nil
}

// Figure7 reproduces Figure 7: for each tile count, the optimization,
// serial-approximation and parallel-approximation mosaics of the first
// pair, with their errors (Table I's data) and pass counts (the paper's
// k ≤ 9, 8, 16 observation).
func (cfg *Config) Figure7(dir string) ([]FigureResult, error) {
	p := cfg.Pairs[0]
	n := cfg.Sizes[0]
	input, target, err := scenePair(p, n)
	if err != nil {
		return nil, err
	}
	dev := cuda.New(cfg.Workers) // figures render results; wall-clock device is fine
	var out []FigureResult
	w := cfg.out()
	fmt.Fprintf(w, "Figure 7 — %s at %d×%d\n", p, n, n)
	for _, tiles := range cfg.TileCounts {
		s := tiles * tiles
		variants := []struct {
			label string
			opts  core.Options
			skip  bool
		}{
			{"optimization", core.Options{TilesPerSide: tiles, Algorithm: core.Optimization, Solver: cfg.solverAlgo()},
				cfg.MaxOptimizationS > 0 && s > cfg.MaxOptimizationS},
			{"approx-cpu", core.Options{TilesPerSide: tiles, Algorithm: core.Approximation}, false},
			{"approx-gpu", core.Options{TilesPerSide: tiles, Algorithm: core.ParallelApproximation, Device: dev}, false},
		}
		for _, v := range variants {
			label := fmt.Sprintf("fig7-%dx%d-%s", tiles, tiles, v.label)
			if v.skip {
				fmt.Fprintf(w, "  %-34s skipped (S > MaxOptimizationS)\n", label)
				continue
			}
			res, err := core.Generate(input, target, v.opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", label, err)
			}
			path, err := savePanel(dir, label, res.Mosaic)
			if err != nil {
				return nil, err
			}
			out = append(out, FigureResult{Label: label, Path: path, Error: res.TotalError, Passes: res.SearchStats.Passes})
			fmt.Fprintf(w, "  %-34s error=%-10d k=%d\n", label, res.TotalError, res.SearchStats.Passes)
		}
	}
	return out, nil
}

// Figure8 reproduces Figure 8: the optimization mosaics of the remaining
// three pairs at S = 32×32 (with input/target panels alongside).
func (cfg *Config) Figure8(dir string) ([]FigureResult, error) {
	n := cfg.Sizes[0]
	pairs := cfg.Pairs
	if len(pairs) > 1 {
		pairs = pairs[1:] // Figure 8 shows the pairs beyond Lena→Sailboat
	}
	var out []FigureResult
	w := cfg.out()
	fmt.Fprintf(w, "Figure 8 — optimization mosaics at %d×%d, S = 32×32\n", n, n)
	for _, p := range pairs {
		input, target, err := scenePair(p, n)
		if err != nil {
			return nil, err
		}
		algo := core.Optimization
		if cfg.MaxOptimizationS > 0 && 32*32 > cfg.MaxOptimizationS {
			algo = core.Approximation
		}
		res, err := core.Generate(input, target, core.Options{TilesPerSide: 32, Algorithm: algo, Solver: cfg.solverAlgo()})
		if err != nil {
			return nil, err
		}
		base := fmt.Sprintf("fig8-%s-to-%s", p.Input, p.Target)
		for _, panel := range []struct {
			suffix string
			img    *imgutil.Gray
			e      int64
		}{
			{"input", input, 0},
			{"target", target, 0},
			{"mosaic", res.Mosaic, res.TotalError},
		} {
			label := base + "-" + panel.suffix
			path, err := savePanel(dir, label, panel.img)
			if err != nil {
				return nil, err
			}
			out = append(out, FigureResult{Label: label, Path: path, Error: panel.e})
		}
		fmt.Fprintf(w, "  %-40s error=%d\n", base, res.TotalError)
	}
	return out, nil
}

// sceneMustExist guards config pairs early with a clear error.
func sceneMustExist(s synth.Scene) error {
	_, err := synth.ParseScene(string(s))
	return err
}

// Validate checks the configuration before a long run.
func (cfg *Config) Validate() error {
	if len(cfg.Sizes) == 0 || len(cfg.TileCounts) == 0 || len(cfg.Pairs) == 0 {
		return fmt.Errorf("experiments: Sizes, TileCounts and Pairs must all be non-empty")
	}
	for _, n := range cfg.Sizes {
		for _, tiles := range cfg.TileCounts {
			if tiles <= 0 || n%tiles != 0 {
				return fmt.Errorf("experiments: image size %d not divisible into %d tiles per side", n, tiles)
			}
		}
	}
	for _, p := range cfg.Pairs {
		if err := sceneMustExist(p.Input); err != nil {
			return err
		}
		if err := sceneMustExist(p.Target); err != nil {
			return err
		}
	}
	return nil
}

// Figure1 reproduces Figure 1: the classical database-driven photomosaic of
// the introduction. The database holds the tiles of every built-in scene
// except the target itself (the paper drew on external image collections);
// the target is the first pair's input image, as in the paper's Lena panel.
func (cfg *Config) Figure1(dir string) ([]FigureResult, error) {
	n := cfg.Sizes[0]
	targetScene := cfg.Pairs[0].Input
	target, err := synth.Generate(targetScene, n)
	if err != nil {
		return nil, err
	}
	tiles := 32
	if len(cfg.TileCounts) > 0 {
		tiles = cfg.TileCounts[len(cfg.TileCounts)-1]
	}
	db, err := dbmosaic.NewDatabase(n / tiles)
	if err != nil {
		return nil, err
	}
	for _, s := range synth.Scenes() {
		if s == targetScene {
			continue
		}
		img, err := synth.Generate(s, n)
		if err != nil {
			return nil, err
		}
		if err := db.AddImage(img); err != nil {
			return nil, err
		}
	}
	res, err := db.Generate(target, metric.L1, cuda.New(cfg.Workers))
	if err != nil {
		return nil, err
	}
	w := cfg.out()
	fmt.Fprintf(w, "Figure 1 — database photomosaic of %s (%d tiles from %d scenes), S = %d×%d\n",
		targetScene, db.Len(), len(synth.Scenes())-1, tiles, tiles)
	var out []FigureResult
	for _, panel := range []struct {
		label string
		img   *imgutil.Gray
		e     int64
	}{
		{"fig1-target", target, 0},
		{"fig1-database-mosaic", res.Mosaic, res.TotalError},
	} {
		path, err := savePanel(dir, panel.label, panel.img)
		if err != nil {
			return nil, err
		}
		out = append(out, FigureResult{Label: panel.label, Path: path, Error: panel.e})
		fmt.Fprintf(w, "  %-26s", panel.label)
		if panel.e > 0 {
			fmt.Fprintf(w, " error=%d", panel.e)
		}
		fmt.Fprintln(w)
	}
	return out, nil
}
