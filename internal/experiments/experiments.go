// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Table I (total errors), Table II (Step-2 error-matrix
// times), Table III (Step-3 rearrangement times), Table IV (end-to-end
// times), and the image panels of Figures 2, 7 and 8.
//
// The harness measures this repository's CPU (serial) and device (virtual
// accelerator) implementations on the synthetic scene pairs that stand in
// for the paper's USC-SIPI photographs. Absolute times and speedups depend
// on the host; EXPERIMENTS.md records which qualitative shapes must hold
// and what was measured.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Pair names an input→target scene combination.
type Pair struct {
	Input, Target synth.Scene
}

// String formats the pair like the paper's captions ("Lena → Sailboat").
func (p Pair) String() string { return fmt.Sprintf("%s → %s", p.Input, p.Target) }

// PaperPairs returns the four image pairs of Figures 7 and 8, whose average
// generation time is what Tables II–IV report.
func PaperPairs() []Pair {
	return []Pair{
		{synth.Lena, synth.Sailboat},
		{synth.Airplane, synth.Lena},
		{synth.Peppers, synth.Barbara},
		{synth.Tiffany, synth.Baboon},
	}
}

// Config controls the sweep. NewConfig supplies the paper's grid.
type Config struct {
	// Sizes lists image side lengths (paper: 512, 1024, 2048).
	Sizes []int
	// TileCounts lists tiles-per-side values (paper: 16, 32, 64).
	TileCounts []int
	// Pairs lists the scene pairs averaged over (paper: the four pairs of
	// Figures 7 and 8).
	Pairs []Pair
	// Workers sizes the device; 0 uses every core.
	Workers int
	// MaxOptimizationS skips the exact matching above this tile count
	// (0 = never skip). The paper's optimization column at S = 64² costs
	// ~20 min on their CPU; JV here is far faster but still the dominant
	// cost of a full sweep.
	MaxOptimizationS int
	// Solver picks the optimization column's matcher (empty = JV). The
	// certified approximate solvers (auction-device, sinkhorn) make the
	// exact column's dominant cost shrink at S = 64² — the comparison the
	// benchjson assign block records.
	Solver assign.Algorithm
	// VirtualSMs, when positive, switches the GPU columns from wall-clock to
	// the device's virtual clock: blocks execute serially on one worker,
	// each block's measured cost is list-scheduled onto VirtualSMs
	// processors, and every kernel launch is charged VirtualLaunchOverhead.
	// Use this on hosts with too few cores to exhibit parallel speedups
	// (the paper's K40 has 15 SMs; real CUDA launches cost ~5–10µs).
	VirtualSMs int
	// VirtualLaunchOverhead is the per-launch charge in virtual mode.
	VirtualLaunchOverhead time.Duration
	// VirtualCoresPerSM models intra-block thread parallelism in virtual
	// mode (see cuda.TimingModel.CoresPerSM); ≤ 0 charges blocks at full
	// serial cost.
	VirtualCoresPerSM int
	// Out receives the formatted tables; nil discards them.
	Out io.Writer
	// Trace optionally receives the counters emitted by the local searches
	// during table sweeps and, in TraceRun, the full span stream — so a
	// telemetry registry attached here observes the evaluation live. nil
	// discards them.
	Trace trace.Collector

	dev *cuda.Device // cached by Device so every run shares one instance
}

// NewConfig returns the paper's full evaluation grid.
func NewConfig() Config {
	return Config{
		Sizes:      []int{512, 1024, 2048},
		TileCounts: []int{16, 32, 64},
		Pairs:      PaperPairs(),
		Workers:    0,
	}
}

// QuickConfig returns a laptop-scale subset (512 and 1024 images, one pair)
// used by tests and the default CLI mode.
func QuickConfig() Config {
	return Config{
		Sizes:      []int{512, 1024},
		TileCounts: []int{16, 32},
		Pairs:      PaperPairs()[:1],
		Workers:    0,
	}
}

// Device returns the configured virtual accelerator, building it on the
// first call and reusing it afterwards. Sharing one instance across every
// run lets callers attach occupancy gauges (telemetry.RegisterDevice) to the
// same device the sweeps execute on. In virtual-timing mode the device runs
// single-worker (so block measurements are uncontended) with the timing
// model attached.
func (c *Config) Device() (*cuda.Device, error) {
	if c.dev != nil {
		return c.dev, nil
	}
	if c.VirtualSMs <= 0 {
		c.dev = cuda.New(c.Workers)
		return c.dev, nil
	}
	dev := cuda.New(1)
	err := dev.SetTimingModel(&cuda.TimingModel{
		SMs:            c.VirtualSMs,
		CoresPerSM:     c.VirtualCoresPerSM,
		LaunchOverhead: c.VirtualLaunchOverhead,
	})
	if err != nil {
		return nil, err
	}
	c.dev = dev
	return dev, nil
}

// device is the internal spelling of Device.
func (c *Config) device() (*cuda.Device, error) { return c.Device() }

// measureDevice times f on the device: in virtual mode it reads the virtual
// clock delta (averaging a few runs when the virtual time is tiny), and in
// wall-clock mode it defers to measure.
func (c *Config) measureDevice(dev *cuda.Device, f func()) time.Duration {
	if c.VirtualSMs <= 0 {
		return measure(f)
	}
	dev.ResetVirtualTime()
	f()
	v := dev.VirtualTime()
	if v >= 10*time.Millisecond {
		return v
	}
	// Tiny kernels: average several runs to tame per-block timer noise.
	const reps = 5
	dev.ResetVirtualTime()
	for i := 0; i < reps; i++ {
		f()
	}
	return dev.VirtualTime() / reps
}

// TraceRun runs one fully-traced, device-backed end-to-end generation — the
// first configured pair at the smallest size and tile count, parallel
// approximation so both GPU stages execute — and returns the result plus the
// recording collector. It backs mosaicbench's -trace/-metrics modes, giving
// the span-level view of exactly the stages Tables II–IV aggregate.
func (c *Config) TraceRun(ctx context.Context) (*core.Result, *trace.Tree, error) {
	if len(c.Sizes) == 0 || len(c.TileCounts) == 0 || len(c.Pairs) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty configuration")
	}
	input, target, err := scenePair(c.Pairs[0], c.Sizes[0])
	if err != nil {
		return nil, nil, err
	}
	dev, err := c.device()
	if err != nil {
		return nil, nil, err
	}
	tree := trace.NewTree()
	res, err := core.GenerateContext(ctx, input, target, core.Options{
		TilesPerSide: c.TileCounts[0],
		Algorithm:    core.ParallelApproximation,
		Device:       dev,
		Trace:        trace.Multi(tree, c.Trace),
	})
	if err != nil {
		return nil, nil, err
	}
	return res, tree, nil
}

// out returns the configured writer, defaulting to a discard sink.
func (c *Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// scenePair renders (and caches per call) the images of a pair at size n.
func scenePair(p Pair, n int) (input, target *imgutil.Gray, err error) {
	input, err = synth.Generate(p.Input, n)
	if err != nil {
		return nil, nil, err
	}
	target, err = synth.Generate(p.Target, n)
	if err != nil {
		return nil, nil, err
	}
	return input, target, nil
}

// measure times f with adaptive repetition: fast bodies are repeated until
// the total exceeds minDuration so short kernels are not lost in timer
// noise, while long bodies run exactly once.
func measure(f func()) time.Duration {
	const minDuration = 50 * time.Millisecond
	start := time.Now()
	f()
	elapsed := time.Since(start)
	if elapsed >= minDuration {
		return elapsed
	}
	// Repeat in growing batches.
	reps := 1
	for elapsed < minDuration {
		batch := reps
		start = time.Now()
		for i := 0; i < batch; i++ {
			f()
		}
		batchElapsed := time.Since(start)
		if batchElapsed >= minDuration {
			return batchElapsed / time.Duration(batch)
		}
		if batchElapsed <= 0 {
			batchElapsed = time.Nanosecond
		}
		reps = int(int64(batch) * int64(minDuration) / int64(batchElapsed))
		if reps <= batch {
			reps = batch * 2
		}
		elapsed = batchElapsed
	}
	return elapsed
}

// speedup renders a/b, guarding zero denominators.
func speedup(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// solverAlgo resolves Solver against its JV default.
func (cfg *Config) solverAlgo() assign.Algorithm {
	if cfg.Solver == "" {
		return assign.AlgoJV
	}
	return cfg.Solver
}
