package service

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// metricTotal scrapes ts's /metrics and sums every sample of the named
// metric across label sets.
func metricTotal(t *testing.T, ts string, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// TestAnytimeDeadlineMissReturnsPartial: under the anytime policy a deadline
// the job cannot possibly meet yields HTTP 200 with partial:true and the
// X-Mosaic-Partial header — never a 504 — and the body still carries a
// decodable, full-size mosaic (the quality floor). The partial settle also
// shows up in mosaic_partial_responses_total and the flight recorder.
func TestAnytimeDeadlineMissReturnsPartial(t *testing.T) {
	svc, ts := newObsServer(t, Config{Workers: 1, Anytime: true})
	// 256/32 builds a 1024×1024 cost matrix — far beyond a 1ms budget on any
	// machine, so the miss (and the partial) is deterministic.
	resp, jr := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":256,"tiles":32,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200", resp.StatusCode, jr.Error)
	}
	if !jr.Partial {
		t.Fatal("body lacks partial:true")
	}
	if got := resp.Header.Get("X-Mosaic-Partial"); got != "true" {
		t.Fatalf("X-Mosaic-Partial = %q, want \"true\"", got)
	}
	img := decodeBase64PNG(t, jr.PNGBase64)
	if img.W != 256 || img.H != 256 {
		t.Fatalf("partial mosaic geometry %dx%d", img.W, img.H)
	}
	if got := metricTotal(t, ts.URL, "mosaic_partial_responses_total"); got < 1 {
		t.Fatalf("mosaic_partial_responses_total = %v, want ≥ 1", got)
	}
	// Partial requests are retained in the flight recorder's error ring with
	// the partial flag and the granted budget.
	rec, ok := svc.recorder.get(resp.Header.Get("X-Request-ID"))
	if !ok {
		t.Fatal("partial request not retained by the flight recorder")
	}
	if !rec.Partial || rec.BudgetNS != int64(time.Millisecond) {
		t.Fatalf("recorded partial=%v budget=%d, want true/%d", rec.Partial, rec.BudgetNS, int64(time.Millisecond))
	}
}

// TestAnytimePerRequestOverride: the body's "anytime" field overrides the
// server default in both directions.
func TestAnytimePerRequestOverride(t *testing.T) {
	// Strict server, anytime request: 200 partial.
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, jr := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":256,"tiles":32,"timeout_ms":1,"anytime":true}`)
	if resp.StatusCode != http.StatusOK || !jr.Partial {
		t.Fatalf("anytime override: status %d partial %v (%s), want 200/true", resp.StatusCode, jr.Partial, jr.Error)
	}

	// Anytime server, strict request: the old 504 contract. The park hook
	// holds the job past its deadline so the miss does not race the machine.
	_, ts2 := newTestServer(t, Config{
		Workers:      1,
		Anytime:      true,
		testJobStart: func(j *Job) { <-j.ctx.Done() },
	})
	resp2, jr2 := postJSON(t, ts2.URL, `{"input":"lena","target":"sailboat","size":128,"tiles":16,"timeout_ms":50,"anytime":false}`)
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("strict override: status %d (%s), want 504", resp2.StatusCode, jr2.Error)
	}
}

// TestOverloadBurstZero504s is the ISSUE's headline acceptance: a saturating
// burst of tight-deadline jobs against an anytime service produces zero 504s
// — every admitted job settles with a valid (possibly partial) mosaic, and
// anything not admitted is an explicit 429 with Retry-After, never a timeout
// error. Run under -race in CI.
func TestOverloadBurstZero504s(t *testing.T) {
	_, ts := newObsServer(t, Config{Workers: 2, QueueDepth: 4, Anytime: true})
	scenes := []string{"lena", "sailboat", "airplane", "peppers", "barbara", "baboon", "tiffany", "plasma"}
	const burst = 20
	var wg sync.WaitGroup
	statuses := make([]int, burst)
	partials := make([]bool, burst)
	errs := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"input":%q,"target":"gradient","size":128,"tiles":16,"timeout_ms":%d}`,
				scenes[i%len(scenes)], 1+i%5)
			resp, err := http.Post(ts.URL+"/v1/mosaic", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				errs[i] = "429 without Retry-After"
			}
			partials[i] = resp.Header.Get("X-Mosaic-Partial") == "true"
			io.Copy(io.Discard, resp.Body)
		}(i)
	}
	wg.Wait()
	okCount, rejected := 0, 0
	for i, code := range statuses {
		if errs[i] != "" {
			t.Fatalf("request %d: %s", i, errs[i])
		}
		switch code {
		case http.StatusOK:
			okCount++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("request %d: status %d — the anytime battery allows only 200 and 429", i, code)
		}
	}
	if okCount == 0 {
		t.Fatal("no request completed")
	}
	t.Logf("burst settled: %d ok (%d partial), %d shed", okCount, countTrue(partials), rejected)
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// TestAdmissionControlRejectsUnmeetable: once the estimator is warm, a
// strict job whose deadline is below the predicted completion time is
// rejected at submit with 429 and an estimator-derived Retry-After — it
// never occupies a worker.
func TestAdmissionControlRejectsUnmeetable(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	// Train the estimator directly: 8 settled jobs at 200ms mean.
	for i := 0; i < 8; i++ {
		svc.estimator.observe(map[string]int64{"pipeline": int64(200 * time.Millisecond)}, int64(200*time.Millisecond))
	}
	resp, jr := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8,"timeout_ms":50}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, jr.Error)
	}
	if !strings.Contains(jr.Error, "estimated") {
		t.Fatalf("error %q does not mention the estimate", jr.Error)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 30]", resp.Header.Get("Retry-After"))
	}
	if got := metricTotal(t, ts.URL, "mosaic_admission_rejections_total"); got < 1 {
		t.Fatalf("mosaic_admission_rejections_total = %v, want ≥ 1", got)
	}

	// The same deadline on an anytime request is admitted and degrades.
	resp2, jr2 := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8,"timeout_ms":50,"anytime":true}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("anytime with warm estimator: status %d (%s), want 200", resp2.StatusCode, jr2.Error)
	}
}

// TestAdmissionColdEstimatorAdmits: below the sample threshold admission
// control must not act — the pre-existing strict contract (tight deadline →
// admitted → 504) holds on a cold service.
func TestAdmissionColdEstimatorAdmits(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		// Park the job until its deadline fires: a 504 proves the submission
		// was admitted and reached a worker rather than being rejected.
		testJobStart: func(j *Job) { <-j.ctx.Done() },
	})
	resp, _ := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":128,"tiles":16,"timeout_ms":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("cold-estimator status %d, want 504 (admitted, then deadline)", resp.StatusCode)
	}
}

// TestDeadlineHeaderCapsTimeout: an X-Request-Deadline already in the past
// turns a strict submission into an immediate 429 (expired) without running
// anything, and an anytime submission into a floor-quality 200.
func TestDeadlineHeaderCapsTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Anytime: true})
	past := strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mosaic",
		strings.NewReader(`{"input":"lena","target":"sailboat","size":64,"tiles":8,"anytime":false}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Deadline", past)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("strict expired-header status %d, want 429", resp.StatusCode)
	}

	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mosaic",
		strings.NewReader(`{"input":"lena","target":"sailboat","size":64,"tiles":8}`))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("X-Request-Deadline", past)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Mosaic-Partial") != "true" {
		t.Fatalf("anytime expired-header: status %d partial %q, want 200/true",
			resp2.StatusCode, resp2.Header.Get("X-Mosaic-Partial"))
	}
}

// TestRetryAfterEstimate: cold falls back to the configured constant; warm
// clamps to [1s, 30s].
func TestRetryAfterEstimate(t *testing.T) {
	svc := New(Config{Workers: 1, RetryAfter: 7 * time.Second})
	defer svc.Close()
	if got := svc.RetryAfterEstimate(); got != 7*time.Second {
		t.Fatalf("cold RetryAfterEstimate = %v, want the configured 7s", got)
	}
	svc.estimator.observe(nil, int64(90*time.Second))
	if got := svc.RetryAfterEstimate(); got != time.Second {
		t.Fatalf("empty-queue RetryAfterEstimate = %v, want the 1s floor", got)
	}
}

// TestEstimatorOnlyTrainsOnCompleteRuns: partial settles must not feed the
// estimator — an overloaded anytime service would otherwise learn ever more
// optimistic means from its own truncated runs.
func TestEstimatorOnlyTrainsOnCompleteRuns(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, Anytime: true})
	resp, jr := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":256,"tiles":32,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusOK || !jr.Partial {
		t.Fatalf("setup: status %d partial %v (%s)", resp.StatusCode, jr.Partial, jr.Error)
	}
	if n := svc.estimator.samples(); n != 0 {
		t.Fatalf("estimator trained on %d partial run(s)", n)
	}
	resp2, jr2 := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8,"timeout_ms":60000}`)
	if resp2.StatusCode != http.StatusOK || jr2.Partial {
		t.Fatalf("setup: status %d partial %v", resp2.StatusCode, jr2.Partial)
	}
	if n := svc.estimator.samples(); n != 1 {
		t.Fatalf("estimator samples = %d after one complete run, want 1", n)
	}
}

// TestNoAdmissionFlag: Config.NoAdmission restores unconditional admission
// even with a warm, pessimistic estimator.
func TestNoAdmissionFlag(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, NoAdmission: true})
	for i := 0; i < 8; i++ {
		svc.estimator.observe(nil, int64(time.Hour))
	}
	resp, _ := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8,"timeout_ms":200}`)
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("NoAdmission service still rejected on the estimator")
	}
}
