package service

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// RecordedRequest is one request's retained observability artifact: identity,
// outcome, the per-phase latency attribution and the full span tree. It is
// what /debug/requests/{id} serves and what the acceptance test cross-checks
// against the access log.
type RecordedRequest struct {
	RequestID string    `json:"request_id"`
	JobID     string    `json:"job_id"`
	Route     string    `json:"route,omitempty"`
	Outcome   string    `json:"outcome"`
	Error     string    `json:"error,omitempty"`
	Start     time.Time `json:"start"`
	// DurationNS is the request root span's wall time.
	DurationNS  int64            `json:"duration_ns"`
	Device      string           `json:"device,omitempty"`
	Cache       string           `json:"cache,omitempty"`
	ContentHash string           `json:"content_hash,omitempty"`
	Degraded    bool             `json:"degraded,omitempty"`
	Quarantined bool             `json:"quarantined,omitempty"`
	Retries     int64            `json:"retries,omitempty"`
	Batched     bool             `json:"batched,omitempty"`
	Partial     bool             `json:"partial,omitempty"`
	BudgetNS    int64            `json:"budget_ns,omitempty"`
	Phases      map[string]int64 `json:"phases_ns"`
	Spans       []*trace.Node    `json:"spans,omitempty"`
}

// errored reports whether the request belongs in the error/degraded ring.
// Partial (deadline-budgeted) results count: they are exactly the requests
// an operator investigating an overload wants the span trees of.
func (r *RecordedRequest) errored() bool {
	return r.Outcome != "done" || r.Degraded || r.Quarantined || r.Partial
}

// recordedSummary is the list form: everything but the span tree.
type recordedSummary struct {
	RequestID  string `json:"request_id"`
	JobID      string `json:"job_id"`
	Outcome    string `json:"outcome"`
	DurationNS int64  `json:"duration_ns"`
	Cache      string `json:"cache,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	Detail     string `json:"detail"`
}

func summarize(r *RecordedRequest) recordedSummary {
	return recordedSummary{
		RequestID:  r.RequestID,
		JobID:      r.JobID,
		Outcome:    r.Outcome,
		DurationNS: r.DurationNS,
		Cache:      r.Cache,
		Degraded:   r.Degraded,
		Detail:     "/debug/requests/" + r.RequestID,
	}
}

// flightRecorder retains full span trees for the requests an operator will
// actually ask about: the slowest N seen so far (min-retention by duration)
// plus a bounded ring of every errored or degraded request. Both buffers are
// independent — a slow failure appears in both — and lookups scan both, so
// an entry stays addressable as long as either buffer holds it.
type flightRecorder struct {
	mu       sync.Mutex
	slowCap  int
	errCap   int
	slow     []*RecordedRequest // unordered; evict-min on overflow
	errs     []*RecordedRequest // ring, oldest overwritten
	errsNext int
}

func newFlightRecorder(slowCap, errCap int) *flightRecorder {
	if slowCap <= 0 {
		slowCap = 32
	}
	if errCap <= 0 {
		errCap = 64
	}
	return &flightRecorder{slowCap: slowCap, errCap: errCap}
}

// record retains r per the policy. Safe for concurrent use.
func (fr *flightRecorder) record(r *RecordedRequest) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if r.errored() {
		if len(fr.errs) < fr.errCap {
			fr.errs = append(fr.errs, r)
		} else {
			fr.errs[fr.errsNext] = r
			fr.errsNext = (fr.errsNext + 1) % fr.errCap
		}
	}
	if len(fr.slow) < fr.slowCap {
		fr.slow = append(fr.slow, r)
		return
	}
	min := 0
	for i, s := range fr.slow {
		if s.DurationNS < fr.slow[min].DurationNS {
			min = i
		}
	}
	if r.DurationNS > fr.slow[min].DurationNS {
		fr.slow[min] = r
	}
}

// get returns the retained request with the given ID (newest wins when an ID
// somehow repeats).
func (fr *flightRecorder) get(id string) (*RecordedRequest, bool) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for i := len(fr.errs) - 1; i >= 0; i-- {
		if fr.errs[i].RequestID == id {
			return fr.errs[i], true
		}
	}
	for _, s := range fr.slow {
		if s.RequestID == id {
			return s, true
		}
	}
	return nil, false
}

// list returns summaries: slowest first, then the error ring newest-first.
func (fr *flightRecorder) list() (slowest, errored []recordedSummary) {
	fr.mu.Lock()
	slow := append([]*RecordedRequest(nil), fr.slow...)
	errs := make([]*RecordedRequest, 0, len(fr.errs))
	for i := 0; i < len(fr.errs); i++ {
		// Walk the ring newest-first starting just before the write cursor.
		idx := (fr.errsNext - 1 - i + 2*len(fr.errs)) % len(fr.errs)
		errs = append(errs, fr.errs[idx])
	}
	fr.mu.Unlock()
	sort.Slice(slow, func(i, j int) bool { return slow[i].DurationNS > slow[j].DurationNS })
	for _, r := range slow {
		slowest = append(slowest, summarize(r))
	}
	for _, r := range errs {
		errored = append(errored, summarize(r))
	}
	return slowest, errored
}

// RegisterDebugRoutes mounts the flight-recorder endpoints:
//
//	GET /debug/requests       slowest-N and errored/degraded summaries
//	GET /debug/requests/{id}  one retained request: phases + full span tree
//
// Like /debug/pprof, these expose request internals (IDs, hashes, timings);
// cmd/mosaicd mounts them under the same loopback/-pprof gate.
func (s *Service) RegisterDebugRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/debug/requests/", s.handleDebugRequest)
}

func (s *Service) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	slowest, errored := s.recorder.list()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, struct {
		Slowest []recordedSummary `json:"slowest"`
		Errored []recordedSummary `json:"errored"`
	}{slowest, errored})
}

func (s *Service) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/requests/")
	rec, ok := s.recorder.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "request not retained (not slow enough, not errored, or evicted)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, rec)
}
