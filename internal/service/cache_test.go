package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func preparedFixture(t *testing.T, scene synth.Scene, n int) *core.Prepared {
	t.Helper()
	input := synth.MustGenerate(scene, n)
	target := synth.MustGenerate(synth.Gradient, n)
	p, err := core.PrepareContext(context.Background(), input, target, core.Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCacheLRUEviction: entries beyond the byte budget are evicted oldest
// first, and the eviction counter records it.
func TestCacheLRUEviction(t *testing.T) {
	a := preparedFixture(t, synth.Lena, 64)
	b := preparedFixture(t, synth.Sailboat, 64)
	// Budget for one entry only.
	c := newPrepCache(a.MemoryBytes() + a.MemoryBytes()/2)

	ctx := context.Background()
	build := func(p *core.Prepared) func() (*core.Prepared, error) {
		return func() (*core.Prepared, error) { return p, nil }
	}
	if _, hit, _ := c.getOrPrepare(ctx, "a", build(a)); hit {
		t.Fatal("first insert reported a hit")
	}
	if _, hit, _ := c.getOrPrepare(ctx, "a", build(a)); !hit {
		t.Fatal("repeat lookup missed")
	}
	if _, hit, _ := c.getOrPrepare(ctx, "b", build(b)); hit {
		t.Fatal("new key reported a hit")
	}
	entries, bytes, evictions := c.stats()
	if entries != 1 || evictions != 1 {
		t.Fatalf("entries=%d evictions=%d after overflow, want 1/1", entries, evictions)
	}
	if bytes != b.MemoryBytes() {
		t.Fatalf("resident bytes = %d, want %d", bytes, b.MemoryBytes())
	}
	if _, hit, _ := c.getOrPrepare(ctx, "a", build(a)); hit {
		t.Fatal("evicted key still hit")
	}
}

// TestCacheSingleflight: concurrent misses on one key run build once; the
// followers report hits.
func TestCacheSingleflight(t *testing.T) {
	p := preparedFixture(t, synth.Lena, 64)
	c := newPrepCache(1 << 30)
	gate := make(chan struct{})
	var builds int
	var mu sync.Mutex

	const n = 8
	hits := make(chan bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := c.getOrPrepare(context.Background(), "k", func() (*core.Prepared, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				<-gate
				return p, nil
			})
			if err != nil {
				t.Error(err)
			}
			hits <- hit
		}()
	}
	// Let every goroutine reach the leader/follower split, then open the gate.
	for {
		mu.Lock()
		started := builds
		mu.Unlock()
		if started >= 1 {
			break
		}
	}
	close(gate)
	wg.Wait()
	close(hits)

	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	var hitCount int
	for h := range hits {
		if h {
			hitCount++
		}
	}
	if hitCount != n-1 {
		t.Fatalf("%d followers hit, want %d", hitCount, n-1)
	}
}

// TestCacheDisabled: a non-positive budget stores nothing but still serves
// builds.
func TestCacheDisabled(t *testing.T) {
	p := preparedFixture(t, synth.Lena, 64)
	c := newPrepCache(-1)
	ctx := context.Background()
	build := func() (*core.Prepared, error) { return p, nil }
	for i := 0; i < 2; i++ {
		got, hit, err := c.getOrPrepare(ctx, "k", build)
		if err != nil || got != p || hit {
			t.Fatalf("iteration %d: got=%v hit=%v err=%v", i, got == p, hit, err)
		}
	}
	if entries, bytes, _ := c.stats(); entries != 0 || bytes != 0 {
		t.Fatalf("disabled cache retained entries=%d bytes=%d", entries, bytes)
	}
}

// TestCacheBuildError: a failed build is not cached and the error reaches
// the caller.
func TestCacheBuildError(t *testing.T) {
	c := newPrepCache(1 << 30)
	boom := errors.New("boom")
	if _, _, err := c.getOrPrepare(context.Background(), "k", func() (*core.Prepared, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	p := preparedFixture(t, synth.Lena, 64)
	if _, hit, err := c.getOrPrepare(context.Background(), "k", func() (*core.Prepared, error) {
		return p, nil
	}); hit || err != nil {
		t.Fatalf("after failed build: hit=%v err=%v, want fresh miss", hit, err)
	}
}

// TestCacheKeyDiscriminates: any change to content, geometry, metric or the
// histogram flag changes the key; Step-3 knobs do not participate at all.
func TestCacheKeyDiscriminates(t *testing.T) {
	in := synth.MustGenerate(synth.Lena, 64)
	tg := synth.MustGenerate(synth.Sailboat, 64)
	base := cacheKey(in, tg, 8, 0, false)
	if cacheKey(in, tg, 8, 0, false) != base {
		t.Fatal("key is not deterministic")
	}
	variants := map[string]string{
		"tiles":  cacheKey(in, tg, 16, 0, false),
		"metric": cacheKey(in, tg, 8, 1, false),
		"noHist": cacheKey(in, tg, 8, 0, true),
		"input":  cacheKey(tg, in, 8, 0, false),
	}
	for name, k := range variants {
		if k == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}
