package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/pnm"
	"repro/internal/synth"
	"repro/internal/trace"
)

// maxUploadBytes bounds one request body — JSON or multipart; two max-side
// PNGs fit with room to spare. Oversized bodies are rejected with 413, never
// silently truncated (truncation would decode a corrupt image or compute a
// wrong content hash).
const maxUploadBytes = 32 << 20

// MaxUploadBytes is the request-body bound, exported so the cluster router
// can enforce the same limit before buffering a submission for routing.
const MaxUploadBytes = maxUploadBytes

// ErrTooLarge reports a request body or uploaded file exceeding
// maxUploadBytes. The HTTP layer maps it to 413 Request Entity Too Large.
var ErrTooLarge = errors.New("service: request body exceeds the upload limit")

// RegisterRoutes mounts the job API on mux, next to whatever telemetry
// endpoints the mux already serves:
//
//	POST /v1/mosaic           submit a job (sync by default, mode=async for 202+poll)
//	GET  /v1/jobs/{id}        poll an async job
//	HEAD /v1/prepared/{hash}  cache peek: 200 if the prepared-work cache holds hash
func (s *Service) RegisterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/v1/mosaic", s.handleMosaic)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/prepared/", s.handlePrepared)
}

// jobRequestJSON is the wire form of a submission. Images are either
// built-in synthetic scene names (JSON body) or uploaded PNG/PGM files
// (multipart form, parts "input" and "target", same field names otherwise).
type jobRequestJSON struct {
	Input            string `json:"input"`
	Target           string `json:"target"`
	Size             int    `json:"size"`
	Tiles            int    `json:"tiles"`
	Algorithm        string `json:"algorithm"`
	Solver           string `json:"solver"`
	Metric           string `json:"metric"`
	NoHistogramMatch bool   `json:"no_histogram_match"`
	TimeoutMS        int64  `json:"timeout_ms"`
	Mode             string `json:"mode"`   // "sync" (default) | "async"
	Format           string `json:"format"` // "json" (default) | "png"
	// Anytime overrides the server's deadline policy for this job: true
	// degrades a missed deadline into a partial (but valid) mosaic, false
	// forces a strict 504. Absent means "use the server default".
	Anytime *bool `json:"anytime,omitempty"`
}

// jobResponseJSON is the wire form of a job's state/result.
type jobResponseJSON struct {
	JobID      string   `json:"job_id"`
	RequestID  string   `json:"request_id,omitempty"`
	Status     string   `json:"status"`
	Error      string   `json:"error,omitempty"`
	Cache      string   `json:"cache,omitempty"`
	TotalError int64    `json:"total_error,omitempty"`
	ElapsedMS  float64  `json:"elapsed_ms,omitempty"`
	Retries    int64    `json:"retries,omitempty"`
	Degraded   bool     `json:"degraded,omitempty"`
	Partial    bool     `json:"partial,omitempty"`
	// CertifiedGap is the assignment solver's certified optimality gap when
	// one was computed (auction/Sinkhorn paths); for a partial result it
	// bounds how far the early-stopped answer can be from optimal.
	CertifiedGap float64 `json:"certified_gap,omitempty"`
	Spans      []string `json:"spans,omitempty"`
	PNGBase64  string   `json:"png_base64,omitempty"`
	StatusURL  string   `json:"status_url,omitempty"`
}

func (s *Service) handleMosaic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	req, wire, err := parseSubmission(r, s.cfg.MaxImageSide)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrTooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, err.Error())
		return
	}
	req.RequestID = r.Header.Get("X-Request-ID")
	req.Route = "/v1/mosaic"
	job, err := s.Submit(req)
	// Submit writes the effective (sanitized or minted) ID back to the
	// request, so even rejections echo an ID the client can correlate.
	w.Header().Set("X-Request-ID", req.RequestID)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	if wire.Mode == "async" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, jobResponseJSON{
			JobID:     job.ID,
			RequestID: job.RequestID,
			Status:    string(JobQueued),
			StatusURL: "/v1/jobs/" + job.ID,
		})
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client is gone; cancel so a still-queued job never occupies
		// a worker. The response is moot but the job must settle.
		job.Cancel()
		<-job.Done()
		httpError(w, 499, "client closed request")
		return
	}
	s.writeJob(w, job, wire.Format)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	job, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job (finished jobs are retained only briefly)")
		return
	}
	s.writeJob(w, job, r.URL.Query().Get("format"))
}

// handlePrepared is the cross-node cache peek: HEAD (or GET)
// /v1/prepared/{hash} answers 200 when the prepared-work cache holds that
// content hash and 404 otherwise. It is deliberately cheap — one map lookup,
// no LRU bump (a peek is not a use) — so a cluster router can probe every
// node per request. GET additionally returns a small JSON document.
func (s *Service) handlePrepared(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodHead && r.Method != http.MethodGet {
		w.Header().Set("Allow", "HEAD, GET")
		httpError(w, http.StatusMethodNotAllowed, "HEAD or GET only")
		return
	}
	hash := strings.TrimPrefix(r.URL.Path, "/v1/prepared/")
	if hash == "" || strings.Contains(hash, "/") {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	if !s.PreparedCached(hash) {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, struct {
		ContentHash string `json:"content_hash"`
		Cached      bool   `json:"cached"`
	}{hash, true})
}

// PreparedCached reports whether the prepared-work cache currently holds the
// given content hash, without touching LRU order.
func (s *Service) PreparedCached(hash string) bool { return s.cache.contains(hash) }

// writeJob renders a job in its current state; format "png" streams the
// image for finished jobs, everything else gets the JSON document.
func (s *Service) writeJob(w http.ResponseWriter, job *Job, format string) {
	w.Header().Set("X-Request-ID", job.RequestID)
	state, result, err := job.Snapshot()
	if err != nil {
		code, msg := errToStatus(err)
		httpError(w, code, msg)
		return
	}
	if state == JobDone && result.Partial {
		// Machine-readable even on the PNG path, and visible to intermediaries
		// that never parse the body: this 200 carries a valid but
		// deadline-truncated mosaic.
		w.Header().Set("X-Mosaic-Partial", "true")
	}
	if state == JobDone && format == "png" {
		w.Header().Set("Content-Type", "image/png")
		w.Header().Set("X-Mosaic-Cache", cacheLabel(result.CacheHit))
		w.Header().Set("X-Mosaic-Total-Error", strconv.FormatInt(result.TotalError, 10))
		_, _ = w.Write(result.PNG)
		return
	}
	resp := jobResponseJSON{JobID: job.ID, RequestID: job.RequestID, Status: string(state)}
	if state == JobDone {
		resp.Cache = cacheLabel(result.CacheHit)
		resp.TotalError = result.TotalError
		resp.ElapsedMS = float64(result.Elapsed.Microseconds()) / 1e3
		resp.Retries = result.Stats.Counter(trace.CounterLaunchRetries)
		resp.Degraded = result.Stats.Counter(trace.CounterDegradedRuns) > 0
		resp.Partial = result.Partial
		resp.CertifiedGap = result.CertifiedGap
		for _, sp := range result.Stats.Spans {
			resp.Spans = append(resp.Spans, sp.Name)
		}
		resp.PNGBase64 = base64.StdEncoding.EncodeToString(result.PNG)
	} else {
		resp.StatusURL = "/v1/jobs/" + job.ID
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// writeSubmitError maps Submit errors onto the backpressure status codes.
// Both 429s carry a Retry-After derived from the live latency estimator
// (queue depth × mean job time) rather than a fixed constant, so clients
// back off proportionally to actual load.
func (s *Service) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDeadlineUnmeetable):
		ra := s.RetryAfterEstimate()
		w.Header().Set("Retry-After", strconv.Itoa(int((ra+time.Second-1)/time.Second)))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, core.ErrOptions):
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// errToStatus maps job-execution errors onto response codes.
func errToStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "job deadline exceeded"
	case errors.Is(err, context.Canceled):
		// The job died because the submitter walked away, not because the
		// service failed — nginx's 499, distinct from the 504 deadline above.
		return 499, "client closed request"
	case errors.Is(err, ErrAllQuarantined):
		return http.StatusServiceUnavailable, err.Error()
	case errors.Is(err, core.ErrOptions):
		return http.StatusBadRequest, err.Error()
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// DecodeSubmission parses an HTTP submission exactly as POST /v1/mosaic
// does — same wire formats, limits and validation — without submitting
// anything. The cluster router uses it to compute the content-hash routing
// key for a buffered request before forwarding it to a backend; the returned
// Request's ContentKey is bit-identical to the cache key the backend will
// derive. Errors wrapping ErrTooLarge should map to 413, everything else
// to 400.
func DecodeSubmission(r *http.Request, maxImageSide int) (*Request, error) {
	if maxImageSide <= 0 {
		maxImageSide = 1024
	}
	req, _, err := parseSubmission(r, maxImageSide)
	return req, err
}

// parseSubmission decodes either wire format into a validated Request.
func parseSubmission(r *http.Request, maxImageSide int) (*Request, *jobRequestJSON, error) {
	wire := &jobRequestJSON{}
	var inputFile, targetFile []byte
	ctype, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	switch {
	case ctype == "multipart/form-data":
		// Bound the whole multipart body so an oversized upload fails loudly
		// instead of spooling without limit; the per-file check in formFile
		// is defense in depth on top of this.
		r.Body = http.MaxBytesReader(nil, r.Body, maxUploadBytes)
		if err := r.ParseMultipartForm(maxUploadBytes); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return nil, nil, fmt.Errorf("%w (%d-byte limit)", ErrTooLarge, maxUploadBytes)
			}
			return nil, nil, fmt.Errorf("multipart form: %w", err)
		}
		var err error
		if inputFile, err = formFile(r, "input"); err != nil {
			return nil, nil, err
		}
		if targetFile, err = formFile(r, "target"); err != nil {
			return nil, nil, err
		}
		wire.Input = r.FormValue("input")
		wire.Target = r.FormValue("target")
		wire.Size = atoiDefault(r.FormValue("size"), 0)
		wire.Tiles = atoiDefault(r.FormValue("tiles"), 0)
		wire.Algorithm = r.FormValue("algorithm")
		wire.Solver = r.FormValue("solver")
		wire.Metric = r.FormValue("metric")
		wire.NoHistogramMatch = r.FormValue("no_histogram_match") == "true"
		wire.TimeoutMS = int64(atoiDefault(r.FormValue("timeout_ms"), 0))
		wire.Mode = r.FormValue("mode")
		wire.Format = r.FormValue("format")
		if v := r.FormValue("anytime"); v != "" {
			b := v == "true"
			wire.Anytime = &b
		}
	default: // application/json
		// Read one byte past the limit: a body that fills limit+1 bytes is
		// oversized and gets 413, where a plain LimitReader would silently
		// truncate it into corrupt (but parseable-looking) input.
		body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
		if err != nil {
			return nil, nil, fmt.Errorf("read body: %w", err)
		}
		if len(body) > maxUploadBytes {
			return nil, nil, fmt.Errorf("%w (%d-byte limit)", ErrTooLarge, maxUploadBytes)
		}
		if err := json.Unmarshal(body, wire); err != nil {
			return nil, nil, fmt.Errorf("json body: %w", err)
		}
	}

	if wire.Size == 0 {
		wire.Size = 256
	}
	if wire.Tiles == 0 {
		wire.Tiles = 16
	}
	if wire.Size < 2 || wire.Size > maxImageSide {
		return nil, nil, fmt.Errorf("size %d out of range [2, %d]", wire.Size, maxImageSide)
	}
	if wire.Tiles < 2 || wire.Size%wire.Tiles != 0 {
		return nil, nil, fmt.Errorf("size %d not divisible into %d tiles per side", wire.Size, wire.Tiles)
	}
	if wire.Mode != "" && wire.Mode != "sync" && wire.Mode != "async" {
		return nil, nil, fmt.Errorf("unknown mode %q (want sync or async)", wire.Mode)
	}

	req := &Request{
		Tiles:       wire.Tiles,
		NoHistMatch: wire.NoHistogramMatch,
		Timeout:     time.Duration(wire.TimeoutMS) * time.Millisecond,
		Anytime:     wire.Anytime,
	}
	// X-Request-Deadline (unix milliseconds) is the cluster router's
	// propagated client deadline: an absolute wall-clock instant that caps
	// timeout_ms, so a failover retry never restarts the clock from zero.
	if v := r.Header.Get("X-Request-Deadline"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("X-Request-Deadline %q: want unix milliseconds", v)
		}
		req.Deadline = time.UnixMilli(ms)
	}
	if wire.Algorithm != "" {
		alg, err := core.ParseAlgorithm(wire.Algorithm)
		if err != nil {
			return nil, nil, err
		}
		req.Algorithm = alg
	}
	if wire.Solver != "" {
		sol, err := core.ParseSolver(wire.Solver)
		if err != nil {
			return nil, nil, err
		}
		req.Solver = sol
	}
	switch strings.ToLower(wire.Metric) {
	case "", "l1":
		req.Metric = metric.L1
	case "l2":
		req.Metric = metric.L2
	default:
		return nil, nil, fmt.Errorf("unknown metric %q (want l1 or l2)", wire.Metric)
	}
	var err error
	if req.Input, err = resolveImage(inputFile, wire.Input, "input", wire.Size); err != nil {
		return nil, nil, err
	}
	if req.Target, err = resolveImage(targetFile, wire.Target, "target", wire.Size); err != nil {
		return nil, nil, err
	}
	return req, wire, nil
}

func formFile(r *http.Request, field string) ([]byte, error) {
	f, _, err := r.FormFile(field)
	if err == http.ErrMissingFile {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("form file %q: %w", field, err)
	}
	defer f.Close()
	// limit+1 so an at-limit file is distinguishable from an oversized one;
	// LimitReader alone would truncate silently, handing the pipeline a
	// corrupt image (or hashing the wrong content).
	data, err := io.ReadAll(io.LimitReader(f, maxUploadBytes+1))
	if err != nil {
		return nil, fmt.Errorf("form file %q: %w", field, err)
	}
	if len(data) > maxUploadBytes {
		return nil, fmt.Errorf("form file %q: %w (%d-byte limit)", field, ErrTooLarge, maxUploadBytes)
	}
	return data, nil
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// resolveImage produces the n×n grayscale image for one role: an uploaded
// PNG/PGM when file bytes are present, otherwise a built-in synthetic scene
// by name.
func resolveImage(file []byte, scene, role string, n int) (*imgutil.Gray, error) {
	if len(file) > 0 {
		img, err := decodeImage(file)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", role, err)
		}
		if img.W != n || img.H != n {
			img = img.ResizeBilinear(n, n)
		}
		return img, nil
	}
	if scene == "" {
		return nil, fmt.Errorf("%s: provide a scene name or an uploaded image", role)
	}
	sc, err := synth.ParseScene(scene)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", role, err)
	}
	return synth.Generate(sc, n)
}

// decodeImage sniffs PNG vs PGM by magic bytes.
func decodeImage(data []byte) (*imgutil.Gray, error) {
	switch {
	case len(data) >= 8 && bytes.HasPrefix(data, []byte("\x89PNG\r\n\x1a\n")):
		img, err := png.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("png: %w", err)
		}
		return imgutil.GrayFromImage(img), nil
	case len(data) >= 2 && data[0] == 'P' && (data[1] == '2' || data[1] == '5'):
		return pnm.DecodeGray(bytes.NewReader(data))
	}
	return nil, errors.New("unrecognised image format (want PNG or PGM)")
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, jobResponseJSON{Status: "error", Error: msg})
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
