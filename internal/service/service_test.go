package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// newTestServer boots a service with its HTTP surface on an httptest
// listener. The caller owns shutdown via the returned cleanup.
func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	mux := telemetry.NewMux(svc.Registry(), telemetry.WithReadiness(svc.Ready))
	svc.RegisterRoutes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, jobResponseJSON) {
	t.Helper()
	resp, err := http.Post(url+"/v1/mosaic", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var jr jobResponseJSON
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatalf("decode response %q: %v", data, err)
	}
	return resp, jr
}

func decodeBase64PNG(t *testing.T, b64 string) *imgutil.Gray {
	t.Helper()
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		t.Fatalf("base64: %v", err)
	}
	img, err := png.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("png: %v", err)
	}
	return imgutil.GrayFromImage(img)
}

// TestConcurrentJobsSharedDevice is the acceptance-criteria core: 8
// concurrent requests over one pooled device, no launch-guard panic (the
// whole process would die), and every response bit-identical to the serial
// single-request pipeline. Run under -race in CI.
func TestConcurrentJobsSharedDevice(t *testing.T) {
	const size, tiles = 128, 16
	scenes := []string{"lena", "sailboat", "airplane", "peppers", "barbara", "baboon", "tiffany", "plasma"}
	const target = "gradient"

	// Serial references, each on a private device.
	want := make(map[string]*core.Result)
	tgt := mustScene(t, target, size)
	for _, name := range scenes {
		res, err := core.Generate(mustScene(t, name, size), tgt, core.Options{
			TilesPerSide: tiles, Device: cuda.New(2),
		})
		if err != nil {
			t.Fatalf("reference %s: %v", name, err)
		}
		want[name] = res
	}

	_, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 16, Devices: 1, DeviceWorkers: 2})
	var wg sync.WaitGroup
	for _, name := range scenes {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			body := fmt.Sprintf(`{"input":%q,"target":%q,"size":%d,"tiles":%d}`, name, target, size, tiles)
			resp, err := http.Post(ts.URL+"/v1/mosaic", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("%s: POST: %v", name, err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d: %s", name, resp.StatusCode, data)
				return
			}
			var jr jobResponseJSON
			if err := json.Unmarshal(data, &jr); err != nil {
				t.Errorf("%s: decode: %v", name, err)
				return
			}
			ref := want[name]
			if jr.TotalError != ref.TotalError {
				t.Errorf("%s: total_error = %d, want %d", name, jr.TotalError, ref.TotalError)
			}
			got := decodeBase64PNG(t, jr.PNGBase64)
			if !got.Equal(ref.Mosaic) {
				t.Errorf("%s: mosaic differs from the serial reference", name)
			}
		}(name)
	}
	wg.Wait()
}

// TestCacheHitSkipsCostMatrix: the second identical request reuses the
// prepared input — cache=hit, no error-matrix span, counter moved.
func TestCacheHitSkipsCostMatrix(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	body := `{"input":"lena","target":"sailboat","size":128,"tiles":16}`

	resp, first := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d (%s)", resp.StatusCode, first.Error)
	}
	if first.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", first.Cache)
	}
	if !containsSpan(first.Spans, trace.SpanCostMatrix) {
		t.Fatalf("first request spans %v missing %s", first.Spans, trace.SpanCostMatrix)
	}

	resp, second := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d", resp.StatusCode)
	}
	if second.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", second.Cache)
	}
	if containsSpan(second.Spans, trace.SpanCostMatrix) {
		t.Fatalf("cache hit still ran Step 2: spans %v", second.Spans)
	}
	if !containsSpan(second.Spans, trace.SpanRearrange) {
		t.Fatalf("cache hit missing Step 3: spans %v", second.Spans)
	}
	if second.TotalError != first.TotalError || second.PNGBase64 != first.PNGBase64 {
		t.Fatal("cache hit returned a different mosaic")
	}

	snap := svc.Registry().Snapshot()
	if hits := snap.Counters["mosaic_service_cache_hits_total"]; hits < 1 {
		t.Fatalf("mosaic_service_cache_hits_total = %v, want >= 1", hits)
	}
	if misses := snap.Counters["mosaic_service_cache_misses_total"]; misses != 1 {
		t.Fatalf("mosaic_service_cache_misses_total = %v, want 1", misses)
	}
}

// TestQueueFullBackpressure: with one busy worker and a one-slot queue, the
// third submission is rejected with 429 + Retry-After instead of queuing
// unboundedly, and the queue recovers once the blockage clears.
func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	var gateOnce sync.Once
	started := make(chan struct{}, 4)
	cfg := Config{
		Workers: 1, QueueDepth: 1,
		testJobStart: func(*Job) {
			started <- struct{}{}
			<-release
		},
	}
	svc, ts := newTestServer(t, cfg)
	defer gateOnce.Do(func() { close(release) })

	body := `{"input":"lena","target":"sailboat","size":64,"tiles":8}`
	// First job occupies the worker…
	go func() { _, _ = http.Post(ts.URL+"/v1/mosaic", "application/json", strings.NewReader(body)) }()
	<-started
	// …second fills the queue slot…
	if _, err := svc.Submit(mustRequest(t, 64, 8)); err != nil {
		t.Fatalf("queue-slot submit: %v", err)
	}
	// …third must be rejected, with the HTTP mapping intact.
	resp, jr := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, jr.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	snap := svc.Registry().Snapshot()
	if got := snap.Counters[`mosaic_service_rejected_total{reason="queue-full"}`]; got < 1 {
		t.Fatalf("rejected counter = %v, want >= 1", got)
	}

	gateOnce.Do(func() { close(release) })
	// Backpressure is transient: the same request succeeds once drained.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := postJSON(t, ts.URL, body)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never recovered: last status %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGracefulDrain: Drain finishes queued and in-flight jobs, flips
// /readyz to 503 while /healthz stays 200, and rejects new submissions.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	cfg := Config{
		Workers: 2, QueueDepth: 8,
		testJobStart: func(*Job) { <-release },
	}
	svc, ts := newTestServer(t, cfg)

	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := svc.Submit(mustRequest(t, 64, 8))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()

	// Readiness flips as soon as Drain begins.
	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	}, "readyz never flipped to 503")
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// New work is rejected with 503.
	resp, _ := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, j := range jobs {
		st, res, err := j.Snapshot()
		if st != JobDone || err != nil || res == nil {
			t.Fatalf("job %d after drain: state=%s err=%v", i, st, err)
		}
	}
}

// TestAsyncJobLifecycle: async submissions return 202 + a pollable job that
// reaches done with a result; unknown jobs 404.
func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, jr := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8,"mode":"async"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d, want 202", resp.StatusCode)
	}
	if jr.JobID == "" || jr.StatusURL == "" {
		t.Fatalf("async response missing job id/status url: %+v", jr)
	}

	var final jobResponseJSON
	waitFor(t, func() bool {
		r, err := http.Get(ts.URL + jr.StatusURL)
		if err != nil {
			return false
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return false
		}
		if err := json.NewDecoder(r.Body).Decode(&final); err != nil {
			return false
		}
		return final.Status == string(JobDone)
	}, "async job never finished")
	if final.PNGBase64 == "" || final.TotalError <= 0 {
		t.Fatalf("async result incomplete: %+v", final.Status)
	}

	if r, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %v %v, want 404", r.StatusCode, err)
	} else {
		r.Body.Close()
	}
}

// TestJobDeadline: a job whose deadline expires fails with 504.
func TestJobDeadline(t *testing.T) {
	cfg := Config{
		Workers: 1,
		testJobStart: func(j *Job) {
			<-j.ctx.Done() // park until the per-job deadline fires
		},
	}
	_, ts := newTestServer(t, cfg)
	resp, jr := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8,"timeout_ms":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d (%s), want 504", resp.StatusCode, jr.Error)
	}
}

// TestBadRequests: malformed submissions map to 400, wrong methods to 405.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"unknown scene":     `{"input":"nosuch","target":"sailboat"}`,
		"unknown algorithm": `{"input":"lena","target":"sailboat","algorithm":"nope"}`,
		"unknown metric":    `{"input":"lena","target":"sailboat","metric":"l7"}`,
		"bad tiling":        `{"input":"lena","target":"sailboat","size":100,"tiles":16}`,
		"oversized":         `{"input":"lena","target":"sailboat","size":65536,"tiles":16}`,
		"bad mode":          `{"input":"lena","target":"sailboat","mode":"later"}`,
		"not json":          `{{{`,
	} {
		resp, _ := postJSON(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	r, err := http.Get(ts.URL + "/v1/mosaic")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/mosaic = %d, want 405", r.StatusCode)
	}
}

// TestMultipartUpload: PNG uploads round-trip through the multipart path
// and match the scene-name path bit for bit.
func TestMultipartUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, viaScene := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scene request: %d", resp.StatusCode)
	}

	encode := func(img *imgutil.Gray) []byte {
		var buf bytes.Buffer
		if err := png.Encode(&buf, img.ToImage()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var body bytes.Buffer
	mw := newMultipart(t, &body, map[string]string{"size": "64", "tiles": "8"}, map[string][]byte{
		"input":  encode(mustScene(t, "lena", 64)),
		"target": encode(mustScene(t, "sailboat", 64)),
	})
	r, err := http.Post(ts.URL+"/v1/mosaic", mw, &body)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	data, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("multipart: %d: %s", r.StatusCode, data)
	}
	var viaUpload jobResponseJSON
	if err := json.Unmarshal(data, &viaUpload); err != nil {
		t.Fatal(err)
	}
	if viaUpload.TotalError != viaScene.TotalError {
		t.Fatalf("upload total_error = %d, scene path = %d", viaUpload.TotalError, viaScene.TotalError)
	}
	// The identical pixels arrive via a different wire path, so this is the
	// cache's content-addressing at work: same content → hit.
	if viaUpload.Cache != "hit" {
		t.Fatalf("upload cache = %q, want hit (content-addressed)", viaUpload.Cache)
	}
}

// --- helpers ---

func mustScene(t *testing.T, name string, n int) *imgutil.Gray {
	t.Helper()
	sc, err := synth.ParseScene(name)
	if err != nil {
		t.Fatal(err)
	}
	img, err := synth.Generate(sc, n)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func mustRequest(t *testing.T, size, tiles int) *Request {
	t.Helper()
	return &Request{
		Input:  mustScene(t, "lena", size),
		Target: mustScene(t, "sailboat", size),
		Tiles:  tiles,
	}
}

func containsSpan(spans []string, name string) bool {
	for _, s := range spans {
		if s == name {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newMultipart writes a multipart body and returns its content type.
func newMultipart(t *testing.T, w io.Writer, fields map[string]string, files map[string][]byte) string {
	t.Helper()
	mw := multipart.NewWriter(w)
	for k, v := range fields {
		if err := mw.WriteField(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k, data := range files {
		fw, err := mw.CreateFormFile(k, k+".png")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return mw.FormDataContentType()
}
